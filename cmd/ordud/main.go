// Command ordud is the ORD/ORU query daemon: it keeps named datasets
// resident in memory and serves both operators over an HTTP JSON API with
// worker-pool admission control, per-request deadlines, a result cache and
// health/metrics endpoints (see internal/server).
//
// Datasets are live: POST /datasets/{name}/points inserts or upserts a
// point (auto-assigned id when omitted) and DELETE
// /datasets/{name}/points/{id} removes one, with queries and writes
// serialised per dataset and the result cache invalidated per entry via the
// dominance keep-test. Write counters surface in /metrics and /datasets.
//
// Examples:
//
//	ordud -addr :8375 -gen demo=ANTI:50000:4:1
//	ordud -data hotels=hotels.csv -data nba=nba.csv -workers 8 -timeout 5s
//
// Dataset flags are repeatable. -data takes name=path.csv (numeric CSV, no
// header; columns min-max normalised). -gen takes name=DIST:n:d[:seed]
// with DIST one of IND, COR, ANTI — or name=DIST[:n[:seed]] for the
// canned real-like generators HOTEL, HOUSE, NBA, TA.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"ordu/internal/server"
)

// repeated collects a repeatable string flag.
type repeated []string

func (r *repeated) String() string     { return strings.Join(*r, ",") }
func (r *repeated) Set(s string) error { *r = append(*r, s); return nil }

func main() {
	var dataFlags, genFlags repeated
	var (
		addr       = flag.String("addr", ":8375", "listen address")
		workers    = flag.Int("workers", runtime.NumCPU(), "max concurrently executing queries")
		queue      = flag.Int("queue", 0, "max queued requests beyond workers (0 = 2*workers)")
		cacheSize  = flag.Int("cache", 256, "LRU result-cache entries (negative disables)")
		timeout    = flag.Duration("timeout", 10*time.Second, "default per-request deadline")
		maxTimeout = flag.Duration("max-timeout", 60*time.Second, "cap on request-supplied deadlines")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty disables")
	)
	flag.Var(&dataFlags, "data", "dataset from CSV: name=path.csv (repeatable)")
	flag.Var(&genFlags, "gen", "generated dataset: name=DIST:n:d[:seed] (repeatable)")
	flag.Parse()

	srv := server.New(server.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheSize:      *cacheSize,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
	})

	if len(dataFlags) == 0 && len(genFlags) == 0 {
		genFlags = repeated{"default=IND:50000:4:1"}
		log.Printf("no datasets given; loading %s", genFlags[0])
	}
	for _, spec := range dataFlags {
		name, path, ok := strings.Cut(spec, "=")
		if !ok || name == "" {
			fatal(fmt.Errorf("bad -data %q: want name=path.csv", spec))
		}
		ds, err := server.BuildDataset(path, nil)
		if err != nil {
			fatal(fmt.Errorf("-data %s: %w", name, err))
		}
		srv.AddDataset(name, ds)
		log.Printf("dataset %q: %d records x %d attributes (from %s)", name, ds.Len(), ds.Dim(), path)
	}
	for _, spec := range genFlags {
		name, g, err := parseGenSpec(spec)
		if err != nil {
			fatal(err)
		}
		ds, err := server.BuildDataset("", g)
		if err != nil {
			fatal(fmt.Errorf("-gen %s: %w", name, err))
		}
		srv.AddDataset(name, ds)
		log.Printf("dataset %q: %d records x %d attributes (%s)", name, ds.Len(), ds.Dim(), g.Dist)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *pprofAddr != "" {
		// Profiling stays off the query listener: a dedicated mux on a
		// dedicated (typically loopback-only) address, so pprof is never
		// reachable through the public API surface.
		pprofSrv := &http.Server{Addr: *pprofAddr, Handler: pprofMux()}
		go func() {
			log.Printf("pprof listening on %s", *pprofAddr)
			if err := pprofSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("pprof listener: %v", err)
			}
		}()
		go func() {
			<-ctx.Done()
			shutCtx, cancel := context.WithTimeout(context.Background(), time.Second)
			defer cancel()
			pprofSrv.Shutdown(shutCtx)
		}()
	}
	go func() {
		<-ctx.Done()
		log.Printf("shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		httpSrv.Shutdown(shutCtx)
	}()
	eff := srv.Config()
	log.Printf("ordud listening on %s (workers=%d queue=%d cache=%d timeout=%v)",
		*addr, eff.Workers, eff.QueueDepth, eff.CacheSize, eff.DefaultTimeout)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
}

// pprofMux registers the net/http/pprof handlers on a fresh mux instead of
// http.DefaultServeMux, keeping profiling isolated to the -pprof listener.
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// parseGenSpec parses name=DIST:n:d[:seed] (synthetic) or
// name=DIST[:n[:seed]] (real-like generators, which fix d themselves).
func parseGenSpec(spec string) (string, *server.GeneratorSpec, error) {
	name, rest, ok := strings.Cut(spec, "=")
	if !ok || name == "" {
		return "", nil, fmt.Errorf("bad -gen %q: want name=DIST:n:d[:seed]", spec)
	}
	parts := strings.Split(rest, ":")
	g := &server.GeneratorSpec{Dist: parts[0], Seed: 1}
	nums := make([]int64, 0, 3)
	for _, p := range parts[1:] {
		v, err := strconv.ParseInt(p, 10, 64)
		if err != nil {
			return "", nil, fmt.Errorf("bad -gen %q: %v", spec, err)
		}
		nums = append(nums, v)
	}
	synthetic := map[string]bool{"IND": true, "COR": true, "ANTI": true}[strings.ToUpper(g.Dist)]
	if synthetic {
		if len(nums) < 2 || len(nums) > 3 {
			return "", nil, fmt.Errorf("bad -gen %q: synthetic generators want DIST:n:d[:seed]", spec)
		}
		g.N, g.D = int(nums[0]), int(nums[1])
		if len(nums) == 3 {
			g.Seed = nums[2]
		}
	} else {
		if len(nums) > 2 {
			return "", nil, fmt.Errorf("bad -gen %q: real-like generators want DIST[:n[:seed]]", spec)
		}
		if len(nums) >= 1 {
			g.N = int(nums[0])
		}
		if len(nums) == 2 {
			g.Seed = nums[1]
		}
	}
	return name, g, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ordud:", err)
	os.Exit(1)
}
