// Command ordlint runs the project's static-analysis suite
// (internal/analysis) over the module and reports file:line diagnostics,
// exiting non-zero on findings. It needs no tooling beyond the standard
// library: packages are loaded by walking the module, parsing with build-tag
// awareness, and type-checking with an importer that chains module-internal
// packages with the standard library from source.
//
// Usage:
//
//	go run ./cmd/ordlint ./...            # whole module (the CI invocation)
//	go run ./cmd/ordlint ./internal/lp    # one package
//	go run ./cmd/ordlint -checks floatcmp,ctxpoll ./...
//	go run ./cmd/ordlint -json ./...      # NDJSON findings, one object per line
//
// Findings are suppressed with `//ordlint:allow <check> — reason` comments;
// see the package documentation of internal/analysis.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ordu/internal/analysis"
)

func main() {
	checks := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	list := flag.Bool("list", false, "list the available checks and exit")
	asJSON := flag.Bool("json", false, "emit findings as NDJSON (one object per line) instead of file:line text")
	flag.Parse()

	root, modulePath, err := analysis.FindModule(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "ordlint:", err)
		os.Exit(2)
	}
	suite := analysis.NewSuite(analysis.DefaultConfig(modulePath))
	if *list {
		for _, a := range suite.Analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *checks != "" {
		keep := map[string]bool{}
		for _, name := range strings.Split(*checks, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var kept []*analysis.Analyzer
		for _, a := range suite.Analyzers {
			if keep[a.Name] {
				kept = append(kept, a)
				delete(keep, a.Name)
			}
		}
		for name := range keep {
			fmt.Fprintf(os.Stderr, "ordlint: unknown check %q (try -list)\n", name)
			os.Exit(2)
		}
		suite.Analyzers = kept
	}

	loader := analysis.NewLoader(modulePath, root)
	pkgs, err := loader.LoadModule()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ordlint:", err)
		os.Exit(2)
	}
	pkgs = selectPackages(pkgs, root, flag.Args())

	diags := suite.Run(pkgs)
	enc := json.NewEncoder(os.Stdout)
	for _, d := range diags {
		pos := d.Pos
		if rel, err := filepath.Rel(root, pos.Filename); err == nil {
			pos.Filename = rel
		}
		if *asJSON {
			if err := enc.Encode(jsonFinding{
				File:    filepath.ToSlash(pos.Filename),
				Line:    pos.Line,
				Col:     pos.Column,
				Check:   d.Check,
				Message: d.Message,
			}); err != nil {
				fmt.Fprintln(os.Stderr, "ordlint:", err)
				os.Exit(2)
			}
			continue
		}
		fmt.Printf("%s: [%s] %s\n", pos, d.Check, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "ordlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// jsonFinding is the -json output record: newline-delimited JSON, one object
// per finding, consumed by the CI artifact upload and by editor integrations.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

// selectPackages filters the loaded module packages by the command-line
// patterns: "./..." (or no argument) keeps everything, "./dir/..." keeps the
// subtree, and "./dir" keeps the single package. Patterns are relative to
// the module root, matching how the tool is invoked from it.
func selectPackages(pkgs []*analysis.Package, root string, patterns []string) []*analysis.Package {
	if len(patterns) == 0 {
		return pkgs
	}
	var out []*analysis.Package
	for _, pkg := range pkgs {
		rel, err := filepath.Rel(root, pkg.Dir)
		if err != nil {
			continue
		}
		rel = filepath.ToSlash(rel)
		for _, pat := range patterns {
			pat = strings.TrimPrefix(filepath.ToSlash(pat), "./")
			pat = strings.TrimSuffix(pat, "/") // "./internal/qp/" means "./internal/qp"
			if matchPattern(rel, pat) {
				out = append(out, pkg)
				break
			}
		}
	}
	return out
}

func matchPattern(rel, pat string) bool {
	if pat == "..." || pat == "" || pat == "." {
		return true
	}
	if sub, ok := strings.CutSuffix(pat, "/..."); ok {
		return rel == sub || strings.HasPrefix(rel, sub+"/")
	}
	return rel == pat
}
