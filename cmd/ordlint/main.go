// Command ordlint runs the project's static-analysis suite
// (internal/analysis) over the module and reports file:line diagnostics,
// exiting non-zero on findings. It needs no tooling beyond the standard
// library: packages are loaded by walking the module, parsing with build-tag
// awareness, and type-checking with an importer that chains module-internal
// packages with the standard library from source.
//
// Usage:
//
//	go run ./cmd/ordlint ./...            # whole module (the CI invocation)
//	go run ./cmd/ordlint ./internal/lp    # one package
//	go run ./cmd/ordlint -check borrowck,lockmode ./...
//	go run ./cmd/ordlint -json ./...      # NDJSON findings, one object per line
//	go run ./cmd/ordlint -stats ./...     # NDJSON call-graph/summary statistics
//
// Findings are suppressed with `//ordlint:allow <check> — reason` comments;
// see the package documentation of internal/analysis.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"ordu/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ordlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	checks := fs.String("check", "", "comma-separated subset of checks to run (default: all)")
	fs.StringVar(checks, "checks", "", "alias for -check")
	list := fs.Bool("list", false, "list the available checks and exit")
	asJSON := fs.Bool("json", false, "emit findings as NDJSON (one object per line) instead of file:line text")
	stats := fs.Bool("stats", false, "emit interprocedural statistics as NDJSON (call-graph size, summary counts, handle-layer totals, entry-unreachable functions) instead of findings")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	root, modulePath, err := analysis.FindModule(".")
	if err != nil {
		fmt.Fprintln(stderr, "ordlint:", err)
		return 2
	}
	cfg := analysis.DefaultConfig(modulePath)
	suite := analysis.NewSuite(cfg)
	if *list {
		for _, a := range suite.Analyzers {
			fmt.Fprintf(stdout, "%-13s %-12s %s\n", a.Name, a.Layer, a.Doc)
		}
		return 0
	}
	if *checks != "" {
		keep := map[string]bool{}
		for _, name := range strings.Split(*checks, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var kept []*analysis.Analyzer
		for _, a := range suite.Analyzers {
			if keep[a.Name] {
				kept = append(kept, a)
				delete(keep, a.Name)
			}
		}
		for name := range keep {
			fmt.Fprintf(stderr, "ordlint: unknown check %q (try -list)\n", name)
			return 2
		}
		suite.Analyzers = kept
	}

	loader := analysis.NewLoader(modulePath, root)
	pkgs, err := loader.LoadModule()
	if err != nil {
		fmt.Fprintln(stderr, "ordlint:", err)
		return 2
	}
	pkgs = selectPackages(pkgs, root, fs.Args())
	if len(pkgs) == 0 {
		fmt.Fprintf(stderr, "ordlint: no packages match %s\n", strings.Join(fs.Args(), " "))
		return 2
	}

	if *stats {
		if err := emitStats(stdout, cfg, pkgs); err != nil {
			fmt.Fprintln(stderr, "ordlint:", err)
			return 2
		}
		return 0
	}

	diags := suite.Run(pkgs)
	enc := json.NewEncoder(stdout)
	for _, d := range diags {
		pos := d.Pos
		if rel, err := filepath.Rel(root, pos.Filename); err == nil {
			pos.Filename = rel
		}
		if *asJSON {
			if err := enc.Encode(jsonFinding{
				File:    filepath.ToSlash(pos.Filename),
				Line:    pos.Line,
				Col:     pos.Column,
				Check:   d.Check,
				Message: d.Message,
			}); err != nil {
				fmt.Fprintln(stderr, "ordlint:", err)
				return 2
			}
			continue
		}
		fmt.Fprintf(stdout, "%s: [%s] %s\n", pos, d.Check, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "ordlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// jsonFinding is the -json output record: newline-delimited JSON, one object
// per finding, consumed by the CI artifact upload and by editor integrations.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

// emitStats writes the interprocedural layer's statistics as NDJSON: one
// "graph" record, one "summaries" record with aggregate counts, one
// "concurrency" record with spawn-site and channel/WaitGroup/atomic op
// totals followed by a "spawn" record per go statement, one "handles"
// record with the handle layer's provenance totals (classed returns per
// class, mutators, bounded contracts), and one "unreachable" record per
// function no configured entry point reaches — the input for dead-weight
// review and for tracking the server cone's growth over time in CI
// artifacts.
func emitStats(w io.Writer, cfg analysis.Config, pkgs []*analysis.Package) error {
	g := analysis.BuildCallGraph(pkgs)
	sums := analysis.ComputeSummaries(g, pkgs)
	enc := json.NewEncoder(w)

	extern := 0
	for _, n := range g.Nodes {
		extern += len(n.Extern)
	}
	if err := enc.Encode(map[string]interface{}{
		"kind":         "graph",
		"nodes":        len(g.Nodes),
		"edges":        g.NumEdges(),
		"extern_calls": extern,
	}); err != nil {
		return err
	}

	counts := map[string]int{}
	for _, s := range sums {
		if s.Allocates {
			counts["allocates"]++
		}
		if s.MayBlock {
			counts["may_block"]++
		}
		if s.PollsCtx {
			counts["polls_ctx"]++
		}
		if s.MayPanic {
			counts["may_panic"]++
		}
	}
	if err := enc.Encode(map[string]interface{}{
		"kind":      "summaries",
		"functions": len(sums),
		"allocates": counts["allocates"],
		"may_block": counts["may_block"],
		"polls_ctx": counts["polls_ctx"],
		"may_panic": counts["may_panic"],
	}); err != nil {
		return err
	}

	// Concurrency layer: one aggregate record, then one record per spawn
	// site — the same facts the chanprotocol/wgbalance/sharedwrite checks
	// verify, so a new goroutine shows up in the CI artifact diff.
	conc := analysis.ComputeConcFacts(g)
	chanOps, wgOps, atomicOps := 0, 0, 0
	for _, s := range conc {
		chanOps += len(s.Chans)
		wgOps += len(s.WGs)
		atomicOps += len(s.Atomics)
	}
	type spawnRec struct{ caller, callee string }
	var spawns []spawnRec
	for _, n := range g.Nodes {
		for _, e := range analysis.Spawns(n) {
			spawns = append(spawns, spawnRec{n.Name, e.Callee.Name})
		}
	}
	sort.Slice(spawns, func(i, j int) bool {
		if spawns[i].caller != spawns[j].caller {
			return spawns[i].caller < spawns[j].caller
		}
		return spawns[i].callee < spawns[j].callee
	})
	if err := enc.Encode(map[string]interface{}{
		"kind":        "concurrency",
		"spawn_sites": len(spawns),
		"chan_ops":    chanOps,
		"wg_ops":      wgOps,
		"atomic_ops":  atomicOps,
	}); err != nil {
		return err
	}
	for _, s := range spawns {
		if err := enc.Encode(map[string]interface{}{
			"kind":   "spawn",
			"caller": s.caller,
			"callee": s.callee,
		}); err != nil {
			return err
		}
	}

	// Handle layer: one aggregate record over the arena-handle facts, so a
	// new handle-returning API, mutator, or bounded contract shows up in
	// the CI artifact diff.
	borrows := analysis.ComputeBorrowFacts(g, cfg.FreshFuncs)
	handles := analysis.ComputeHandleFacts(g, borrows, analysis.NewHandleConfig(cfg))
	nodeRets, slotRets, genRets, annotated, mutators, bounded := 0, 0, 0, 0, 0, 0
	for _, hi := range handles {
		if hi.Ret&analysis.HandleNode != 0 {
			nodeRets++
		}
		if hi.Ret&analysis.HandleSlot != 0 {
			slotRets++
		}
		if hi.Ret&analysis.HandleGen != 0 {
			genRets++
		}
		if hi.RetAnnotated {
			annotated++
		}
		if hi.Mutates {
			mutators++
		}
		if hi.Bounded {
			bounded++
		}
	}
	if err := enc.Encode(map[string]interface{}{
		"kind":          "handles",
		"functions":     len(handles),
		"node_returns":  nodeRets,
		"slot_returns":  slotRets,
		"gen_returns":   genRets,
		"ret_annotated": annotated,
		"mutators":      mutators,
		"bounded":       bounded,
	}); err != nil {
		return err
	}

	reach := g.ReachableFrom(func(n *analysis.FuncNode) bool {
		return cfg.CtxFlowEntryPackages[n.Pkg.Path] || cfg.CtxFlowEntryFuncs[n.Name]
	})
	var unreachable []string
	for _, n := range g.Nodes {
		if _, ok := reach[n]; !ok {
			unreachable = append(unreachable, n.Name)
		}
	}
	sort.Strings(unreachable)
	for _, name := range unreachable {
		if err := enc.Encode(map[string]interface{}{
			"kind": "unreachable",
			"func": name,
		}); err != nil {
			return err
		}
	}
	return nil
}

// selectPackages filters the loaded module packages by the command-line
// patterns: "./..." (or no argument) keeps everything, "./dir/..." keeps the
// subtree, and "./dir" keeps the single package. Patterns are relative to
// the module root, matching how the tool is invoked from it.
func selectPackages(pkgs []*analysis.Package, root string, patterns []string) []*analysis.Package {
	if len(patterns) == 0 {
		return pkgs
	}
	var out []*analysis.Package
	for _, pkg := range pkgs {
		rel, err := filepath.Rel(root, pkg.Dir)
		if err != nil {
			continue
		}
		rel = filepath.ToSlash(rel)
		for _, pat := range patterns {
			pat = strings.TrimPrefix(filepath.ToSlash(pat), "./")
			pat = strings.TrimSuffix(pat, "/") // "./internal/qp/" means "./internal/qp"
			if matchPattern(rel, pat) {
				out = append(out, pkg)
				break
			}
		}
	}
	return out
}

func matchPattern(rel, pat string) bool {
	if pat == "..." || pat == "" || pat == "." {
		return true
	}
	if sub, ok := strings.CutSuffix(pat, "/..."); ok {
		return rel == sub || strings.HasPrefix(rel, sub+"/")
	}
	return rel == pat
}
