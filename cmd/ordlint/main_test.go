package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestListChecks pins that -list names every check in suite order.
func TestListChecks(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-list"}, &out, &errw); code != 0 {
		t.Fatalf("run(-list) = %d, stderr: %s", code, errw.String())
	}
	for _, name := range []string{
		"floatcmp", "ctxpoll", "senterr", "nopanic", "printguard",
		"wsescape", "goroutinecap", "poolpair", "noalloc",
		"ctxflow", "deepnoalloc", "lockhold", "maporder",
		"borrowck", "lockmode", "atomicmix",
	} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output is missing check %q", name)
		}
	}
}

// TestUnknownCheck pins the exit code and message for a bogus check name,
// through both the -check spelling and its -checks alias. An unknown name
// mixed with valid ones must still fail: a typo silently dropping a check
// would leave CI green with the check off.
func TestUnknownCheck(t *testing.T) {
	for _, args := range [][]string{
		{"-check", "bogus"},
		{"-checks", "bogus"},
		{"-check", "floatcmp,bogus,lockmode"},
	} {
		var out, errw bytes.Buffer
		if code := run(args, &out, &errw); code != 2 {
			t.Fatalf("run(%v) = %d, want 2", args, code)
		}
		if !strings.Contains(errw.String(), `unknown check "bogus"`) {
			t.Errorf("run(%v): stderr %q should name the unknown check", args, errw.String())
		}
	}
}

// TestCheckSubset runs a real subset over one package through the run()
// seam: the selected checks execute (clean exit), and nothing else does.
func TestCheckSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the full module plus its stdlib closure")
	}
	var out, errw bytes.Buffer
	if code := run([]string{"-check", "borrowck,lockmode,atomicmix", "./internal/collection"}, &out, &errw); code != 0 {
		t.Fatalf("run(-check subset) = %d, stdout: %s, stderr: %s", code, out.String(), errw.String())
	}
	if out.Len() != 0 {
		t.Errorf("subset run over a clean package printed findings: %s", out.String())
	}
}

// TestNoMatchPattern pins that a pattern selecting nothing is an error, not
// a silent empty (and falsely clean) run.
func TestNoMatchPattern(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the full module plus its stdlib closure")
	}
	var out, errw bytes.Buffer
	if code := run([]string{"./no/such/dir"}, &out, &errw); code != 2 {
		t.Fatalf("run(./no/such/dir) = %d, want 2", code)
	}
	if !strings.Contains(errw.String(), "no packages match ./no/such/dir") {
		t.Errorf("stderr %q should report the unmatched pattern", errw.String())
	}
}

// TestStatsNDJSON pins the -stats output shape: every line is a JSON object
// with a kind field; exactly one graph and one summaries record appear, with
// plausible sizes; functions outside the server cone show up as unreachable.
func TestStatsNDJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the full module plus its stdlib closure")
	}
	var out, errw bytes.Buffer
	if code := run([]string{"-stats", "./internal/linalg"}, &out, &errw); code != 0 {
		t.Fatalf("run(-stats) = %d, stderr: %s", code, errw.String())
	}
	var graphs, summaries, unreachable int
	for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		var rec map[string]interface{}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %q is not JSON: %v", line, err)
		}
		switch rec["kind"] {
		case "graph":
			graphs++
			if n, _ := rec["nodes"].(float64); n < 1 {
				t.Errorf("graph record reports %v nodes", rec["nodes"])
			}
		case "summaries":
			summaries++
			if n, _ := rec["functions"].(float64); n < 1 {
				t.Errorf("summaries record reports %v functions", rec["functions"])
			}
		case "unreachable":
			unreachable++
			if name, _ := rec["func"].(string); !strings.Contains(name, "linalg.") {
				t.Errorf("unreachable record names %q, expected a linalg function", name)
			}
		default:
			t.Errorf("unexpected record kind %v", rec["kind"])
		}
	}
	if graphs != 1 || summaries != 1 {
		t.Errorf("got %d graph and %d summaries records, want 1 and 1", graphs, summaries)
	}
	if unreachable == 0 {
		t.Error("no unreachable records: linalg is outside the server entry cone")
	}
}
