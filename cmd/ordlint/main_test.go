package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"ordu/internal/analysis"
)

// suiteRows returns the default suite's (name, layer) pairs in order — the
// source of truth the -list table and the README check table must match.
func suiteRows(t *testing.T) [][2]string {
	t.Helper()
	_, modPath, err := analysis.FindModule(".")
	if err != nil {
		t.Fatalf("FindModule: %v", err)
	}
	var rows [][2]string
	for _, a := range analysis.NewSuite(analysis.DefaultConfig(modPath)).Analyzers {
		rows = append(rows, [2]string{a.Name, a.Layer})
	}
	return rows
}

// TestListChecks pins the -list table: one line per analyzer in suite
// order, each carrying the check name, its layer, and a one-line doc.
func TestListChecks(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-list"}, &out, &errw); code != 0 {
		t.Fatalf("run(-list) = %d, stderr: %s", code, errw.String())
	}
	rows := suiteRows(t)
	lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	if len(lines) != len(rows) {
		t.Fatalf("-list printed %d lines, suite has %d analyzers:\n%s", len(lines), len(rows), out.String())
	}
	lineRE := regexp.MustCompile(`^(\S+)\s+(\S+)\s+\S.*$`)
	for i, line := range lines {
		m := lineRE.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("-list line %d is not 'name layer doc': %q", i+1, line)
			continue
		}
		if m[1] != rows[i][0] || m[2] != rows[i][1] {
			t.Errorf("-list line %d = (%s, %s), suite row is (%s, %s)", i+1, m[1], m[2], rows[i][0], rows[i][1])
		}
	}
}

// TestReadmeCheckTable asserts the README's check table documents exactly
// the default suite, in suite order: adding, renaming or reordering an
// analyzer without updating the README fails here.
func TestReadmeCheckTable(t *testing.T) {
	root, _, err := analysis.FindModule(".")
	if err != nil {
		t.Fatalf("FindModule: %v", err)
	}
	f, err := os.Open(filepath.Join(root, "README.md"))
	if err != nil {
		t.Fatalf("open README: %v", err)
	}
	defer f.Close()

	rowRE := regexp.MustCompile("^\\| `([a-z]+)` \\|")
	var names []string
	inTable := false
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "| Check |"):
			inTable = true
		case inTable && strings.HasPrefix(line, "| ---"):
			// separator row
		case inTable:
			m := rowRE.FindStringSubmatch(line)
			if m == nil {
				inTable = false
				continue
			}
			names = append(names, m[1])
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan README: %v", err)
	}

	var want []string
	for _, row := range suiteRows(t) {
		want = append(want, row[0])
	}
	if got, wantJoined := strings.Join(names, " "), strings.Join(want, " "); got != wantJoined {
		t.Errorf("README check table rows = %q,\nwant suite order %q", got, wantJoined)
	}
}

// TestUnknownCheck pins the exit code and message for a bogus check name,
// through both the -check spelling and its -checks alias. An unknown name
// mixed with valid ones must still fail: a typo silently dropping a check
// would leave CI green with the check off.
func TestUnknownCheck(t *testing.T) {
	for _, args := range [][]string{
		{"-check", "bogus"},
		{"-checks", "bogus"},
		{"-check", "floatcmp,bogus,lockmode"},
	} {
		var out, errw bytes.Buffer
		if code := run(args, &out, &errw); code != 2 {
			t.Fatalf("run(%v) = %d, want 2", args, code)
		}
		if !strings.Contains(errw.String(), `unknown check "bogus"`) {
			t.Errorf("run(%v): stderr %q should name the unknown check", args, errw.String())
		}
	}
}

// TestCheckSubset runs a real subset over one package through the run()
// seam: the selected checks execute (clean exit), and nothing else does.
func TestCheckSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the full module plus its stdlib closure")
	}
	var out, errw bytes.Buffer
	if code := run([]string{"-check", "borrowck,lockmode,atomicmix", "./internal/collection"}, &out, &errw); code != 0 {
		t.Fatalf("run(-check subset) = %d, stdout: %s, stderr: %s", code, out.String(), errw.String())
	}
	if out.Len() != 0 {
		t.Errorf("subset run over a clean package printed findings: %s", out.String())
	}
}

// TestNoMatchPattern pins that a pattern selecting nothing is an error, not
// a silent empty (and falsely clean) run.
func TestNoMatchPattern(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the full module plus its stdlib closure")
	}
	var out, errw bytes.Buffer
	if code := run([]string{"./no/such/dir"}, &out, &errw); code != 2 {
		t.Fatalf("run(./no/such/dir) = %d, want 2", code)
	}
	if !strings.Contains(errw.String(), "no packages match ./no/such/dir") {
		t.Errorf("stderr %q should report the unmatched pattern", errw.String())
	}
}

// TestStatsNDJSON pins the -stats output shape: every line is a JSON object
// with a kind field; exactly one graph and one summaries record appear, with
// plausible sizes; functions outside the server cone show up as unreachable.
func TestStatsNDJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the full module plus its stdlib closure")
	}
	var out, errw bytes.Buffer
	if code := run([]string{"-stats", "./internal/linalg"}, &out, &errw); code != 0 {
		t.Fatalf("run(-stats) = %d, stderr: %s", code, errw.String())
	}
	var graphs, summaries, concurrency, handles, unreachable int
	for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		var rec map[string]interface{}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %q is not JSON: %v", line, err)
		}
		switch rec["kind"] {
		case "graph":
			graphs++
			if n, _ := rec["nodes"].(float64); n < 1 {
				t.Errorf("graph record reports %v nodes", rec["nodes"])
			}
		case "summaries":
			summaries++
			if n, _ := rec["functions"].(float64); n < 1 {
				t.Errorf("summaries record reports %v functions", rec["functions"])
			}
		case "concurrency":
			concurrency++
			// linalg spawns nothing; the aggregate record still appears.
			if n, _ := rec["spawn_sites"].(float64); n != 0 {
				t.Errorf("concurrency record reports %v spawn sites in linalg", rec["spawn_sites"])
			}
		case "spawn":
			t.Errorf("spawn record %v in linalg, which starts no goroutines", rec)
		case "handles":
			handles++
			if n, _ := rec["functions"].(float64); n < 1 {
				t.Errorf("handles record reports %v functions", rec["functions"])
			}
			// linalg is outside the flat core: its functions return no
			// classed handles and mutate no handle-owning structure.
			if n, _ := rec["mutators"].(float64); n != 0 {
				t.Errorf("handles record reports %v mutators in linalg", rec["mutators"])
			}
		case "unreachable":
			unreachable++
			if name, _ := rec["func"].(string); !strings.Contains(name, "linalg.") {
				t.Errorf("unreachable record names %q, expected a linalg function", name)
			}
		default:
			t.Errorf("unexpected record kind %v", rec["kind"])
		}
	}
	if graphs != 1 || summaries != 1 || concurrency != 1 || handles != 1 {
		t.Errorf("got %d graph, %d summaries, %d concurrency, %d handles records, want 1 each",
			graphs, summaries, concurrency, handles)
	}
	if unreachable == 0 {
		t.Error("no unreachable records: linalg is outside the server entry cone")
	}
}

// TestStatsSpawns pins the spawn records over a package that does start
// goroutines: the skyband merge spawning its shard workers.
func TestStatsSpawns(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the full module plus its stdlib closure")
	}
	var out, errw bytes.Buffer
	if code := run([]string{"-stats", "./internal/skyband"}, &out, &errw); code != 0 {
		t.Fatalf("run(-stats) = %d, stderr: %s", code, errw.String())
	}
	found := false
	for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		var rec map[string]interface{}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %q is not JSON: %v", line, err)
		}
		if rec["kind"] != "spawn" {
			continue
		}
		caller, _ := rec["caller"].(string)
		callee, _ := rec["callee"].(string)
		if strings.HasSuffix(caller, "skyband.scanParallel") && strings.HasSuffix(callee, "shardScan.run") {
			found = true
		}
	}
	if !found {
		t.Error("no spawn record for scanParallel -> shardScan.run; the concurrency stats lost the parallel frontier")
	}
}
