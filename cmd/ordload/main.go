// Command ordload drives mixed query/mutation traffic against a running
// ordud instance at a fixed offered rate and reports latency quantiles per
// traffic class. It is the companion tool for the live-dataset work: run
// ordud with a dataset, point ordload at it, and watch how the write path
// and the fine-grained cache invalidation behave under concurrent load.
//
// Example:
//
//	ordud -gen demo=IND:100000:4:1 &
//	ordload -addr http://localhost:8375 -dataset demo -rate 200 -mutate 0.2 -duration 30s
//
// Requests are paced open-loop by a ticker; a bounded worker pool executes
// them. If all workers are busy when a tick fires the request is dropped
// and counted, so a saturated server shows up as drops rather than as a
// silently lower offered rate.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

func main() {
	var (
		addr     = flag.String("addr", "http://localhost:8375", "ordud base URL")
		dataset  = flag.String("dataset", "default", "target dataset name")
		op       = flag.String("op", "ord", "query operator: ord, oru or mix")
		k        = flag.Int("k", 5, "query parameter k")
		m        = flag.Int("m", 30, "query parameter m (output size)")
		rate     = flag.Float64("rate", 100, "offered request rate per second")
		duration = flag.Duration("duration", 10*time.Second, "run length")
		workers  = flag.Int("concurrency", 16, "max in-flight requests")
		mutate   = flag.Float64("mutate", 0.2, "fraction of requests that are point writes/deletes")
		seed     = flag.Int64("seed", 1, "RNG seed for weights, points and traffic mix")
		timeout  = flag.Duration("timeout", 10*time.Second, "per-request client timeout")
	)
	flag.Parse()
	if *rate <= 0 || *workers <= 0 || *mutate < 0 || *mutate > 1 {
		fatal(fmt.Errorf("bad flags: rate and concurrency must be positive, mutate in [0,1]"))
	}
	qOp := strings.ToLower(*op)
	if qOp != "ord" && qOp != "oru" && qOp != "mix" {
		fatal(fmt.Errorf("bad -op %q: want ord, oru or mix", *op))
	}

	client := &http.Client{Timeout: *timeout}
	dims, records, err := datasetDims(client, *addr, *dataset)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("ordload: dataset %q (%d records x %d attrs), %.0f req/s for %v, mutate=%.0f%%, concurrency=%d\n",
		*dataset, records, dims, *rate, *duration, *mutate*100, *workers)

	lg := &loadgen{
		client:  client,
		base:    strings.TrimRight(*addr, "/"),
		dataset: *dataset,
		op:      qOp,
		k:       *k,
		m:       *m,
		dims:    dims,
		mutate:  *mutate,
		rng:     rand.New(rand.NewSource(*seed)),
	}
	lg.run(*rate, *duration, *workers)
	lg.report()
}

// loadgen holds the generator's configuration and accumulated results.
type loadgen struct {
	client  *http.Client
	base    string
	dataset string
	op      string
	k, m    int
	dims    int
	mutate  float64
	rng     *rand.Rand

	mu       sync.Mutex
	inserted []int            // ids this run inserted and has not yet deleted
	lat      map[string][]int // latencies in microseconds, per traffic class
	status   map[int]int      // responses per HTTP status
	netErrs  int
	dropped  int64
	sent     int64
	flip     int // alternates ord/oru in -op mix
}

// job is one prepared request: the generator's RNG runs only in the pacing
// goroutine, so workers never contend on it.
type job struct {
	class  string // "ord", "oru", "insert", "delete"
	w      []float64
	point  []float64
	delID  int
	hasDel bool
}

func (g *loadgen) run(rate float64, duration time.Duration, workers int) {
	jobs := make(chan job, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				g.do(j)
			}
		}()
	}

	interval := time.Duration(float64(time.Second) / rate)
	if interval <= 0 {
		interval = time.Microsecond
	}
	tick := time.NewTicker(interval)
	deadline := time.Now().Add(duration)
	for now := range tick.C {
		if now.After(deadline) {
			break
		}
		select {
		case jobs <- g.nextJob():
			g.sent++
		default:
			g.dropped++
		}
	}
	tick.Stop()
	close(jobs)
	wg.Wait()
}

// nextJob rolls the traffic mix and prepares one request.
func (g *loadgen) nextJob() job {
	if g.rng.Float64() < g.mutate {
		g.mu.Lock()
		n := len(g.inserted)
		var id int
		if n > 0 {
			id = g.inserted[n-1]
		}
		g.mu.Unlock()
		// Deletes only target ids this run inserted, so the dataset drifts
		// by at most the in-flight window; roughly half the writes are
		// deletes once the insert stack is non-empty.
		if n > 0 && g.rng.Intn(2) == 0 {
			g.popInserted(id)
			return job{class: "delete", delID: id, hasDel: true}
		}
		p := make([]float64, g.dims)
		for i := range p {
			p[i] = g.rng.Float64()
		}
		return job{class: "insert", point: p}
	}
	op := g.op
	if op == "mix" {
		if g.flip++; g.flip%2 == 0 {
			op = "oru"
		} else {
			op = "ord"
		}
	}
	return job{class: op, w: randSimplex(g.rng, g.dims)}
}

func (g *loadgen) popInserted(id int) {
	g.mu.Lock()
	if n := len(g.inserted); n > 0 && g.inserted[n-1] == id {
		g.inserted = g.inserted[:n-1]
	}
	g.mu.Unlock()
}

// do executes one job and records its latency and status.
func (g *loadgen) do(j job) {
	var (
		code int
		err  error
		resp []byte
	)
	start := time.Now()
	switch j.class {
	case "insert":
		body, _ := json.Marshal(map[string]any{"point": j.point})
		code, resp, err = g.post(fmt.Sprintf("%s/datasets/%s/points", g.base, g.dataset), body)
	case "delete":
		req, rerr := http.NewRequest(http.MethodDelete,
			fmt.Sprintf("%s/datasets/%s/points/%d", g.base, g.dataset, j.delID), nil)
		if rerr != nil {
			err = rerr
			break
		}
		var r *http.Response
		if r, err = g.client.Do(req); err == nil {
			code = r.StatusCode
			io.Copy(io.Discard, r.Body)
			r.Body.Close()
		}
	default: // ord / oru
		body, _ := json.Marshal(map[string]any{
			"dataset": g.dataset, "w": j.w, "k": g.k, "m": g.m,
		})
		code, resp, err = g.post(g.base+"/query/"+j.class, body)
	}
	elapsed := time.Since(start)

	g.mu.Lock()
	defer g.mu.Unlock()
	if err != nil {
		g.netErrs++
		return
	}
	if j.class == "insert" && code == http.StatusCreated {
		var pw struct {
			ID int `json:"id"`
		}
		if json.Unmarshal(resp, &pw) == nil {
			g.inserted = append(g.inserted, pw.ID)
		}
	}
	if g.lat == nil {
		g.lat = make(map[string][]int)
		g.status = make(map[int]int)
	}
	g.lat[j.class] = append(g.lat[j.class], int(elapsed/time.Microsecond))
	g.status[code]++
}

func (g *loadgen) post(url string, body []byte) (int, []byte, error) {
	resp, err := g.client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return resp.StatusCode, b, err
}

// report prints per-class latency quantiles and the status breakdown.
func (g *loadgen) report() {
	g.mu.Lock()
	defer g.mu.Unlock()
	fmt.Printf("\nsent %d requests, dropped %d (worker pool full), network errors %d\n",
		g.sent, g.dropped, g.netErrs)

	classes := make([]string, 0, len(g.lat))
	for c := range g.lat {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	fmt.Printf("%-8s %8s %10s %10s %10s %10s\n", "class", "count", "p50", "p95", "p99", "max")
	for _, c := range classes {
		ls := g.lat[c]
		sort.Ints(ls)
		fmt.Printf("%-8s %8d %10s %10s %10s %10s\n", c, len(ls),
			fmtMicros(quantile(ls, 0.50)), fmtMicros(quantile(ls, 0.95)),
			fmtMicros(quantile(ls, 0.99)), fmtMicros(ls[len(ls)-1]))
	}

	codes := make([]int, 0, len(g.status))
	for code := range g.status {
		codes = append(codes, code)
	}
	sort.Ints(codes)
	parts := make([]string, 0, len(codes))
	for _, code := range codes {
		parts = append(parts, fmt.Sprintf("%d:%d", code, g.status[code]))
	}
	fmt.Printf("status: %s\n", strings.Join(parts, " "))
}

// quantile returns the q-th quantile of sorted microsecond latencies
// (nearest-rank).
func quantile(sorted []int, q float64) int {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func fmtMicros(us int) string {
	d := time.Duration(us) * time.Microsecond
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%dus", us)
	}
}

// randSimplex draws a weight vector uniformly from the unit simplex
// (normalised exponentials).
func randSimplex(rng *rand.Rand, d int) []float64 {
	w := make([]float64, d)
	sum := 0.0
	for i := range w {
		w[i] = -math.Log(1 - rng.Float64())
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// datasetDims fetches GET /datasets and returns the target's dimensionality
// and record count.
func datasetDims(client *http.Client, base, name string) (int, int, error) {
	resp, err := client.Get(strings.TrimRight(base, "/") + "/datasets")
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	var infos []struct {
		Name    string `json:"name"`
		Records int    `json:"records"`
		Dims    int    `json:"dims"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		return 0, 0, fmt.Errorf("decoding /datasets: %w", err)
	}
	for _, in := range infos {
		if in.Name == name {
			return in.Dims, in.Records, nil
		}
	}
	return 0, 0, fmt.Errorf("dataset %q not found on %s", name, base)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ordload:", err)
	os.Exit(1)
}
