package main

import (
	"fmt"
	"math"
	"sort"

	"ordu/internal/core"
	"ordu/internal/data"
	"ordu/internal/expr"
	"ordu/internal/geom"
	"ordu/internal/osskyline"
	"ordu/internal/rtree"
	"ordu/internal/topk"
)

// runFig6 reproduces the paper's Figure 6 case study: NBA 2018-19 players
// on two 2-attribute slices, comparing ORD and ORU with a top-m query and
// the OSS skyline [49] for k=2, m=6.
func runFig6(e *env) {
	players := data.NBA2019(2019)
	cases := []struct {
		title string
		dims  [2]int // indices into [points, rebounds, assists]
		w     geom.Vector
	}{
		{"Fig 6(a): Assists-Rebounds, w=(0.49,0.51)", [2]int{2, 1}, geom.Vector{0.49, 0.51}},
		{"Fig 6(b): Points-Rebounds, w=(0.43,0.57)", [2]int{0, 1}, geom.Vector{0.43, 0.57}},
	}
	const k, m = 2, 6
	for _, cs := range cases {
		pts := make([]geom.Vector, len(players))
		for i, p := range players {
			pts[i] = geom.Vector{p.Stats[cs.dims[0]], p.Stats[cs.dims[1]]}
		}
		tr := rtree.BulkLoad(pts)
		name := func(id int) string { return players[id].Name }

		fmt.Fprintf(e.out, "\n== %s (k=%d, m=%d) ==\n", cs.title, k, m)
		if res, err := core.ORD(tr, cs.w, k, m); err == nil {
			fmt.Fprintf(e.out, "%-12s %s\n", "ORD:", nameList(res.Records, name))
		} else {
			fmt.Fprintf(e.out, "%-12s error: %v\n", "ORD:", err)
		}
		if res, err := core.ORU(tr, cs.w, k, m); err == nil {
			fmt.Fprintf(e.out, "%-12s %s\n", "ORU:", nameList(res.Records, name))
		} else {
			fmt.Fprintf(e.out, "%-12s error: %v\n", "ORU:", err)
		}
		tm := topk.TopK(tr, cs.w, m)
		names := make([]string, len(tm))
		for i, r := range tm {
			names[i] = name(r.ID)
		}
		fmt.Fprintf(e.out, "%-12s %v\n", "top-m:", names)
		oss := osskyline.TopM(tr, m)
		names = names[:0]
		for _, r := range oss {
			names = append(names, name(r.ID))
		}
		fmt.Fprintf(e.out, "%-12s %v\n", "OSS skyline:", names)
	}
}

func nameList(recs []core.Record, name func(int) string) []string {
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = name(r.ID)
	}
	// Stable presentation order.
	sort.Strings(out)
	return out
}

// runJaccard reproduces the Section 6.1 similarity numbers: the Jaccard
// coefficient of the OSS skyline and the top-m query against ORD and ORU
// on IND data at the default parameters (paper: OSS~0.25/0.24,
// top-m~0.44/0.32).
func runJaccard(e *env) {
	s := e.scale
	tr := e.cache.Synthetic(data.IND, s.DefaultN, s.DefaultD)
	seeds := expr.Seeds(s.DefaultD, s.Seeds)
	var jOSSORD, jOSSORU, jTopORD, jTopORU []float64
	oss := osskyline.TopM(tr, s.DefaultM)
	ossIDs := make([]int, len(oss))
	for i, r := range oss {
		ossIDs[i] = r.ID
	}
	for _, w := range seeds {
		ord, err1 := core.ORD(tr, w, s.DefaultK, s.DefaultM)
		oru, err2 := core.ORU(tr, w, s.DefaultK, s.DefaultM)
		if err1 != nil || err2 != nil {
			continue
		}
		tm := topk.TopK(tr, w, s.DefaultM)
		topIDs := make([]int, len(tm))
		for i, r := range tm {
			topIDs[i] = r.ID
		}
		ordIDs := recIDs(ord.Records)
		oruIDs := recIDs(oru.Records)
		jOSSORD = append(jOSSORD, expr.Jaccard(ossIDs, ordIDs))
		jOSSORU = append(jOSSORU, expr.Jaccard(ossIDs, oruIDs))
		jTopORD = append(jTopORD, expr.Jaccard(topIDs, ordIDs))
		jTopORU = append(jTopORU, expr.Jaccard(topIDs, oruIDs))
	}
	fmt.Fprintf(e.out, "\n== Section 6.1: Jaccard similarity to ORD/ORU (IND, defaults) ==\n")
	fmt.Fprintf(e.out, "%-22s %8s %8s\n", "", "vs ORD", "vs ORU")
	fmt.Fprintf(e.out, "%-22s %8.2f %8.2f   (paper: 0.25 / 0.24)\n", "OSS skyline", mean(jOSSORD), mean(jOSSORU))
	fmt.Fprintf(e.out, "%-22s %8.2f %8.2f   (paper: 0.44 / 0.32)\n", "top-m", mean(jTopORD), mean(jTopORU))
}

func recIDs(rs []core.Record) []int {
	out := make([]int, len(rs))
	for i, r := range rs {
		out[i] = r.ID
	}
	return out
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
