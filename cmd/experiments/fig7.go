package main

import (
	"fmt"
	"math"

	"ordu/internal/core"
	"ordu/internal/data"
	"ordu/internal/expr"
	"ordu/internal/fixedregion"
	"ordu/internal/geom"
	"ordu/internal/rtree"
)

// ballVolume returns the volume of an n-ball of radius r.
func ballVolume(r float64, n int) float64 {
	return math.Pow(math.Pi, float64(n)/2) * math.Pow(r, float64(n)) / math.Gamma(float64(n)/2+1)
}

// sideForBall returns the side of an n-cube with the same volume as an
// n-ball of radius r (the paper's construction in Section 6.1).
func sideForBall(r float64, n int) float64 {
	return math.Pow(ballVolume(r, n), 1/float64(n))
}

// runFig7 reproduces Figure 7: even when the fixed-region technique [54]
// is handed a hypercube whose volume matches ORU's average stopping
// sphere, its output size varies wildly around the target m, while ORU is
// exact by construction.
func runFig7(e *env) {
	// (a) TripAdvisor data with review-mined (simulated) user vectors. The
	// paper uses 50 users; the reduced grid uses fewer to bound runtime.
	taTree := rtree.BulkLoad(data.TripAdvisor(0, 7_2021))
	users := data.TAUserVectors(512, 7_2021)
	nUsers := 16
	if e.scale.Seeds > 8 {
		nUsers = 50
	}
	fig7Panel(e, "Fig 7(a): output sizes on TA (k=5)", taTree, users[:nUsers], 5, []int{10, 15, 20})

	// (b) IND data with random preference vectors at the default scale;
	// three m values spanning the paper's range keep the panel tractable.
	s := e.scale
	indTree := e.cache.Synthetic(data.IND, s.DefaultN, s.DefaultD)
	seeds := expr.Seeds(s.DefaultD, maxInt(10, s.Seeds))
	ms := []int{s.Ms[0], s.DefaultM, s.Ms[len(s.Ms)-1]}
	if e.scale.Seeds > 8 {
		ms = s.Ms
	}
	fig7Panel(e, fmt.Sprintf("Fig 7(b): output sizes on IND (k=%d)", s.DefaultK),
		indTree, seeds, s.DefaultK, ms)
}

func fig7Panel(e *env, title string, tree *rtree.Tree, users []geom.Vector, k int, ms []int) {
	d := tree.Dim()
	fmt.Fprintf(e.out, "\n== %s ==\n", title)
	fmt.Fprintf(e.out, "%-6s %-14s %s\n", "m", "rho* (avg)", "fixed-region output-size spread (ORU outputs exactly m)")
	for _, m := range ms {
		// Average ORU stopping radius over the users.
		var radii []float64
		for _, w := range users {
			res, err := core.ORU(tree, w, k, m)
			if err != nil {
				continue
			}
			radii = append(radii, res.Rho)
		}
		if len(radii) == 0 {
			fmt.Fprintf(e.out, "%-6d unachievable on this dataset\n", m)
			continue
		}
		rhoStar := mean(radii)
		side := sideForBall(rhoStar, d-1)
		// Output size of the fixed-region top-k for that hypercube, per user.
		var sizes []float64
		for _, w := range users {
			out := fixedregion.TopKUnion(tree, w, fixedregion.NewBox(w, side), k)
			sizes = append(sizes, float64(len(out)))
		}
		fmt.Fprintf(e.out, "%-6d %-14.4f %s\n", m, rhoStar, expr.Box(sizes))
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// runFig7c reproduces the counterpart experiment the paper describes in
// prose at the end of Section 6.1: feed the fixed-region R-skyband the
// hypercube matched to ORD's average stopping radius. The paper reports
// even greater output-size variability than Figure 7 — e.g. 12 to 269
// records for target m=50 on IND.
func runFig7c(e *env) {
	s := e.scale
	tree := e.cache.Synthetic(data.IND, s.DefaultN, s.DefaultD)
	users := expr.Seeds(s.DefaultD, maxInt(10, s.Seeds))
	k := s.DefaultK
	d := tree.Dim()
	fmt.Fprintf(e.out, "\n== Fig 7(c) [prose counterpart]: R-skyband output sizes on IND (k=%d) ==\n", k)
	fmt.Fprintf(e.out, "%-6s %-14s %s\n", "m", "rho* (avg)", "fixed-region R-skyband spread (ORD outputs exactly m)")
	for _, m := range []int{s.Ms[0], s.DefaultM, s.Ms[len(s.Ms)-1]} {
		var radii []float64
		for _, w := range users {
			res, err := core.ORD(tree, w, k, m)
			if err != nil {
				continue
			}
			radii = append(radii, res.Rho)
		}
		if len(radii) == 0 {
			fmt.Fprintf(e.out, "%-6d unachievable on this dataset\n", m)
			continue
		}
		rhoStar := mean(radii)
		side := sideForBall(rhoStar, d-1)
		var sizes []float64
		for _, w := range users {
			out := fixedregion.RSkyband(tree, w, fixedregion.NewBox(w, side), k)
			sizes = append(sizes, float64(len(out)))
		}
		fmt.Fprintf(e.out, "%-6d %-14.4f %s\n", m, rhoStar, expr.Box(sizes))
	}
}
