package main

import (
	"math"
	"testing"

	"ordu/internal/core"
)

func TestBallVolume(t *testing.T) {
	// 2-ball (disk) of radius 1: pi. 3-ball: 4/3 pi.
	if v := ballVolume(1, 2); math.Abs(v-math.Pi) > 1e-12 {
		t.Errorf("disk volume = %g", v)
	}
	if v := ballVolume(1, 3); math.Abs(v-4*math.Pi/3) > 1e-12 {
		t.Errorf("3-ball volume = %g", v)
	}
	// Scaling: volume ~ r^n.
	if v := ballVolume(2, 3); math.Abs(v-8*ballVolume(1, 3)) > 1e-9 {
		t.Errorf("3-ball scaling broken: %g", v)
	}
}

func TestSideForBall(t *testing.T) {
	// The cube with the ball's volume has side V^(1/n).
	for _, n := range []int{2, 3, 6} {
		r := 0.3
		side := sideForBall(r, n)
		if math.Abs(math.Pow(side, float64(n))-ballVolume(r, n)) > 1e-12 {
			t.Errorf("n=%d: side %g does not match volume", n, side)
		}
	}
}

func TestMean(t *testing.T) {
	if m := mean([]float64{1, 2, 3}); m != 2 {
		t.Errorf("mean = %g", m)
	}
	if !math.IsNaN(mean(nil)) {
		t.Error("mean of empty should be NaN")
	}
}

func TestFmtCard(t *testing.T) {
	cases := map[int]string{
		500:        "500",
		25_000:     "25K",
		400_000:    "400K",
		1_600_000:  "1.6M",
		25_600_000: "25.6M",
	}
	for n, want := range cases {
		if got := fmtCard(n); got != want {
			t.Errorf("fmtCard(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestNameList(t *testing.T) {
	recs := []core.Record{{ID: 2}, {ID: 0}}
	names := nameList(recs, func(id int) string {
		return []string{"alice", "bob", "carol"}[id]
	})
	if names[0] != "alice" || names[1] != "carol" {
		t.Errorf("names = %v", names)
	}
}

func TestRepeatInt(t *testing.T) {
	r := repeatInt(7, 3)
	if len(r) != 3 || r[0] != 7 || r[2] != 7 {
		t.Errorf("repeatInt = %v", r)
	}
}
