package main

import (
	"errors"
	"fmt"

	"ordu/internal/core"
	"ordu/internal/data"
	"ordu/internal/expr"
	"ordu/internal/fixedregion"
	"ordu/internal/geom"
	"ordu/internal/rtree"
)

// method is one competitor line of a performance figure.
type method struct {
	name string
	run  func(tree *rtree.Tree, w geom.Vector, k, m int) error
}

func ordMethods(e *env) []method {
	return []method{
		{"ORD", func(t *rtree.Tree, w geom.Vector, k, m int) error {
			_, err := core.ORD(t, w, k, m)
			return err
		}},
		{"ORD-BSL", func(t *rtree.Tree, w geom.Vector, k, m int) error {
			_, err := core.ORDBSL(t, w, k, m)
			return err
		}},
		{"RSB-5%", func(t *rtree.Tree, w geom.Vector, k, m int) error {
			fixedregion.RSB(t, w, k, m, 0.05)
			return nil
		}},
		{"RSB-10%", func(t *rtree.Tree, w geom.Vector, k, m int) error {
			fixedregion.RSB(t, w, k, m, 0.10)
			return nil
		}},
	}
}

func oruMethods(e *env) []method {
	return []method{
		{"ORU", func(t *rtree.Tree, w geom.Vector, k, m int) error {
			_, err := core.ORU(t, w, k, m)
			return err
		}},
		{"ORU-BSL", func(t *rtree.Tree, w geom.Vector, k, m int) error {
			_, err := core.ORUBSL(t, w, k, m, e.bslBudget)
			return err
		}},
		{"JAA-5%", func(t *rtree.Tree, w geom.Vector, k, m int) error {
			fixedregion.JAA(t, w, k, m, 0.05)
			return nil
		}},
		{"JAA-10%", func(t *rtree.Tree, w geom.Vector, k, m int) error {
			fixedregion.JAA(t, w, k, m, 0.10)
			return nil
		}},
	}
}

// sweepCell measures one method at one parameter setting.
func (e *env) sweepCell(tree *rtree.Tree, k, m int, meth method) string {
	seeds := expr.Seeds(tree.Dim(), e.scale.Seeds)
	dnf := false
	insufficient := false
	avg, done := e.measureCell(seeds, func(w geom.Vector) {
		if err := meth.run(tree, w, k, m); err != nil {
			if errors.Is(err, core.ErrBudgetExceeded) {
				dnf = true
			} else if errors.Is(err, core.ErrInsufficientData) {
				insufficient = true
			}
		}
	})
	switch {
	case dnf:
		return "DNF"
	case insufficient:
		return "n/a"
	case done == 0:
		return "-"
	default:
		return expr.Dur(avg)
	}
}

// sweep renders one sub-figure: a set of methods across one varying
// parameter on a fixed dataset family.
func (e *env) sweep(title, xname string, xs []string, trees []*rtree.Tree, ks, ms []int, methods []method) {
	rows := make([]expr.Row, len(methods))
	for i, meth := range methods {
		cells := make([]string, len(xs))
		for j := range xs {
			cells[j] = e.sweepCell(trees[j], ks[j], ms[j], meth)
		}
		rows[i] = expr.Row{Label: meth.name, Cells: cells}
	}
	expr.Table(e.out, title, xname, xs, rows)
}

// repeat fills a slice with one value per x position.
func repeatInt(v, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// runFig8 reproduces Figure 8: ORD against its baseline and the
// fixed-region RSB adaptations, over |D|, d, k and m on IND data.
func runFig8(e *env) {
	s := e.scale
	methods := ordMethods(e)

	xs := make([]string, len(s.Cardinalities))
	trees := make([]*rtree.Tree, len(s.Cardinalities))
	for i, n := range s.Cardinalities {
		xs[i] = fmtCard(n)
		trees[i] = e.cache.Synthetic(data.IND, n, s.DefaultD)
	}
	e.sweep("Fig 8(a): ORD time vs |D| (IND)", "|D|", xs,
		trees, repeatInt(s.DefaultK, len(xs)), repeatInt(s.DefaultM, len(xs)), methods)

	xs = xs[:0]
	trees = trees[:0]
	for _, d := range s.Dims {
		xs = append(xs, fmt.Sprint(d))
		trees = append(trees, e.cache.Synthetic(data.IND, s.DefaultN, d))
	}
	e.sweep("Fig 8(b): ORD time vs d (IND)", "d", xs,
		trees, repeatInt(s.DefaultK, len(xs)), repeatInt(s.DefaultM, len(xs)), methods)

	def := e.cache.Synthetic(data.IND, s.DefaultN, s.DefaultD)
	xs = xs[:0]
	var ks []int
	var treesK []*rtree.Tree
	for _, k := range s.Ks {
		xs = append(xs, fmt.Sprint(k))
		ks = append(ks, k)
		treesK = append(treesK, def)
	}
	e.sweep("Fig 8(c): ORD time vs k (IND)", "k", xs,
		treesK, ks, repeatInt(s.DefaultM, len(xs)), methods)

	xs = xs[:0]
	var ms []int
	var treesM []*rtree.Tree
	for _, m := range s.Ms {
		xs = append(xs, fmt.Sprint(m))
		ms = append(ms, m)
		treesM = append(treesM, def)
	}
	e.sweep("Fig 8(d): ORD time vs m (IND)", "m", xs,
		treesM, repeatInt(s.DefaultK, len(xs)), ms, methods)
}

// runFig9 reproduces Figure 9: ORD across data distributions (vs m) and
// across the real datasets (vs k).
func runFig9(e *env) {
	s := e.scale
	ordOnly := ordMethods(e)[:1]

	xs := make([]string, len(s.Ms))
	var ms []int
	for i, m := range s.Ms {
		xs[i] = fmt.Sprint(m)
		ms = append(ms, m)
	}
	var rows []expr.Row
	for _, dist := range []data.Distribution{data.ANTI, data.COR, data.IND} {
		tree := e.cache.Synthetic(dist, s.DefaultN, s.DefaultD)
		cells := make([]string, len(xs))
		for j, m := range ms {
			cells[j] = e.sweepCell(tree, s.DefaultK, m, ordOnly[0])
		}
		rows = append(rows, expr.Row{Label: string(dist), Cells: cells})
	}
	expr.Table(e.out, "Fig 9(a): ORD time vs m across distributions", "m", xs, rows)

	xs = xs[:0]
	var ks []int
	for _, k := range s.Ks {
		xs = append(xs, fmt.Sprint(k))
		ks = append(ks, k)
	}
	rows = rows[:0]
	for _, name := range []string{"HOTEL", "HOUSE", "NBA"} {
		tree := e.cache.Named(name, e.realN(name))
		cells := make([]string, len(xs))
		for j, k := range ks {
			cells[j] = e.sweepCell(tree, k, s.DefaultM, ordOnly[0])
		}
		rows = append(rows, expr.Row{Label: name, Cells: cells})
	}
	expr.Table(e.out, "Fig 9(b): ORD time vs k on real datasets", "k", xs, rows)
}

// realN returns the cardinality used for a simulated real dataset: the
// canonical size, scaled down in quick mode.
func (e *env) realN(name string) int {
	if e.scale.DefaultN >= 400_000 {
		return 0 // canonical size
	}
	switch name {
	case "NBA", "TA":
		return 0 // already small
	default:
		return e.scale.DefaultN
	}
}

// runFig10 reproduces Figure 10: ORU against its baseline and the
// fixed-region JAA adaptations, over |D|, d, k and m on IND data.
func runFig10(e *env) {
	s := e.scale
	methods := oruMethods(e)

	xs := make([]string, len(s.Cardinalities))
	trees := make([]*rtree.Tree, len(s.Cardinalities))
	for i, n := range s.Cardinalities {
		xs[i] = fmtCard(n)
		trees[i] = e.cache.Synthetic(data.IND, n, s.DefaultD)
	}
	e.sweep("Fig 10(a): ORU time vs |D| (IND)", "|D|", xs,
		trees, repeatInt(s.DefaultK, len(xs)), repeatInt(s.DefaultM, len(xs)), methods)

	xs = xs[:0]
	trees = trees[:0]
	for _, d := range s.Dims {
		xs = append(xs, fmt.Sprint(d))
		trees = append(trees, e.cache.Synthetic(data.IND, s.DefaultN, d))
	}
	e.sweep("Fig 10(b): ORU time vs d (IND)", "d", xs,
		trees, repeatInt(s.DefaultK, len(xs)), repeatInt(s.DefaultM, len(xs)), methods)

	def := e.cache.Synthetic(data.IND, s.DefaultN, s.DefaultD)
	xs = xs[:0]
	var ks []int
	var treesK []*rtree.Tree
	for _, k := range s.Ks {
		xs = append(xs, fmt.Sprint(k))
		ks = append(ks, k)
		treesK = append(treesK, def)
	}
	e.sweep("Fig 10(c): ORU time vs k (IND)", "k", xs,
		treesK, ks, repeatInt(s.DefaultM, len(xs)), methods)

	xs = xs[:0]
	var ms []int
	var treesM []*rtree.Tree
	for _, m := range s.Ms {
		xs = append(xs, fmt.Sprint(m))
		ms = append(ms, m)
		treesM = append(treesM, def)
	}
	e.sweep("Fig 10(d): ORU time vs m (IND)", "m", xs,
		treesM, repeatInt(s.DefaultK, len(xs)), ms, methods)
}

// runFig11 reproduces Figure 11: ORU across distributions (vs m) and real
// datasets (vs k).
func runFig11(e *env) {
	s := e.scale
	oruOnly := oruMethods(e)[:1]

	xs := make([]string, 0, len(s.Ms))
	var ms []int
	for _, m := range s.Ms {
		xs = append(xs, fmt.Sprint(m))
		ms = append(ms, m)
	}
	var rows []expr.Row
	for _, dist := range []data.Distribution{data.ANTI, data.COR, data.IND} {
		tree := e.cache.Synthetic(dist, s.DefaultN, s.DefaultD)
		cells := make([]string, len(xs))
		for j, m := range ms {
			cells[j] = e.sweepCell(tree, s.DefaultK, m, oruOnly[0])
		}
		rows = append(rows, expr.Row{Label: string(dist), Cells: cells})
	}
	expr.Table(e.out, "Fig 11(a): ORU time vs m across distributions", "m", xs, rows)

	xs = xs[:0]
	var ks []int
	for _, k := range s.Ks {
		xs = append(xs, fmt.Sprint(k))
		ks = append(ks, k)
	}
	rows = rows[:0]
	for _, name := range []string{"HOTEL", "HOUSE", "NBA"} {
		tree := e.cache.Named(name, e.realN(name))
		cells := make([]string, len(xs))
		for j, k := range ks {
			cells[j] = e.sweepCell(tree, k, s.DefaultM, oruOnly[0])
		}
		rows = append(rows, expr.Row{Label: name, Cells: cells})
	}
	expr.Table(e.out, "Fig 11(b): ORU time vs k on real datasets", "k", xs, rows)
}

// runDiscussion reproduces the Section 6.4 headline numbers: ORD and ORU
// wall-clock on IND at the default and the largest cardinality.
func runDiscussion(e *env) {
	s := e.scale
	sizes := []int{s.DefaultN, s.Cardinalities[len(s.Cardinalities)-1]}
	fmt.Fprintf(e.out, "\n== Section 6.4: headline wall-clock (IND, d=%d, k=%d, m=%d) ==\n",
		s.DefaultD, s.DefaultK, s.DefaultM)
	fmt.Fprintf(e.out, "(paper at 400K/25.6M: ORD 0.22s/0.34s, ORU 4.9s/72s)\n")
	for _, n := range sizes {
		tree := e.cache.Synthetic(data.IND, n, s.DefaultD)
		seeds := expr.Seeds(s.DefaultD, s.Seeds)
		ordAvg, _ := e.measureCell(seeds, func(w geom.Vector) {
			if _, err := core.ORD(tree, w, s.DefaultK, s.DefaultM); err != nil {
				fmt.Fprintf(e.out, "(ORD failed at |D|=%s: %v)\n", fmtCard(n), err)
			}
		})
		oruAvg, _ := e.measureCell(seeds, func(w geom.Vector) {
			if _, err := core.ORU(tree, w, s.DefaultK, s.DefaultM); err != nil {
				fmt.Fprintf(e.out, "(ORU failed at |D|=%s: %v)\n", fmtCard(n), err)
			}
		})
		fmt.Fprintf(e.out, "|D|=%-8s ORD %-10s ORU %-10s\n", fmtCard(n), expr.Dur(ordAvg), expr.Dur(oruAvg))
	}
}

func fmtCard(n int) string {
	switch {
	case n >= 1_000_000:
		return fmt.Sprintf("%.1fM", float64(n)/1e6)
	case n >= 1000:
		return fmt.Sprintf("%dK", n/1000)
	default:
		return fmt.Sprint(n)
	}
}
