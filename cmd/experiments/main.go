// Command experiments regenerates every table and figure of the paper's
// evaluation (Section 6) on this library's implementation:
//
//	params     Table 2    parameter grid in use
//	fig6       Figure 6   NBA case study (ORD/ORU vs top-m vs OSS skyline)
//	jaccard    Section 6.1 Jaccard similarities on IND defaults
//	fig7       Figure 7   output-size spread of fixed-region techniques
//	fig7c      Section 6.1 prose: R-skyband counterpart of Figure 7
//	fig8       Figure 8   ORD vs RSB-5%/RSB-10%/ORD-BSL (IND sweeps)
//	fig9       Figure 9   ORD across distributions and real datasets
//	fig10      Figure 10  ORU vs JAA-5%/JAA-10%/ORU-BSL (IND sweeps)
//	fig11      Figure 11  ORU across distributions and real datasets
//	discussion Section 6.4 headline wall-clock numbers
//	all        everything above
//
// By default a laptop-scale reduction of the paper's grid is used (see
// EXPERIMENTS.md); -paper selects the full Table 2 grid.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"ordu/internal/expr"
	"ordu/internal/geom"
)

type env struct {
	scale expr.Scale
	cache *expr.Cache
	out   io.Writer
	// cellBudget caps the wall-clock spent measuring one table cell; slow
	// baselines report the mean of however many seeds completed.
	cellBudget time.Duration
	// bslBudget caps ORU-BSL partitionings before declaring DNF.
	bslBudget int
}

func main() {
	exp := flag.String("exp", "all", "experiment to run (params|fig6|jaccard|fig7|fig8|fig9|fig10|fig11|discussion|all)")
	seeds := flag.Int("seeds", 0, "preference vectors per measurement (0 = scale default)")
	paper := flag.Bool("paper", false, "use the paper's full Table 2 grid (slow)")
	quick := flag.Bool("quick", false, "use the minimal smoke-test grid")
	cellSec := flag.Int("cell-budget", 120, "max seconds to spend per table cell")
	flag.Parse()

	scale := expr.ReducedScale()
	if *paper {
		scale = expr.PaperScale()
	}
	if *quick {
		scale = expr.QuickScale()
	}
	if *seeds > 0 {
		scale.Seeds = *seeds
	}
	e := &env{
		scale:      scale,
		cache:      expr.NewCache(),
		out:        os.Stdout,
		cellBudget: time.Duration(*cellSec) * time.Second,
		bslBudget:  200_000,
	}

	run := func(name string, fn func(*env)) {
		if *exp == name || *exp == "all" {
			fmt.Fprintf(os.Stderr, "[experiments] running %s...\n", name)
			t0 := time.Now()
			fn(e)
			fmt.Fprintf(os.Stderr, "[experiments] %s done in %v\n", name, time.Since(t0).Round(time.Millisecond))
		}
	}
	run("params", runParams)
	run("fig6", runFig6)
	run("jaccard", runJaccard)
	run("fig7", runFig7)
	run("fig7c", runFig7c)
	run("fig8", runFig8)
	run("fig9", runFig9)
	run("fig10", runFig10)
	run("fig11", runFig11)
	run("discussion", runDiscussion)
}

// measureCell averages fn over the seed vectors, stopping early when the
// cell budget is exhausted. It reports the mean and how many seeds ran.
func (e *env) measureCell(seeds []geom.Vector, fn func(w geom.Vector)) (time.Duration, int) {
	var total time.Duration
	done := 0
	for _, w := range seeds {
		t0 := time.Now()
		fn(w)
		total += time.Since(t0)
		done++
		if total > e.cellBudget {
			break
		}
	}
	if done == 0 {
		return 0, 0
	}
	return total / time.Duration(done), done
}

func runParams(e *env) {
	s := e.scale
	fmt.Fprintf(e.out, "\n== Table 2: parameters, tested values, defaults ==\n")
	fmt.Fprintf(e.out, "%-24s %v (default %d)\n", "Dataset cardinality |D|", s.Cardinalities, s.DefaultN)
	fmt.Fprintf(e.out, "%-24s %v (default %d)\n", "Dimensionality d", s.Dims, s.DefaultD)
	fmt.Fprintf(e.out, "%-24s %v (default %d)\n", "Parameter k", s.Ks, s.DefaultK)
	fmt.Fprintf(e.out, "%-24s %v (default %d)\n", "Output size m", s.Ms, s.DefaultM)
	fmt.Fprintf(e.out, "%-24s %d\n", "Seeds per measurement", s.Seeds)
}
