// Command datagen writes the library's benchmark datasets to CSV, for use
// with cmd/ordu -data or external tools.
//
//	datagen -dist IND -n 400000 -d 4 > ind.csv
//	datagen -dataset NBA > nba.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"

	"ordu/internal/data"
	"ordu/internal/geom"
)

func main() {
	var (
		dist    = flag.String("dist", "", "synthetic distribution: IND, COR, ANTI")
		dataset = flag.String("dataset", "", "simulated real dataset: HOTEL, HOUSE, NBA, TA")
		n       = flag.Int("n", 100000, "cardinality (synthetic; 0 = canonical for real)")
		d       = flag.Int("d", 4, "dimensionality (synthetic only)")
		seed    = flag.Int64("seed", 1, "generator seed")
	)
	flag.Parse()

	var pts []geom.Vector
	switch {
	case *dist != "":
		pts = data.Synthetic(data.Distribution(*dist), *n, *d, *seed)
	case *dataset == "HOTEL":
		pts = data.Hotel(*n, *seed)
	case *dataset == "HOUSE":
		pts = data.House(*n, *seed)
	case *dataset == "NBA":
		pts = data.NBA(*n, *seed)
	case *dataset == "TA":
		pts = data.TripAdvisor(*n, *seed)
	default:
		fmt.Fprintln(os.Stderr, "datagen: specify -dist or -dataset")
		os.Exit(1)
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for _, p := range pts {
		for j, x := range p {
			if j > 0 {
				w.WriteByte(',')
			}
			w.WriteString(strconv.FormatFloat(x, 'f', 6, 64))
		}
		w.WriteByte('\n')
	}
}
