// Command ordu runs ORD/ORU and the classic operators from the command
// line, over a CSV file or a generated synthetic dataset.
//
// Examples:
//
//	ordu -gen IND -n 100000 -d 4 -op ord -w 0.3,0.3,0.2,0.2 -k 5 -m 20
//	ordu -data hotels.csv -op oru -w 0.5,0.25,0.25 -k 3 -m 10
//	ordu -gen ANTI -n 50000 -d 3 -op skyband -k 2
//
// CSV input: one record per line, numeric columns only, no header. Column
// values are min-max normalised; larger is treated as better (negate
// columns to minimise before exporting).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"ordu"
	"ordu/internal/data"
	"ordu/internal/server"
)

func main() {
	var (
		dataFile = flag.String("data", "", "CSV file of records (numeric, no header)")
		gen      = flag.String("gen", "", "generate a synthetic dataset: IND, COR or ANTI")
		n        = flag.Int("n", 100000, "synthetic dataset cardinality")
		d        = flag.Int("d", 4, "synthetic dataset dimensionality")
		seed     = flag.Int64("seed", 1, "synthetic generator seed")
		op       = flag.String("op", "ord", "operator: ord, oru, topk, skyline, skyband, osskyline")
		wFlag    = flag.String("w", "", "comma-separated preference weights (normalised automatically)")
		k        = flag.Int("k", 5, "rank parameter k")
		m        = flag.Int("m", 20, "output size m")
		show     = flag.Int("show", 20, "max records to print")
		jsonOut  = flag.Bool("json", false, "emit the result as JSON in the ordud wire format")
	)
	flag.Parse()

	records, err := loadRecords(*dataFile, *gen, *n, *d, *seed)
	if err != nil {
		fatal(err)
	}
	ds, err := ordu.NewDataset(records)
	if err != nil {
		fatal(err)
	}
	if !*jsonOut {
		fmt.Printf("dataset: %d records x %d attributes\n", ds.Len(), ds.Dim())
	}

	var w []float64
	if *wFlag != "" {
		w, err = parseWeights(*wFlag)
		if err != nil {
			fatal(err)
		}
	} else {
		w = make([]float64, ds.Dim())
		for i := range w {
			w[i] = 1 / float64(ds.Dim())
		}
	}

	t0 := time.Now()
	switch *op {
	case "ord":
		res, err := ds.ORD(w, *k, *m)
		if err != nil {
			fatal(err)
		}
		if *jsonOut {
			emitJSON(server.NewORDResponse(res))
			return
		}
		fmt.Printf("ORD(k=%d, m=%d) stopping radius rho=%.6f  [%v]\n", *k, *m, res.Rho, time.Since(t0))
		for i, r := range res.Records {
			if i >= *show {
				fmt.Printf("  ... %d more\n", len(res.Records)-i)
				break
			}
			fmt.Printf("  #%-4d id=%-8d radius=%.6f  %v\n", i+1, r.ID, res.Radii[i], short(r.Record))
		}
	case "oru":
		res, err := ds.ORU(w, *k, *m)
		if err != nil {
			fatal(err)
		}
		if *jsonOut {
			emitJSON(server.NewORUResponse(res))
			return
		}
		fmt.Printf("ORU(k=%d, m=%d) stopping radius rho=%.6f, %d top-k regions  [%v]\n",
			*k, *m, res.Rho, len(res.Regions), time.Since(t0))
		for i, r := range res.Records {
			if i >= *show {
				fmt.Printf("  ... %d more\n", len(res.Records)-i)
				break
			}
			fmt.Printf("  #%-4d id=%-8d  %v\n", i+1, r.ID, short(r.Record))
		}
	case "topk":
		res, err := ds.TopK(w, *k)
		if err != nil {
			fatal(err)
		}
		if *jsonOut {
			emitJSON(server.NewRecordsResponse("topk", res))
			return
		}
		fmt.Printf("top-%d  [%v]\n", *k, time.Since(t0))
		for i, r := range res {
			fmt.Printf("  #%-4d id=%-8d score=%.4f  %v\n", i+1, r.ID, r.Score, short(r.Record))
		}
	case "skyline":
		res := ds.Skyline()
		if *jsonOut {
			emitJSON(server.NewRecordsResponse("skyline", res))
			return
		}
		fmt.Printf("skyline: %d records  [%v]\n", len(res), time.Since(t0))
		printSome(res, *show)
	case "skyband":
		res, err := ds.KSkyband(*k)
		if err != nil {
			fatal(err)
		}
		if *jsonOut {
			emitJSON(server.NewRecordsResponse("skyband", res))
			return
		}
		fmt.Printf("%d-skyband: %d records  [%v]\n", *k, len(res), time.Since(t0))
		printSome(res, *show)
	case "osskyline":
		res := ds.OSSkyline(*m)
		if *jsonOut {
			emitJSON(server.NewRecordsResponse("osskyline", res))
			return
		}
		fmt.Printf("OSS skyline (top-%d by dominance count)  [%v]\n", *m, time.Since(t0))
		for i, r := range res {
			fmt.Printf("  #%-4d id=%-8d dominates=%d  %v\n", i+1, r.ID, int(r.Score), short(r.Record))
		}
	default:
		fatal(fmt.Errorf("unknown operator %q", *op))
	}
}

func loadRecords(file, gen string, n, d int, seed int64) ([][]float64, error) {
	if file != "" {
		out, err := data.LoadCSV(file)
		if err != nil {
			return nil, err
		}
		return ordu.Normalize(out), nil
	}
	if gen == "" {
		gen = "IND"
	}
	pts := data.Synthetic(data.Distribution(gen), n, d, seed)
	out := make([][]float64, len(pts))
	for i, p := range pts {
		out[i] = p
	}
	return out, nil
}

func parseWeights(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	w := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("weight %d: %v", i+1, err)
		}
		w[i] = v
	}
	return ordu.Preference(w)
}

func printSome(res []ordu.Result, show int) {
	for i, r := range res {
		if i >= show {
			fmt.Printf("  ... %d more\n", len(res)-i)
			return
		}
		fmt.Printf("  id=%-8d %v\n", r.ID, short(r.Record))
	}
}

func short(v []float64) string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = strconv.FormatFloat(x, 'f', 3, 64)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// emitJSON prints one wire-format result line (the same schema ordud
// serves), so shell pipelines and network clients share a format.
func emitJSON(v *server.QueryResponse) {
	if err := json.NewEncoder(os.Stdout).Encode(v); err != nil {
		fatal(err)
	}
}

// fatal prints a one-line friendly message and exits non-zero. Known input
// mistakes get a hint instead of a raw error dump.
func fatal(err error) {
	msg := err.Error()
	switch {
	case errors.Is(err, ordu.ErrBadSeed):
		msg += " (check -w: comma-separated non-negative weights, one per attribute)"
	case errors.Is(err, ordu.ErrBadParams):
		msg += " (check -k and -m: both positive, with m >= k)"
	case errors.Is(err, ordu.ErrInsufficientData):
		msg += " (the dataset cannot yield m records: lower -m or raise -k)"
	}
	fmt.Fprintln(os.Stderr, "ordu:", strings.TrimPrefix(msg, "ordu: "))
	os.Exit(1)
}
