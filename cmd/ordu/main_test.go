package main

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseWeights(t *testing.T) {
	w, err := parseWeights("2, 2, 4")
	if err != nil {
		t.Fatal(err)
	}
	if w[0] != 0.25 || w[2] != 0.5 {
		t.Fatalf("w = %v", w)
	}
	if _, err := parseWeights("1,x"); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := parseWeights("0,0"); err == nil {
		t.Error("zero weights accepted")
	}
}

func TestLoadRecordsCSV(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.csv")
	if err := os.WriteFile(path, []byte("1,10\n2,20\n3,15\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := loadRecords(path, "", 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || len(recs[0]) != 2 {
		t.Fatalf("shape %dx%d", len(recs), len(recs[0]))
	}
	// Min-max normalised: column 0 holds 1,2,3 -> 0, 0.5, 1.
	if recs[0][0] != 0 || recs[1][0] != 0.5 || recs[2][0] != 1 {
		t.Fatalf("normalisation wrong: %v", recs)
	}
	// Column 1 holds 10,20,15 -> 0, 1, 0.5.
	if recs[0][1] != 0 || recs[1][1] != 1 || math.Abs(recs[2][1]-0.5) > 1e-12 {
		t.Fatalf("normalisation wrong: %v", recs)
	}
	if _, err := loadRecords(filepath.Join(dir, "missing.csv"), "", 0, 0, 1); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.csv")
	os.WriteFile(bad, []byte("1,abc\n"), 0o644)
	if _, err := loadRecords(bad, "", 0, 0, 1); err == nil {
		t.Error("non-numeric cell accepted")
	}
}

func TestLoadRecordsSynthetic(t *testing.T) {
	recs, err := loadRecords("", "COR", 50, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 50 || len(recs[0]) != 3 {
		t.Fatalf("shape %dx%d", len(recs), len(recs[0]))
	}
	// Default distribution when neither flag is set.
	recs, err = loadRecords("", "", 10, 2, 7)
	if err != nil || len(recs) != 10 {
		t.Fatalf("default gen failed: %v", err)
	}
}

func TestShortFormat(t *testing.T) {
	s := short([]float64{0.1234, 1})
	if !strings.HasPrefix(s, "[0.123") || !strings.Contains(s, "1.000") {
		t.Fatalf("short = %q", s)
	}
}
