package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOld = `goos: linux
goarch: amd64
pkg: ordu
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkDefaultsORD-8   	     189	   6092370 ns/op	 3838665 B/op	  109243 allocs/op
BenchmarkDefaultsORU-8   	       1	2280484720 ns/op	1411272720 B/op	24670649 allocs/op
BenchmarkSubstrateMindist-8  	 1304828	       915.2 ns/op	     591 B/op	      17 allocs/op
PASS
ok  	ordu	610.983s
`

const sampleNewOK = `BenchmarkDefaultsORD-8   	     250	   4000000 ns/op	 1000000 B/op	   50000 allocs/op
BenchmarkDefaultsORU-8   	       1	1500000000 ns/op	 400000000 B/op	 9000000 allocs/op
BenchmarkSubstrateMindist-8  	 9000000	       12.0 ns/op	       0 B/op	       0 allocs/op
`

const sampleNewBad = `BenchmarkDefaultsORD-8   	     100	  12000000 ns/op	 8000000 B/op	  300000 allocs/op
BenchmarkDefaultsORU-8   	       1	1500000000 ns/op	 400000000 B/op	 9000000 allocs/op
BenchmarkSubstrateMindist-8  	 9000000	       12.0 ns/op	       0 B/op	       0 allocs/op
`

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseBench(t *testing.T) {
	snap, err := parseBench(strings.NewReader(sampleOld))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(snap.Benchmarks))
	}
	by := byName(snap)
	ord := by["BenchmarkDefaultsORD"]
	if ord.NsPerOp != 6092370 || ord.AllocsPerOp != 109243 || ord.BytesPerOp != 3838665 {
		t.Fatalf("ORD parsed wrong: %+v", ord)
	}
	md := by["BenchmarkSubstrateMindist"]
	if md.NsPerOp != 915.2 || md.Iterations != 1304828 {
		t.Fatalf("Mindist parsed wrong: %+v", md)
	}
}

func TestDumpRoundTrip(t *testing.T) {
	in := writeTemp(t, "old.txt", sampleOld)
	var out, errOut bytes.Buffer
	if code := run([]string{"-dump", in}, &out, &errOut); code != 0 {
		t.Fatalf("dump exited %d: %s", code, errOut.String())
	}
	var snap Snapshot
	if err := json.Unmarshal(out.Bytes(), &snap); err != nil {
		t.Fatalf("dump output not JSON: %v", err)
	}
	if len(snap.Benchmarks) != 3 {
		t.Fatalf("round-trip lost benchmarks: %d", len(snap.Benchmarks))
	}
	// A JSON snapshot must itself be accepted as a diff input.
	jsonPath := writeTemp(t, "old.json", out.String())
	newPath := writeTemp(t, "new.txt", sampleNewOK)
	var out2, err2 bytes.Buffer
	if code := run([]string{jsonPath, newPath}, &out2, &err2); code != 0 {
		t.Fatalf("diff with JSON old exited %d: %s%s", code, out2.String(), err2.String())
	}
}

func TestDiffPassesOnImprovement(t *testing.T) {
	oldP := writeTemp(t, "old.txt", sampleOld)
	newP := writeTemp(t, "new.txt", sampleNewOK)
	var out, errOut bytes.Buffer
	if code := run([]string{oldP, newP}, &out, &errOut); code != 0 {
		t.Fatalf("improvement flagged as regression (exit %d):\n%s", code, out.String())
	}
}

func TestDiffFailsOnRegression(t *testing.T) {
	oldP := writeTemp(t, "old.txt", sampleOld)
	newP := writeTemp(t, "new.txt", sampleNewBad)
	var out, errOut bytes.Buffer
	if code := run([]string{oldP, newP}, &out, &errOut); code != 1 {
		t.Fatalf("regression not flagged (exit %d):\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "TIME-REGRESSION") || !strings.Contains(out.String(), "ALLOC-REGRESSION") {
		t.Fatalf("missing regression markers:\n%s", out.String())
	}
}

func TestZeroAllocStateIsProtected(t *testing.T) {
	oldP := writeTemp(t, "old.txt", "BenchmarkX-8 100 50.0 ns/op 0 B/op 0 allocs/op\n")
	newP := writeTemp(t, "new.txt", "BenchmarkX-8 100 50.0 ns/op 16 B/op 1 allocs/op\n")
	var out, errOut bytes.Buffer
	if code := run([]string{oldP, newP}, &out, &errOut); code != 1 {
		t.Fatalf("0 -> 1 allocs/op not flagged (exit %d):\n%s", code, out.String())
	}
}

func TestAllocsOnlyIgnoresTime(t *testing.T) {
	// 10x slower but allocation-identical: -allocs-only must pass where the
	// default mode fails.
	oldP := writeTemp(t, "old.txt", "BenchmarkX-8 100 50.0 ns/op 16 B/op 2 allocs/op\n")
	newP := writeTemp(t, "new.txt", "BenchmarkX-8 100 500.0 ns/op 16 B/op 2 allocs/op\n")
	var out, errOut bytes.Buffer
	if code := run([]string{oldP, newP}, &out, &errOut); code != 1 {
		t.Fatalf("time regression not flagged in default mode (exit %d):\n%s", code, out.String())
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-allocs-only", oldP, newP}, &out, &errOut); code != 0 {
		t.Fatalf("-allocs-only flagged a pure time change (exit %d):\n%s", code, out.String())
	}
}

func TestAllocsOnlyStillCatchesAllocs(t *testing.T) {
	oldP := writeTemp(t, "old.txt", "BenchmarkX-8 100 50.0 ns/op 16 B/op 2 allocs/op\n")
	newP := writeTemp(t, "new.txt", "BenchmarkX-8 100 50.0 ns/op 64 B/op 8 allocs/op\n")
	var out, errOut bytes.Buffer
	if code := run([]string{"-allocs-only", oldP, newP}, &out, &errOut); code != 1 {
		t.Fatalf("-allocs-only missed an alloc regression (exit %d):\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "ALLOC-REGRESSION") {
		t.Fatalf("missing ALLOC-REGRESSION marker:\n%s", out.String())
	}
}

func TestHelpExitsZero(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-help"}, &out, &errOut); code != 0 {
		t.Fatalf("-help exited %d, want 0", code)
	}
}

func TestSuffixStrippedOnlyWhenUniform(t *testing.T) {
	// Uniform "-8" across the file: the GOMAXPROCS suffix, stripped.
	snap, err := parseBench(strings.NewReader(
		"BenchmarkA-8 100 50.0 ns/op\nBenchmarkB/shards-4-8 100 60.0 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	by := byName(snap)
	if _, ok := by["BenchmarkA"]; !ok {
		t.Fatalf("uniform suffix not stripped: %+v", snap.Benchmarks)
	}
	if _, ok := by["BenchmarkB/shards-4"]; !ok {
		t.Fatalf("inner name segment mangled: %+v", snap.Benchmarks)
	}
	// Mixed trailing integers on a GOMAXPROCS=1 run: genuine name parts,
	// nothing may be stripped.
	snap, err = parseBench(strings.NewReader(
		"BenchmarkA 100 50.0 ns/op\nBenchmarkB/shards-4 100 60.0 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	by = byName(snap)
	if _, ok := by["BenchmarkB/shards-4"]; !ok {
		t.Fatalf("genuine -4 name part stripped: %+v", snap.Benchmarks)
	}
}

func TestDiffMatchesAcrossGOMAXPROCSSuffix(t *testing.T) {
	// Old snapshot recorded without the suffix (GOMAXPROCS=1), new one with
	// it (and vice versa): the diff must compare them, not skip them. JSON
	// inputs bypass parse-time normalisation, so this exercises the
	// diff-time canonical fallback.
	oldJSON := `{"benchmarks":[{"name":"BenchmarkX","iterations":100,"ns_per_op":50,"allocs_per_op":2}]}`
	newJSON := `{"benchmarks":[{"name":"BenchmarkX-8","iterations":100,"ns_per_op":500,"allocs_per_op":2}]}`
	oldP := writeTemp(t, "old.json", oldJSON)
	newP := writeTemp(t, "new.json", newJSON)
	var out, errOut bytes.Buffer
	if code := run([]string{oldP, newP}, &out, &errOut); code != 1 {
		t.Fatalf("suffixed rename not compared (exit %d):\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "TIME-REGRESSION") {
		t.Fatalf("regression lost across suffix rename:\n%s", out.String())
	}
	if strings.Contains(out.String(), "only in") {
		t.Fatalf("suffix rename reported as missing:\n%s", out.String())
	}
	// The reverse direction: old suffixed, new bare.
	oldP = writeTemp(t, "old2.json", newJSON)
	newP = writeTemp(t, "new2.json", oldJSON)
	out.Reset()
	errOut.Reset()
	if code := run([]string{oldP, newP}, &out, &errOut); code != 0 {
		t.Fatalf("improvement across suffix loss flagged (exit %d):\n%s", code, out.String())
	}
	if strings.Contains(out.String(), "only in") {
		t.Fatalf("suffix loss reported as missing:\n%s", out.String())
	}
}

func TestMissingBenchmarksNeverFail(t *testing.T) {
	oldP := writeTemp(t, "old.txt", "BenchmarkGone-8 100 50.0 ns/op\n")
	newP := writeTemp(t, "new.txt", "BenchmarkNew-8 100 50.0 ns/op\n")
	var out, errOut bytes.Buffer
	if code := run([]string{oldP, newP}, &out, &errOut); code != 0 {
		t.Fatalf("disjoint suites flagged as regression (exit %d):\n%s", code, out.String())
	}
}
