// Command benchdiff compares two `go test -bench` runs and fails when a
// benchmark regressed beyond a threshold, in wall-clock time (ns/op) or in
// allocations (allocs/op). It also converts a bench run to a stable JSON
// snapshot, the format committed as BENCH_<tag>.json by `make bench`.
//
// Usage:
//
//	benchdiff -dump bench.txt                  # emit JSON snapshot on stdout
//	benchdiff old.{txt,json} new.{txt,json}    # diff; exit 1 on regression
//
// Inputs may be raw `go test -bench` output or a JSON snapshot produced by
// -dump; the format is auto-detected. Benchmarks present in only one input
// are reported but never fail the diff (suites grow and shrink).
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's measured costs.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// Snapshot is the committed JSON form of a bench run.
type Snapshot struct {
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dump := fs.Bool("dump", false, "parse one bench output and print a JSON snapshot")
	timeThresh := fs.Float64("time-threshold", 1.30, "fail when new ns/op exceeds old by this factor")
	allocThresh := fs.Float64("alloc-threshold", 1.10, "fail when new allocs/op exceeds old by this factor")
	allocsOnly := fs.Bool("allocs-only", false, "compare allocs/op only, ignoring wall-clock time (for noisy shared CI runners)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: benchdiff [-dump] [-allocs-only] [-time-threshold F] [-alloc-threshold F] old [new]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if *dump {
		if fs.NArg() != 1 {
			fmt.Fprintln(stderr, "benchdiff: -dump takes exactly one input file")
			return 2
		}
		snap, err := loadFile(fs.Arg(0))
		if err != nil {
			fmt.Fprintf(stderr, "benchdiff: %v\n", err)
			return 2
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snap); err != nil {
			fmt.Fprintf(stderr, "benchdiff: %v\n", err)
			return 2
		}
		return 0
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	oldSnap, err := loadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 2
	}
	newSnap, err := loadFile(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 2
	}
	if *allocsOnly {
		// Disable the time comparison: allocation counts are deterministic
		// on any runner, wall-clock time is not.
		*timeThresh = 0
	}
	regressions := diff(oldSnap, newSnap, *timeThresh, *allocThresh, stdout)
	if regressions > 0 {
		fmt.Fprintf(stdout, "\n%d regression(s) beyond thresholds (time ×%.2f, allocs ×%.2f)\n",
			regressions, *timeThresh, *allocThresh)
		return 1
	}
	fmt.Fprintln(stdout, "no regressions beyond thresholds")
	return 0
}

// diff prints a comparison table and returns the number of regressions.
// A timeThresh of 0 disables the time comparison (the -allocs-only mode).
// Names that differ only by a trailing "-N" GOMAXPROCS suffix (gained or
// lost when a snapshot was taken with different parallelism) are matched
// through their canonical form, so such renames compare instead of being
// reported as missing.
func diff(oldSnap, newSnap *Snapshot, timeThresh, allocThresh float64, out io.Writer) int {
	oldBy := byName(oldSnap)
	newBy := byName(newSnap)
	// Canonical-name index of the new run, for suffix-tolerant matching.
	// Only unambiguous canonical matches are used: if two new benchmarks
	// collapse to the same canonical name, neither is matched through it.
	newCanon := make(map[string][]string)
	for name := range newBy {
		newCanon[canonicalName(name)] = append(newCanon[canonicalName(name)], name)
	}
	names := make([]string, 0, len(oldBy))
	for name := range oldBy {
		names = append(names, name)
	}
	sort.Strings(names)
	matched := make(map[string]bool, len(newBy))
	regressions := 0
	for _, name := range names {
		o := oldBy[name]
		n, ok := newBy[name]
		if ok {
			matched[name] = true
		} else if alts := newCanon[canonicalName(name)]; len(alts) == 1 && !matched[alts[0]] {
			n, ok = newBy[alts[0]], true
			matched[alts[0]] = true
		}
		if !ok {
			fmt.Fprintf(out, "%-60s only in old run\n", name)
			continue
		}
		bad := ""
		if timeThresh > 0 && o.NsPerOp > 0 && n.NsPerOp > o.NsPerOp*timeThresh {
			bad += " TIME-REGRESSION"
		}
		if o.AllocsPerOp > 0 && n.AllocsPerOp > o.AllocsPerOp*allocThresh {
			bad += " ALLOC-REGRESSION"
		}
		// A benchmark that was allocation-free must stay allocation-free:
		// ratios cannot express a 0 -> N change.
		if o.AllocsPerOp == 0 && n.AllocsPerOp > 0 { //ordlint:allow floatcmp — exact zero is the recorded "allocation-free" state
			bad += " ALLOC-REGRESSION(was 0)"
		}
		if bad != "" {
			regressions++
		}
		fmt.Fprintf(out, "%-60s %12.1f -> %12.1f ns/op  %10.1f -> %10.1f allocs/op%s\n",
			name, o.NsPerOp, n.NsPerOp, o.AllocsPerOp, n.AllocsPerOp, bad)
	}
	for name := range newBy {
		if !matched[name] {
			fmt.Fprintf(out, "%-60s only in new run\n", name)
		}
	}
	return regressions
}

// canonicalName strips one trailing "-<int>" segment — the form of the
// GOMAXPROCS suffix `go test` appends when GOMAXPROCS != 1 — if present.
func canonicalName(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

func byName(s *Snapshot) map[string]Result {
	m := make(map[string]Result, len(s.Benchmarks))
	for _, r := range s.Benchmarks {
		m[r.Name] = r
	}
	return m
}

// loadFile reads a bench input, auto-detecting JSON snapshots versus raw
// `go test -bench` text output.
func loadFile(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	trimmed := strings.TrimSpace(string(data))
	if strings.HasPrefix(trimmed, "{") {
		var snap Snapshot
		if err := json.Unmarshal(data, &snap); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return &snap, nil
	}
	return parseBench(strings.NewReader(trimmed))
}

// parseBench parses `go test -bench` text output. Repeated runs of the
// same benchmark (e.g. -count>1) keep the last measurement.
//
// The "-N" GOMAXPROCS suffix `go test` appends (when GOMAXPROCS != 1) is
// stripped only when every benchmark line in the file carries the same
// trailing "-<int>": the suffix is uniform within one run, so a mixed file
// means those trailing integers are genuine parts of benchmark names (a
// subbenchmark label like "shards-4" on a GOMAXPROCS=1 run) and stripping
// would corrupt them. Diff-time canonical matching (diff) covers snapshots
// taken with different parallelism.
func parseBench(r io.Reader) (*Snapshot, error) {
	snap := &Snapshot{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	uniform, suffix := true, ""
	first := true
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		name := fields[0]
		ext := ""
		if c := canonicalName(name); c != name {
			ext = name[len(c):]
		}
		if first {
			suffix, first = ext, false
		} else if ext != suffix {
			uniform = false
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Name: name, Iterations: iters}
		// Remaining fields come in "<value> <unit>" pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			}
		}
		if res.NsPerOp == 0 { //ordlint:allow floatcmp — unparsed sentinel, never computed
			continue
		}
		snap.Benchmarks = append(snap.Benchmarks, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if uniform && suffix != "" {
		for i := range snap.Benchmarks {
			snap.Benchmarks[i].Name = strings.TrimSuffix(snap.Benchmarks[i].Name, suffix)
		}
	}
	// Repeated names (-count>1) keep the last measurement.
	seen := make(map[string]int, len(snap.Benchmarks))
	dedup := snap.Benchmarks[:0]
	for _, res := range snap.Benchmarks {
		if i, dup := seen[res.Name]; dup {
			dedup[i] = res
			continue
		}
		seen[res.Name] = len(dedup)
		dedup = append(dedup, res)
	}
	snap.Benchmarks = dedup
	return snap, nil
}
