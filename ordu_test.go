package ordu

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
)

func randRecords(rng *rand.Rand, n, d int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		r := make([]float64, d)
		for j := range r {
			r[j] = rng.Float64()
		}
		out[i] = r
	}
	return out
}

// antiRecords yields anticorrelated data with large skybands.
func antiRecords(rng *rand.Rand, n, d int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		r := make([]float64, d)
		s := 0.0
		for j := range r {
			r[j] = rng.Float64()
			s += r[j]
		}
		f := (float64(d)/2 + 0.1*rng.NormFloat64()) / s
		for j := range r {
			r[j] = math.Min(1, math.Max(0, r[j]*f))
		}
		out[i] = r
	}
	return out
}

func TestNewDatasetValidation(t *testing.T) {
	if _, err := NewDataset(nil); err == nil {
		t.Error("empty dataset accepted")
	}
	if _, err := NewDataset([][]float64{{1}}); err == nil {
		t.Error("1-dimensional dataset accepted")
	}
	if _, err := NewDataset([][]float64{{1, 2}, {1, 2, 3}}); err == nil {
		t.Error("ragged dataset accepted")
	}
	if _, err := NewDataset([][]float64{{1, math.NaN()}}); err == nil {
		t.Error("NaN accepted")
	}
	ds, err := NewDataset([][]float64{{0.1, 0.9}, {0.8, 0.2}})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 2 || ds.Dim() != 2 {
		t.Fatalf("Len=%d Dim=%d", ds.Len(), ds.Dim())
	}
}

func TestDatasetDoesNotAliasInput(t *testing.T) {
	recs := [][]float64{{0.1, 0.9}, {0.8, 0.2}}
	ds, _ := NewDataset(recs)
	recs[0][0] = 999
	r, _ := ds.Record(0)
	if r[0] == 999 {
		t.Fatal("dataset aliases caller memory")
	}
}

func TestTopKAndSkyline(t *testing.T) {
	ds, _ := NewDataset([][]float64{
		{0.9, 0.1}, // 0
		{0.1, 0.9}, // 1
		{0.6, 0.6}, // 2: dominates 3
		{0.5, 0.5}, // 3
	})
	top, err := ds.TopK([]float64{0.5, 0.5}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if top[0].ID != 2 {
		t.Fatalf("top-1 = %d, want 2", top[0].ID)
	}
	if top[0].Score != 0.6 {
		t.Fatalf("score = %g", top[0].Score)
	}
	sky := ds.Skyline()
	ids := map[int]bool{}
	for _, s := range sky {
		ids[s.ID] = true
	}
	if !ids[0] || !ids[1] || !ids[2] || ids[3] {
		t.Fatalf("skyline = %v", sky)
	}
	band, err := ds.KSkyband(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(band) != 4 {
		t.Fatalf("2-skyband = %d records", len(band))
	}
}

func TestPreferenceValidation(t *testing.T) {
	ds, _ := NewDataset([][]float64{{0.5, 0.5}, {0.4, 0.6}})
	if _, err := ds.TopK([]float64{0.9, 0.9}, 1); err == nil {
		t.Error("off-simplex preference accepted")
	}
	if _, err := ds.TopK([]float64{1, 0, 0}, 1); err == nil {
		t.Error("wrong-dimension preference accepted")
	}
	if _, err := ds.TopK([]float64{0.5, 0.5}, 0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestORDPublicAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	ds, err := NewDataset(antiRecords(rng, 500, 3))
	if err != nil {
		t.Fatal(err)
	}
	w := []float64{0.4, 0.3, 0.3}
	res, err := ds.ORD(w, 3, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 15 || len(res.Radii) != 15 {
		t.Fatalf("got %d records, %d radii", len(res.Records), len(res.Radii))
	}
	if res.Rho != res.Radii[14] {
		t.Fatal("Rho mismatch")
	}
	// Scores populated.
	for _, r := range res.Records {
		want := 0.4*r.Record[0] + 0.3*r.Record[1] + 0.3*r.Record[2]
		if math.Abs(r.Score-want) > 1e-12 {
			t.Fatalf("score %g, want %g", r.Score, want)
		}
	}
}

func TestORUPublicAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	ds, err := NewDataset(antiRecords(rng, 400, 3))
	if err != nil {
		t.Fatal(err)
	}
	w := []float64{0.3, 0.3, 0.4}
	res, err := ds.ORU(w, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 10 {
		t.Fatalf("got %d records", len(res.Records))
	}
	if len(res.Regions) == 0 {
		t.Fatal("no regions reported")
	}
	for i, reg := range res.Regions {
		if len(reg.TopK) != 2 {
			t.Fatalf("region %d has top-%d", i, len(reg.TopK))
		}
		if reg.Witness == nil {
			t.Fatalf("region %d has no witness", i)
		}
		if i > 0 && reg.MinDist < res.Regions[i-1].MinDist-1e-12 {
			t.Fatal("regions not sorted by mindist")
		}
	}
	if res.Rho != res.Regions[len(res.Regions)-1].MinDist {
		t.Fatal("Rho != last region mindist")
	}
}

func TestInsertDeleteAffectQueries(t *testing.T) {
	ds, _ := NewDataset([][]float64{
		{0.5, 0.5},
		{0.4, 0.4},
	})
	top, _ := ds.TopK([]float64{0.5, 0.5}, 1)
	if top[0].ID != 0 {
		t.Fatal("unexpected initial top-1")
	}
	id, err := ds.Insert([]float64{0.9, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	top, _ = ds.TopK([]float64{0.5, 0.5}, 1)
	if top[0].ID != id {
		t.Fatalf("inserted record not top-1: got %d", top[0].ID)
	}
	if !ds.Delete(id) {
		t.Fatal("delete failed")
	}
	top, _ = ds.TopK([]float64{0.5, 0.5}, 1)
	if top[0].ID != 0 {
		t.Fatal("delete not reflected")
	}
	if ds.Delete(id) {
		t.Fatal("double delete succeeded")
	}
	if _, err := ds.Insert([]float64{1, 2, 3}); err == nil {
		t.Fatal("wrong-dimension insert accepted")
	}
}

func TestOSSkyline(t *testing.T) {
	ds, _ := NewDataset([][]float64{
		{0.9, 0.9}, // dominates everything else
		{0.1, 0.8},
		{0.8, 0.1},
		{0.2, 0.2},
	})
	got := ds.OSSkyline(2)
	if len(got) != 1 || got[0].ID != 0 || got[0].Score != 3 {
		t.Fatalf("OSSkyline = %+v", got)
	}
}

func TestNormalize(t *testing.T) {
	recs := [][]float64{{10, 5, 7}, {20, 5, 3}, {15, 5, 5}}
	norm := Normalize(recs)
	if norm[0][0] != 0 || norm[1][0] != 1 || norm[2][0] != 0.5 {
		t.Fatalf("col 0 = %v", [][]float64{norm[0], norm[1], norm[2]})
	}
	for i := range norm {
		if norm[i][1] != 0.5 {
			t.Fatal("constant column must map to 0.5")
		}
	}
	if Normalize(nil) != nil {
		t.Fatal("Normalize(nil) != nil")
	}
}

func TestPreferenceHelper(t *testing.T) {
	w, err := Preference([]float64{2, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if w[0] != 0.25 || w[2] != 0.5 {
		t.Fatalf("w = %v", w)
	}
	if _, err := Preference([]float64{0, 0}); err == nil {
		t.Fatal("zero weights accepted")
	}
}

func TestFacadeValidationSentinels(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	ds, err := NewDataset(randRecords(rng, 50, 3))
	if err != nil {
		t.Fatal(err)
	}
	good := []float64{0.4, 0.3, 0.3}
	cases := []struct {
		name string
		w    []float64
		k, m int
		want error
	}{
		{"NaN component", []float64{math.NaN(), 0.5, 0.5}, 2, 4, ErrBadSeed},
		{"+Inf component", []float64{math.Inf(1), 0.3, 0.3}, 2, 4, ErrBadSeed},
		{"-Inf component", []float64{math.Inf(-1), 0.3, 0.3}, 2, 4, ErrBadSeed},
		{"dimension too small", []float64{0.5, 0.5}, 2, 4, ErrBadSeed},
		{"dimension too large", []float64{0.25, 0.25, 0.25, 0.25}, 2, 4, ErrBadSeed},
		{"off simplex", []float64{0.9, 0.9, 0.9}, 2, 4, ErrBadSeed},
		{"negative component", []float64{-0.2, 0.6, 0.6}, 2, 4, ErrBadSeed},
		{"k zero", good, 0, 4, ErrBadParams},
		{"k negative", good, -3, 4, ErrBadParams},
		{"m zero", good, 1, 0, ErrBadParams},
		{"m negative", good, 1, -2, ErrBadParams},
		{"m below k", good, 5, 3, ErrBadParams},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ds.ORD(tc.w, tc.k, tc.m); !errors.Is(err, tc.want) {
				t.Errorf("ORD err = %v, want %v", err, tc.want)
			}
			if _, err := ds.ORU(tc.w, tc.k, tc.m); !errors.Is(err, tc.want) {
				t.Errorf("ORU err = %v, want %v", err, tc.want)
			}
			if _, err := ds.ORUParallel(tc.w, tc.k, tc.m, 2); !errors.Is(err, tc.want) {
				t.Errorf("ORUParallel err = %v, want %v", err, tc.want)
			}
		})
	}
	// The two sentinels stay distinct.
	_, seedErr := ds.ORD([]float64{math.NaN(), 0.5, 0.5}, 2, 4)
	if errors.Is(seedErr, ErrBadParams) {
		t.Error("seed error matches ErrBadParams")
	}
	_, paramErr := ds.ORD(good, 0, 4)
	if errors.Is(paramErr, ErrBadSeed) {
		t.Error("param error matches ErrBadSeed")
	}
	// TopK and KSkyband share the k sentinel.
	if _, err := ds.TopK(good, 0); !errors.Is(err, ErrBadParams) {
		t.Errorf("TopK err = %v", err)
	}
	if _, err := ds.KSkyband(-1); !errors.Is(err, ErrBadParams) {
		t.Errorf("KSkyband err = %v", err)
	}
}

func TestFacadeCtxCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	ds, err := NewDataset(antiRecords(rng, 300, 3))
	if err != nil {
		t.Fatal(err)
	}
	w := []float64{0.4, 0.3, 0.3}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ds.ORDCtx(ctx, w, 2, 8); !errors.Is(err, context.Canceled) {
		t.Errorf("ORDCtx err = %v", err)
	}
	if _, err := ds.ORUCtx(ctx, w, 2, 8); !errors.Is(err, context.Canceled) {
		t.Errorf("ORUCtx err = %v", err)
	}
	if _, err := ds.ORUParallelCtx(ctx, w, 2, 8, 2); !errors.Is(err, context.Canceled) {
		t.Errorf("ORUParallelCtx err = %v", err)
	}
	// A live context reproduces the plain results.
	got, err := ds.ORDCtx(context.Background(), w, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := ds.ORD(w, 2, 8)
	if got.Rho != want.Rho || len(got.Records) != len(want.Records) {
		t.Fatal("ORDCtx diverges from ORD")
	}
}

func TestORDORUSmallestOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	ds, _ := NewDataset(randRecords(rng, 200, 3))
	w := []float64{0.3, 0.3, 0.4}
	k := 3
	ord, err := ds.ORD(w, k, k)
	if err != nil {
		t.Fatal(err)
	}
	oru, err := ds.ORU(w, k, k)
	if err != nil {
		t.Fatal(err)
	}
	top, _ := ds.TopK(w, k)
	topIDs := map[int]bool{}
	for _, r := range top {
		topIDs[r.ID] = true
	}
	// With m = k both operators degenerate to the top-k at w.
	for _, r := range ord.Records {
		if !topIDs[r.ID] {
			t.Fatalf("ORD(m=k) returned non-top-k record %d", r.ID)
		}
	}
	for _, r := range oru.Records {
		if !topIDs[r.ID] {
			t.Fatalf("ORU(m=k) returned non-top-k record %d", r.ID)
		}
	}
}
