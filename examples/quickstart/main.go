// Quickstart: index a small dataset, run the classic operators, then ORD
// and ORU — showing how both interpolate between the top-k at the seed
// vector and dominance-based retrieval while returning exactly m records.
package main

import (
	"fmt"
	"log"

	"ordu"
)

func main() {
	// Eight laptops scored on battery life, performance and display
	// quality (already normalised; larger is better).
	laptops := [][]float64{
		{0.95, 0.30, 0.50}, // 0: endurance champion
		{0.20, 0.95, 0.70}, // 1: workstation
		{0.60, 0.60, 0.60}, // 2: balanced
		{0.55, 0.55, 0.95}, // 3: gorgeous screen
		{0.50, 0.50, 0.50}, // 4: dominated by 2
		{0.85, 0.45, 0.40}, // 5
		{0.30, 0.80, 0.85}, // 6
		{0.70, 0.35, 0.75}, // 7
	}
	ds, err := ordu.NewDataset(laptops)
	if err != nil {
		log.Fatal(err)
	}

	// A best-effort preference: battery matters a bit more than the rest.
	w, err := ordu.Preference([]float64{4, 3, 3})
	if err != nil {
		log.Fatal(err)
	}

	top, err := ds.TopK(w, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top-2 for w:")
	for _, r := range top {
		fmt.Printf("  laptop %d score %.3f %v\n", r.ID, r.Score, r.Record)
	}

	fmt.Println("skyline (not dominated by anything):")
	for _, r := range ds.Skyline() {
		fmt.Printf("  laptop %d %v\n", r.ID, r.Record)
	}

	// ORD: relax dominance around w until exactly 4 records qualify.
	ord, err := ds.ORD(w, 2, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ORD(k=2, m=4) with stopping radius %.4f:\n", ord.Rho)
	for i, r := range ord.Records {
		fmt.Printf("  laptop %d (joins at radius %.4f)\n", r.ID, ord.Radii[i])
	}

	// ORU: the records that enter some top-2 when the preference is
	// perturbed within the (automatically determined) radius.
	oru, err := ds.ORU(w, 2, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ORU(k=2, m=4) with stopping radius %.4f:\n", oru.Rho)
	for _, r := range oru.Records {
		fmt.Printf("  laptop %d\n", r.ID)
	}
	fmt.Println("its top-2 results in the preference neighbourhood:")
	for _, reg := range oru.Regions {
		ids := []int{}
		for _, r := range reg.TopK {
			ids = append(ids, r.ID)
		}
		fmt.Printf("  at %.3f from w (witness %v): top-2 = %v\n",
			reg.MinDist, fmtVec(reg.Witness), ids)
	}
}

func fmtVec(v []float64) []string {
	out := make([]string, len(v))
	for i, x := range v {
		out[i] = fmt.Sprintf("%.2f", x)
	}
	return out
}
