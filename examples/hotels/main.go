// Hotels: the paper's motivating scenario — shortlist hotels for a user
// whose preference weights were estimated (e.g. from past bookings), so the
// seed vector is only approximately right. The example also demonstrates
// composing a range predicate with ORD/ORU (Section 3 of the paper): first
// filter by hard constraints, then relax preferences on what remains, and
// shows how the shortlist reacts to inventory updates.
package main

import (
	"fmt"
	"log"

	"ordu"
	"ordu/internal/data"
)

func main() {
	// A 50,000-hotel inventory with four normalised attributes:
	// location score, value for money, guest rating, amenities.
	raw := data.Hotel(50_000, 42)

	// Hard constraint: only hotels with location score at least 0.5 and
	// value at least 0.4 (a range predicate applied before the operator).
	var records [][]float64
	var keptIDs []int
	for i, h := range raw {
		if h[0] >= 0.5 && h[1] >= 0.4 {
			records = append(records, h)
			keptIDs = append(keptIDs, i)
		}
	}
	ds, err := ordu.NewDataset(records)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d of %d hotels satisfy the range predicate\n", ds.Len(), len(raw))

	// The booking history suggests this user cares mostly about location
	// and rating — but the estimate is rough, so we relax it with ORU.
	w, err := ordu.Preference([]float64{4, 2, 3, 1})
	if err != nil {
		log.Fatal(err)
	}
	const k, m = 5, 12

	oru, err := ds.ORU(w, k, m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nORU shortlist of %d hotels (preference relaxed by rho=%.4f):\n", m, oru.Rho)
	for i, r := range oru.Records {
		fmt.Printf("  %2d. hotel %-6d loc=%.2f value=%.2f rating=%.2f amenities=%.2f\n",
			i+1, keptIDs[r.ID], r.Record[0], r.Record[1], r.Record[2], r.Record[3])
	}

	// Compare with a plain top-m: the records serving only the exact w.
	top, err := ds.TopK(w, m)
	if err != nil {
		log.Fatal(err)
	}
	onlyORU := diff(oru.Records, top)
	fmt.Printf("\n%d hotels in the ORU shortlist are invisible to a plain top-%d:\n", len(onlyORU), m)
	for _, id := range onlyORU {
		fmt.Printf("  hotel %d — strong for preferences similar to w\n", keptIDs[id])
	}

	// Inventory churn: a new hotel shows up; no precomputation to rebuild
	// (the operators read the index directly).
	newID, err := ds.Insert([]float64{0.97, 0.90, 0.95, 0.60})
	if err != nil {
		log.Fatal(err)
	}
	oru2, err := ds.ORU(w, k, m)
	if err != nil {
		log.Fatal(err)
	}
	found := false
	for _, r := range oru2.Records {
		if r.ID == newID {
			found = true
		}
	}
	fmt.Printf("\nafter inserting a standout hotel, shortlisted=%v (rho %.4f -> %.4f)\n",
		found, oru.Rho, oru2.Rho)
}

func diff(a []ordu.Result, b []ordu.Result) []int {
	in := map[int]bool{}
	for _, r := range b {
		in[r.ID] = true
	}
	var out []int
	for _, r := range a {
		if !in[r.ID] {
			out = append(out, r.ID)
		}
	}
	return out
}
