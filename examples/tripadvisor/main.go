// TripAdvisor: an end-to-end application example in the spirit of the
// paper's Section 6.1 — per-user preference vectors estimated from review
// text (simulated here by a concentrated Dirichlet around each user's
// latent preference) are inherently noisy, which is exactly the situation
// ORD/ORU are built for: treat the mined vector as a best-effort seed and
// let the output size drive the relaxation.
package main

import (
	"fmt"
	"log"

	"ordu"
	"ordu/internal/data"
)

func main() {
	hotels := data.TripAdvisor(0, 7)
	records := make([][]float64, len(hotels))
	for i, h := range hotels {
		records[i] = h
	}
	ds, err := ordu.NewDataset(records)
	if err != nil {
		log.Fatal(err)
	}
	aspects := []string{"value", "rooms", "location", "cleanliness", "desk", "service", "food"}
	fmt.Printf("indexed %d hotels rated on %d aspects\n", ds.Len(), ds.Dim())

	users := data.TAUserVectors(3, 99)
	const k, m = 5, 10
	for u, w := range users {
		fmt.Printf("\nuser %d mined preference: ", u)
		for a, x := range w {
			fmt.Printf("%s=%.2f ", aspects[a], x)
		}
		fmt.Println()

		// A plain top-k trusts the noisy estimate completely...
		top, err := ds.TopK(w, k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  top-%d (rigid):      ", k)
		for _, r := range top {
			fmt.Printf("H%d ", r.ID)
		}
		fmt.Println()

		// ...while ORD hedges: exactly m hotels that stay competitive for
		// any preference near the estimate.
		res, err := ds.ORD(w, k, m)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  ORD m=%d (relaxed):  ", m)
		for _, r := range res.Records {
			fmt.Printf("H%d ", r.ID)
		}
		fmt.Printf("\n  radius needed: %.4f\n", res.Rho)
	}
}
