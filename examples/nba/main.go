// NBA: the paper's Figure 6 case study as a runnable program — scouting
// the 2018-19 season (simulated; see DESIGN.md) for k=2, m=6 on two
// attribute slices, comparing ORD and ORU against a plain top-m query and
// the OSS skyline. The takeaway mirrors the paper: top-m misses a
// category leader that both ORD and ORU catch, because they search "wide"
// across preferences similar to the seed.
package main

import (
	"fmt"
	"log"
	"sort"

	"ordu"
	"ordu/internal/data"
)

func main() {
	players := data.NBA2019(2019)
	attrs := []string{"points", "rebounds", "assists"}

	scenario(players, attrs, [2]int{2, 1}, []float64{0.49, 0.51})
	scenario(players, attrs, [2]int{0, 1}, []float64{0.43, 0.57})
}

func scenario(players []data.Player, attrs []string, dims [2]int, w []float64) {
	fmt.Printf("\n=== %s vs %s, seed w = %v, k=2, m=6 ===\n", attrs[dims[0]], attrs[dims[1]], w)
	records := make([][]float64, len(players))
	for i, p := range players {
		records[i] = []float64{p.Stats[dims[0]], p.Stats[dims[1]]}
	}
	ds, err := ordu.NewDataset(records)
	if err != nil {
		log.Fatal(err)
	}
	name := func(id int) string { return players[id].Name }

	const k, m = 2, 6
	ordRes, err := ds.ORD(w, k, m)
	if err != nil {
		log.Fatal(err)
	}
	oruRes, err := ds.ORU(w, k, m)
	if err != nil {
		log.Fatal(err)
	}
	topRes, err := ds.TopK(w, m)
	if err != nil {
		log.Fatal(err)
	}
	ossRes := ds.OSSkyline(m)

	print1 := func(label string, ids []int) {
		names := make([]string, len(ids))
		for i, id := range ids {
			names[i] = name(id)
		}
		sort.Strings(names)
		fmt.Printf("  %-12s %v\n", label, names)
	}
	print1("ORD:", ids(ordRes.Records))
	print1("ORU:", ids(oruRes.Records))
	print1("top-m:", resIDs(topRes))
	print1("OSS skyline:", resIDs(ossRes))

	// Who do the relaxed operators catch that the rigid top-m misses?
	topSet := map[int]bool{}
	for _, r := range topRes {
		topSet[r.ID] = true
	}
	for _, r := range oruRes.Records {
		if !topSet[r.ID] {
			fmt.Printf("  -> %s is missed by top-m but caught by ORU: a slightly different\n"+
				"     preference (within rho=%.4f of w) ranks them in the top-%d\n",
				name(r.ID), oruRes.Rho, k)
		}
	}
}

func ids(rs []ordu.Result) []int {
	out := make([]int, len(rs))
	for i, r := range rs {
		out[i] = r.ID
	}
	return out
}

func resIDs(rs []ordu.Result) []int { return ids(rs) }
