package fixedregion

import (
	"math"
	"math/rand"
	"testing"

	"ordu/internal/geom"
)

// TestBoxMinOverMatchesLP cross-checks the closed-form box minimiser
// against the general LP solver on random boxes and objectives.
func TestBoxMinOverMatchesLP(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for iter := 0; iter < 300; iter++ {
		d := 2 + rng.Intn(5)
		c := geom.RandSimplex(rng, d)
		side := 0.05 + 0.5*rng.Float64()
		box := NewBox(c, side)
		a := make(geom.Vector, d)
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		gv, gok := box.MinOver(a)
		lv, lok := MinOver(box.Region(), a)
		if gok != lok {
			t.Fatalf("iter %d: greedy ok=%v, LP ok=%v (side=%g)", iter, gok, lok, side)
		}
		if gok && math.Abs(gv-lv) > 1e-7 {
			t.Fatalf("iter %d: greedy %g, LP %g", iter, gv, lv)
		}
	}
}

func TestBoxRDominanceMatchesGeneral(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	for iter := 0; iter < 200; iter++ {
		d := 2 + rng.Intn(3)
		c := geom.RandSimplex(rng, d)
		box := NewBox(c, 0.1+0.3*rng.Float64())
		ri := make(geom.Vector, d)
		rj := make(geom.Vector, d)
		for i := 0; i < d; i++ {
			ri[i] = rng.Float64()
			rj[i] = rng.Float64()
		}
		if RDominatesBox(box, ri, rj) != RDominates(box.Region(), ri, rj) {
			t.Fatalf("iter %d: box and general R-dominance disagree", iter)
		}
	}
}

func TestBoxFeasibility(t *testing.T) {
	// A tiny box at a simplex corner that excludes the simplex plane.
	b := NewBox(geom.Vector{0.05, 0.05, 0.05}, 0.02)
	if b.Feasible() {
		t.Error("box far below the simplex plane reported feasible")
	}
	if _, ok := b.MinOver(geom.Vector{1, 0, 0}); ok {
		t.Error("MinOver on infeasible box returned ok")
	}
	if NewBox(geom.Vector{0.3, 0.3, 0.4}, 0.1).Feasible() != true {
		t.Error("centred box must be feasible")
	}
}
