package fixedregion

import (
	"math"
	"sort"

	"ordu/internal/geom"
	"ordu/internal/region"
)

// BoxRegion is a hypercube preference region around a centre, intersected
// with the simplex. It carries the interval bounds explicitly so that
// linear minimisation — the workhorse of R-dominance tests — runs in
// closed form (a fractional-knapsack argument) instead of a general LP.
type BoxRegion struct {
	Center geom.Vector
	Side   float64
	lo, hi []float64
}

// NewBox builds the hypercube region |v_i - c_i| <= side/2 on the simplex.
func NewBox(c geom.Vector, side float64) *BoxRegion {
	d := len(c)
	b := &BoxRegion{Center: c.Clone(), Side: side, lo: make([]float64, d), hi: make([]float64, d)}
	for i := 0; i < d; i++ {
		b.lo[i] = math.Max(0, c[i]-side/2)
		b.hi[i] = math.Min(1, c[i]+side/2)
	}
	return b
}

// Region converts the box to the general halfspace representation used by
// the region-partitioning machinery.
func (b *BoxRegion) Region() region.Region {
	return region.Box(b.Center, b.Side)
}

// Feasible reports whether the box intersects the simplex.
func (b *BoxRegion) Feasible() bool {
	sumLo, sumHi := 0.0, 0.0
	for i := range b.lo {
		sumLo += b.lo[i]
		sumHi += b.hi[i]
	}
	return sumLo <= 1+1e-12 && sumHi >= 1-1e-12
}

// MinOver minimises a.v over the box-simplex intersection in closed form:
// starting from the interval lower bounds, the remaining simplex mass is
// assigned greedily to the coordinates with the smallest coefficients.
// ok is false when the region is empty.
func (b *BoxRegion) MinOver(a geom.Vector) (float64, bool) {
	if !b.Feasible() {
		return 0, false
	}
	d := len(a)
	rem := 1.0
	val := 0.0
	for i := 0; i < d; i++ {
		val += a[i] * b.lo[i]
		rem -= b.lo[i]
	}
	if rem < 0 {
		return 0, false
	}
	order := make([]int, d)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool { return a[order[x]] < a[order[y]] })
	for _, i := range order {
		if rem <= 0 {
			break
		}
		room := b.hi[i] - b.lo[i]
		take := math.Min(room, rem)
		val += a[i] * take
		rem -= take
	}
	if rem > 1e-9 {
		return 0, false // box too small to absorb the simplex mass
	}
	return val, true
}

// RDominatesBox is RDominates specialised to hypercube regions via the
// closed-form minimiser: ri scores at least as high as rj everywhere in
// the box (and strictly higher somewhere).
func RDominatesBox(b *BoxRegion, ri, rj geom.Vector) bool {
	diff := ri.Sub(rj)
	lo, ok := b.MinOver(diff)
	if !ok || lo < -1e-12 {
		return false
	}
	for i := range diff {
		diff[i] = -diff[i]
	}
	hi, ok := b.MinOver(diff)
	if !ok {
		return false
	}
	return -hi > 1e-12
}
