package fixedregion

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"ordu/internal/geom"
	"ordu/internal/region"
	"ordu/internal/rtree"
)

func randPoints(rng *rand.Rand, n, d int) []geom.Vector {
	pts := make([]geom.Vector, n)
	for i := range pts {
		p := make(geom.Vector, d)
		for j := range p {
			p[j] = rng.Float64()
		}
		pts[i] = p
	}
	return pts
}

func TestMinOver(t *testing.T) {
	reg := region.Full(2)
	// min of v1 over the simplex is 0, min of -v1 is -1.
	if v, ok := MinOver(reg, geom.Vector{1, 0}); !ok || math.Abs(v) > 1e-9 {
		t.Errorf("min v1 = %g ok=%v", v, ok)
	}
	if v, ok := MinOver(reg, geom.Vector{-1, 0}); !ok || math.Abs(v+1) > 1e-9 {
		t.Errorf("min -v1 = %g ok=%v", v, ok)
	}
	// Over a box around (0.5,0.5) with side 0.2, min v1 = 0.4.
	boxed := region.Box(geom.Vector{0.5, 0.5}, 0.2)
	if v, ok := MinOver(boxed, geom.Vector{1, 0}); !ok || math.Abs(v-0.4) > 1e-9 {
		t.Errorf("boxed min v1 = %g ok=%v", v, ok)
	}
}

func TestRDominates(t *testing.T) {
	reg := region.Box(geom.Vector{0.5, 0.5}, 0.2)
	hi := geom.Vector{0.8, 0.8}
	lo := geom.Vector{0.3, 0.3}
	if !RDominates(reg, hi, lo) {
		t.Error("coordinate dominance must imply R-dominance")
	}
	if RDominates(reg, lo, hi) {
		t.Error("reverse R-dominance")
	}
	// Incomparable records: a=(1,0) beats b=(0.4,0.5) exactly when
	// v1/v2 >= 5/6, i.e. v1 >= 5/11 ~ 0.4545. Within the box v1 ranges
	// [0.4, 0.6]: neither R-dominates the other.
	a := geom.Vector{1, 0}
	b := geom.Vector{0.4, 0.5}
	if RDominates(reg, a, b) || RDominates(reg, b, a) {
		t.Error("incomparable-within-R records must not R-dominate")
	}
	// A narrow box on a's side: a R-dominates b.
	narrow := region.Box(geom.Vector{0.8, 0.2}, 0.1)
	if !RDominates(narrow, a, b) {
		t.Error("a must R-dominate b in the narrow box")
	}
}

func TestRSkybandMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 4; trial++ {
		d := 2 + trial%3
		k := 1 + trial%2
		pts := randPoints(rng, 150, d)
		tr := rtree.BulkLoad(pts)
		w := geom.RandSimplex(rng, d)
		box := NewBox(w, 0.15)
		reg := box.Region()
		got := RSkyband(tr, w, box, k)
		gotIDs := map[int]bool{}
		for _, g := range got {
			gotIDs[g.ID] = true
		}
		for i, p := range pts {
			dom := 0
			for j, q := range pts {
				if i != j && (q.Dominates(p) || RDominates(reg, q, p)) {
					dom++
				}
			}
			want := dom < k
			if want != gotIDs[i] {
				t.Fatalf("trial %d: id %d membership %v, want %v", trial, i, gotIDs[i], want)
			}
		}
	}
}

func TestTopKUnionMatchesSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	d := 3
	pts := randPoints(rng, 120, d)
	tr := rtree.BulkLoad(pts)
	w := geom.Vector{0.3, 0.4, 0.3}
	boxReg := NewBox(w, 0.2)
	reg := boxReg.Region()
	k := 2
	got := TopKUnion(tr, w, boxReg, k)
	gotIDs := map[int]bool{}
	for _, g := range got {
		gotIDs[g.ID] = true
	}
	// Every sampled in-region top-k record must be reported.
	for s := 0; s < 4000; s++ {
		v := geom.RandDirichlet(rng, w, 80)
		if !reg.Contains(v) {
			continue
		}
		type sc struct {
			id int
			s  float64
		}
		all := make([]sc, len(pts))
		for i, p := range pts {
			all[i] = sc{i, p.Dot(v)}
		}
		sort.Slice(all, func(i, j int) bool { return all[i].s > all[j].s })
		for r := 0; r < k; r++ {
			if !gotIDs[all[r].id] {
				t.Fatalf("sampled top-%d record %d at %v unreported", r+1, all[r].id, v)
			}
		}
	}
}

func TestRSBConvergesNearM(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	pts := randPoints(rng, 2000, 3)
	tr := rtree.BulkLoad(pts)
	w := geom.RandSimplex(rng, 3)
	k, m := 3, 25
	res := RSB(tr, w, k, m, 0.10)
	if res.Trials < 1 {
		t.Fatal("no trials recorded")
	}
	// Convergence is best-effort; it must either land within tolerance or
	// exhaust the bracket. Check the reported achieved size is consistent.
	if res.Achieved != len(res.Records) {
		t.Fatalf("achieved %d but %d records", res.Achieved, len(res.Records))
	}
	if res.Achieved < m-m/2 || res.Achieved > 3*m {
		t.Errorf("RSB wildly off target: achieved %d for m=%d after %d trials",
			res.Achieved, m, res.Trials)
	}
}

func TestJAARunsAndCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	pts := randPoints(rng, 500, 3)
	tr := rtree.BulkLoad(pts)
	w := geom.RandSimplex(rng, 3)
	k, m := 2, 10
	res := JAA(tr, w, k, m, 0.10)
	if res.Trials < 1 {
		t.Fatal("no trials recorded")
	}
	if res.Achieved != len(res.Records) {
		t.Fatalf("achieved %d but %d records", res.Achieved, len(res.Records))
	}
}
