// Package fixedregion adapts the fixed-preference-region techniques of
// Ciaccia & Martinenghi [20] and Mouratidis & Tang [54] into ORD/ORU
// look-alikes, exactly as the paper does for its evaluation (Sections 6.2,
// 6.3): a hypercube region R around the seed is sized by a volume
// heuristic, the R-skyband (for RSB) or the fixed-region top-k union (for
// JAA) is computed, and R is re-estimated over repeated trials until the
// output lands within a tolerance of the requested m. The trial loop is the
// source of the orders-of-magnitude slowdown the paper reports — these
// methods are not output-size specified by design.
package fixedregion

import (
	"math"

	"ordu/internal/core"
	"ordu/internal/geom"
	"ordu/internal/lp"
	"ordu/internal/region"
	"ordu/internal/rtree"
	"ordu/internal/skyband"
)

// MinOver minimises the linear function a.v over reg (intersected with the
// simplex). ok is false when the region is empty.
func MinOver(reg region.Region, a geom.Vector) (float64, bool) {
	d := reg.Dim
	ones := make([]float64, d)
	for i := range ones {
		ones[i] = 1
	}
	pr := &lp.Problem{
		C:   a,
		EqA: [][]float64{ones},
		EqB: []float64{1},
	}
	for _, h := range reg.Hs {
		neg := make([]float64, d)
		for j := range h.A {
			neg[j] = -h.A[j]
		}
		pr.InA = append(pr.InA, neg)
		pr.InB = append(pr.InB, -h.B)
	}
	_, val, st, err := lp.Solve(pr)
	if err != nil || st != lp.Optimal {
		return 0, false
	}
	return val, true
}

// RDominates reports whether ri R-dominates rj over reg: ri scores at least
// as high everywhere in the region and strictly higher somewhere ([20],
// one linear check per extreme vertex — realised here as two LPs, which
// handles clipped polytopes whose vertices are not explicitly available).
func RDominates(reg region.Region, ri, rj geom.Vector) bool {
	diff := ri.Sub(rj)
	lo, ok := MinOver(reg, diff)
	if !ok || lo < -1e-12 {
		return false
	}
	// Strictness: the maximum of diff.v must be positive.
	neg := diff.Scale(-1)
	hi, ok := MinOver(reg, neg)
	if !ok {
		return false
	}
	return -hi > 1e-12
}

// rPruner prunes points R-dominated by at least K registered records,
// using the closed-form hypercube dominance test.
type rPruner struct {
	box  *BoxRegion
	k    int
	recs []geom.Vector
}

func (r *rPruner) Add(p geom.Vector) { r.recs = append(r.recs, p) }

func (r *rPruner) Prune(p geom.Vector) bool {
	count := 0
	for _, rec := range r.recs {
		if rec.Dominates(p) {
			count++
		} else if RDominatesBox(r.box, rec, p) {
			count++
		}
		if count >= r.k {
			return true
		}
	}
	return false
}

// RSkyband computes the R-skyband over the index: the records R-dominated
// by fewer than k others ([54]'s index-based module). The scan visits
// entries in decreasing score for the region's reference point w, which
// must belong to reg so that the BBS invariant holds (an R-dominator
// scores at least as high everywhere in R, hence at w).
func RSkyband(tree *rtree.Tree, w geom.Vector, box *BoxRegion, k int) []skyband.Member {
	sc := skyband.NewScanner(tree, w)
	pr := &rPruner{box: box, k: k}
	var out []skyband.Member
	for {
		id, p, ok := sc.Next(pr)
		if !ok {
			return out
		}
		pr.Add(p)
		out = append(out, skyband.Member{ID: id, Point: p})
	}
}

// Result is the outcome of a trial-based fixed-region simulation.
type Result struct {
	Records []core.Record
	// Side is the final hypercube side length.
	Side float64
	// Trials counts how many R resizings (full executions) were needed.
	Trials int
	// Achieved is the final output size (within the tolerance of m, when
	// convergence succeeded).
	Achieved int
}

// expectedSkybandSize is the estimate k ln^(d-1)(n) / (d-1)! of [30], used
// by the paper to size the initial hypercube.
func expectedSkybandSize(n, d, k int) float64 {
	num := float64(k) * math.Pow(math.Log(float64(n)), float64(d-1))
	den := 1.0
	for i := 2; i <= d-1; i++ {
		den *= float64(i)
	}
	return num / den
}

// trialLoop drives the R re-estimation: run computes the output size for a
// hypercube side; the loop stops when the size is within tolFrac of m or
// the side interval collapses.
func trialLoop(w geom.Vector, n, d, k, m int, tolFrac float64, run func(side float64) int) (side float64, trials, achieved int) {
	exp := expectedSkybandSize(n, d, k)
	if exp < float64(m) {
		exp = float64(m)
	}
	// Initial side from the volume ratio of the desired output to the
	// expected skyband cardinality; the preference domain has d-1
	// intrinsic dimensions and diameter sqrt(2).
	side = math.Sqrt2 * math.Pow(float64(m)/exp, 1/float64(d-1))
	lo, hi := 0.0, 4.0 // side bounds bracketing the whole domain
	tol := int(math.Max(1, tolFrac*float64(m)))
	var out int
	for trials = 1; trials <= 64; trials++ {
		out = run(side)
		if out >= m-tol && out <= m+tol {
			return side, trials, out
		}
		if out < m {
			lo = side
		} else {
			hi = side
		}
		if hi-lo < 1e-9 {
			return side, trials, out
		}
		// Proportional re-estimation as in the paper, kept inside the
		// bisection bracket for guaranteed convergence.
		next := side * math.Pow(float64(m)/math.Max(float64(out), 1), 1/float64(d-1))
		if next <= lo || next >= hi {
			next = (lo + hi) / 2
		}
		side = next
	}
	return side, trials - 1, out
}

// RSB simulates ORD with the fixed-region R-skyband technique: repeated
// R-skyband computations with hypercube re-estimation until the output
// size is within tolFrac (e.g. 0.05 or 0.10) of m.
func RSB(tree *rtree.Tree, w geom.Vector, k, m int, tolFrac float64) *Result {
	var last []skyband.Member
	side, trials, achieved := trialLoop(w, tree.Len(), tree.Dim(), k, m, tolFrac, func(side float64) int {
		last = RSkyband(tree, w, NewBox(w, side), k)
		return len(last)
	})
	res := &Result{Side: side, Trials: trials, Achieved: achieved}
	for _, mb := range last {
		res.Records = append(res.Records, core.Record{ID: mb.ID, Point: mb.Point})
	}
	return res
}

// TopKUnion computes the fixed-region top-k operator of [54] for the given
// hypercube region: the distinct records appearing in the top-k result of
// at least one preference vector in the region.
func TopKUnion(tree *rtree.Tree, w geom.Vector, box *BoxRegion, k int) []core.Record {
	cands := RSkyband(tree, w, box, k)
	recs, _, err := core.EnumerateWithin(cands, w, k, box.Region())
	if err != nil {
		return nil
	}
	return recs
}

// JAA simulates ORU with the fixed-region top-k technique of [54]:
// repeated fixed-region top-k computations with hypercube re-estimation
// until the distinct-record count is within tolFrac of m.
func JAA(tree *rtree.Tree, w geom.Vector, k, m int, tolFrac float64) *Result {
	var last []core.Record
	side, trials, achieved := trialLoop(w, tree.Len(), tree.Dim(), k, m, tolFrac, func(side float64) int {
		last = TopKUnion(tree, w, NewBox(w, side), k)
		return len(last)
	})
	return &Result{Records: last, Side: side, Trials: trials, Achieved: achieved}
}
