// Package xheap is a type-parameterised binary min-heap. It replaces
// container/heap on the library's hot paths: container/heap moves elements
// through interface{}, which boxes every Push/Pop argument onto the heap —
// one allocation per operation — and dispatches Less/Swap through an
// interface table. The generic heap below stores elements in a plain slice,
// calls Less directly, and allocates only when the slice grows, so a warmed
// heap performs zero allocations per Push/Pop.
//
// Element types declare their own ordering by implementing Less; "less"
// means "higher priority" (popped first), so a max-heap simply inverts the
// comparison inside its Less method, exactly as with container/heap.
package xheap

// Lesser is the ordering constraint: Less reports whether the receiver has
// strictly higher priority than o (is popped first).
type Lesser[T any] interface {
	Less(o T) bool
}

// Heap is a binary min-heap over T. The zero value is an empty heap ready
// for use. Heaps are not goroutine-safe.
type Heap[T Lesser[T]] struct {
	s []T
}

// Len returns the number of elements.
func (h *Heap[T]) Len() int { return len(h.s) }

// Push adds v to the heap.
//
//ordlint:noalloc
func (h *Heap[T]) Push(v T) {
	h.s = append(h.s, v)
	h.up(len(h.s) - 1)
}

// Pop removes and returns the minimum element. It panics on an empty heap,
// like container/heap.
//
//ordlint:noalloc
func (h *Heap[T]) Pop() T {
	n := len(h.s) - 1
	h.s[0], h.s[n] = h.s[n], h.s[0]
	v := h.s[n]
	var zero T
	h.s[n] = zero // release references held by pointer-ish element types
	h.s = h.s[:n]
	if n > 0 {
		h.down(0)
	}
	return v
}

// Peek returns a pointer to the minimum element without removing it. The
// pointer is valid only until the next heap operation. It panics on an
// empty heap.
//
//ordlint:noalloc
func (h *Heap[T]) Peek() *T { return &h.s[0] }

// Fix re-establishes the heap ordering after the element at index i changed
// its key, like container/heap.Fix.
//
//ordlint:noalloc
func (h *Heap[T]) Fix(i int) {
	if !h.down(i) {
		h.up(i)
	}
}

// Reset empties the heap while keeping its backing storage for reuse.
//
//ordlint:noalloc
func (h *Heap[T]) Reset() {
	var zero T
	for i := range h.s {
		h.s[i] = zero
	}
	h.s = h.s[:0]
}

// Grow ensures capacity for at least n additional elements.
//
//ordlint:noalloc
func (h *Heap[T]) Grow(n int) {
	if cap(h.s)-len(h.s) < n {
		grown := make([]T, len(h.s), len(h.s)+n)
		copy(grown, h.s)
		h.s = grown
	}
}

// Items exposes the underlying slice in heap order (the minimum is at index
// 0; the rest follow heap, not sorted, order). The slice is owned by the
// heap: it is valid only until the next heap operation and must not be
// reordered by the caller.
//
//ordlint:noalloc
func (h *Heap[T]) Items() []T { return h.s }

//
//ordlint:noalloc
func (h *Heap[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.s[i].Less(h.s[parent]) {
			return
		}
		h.s[i], h.s[parent] = h.s[parent], h.s[i]
		i = parent
	}
}

// down sifts the element at i towards the leaves; it reports whether the
// element moved (the contract Fix relies on).
//
//ordlint:noalloc
func (h *Heap[T]) down(i int) bool {
	start := i
	n := len(h.s)
	for left := 2*i + 1; left < n; left = 2*i + 1 {
		least := left
		if right := left + 1; right < n && h.s[right].Less(h.s[left]) {
			least = right
		}
		if !h.s[least].Less(h.s[i]) {
			break
		}
		h.s[i], h.s[least] = h.s[least], h.s[i]
		i = least
	}
	return i > start
}
