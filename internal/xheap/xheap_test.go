package xheap

import (
	"container/heap"
	"math/rand"
	"sort"
	"testing"
)

type intItem int

func (a intItem) Less(b intItem) bool { return a < b }

func TestHeapSortsRandomInput(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(200)
		var h Heap[intItem]
		want := make([]int, 0, n)
		for i := 0; i < n; i++ {
			v := rng.Intn(40) // duplicates likely
			h.Push(intItem(v))
			want = append(want, v)
		}
		sort.Ints(want)
		if h.Len() != n {
			t.Fatalf("Len = %d, want %d", h.Len(), n)
		}
		for i := 0; i < n; i++ {
			if p := int(*h.Peek()); p != want[i] {
				t.Fatalf("trial %d: Peek = %d, want %d", trial, p, want[i])
			}
			if v := int(h.Pop()); v != want[i] {
				t.Fatalf("trial %d: pop %d = %d, want %d", trial, i, v, want[i])
			}
		}
	}
}

func TestHeapInterleavedPushPop(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var h Heap[intItem]
	// Reference: container/heap over the same operation sequence.
	ref := &refHeap{}
	for op := 0; op < 2000; op++ {
		if ref.Len() == 0 || rng.Intn(3) > 0 {
			v := rng.Intn(1000)
			h.Push(intItem(v))
			heap.Push(ref, v)
		} else {
			got, want := int(h.Pop()), heap.Pop(ref).(int)
			if got != want {
				t.Fatalf("op %d: Pop = %d, want %d", op, got, want)
			}
		}
		if h.Len() != ref.Len() {
			t.Fatalf("op %d: Len = %d, want %d", op, h.Len(), ref.Len())
		}
	}
}

type fixItem struct {
	key int
	id  int
}

func (a fixItem) Less(b fixItem) bool { return a.key < b.key }

func TestHeapFix(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var h Heap[fixItem]
	for i := 0; i < 100; i++ {
		h.Push(fixItem{key: rng.Intn(1000), id: i})
	}
	for trial := 0; trial < 200; trial++ {
		i := rng.Intn(h.Len())
		h.Items()[i].key = rng.Intn(1000)
		h.Fix(i)
	}
	prev := -1
	for h.Len() > 0 {
		v := h.Pop()
		if v.key < prev {
			t.Fatalf("pop order violated: %d after %d", v.key, prev)
		}
		prev = v.key
	}
}

func TestHeapResetKeepsCapacity(t *testing.T) {
	var h Heap[intItem]
	for i := 0; i < 100; i++ {
		h.Push(intItem(i))
	}
	c := cap(h.s)
	h.Reset()
	if h.Len() != 0 {
		t.Fatalf("Len after Reset = %d", h.Len())
	}
	if cap(h.s) != c {
		t.Fatalf("Reset dropped capacity: %d -> %d", c, cap(h.s))
	}
}

func TestHeapPopReleasesPointers(t *testing.T) {
	var h Heap[ptrItem]
	h.Push(ptrItem{p: new(int)})
	h.Pop()
	// After Pop the slot beyond len must be zeroed so the pointee is
	// collectable.
	if h.s[:1][0].p != nil {
		t.Fatal("Pop left a live pointer in the backing slice")
	}
}

type ptrItem struct{ p *int }

func (a ptrItem) Less(b ptrItem) bool { return false }

func TestHeapZeroAllocSteadyState(t *testing.T) {
	var h Heap[intItem]
	h.Grow(64)
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			h.Push(intItem(64 - i))
		}
		for h.Len() > 0 {
			h.Pop()
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Push/Pop allocated %.1f times per cycle", allocs)
	}
}

// refHeap is a plain container/heap min-heap of ints.
type refHeap []int

func (h refHeap) Len() int            { return len(h) }
func (h refHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h refHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x interface{}) { *h = append(*h, x.(int)) }
func (h *refHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}
