package rtree

import (
	"fmt"
	"math/rand"
	"testing"

	"ordu/internal/geom"
	"ordu/internal/rtree/legacy"
)

// FuzzFlatTreeMutations decodes the fuzz input into a randomized
// insert/update/delete stream and drives it through the flat tree and the
// legacy pointer-based oracle in lockstep: structural identity after every
// operation, plus range-query (including emission order), dominance-count
// and point-lookup parity at the end. The seed picks the geometry (dim
// 2–4, fanout 3–8, small enough that short byte streams force splits,
// condensations and root collapses); each op byte picks the operation and
// the victim for deletes and updates; coordinates are quantized so exact
// ties — where branch-free kernels could diverge from the oracle's
// short-circuit comparisons — occur constantly.
func FuzzFlatTreeMutations(f *testing.F) {
	f.Add(int64(0), []byte("aaaaaaaaaaaabcabcdabcdbbaaaacccb"))
	f.Add(int64(5), []byte("ddddddddddddddddbbbbccccaaaabbbb"))
	f.Add(int64(16), []byte("adadadadadadadadcbcbcbcbadadadad"))
	f.Fuzz(func(t *testing.T, seed int64, ops []byte) {
		if len(ops) > 256 {
			ops = ops[:256]
		}
		u := uint64(seed)
		dim := 2 + int(u%3)
		fanout := 3 + int((u/3)%6)
		rng := rand.New(rand.NewSource(seed))
		randPoint := func() geom.Vector {
			p := make(geom.Vector, dim)
			for j := range p {
				p[j] = float64(rng.Intn(16)) / 15
			}
			return p
		}

		ft := New(dim, WithFanout(fanout))
		lt := legacy.New(dim, legacy.WithFanout(fanout))
		var live []int
		nextID := 0
		for i, b := range ops {
			step := fmt.Sprintf("op %d (byte %#x)", i, b)
			switch {
			case len(live) == 0 || b%4 <= 1: // insert a fresh id
				p := randPoint()
				if err := ft.Insert(nextID, p); err != nil {
					t.Fatalf("%s: flat Insert(%d): %v", step, nextID, err)
				}
				if err := lt.Insert(nextID, p); err != nil {
					t.Fatalf("%s: legacy Insert(%d): %v", step, nextID, err)
				}
				live = append(live, nextID)
				nextID++
			case b%4 == 2: // delete a live id
				k := int(b/4) % len(live)
				id := live[k]
				live = append(live[:k], live[k+1:]...)
				if !ft.Delete(id) {
					t.Fatalf("%s: flat Delete(%d) reported missing", step, id)
				}
				if !lt.Delete(id) {
					t.Fatalf("%s: legacy Delete(%d) reported missing", step, id)
				}
			default: // update: re-site a live id at a new point
				k := int(b/4) % len(live)
				id := live[k]
				p := randPoint()
				if !ft.Delete(id) || !lt.Delete(id) {
					t.Fatalf("%s: update Delete(%d) reported missing", step, id)
				}
				if err := ft.Insert(id, p); err != nil {
					t.Fatalf("%s: flat re-Insert(%d): %v", step, id, err)
				}
				if err := lt.Insert(id, p); err != nil {
					t.Fatalf("%s: legacy re-Insert(%d): %v", step, id, err)
				}
			}
			checkTreesIdentical(t, ft, lt, step)
		}

		// Query parity over the final state: range emission order, the
		// dominance-count kernels, and per-id point lookups.
		for trial := 0; trial < 4; trial++ {
			lo := make(geom.Vector, dim)
			hi := make(geom.Vector, dim)
			for j := 0; j < dim; j++ {
				a, b := rng.Float64(), rng.Float64()
				if a > b {
					a, b = b, a
				}
				lo[j], hi[j] = a, b
			}
			rect := geom.NewRect(lo, hi)
			fg := ft.RangeQuery(rect)
			lg := lt.RangeQuery(rect)
			if len(fg) != len(lg) {
				t.Fatalf("range trial %d: %d ids vs legacy %d", trial, len(fg), len(lg))
			}
			for i := range fg {
				if fg[i] != lg[i] {
					t.Fatalf("range trial %d: order diverges at %d: %v vs %v", trial, i, fg, lg)
				}
			}
			q := randPoint()
			if fc, lc := ft.CountDominated(q), lt.CountDominated(q); fc != lc {
				t.Fatalf("CountDominated(%v) = %d, legacy %d", q, fc, lc)
			}
			if fc, lc := ft.CountDominators(q), lt.CountDominators(q); fc != lc {
				t.Fatalf("CountDominators(%v) = %d, legacy %d", q, fc, lc)
			}
		}
		for _, id := range live {
			fp, fok := ft.Point(id)
			lp, lok := lt.Point(id)
			if fok != lok || (fok && !fp.Equal(lp)) {
				t.Fatalf("Point(%d) = (%v, %v), legacy (%v, %v)", id, fp, fok, lp, lok)
			}
		}
	})
}
