package rtree

import (
	"sort"

	"ordu/internal/geom"
	"ordu/internal/narrow"
)

// BulkLoad builds a tree over the given points using Sort-Tile-Recursive
// packing. Record i is assigned id i. Packed slots are allocated in leaf
// order, so each leaf's points form one contiguous run of the chunk
// storage and the branch-and-bound kernels sweep sequential memory.
func BulkLoad(points []geom.Vector, opts ...Option) *Tree {
	if len(points) == 0 {
		return New(1, opts...)
	}
	// Capacity sentinel for the whole packing: record ids become int32
	// slot handles, so a dataset past narrow.MaxIndex cannot be addressed.
	// Callers that can see unbounded inputs (collection.FromPoints) guard
	// and return narrow.ErrTooLarge before reaching this point.
	n32, err := narrow.Index32(len(points))
	if err != nil {
		//ordlint:allow nopanic — 2^31 in-memory points exceed addressable RAM; guarded callers return ErrTooLarge first
		panic("rtree: BulkLoad: " + err.Error())
	}
	t := New(len(points[0]), opts...)
	t.size = len(points)
	t.freeNode(t.root) // the packing rebuilds the root
	perm := make([]int32, len(points))
	for i := int32(0); i < n32; i++ {
		perm[i] = i
	}
	t.root = t.packPoints(points, perm)
	return t
}

// bulkEnt is one child entry of the upper-level STR packing.
type bulkEnt struct {
	ref    NodeRef
	lo, hi []float64
}

// packPoints packs the level-0 tiles and recurses upward.
func (t *Tree) packPoints(points []geom.Vector, perm []int32) NodeRef {
	if len(perm) <= t.fanout {
		return t.newLeafNode(points, perm)
	}
	groups := t.tilePoints(points, perm, 0, nil)
	parents := make([]bulkEnt, 0, len(groups))
	for _, g := range groups {
		n := t.newLeafNode(points, g)
		lo := make([]float64, t.dim)
		hi := make([]float64, t.dim)
		t.computeNodeRect(n, lo, hi)
		parents = append(parents, bulkEnt{ref: n, lo: lo, hi: hi})
	}
	return t.packUpper(parents, 1)
}

// newLeafNode materialises one leaf over the points listed in group,
// allocating their packed slots in group order.
func (t *Tree) newLeafNode(points []geom.Vector, group []int32) NodeRef {
	n := t.newNode(0)
	t.count[n] = int16(len(group))
	eb := t.eb(n)
	for i, pi := range group {
		slot, err := t.allocSlot(int(pi), points[pi])
		if err != nil {
			// Unreachable: BulkLoad's entry sentinel bounds the slot
			// count by the (already int32-checked) record count.
			//ordlint:allow nopanic — capacity invariant established at the BulkLoad gate
			panic("rtree: newLeafNode: " + err.Error())
		}
		t.ents[eb+i] = slot
	}
	return n
}

// packUpper recursively packs child entries into internal nodes of the
// given level using the same tiling as the leaf phase.
func (t *Tree) packUpper(ents []bulkEnt, lvl int) NodeRef {
	if len(ents) <= t.fanout {
		return t.newUpperNode(ents, lvl)
	}
	groups := t.tileEnts(ents, 0, nil)
	parents := make([]bulkEnt, 0, len(groups))
	for _, g := range groups {
		n := t.newUpperNode(g, lvl)
		lo := make([]float64, t.dim)
		hi := make([]float64, t.dim)
		t.computeNodeRect(n, lo, hi)
		parents = append(parents, bulkEnt{ref: n, lo: lo, hi: hi})
	}
	return t.packUpper(parents, lvl+1)
}

// newUpperNode materialises one internal node over the given child entries.
func (t *Tree) newUpperNode(ents []bulkEnt, lvl int) NodeRef {
	n := t.newNode(lvl)
	t.count[n] = int16(len(ents))
	eb := t.eb(n)
	for i, e := range ents {
		t.ents[eb+i] = int32(e.ref)
		rb := t.rb(n, i)
		copy(t.rects[rb:rb+t.dim], e.lo)
		copy(t.rects[rb+t.dim:rb+2*t.dim], e.hi)
	}
	return n
}

// tilePoints splits the point permutation into groups of at most fanout,
// tiling axis-by-axis — the exact recursion (slab counts, sort keys, cut
// points) of the legacy strTile.
func (t *Tree) tilePoints(points []geom.Vector, perm []int32, axis int, out [][]int32) [][]int32 {
	n := len(perm)
	leafCount := (n + t.fanout - 1) / t.fanout
	if leafCount <= 1 || axis >= t.dim-1 {
		sortPermByAxis(points, perm, axis)
		for i := 0; i < n; i += t.fanout {
			out = append(out, perm[i:min(i+t.fanout, n)])
		}
		return out
	}
	// Number of slabs along this axis: ceil(leafCount^(1/(remaining axes))).
	slabs := intRoot(leafCount, t.dim-axis)
	if slabs < 1 {
		slabs = 1
	}
	sortPermByAxis(points, perm, axis)
	per := (n + slabs - 1) / slabs
	for i := 0; i < n; i += per {
		out = t.tilePoints(points, perm[i:min(i+per, n)], axis+1, out)
	}
	return out
}

// tileEnts is tilePoints over child entries, keyed by the entry MBRs.
func (t *Tree) tileEnts(ents []bulkEnt, axis int, out [][]bulkEnt) [][]bulkEnt {
	n := len(ents)
	leafCount := (n + t.fanout - 1) / t.fanout
	if leafCount <= 1 || axis >= t.dim-1 {
		sortEntsByAxis(ents, axis)
		for i := 0; i < n; i += t.fanout {
			out = append(out, ents[i:min(i+t.fanout, n)])
		}
		return out
	}
	slabs := intRoot(leafCount, t.dim-axis)
	if slabs < 1 {
		slabs = 1
	}
	sortEntsByAxis(ents, axis)
	per := (n + slabs - 1) / slabs
	for i := 0; i < n; i += per {
		out = t.tileEnts(ents[i:min(i+per, n)], axis+1, out)
	}
	return out
}

// sortPermByAxis orders the permutation by the legacy sort key
// Lo[axis]+Hi[axis], which for points is p[axis]+p[axis].
func sortPermByAxis(points []geom.Vector, perm []int32, axis int) {
	sort.Slice(perm, func(i, j int) bool {
		pi, pj := points[perm[i]], points[perm[j]]
		return pi[axis]+pi[axis] < pj[axis]+pj[axis]
	})
}

func sortEntsByAxis(ents []bulkEnt, axis int) {
	sort.Slice(ents, func(i, j int) bool {
		return ents[i].lo[axis]+ents[i].hi[axis] < ents[j].lo[axis]+ents[j].hi[axis]
	})
}

// intRoot returns ceil(n^(1/k)) computed by search.
func intRoot(n, k int) int {
	if k <= 1 {
		return n
	}
	r := 1
	for pow(r, k) < n {
		r++
	}
	return r
}

func pow(b, e int) int {
	p := 1
	for i := 0; i < e; i++ {
		p *= b
		if p < 0 || p > 1<<40 {
			return 1 << 40
		}
	}
	return p
}
