package rtree

// Branch-free dominance kernels over raw coordinate runs. The
// branch-and-bound walks (CountDominated, CountDominators, the BBS
// frontier) test dominance against a stream of rectangle corners whose
// outcomes are close to random, so an early-exit loop pays a branch
// mispredict on most calls. These kernels instead sweep the full run and
// accumulate the <=/< outcomes arithmetically: d predictable iterations,
// no data-dependent branches.

// b2i converts a comparison outcome to an integer flag; the compiler
// lowers it to a SETcc, keeping the accumulation loops branch-free.
func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// weakDom reports p >= q componentwise (ties allowed everywhere).
//
//ordlint:noalloc
func weakDom(p, q []float64) bool {
	ge := 1
	q = q[:len(p)]
	for i, x := range p {
		ge &= b2i(x >= q[i])
	}
	return ge == 1
}

// dom reports strict dominance: p >= q componentwise with at least one
// strict coordinate. A vector does not dominate itself.
//
//ordlint:noalloc
func dom(p, q []float64) bool {
	ge, gt := 1, 0
	q = q[:len(p)]
	for i, x := range p {
		ge &= b2i(x >= q[i])
		gt |= b2i(x > q[i])
	}
	return ge&gt == 1
}
