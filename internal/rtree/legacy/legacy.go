// Package legacy preserves the original pointer-per-node R-tree that
// predated the flat, cache-conscious core now in internal/rtree. It is the
// reference implementation for the parity tests: the flat tree replicates
// this package's STR tiling, quadratic-split and condensation tie-breaks
// exactly, and the tests assert identical structure, query results and BBS
// pop order between the two. No production code path imports this package.
package legacy

import (
	"fmt"
	"sort"

	"ordu/internal/geom"
)

// DefaultFanout is the default maximum number of entries per node. The
// paper's datasets are memory-resident, so a moderately wide fanout
// balances heap pressure in branch-and-bound traversals against tree depth.
const DefaultFanout = 32

// Entry is one slot of a node: either a child pointer (internal nodes) or a
// record id (leaves).
type Entry struct {
	Rect  geom.Rect
	Child *Node // nil at leaves
	ID    int   // record id, valid at leaves
}

// Node is an R-tree node. Level 0 is a leaf.
type Node struct {
	Level   int
	Entries []Entry
}

// Tree is an in-memory R-tree over point data.
type Tree struct {
	root    *Node
	dim     int
	fanout  int
	minFill int
	size    int
	points  map[int]geom.Vector // id -> point, for delete validation
}

// Option configures tree construction.
type Option func(*Tree)

// WithFanout sets the maximum node fanout (minimum 4).
func WithFanout(f int) Option {
	return func(t *Tree) {
		if f < 4 {
			f = 4
		}
		t.fanout = f
		t.minFill = f * 2 / 5
	}
}

// New returns an empty tree for points of the given dimensionality.
func New(dim int, opts ...Option) *Tree {
	t := &Tree{
		dim:     dim,
		fanout:  DefaultFanout,
		minFill: DefaultFanout * 2 / 5,
		points:  make(map[int]geom.Vector),
		root:    &Node{Level: 0},
	}
	for _, o := range opts {
		o(t)
	}
	return t
}

// BulkLoad builds a tree over the given points using Sort-Tile-Recursive
// packing. Record i is assigned id i.
func BulkLoad(points []geom.Vector, opts ...Option) *Tree {
	if len(points) == 0 {
		return New(1, opts...)
	}
	t := New(len(points[0]), opts...)
	entries := make([]Entry, len(points))
	for i, p := range points {
		entries[i] = Entry{Rect: geom.PointRect(p), ID: i}
		t.points[i] = p
	}
	t.size = len(points)
	t.root = t.strPack(entries, 0)
	return t
}

// strPack recursively packs entries into a node of the given level using the
// STR tiling: sort by the first axis, cut into vertical slabs, sort each
// slab by the next axis, and so on.
func (t *Tree) strPack(entries []Entry, level int) *Node {
	if len(entries) <= t.fanout {
		return &Node{Level: level, Entries: append([]Entry(nil), entries...)}
	}
	groups := t.strTile(entries, 0)
	children := make([]Entry, 0, len(groups))
	for _, g := range groups {
		// Copy each tile: the tiles are subslices of one shared array, and
		// node entry slices must own their storage so later appends (splits,
		// reinsertion) cannot clobber a sibling's entries.
		child := &Node{Level: level, Entries: append([]Entry(nil), g...)}
		children = append(children, Entry{Rect: nodeRect(child), Child: child})
	}
	return t.strPack(children, level+1)
}

// strTile splits entries into groups of at most fanout, tiling axis-by-axis.
func (t *Tree) strTile(entries []Entry, axis int) [][]Entry {
	n := len(entries)
	leafCount := (n + t.fanout - 1) / t.fanout
	if leafCount <= 1 || axis >= t.dim-1 {
		sortByAxis(entries, axis)
		out := make([][]Entry, 0, leafCount)
		for i := 0; i < n; i += t.fanout {
			out = append(out, entries[i:min(i+t.fanout, n)])
		}
		return out
	}
	// Number of slabs along this axis: ceil(leafCount^(1/(remaining axes))).
	slabs := intRoot(leafCount, t.dim-axis)
	if slabs < 1 {
		slabs = 1
	}
	sortByAxis(entries, axis)
	per := (n + slabs - 1) / slabs
	var out [][]Entry
	for i := 0; i < n; i += per {
		out = append(out, t.strTile(entries[i:min(i+per, n)], axis+1)...)
	}
	return out
}

func sortByAxis(entries []Entry, axis int) {
	sort.Slice(entries, func(i, j int) bool {
		ci := entries[i].Rect.Lo[axis] + entries[i].Rect.Hi[axis]
		cj := entries[j].Rect.Lo[axis] + entries[j].Rect.Hi[axis]
		return ci < cj
	})
}

// intRoot returns ceil(n^(1/k)) computed by search.
func intRoot(n, k int) int {
	if k <= 1 {
		return n
	}
	r := 1
	for pow(r, k) < n {
		r++
	}
	return r
}

func pow(b, e int) int {
	p := 1
	for i := 0; i < e; i++ {
		p *= b
		if p < 0 || p > 1<<40 {
			return 1 << 40
		}
	}
	return p
}

func nodeRect(n *Node) geom.Rect {
	r := n.Entries[0].Rect.Clone()
	for _, e := range n.Entries[1:] {
		r.Extend(e.Rect)
	}
	return r
}

// Root returns the root node for branch-and-bound traversal; it is nil only
// for an empty tree.
func (t *Tree) Root() *Node {
	if t.size == 0 {
		return nil
	}
	return t.root
}

// Dim returns the dimensionality of the indexed points.
func (t *Tree) Dim() int { return t.dim }

// Len returns the number of indexed points.
func (t *Tree) Len() int { return t.size }

// Point returns the point stored under id.
func (t *Tree) Point(id int) (geom.Vector, bool) {
	p, ok := t.points[id]
	return p, ok
}

// Insert adds a point under the given id. It returns an error when the id is
// already present or the dimensionality disagrees.
//
//ordlint:writer — splits relink the node graph; iterators must not straddle the call
func (t *Tree) Insert(id int, p geom.Vector) error {
	if len(p) != t.dim {
		return fmt.Errorf("rtree: point dim %d, tree dim %d", len(p), t.dim)
	}
	if _, dup := t.points[id]; dup {
		return fmt.Errorf("rtree: duplicate id %d", id)
	}
	t.points[id] = p
	t.size++
	split := t.insert(t.root, Entry{Rect: geom.PointRect(p), ID: id}, 0)
	if split != nil {
		old := t.root
		t.root = &Node{
			Level: old.Level + 1,
			Entries: []Entry{
				{Rect: nodeRect(old), Child: old},
				{Rect: nodeRect(split), Child: split},
			},
		}
	}
	return nil
}

// insert places e at the target level, returning a new sibling if n split.
func (t *Tree) insert(n *Node, e Entry, level int) *Node {
	if n.Level == level {
		n.Entries = append(n.Entries, e)
		if len(n.Entries) > t.fanout {
			return t.splitNode(n)
		}
		return nil
	}
	// Choose subtree with least enlargement, ties by smallest area.
	best, bestEnl, bestArea := -1, 0.0, 0.0
	for i := range n.Entries {
		enl := n.Entries[i].Rect.Enlargement(e.Rect)
		area := n.Entries[i].Rect.Area()
		// The equality arm is a heuristic tie-break (least area among equal
		// enlargements, typically both exactly zero for containment); either
		// outcome yields a correct, merely differently balanced tree.
		if best < 0 || enl < bestEnl || (enl == bestEnl && area < bestArea) { //ordlint:allow floatcmp — heuristic tie-break, both outcomes valid
			best, bestEnl, bestArea = i, enl, area
		}
	}
	child := n.Entries[best].Child
	split := t.insert(child, e, level)
	n.Entries[best].Rect = nodeRect(child)
	if split != nil {
		n.Entries = append(n.Entries, Entry{Rect: nodeRect(split), Child: split})
		if len(n.Entries) > t.fanout {
			return t.splitNode(n)
		}
	}
	return nil
}

// splitNode performs a quadratic split of an overfull node in place,
// returning the new sibling.
func (t *Tree) splitNode(n *Node) *Node {
	entries := n.Entries
	// Pick seeds: the pair wasting the most area.
	s1, s2, worst := 0, 1, -1.0
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			u := entries[i].Rect.Union(entries[j].Rect)
			waste := u.Area() - entries[i].Rect.Area() - entries[j].Rect.Area()
			if waste > worst {
				s1, s2, worst = i, j, waste
			}
		}
	}
	g1 := []Entry{entries[s1]}
	g2 := []Entry{entries[s2]}
	r1 := entries[s1].Rect.Clone()
	r2 := entries[s2].Rect.Clone()
	rest := make([]Entry, 0, len(entries)-2)
	for i, e := range entries {
		if i != s1 && i != s2 {
			rest = append(rest, e)
		}
	}
	for len(rest) > 0 {
		// Force assignment when one group must absorb all remaining entries
		// to reach minimum fill.
		if len(g1)+len(rest) <= t.minFill {
			g1 = append(g1, rest...)
			for _, e := range rest {
				r1.Extend(e.Rect)
			}
			break
		}
		if len(g2)+len(rest) <= t.minFill {
			g2 = append(g2, rest...)
			for _, e := range rest {
				r2.Extend(e.Rect)
			}
			break
		}
		// Pick the entry with the greatest preference difference.
		pick, pref := -1, -1.0
		for i, e := range rest {
			d1 := r1.Enlargement(e.Rect)
			d2 := r2.Enlargement(e.Rect)
			if df := abs(d1 - d2); df > pref {
				pick, pref = i, df
			}
		}
		e := rest[pick]
		rest = append(rest[:pick], rest[pick+1:]...)
		if r1.Enlargement(e.Rect) <= r2.Enlargement(e.Rect) {
			g1 = append(g1, e)
			r1.Extend(e.Rect)
		} else {
			g2 = append(g2, e)
			r2.Extend(e.Rect)
		}
	}
	n.Entries = g1
	return &Node{Level: n.Level, Entries: g2}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Delete removes the point stored under id. It returns false when the id is
// unknown. Underfull nodes are condensed by reinsertion, as in Guttman's
// original algorithm.
//
//ordlint:writer — condensation reinserts entries and drops nodes; iterators must not straddle the call
func (t *Tree) Delete(id int) bool {
	p, ok := t.points[id]
	if !ok {
		return false
	}
	var orphans []Entry
	removed := t.remove(t.root, id, p, &orphans)
	if !removed {
		return false
	}
	delete(t.points, id)
	t.size--
	// Collapse a root with a single internal child.
	for t.root.Level > 0 && len(t.root.Entries) == 1 {
		t.root = t.root.Entries[0].Child
	}
	if t.root.Level > 0 && len(t.root.Entries) == 0 {
		t.root = &Node{Level: 0}
	}
	// Reinsert orphaned entries at their original level.
	for _, o := range orphans {
		t.reinsertEntry(o)
	}
	return true
}

func (t *Tree) reinsertEntry(e Entry) {
	level := 0
	if e.Child != nil {
		level = e.Child.Level + 1
	}
	if t.root.Level < level {
		// Degenerate: tree shrank below the orphan's level; graft children.
		for _, c := range e.Child.Entries {
			t.reinsertEntry(c)
		}
		return
	}
	split := t.insert(t.root, e, level)
	if split != nil {
		old := t.root
		t.root = &Node{
			Level: old.Level + 1,
			Entries: []Entry{
				{Rect: nodeRect(old), Child: old},
				{Rect: nodeRect(split), Child: split},
			},
		}
	}
}

func (t *Tree) remove(n *Node, id int, p geom.Vector, orphans *[]Entry) bool {
	if n.Level == 0 {
		for i, e := range n.Entries {
			if e.ID == id {
				n.Entries = append(n.Entries[:i], n.Entries[i+1:]...)
				return true
			}
		}
		return false
	}
	for i := range n.Entries {
		if !n.Entries[i].Rect.Contains(p) {
			continue
		}
		child := n.Entries[i].Child
		if t.remove(child, id, p, orphans) {
			if len(child.Entries) < t.minFill {
				// Condense: orphan the whole child for reinsertion.
				*orphans = append(*orphans, child.Entries...)
				n.Entries = append(n.Entries[:i], n.Entries[i+1:]...)
			} else {
				n.Entries[i].Rect = nodeRect(child)
			}
			return true
		}
	}
	return false
}

// RangeQuery returns the ids of all points inside rect (borders included).
func (t *Tree) RangeQuery(rect geom.Rect) []int {
	return t.RangeQueryAppend(rect, nil)
}

// RangeQueryAppend appends the ids of all points inside rect (borders
// included) to out and returns it — the scratch-buffer form of RangeQuery
// for callers that issue many queries and want to reuse one buffer.
func (t *Tree) RangeQueryAppend(rect geom.Rect, out []int) []int {
	if t.size == 0 {
		return out
	}
	return rangeWalk(t.root, rect, out)
}

func rangeWalk(n *Node, rect geom.Rect, out []int) []int {
	for _, e := range n.Entries {
		if !rect.Intersects(e.Rect) {
			continue
		}
		if n.Level == 0 {
			out = append(out, e.ID)
		} else {
			out = rangeWalk(e.Child, rect, out)
		}
	}
	return out
}

// CountDominated returns the number of indexed points strictly dominated by
// p under the maximisation convention. It is the dominance-count primitive
// of the OSS-skyline baseline [49]: subtrees entirely dominated are counted
// wholesale without visiting leaves.
func (t *Tree) CountDominated(p geom.Vector) int {
	if t.size == 0 {
		return 0
	}
	count := 0
	var walk func(n *Node) int
	walk = func(n *Node) int {
		c := 0
		for _, e := range n.Entries {
			// Prune subtrees that cannot contain dominated points: the
			// subtree's best corner must be dominated-or-equal for overlap.
			if !p.WeakDominates(e.Rect.Lo) {
				continue
			}
			if n.Level == 0 {
				if p.Dominates(geom.Vector(e.Rect.Lo)) {
					c++
				}
				continue
			}
			if p.Dominates(e.Rect.Hi) {
				c += subtreeSize(e.Child)
				continue
			}
			c += walk(e.Child)
		}
		return c
	}
	count = walk(t.root)
	return count
}

// CountDominators returns the number of indexed points that strictly
// dominate p under the maximisation convention — the mirror of
// CountDominated, used by the serving layer's cache keep-test (a mutated
// point with at least k plain dominators cannot change any rho-skyband with
// parameter k). Subtrees whose bottom corner dominates p are counted
// wholesale without visiting leaves.
func (t *Tree) CountDominators(p geom.Vector) int {
	if t.size == 0 {
		return 0
	}
	var walk func(n *Node) int
	walk = func(n *Node) int {
		c := 0
		for _, e := range n.Entries {
			// A dominator is componentwise >= p, so the subtree's top corner
			// must weakly dominate p for any to exist inside.
			if !e.Rect.Hi.WeakDominates(p) {
				continue
			}
			if n.Level == 0 {
				if e.Rect.Lo.Dominates(p) {
					c++
				}
				continue
			}
			if e.Rect.Lo.Dominates(p) {
				c += subtreeSize(e.Child)
				continue
			}
			c += walk(e.Child)
		}
		return c
	}
	return walk(t.root)
}

func subtreeSize(n *Node) int {
	if n.Level == 0 {
		return len(n.Entries)
	}
	s := 0
	for _, e := range n.Entries {
		s += subtreeSize(e.Child)
	}
	return s
}

// Height returns the number of levels in the tree (1 for a leaf-only tree).
func (t *Tree) Height() int { return t.root.Level + 1 }

// Bounds returns the exact minimum bounding rectangle of the indexed points
// (the root MBR) and true, or a zero rectangle and false for an empty tree.
// The returned rectangle is a copy; mutating it does not affect the tree.
func (t *Tree) Bounds() (geom.Rect, bool) {
	if t.size == 0 {
		return geom.Rect{}, false
	}
	return nodeRect(t.root), true
}
