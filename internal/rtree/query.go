package rtree

import "ordu/internal/geom"

// RangeQuery returns the ids of all points inside rect (borders included).
func (t *Tree) RangeQuery(rect geom.Rect) []int {
	return t.RangeQueryAppend(rect, nil)
}

// RangeQueryAppend appends the ids of all points inside rect (borders
// included) to out and returns it — the scratch-buffer form of RangeQuery
// for callers that issue many queries and want to reuse one buffer.
func (t *Tree) RangeQueryAppend(rect geom.Rect, out []int) []int {
	if t.size == 0 {
		return out
	}
	return t.rangeWalk(t.root, rect, out)
}

func (t *Tree) rangeWalk(n NodeRef, rect geom.Rect, out []int) []int {
	cnt := int(t.count[n])
	eb := t.eb(n)
	d := t.dim
	if t.level[n] == 0 {
		for i := 0; i < cnt; i++ {
			p := t.slotVec(t.ents[eb+i])
			if rect.Contains(p) {
				out = append(out, t.idAt[t.ents[eb+i]])
			}
		}
		return out
	}
	for i := 0; i < cnt; i++ {
		rb := t.rb(n, i)
		overlap := true
		for j := 0; j < d; j++ {
			if t.rects[rb+d+j] < rect.Lo[j] || rect.Hi[j] < t.rects[rb+j] {
				overlap = false
				break
			}
		}
		if overlap {
			out = t.rangeWalk(NodeRef(t.ents[eb+i]), rect, out)
		}
	}
	return out
}

// CountDominated returns the number of indexed points strictly dominated by
// p under the maximisation convention. It is the dominance-count primitive
// of the OSS-skyline baseline [49]: subtrees entirely dominated are counted
// wholesale without visiting leaves.
func (t *Tree) CountDominated(p geom.Vector) int {
	if t.size == 0 {
		return 0
	}
	return t.countDominated(t.root, p)
}

func (t *Tree) countDominated(n NodeRef, p []float64) int {
	c := 0
	cnt := int(t.count[n])
	eb := t.eb(n)
	if t.level[n] == 0 {
		for i := 0; i < cnt; i++ {
			if dom(p, t.slotVec(t.ents[eb+i])) {
				c++
			}
		}
		return c
	}
	d := t.dim
	for i := 0; i < cnt; i++ {
		rb := t.rb(n, i)
		// Prune subtrees that cannot contain dominated points: the subtree's
		// best corner must be dominated-or-equal for overlap.
		if !weakDom(p, t.rects[rb:rb+d]) {
			continue
		}
		child := NodeRef(t.ents[eb+i])
		if dom(p, t.rects[rb+d:rb+2*d]) {
			c += t.subtreeSize(child)
			continue
		}
		c += t.countDominated(child, p)
	}
	return c
}

// CountDominators returns the number of indexed points that strictly
// dominate p under the maximisation convention — the mirror of
// CountDominated, used by the serving layer's cache keep-test (a mutated
// point with at least k plain dominators cannot change any rho-skyband with
// parameter k). Subtrees whose bottom corner dominates p are counted
// wholesale without visiting leaves.
func (t *Tree) CountDominators(p geom.Vector) int {
	if t.size == 0 {
		return 0
	}
	return t.countDominators(t.root, p)
}

func (t *Tree) countDominators(n NodeRef, p []float64) int {
	c := 0
	cnt := int(t.count[n])
	eb := t.eb(n)
	if t.level[n] == 0 {
		for i := 0; i < cnt; i++ {
			if dom(t.slotVec(t.ents[eb+i]), p) {
				c++
			}
		}
		return c
	}
	d := t.dim
	for i := 0; i < cnt; i++ {
		rb := t.rb(n, i)
		// A dominator is componentwise >= p, so the subtree's top corner
		// must weakly dominate p for any to exist inside.
		if !weakDom(t.rects[rb+d:rb+2*d], p) {
			continue
		}
		child := NodeRef(t.ents[eb+i])
		if dom(t.rects[rb:rb+d], p) {
			c += t.subtreeSize(child)
			continue
		}
		c += t.countDominators(child, p)
	}
	return c
}

func (t *Tree) subtreeSize(n NodeRef) int {
	if t.level[n] == 0 {
		return int(t.count[n])
	}
	s := 0
	cnt := int(t.count[n])
	eb := t.eb(n)
	for i := 0; i < cnt; i++ {
		s += t.subtreeSize(NodeRef(t.ents[eb+i]))
	}
	return s
}
