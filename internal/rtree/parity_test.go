package rtree

import (
	"fmt"
	"math/rand"
	"testing"

	"ordu/internal/geom"
	"ordu/internal/rtree/legacy"
)

// checkTreesIdentical walks the flat tree and the legacy pointer tree in
// lockstep and requires bit-for-bit agreement: same levels, same entry
// counts, same entry order, identical MBR floats and identical leaf ids.
// Structural identity is the strongest parity statement available — every
// traversal (range, dominance counts, BBS, BBR) reads only this structure,
// so identical structure forces identical visit and output order.
func checkTreesIdentical(t *testing.T, ft *Tree, lt *legacy.Tree, step string) {
	t.Helper()
	if ft.Len() != lt.Len() {
		t.Fatalf("%s: Len %d vs legacy %d", step, ft.Len(), lt.Len())
	}
	if ft.Len() == 0 {
		return
	}
	if ft.Height() != lt.Height() {
		t.Fatalf("%s: Height %d vs legacy %d", step, ft.Height(), lt.Height())
	}
	var walk func(fn NodeRef, ln *legacy.Node, path string)
	walk = func(fn NodeRef, ln *legacy.Node, path string) {
		if ft.Level(fn) != ln.Level {
			t.Fatalf("%s: node %s level %d vs legacy %d", step, path, ft.Level(fn), ln.Level)
		}
		if ft.Count(fn) != len(ln.Entries) {
			t.Fatalf("%s: node %s count %d vs legacy %d", step, path, ft.Count(fn), len(ln.Entries))
		}
		for i, le := range ln.Entries {
			if ln.Level == 0 {
				if ft.LeafID(fn, i) != le.ID {
					t.Fatalf("%s: node %s leaf slot %d id %d vs legacy %d", step, path, i, ft.LeafID(fn, i), le.ID)
				}
				if !ft.LeafPoint(fn, i).Equal(geom.Vector(le.Rect.Lo)) {
					t.Fatalf("%s: node %s leaf slot %d point %v vs legacy %v", step, path, i, ft.LeafPoint(fn, i), le.Rect.Lo)
				}
				continue
			}
			if !ft.ChildLo(fn, i).Equal(geom.Vector(le.Rect.Lo)) || !ft.ChildHi(fn, i).Equal(geom.Vector(le.Rect.Hi)) {
				t.Fatalf("%s: node %s entry %d rect %v/%v vs legacy %v/%v",
					step, path, i, ft.ChildLo(fn, i), ft.ChildHi(fn, i), le.Rect.Lo, le.Rect.Hi)
			}
			walk(ft.Child(fn, i), le.Child, fmt.Sprintf("%s.%d", path, i))
		}
	}
	walk(ft.Root(), lt.Root(), "root")
}

// TestBulkLoadParityVsLegacy builds flat and legacy trees over identical
// randomized datasets and requires structural identity, across sizes that
// cover single-leaf, two-level and three-level STR packings, and dimensions
// that exercise every tiling recursion depth.
func TestBulkLoadParityVsLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, d := range []int{2, 3, 4, 6} {
		for _, n := range []int{1, 31, 32, 33, 1000, 5000} {
			pts := randPoints(rng, n, d)
			ft := BulkLoad(pts)
			lt := legacy.BulkLoad(pts)
			checkTreesIdentical(t, ft, lt, fmt.Sprintf("bulk d=%d n=%d", d, n))
		}
	}
}

// TestMutationParityVsLegacy drives identical interleaved Insert/Delete
// streams through both implementations at a small fanout (forcing splits,
// condensations and root collapses) and requires structural identity plus
// identical RangeQuery output — including order — after every operation.
func TestMutationParityVsLegacy(t *testing.T) {
	for _, cfg := range []struct {
		dim, fanout, ops int
		seed             int64
	}{
		{2, 4, 400, 41},
		{3, 5, 300, 42},
		{4, 8, 300, 43},
	} {
		cfg := cfg
		t.Run(fmt.Sprintf("d%d_f%d", cfg.dim, cfg.fanout), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(cfg.seed))
			ft := New(cfg.dim, WithFanout(cfg.fanout))
			lt := legacy.New(cfg.dim, legacy.WithFanout(cfg.fanout))
			var live []int
			nextID := 0
			for op := 0; op < cfg.ops; op++ {
				if len(live) == 0 || rng.Float64() < 0.7 {
					p := make(geom.Vector, cfg.dim)
					for j := range p {
						p[j] = rng.Float64()
					}
					if err := ft.Insert(nextID, p); err != nil {
						t.Fatalf("op %d: flat Insert: %v", op, err)
					}
					if err := lt.Insert(nextID, p); err != nil {
						t.Fatalf("op %d: legacy Insert: %v", op, err)
					}
					live = append(live, nextID)
					nextID++
				} else {
					k := rng.Intn(len(live))
					id := live[k]
					live = append(live[:k], live[k+1:]...)
					if !ft.Delete(id) {
						t.Fatalf("op %d: flat Delete(%d) missing", op, id)
					}
					if !lt.Delete(id) {
						t.Fatalf("op %d: legacy Delete(%d) missing", op, id)
					}
				}
				checkTreesIdentical(t, ft, lt, fmt.Sprintf("op %d", op))
				// RangeQuery emits in traversal order; identical structure must
				// give identical output without sorting.
				lo := make(geom.Vector, cfg.dim)
				hi := make(geom.Vector, cfg.dim)
				for j := 0; j < cfg.dim; j++ {
					a, b := rng.Float64(), rng.Float64()
					if a > b {
						a, b = b, a
					}
					lo[j], hi[j] = a, b
				}
				rect := geom.NewRect(lo, hi)
				fg := ft.RangeQuery(rect)
				lg := lt.RangeQuery(rect)
				if len(fg) != len(lg) {
					t.Fatalf("op %d: range %d ids vs legacy %d", op, len(fg), len(lg))
				}
				for i := range fg {
					if fg[i] != lg[i] {
						t.Fatalf("op %d: range order diverges at %d: %v vs %v", op, i, fg, lg)
					}
				}
			}
		})
	}
}

// TestDominanceCountParityVsLegacy compares the branch-free dominance-count
// kernels against the legacy early-exit walks on a bulk-loaded tree with
// duplicated coordinates (ties are where a branch-free flag accumulation
// could silently diverge from short-circuit comparisons).
func TestDominanceCountParityVsLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	const d = 3
	pts := make([]geom.Vector, 1500)
	for i := range pts {
		p := make(geom.Vector, d)
		for j := range p {
			// Quantized coordinates: frequent exact ties across records.
			p[j] = float64(rng.Intn(16)) / 15
		}
		pts[i] = p
	}
	ft := BulkLoad(pts)
	lt := legacy.BulkLoad(pts)
	checkTreesIdentical(t, ft, lt, "bulk")
	for trial := 0; trial < 200; trial++ {
		q := pts[rng.Intn(len(pts))]
		if fg, lg := ft.CountDominated(q), lt.CountDominated(q); fg != lg {
			t.Fatalf("CountDominated(%v) = %d, legacy %d", q, fg, lg)
		}
		if fg, lg := ft.CountDominators(q), lt.CountDominators(q); fg != lg {
			t.Fatalf("CountDominators(%v) = %d, legacy %d", q, fg, lg)
		}
	}
}
