package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"ordu/internal/geom"
)

func randPoints(rng *rand.Rand, n, d int) []geom.Vector {
	pts := make([]geom.Vector, n)
	for i := range pts {
		p := make(geom.Vector, d)
		for j := range p {
			p[j] = rng.Float64()
		}
		pts[i] = p
	}
	return pts
}

// checkInvariants walks the flat arena and validates the basic shape: child
// levels decrease by one, leaf entry count sums to size, and every stored
// entry rectangle exactly equals the recomputed MBR of its child.
func checkInvariants(t *testing.T, tr *Tree) {
	t.Helper()
	if tr.size == 0 {
		return
	}
	lo := make([]float64, tr.dim)
	hi := make([]float64, tr.dim)
	var walk func(n NodeRef) int
	walk = func(n NodeRef) int {
		cnt := tr.Count(n)
		if cnt > tr.fanout {
			t.Fatalf("node %d at level %d holds %d entries, fanout %d", n, tr.Level(n), cnt, tr.fanout)
		}
		if tr.Level(n) == 0 {
			for i := 0; i < cnt; i++ {
				p, ok := tr.Point(tr.LeafID(n, i))
				if !ok {
					t.Fatalf("leaf holds unknown id %d", tr.LeafID(n, i))
				}
				if !tr.LeafPoint(n, i).Equal(p) {
					t.Fatalf("leaf slot for id %d disagrees with Point", tr.LeafID(n, i))
				}
			}
			return cnt
		}
		count := 0
		for i := 0; i < cnt; i++ {
			c := tr.Child(n, i)
			if tr.Level(c) != tr.Level(n)-1 {
				t.Fatalf("child level %d under node level %d", tr.Level(c), tr.Level(n))
			}
			tr.computeNodeRect(c, lo, hi)
			if !tr.ChildLo(n, i).Equal(lo) || !tr.ChildHi(n, i).Equal(hi) {
				t.Fatalf("stale MBR at level %d: stored %v/%v, actual %v/%v",
					tr.Level(n), tr.ChildLo(n, i), tr.ChildHi(n, i), geom.Vector(lo), geom.Vector(hi))
			}
			count += walk(c)
		}
		return count
	}
	if got := walk(tr.root); got != tr.size {
		t.Fatalf("tree holds %d leaf entries, size says %d", got, tr.size)
	}
}

func TestBulkLoadAndRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 5, 33, 100, 2000} {
		pts := randPoints(rng, n, 3)
		tr := BulkLoad(pts)
		checkInvariants(t, tr)
		if tr.Len() != n {
			t.Fatalf("Len = %d, want %d", tr.Len(), n)
		}
		if n == 0 {
			continue
		}
		q := geom.NewRect(geom.Vector{0.2, 0.2, 0.2}, geom.Vector{0.7, 0.7, 0.7})
		got := tr.RangeQuery(q)
		sort.Ints(got)
		var want []int
		for i, p := range pts {
			if q.Contains(p) {
				want = append(want, i)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("n=%d: range returned %d, want %d", n, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d: range mismatch at %d", n, i)
			}
		}
	}
}

func TestInsertMatchesBulk(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := randPoints(rng, 500, 4)
	tr := New(4)
	for i, p := range pts {
		if err := tr.Insert(i, p); err != nil {
			t.Fatal(err)
		}
	}
	checkInvariants(t, tr)
	q := geom.NewRect(geom.Vector{0, 0, 0, 0}, geom.Vector{0.5, 1, 1, 0.5})
	got := tr.RangeQuery(q)
	var want int
	for _, p := range pts {
		if q.Contains(p) {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("insert-built range = %d, want %d", len(got), want)
	}
}

func TestInsertRejectsBadInput(t *testing.T) {
	tr := New(2)
	if err := tr.Insert(0, geom.Vector{1, 2, 3}); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if err := tr.Insert(1, geom.Vector{0.1, 0.2}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(1, geom.Vector{0.3, 0.4}); err == nil {
		t.Error("duplicate id accepted")
	}
}

func TestDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := randPoints(rng, 400, 3)
	tr := BulkLoad(pts)
	// Delete every third point.
	removed := map[int]bool{}
	for i := 0; i < len(pts); i += 3 {
		if !tr.Delete(i) {
			t.Fatalf("Delete(%d) failed", i)
		}
		removed[i] = true
	}
	checkInvariants(t, tr)
	if tr.Len() != len(pts)-len(removed) {
		t.Fatalf("Len = %d", tr.Len())
	}
	all := geom.NewRect(geom.Vector{0, 0, 0}, geom.Vector{1, 1, 1})
	got := tr.RangeQuery(all)
	if len(got) != tr.Len() {
		t.Fatalf("range after delete = %d, want %d", len(got), tr.Len())
	}
	for _, id := range got {
		if removed[id] {
			t.Fatalf("deleted id %d still reachable", id)
		}
	}
	if tr.Delete(0) {
		t.Error("double delete succeeded")
	}
	// Deleting everything must leave a usable empty tree.
	for _, id := range got {
		if !tr.Delete(id) {
			t.Fatalf("Delete(%d) failed", id)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len after full delete = %d", tr.Len())
	}
	if err := tr.Insert(9999, geom.Vector{0.5, 0.5, 0.5}); err != nil {
		t.Fatalf("insert into emptied tree: %v", err)
	}
}

func TestCountDominated(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := randPoints(rng, 800, 3)
	tr := BulkLoad(pts)
	for trial := 0; trial < 20; trial++ {
		p := pts[rng.Intn(len(pts))]
		want := 0
		for _, q := range pts {
			if p.Dominates(q) {
				want++
			}
		}
		if got := tr.CountDominated(p); got != want {
			t.Fatalf("CountDominated = %d, want %d", got, want)
		}
	}
}

func TestPointLookup(t *testing.T) {
	pts := []geom.Vector{{0.1, 0.9}, {0.5, 0.5}}
	tr := BulkLoad(pts)
	p, ok := tr.Point(1)
	if !ok || !p.Equal(pts[1]) {
		t.Error("Point lookup failed")
	}
	if _, ok := tr.Point(99); ok {
		t.Error("Point(99) should miss")
	}
}

func TestMixedInsertDeleteStress(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr := New(2, WithFanout(8))
	live := map[int]geom.Vector{}
	next := 0
	for op := 0; op < 3000; op++ {
		if len(live) == 0 || rng.Float64() < 0.6 {
			p := geom.Vector{rng.Float64(), rng.Float64()}
			if err := tr.Insert(next, p); err != nil {
				t.Fatal(err)
			}
			live[next] = p
			next++
		} else {
			// Delete a random live id.
			var id int
			for id = range live {
				break
			}
			if !tr.Delete(id) {
				t.Fatalf("delete live id %d failed", id)
			}
			delete(live, id)
		}
	}
	checkInvariants(t, tr)
	all := geom.NewRect(geom.Vector{0, 0}, geom.Vector{1, 1})
	got := tr.RangeQuery(all)
	if len(got) != len(live) {
		t.Fatalf("reachable %d, live %d", len(got), len(live))
	}
}

func TestHeightGrows(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	small := BulkLoad(randPoints(rng, 10, 2))
	big := BulkLoad(randPoints(rng, 5000, 2))
	if small.Height() >= big.Height() {
		t.Errorf("heights: small %d, big %d", small.Height(), big.Height())
	}
}

// TestSlotStability pins the packed-slot contract: LeafPoint views taken
// before a long run of inserts still read the same coordinates afterwards
// (point chunks are never reallocated, only appended).
func TestSlotStability(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pts := randPoints(rng, 200, 3)
	tr := BulkLoad(pts)
	type held struct {
		id int
		v  geom.Vector
	}
	var views []held
	root := tr.Root()
	var collect func(n NodeRef)
	collect = func(n NodeRef) {
		if tr.Level(n) == 0 {
			for i := 0; i < tr.Count(n); i++ {
				views = append(views, held{tr.LeafID(n, i), tr.LeafPoint(n, i)})
			}
			return
		}
		for i := 0; i < tr.Count(n); i++ {
			collect(tr.Child(n, i))
		}
	}
	collect(root)
	for i := 0; i < 5000; i++ {
		p := geom.Vector{rng.Float64(), rng.Float64(), rng.Float64()}
		if err := tr.Insert(1000+i, p); err != nil {
			t.Fatal(err)
		}
	}
	for _, h := range views {
		if !h.v.Equal(pts[h.id]) {
			t.Fatalf("held view for id %d changed after growth: %v != %v", h.id, h.v, pts[h.id])
		}
	}
}
