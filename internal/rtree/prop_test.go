package rtree

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"ordu/internal/geom"
)

// refStore is the brute-force reference the property tests compare the tree
// against: a flat id -> point map with linear-scan range queries.
type refStore map[int]geom.Vector

func (r refStore) rangeIDs(rect geom.Rect) []int {
	var out []int
	for id, p := range r {
		if rect.Contains(p) {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}

// checkParity asserts that tree and reference agree on Len, on Point lookups
// for every live id (plus a few dead ones), and on range queries.
func checkParity(t *testing.T, tr *Tree, ref refStore, rng *rand.Rand, step string) {
	t.Helper()
	if tr.Len() != len(ref) {
		t.Fatalf("%s: Len = %d, reference holds %d", step, tr.Len(), len(ref))
	}
	for id, want := range ref {
		got, ok := tr.Point(id)
		if !ok || !got.Equal(want) {
			t.Fatalf("%s: Point(%d) = %v, %v; want %v, true", step, id, got, ok, want)
		}
	}
	if _, ok := tr.Point(-1); ok {
		t.Fatalf("%s: Point(-1) reported present", step)
	}
	d := tr.Dim()
	for q := 0; q < 4; q++ {
		lo := make(geom.Vector, d)
		hi := make(geom.Vector, d)
		for j := 0; j < d; j++ {
			a, b := rng.Float64(), rng.Float64()
			if a > b {
				a, b = b, a
			}
			lo[j], hi[j] = a, b
		}
		rect := geom.NewRect(lo, hi)
		got := append([]int(nil), tr.RangeQuery(rect)...)
		sort.Ints(got)
		want := ref.rangeIDs(rect)
		if len(got) != len(want) {
			t.Fatalf("%s: range query returned %d ids, want %d (got %v, want %v)", step, len(got), len(want), got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: range query ids %v, want %v", step, got, want)
			}
		}
	}
	checkStructure(t, tr, step)
}

// checkStructure validates the R-tree shape invariants that Insert/Delete
// must preserve in the flat arena: entry rectangles exactly bound their
// subtrees, levels decrease by one per edge, no node exceeds the fanout,
// every non-root node respects minimum fill (the underflow condensation
// contract), and the slot maps stay mutually consistent.
func checkStructure(t *testing.T, tr *Tree, step string) {
	t.Helper()
	if tr.size == 0 {
		return
	}
	lo := make([]float64, tr.dim)
	hi := make([]float64, tr.dim)
	var walk func(n NodeRef, isRoot bool)
	walk = func(n NodeRef, isRoot bool) {
		cnt := tr.Count(n)
		if cnt > tr.fanout {
			t.Fatalf("%s: node at level %d holds %d entries, fanout %d", step, tr.Level(n), cnt, tr.fanout)
		}
		if !isRoot && cnt < tr.minFill {
			t.Fatalf("%s: non-root node at level %d underfull: %d < minFill %d", step, tr.Level(n), cnt, tr.minFill)
		}
		if tr.Level(n) == 0 {
			if tr.rseg[n] != -1 {
				t.Fatalf("%s: leaf node %d owns a rect segment", step, n)
			}
			for i := 0; i < cnt; i++ {
				id := tr.LeafID(n, i)
				p, ok := tr.Point(id)
				if !ok {
					t.Fatalf("%s: leaf holds unknown id %d", step, id)
				}
				if !tr.LeafPoint(n, i).Equal(p) {
					t.Fatalf("%s: leaf slot for id %d is not the point", step, id)
				}
				slot := tr.ents[tr.eb(n)+i]
				if got, ok := tr.slotOf[id]; !ok || got != slot {
					t.Fatalf("%s: slotOf[%d] = %d (%v), leaf references slot %d", step, id, got, ok, slot)
				}
			}
			return
		}
		for i := 0; i < cnt; i++ {
			c := tr.Child(n, i)
			if tr.Level(c) != tr.Level(n)-1 {
				t.Fatalf("%s: child level %d under node level %d", step, tr.Level(c), tr.Level(n))
			}
			if tr.Count(c) == 0 {
				t.Fatalf("%s: empty child node at level %d", step, tr.Level(c))
			}
			tr.computeNodeRect(c, lo, hi)
			if !tr.ChildLo(n, i).Equal(lo) || !tr.ChildHi(n, i).Equal(hi) {
				t.Fatalf("%s: stale MBR at level %d: stored %v/%v, actual %v/%v",
					step, tr.Level(n), tr.ChildLo(n, i), tr.ChildHi(n, i), geom.Vector(lo), geom.Vector(hi))
			}
			walk(c, false)
		}
	}
	walk(tr.root, true)
	if len(tr.slotOf) != tr.size {
		t.Fatalf("%s: slotOf holds %d ids, size %d", step, len(tr.slotOf), tr.size)
	}
	for id, slot := range tr.slotOf {
		if tr.idAt[slot] != id {
			t.Fatalf("%s: idAt[%d] = %d, slotOf says %d", step, slot, tr.idAt[slot], id)
		}
	}
}

// applyOps drives one interleaved Insert/Delete sequence against both the
// tree and the reference, checking parity after every operation. The opcode
// stream comes either from a seeded rand (property test) or the fuzzer.
func applyOps(t *testing.T, dim, fanout int, ops []byte, rng *rand.Rand) {
	t.Helper()
	tr := New(dim, WithFanout(fanout))
	ref := refStore{}
	nextID := 0
	live := []int{} // insertion-ordered live ids, for deterministic victim picks
	for i, op := range ops {
		switch {
		case op%4 != 0 || len(live) == 0: // bias 3:1 towards inserts
			p := make(geom.Vector, dim)
			for j := range p {
				p[j] = rng.Float64()
			}
			id := nextID
			nextID++
			if err := tr.Insert(id, p); err != nil {
				t.Fatalf("op %d: Insert(%d) failed: %v", i, id, err)
			}
			ref[id] = p
			live = append(live, id)
		default:
			k := int(op/4) % len(live)
			id := live[k]
			live = append(live[:k], live[k+1:]...)
			if !tr.Delete(id) {
				t.Fatalf("op %d: Delete(%d) reported missing", i, id)
			}
			delete(ref, id)
			if tr.Delete(id) {
				t.Fatalf("op %d: double Delete(%d) succeeded", i, id)
			}
		}
		checkParity(t, tr, ref, rng, fmt.Sprintf("dim=%d fanout=%d op=%d", dim, fanout, i))
	}
}

// TestMutationParityVsReference is the Delete-underflow property test: long
// random interleavings of Insert and Delete at small fanouts (forcing
// frequent splits, condensations and root collapses) must preserve Len,
// Point lookups, range-query parity and the structural invariants after
// every single operation.
func TestMutationParityVsReference(t *testing.T) {
	for _, cfg := range []struct {
		dim, fanout, ops int
		seed             int64
	}{
		{2, 4, 300, 1},
		{2, 5, 300, 2},
		{3, 4, 250, 3},
		{4, 6, 250, 4},
		{5, 8, 200, 5},
	} {
		cfg := cfg
		t.Run(fmt.Sprintf("d%d_f%d", cfg.dim, cfg.fanout), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(cfg.seed))
			ops := make([]byte, cfg.ops)
			rng.Read(ops)
			applyOps(t, cfg.dim, cfg.fanout, ops, rand.New(rand.NewSource(cfg.seed+100)))
		})
	}
}

// TestDeleteToEmptyAndRefill drains a populated tree completely and grows it
// back, twice — the regime where root collapse and orphan reinsertion at
// shrinking heights are exercised hardest.
func TestDeleteToEmptyAndRefill(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := New(3, WithFanout(4))
	ref := refStore{}
	id := 0
	for round := 0; round < 2; round++ {
		for i := 0; i < 120; i++ {
			p := geom.Vector{rng.Float64(), rng.Float64(), rng.Float64()}
			if err := tr.Insert(id, p); err != nil {
				t.Fatalf("Insert(%d): %v", id, err)
			}
			ref[id] = p
			id++
		}
		checkParity(t, tr, ref, rng, fmt.Sprintf("round %d grown", round))
		ids := make([]int, 0, len(ref))
		for rid := range ref {
			ids = append(ids, rid)
		}
		sort.Ints(ids)
		rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
		for i, rid := range ids {
			if !tr.Delete(rid) {
				t.Fatalf("Delete(%d) reported missing", rid)
			}
			delete(ref, rid)
			if i%7 == 0 {
				checkParity(t, tr, ref, rng, fmt.Sprintf("round %d drain %d", round, i))
			}
		}
		if tr.Len() != 0 {
			t.Fatalf("round %d: drained tree reports Len %d", round, tr.Len())
		}
	}
}

// TestDuplicateCoordinateMutations exercises Delete's containment-guided
// descent when many records share coordinates: every leaf rect is identical,
// so the search must distinguish records by id alone.
func TestDuplicateCoordinateMutations(t *testing.T) {
	tr := New(2, WithFanout(4))
	ref := refStore{}
	rng := rand.New(rand.NewSource(11))
	grid := []float64{0, 0.5, 1}
	id := 0
	for rep := 0; rep < 8; rep++ {
		for _, x := range grid {
			for _, y := range grid {
				p := geom.Vector{x, y}
				if err := tr.Insert(id, p); err != nil {
					t.Fatalf("Insert(%d): %v", id, err)
				}
				ref[id] = p
				id++
			}
		}
	}
	checkParity(t, tr, ref, rng, "grown")
	ids := make([]int, 0, len(ref))
	for rid := range ref {
		ids = append(ids, rid)
	}
	rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	for _, rid := range ids {
		if !tr.Delete(rid) {
			t.Fatalf("Delete(%d) reported missing", rid)
		}
		delete(ref, rid)
		checkParity(t, tr, ref, rng, "drain")
	}
}

// TestBulkLoadThenMutate checks that dynamic mutation of an STR-packed tree
// preserves parity. Bulk loading can legally leave tail nodes below minFill,
// so this test checks query parity (not fill) after every op.
func TestBulkLoadThenMutate(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	n := 257 // not a multiple of the fanout: forces an underfull STR tail
	pts := make([]geom.Vector, n)
	ref := refStore{}
	for i := range pts {
		pts[i] = geom.Vector{rng.Float64(), rng.Float64(), rng.Float64()}
		ref[i] = pts[i]
	}
	tr := BulkLoad(pts, WithFanout(8))
	nextID := n
	for i := 0; i < 300; i++ {
		if i%3 == 0 && len(ref) > 0 {
			var victim int
			for id := range ref {
				victim = id
				break
			}
			if !tr.Delete(victim) {
				t.Fatalf("op %d: Delete(%d) reported missing", i, victim)
			}
			delete(ref, victim)
		} else {
			p := geom.Vector{rng.Float64(), rng.Float64(), rng.Float64()}
			if err := tr.Insert(nextID, p); err != nil {
				t.Fatalf("op %d: Insert(%d): %v", i, nextID, err)
			}
			ref[nextID] = p
			nextID++
		}
		if tr.Len() != len(ref) {
			t.Fatalf("op %d: Len = %d, want %d", i, tr.Len(), len(ref))
		}
		for q := 0; q < 2; q++ {
			lo := geom.Vector{rng.Float64() * 0.5, rng.Float64() * 0.5, rng.Float64() * 0.5}
			hi := geom.Vector{lo[0] + 0.5, lo[1] + 0.5, lo[2] + 0.5}
			got := tr.RangeQuery(geom.NewRect(lo, hi))
			if len(got) != len(ref.rangeIDs(geom.NewRect(lo, hi))) {
				t.Fatalf("op %d: range parity broken", i)
			}
		}
	}
	for id, want := range ref {
		got, ok := tr.Point(id)
		if !ok || !got.Equal(want) {
			t.Fatalf("Point(%d) = %v, %v; want %v", id, got, ok, want)
		}
	}
}

// FuzzMutationParity lets the fuzzer pick the opcode stream; coordinates
// still come from a rand seeded by the stream so inputs stay minimal.
func FuzzMutationParity(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 0, 8, 16}, int64(1))
	f.Add([]byte{1, 1, 1, 1, 0, 0, 0, 0, 4, 8}, int64(2))
	f.Fuzz(func(t *testing.T, ops []byte, seed int64) {
		if len(ops) > 160 {
			ops = ops[:160]
		}
		applyOps(t, 2, 4, ops, rand.New(rand.NewSource(seed)))
	})
}

// TestCountDominatorsParity checks the dominator-count walk against a brute
// force over the reference store, across interleaved inserts and deletes.
func TestCountDominatorsParity(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(77))
	const d = 3
	tr := New(d, WithFanout(4))
	ref := refStore{}
	nextID := 0
	probe := func() {
		q := make(geom.Vector, d)
		for j := range q {
			q[j] = rng.Float64()
		}
		want := 0
		for _, p := range ref {
			if p.Dominates(q) {
				want++
			}
		}
		if got := tr.CountDominators(q); got != want {
			t.Fatalf("CountDominators(%v) = %d, want %d", q, got, want)
		}
		// Also probe at an indexed point: a record never dominates itself.
		for id, p := range ref {
			want := 0
			for oid, op := range ref {
				if oid != id && op.Dominates(p) {
					want++
				}
			}
			if got := tr.CountDominators(p); got != want {
				t.Fatalf("CountDominators(point %d) = %d, want %d", id, got, want)
			}
			break
		}
	}
	for op := 0; op < 400; op++ {
		if op%4 == 0 && len(ref) > 0 {
			for id := range ref {
				if !tr.Delete(id) {
					t.Fatalf("Delete(%d) missing", id)
				}
				delete(ref, id)
				break
			}
		} else {
			p := make(geom.Vector, d)
			for j := range p {
				p[j] = rng.Float64()
			}
			if err := tr.Insert(nextID, p); err != nil {
				t.Fatal(err)
			}
			ref[nextID] = p
			nextID++
		}
		if op%7 == 0 {
			probe()
		}
	}
	probe()
}
