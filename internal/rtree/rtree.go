// Package rtree implements the in-memory spatial index that the paper
// assumes over the dataset D (Section 3): an R-tree with STR bulk loading
// for static construction and quadratic-split insertion/deletion for
// dynamic maintenance. Branch-and-bound algorithms (BBS, BBR, and the
// paper's score-ordered variants) traverse it through a cursor API of
// NodeRef handles; range and point queries support predicate push-down
// (e.g. the range-then-ORD composition in Section 3) and dominance
// counting for the OSS-skyline baseline.
//
// Layout: the tree is cache-conscious. Nodes live in flat backing arrays
// indexed by int32 NodeRef — per-node level/count stripes, one
// capacity-strided int32 stripe for the entry payloads (child refs at
// internal nodes, packed point slots at leaves), and a rectangle arena
// holding the MBRs of internal entries as contiguous float64 runs. Point
// coordinates live in fixed-size packed chunks, d floats per record, so
// dominance and score kernels sweep contiguous memory; STR bulk load
// assigns slots in leaf order, making each leaf's points one contiguous
// run.
//
// Slot stability: a record's packed slot never moves and a chunk is never
// reallocated, so vectors handed out by LeafPoint/Point stay valid for the
// record's lifetime even as the tree churns (the same contract
// internal/collection exposes). Rectangle views returned by
// ChildLo/ChildHi alias the rect arena and are invalidated by mutations.
package rtree

import (
	"fmt"

	"ordu/internal/geom"
	"ordu/internal/narrow"
)

// DefaultFanout is the default maximum number of entries per node. The
// paper's datasets are memory-resident, so a moderately wide fanout
// balances heap pressure in branch-and-bound traversals against tree depth.
const DefaultFanout = 32

// pointChunk is the number of packed point slots per storage chunk. 1024
// slots keeps chunks around 32 KiB at d=4 — large enough for contiguous
// kernel sweeps, small enough that a near-empty tree stays cheap.
const pointChunk = 1024

// NodeRef is a handle to a node in the tree's flat node arena. NilNode
// marks the absence of a node (empty tree, no split).
type NodeRef int32

// NilNode is the null NodeRef.
const NilNode NodeRef = -1

// orphan is one entry detached by Guttman condensation, queued for
// reinsertion: either a subtree (child >= 0) or a single record slot.
type orphan struct {
	child NodeRef // NilNode for leaf entries
	slot  int32   // packed point slot, valid when child == NilNode
}

// Tree is an in-memory R-tree over point data.
type Tree struct {
	dim     int
	fanout  int
	minFill int
	entCap  int // fanout+1: room for the transient overflow entry before a split
	size    int
	root    NodeRef

	// Node arena, struct-of-arrays: node n's entries occupy the int32 run
	// ents[n*entCap : n*entCap+count[n]]; internal nodes additionally own
	// rect segment rseg[n] of the rect arena, 2*dim floats per entry.
	level     []int16
	count     []int16
	ents      []int32
	rseg      []int32
	rects     []float64
	nsegs     int
	freeNodes []int32
	freeSegs  []int32

	// Packed point storage: slot s lives in chunk s/pointChunk at offset
	// (s%pointChunk)*dim. Chunks are allocated once and never reallocated.
	chunks    [][]float64
	idAt      []int // slot -> id, -1 for free slots
	slotOf    map[int]int32
	freeSlots []int32

	// Mutation scratch (single-writer, like the rest of the write API).
	zeroEnts []int32
	sRefs    []int32
	sRects   []float64
	g1, g2   []int
	rest     []int
	r1, r2   []float64
	nrLo     []float64
	nrHi     []float64
	orphans  []orphan
}

// Option configures tree construction.
type Option func(*Tree)

// WithFanout sets the maximum node fanout (minimum 4).
func WithFanout(f int) Option {
	return func(t *Tree) {
		if f < 4 {
			f = 4
		}
		t.fanout = f
		t.minFill = f * 2 / 5
	}
}

// New returns an empty tree for points of the given dimensionality.
func New(dim int, opts ...Option) *Tree {
	t := &Tree{
		dim:     dim,
		fanout:  DefaultFanout,
		minFill: DefaultFanout * 2 / 5,
		slotOf:  make(map[int]int32),
		root:    NilNode,
	}
	for _, o := range opts {
		o(t)
	}
	t.entCap = t.fanout + 1
	t.zeroEnts = make([]int32, t.entCap)
	t.nrLo = make([]float64, dim)
	t.nrHi = make([]float64, dim)
	t.r1 = make([]float64, 2*dim)
	t.r2 = make([]float64, 2*dim)
	t.root = t.newNode(0)
	return t
}

// Dim returns the dimensionality of the indexed points.
func (t *Tree) Dim() int { return t.dim }

// Len returns the number of indexed points.
func (t *Tree) Len() int { return t.size }

// Height returns the number of levels in the tree (1 for a leaf-only tree).
func (t *Tree) Height() int { return int(t.level[t.root]) + 1 }

// Root returns the root node for branch-and-bound traversal; it is NilNode
// only for an empty tree.
func (t *Tree) Root() NodeRef {
	if t.size == 0 {
		return NilNode
	}
	return t.root
}

// Level returns the level of a node; 0 is a leaf.
func (t *Tree) Level(n NodeRef) int { return int(t.level[n]) }

// Count returns the number of entries in a node.
func (t *Tree) Count(n NodeRef) int { return int(t.count[n]) }

// Child returns the i-th child of an internal node.
//
//ordlint:bounded — caller contract: i < Count(n), upheld by every traversal loop
func (t *Tree) Child(n NodeRef, i int) NodeRef {
	return NodeRef(t.ents[int(n)*t.entCap+i])
}

// ChildLo returns the low corner of the i-th entry MBR of an internal
// node. The vector is a view into the rect arena: valid until the next
// mutation, read-only.
//
//ordlint:borrows — the vector aliases the tree's rect arena
func (t *Tree) ChildLo(n NodeRef, i int) geom.Vector {
	rb := t.rb(n, i)
	return geom.Vector(t.rects[rb : rb+t.dim : rb+t.dim])
}

// ChildHi returns the high (top) corner of the i-th entry MBR of an
// internal node — the score upper bound BBS orders by. The vector is a
// view into the rect arena: valid until the next mutation, read-only.
//
//ordlint:borrows — the vector aliases the tree's rect arena
func (t *Tree) ChildHi(n NodeRef, i int) geom.Vector {
	rb := t.rb(n, i) + t.dim
	return geom.Vector(t.rects[rb : rb+t.dim : rb+t.dim])
}

// LeafID returns the record id of the i-th entry of a leaf.
//
//ordlint:bounded — caller contract: i < Count(n), upheld by every traversal loop
func (t *Tree) LeafID(n NodeRef, i int) int {
	return t.idAt[t.ents[int(n)*t.entCap+i]]
}

// LeafPoint returns the point of the i-th entry of a leaf. The vector
// aliases the packed chunk storage: it stays valid until the record is
// deleted (slot stability), but must be treated as read-only.
//
//ordlint:borrows — the vector aliases the packed chunk storage
//ordlint:bounded — caller contract: i < Count(n), upheld by every traversal loop
func (t *Tree) LeafPoint(n NodeRef, i int) geom.Vector {
	return t.slotVec(t.ents[int(n)*t.entCap+i])
}

// Point returns the point stored under id. The vector aliases the packed
// chunk storage (copy it to retain across deletions).
//
//ordlint:borrows — the vector aliases the packed chunk storage
func (t *Tree) Point(id int) (geom.Vector, bool) {
	slot, ok := t.slotOf[id]
	if !ok {
		return nil, false
	}
	return t.slotVec(slot), true
}

// Bounds returns the exact minimum bounding rectangle of the indexed points
// (the root MBR) and true, or a zero rectangle and false for an empty tree.
// The returned rectangle is a copy; mutating it does not affect the tree.
func (t *Tree) Bounds() (geom.Rect, bool) {
	if t.size == 0 {
		return geom.Rect{}, false
	}
	lo := make(geom.Vector, t.dim)
	hi := make(geom.Vector, t.dim)
	t.computeNodeRect(t.root, lo, hi)
	return geom.Rect{Lo: lo, Hi: hi}, true
}

// eb returns the entry base offset of a node in the ents stripe.
func (t *Tree) eb(n NodeRef) int { return int(n) * t.entCap }

// rb returns the rect base offset of entry i of an internal node.
func (t *Tree) rb(n NodeRef, i int) int {
	return (int(t.rseg[n])*t.entCap + i) * 2 * t.dim
}

// slotVec returns the packed vector of a slot, capacity-capped so appends
// by a caller can never clobber the neighbouring slot.
//
//ordlint:borrows — the vector aliases the packed chunk storage
func (t *Tree) slotVec(slot int32) geom.Vector {
	lo := (int(slot) % pointChunk) * t.dim
	hi := lo + t.dim
	return geom.Vector(t.chunks[int(slot)/pointChunk][lo:hi:hi])
}

// allocSlot copies p into a free (or fresh) slot and indexes it under id.
// Growing past the int32 slot capacity fails with narrow.ErrTooLarge
// before the arena wraps.
//
//ordlint:handle slot — the returned index addresses the packed point runs
func (t *Tree) allocSlot(id int, p geom.Vector) (int32, error) {
	var slot int32
	if k := len(t.freeSlots); k > 0 {
		slot = t.freeSlots[k-1]
		t.freeSlots = t.freeSlots[:k-1]
		t.idAt[slot] = id
	} else {
		var err error
		slot, err = narrow.Index32(len(t.idAt))
		if err != nil {
			return 0, fmt.Errorf("rtree: slot arena: %w", err)
		}
		if int(slot)/pointChunk == len(t.chunks) {
			t.chunks = append(t.chunks, make([]float64, pointChunk*t.dim))
		}
		t.idAt = append(t.idAt, id)
	}
	copy(t.slotVec(slot), p)
	t.slotOf[id] = slot
	return slot, nil
}

// dropSlot unindexes id and returns its slot to the free list.
func (t *Tree) dropSlot(id int, slot int32) {
	delete(t.slotOf, id)
	t.idAt[slot] = -1
	t.freeSlots = append(t.freeSlots, slot)
}

// newNode takes a node off the free list (or extends the arenas) and
// prepares it at the given level, allocating a rect segment for internal
// nodes.
//
//ordlint:bounded — the node arena is bounded by the record count, which allocSlot gates at 2^31
func (t *Tree) newNode(lvl int) NodeRef {
	var n NodeRef
	if k := len(t.freeNodes); k > 0 {
		n = NodeRef(t.freeNodes[k-1])
		t.freeNodes = t.freeNodes[:k-1]
		t.level[n] = int16(lvl)
		t.count[n] = 0
	} else {
		n = NodeRef(len(t.level))
		t.level = append(t.level, int16(lvl))
		t.count = append(t.count, 0)
		t.rseg = append(t.rseg, -1)
		t.ents = append(t.ents, t.zeroEnts...)
	}
	if lvl > 0 {
		t.rseg[n] = t.allocSeg()
	}
	return n
}

// freeNode recycles a node and its rect segment. The caller must already
// have detached it from its parent; child subtrees are not freed.
func (t *Tree) freeNode(n NodeRef) {
	if t.rseg[n] >= 0 {
		t.freeSegs = append(t.freeSegs, t.rseg[n])
		t.rseg[n] = -1
	}
	t.count[n] = 0
	t.freeNodes = append(t.freeNodes, int32(n))
}

// allocSeg takes a rect segment off the free list or extends the arena.
//
//ordlint:bounded — one segment per internal node: the count is gated transitively by the node arena
func (t *Tree) allocSeg() int32 {
	if k := len(t.freeSegs); k > 0 {
		s := t.freeSegs[k-1]
		t.freeSegs = t.freeSegs[:k-1]
		return s
	}
	s := int32(t.nsegs)
	t.nsegs++
	t.rects = append(t.rects, make([]float64, t.entCap*2*t.dim)...)
	return s
}

// insEntry is an entry in flight during insertion: a record slot (child ==
// NilNode, lo and hi aliasing its packed point) or a subtree with its MBR.
type insEntry struct {
	child  NodeRef
	slot   int32
	lo, hi []float64
}

// Insert adds a point under the given id. It returns an error when the id is
// already present or the dimensionality disagrees.
//
//ordlint:writer — allocates a slot and mutates the node arenas
func (t *Tree) Insert(id int, p geom.Vector) error {
	if len(p) != t.dim {
		return fmt.Errorf("rtree: point dim %d, tree dim %d", len(p), t.dim)
	}
	if _, dup := t.slotOf[id]; dup {
		return fmt.Errorf("rtree: duplicate id %d", id)
	}
	slot, err := t.allocSlot(id, p)
	if err != nil {
		return err
	}
	t.size++
	pv := t.slotVec(slot)
	split := t.insert(t.root, insEntry{child: NilNode, slot: slot, lo: pv, hi: pv}, 0)
	if split >= 0 {
		t.growRoot(split)
	}
	return nil
}

// growRoot replaces the root with a new internal node over {old root,
// split sibling}.
func (t *Tree) growRoot(split NodeRef) {
	old := t.root
	nr := t.newNode(int(t.level[old]) + 1)
	t.count[nr] = 2
	t.ents[t.eb(nr)] = int32(old)
	t.ents[t.eb(nr)+1] = int32(split)
	t.setEntryRectFromChild(nr, 0)
	t.setEntryRectFromChild(nr, 1)
	t.root = nr
}

// insert places e at the target level, returning a new sibling ref if n
// split (NilNode otherwise).
func (t *Tree) insert(n NodeRef, e insEntry, lvl int) NodeRef {
	if int(t.level[n]) == lvl {
		i := int(t.count[n])
		t.count[n]++
		t.writeEntry(n, i, e)
		if int(t.count[n]) > t.fanout {
			return t.splitNode(n)
		}
		return NilNode
	}
	// Choose subtree with least enlargement, ties by smallest area.
	best, bestEnl, bestArea := -1, 0.0, 0.0
	cnt := int(t.count[n])
	for i := 0; i < cnt; i++ {
		enl, area := t.entryEnlArea(n, i, e.lo, e.hi)
		// The equality arm is a heuristic tie-break (least area among equal
		// enlargements, typically both exactly zero for containment); either
		// outcome yields a correct, merely differently balanced tree.
		if best < 0 || enl < bestEnl || (enl == bestEnl && area < bestArea) { //ordlint:allow floatcmp — heuristic tie-break, both outcomes valid
			best, bestEnl, bestArea = i, enl, area
		}
	}
	child := NodeRef(t.ents[t.eb(n)+best]) //ordlint:allow stridebound — best is an entry index scanned under i < cnt above
	split := t.insert(child, e, lvl)
	t.setEntryRectFromChild(n, best)
	if split >= 0 {
		i := int(t.count[n])
		t.count[n]++
		t.ents[t.eb(n)+i] = int32(split)
		t.setEntryRectFromChild(n, i)
		if int(t.count[n]) > t.fanout {
			return t.splitNode(n)
		}
	}
	return NilNode
}

// writeEntry stores e as entry i of node n.
//
//ordlint:bounded — caller contract: i < entCap, the callers write within the split/overflow window
func (t *Tree) writeEntry(n NodeRef, i int, e insEntry) {
	if e.child >= 0 {
		t.ents[t.eb(n)+i] = int32(e.child)
		rb := t.rb(n, i)
		copy(t.rects[rb:rb+t.dim], e.lo)
		copy(t.rects[rb+t.dim:rb+2*t.dim], e.hi)
	} else {
		t.ents[t.eb(n)+i] = e.slot
	}
}

// entryEnlArea returns the area enlargement of entry i's MBR needed to
// include [lo,hi], plus the entry's current area — the insertion
// subtree-choice keys.
//
//ordlint:noalloc
func (t *Tree) entryEnlArea(n NodeRef, i int, lo, hi []float64) (enl, area float64) {
	rb := t.rb(n, i)
	d := t.dim
	area, ua := 1.0, 1.0
	for j := 0; j < d; j++ {
		l, h := t.rects[rb+j], t.rects[rb+d+j]
		area *= h - l
		ua *= max(h, hi[j]) - min(l, lo[j])
	}
	return ua - area, area
}

// setEntryRectFromChild recomputes entry i's MBR from its child node.
//
//ordlint:bounded — caller contract: i < Count(n), the entry was just written or scanned
func (t *Tree) setEntryRectFromChild(n NodeRef, i int) {
	rb := t.rb(n, i)
	child := NodeRef(t.ents[t.eb(n)+i])
	t.computeNodeRect(child, t.rects[rb:rb+t.dim], t.rects[rb+t.dim:rb+2*t.dim])
}

// computeNodeRect writes the MBR of node n into lo and hi (each dim
// floats), accumulating entries in slot order — the same fold the legacy
// implementation's nodeRect performed, bit for bit.
//
//ordlint:noalloc
func (t *Tree) computeNodeRect(n NodeRef, lo, hi []float64) {
	cnt := int(t.count[n])
	d := t.dim
	eb := t.eb(n)
	if t.level[n] == 0 {
		p := t.slotVec(t.ents[eb])
		copy(lo, p)
		copy(hi, p)
		for i := 1; i < cnt; i++ {
			q := t.slotVec(t.ents[eb+i])
			for j := 0; j < d; j++ {
				lo[j] = min(lo[j], q[j])
				hi[j] = max(hi[j], q[j])
			}
		}
		return
	}
	rb := t.rb(n, 0)
	copy(lo, t.rects[rb:rb+d])
	copy(hi, t.rects[rb+d:rb+2*d])
	for i := 1; i < cnt; i++ {
		rb = t.rb(n, i)
		for j := 0; j < d; j++ {
			lo[j] = min(lo[j], t.rects[rb+j])
			hi[j] = max(hi[j], t.rects[rb+d+j])
		}
	}
}

// splitNode performs a quadratic split of an overfull node in place,
// returning the new sibling. The seed choice, force-assignment and
// preference tie-breaks replicate the legacy implementation exactly.
func (t *Tree) splitNode(n NodeRef) NodeRef {
	cnt := int(t.count[n])
	d := t.dim
	stride := 2 * d
	leaf := t.level[n] == 0
	// Gather the entries into owned scratch: payload refs plus one packed
	// rect per entry (points doubled into degenerate rects at leaves).
	refs := t.sRefs[:0]
	rects := t.sRects[:0]
	for i := 0; i < cnt; i++ {
		v := t.ents[t.eb(n)+i]
		refs = append(refs, v)
		if leaf {
			p := t.slotVec(v)
			rects = append(rects, p...)
			rects = append(rects, p...)
		} else {
			rb := t.rb(n, i)
			rects = append(rects, t.rects[rb:rb+stride]...)
		}
	}
	t.sRefs, t.sRects = refs, rects

	// Pick seeds: the pair wasting the most area.
	s1, s2, worst := 0, 1, -1.0
	for i := 0; i < cnt; i++ {
		for j := i + 1; j < cnt; j++ {
			ua, ai, aj := 1.0, 1.0, 1.0
			for x := 0; x < d; x++ {
				li, hi := rects[i*stride+x], rects[i*stride+d+x]
				lj, hj := rects[j*stride+x], rects[j*stride+d+x]
				ua *= max(hi, hj) - min(li, lj)
				ai *= hi - li
				aj *= hj - lj
			}
			if waste := ua - ai - aj; waste > worst {
				s1, s2, worst = i, j, waste
			}
		}
	}
	g1 := append(t.g1[:0], s1)
	g2 := append(t.g2[:0], s2)
	copy(t.r1, rects[s1*stride:(s1+1)*stride])
	copy(t.r2, rects[s2*stride:(s2+1)*stride])
	rest := t.rest[:0]
	for i := 0; i < cnt; i++ {
		if i != s1 && i != s2 {
			rest = append(rest, i)
		}
	}
	for len(rest) > 0 {
		// Force assignment when one group must absorb all remaining entries
		// to reach minimum fill.
		if len(g1)+len(rest) <= t.minFill {
			g1 = append(g1, rest...)
			break
		}
		if len(g2)+len(rest) <= t.minFill {
			g2 = append(g2, rest...)
			break
		}
		// Pick the entry with the greatest preference difference.
		pick, pref := -1, -1.0
		for i, ei := range rest {
			d1 := enlargeOf(t.r1, rects[ei*stride:(ei+1)*stride], d)
			d2 := enlargeOf(t.r2, rects[ei*stride:(ei+1)*stride], d)
			if df := abs(d1 - d2); df > pref {
				pick, pref = i, df
			}
		}
		ei := rest[pick]
		rest = append(rest[:pick], rest[pick+1:]...)
		er := rects[ei*stride : (ei+1)*stride]
		if enlargeOf(t.r1, er, d) <= enlargeOf(t.r2, er, d) { //ordlint:allow floatcmp — heuristic tie-break, both outcomes valid
			g1 = append(g1, ei)
			extendRect(t.r1, er, d)
		} else {
			g2 = append(g2, ei)
			extendRect(t.r2, er, d)
		}
	}
	t.g1, t.g2, t.rest = g1, g2, rest[:0]

	s := t.newNode(int(t.level[n]))
	t.writeGroup(n, g1, refs, rects, leaf)
	t.writeGroup(s, g2, refs, rects, leaf)
	return s
}

// writeGroup overwrites node n's entries with the gathered entries listed
// in group.
func (t *Tree) writeGroup(n NodeRef, group []int, refs []int32, rects []float64, leaf bool) {
	stride := 2 * t.dim
	t.count[n] = int16(len(group))
	for i, gi := range group {
		t.ents[t.eb(n)+i] = refs[gi]
		if !leaf {
			rb := t.rb(n, i)
			copy(t.rects[rb:rb+stride], rects[gi*stride:(gi+1)*stride])
		}
	}
}

// enlargeOf returns the area enlargement of packed rect r (lo|hi, d each)
// needed to include e.
//
//ordlint:noalloc
func enlargeOf(r, e []float64, d int) float64 {
	area, ua := 1.0, 1.0
	for j := 0; j < d; j++ {
		area *= r[d+j] - r[j]
		ua *= max(r[d+j], e[d+j]) - min(r[j], e[j])
	}
	return ua - area
}

// extendRect grows packed rect r in place to cover e.
//
//ordlint:noalloc
func extendRect(r, e []float64, d int) {
	for j := 0; j < d; j++ {
		r[j] = min(r[j], e[j])
		r[d+j] = max(r[d+j], e[d+j])
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Delete removes the point stored under id. It returns false when the id is
// unknown. Underfull nodes are condensed by reinsertion, as in Guttman's
// original algorithm.
//
//ordlint:writer — detaches entries and recycles nodes and slots
func (t *Tree) Delete(id int) bool {
	slot, ok := t.slotOf[id]
	if !ok {
		return false
	}
	p := t.slotVec(slot)
	orphans := t.orphans[:0]
	removed := t.remove(t.root, id, p, &orphans)
	if !removed {
		t.orphans = orphans[:0]
		return false
	}
	t.dropSlot(id, slot)
	t.size--
	// Collapse a root with a single internal child.
	for t.level[t.root] > 0 && t.count[t.root] == 1 {
		old := t.root
		t.root = NodeRef(t.ents[t.eb(old)])
		t.freeNode(old)
	}
	if t.level[t.root] > 0 && t.count[t.root] == 0 {
		t.freeNode(t.root)
		t.root = t.newNode(0)
	}
	// Reinsert orphaned entries at their original level.
	for _, o := range orphans {
		t.reinsertEntry(o)
	}
	t.orphans = orphans[:0]
	return true
}

// remove descends along MBRs containing p, removes the leaf entry of id,
// and condenses underfull nodes into orphans on the way back up.
func (t *Tree) remove(n NodeRef, id int, p geom.Vector, orphans *[]orphan) bool {
	cnt := int(t.count[n])
	eb := t.eb(n)
	if t.level[n] == 0 {
		for i := 0; i < cnt; i++ {
			if t.idAt[t.ents[eb+i]] == id {
				t.removeEntryAt(n, i)
				return true
			}
		}
		return false
	}
	for i := 0; i < cnt; i++ {
		if !t.entryContains(n, i, p) {
			continue
		}
		child := NodeRef(t.ents[eb+i])
		if t.remove(child, id, p, orphans) {
			if int(t.count[child]) < t.minFill {
				// Condense: orphan the whole child for reinsertion.
				ccnt := int(t.count[child])
				ceb := t.eb(child)
				if t.level[child] == 0 {
					for j := 0; j < ccnt; j++ {
						*orphans = append(*orphans, orphan{child: NilNode, slot: t.ents[ceb+j]})
					}
				} else {
					for j := 0; j < ccnt; j++ {
						*orphans = append(*orphans, orphan{child: NodeRef(t.ents[ceb+j])})
					}
				}
				t.freeNode(child)
				t.removeEntryAt(n, i)
			} else {
				t.setEntryRectFromChild(n, i)
			}
			return true
		}
	}
	return false
}

// removeEntryAt deletes entry i of node n, shifting later entries (and
// their rects, at internal nodes) down one position.
//
//ordlint:bounded — caller contract: i < Count(n), i comes from a match scan over the node
func (t *Tree) removeEntryAt(n NodeRef, i int) {
	cnt := int(t.count[n])
	eb := t.eb(n)
	copy(t.ents[eb+i:eb+cnt-1], t.ents[eb+i+1:eb+cnt])
	if t.level[n] > 0 {
		stride := 2 * t.dim
		rb := t.rb(n, 0)
		copy(t.rects[rb+i*stride:rb+(cnt-1)*stride], t.rects[rb+(i+1)*stride:rb+cnt*stride])
	}
	t.count[n]--
}

// entryContains reports whether entry i's MBR contains p (borders
// included).
//
//ordlint:noalloc
func (t *Tree) entryContains(n NodeRef, i int, p []float64) bool {
	rb := t.rb(n, i)
	d := t.dim
	for j, x := range p {
		if x < t.rects[rb+j] || x > t.rects[rb+d+j] {
			return false
		}
	}
	return true
}

// reinsertEntry inserts an orphan back at its original level; if the tree
// shrank below that level, the orphan's children are grafted individually.
func (t *Tree) reinsertEntry(o orphan) {
	var e insEntry
	lvl := 0
	if o.child >= 0 {
		lvl = int(t.level[o.child]) + 1
		if int(t.level[t.root]) < lvl {
			// Degenerate: tree shrank below the orphan's level; graft children.
			c := o.child
			ccnt := int(t.count[c])
			ceb := t.eb(c)
			kids := make([]orphan, 0, ccnt)
			if t.level[c] == 0 {
				for j := 0; j < ccnt; j++ {
					kids = append(kids, orphan{child: NilNode, slot: t.ents[ceb+j]})
				}
			} else {
				for j := 0; j < ccnt; j++ {
					kids = append(kids, orphan{child: NodeRef(t.ents[ceb+j])})
				}
			}
			t.freeNode(c)
			for _, k := range kids {
				t.reinsertEntry(k)
			}
			return
		}
		// The stored parent rect of a subtree always equals its recomputed
		// MBR, so re-deriving it here reproduces the legacy entry bit for bit.
		t.computeNodeRect(o.child, t.nrLo, t.nrHi)
		e = insEntry{child: o.child, lo: t.nrLo, hi: t.nrHi}
	} else {
		pv := t.slotVec(o.slot)
		e = insEntry{child: NilNode, slot: o.slot, lo: pv, hi: pv}
	}
	split := t.insert(t.root, e, lvl)
	if split >= 0 {
		t.growRoot(split)
	}
}
