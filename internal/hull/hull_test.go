package hull

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"ordu/internal/geom"
)

func randPoints(rng *rand.Rand, n, d int) []geom.Vector {
	pts := make([]geom.Vector, n)
	for i := range pts {
		p := make(geom.Vector, d)
		for j := range p {
			p[j] = rng.Float64()
		}
		pts[i] = p
	}
	return pts
}

func seqIDs(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

func TestUpper2DKnown(t *testing.T) {
	// Square corners plus centre: upper hull is the two maximal corners
	// (0,1) and (1,0) plus (1,1)... here use a classic staircase.
	pts := []geom.Vector{
		{0.1, 0.9}, // 0: on upper hull
		{0.5, 0.7}, // 1: on upper hull (above segment 0-3? check: segment
		// from (0.1,0.9) to (0.9,0.1) at x=0.5 has y=0.5 < 0.7 -> yes)
		{0.3, 0.3}, // 2: interior
		{0.9, 0.1}, // 3: on upper hull
		{0.4, 0.4}, // 4: interior
	}
	u := ComputeUpper(seqIDs(len(pts)), pts)
	want := []int{0, 1, 3}
	if !equalIntSlices(u.MemberIDs, want) {
		t.Fatalf("members = %v, want %v", u.MemberIDs, want)
	}
	// Adjacency along the chain: 0-1, 1-3.
	if !equalIntSlices(u.Adj[1], []int{0, 3}) {
		t.Errorf("Adj[1] = %v", u.Adj[1])
	}
	if !equalIntSlices(u.Adj[0], []int{1}) || !equalIntSlices(u.Adj[3], []int{1}) {
		t.Errorf("chain ends adjacency wrong: %v %v", u.Adj[0], u.Adj[3])
	}
	if len(u.Facets) != 2 {
		t.Fatalf("facets = %v", u.Facets)
	}
}

func equalIntSlices(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestUpperWinnersAreMembers: for random preference vectors, the top-1
// record must be an upper-hull member, and at every facet norm all facet
// vertices must be tied at the maximum score.
func TestUpperStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, d := range []int{2, 3, 4, 5} {
		for trial := 0; trial < 3; trial++ {
			pts := randPoints(rng, 60+trial*50, d)
			u := ComputeUpper(seqIDs(len(pts)), pts)
			members := map[int]bool{}
			for _, id := range u.MemberIDs {
				members[id] = true
			}
			// Sampled winners must be members.
			for s := 0; s < 300; s++ {
				v := geom.RandSimplex(rng, d)
				best, bestScore := -1, math.Inf(-1)
				for i, p := range pts {
					if sc := p.Dot(v); sc > bestScore {
						best, bestScore = i, sc
					}
				}
				if !members[best] {
					t.Fatalf("d=%d: winner %d for %v not an upper-hull member", d, best, v)
				}
			}
			// Facet norms: all facet vertices tie at the max score.
			for fi, facet := range u.Facets {
				norm := u.Norms[fi]
				if !geom.OnSimplex(norm) {
					t.Fatalf("facet norm %v off simplex", norm)
				}
				scores := make([]float64, len(facet))
				maxAll := math.Inf(-1)
				for _, p := range pts {
					if sc := p.Dot(norm); sc > maxAll {
						maxAll = sc
					}
				}
				for i, id := range facet {
					scores[i] = pts[id].Dot(norm)
					if scores[i] < maxAll-1e-5 {
						t.Fatalf("d=%d facet %d: vertex %d score %g below max %g at norm",
							d, fi, id, scores[i], maxAll)
					}
				}
			}
			// Adjacency is symmetric.
			for id, adj := range u.Adj {
				for _, o := range adj {
					found := false
					for _, back := range u.Adj[o] {
						if back == id {
							found = true
							break
						}
					}
					if !found {
						t.Fatalf("adjacency not symmetric: %d->%d", id, o)
					}
				}
			}
		}
	}
}

// TestMembersWinSomewhere: every member must be the (weak) top scorer at
// the average of its facet norms.
func TestMembersWinSomewhere(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, d := range []int{2, 3, 4} {
		pts := randPoints(rng, 120, d)
		u := ComputeUpper(seqIDs(len(pts)), pts)
		for _, id := range u.MemberIDs {
			fs := u.FacetsOf[id]
			if len(fs) == 0 {
				continue // degenerate fallback member
			}
			v := make(geom.Vector, d)
			for _, fi := range fs {
				for j := range v {
					v[j] += u.Norms[fi][j] / float64(len(fs))
				}
			}
			my := pts[id].Dot(v)
			for i, p := range pts {
				if i != id && p.Dot(v) > my+1e-6 {
					t.Fatalf("d=%d: member %d loses to %d at its top-region centre", d, id, i)
				}
			}
		}
	}
}

func TestDegenerateSmallSets(t *testing.T) {
	// Fewer than d points in d=4: degenerate hull, maximal-point fallback.
	pts := []geom.Vector{
		{0.9, 0.1, 0.5, 0.5},
		{0.1, 0.9, 0.5, 0.5},
		{0.2, 0.2, 0.2, 0.2}, // dominated by neither, but weak everywhere
	}
	u := ComputeUpper(seqIDs(3), pts)
	if len(u.MemberIDs) == 0 {
		t.Fatal("degenerate set produced no members")
	}
	// The two strong points must be members.
	m := map[int]bool{}
	for _, id := range u.MemberIDs {
		m[id] = true
	}
	if !m[0] || !m[1] {
		t.Fatalf("members %v missing strong points", u.MemberIDs)
	}
}

func TestSinglePoint(t *testing.T) {
	u := ComputeUpper([]int{7}, []geom.Vector{{0.5, 0.5}})
	if !equalIntSlices(u.MemberIDs, []int{7}) {
		t.Fatalf("members = %v", u.MemberIDs)
	}
	if !u.IsMember(7) || u.IsMember(8) {
		t.Error("IsMember wrong")
	}
}

func TestEmptyInput(t *testing.T) {
	u := ComputeUpper(nil, nil)
	if len(u.MemberIDs) != 0 {
		t.Fatal("empty input must give empty hull")
	}
}

func TestDominatedPointNeverMember(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 10; trial++ {
		d := 2 + rng.Intn(4)
		pts := randPoints(rng, 50, d)
		// Add a point strictly dominated by pts[0].
		weak := pts[0].Clone()
		for j := range weak {
			weak[j] -= 0.05
		}
		pts = append(pts, weak)
		u := ComputeUpper(seqIDs(len(pts)), pts)
		if u.IsMember(len(pts) - 1) {
			t.Fatalf("d=%d: dominated point on upper hull", d)
		}
	}
}

func TestLayersPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for _, d := range []int{2, 3, 4} {
		pts := randPoints(rng, 150, d)
		ls := NewLayers(seqIDs(len(pts)), pts)
		seen := map[int]int{}
		for t1 := 0; ; t1++ {
			u := ls.Layer(t1)
			if u == nil {
				break
			}
			if len(u.MemberIDs) == 0 {
				t.Fatal("empty non-nil layer")
			}
			for _, id := range u.MemberIDs {
				if prev, dup := seen[id]; dup {
					t.Fatalf("id %d on layers %d and %d", id, prev, t1)
				}
				seen[id] = t1
			}
		}
		if len(seen) != len(pts) {
			t.Fatalf("d=%d: layers cover %d of %d records", d, len(seen), len(pts))
		}
		// LayerOf agrees.
		for id, li := range seen {
			got, ok := ls.LayerOf(id)
			if !ok || got != li {
				t.Fatalf("LayerOf(%d) = %d,%v want %d", id, got, ok, li)
			}
		}
		if _, ok := ls.LayerOf(99999); ok {
			t.Error("unknown id resolved")
		}
	}
}

// TestLayersTopKCoverage: the union of the first k layers must contain the
// top-k records for any preference vector (each layer contributes at least
// one record ranked above anything in deeper layers).
func TestLayersTopKCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	d := 3
	pts := randPoints(rng, 200, d)
	ls := NewLayers(seqIDs(len(pts)), pts)
	k := 4
	inFirstK := map[int]bool{}
	for t1 := 0; t1 < k; t1++ {
		u := ls.Layer(t1)
		if u == nil {
			break
		}
		for _, id := range u.MemberIDs {
			inFirstK[id] = true
		}
	}
	for s := 0; s < 200; s++ {
		v := geom.RandSimplex(rng, d)
		type sc struct {
			id int
			s  float64
		}
		all := make([]sc, len(pts))
		for i, p := range pts {
			all[i] = sc{i, p.Dot(v)}
		}
		sort.Slice(all, func(i, j int) bool { return all[i].s > all[j].s })
		for r := 0; r < k; r++ {
			if !inFirstK[all[r].id] {
				t.Fatalf("top-%d record %d for %v not in first %d layers", r+1, all[r].id, v, k)
			}
		}
	}
}

func TestBuilderIncrementalMatchesOneShot(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	d := 3
	pts := randPoints(rng, 80, d)
	b := NewBuilder(d)
	for i, p := range pts {
		b.Add(i, p)
	}
	inc := b.Upper()
	oneShot := ComputeUpper(seqIDs(len(pts)), pts)
	if !equalIntSlices(inc.MemberIDs, oneShot.MemberIDs) {
		t.Fatalf("incremental members %v != one-shot %v", inc.MemberIDs, oneShot.MemberIDs)
	}
}

func TestVertexCountMonotone(t *testing.T) {
	d := 2
	b := NewBuilder(d)
	// Points on a concave-down curve: all on the upper hull.
	for i := 0; i < 20; i++ {
		x := float64(i) / 19
		y := math.Sqrt(1 - x*x)
		b.Add(i, geom.Vector{x, y})
		if got := b.VertexCount(); got != i+1 {
			t.Fatalf("after %d circle points, VertexCount = %d", i+1, got)
		}
	}
}

func TestNewBuilderPanicsOnLowDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for d<2")
		}
	}()
	NewBuilder(1)
}
