// Package hull is the library's computational-geometry core, replacing the
// role Qhull [9] plays in the paper's implementation. It computes upper
// hulls of d-dimensional point sets — the part of the convex hull whose
// facets have non-negative outward normals, i.e. the records that can be
// top-1 for some preference vector (Section 5.1) — together with the facet
// structure ORU consumes: facet norms (points in the preference domain),
// per-record facet sets F(r), and adjacency sets A(r).
//
// The algorithm is the incremental beneath-beyond construction: a full
// convex hull is grown point by point, starting from a synthetic simplex of
// d+1 sentinel points placed strictly below the data (every real point
// strictly dominates every sentinel, so sentinels can never lie on an upper
// facet, while guaranteeing full dimensionality for arbitrarily small or
// degenerate inputs). Points are deterministically jittered by a hash of
// their coordinates to enforce general position, which the paper assumes
// throughout; all outputs (adjacency, norms) are reported for the original
// coordinates.
package hull

import (
	"fmt"
	"math"
	"sort"

	"ordu/internal/geom"
	"ordu/internal/linalg"
	"ordu/internal/qp"
)

// Upper is the upper hull of a point set with its facet structure.
type Upper struct {
	// MemberIDs lists the ids of records on the upper hull, i.e. the
	// records that are top-1 for at least one preference vector.
	MemberIDs []int
	// Facets lists the upper facets as sets of member ids (d per facet in
	// general position).
	Facets [][]int
	// Norms holds, per facet, the facet's norm: the outward normal scaled
	// to unit coordinate sum, a point in the preference domain.
	Norms []geom.Vector
	// Adj maps each member id to the ids adjacent to it (sharing an upper
	// facet): the set A(r) of the paper.
	Adj map[int][]int
	// FacetsOf maps each member id to the indices (into Facets) of the
	// upper facets it defines: the set F(r).
	FacetsOf map[int][]int
}

// IsMember reports whether id lies on the upper hull.
func (u *Upper) IsMember(id int) bool {
	_, ok := u.Adj[id]
	return ok
}

// facet is one simplicial facet of the full hull under construction.
type facet struct {
	verts     []int // d internal point indices, sorted
	normal    []float64
	offset    float64
	neighbors []*facet // neighbors[i] shares all verts except verts[i]
	dead      bool
	visitTag  int
}

// Builder incrementally constructs a convex hull and exposes upper-hull
// snapshots. It is the engine behind both one-shot ComputeUpper calls and
// the incremental hull maintenance of ORU's rho-bar estimation
// (Section 5.3). A Builder reuses its insertion scratch (visible/horizon
// lists, ridge-matching map, facet structs from the free list) across Add
// calls; it is not goroutine-safe.
type Builder struct {
	dim     int
	pts     [][]float64 // jittered working coordinates; sentinels first
	ids     []int       // external id per point; -1 for sentinels
	facets  []*facet
	tag     int
	started bool
	// interior is a point strictly inside the initial simplex, used to
	// orient facet normals outward.
	interior []float64

	// Insertion scratch, reused across Add calls.
	lin        linalg.Workspace
	visible    []*facet
	horizon    []ridge
	newFacets  []*facet
	pending    map[string]facetSlot
	pendingA   map[ridgeKey]facetSlot // allocation-free keys for d <= 9
	pendingP   map[uint64]facetSlot   // packed keys for d <= 6 (fast64 map path)
	keyBuf     []byte
	fpts       [][]float64
	ridgeVerts []int // backing storage for the current horizon's ridge verts
	vertBuf    []int
	freeFacets []*facet

	// Point arena: Add copies incoming coordinates into fixed-size chunks
	// that Reset rewinds instead of freeing, so a pooled builder stops
	// allocating per point once warm.
	chunks   [][]float64
	chunkI   int
	chunkOff int

	// Membership-test scratch (canTop), reused across Upper calls.
	qpws     qp.Workspace
	qppr     qp.Problem
	diffFlat []float64

	// MemberCount/UpperAdjInto scratch: per-internal-index generation
	// stamps, the packed co-facet pair list, and the member ordering buffer.
	gen         int
	nbrGen      int
	fastStamp   []int
	hullStamp   []int
	nbrStamp    []int
	nbrBuf      []int
	memberStamp []int
	pairBuf     []int64
	pairBuf2    []int64
	pairCnt     []int32
	extBuf      []int
}

// ridgeKey is a sub-ridge (up to 8 sorted vertex indices, -1 padded) as a
// comparable map key: hashing it allocates nothing, unlike a string key.
type ridgeKey [8]int32

// ridge is one horizon ridge during insertion: d-1 vertices (sorted),
// stored as a range into the builder's flat ridgeVerts buffer (offsets stay
// valid across buffer growth), shared with a non-visible facet.
type ridge struct {
	lo, hi  int
	outside *facet
}

// facetSlot identifies a neighbor slot of a facet awaiting its partner
// while wiring new facets along sub-ridges.
type facetSlot struct {
	f *facet
	i int
}

// NewBuilder returns a hull builder for d-dimensional points, d >= 2.
func NewBuilder(d int) *Builder {
	if d < 2 {
		panic(fmt.Sprintf("hull: dimension %d < 2", d)) //ordlint:allow nopanic — documented precondition; caller bug, not data-dependent
	}
	return &Builder{dim: d}
}

const (
	jitterScale = 1e-9
	visEps      = 1e-12
	upperTol    = 1e-7
)

// Reset returns the builder to its empty state for dimension d, retaining
// the facet free list, the point arena and every scratch buffer. A pooled
// builder Reset between hulls constructs each one without re-paying the
// allocation cost of a fresh Builder — the pattern ORU's partition loop
// relies on. Outputs of earlier Upper calls remain valid (they do not alias
// builder state); points previously Added are forgotten.
func (b *Builder) Reset(d int) {
	if d < 2 {
		panic(fmt.Sprintf("hull: dimension %d < 2", d)) //ordlint:allow nopanic — documented precondition; caller bug, not data-dependent
	}
	// Every facet still on the list is unreachable after the reset: recycle
	// alive and not-yet-compacted dead ones alike. (Dead facets referenced
	// by alive neighbors were dropped from the list at compaction time and
	// stay out of the pool.)
	for _, f := range b.facets {
		b.freeFacet(f)
	}
	b.facets = b.facets[:0]
	b.dim = d
	b.pts = b.pts[:0]
	b.ids = b.ids[:0]
	b.started = false
	b.chunkI = 0
	b.chunkOff = 0
}

// allocPoint carves one d-vector from the point arena. The returned slice
// aliases the builder's chunk arena: it stays valid (and keeps its contents)
// until the builder is garbage-collected — Reset recycles the arena cursor
// but never frees or overwrites chunks mid-build, so points handed out
// during one build remain stable for that build's lifetime.
//
//ordlint:noalloc
func (b *Builder) allocPoint() []float64 {
	const chunkFloats = 2048
	// Advance past an exhausted chunk (every chunk holds chunkFloats
	// floats, so the next recycled chunk always fits a point).
	if b.chunkI < len(b.chunks) && b.chunkOff+b.dim > len(b.chunks[b.chunkI]) && b.chunkI+1 < len(b.chunks) {
		b.chunkI++
		b.chunkOff = 0
	}
	if b.chunkI >= len(b.chunks) || b.chunkOff+b.dim > len(b.chunks[b.chunkI]) {
		sz := chunkFloats
		if b.dim > sz {
			sz = b.dim
		}
		b.chunks = append(b.chunks, make([]float64, sz)) //ordlint:allow noalloc — arena growth: amortised over the chunk's point count
		b.chunkI = len(b.chunks) - 1
		b.chunkOff = 0
	}
	c := b.chunks[b.chunkI]
	w := c[b.chunkOff : b.chunkOff+b.dim : b.chunkOff+b.dim]
	b.chunkOff += b.dim
	return w
}

// jitter deterministically perturbs coordinate j of a point based on the
// point's coordinate bits, enforcing general position while keeping results
// reproducible across runs and across subsets.
func jitter(p geom.Vector, j int) float64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, x := range p {
		h ^= math.Float64bits(x)
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
	}
	h ^= uint64(j+1) * 0x94d049bb133111eb
	h ^= h >> 31
	h *= 0xd6e8feb86659fd93
	h ^= h >> 32
	// Map to (-1, 1).
	return (float64(h%(1<<52))/float64(1<<52) - 0.5) * 2
}

// Add inserts one point with its external id. Points may arrive in any
// order; duplicates (by jittered coordinates) simply land inside the hull.
func (b *Builder) Add(id int, p geom.Vector) {
	if len(p) != b.dim {
		panic(fmt.Sprintf("hull: point dim %d, builder dim %d", len(p), b.dim)) //ordlint:allow nopanic — documented precondition; caller bug, not data-dependent
	}
	w := b.allocPoint()
	for j := range w {
		w[j] = p[j] + jitterScale*jitter(p, j)
	}
	if !b.started {
		b.bootstrap(w)
	}
	b.ids = append(b.ids, id)
	b.pts = append(b.pts, w)
	b.insert(len(b.pts) - 1)
}

// bootstrap creates the sentinel simplex strictly below the first point.
func (b *Builder) bootstrap(first []float64) {
	d := b.dim
	span := 4.0
	for _, x := range first {
		if a := math.Abs(x); a > span/4 {
			span = 4 * a
		}
	}
	base := b.allocPoint()
	for j := range base {
		base[j] = first[j] - span
	}
	// Sentinels: base, and base - span*e_i for i = 0..d-1.
	b.pts = append(b.pts[:0], base)
	b.ids = append(b.ids[:0], -1)
	for i := 0; i < d; i++ {
		s := b.allocPoint()
		copy(s, base)
		s[i] -= span
		// Tiny asymmetry to keep the sentinel simplex in general position
		// with respect to jittered data points.
		s[(i+1)%d] -= span * 0.01 * float64(i+1)
		b.pts = append(b.pts, s)
		b.ids = append(b.ids, -1)
	}
	if cap(b.interior) < d {
		b.interior = make([]float64, d)
	}
	b.interior = b.interior[:d]
	for j := range b.interior {
		b.interior[j] = 0
	}
	for _, p := range b.pts {
		for j := range p {
			b.interior[j] += p[j] / float64(d+1)
		}
	}
	// Initial facets: all d-subsets of the d+1 sentinels.
	fs := b.facets[:0]
	for skip := 0; skip <= d; skip++ {
		verts := b.vertBuf[:0]
		for v := 0; v <= d; v++ {
			if v != skip {
				verts = append(verts, v)
			}
		}
		b.vertBuf = verts[:0]
		f, err := b.newFacet(verts)
		if err != nil {
			panic("hull: degenerate sentinel simplex: " + err.Error()) //ordlint:allow nopanic — unreachable invariant: sentinels are constructed in general position
		}
		fs = append(fs, f)
	}
	// Wire neighbors: facet skipping i and facet skipping j share all
	// vertices except i and j.
	for i, fi := range fs {
		for k, v := range fi.verts {
			// Neighbor opposite v: the facet that skips v.
			fi.neighbors[k] = fs[v]
			_ = i
		}
	}
	b.facets = fs
	b.started = true
}

// allocFacet returns a facet from the free list (buffers retained, fields
// reset) or a fresh one.
//
//ordlint:noalloc
func (b *Builder) allocFacet() *facet {
	if n := len(b.freeFacets); n > 0 {
		f := b.freeFacets[n-1]
		b.freeFacets = b.freeFacets[:n-1]
		f.dead = false
		f.visitTag = 0
		return f
	}
	return &facet{} //ordlint:allow noalloc — free-list miss: the pool grows by one here, by design
}

// freeFacet recycles a facet. The caller must guarantee nothing still
// points to it (see the compaction pass in insert).
//
//ordlint:noalloc
func (b *Builder) freeFacet(f *facet) {
	for i := range f.neighbors {
		f.neighbors[i] = nil
	}
	f.dead = true
	b.freeFacets = append(b.freeFacets, f)
}

// newFacet builds a facet through the given vertex indices, oriented away
// from the interior point. The facet struct and its buffers come from the
// builder's free list when available.
//
//ordlint:noalloc
func (b *Builder) newFacet(verts []int) (*facet, error) {
	d := b.dim
	f := b.allocFacet()
	f.verts = append(f.verts[:0], verts...)
	sort.Ints(f.verts)
	if cap(b.fpts) < d {
		b.fpts = make([][]float64, d)
	}
	pts := b.fpts[:d]
	for i, v := range f.verts {
		pts[i] = b.pts[v]
	}
	if cap(f.normal) < d {
		f.normal = make([]float64, d)
	}
	n := f.normal[:d]
	f.normal = n
	c, err := b.lin.HyperplaneThrough(pts, n)
	if err != nil {
		b.freeFacet(f)
		return nil, err
	}
	// Orient outward.
	s := -c
	for j := 0; j < d; j++ {
		s += n[j] * b.interior[j]
	}
	if s > 0 {
		for j := range n {
			n[j] = -n[j]
		}
		c = -c
	}
	// Normalise for stable eps comparisons.
	mag := 0.0
	for _, x := range n {
		mag += x * x
	}
	mag = math.Sqrt(mag)
	if mag < 1e-300 {
		b.freeFacet(f)
		return nil, linalg.ErrSingular
	}
	for j := range n {
		n[j] /= mag
	}
	f.offset = c / mag
	if cap(f.neighbors) < d {
		f.neighbors = make([]*facet, d)
	}
	f.neighbors = f.neighbors[:d]
	for i := range f.neighbors {
		f.neighbors[i] = nil
	}
	return f, nil
}

// insert adds internal point index pi to the hull.
func (b *Builder) insert(pi int) {
	p := b.pts[pi]
	// Collect visible facets by full scan (robust and fast enough at the
	// candidate-set sizes ORU operates on).
	visible := b.visible[:0]
	b.tag++
	for _, f := range b.facets {
		if f.dead {
			continue
		}
		s := -f.offset
		for j := range p {
			s += f.normal[j] * p[j]
		}
		if s > visEps {
			f.visitTag = b.tag
			visible = append(visible, f)
		}
	}
	b.visible = visible
	if len(visible) == 0 {
		return // interior point
	}
	// Horizon ridges: (visible facet, vertex-opposite-index) pairs whose
	// neighbor is not visible.
	horizon := b.horizon[:0]
	rv := b.ridgeVerts[:0]
	for _, f := range visible {
		for i, nb := range f.neighbors {
			if nb == nil || nb.visitTag == b.tag {
				continue
			}
			lo := len(rv)
			for k, v := range f.verts {
				if k != i {
					rv = append(rv, v)
				}
			}
			horizon = append(horizon, ridge{lo: lo, hi: len(rv), outside: nb})
		}
	}
	b.horizon = horizon
	b.ridgeVerts = rv
	// Build new facets: ridge + p.
	newFacets := b.newFacets[:0]
	// pending maps a sorted sub-ridge (d-1 vertices including p) to the
	// facet+slot waiting for its partner. Every pending ridge contains p, so
	// p is omitted from the key: up to d = 6 the remaining <= 4 sorted
	// vertex indices pack into one uint64 (p is the newest and hence highest
	// index, so all indices fit 16 bits whenever p does), taking the
	// runtime's fast 64-bit map path. Up to d = 9 the d-1 ridge vertices
	// fit a fixed int32 array key, which hashes without the string
	// conversion's per-insertion copy; larger dimensions fall back to the
	// string-keyed map.
	packKeys := b.dim <= 6 && pi < (1<<16)
	arrayKeys := !packKeys && b.dim <= 9
	if packKeys {
		if b.pendingP == nil {
			b.pendingP = make(map[uint64]facetSlot)
		}
		clear(b.pendingP)
	} else if arrayKeys {
		if b.pendingA == nil {
			b.pendingA = make(map[ridgeKey]facetSlot)
		}
		clear(b.pendingA)
	} else {
		if b.pending == nil {
			b.pending = make(map[string]facetSlot)
		}
		clear(b.pending)
	}
	pending := b.pending
	pendingA := b.pendingA
	pendingP := b.pendingP
	keyOf := b.keyOf
	for _, r := range horizon {
		verts := append(append(b.vertBuf[:0], rv[r.lo:r.hi]...), pi)
		b.vertBuf = verts[:0]
		nf, err := b.newFacet(verts)
		if err != nil {
			// Degenerate ridge (jitter should prevent this); skip the facet.
			continue
		}
		// Wire across the horizon: nf's slot opposite p links to r.outside.
		for i, v := range nf.verts {
			if v == pi {
				nf.neighbors[i] = r.outside
			}
		}
		// r.outside's slot that pointed to a visible facet now points to nf.
		for i, nb := range r.outside.neighbors {
			if nb != nil && nb.visitTag == b.tag {
				// Check the shared ridge matches r's vertices.
				if matchesExcept(r.outside.verts, i, rv[r.lo:r.hi]) {
					r.outside.neighbors[i] = nf
					break
				}
			}
		}
		// Wire among new facets via sub-ridges containing p.
		for i, v := range nf.verts {
			if v == pi {
				continue
			}
			if packKeys {
				key := packedRidgeKeyOf(nf.verts, i, pi)
				if other, ok := pendingP[key]; ok {
					nf.neighbors[i] = other.f
					other.f.neighbors[other.i] = nf
					delete(pendingP, key)
				} else {
					pendingP[key] = facetSlot{f: nf, i: i}
				}
				continue
			}
			if arrayKeys {
				key := ridgeKeyOf(nf.verts, i)
				if other, ok := pendingA[key]; ok {
					nf.neighbors[i] = other.f
					other.f.neighbors[other.i] = nf
					delete(pendingA, key)
				} else {
					pendingA[key] = facetSlot{f: nf, i: i}
				}
				continue
			}
			key := keyOf(nf.verts, i)
			if other, ok := pending[key]; ok {
				nf.neighbors[i] = other.f
				other.f.neighbors[other.i] = nf
				delete(pending, key)
			} else {
				pending[key] = facetSlot{f: nf, i: i}
			}
		}
		newFacets = append(newFacets, nf)
	}
	for _, f := range visible {
		f.dead = true
	}
	// Compact the facet list occasionally to keep scans cheap, returning
	// dead facets that nothing references to the free list. A degenerate
	// ridge (skipped above) can leave an alive facet pointing at a dead
	// one, so dead facets referenced by alive neighbors are merely dropped
	// from the list, never recycled.
	b.facets = append(b.facets, newFacets...)
	b.newFacets = newFacets[:0]
	if len(b.facets) > 64 {
		alive := 0
		for _, f := range b.facets {
			if !f.dead {
				alive++
			}
		}
		if alive*2 < len(b.facets) {
			b.tag++
			for _, f := range b.facets {
				if f.dead {
					continue
				}
				for _, nb := range f.neighbors {
					if nb != nil && nb.dead {
						nb.visitTag = b.tag // referenced: keep out of the free list
					}
				}
			}
			kept := make([]*facet, 0, alive)
			for _, f := range b.facets {
				if !f.dead {
					kept = append(kept, f)
				} else if f.visitTag != b.tag {
					b.freeFacet(f)
				}
			}
			b.facets = kept
		}
	}
}

// keyOf builds the map key for the sub-ridge of verts that skips index
// skip, reusing the builder's byte buffer (the map key string itself is
// necessarily allocated on first insertion).
//
//ordlint:noalloc
func (b *Builder) keyOf(verts []int, skip int) string {
	buf := b.keyBuf[:0]
	for k, v := range verts {
		if k == skip {
			continue
		}
		buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	b.keyBuf = buf
	return string(buf) //ordlint:allow noalloc — map-key strings must be immutable; the copy is the point
}

// ridgeKeyOf packs the sub-ridge of verts that skips index skip into a
// fixed array key (-1 padded). Callers guarantee len(verts)-1 <= 8.
//
//ordlint:noalloc
func ridgeKeyOf(verts []int, skip int) ridgeKey {
	key := ridgeKey{-1, -1, -1, -1, -1, -1, -1, -1}
	w := 0
	for k, v := range verts {
		if k == skip {
			continue
		}
		key[w] = int32(v)
		w++
	}
	return key
}

// packedRidgeKeyOf packs the sub-ridge of verts that skips index skip and
// omits vertex pi (present in every pending ridge) into one uint64, 16 bits
// per index. Every pending key of one insert batch has exactly d-2 entries
// (d sorted verts minus the skipped one minus pi), so equal keys mean equal
// ridges with no length ambiguity. Callers guarantee len(verts) <= 6 and
// every index < 1<<16.
//
//ordlint:noalloc
func packedRidgeKeyOf(verts []int, skip int, pi int) uint64 {
	key := uint64(0)
	for k, v := range verts {
		if k == skip || v == pi {
			continue
		}
		key = key<<16 | uint64(v)
	}
	return key
}

// matchesExcept reports whether verts with index skip removed equals want
// (both sorted).
func matchesExcept(verts []int, skip int, want []int) bool {
	if len(verts)-1 != len(want) {
		return false
	}
	wi := 0
	for k, v := range verts {
		if k == skip {
			continue
		}
		if v != want[wi] {
			return false
		}
		wi++
	}
	return true
}

// Upper extracts the current upper hull.
//
// Membership uses the exact local criterion rather than facet-normal signs:
// a hull vertex r is top-1 for some preference vector iff there is a v on
// the simplex with (r - q).v >= 0 for every hull vertex q adjacent to r in
// the full facet graph (beating all neighbours of a convex-hull vertex
// means beating everything, for any linear objective). This correctly
// captures records that win only near the boundary of the preference
// domain, whose incident facets all have mixed-sign normals. Adjacency is
// the full-hull co-facet relation restricted to members, which is exactly
// the constraint set defining the top-region C(r): any record tying r at
// the top for some v shares a hull facet with r.
func (b *Builder) Upper() *Upper {
	u := &Upper{
		Adj:      make(map[int][]int),
		FacetsOf: make(map[int][]int),
	}
	if !b.started {
		return u
	}
	// Full-hull adjacency among real vertices (sentinels excluded).
	fullAdj := make(map[int]map[int]bool)
	touch := func(id int) {
		if _, ok := fullAdj[id]; !ok {
			fullAdj[id] = make(map[int]bool)
		}
	}
	for _, f := range b.facets {
		if f.dead {
			continue
		}
		for _, v := range f.verts {
			if b.ids[v] < 0 {
				continue
			}
			touch(b.ids[v])
			for _, o := range f.verts {
				if o != v && b.ids[o] >= 0 {
					fullAdj[b.ids[v]][b.ids[o]] = true
				}
			}
		}
	}
	// Point lookup by external id (the builder may hold stale duplicates
	// of an id only if the caller added one; ids are unique by contract).
	ptOf := make(map[int]geom.Vector, len(fullAdj))
	for i, id := range b.ids {
		if id >= 0 {
			ptOf[id] = b.pts[i]
		}
	}
	// Fast path: a vertex incident to a facet whose outward normal is
	// (strictly) non-negative is certainly top-1 at that facet's norm; the
	// QP membership test is needed only for vertices whose facets all have
	// mixed-sign normals (winners confined to the simplex boundary).
	fastMember := make(map[int]bool)
	for _, f := range b.facets {
		if f.dead {
			continue
		}
		nonneg := true
		for _, x := range f.normal {
			if x < -1e-12 {
				nonneg = false
				break
			}
		}
		if !nonneg {
			continue
		}
		for _, v := range f.verts {
			if b.ids[v] >= 0 {
				fastMember[b.ids[v]] = true
			}
		}
	}
	members := make(map[int]bool)
	for id, adj := range fullAdj {
		if fastMember[id] || b.canTop(ptOf[id], adj, ptOf) {
			members[id] = true
		}
	}
	for id := range members {
		adj := make([]int, 0, len(fullAdj[id]))
		for o := range fullAdj[id] {
			if members[o] {
				adj = append(adj, o)
			}
		}
		sort.Ints(adj)
		u.Adj[id] = adj
		u.MemberIDs = append(u.MemberIDs, id)
	}
	sort.Ints(u.MemberIDs)
	// Informational facet structure: real-vertex facets with non-negative
	// normals (the facets whose norms are interior preference points).
	for _, f := range b.facets {
		if f.dead || !b.isUpper(f) {
			continue
		}
		fi := len(u.Facets)
		idv := make([]int, len(f.verts))
		for i, v := range f.verts {
			idv[i] = b.ids[v]
		}
		u.Facets = append(u.Facets, idv)
		u.Norms = append(u.Norms, normOf(f))
		for _, id := range idv {
			u.FacetsOf[id] = append(u.FacetsOf[id], fi)
		}
	}
	return u
}

// canTop reports whether some preference vector makes p score at least as
// high as all points in adj (and hence as the whole hull). The constraint
// system is assembled from the cached per-dimension simplex rows plus the
// builder's flat difference buffer.
//
//ordlint:noalloc
func (b *Builder) canTop(p geom.Vector, adj map[int]bool, ptOf map[int]geom.Vector) bool {
	d := b.dim
	if len(adj) == 0 {
		return true
	}
	pr := &b.qppr
	pr.P = geom.SimplexOnes(d) // any target; only feasibility matters
	pr.EqA = append(pr.EqA[:0], geom.SimplexOnes(d))
	pr.EqB = append(pr.EqB[:0], 1)
	pr.InA = append(pr.InA[:0], geom.SimplexAxes(d)...)
	pr.InB = append(pr.InB[:0], geom.SimplexZeros(d)...)
	need := len(adj) * d
	if cap(b.diffFlat) < need {
		b.diffFlat = make([]float64, need)
	}
	flat := b.diffFlat[:0]
	for o := range adj {
		q := ptOf[o]
		lo := len(flat)
		for j := 0; j < d; j++ {
			flat = append(flat, p[j]-q[j])
		}
		pr.InA = append(pr.InA, flat[lo:len(flat):len(flat)])
		pr.InB = append(pr.InB, 0)
	}
	b.diffFlat = flat[:0]
	return b.qpws.Feasible(pr)
}

// isUpper reports whether f is an upper facet: all-real vertices and a
// non-negative normal within tolerance.
func (b *Builder) isUpper(f *facet) bool {
	for _, v := range f.verts {
		if b.ids[v] < 0 {
			return false
		}
	}
	for _, x := range f.normal {
		if x < -upperTol {
			return false
		}
	}
	return true
}

// normOf returns the facet norm: the outward normal clamped to the
// non-negative orthant and scaled to unit sum (a preference-domain point).
func normOf(f *facet) geom.Vector {
	n := make(geom.Vector, len(f.normal))
	s := 0.0
	for j, x := range f.normal {
		if x < 0 {
			x = 0
		}
		n[j] = x
		s += x
	}
	if s <= 0 {
		// Cannot happen for a genuine upper facet; return barycentre to
		// stay well-defined.
		for j := range n {
			n[j] = 1 / float64(len(n))
		}
		return n
	}
	for j := range n {
		n[j] /= s
	}
	return n
}

// VertexCount returns the number of distinct real points currently on the
// upper hull. ORU's rho-bar estimation keeps feeding the incremental
// rho-skyline until this count reaches m (Section 5.3).
func (b *Builder) VertexCount() int {
	return b.MemberCount()
}

// MemberCount counts the real points currently on the upper hull without
// materialising the full Upper structure: one facet scan stamps the certain
// members (vertices of a facet with non-negative normal), and only the rare
// boundary-confined vertices run the QP membership test, with adjacency
// gathered on demand. Repeated calls reuse the builder's stamp buffers —
// this is the polling primitive of the rho-bar estimation loop.
func (b *Builder) MemberCount() int {
	if !b.started {
		return 0
	}
	n := len(b.pts)
	if cap(b.fastStamp) < n {
		b.fastStamp = make([]int, 2*n)
		b.hullStamp = make([]int, 2*n)
		b.nbrStamp = make([]int, 2*n)
	}
	fast := b.fastStamp[:n]
	hullv := b.hullStamp[:n]
	b.gen++
	gen := b.gen
	for _, f := range b.facets {
		if f.dead {
			continue
		}
		nonneg := true
		for _, x := range f.normal {
			if x < -1e-12 {
				nonneg = false
				break
			}
		}
		for _, v := range f.verts {
			if b.ids[v] < 0 {
				continue
			}
			hullv[v] = gen
			if nonneg {
				fast[v] = gen
			}
		}
	}
	count := 0
	for v := 0; v < n; v++ {
		if hullv[v] != gen {
			continue
		}
		if fast[v] == gen {
			count++
			continue
		}
		// Boundary candidate: gather its co-facet neighbours (deduped by a
		// per-candidate stamp) and run the exact feasibility test.
		nbrs := b.nbrBuf[:0]
		nstamp := b.nbrStamp[:n]
		b.nbrGen++
		for _, f := range b.facets {
			if f.dead {
				continue
			}
			onFacet := false
			for _, fv := range f.verts {
				if fv == v {
					onFacet = true
					break
				}
			}
			if !onFacet {
				continue
			}
			for _, o := range f.verts {
				if o != v && b.ids[o] >= 0 && nstamp[o] != b.nbrGen {
					nstamp[o] = b.nbrGen
					nbrs = append(nbrs, o)
				}
			}
		}
		b.nbrBuf = nbrs[:0]
		if b.canTopIdx(v, nbrs) {
			count++
		}
	}
	return count
}

// AdjSnapshot is the members+adjacency part of an upper hull in compressed
// row form, built by UpperAdjInto into caller-reusable buffers. It carries
// exactly what ORU's partition step consumes (MemberIDs and per-member
// adjacency) without the full Upper's per-call maps.
type AdjSnapshot struct {
	// MemberIDs lists the upper-hull member ids, ascending.
	MemberIDs []int
	adjOff    []int32 // row offsets into adjIDs; len(MemberIDs)+1
	adjIDs    []int   // concatenated adjacency rows (member ids, sorted)
}

// Adj returns the adjacent member ids of id (sorted), or nil for non-members.
// The row aliases the snapshot's buffer: valid until the next UpperAdjInto.
func (s *AdjSnapshot) Adj(id int) []int {
	i := sort.SearchInts(s.MemberIDs, id)
	if i >= len(s.MemberIDs) || s.MemberIDs[i] != id {
		return nil
	}
	return s.adjIDs[s.adjOff[i]:s.adjOff[i+1]]
}

// UpperAdjInto extracts the current upper hull's members and member
// adjacency into s, reusing both the snapshot's and the builder's buffers.
// Membership follows exactly the criterion of Upper (fast facet-normal path,
// QP test for boundary-confined vertices); the result is identical to
// Upper()'s MemberIDs/Adj with none of its map construction. This is the
// extraction ORU's partition loop runs once per L_upd hull.
func (b *Builder) UpperAdjInto(s *AdjSnapshot) {
	s.MemberIDs = s.MemberIDs[:0]
	s.adjOff = append(s.adjOff[:0], 0)
	s.adjIDs = s.adjIDs[:0]
	if !b.started {
		return
	}
	n := len(b.pts)
	if cap(b.fastStamp) < n {
		b.fastStamp = make([]int, 2*n)
		b.hullStamp = make([]int, 2*n)
		b.nbrStamp = make([]int, 2*n)
		b.memberStamp = make([]int, 2*n)
	}
	if cap(b.memberStamp) < n { // builder predates the snapshot buffers
		b.memberStamp = make([]int, 2*n)
	}
	fast := b.fastStamp[:n]
	hullv := b.hullStamp[:n]
	member := b.memberStamp[:n]
	b.gen++
	gen := b.gen
	// One facet sweep: stamp hull/fast vertices and pack the co-facet pairs
	// (v, o) of real vertices for sorting into per-vertex adjacency runs.
	pairs := b.pairBuf[:0]
	for _, f := range b.facets {
		if f.dead {
			continue
		}
		nonneg := true
		for _, x := range f.normal {
			if x < -1e-12 {
				nonneg = false
				break
			}
		}
		for _, v := range f.verts {
			if b.ids[v] < 0 {
				continue
			}
			hullv[v] = gen
			if nonneg {
				fast[v] = gen
			}
			for _, o := range f.verts {
				if o != v && b.ids[o] >= 0 {
					pairs = append(pairs, int64(v)<<32|int64(o))
				}
			}
		}
	}
	// Sort the pairs by (v, o) with a stable two-pass LSD counting sort —
	// first on the low word (the neighbour), then on the high word (the
	// source vertex). Both words are vertex indices below n, so two linear
	// passes leave the pairs fully sorted with no comparison sort at all.
	if cap(b.pairCnt) < n+1 {
		b.pairCnt = make([]int32, 2*(n+1))
	}
	cnt := b.pairCnt[:n+1]
	for i := range cnt {
		cnt[i] = 0
	}
	for _, p := range pairs {
		cnt[int(uint32(p))+1]++
	}
	for v := 0; v < n; v++ {
		cnt[v+1] += cnt[v]
	}
	if cap(b.pairBuf2) < len(pairs) {
		b.pairBuf2 = make([]int64, len(pairs)*2)
	}
	tmp := b.pairBuf2[:len(pairs)]
	for _, p := range pairs {
		o := int(uint32(p))
		tmp[cnt[o]] = p
		cnt[o]++
	}
	for i := range cnt {
		cnt[i] = 0
	}
	for _, p := range tmp {
		cnt[int(p>>32)+1]++
	}
	for v := 0; v < n; v++ {
		cnt[v+1] += cnt[v]
	}
	dst := pairs // pass 2 writes back into the append buffer (tmp is separate)
	for _, p := range tmp {
		v := int(p >> 32)
		dst[cnt[v]] = p
		cnt[v]++
	}
	// Dedup in place (facets share ridges, so pairs repeat).
	w := 0
	for i, p := range dst {
		if i == 0 || p != dst[w-1] {
			dst[w] = p
			w++
		}
	}
	b.pairBuf2 = tmp[:0]
	pairs = dst[:w]
	// Membership: walk the per-vertex runs.
	i := 0
	for v := 0; v < n; v++ {
		lo := i
		for i < len(pairs) && int(pairs[i]>>32) == v {
			i++
		}
		if hullv[v] != gen {
			continue
		}
		if fast[v] == gen {
			member[v] = gen
			continue
		}
		nbrs := b.nbrBuf[:0]
		for k := lo; k < i; k++ {
			nbrs = append(nbrs, int(uint32(pairs[k])))
		}
		b.nbrBuf = nbrs[:0]
		if b.canTopIdx(v, nbrs) {
			member[v] = gen
		}
	}
	// Emit members ordered by external id, rows filtered to members.
	ext := b.extBuf[:0]
	for v := 0; v < n; v++ {
		if member[v] == gen {
			ext = append(ext, v)
		}
	}
	sort.Slice(ext, func(a, c int) bool { return b.ids[ext[a]] < b.ids[ext[c]] })
	for _, v := range ext {
		s.MemberIDs = append(s.MemberIDs, b.ids[v])
		lo := sort.Search(len(pairs), func(k int) bool { return pairs[k] >= int64(v)<<32 })
		row0 := len(s.adjIDs)
		for k := lo; k < len(pairs) && int(pairs[k]>>32) == v; k++ {
			if o := int(uint32(pairs[k])); member[o] == gen {
				s.adjIDs = append(s.adjIDs, b.ids[o])
			}
		}
		sort.Ints(s.adjIDs[row0:])
		s.adjOff = append(s.adjOff, int32(len(s.adjIDs)))
	}
	b.extBuf = ext[:0]
	b.pairBuf = pairs[:0]
}

// canTopIdx is canTop over internal point indices: can point v score at
// least as high as all of nbrs somewhere on the simplex?
//
//ordlint:noalloc
func (b *Builder) canTopIdx(v int, nbrs []int) bool {
	if len(nbrs) == 0 {
		return true
	}
	d := b.dim
	p := b.pts[v]
	pr := &b.qppr
	pr.P = geom.SimplexOnes(d)
	pr.EqA = append(pr.EqA[:0], geom.SimplexOnes(d))
	pr.EqB = append(pr.EqB[:0], 1)
	pr.InA = append(pr.InA[:0], geom.SimplexAxes(d)...)
	pr.InB = append(pr.InB[:0], geom.SimplexZeros(d)...)
	need := len(nbrs) * d
	if cap(b.diffFlat) < need {
		b.diffFlat = make([]float64, need)
	}
	flat := b.diffFlat[:0]
	for _, o := range nbrs {
		q := b.pts[o]
		lo := len(flat)
		for j := 0; j < d; j++ {
			flat = append(flat, p[j]-q[j])
		}
		pr.InA = append(pr.InA, flat[lo:len(flat):len(flat)])
		pr.InB = append(pr.InB, 0)
	}
	b.diffFlat = flat[:0]
	return b.qpws.Feasible(pr)
}

// ComputeUpper computes the upper hull of the given records in one shot.
// ids and points run in parallel.
func ComputeUpper(ids []int, points []geom.Vector) *Upper {
	if len(ids) != len(points) {
		panic("hull: ids and points length mismatch") //ordlint:allow nopanic — documented precondition; caller bug, not data-dependent
	}
	if len(ids) == 0 {
		return &Upper{Adj: map[int][]int{}, FacetsOf: map[int][]int{}}
	}
	b := NewBuilder(len(points[0]))
	for i, id := range ids {
		b.Add(id, points[i])
	}
	return b.Upper()
}
