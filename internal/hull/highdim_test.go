package hull

import (
	"math"
	"math/rand"
	"testing"

	"ordu/internal/geom"
)

// TestUpperHighDimensions validates membership at the paper's upper
// dimensionalities by sampling: every sampled top-1 winner must be a
// member, in d = 5, 6, 7.
func TestUpperHighDimensions(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	for _, d := range []int{5, 6, 7} {
		pts := randPoints(rng, 80, d)
		u := ComputeUpper(seqIDs(len(pts)), pts)
		members := map[int]bool{}
		for _, id := range u.MemberIDs {
			members[id] = true
		}
		for s := 0; s < 500; s++ {
			v := geom.RandSimplex(rng, d)
			best, bestScore := -1, math.Inf(-1)
			for i, p := range pts {
				if sc := p.Dot(v); sc > bestScore {
					best, bestScore = i, sc
				}
			}
			if !members[best] {
				t.Fatalf("d=%d: winner %d not a member (%d members of %d points)",
					d, best, len(u.MemberIDs), len(pts))
			}
		}
	}
}

// TestLayersHighDim: peeling still partitions the whole set in high d.
func TestLayersHighDim(t *testing.T) {
	rng := rand.New(rand.NewSource(132))
	d := 6
	pts := randPoints(rng, 60, d)
	ls := NewLayers(seqIDs(len(pts)), pts)
	covered := 0
	for t1 := 0; ; t1++ {
		u := ls.Layer(t1)
		if u == nil {
			break
		}
		covered += len(u.MemberIDs)
	}
	if covered != len(pts) {
		t.Fatalf("layers cover %d of %d", covered, len(pts))
	}
}

// TestCollinearPoints2D: exactly collinear inputs (a classic degeneracy)
// are separated by the symbolic perturbation without crashing, and the
// extreme points of the segment are always members.
func TestCollinearPoints2D(t *testing.T) {
	pts := make([]geom.Vector, 11)
	for i := range pts {
		x := float64(i) / 10
		pts[i] = geom.Vector{x, 1 - x}
	}
	u := ComputeUpper(seqIDs(len(pts)), pts)
	m := map[int]bool{}
	for _, id := range u.MemberIDs {
		m[id] = true
	}
	if !m[0] || !m[10] {
		t.Fatalf("segment endpoints missing from members: %v", u.MemberIDs)
	}
}

// TestCospherePoints: many points on a sphere (all extreme) in 3D.
func TestCospherePoints(t *testing.T) {
	rng := rand.New(rand.NewSource(133))
	pts := make([]geom.Vector, 60)
	for i := range pts {
		// Random direction in the positive octant, unit norm.
		v := geom.Vector{math.Abs(rng.NormFloat64()), math.Abs(rng.NormFloat64()), math.Abs(rng.NormFloat64())}
		n := v.Norm()
		pts[i] = v.Scale(1 / n)
	}
	u := ComputeUpper(seqIDs(len(pts)), pts)
	// On the positive-octant sphere every point is top-1 for its own
	// direction scaled onto the simplex, so all must be members.
	if len(u.MemberIDs) < len(pts)*9/10 {
		t.Fatalf("only %d of %d cosphere points are members", len(u.MemberIDs), len(pts))
	}
}
