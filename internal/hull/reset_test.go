package hull

import (
	"math/rand"
	"reflect"
	"testing"

	"ordu/internal/geom"
)

// TestBuilderResetMatchesFresh pins that a pooled builder (Reset between
// hulls, warm free list and point arena) produces output identical to a
// fresh builder for every hull in a sequence of randomized point sets.
func TestBuilderResetMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	pooled := NewBuilder(2)
	for trial := 0; trial < 40; trial++ {
		d := 2 + rng.Intn(4)
		n := 3 + rng.Intn(60)
		ids := make([]int, n)
		pts := make([]geom.Vector, n)
		for i := range pts {
			ids[i] = i * 3
			p := make(geom.Vector, d)
			for j := range p {
				p[j] = rng.Float64()
			}
			pts[i] = p
		}
		pooled.Reset(d)
		for i, id := range ids {
			pooled.Add(id, pts[i])
		}
		got := pooled.Upper()
		want := ComputeUpper(ids, pts)
		if !reflect.DeepEqual(got.MemberIDs, want.MemberIDs) {
			t.Fatalf("trial %d (d=%d n=%d): members %v vs fresh %v", trial, d, n, got.MemberIDs, want.MemberIDs)
		}
		if !reflect.DeepEqual(got.Adj, want.Adj) {
			t.Fatalf("trial %d (d=%d n=%d): adjacency diverges", trial, d, n)
		}
		if !reflect.DeepEqual(got.Facets, want.Facets) || !reflect.DeepEqual(got.Norms, want.Norms) {
			t.Fatalf("trial %d (d=%d n=%d): facet structure diverges", trial, d, n)
		}
		if gc, wc := pooled.MemberCount(), len(want.MemberIDs); gc != wc {
			t.Fatalf("trial %d (d=%d n=%d): MemberCount %d, Upper members %d", trial, d, n, gc, wc)
		}
		var snap AdjSnapshot
		pooled.UpperAdjInto(&snap)
		if !reflect.DeepEqual(snap.MemberIDs, want.MemberIDs) {
			t.Fatalf("trial %d (d=%d n=%d): snapshot members %v vs Upper %v", trial, d, n, snap.MemberIDs, want.MemberIDs)
		}
		for _, id := range want.MemberIDs {
			row := append([]int(nil), snap.Adj(id)...)
			if len(row) == 0 {
				row = nil
			}
			wrow := want.Adj[id]
			if len(wrow) == 0 {
				wrow = nil
			}
			if !reflect.DeepEqual(row, wrow) {
				t.Fatalf("trial %d (d=%d n=%d): snapshot adj[%d] = %v, Upper %v", trial, d, n, id, row, wrow)
			}
		}
	}
}

// TestMemberCountIncremental checks the cheap count against the full Upper
// extraction as the hull grows point by point — the exact access pattern of
// the rho-bar estimation loop.
func TestMemberCountIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(137))
	for _, d := range []int{2, 3, 4, 5} {
		b := NewBuilder(d)
		for i := 0; i < 120; i++ {
			p := make(geom.Vector, d)
			for j := range p {
				p[j] = rng.Float64()
			}
			b.Add(i, p)
			if i%7 == 0 {
				if got, want := b.MemberCount(), len(b.Upper().MemberIDs); got != want {
					t.Fatalf("d=%d after %d adds: MemberCount %d, Upper members %d", d, i+1, got, want)
				}
			}
		}
	}
}
