package hull

import (
	"fmt"
	"sort"

	"ordu/internal/geom"
)

// Layers lazily maintains the upper-hull layers of a record set: layer 0 is
// the upper hull of all records, layer t the upper hull of what remains
// after peeling layers 0..t-1 (Section 5.1 of the paper, with the paper's
// 1-based L_i corresponding to Layer(i-1)). ORU computes layers on its
// candidate set strictly on demand, so construction does no work.
type Layers struct {
	points    map[int]geom.Vector
	remaining map[int]bool
	dim       int
	layers    []*Upper
	layerOf   map[int]int

	// Peeling scratch, reused across Layer calls (the Upper extraction
	// copies what it keeps, so the buffers are free to reuse). The builder
	// is pooled across layers: each peel Resets it instead of paying for a
	// fresh one.
	idsBuf []int
	ptsBuf []geom.Vector
	b      *Builder
}

// NewLayers prepares lazy layer computation over the given records.
func NewLayers(ids []int, points []geom.Vector) *Layers {
	if len(ids) != len(points) {
		panic("hull: ids and points length mismatch") //ordlint:allow nopanic — documented precondition; caller bug, not data-dependent
	}
	ls := &Layers{
		points:    make(map[int]geom.Vector, len(ids)),
		remaining: make(map[int]bool, len(ids)),
		layerOf:   make(map[int]int),
	}
	for i, id := range ids {
		if _, dup := ls.points[id]; dup {
			panic(fmt.Sprintf("hull: duplicate id %d", id)) //ordlint:allow nopanic — documented precondition; caller bug, not data-dependent
		}
		ls.points[id] = points[i]
		ls.remaining[id] = true
	}
	if len(points) > 0 {
		ls.dim = len(points[0])
	}
	return ls
}

// Layer returns layer t (0-based), computing shallower layers as needed.
// It returns nil when fewer than t+1 non-empty layers exist.
func (ls *Layers) Layer(t int) *Upper {
	for len(ls.layers) <= t {
		if len(ls.remaining) == 0 {
			return nil
		}
		ids := ls.idsBuf[:0]
		for id := range ls.remaining {
			ids = append(ids, id)
		}
		sort.Ints(ids) // deterministic insertion order
		pts := ls.ptsBuf[:0]
		for _, id := range ids {
			pts = append(pts, ls.points[id])
		}
		ls.idsBuf = ids
		ls.ptsBuf = pts
		if ls.b == nil {
			ls.b = NewBuilder(ls.dim)
		} else {
			ls.b.Reset(ls.dim)
		}
		for i, id := range ids {
			ls.b.Add(id, pts[i])
		}
		u := ls.b.Upper()
		if len(u.MemberIDs) == 0 {
			// Cannot happen for non-empty input (the degenerate fallback
			// returns maximal points), but guard against infinite loops.
			panic("hull: empty layer over non-empty remainder") //ordlint:allow nopanic — unreachable-invariant guard against infinite loop
		}
		li := len(ls.layers)
		for _, id := range u.MemberIDs {
			delete(ls.remaining, id)
			ls.layerOf[id] = li
		}
		ls.layers = append(ls.layers, u)
	}
	return ls.layers[t]
}

// LayerOf returns the layer index of id, peeling deeper layers if
// necessary. ok is false when the id is unknown.
func (ls *Layers) LayerOf(id int) (int, bool) {
	if _, known := ls.points[id]; !known {
		return 0, false
	}
	// Each iteration either resolves the id or peels one more non-empty
	// layer, so the layer count bounds the loop: at most one layer per point.
	for len(ls.layers) <= len(ls.points) {
		if li, done := ls.layerOf[id]; done {
			return li, true
		}
		if ls.Layer(len(ls.layers)) == nil {
			return 0, false
		}
	}
	return 0, false
}

// Point returns the coordinates of a record.
func (ls *Layers) Point(id int) geom.Vector { return ls.points[id] }

// Computed returns how many layers have been materialised so far.
func (ls *Layers) Computed() int { return len(ls.layers) }

// Size returns the total number of records under management.
func (ls *Layers) Size() int { return len(ls.points) }
