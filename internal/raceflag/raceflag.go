//go:build !race

// Package raceflag reports whether the binary was built with the race
// detector. Allocation-count regression tests skip themselves under -race,
// where the instrumentation itself allocates.
package raceflag

// Enabled is true when the race detector is active.
const Enabled = false
