// Package skyband implements the dominance-side machinery of the paper:
// rho-dominance tests (Section 3), mindist and inflection-radius
// computation (Section 4.1), the score-ordered progressive BBS variant that
// both ORD and ORU build on (Sections 4.2, 5.3.2), plain skyline/k-skyband
// retrieval, and the incremental rho-skyband module IRD (Section 5.3.2).
package skyband

import (
	"math"
	"slices"

	"ordu/internal/geom"
	"ordu/internal/qp"
)

// Workspace holds the QP solver state and scratch of the dominance-side
// kernels (Mindist's exact-projection fallback, inflection-radius sorting),
// so the pruners and IRD can run millions of rho-dominance tests without
// heap allocations after warm-up. The zero value is ready for use. Not
// goroutine-safe: one Workspace per worker.
type Workspace struct {
	qp  qp.Workspace
	a   []float64
	pr  qp.Problem
	mds []float64 // inflection-radius scratch, used by IRD and core's ORD
	v   []float64 // active-set projection: candidate point
	fr  []bool    // active-set projection: free-coordinate mask
}

// Mindist returns rho_{i,j}: the largest radius at which rj still
// rho-dominates ri around the seed w, i.e. the minimum distance from w to
// the intersection of the score-tie hyperplane U_v(ri) = U_v(rj) with the
// preference simplex (Section 4.1). It returns +Inf when rj outscores ri on
// the entire preference domain (in particular when rj dominates ri).
//
// The caller must ensure U_w(rj) >= U_w(ri); otherwise rj never
// rho-dominates ri and the notion is undefined.
//
// The computation first tries the closed form for the foot of the
// perpendicular within the simplex's supporting hyperplane; only when that
// foot leaves the simplex does it fall back to the QP solver, mirroring how
// the paper uses QuadProg++ for the general case.
func Mindist(w, ri, rj geom.Vector) float64 {
	var ws Workspace
	return MindistWS(w, ri, rj, &ws)
}

// MindistWS is Mindist with a caller-supplied workspace: the closed-form
// fast path is allocation-free by construction, and the QP fallback reuses
// the workspace's constraint system and solver buffers, so warmed-up calls
// allocate nothing.
//
//ordlint:noalloc
func MindistWS(w, ri, rj geom.Vector, ws *Workspace) float64 {
	d := len(w)
	// Single allocation-free pass: dominance check, hyperplane coefficient
	// aggregates (a = ri - rj), and a.w.
	dominates, strict := true, false
	aw, asum, a2 := 0.0, 0.0, 0.0
	for i := 0; i < d; i++ {
		ai := ri[i] - rj[i]
		if ai > 0 {
			dominates = false
		} else if ai < 0 {
			strict = true
		}
		aw += ai * w[i]
		asum += ai
		a2 += ai * ai
	}
	if dominates && strict {
		return math.Inf(1)
	}
	// Project a onto the simplex's supporting hyperplane sum(v)=1.
	mean := asum / float64(d)
	proj2 := a2 - asum*mean
	if proj2 < 1e-18 {
		// a is (numerically) parallel to the all-ones vector: the score gap
		// is constant over the whole domain.
		if math.Abs(aw) < 1e-15 {
			return 0 // identical scores everywhere; degenerate tie
		}
		return math.Inf(1)
	}
	// Foot of the perpendicular: v* = w - (aw/proj2) * (a - mean*1).
	alpha := aw / proj2
	feasible := true
	for i := 0; i < d; i++ {
		if w[i]-alpha*(ri[i]-rj[i]-mean) < -1e-12 {
			feasible = false
			break
		}
	}
	dist := math.Abs(aw) / math.Sqrt(proj2)
	if feasible {
		return dist
	}
	// Foot outside the simplex: exact projection onto the constrained set.
	if cap(ws.a) < d {
		ws.a = make([]float64, d)
	}
	a := ws.a[:d]
	amin, amax := math.Inf(1), math.Inf(-1)
	for i := 0; i < d; i++ {
		a[i] = ri[i] - rj[i]
		amin = math.Min(amin, a[i])
		amax = math.Max(amax, a[i])
	}
	// O(d) infeasibility pre-check: the tie hyperplane a·v = 0 meets the
	// simplex only if a takes both signs (or a zero); otherwise rj outscores
	// ri on the whole domain and no solver call is needed.
	if amin > 0 || amax < 0 {
		return math.Inf(1)
	}
	// Specialized two-constraint active-set projection: with only sum(v)=1
	// and a·v=0 as equalities, each free-set subproblem is a closed-form 2x2
	// solve, so the projection runs in O(d) per iteration with no matrix
	// factorization. It verifies its own KKT conditions; the general QP
	// solver below remains as the fallback for the rare non-converged case.
	if qd, ok := projectTieSimplex(w, a, ws); ok {
		return qd
	}
	pr := &ws.pr
	pr.P = w
	pr.EqA = append(pr.EqA[:0], geom.SimplexOnes(d), a)
	pr.EqB = append(pr.EqB[:0], 1, 0)
	pr.InA = geom.SimplexAxes(d) // shared read-only rows
	pr.InB = geom.SimplexZeros(d)
	_, qdist, err := ws.qp.Solve(pr)
	if err != nil {
		// The hyperplane misses the simplex entirely: rj wins everywhere.
		return math.Inf(1)
	}
	return qdist
}

// projectTieSimplex computes the distance from w to its Euclidean projection
// onto {v : v >= 0, sum(v) = 1, a.v = 0} by primal active set. On the free
// coordinates F the stationarity condition is v_i = w_i + lambda + mu*a_i
// with (lambda, mu) from the 2x2 normal equations of the two equality
// constraints; negative coordinates are clamped to the boundary en masse
// (Michelot-style), and a clamped coordinate whose multiplier has the wrong
// sign is released one per iteration. The returned distance is exact (the
// full KKT system is verified before returning); ok=false means the
// iteration cap or a degenerate free set was hit and the caller must use
// the general solver.
//
//ordlint:noalloc
func projectTieSimplex(w, a []float64, ws *Workspace) (float64, bool) {
	d := len(w)
	if cap(ws.v) < d {
		ws.v = make([]float64, d)
		ws.fr = make([]bool, d)
	}
	v := ws.v[:d]
	fr := ws.fr[:d]
	for i := range fr {
		fr[i] = true
	}
	free := d
	for iter := 0; iter < 4*d+8; iter++ {
		var m, sw, sa, saw, saa float64
		for i := 0; i < d; i++ {
			if !fr[i] {
				continue
			}
			m++
			sw += w[i]
			sa += a[i]
			saw += a[i] * w[i]
			saa += a[i] * a[i]
		}
		det := m*saa - sa*sa // >= 0 by Cauchy-Schwarz; 0 iff a constant on F
		var lam, mu float64
		if det <= 1e-14*(m*saa+sa*sa) || saa == 0 { //ordlint:allow floatcmp — exact zero guards the all-zero row
			if saa > 1e-24 {
				// a is a nonzero constant on the free set: a.v = 0 and
				// sum(v) = 1 conflict on F alone. Let the general solver
				// sort out which boundary resolves it.
				return 0, false
			}
			// a vanishes on F: plain simplex projection of the free block.
			lam = (1 - sw) / m
		} else {
			b1 := 1 - sw
			b2 := -saw
			lam = (b1*saa - b2*sa) / det
			mu = (m*b2 - sa*b1) / det
		}
		clamped := false
		for i := 0; i < d; i++ {
			if !fr[i] {
				v[i] = 0
				continue
			}
			v[i] = w[i] + lam + mu*a[i]
			if v[i] < -1e-12 {
				fr[i] = false
				free--
				clamped = true
			}
		}
		if clamped {
			if free == 0 {
				return 0, false
			}
			continue
		}
		// Dual feasibility: a clamped coordinate with positive would-be
		// value wants back in; release the worst violator and re-solve.
		rel, relV := -1, 1e-10
		for i := 0; i < d; i++ {
			if fr[i] {
				continue
			}
			if g := w[i] + lam + mu*a[i]; g > relV {
				relV = g
				rel = i
			}
		}
		if rel >= 0 {
			fr[rel] = true
			free++
			continue
		}
		var dist2 float64
		for i := 0; i < d; i++ {
			dv := v[i] - w[i]
			dist2 += dv * dv
		}
		return math.Sqrt(dist2), true
	}
	return 0, false
}

// InflectionRadius computes the inflection radius of a record given the
// mindists contributed by its higher-scoring competitors (Figure 2(a)):
// each competitor rho-dominates the record on the interval [0, mindist], so
// the record joins the rho-skyband once fewer than k intervals remain, i.e.
// at the k-th largest mindist. With fewer than k competitors the record is
// in every rho-skyband (radius 0); +Inf means it never joins (it is
// dominated outright by at least k others).
func InflectionRadius(mindists []float64, k int) float64 {
	if len(mindists) < k {
		return 0
	}
	ds := append([]float64(nil), mindists...)
	return InflectionRadiusInPlace(ds, k)
}

// InflectionRadiusInPlace is InflectionRadius over a caller-owned buffer:
// it sorts mindists in place (no copy, no allocation), which is what the
// hot loops of ORD and IRD want — they rebuild the buffer per candidate
// anyway.
//
//ordlint:noalloc
func InflectionRadiusInPlace(mindists []float64, k int) float64 {
	if len(mindists) < k {
		return 0
	}
	slices.Sort(mindists)
	return mindists[len(mindists)-k]
}

// RhoDominates reports whether rj rho-dominates ri at radius rho around w.
// Records tied in score for w never dominate each other.
func RhoDominates(w, rj, ri geom.Vector, rho float64) bool {
	sj, si := rj.Dot(w), ri.Dot(w)
	if sj < si {
		return false
	}
	// Exact equality here only defends the definitional corner: two scores
	// computed by the same Dot over coincident (or permuted-equal) records
	// are bit-identical, and such genuine ties must not count as dominance
	// unless rj dominates ri outright. A near-tie from distinct records
	// falls through, which is the intended strict comparison.
	if sj == si && !rj.Dominates(ri) { //ordlint:allow floatcmp — definitional tie guard on identically computed scores
		return false
	}
	return Mindist(w, ri, rj) >= rho
}

// RhoDominatesWS is RhoDominates with a caller-supplied workspace.
//
//ordlint:noalloc
func RhoDominatesWS(w, rj, ri geom.Vector, rho float64, ws *Workspace) bool {
	sj, si := rj.Dot(w), ri.Dot(w)
	if sj < si {
		return false
	}
	if sj == si && !rj.Dominates(ri) { //ordlint:allow floatcmp — definitional tie guard on identically computed scores
		return false
	}
	return MindistWS(w, ri, rj, ws) >= rho
}
