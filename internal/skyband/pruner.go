package skyband

import (
	"math"

	"ordu/internal/geom"
)

// SkybandPruner prunes points dominated (in the traditional sense) by at
// least k of the records registered so far. Used for plain skyline and
// k-skyband retrieval, and as the non-prunable baseline inside IRD.
type SkybandPruner struct {
	K    int
	recs []geom.Vector
}

// NewSkybandPruner returns a pruner for the k-skyband.
func NewSkybandPruner(k int) *SkybandPruner {
	return &SkybandPruner{K: k}
}

// Add registers an emitted record as a potential dominator.
func (s *SkybandPruner) Add(p geom.Vector) { s.recs = append(s.recs, p) }

// Prune reports whether p is dominated by at least K registered records.
func (s *SkybandPruner) Prune(p geom.Vector) bool {
	count := 0
	for _, r := range s.recs {
		if r.Dominates(p) {
			count++
			if count >= s.K {
				return true
			}
		}
	}
	return false
}

// Size returns the number of registered records.
func (s *SkybandPruner) Size() int { return len(s.recs) }

// RhoPruner prunes points rho-dominated at the current radius Rho by at
// least K of the registered records. It implements the adaptive
// rho-dominance test of Section 4.2: the test for a candidate r_i against a
// fetched record r_j compares the mindist rho_{i,j} with the current Rho.
// Rho may shrink over the pruner's lifetime (ORD tightens it as candidates
// are evicted), which only ever makes the pruner more aggressive.
type RhoPruner struct {
	W   geom.Vector
	K   int
	Rho float64
	// recs holds every fetched record. Records evicted from ORD's candidate
	// set stay here: rho-dominance is a pairwise notion, so an evicted
	// record still disqualifies the points it rho-dominates.
	recs []geom.Vector
	// ws backs the pruner's mindist QPs; the pruner is single-goroutine by
	// construction (it lives inside one scan), so owning the workspace is
	// safe and keeps every Prune call allocation-free.
	ws Workspace
}

// NewRhoPruner returns a rho-dominance pruner with radius +Inf (which makes
// it equivalent to plain k-dominance until Rho is tightened).
func NewRhoPruner(w geom.Vector, k int) *RhoPruner {
	return &RhoPruner{W: w, K: k, Rho: math.Inf(1)}
}

// Add registers an emitted record as a potential rho-dominator.
func (r *RhoPruner) Add(p geom.Vector) { r.recs = append(r.recs, p) }

// Prune reports whether p is rho-dominated at radius Rho by at least K
// registered records. All registered records score at least as high as p
// for W by the scan's visiting order, so each contributes an interval
// [0, mindist]; p is prunable when at least K intervals cover Rho.
func (r *RhoPruner) Prune(p geom.Vector) bool {
	count := 0
	for _, rec := range r.recs {
		if rec.Dominates(p) {
			count++
		} else if !math.IsInf(r.Rho, 1) && MindistWS(r.W, p, rec, &r.ws) >= r.Rho {
			count++
		}
		if count >= r.K {
			return true
		}
	}
	return false
}

// Size returns the number of registered records.
func (r *RhoPruner) Size() int { return len(r.recs) }

// Records exposes the registered records (shared slice; do not modify).
func (r *RhoPruner) Records() []geom.Vector { return r.recs }
