package skyband

import (
	"context"
	"math/rand"
	"testing"

	"ordu/internal/geom"
	"ordu/internal/leakcheck"
	"ordu/internal/rtree"
)

// TestParallelNoLeakOnCancel pins the teardown contract dynamically: an
// early context cancellation must not strand shard workers. The merge's
// deferred close(done) unblocks every worker select, and each worker's
// deferred close(out) lets nothing linger — the static chanprotocol check
// verifies the edges exist; this verifies they actually drain.
func TestParallelNoLeakOnCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	pts := tiePoints(rng, 3000, 3, 32)
	tree := rtree.BulkLoad(pts)
	w := geom.Vector{0.4, 0.35, 0.25}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	leakcheck.Check(t, func() {
		if _, err := KSkybandParallelCtx(ctx, tree, w, 2, 4); err == nil {
			t.Fatal("cancelled context: expected error")
		}
	})
	leakcheck.Check(t, func() {
		if _, err := RhoSkybandParallelCtx(ctx, tree, w, 2, 0.1, 4); err == nil {
			t.Fatal("cancelled context: expected error")
		}
	})
}

// TestParallelNoLeakOnCompletion covers the normal exit: after a full merge
// every worker has been released (drained out streams or the done close).
func TestParallelNoLeakOnCompletion(t *testing.T) {
	rng := rand.New(rand.NewSource(127))
	pts := tiePoints(rng, 1200, 3, 16)
	tree := rtree.BulkLoad(pts)
	w := geom.Vector{0.5, 0.3, 0.2}
	leakcheck.Check(t, func() {
		if got := KSkybandParallel(tree, 2, 4); len(got) == 0 {
			t.Fatal("expected a non-empty skyband")
		}
	})
	leakcheck.Check(t, func() {
		if got := RhoSkybandParallel(tree, w, 2, 0.15, 4); len(got) == 0 {
			t.Fatal("expected a non-empty rho-skyband")
		}
	})
}

// TestParallelNoLeakOnFallback covers the paths that never spawn: an empty
// tree and the single-worker fallback both run sequentially, so the count
// must be flat without any teardown protocol at all.
func TestParallelNoLeakOnFallback(t *testing.T) {
	leakcheck.Check(t, func() {
		if got := KSkybandParallel(rtree.BulkLoad(nil), 2, 4); len(got) != 0 {
			t.Fatalf("empty tree: %d members", len(got))
		}
	})
	rng := rand.New(rand.NewSource(131))
	pts := tiePoints(rng, 400, 2, 8)
	tree := rtree.BulkLoad(pts)
	leakcheck.Check(t, func() {
		if got := KSkybandParallel(tree, 2, 1); len(got) == 0 {
			t.Fatal("expected a non-empty skyband")
		}
	})
}
