package skyband

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"ordu/internal/geom"
	"ordu/internal/rtree"
)

// Sentinel errors of the live-maintenance API.
var (
	// ErrLiveParams reports invalid construction parameters.
	ErrLiveParams = errors.New("skyband: invalid live parameters")
	// ErrLiveState reports a mutation notification that disagrees with the
	// tracked state or with the underlying tree (protocol misuse).
	ErrLiveState = errors.New("skyband: inconsistent live state")
)

// liveSlack is the default headroom of the tracked-dominator lists beyond k.
// A larger slack absorbs more dominator deletions before a truncated list
// forces a recount probe; the per-point memory cost is slack extra ints.
const liveSlack = 8

// liveEntry is the maintained dominance state of one record y.
//
// Invariants (T = true number of live rho-dominators of y):
//
//	len(doms) == min(T, cap)        — doms is a subset of y's true dominators
//	truncated == false  =>  T == len(doms) (the list is exact)
//	truncated == true   =>  T >= cap (possibly stale: an untracked dominator
//	                        may have been deleted since, leaving T == cap)
//
// Membership in the rho-skyband is T < k, which — because cap >= k — is
// decidable from the list alone as len(doms) < k, stale flag or not.
type liveEntry struct {
	doms      []int
	truncated bool
}

// Live maintains the rho-skyband of a mutating R-tree for a fixed preference
// seed w, band parameter k and radius rho (Section 3's output set, kept
// fresh under point insertions and deletions instead of recomputed).
//
// For every live record y it tracks up to cap = k+slack of y's
// rho-dominators plus a reverse index contrib[x] = {y : x tracked for y}.
// An insert of z runs two score-pruned tree probes: one collecting z's own
// dominators (early-exiting once cap+1 are seen), one visiting only the
// records z can rho-dominate (subtrees that outscore z are pruned, subtrees
// plainly dominated by z skip the mindist test wholesale). A delete of x
// touches only contrib[x]; a list that was truncated is recounted exactly
// with the same early-exiting probe. Rebuild recomputes everything from
// scratch and is both the constructor path and the repair fallback.
//
// Live observes the tree, it does not own it: the caller mutates the tree
// first and then notifies OnInsert/OnDelete/OnUpdate. rho must be strictly
// positive — at rho = 0 the definitional score-tie corner makes pairwise
// rho-dominance and the scan-based pruner disagree, so live maintenance
// refuses it. Not goroutine-safe; the serving layer serialises writers.
type Live struct {
	tree *rtree.Tree
	w    geom.Vector
	k    int
	rho  float64
	cap  int

	entries map[int]*liveEntry
	contrib map[int]map[int]struct{}
	ws      Workspace

	recounts uint64
}

// NewLive builds the live maintenance state for the tree's current contents.
// w must be a non-negative preference vector of the tree's dimensionality
// (callers pass simplex-normalised seeds), k >= 1, and 0 < rho < +Inf.
func NewLive(tree *rtree.Tree, w geom.Vector, k int, rho float64) (*Live, error) {
	if tree == nil {
		return nil, fmt.Errorf("%w: nil tree", ErrLiveParams)
	}
	if len(w) != tree.Dim() {
		return nil, fmt.Errorf("%w: seed dim %d, tree dim %d", ErrLiveParams, len(w), tree.Dim())
	}
	sum := 0.0
	for j, x := range w {
		if math.IsNaN(x) || x < 0 {
			return nil, fmt.Errorf("%w: seed component %d is %v", ErrLiveParams, j, x)
		}
		sum += x
	}
	if sum <= 0 {
		return nil, fmt.Errorf("%w: zero seed", ErrLiveParams)
	}
	if k < 1 {
		return nil, fmt.Errorf("%w: k = %d", ErrLiveParams, k)
	}
	if math.IsNaN(rho) || rho <= 0 || math.IsInf(rho, 1) {
		return nil, fmt.Errorf("%w: rho = %v (need 0 < rho < +Inf)", ErrLiveParams, rho)
	}
	l := &Live{
		tree: tree,
		w:    w.Clone(),
		k:    k,
		rho:  rho,
		cap:  k + liveSlack,
	}
	l.Rebuild()
	return l, nil
}

// Rebuild recomputes the tracked state from the tree's current contents: one
// early-exiting dominator probe per live record. It is the recompute-from-
// scratch fallback the incremental paths are validated against.
//
//ordlint:mutates — the rebuild replaces the tracked membership wholesale; Seed views taken before it are void
func (l *Live) Rebuild() {
	l.entries = make(map[int]*liveEntry, l.tree.Len())
	l.contrib = make(map[int]map[int]struct{}, l.tree.Len())
	b, ok := l.tree.Bounds()
	if !ok {
		return
	}
	for _, id := range l.tree.RangeQuery(b) {
		p, _ := l.tree.Point(id)
		doms, trunc := l.dominatorsOf(id, p)
		l.setEntry(id, doms, trunc)
	}
}

// K returns the band parameter. Rho returns the maintenance radius.
func (l *Live) K() int { return l.k }

// Rho returns the radius the band is maintained at.
func (l *Live) Rho() float64 { return l.rho }

// Seed returns the preference seed (shared slice; do not modify).
//
//ordlint:borrows — shares the Live's internal seed vector
func (l *Live) Seed() geom.Vector { return l.w }

// Recounts returns the cumulative number of exact recount probes forced by
// deletions of tracked dominators — the metric that shows deletes staying
// local instead of degenerating into rebuilds.
func (l *Live) Recounts() uint64 { return l.recounts }

// Contains reports whether the record is currently in the rho-skyband.
func (l *Live) Contains(id int) bool {
	e := l.entries[id]
	return e != nil && len(e.doms) < l.k
}

// Members returns the current rho-skyband in ascending id order. The member
// vectors alias the tree's storage.
//
//ordlint:borrows — Member.Point aliases the tree's packed storage
func (l *Live) Members() []Member {
	ids := make([]int, 0, len(l.entries))
	for id, e := range l.entries {
		if len(e.doms) < l.k {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	out := make([]Member, len(ids))
	for i, id := range ids {
		p, _ := l.tree.Point(id)
		out[i] = Member{ID: id, Point: p}
	}
	return out
}

// OnInsert repairs the band after the tree gained record id. The tree must
// already contain the point.
//
//ordlint:writer — rewrites the tracked dominator lists
func (l *Live) OnInsert(id int) error {
	p, ok := l.tree.Point(id)
	if !ok {
		return fmt.Errorf("%w: OnInsert(%d) but the id is not in the tree", ErrLiveState, id)
	}
	if _, dup := l.entries[id]; dup {
		return fmt.Errorf("%w: OnInsert(%d) but the id is already tracked", ErrLiveState, id)
	}
	doms, trunc := l.dominatorsOf(id, p)
	l.setEntry(id, doms, trunc)
	// Push z into the lists of every record it rho-dominates; only the
	// score-halfspace below z is probed.
	l.dominateesOf(id, p, func(y int, _ geom.Vector) {
		e := l.entries[y]
		if e == nil || containsID(e.doms, id) {
			return // already tracked (an update's recount got there first)
		}
		if len(e.doms) < l.cap {
			e.doms = append(e.doms, id)
			l.addContrib(id, y)
		} else {
			e.truncated = true
		}
	})
	return nil
}

// OnDelete repairs the band after the tree lost record id. The tree must no
// longer contain the point.
//
//ordlint:writer — rewrites the tracked dominator lists
func (l *Live) OnDelete(id int) error {
	if _, still := l.tree.Point(id); still {
		return fmt.Errorf("%w: OnDelete(%d) but the id is still in the tree", ErrLiveState, id)
	}
	if l.entries[id] == nil {
		return fmt.Errorf("%w: OnDelete(%d) but the id is not tracked", ErrLiveState, id)
	}
	l.detach(id)
	return nil
}

// OnUpdate repairs the band after record id moved. The tree must already
// hold the new position.
//
//ordlint:writer — rewrites the tracked dominator lists
func (l *Live) OnUpdate(id int) error {
	if _, ok := l.tree.Point(id); !ok {
		return fmt.Errorf("%w: OnUpdate(%d) but the id is not in the tree", ErrLiveState, id)
	}
	if l.entries[id] == nil {
		return fmt.Errorf("%w: OnUpdate(%d) but the id is not tracked", ErrLiveState, id)
	}
	// Detach the old incarnation, then insert the new one. The recounts run
	// by detach see the already-moved point, which is exactly the final
	// dominator set they should converge to; OnInsert's duplicate guard
	// absorbs the overlap.
	l.detach(id)
	return l.OnInsert(id) //ordlint:allow wsescape — returns only an error; the internal workspace never leaves the Live
}

// detach removes id from the tracked state and repairs every list that
// referenced it: exact lists just shrink, truncated lists are recounted.
func (l *Live) detach(id int) {
	e := l.entries[id]
	for _, d := range e.doms {
		l.delContrib(d, id)
	}
	delete(l.entries, id)
	holders := l.contrib[id]
	delete(l.contrib, id)
	ys := make([]int, 0, len(holders))
	for y := range holders {
		ys = append(ys, y)
	}
	sort.Ints(ys)
	for _, y := range ys {
		ey := l.entries[y]
		if ey == nil {
			continue
		}
		removeID(&ey.doms, id)
		if ey.truncated {
			// The list may have been a strict subset of y's dominators, so
			// shrinking it loses the len == min(T, cap) invariant: recount.
			l.recount(y)
		}
	}
}

// recount recomputes y's dominator list exactly with the early-exiting probe.
func (l *Live) recount(y int) {
	p, ok := l.tree.Point(y)
	if !ok {
		return
	}
	e := l.entries[y]
	for _, d := range e.doms {
		l.delContrib(d, y)
	}
	doms, trunc := l.dominatorsOf(y, p)
	e.doms, e.truncated = doms, trunc
	for _, d := range doms {
		l.addContrib(d, y)
	}
	l.recounts++
}

func (l *Live) setEntry(id int, doms []int, trunc bool) {
	l.entries[id] = &liveEntry{doms: doms, truncated: trunc}
	for _, d := range doms {
		l.addContrib(d, id)
	}
}

func (l *Live) addContrib(dom, y int) {
	s := l.contrib[dom]
	if s == nil {
		s = make(map[int]struct{}, 4)
		l.contrib[dom] = s
	}
	s[y] = struct{}{}
}

func (l *Live) delContrib(dom, y int) {
	s := l.contrib[dom]
	delete(s, y)
	if len(s) == 0 {
		delete(l.contrib, dom)
	}
}

// dominatorsOf probes the tree for records rho-dominating z at the
// maintenance radius, stopping as soon as cap+1 are seen (the surplus is
// reported as truncation, not materialised). Subtrees whose best score is
// below z's are pruned — a rho-dominator must score at least z for w, and
// Dot is monotone under pointwise ordering, so the prune is exact. Subtrees
// whose bottom corner plainly dominates z contribute wholesale, skipping the
// mindist test.
func (l *Live) dominatorsOf(z int, p geom.Vector) (doms []int, truncated bool) {
	sz := p.Dot(l.w)
	doms = make([]int, 0, l.cap)
	t := l.tree
	var walk func(n rtree.NodeRef, allDom bool) bool
	walk = func(n rtree.NodeRef, allDom bool) bool {
		cnt := t.Count(n)
		if t.Level(n) > 0 {
			for i := 0; i < cnt; i++ {
				sub := allDom
				if !sub {
					if t.ChildHi(n, i).Dot(l.w) < sz {
						continue
					}
					sub = t.ChildLo(n, i).Dominates(p)
				}
				if !walk(t.Child(n, i), sub) {
					return false
				}
			}
			return true
		}
		for i := 0; i < cnt; i++ {
			q := t.LeafPoint(n, i)
			sub := allDom
			if !sub {
				if q.Dot(l.w) < sz {
					continue
				}
				sub = q.Dominates(p)
			}
			if t.LeafID(n, i) == z {
				continue
			}
			if sub || q.Dominates(p) || RhoDominatesWS(l.w, q, p, l.rho, &l.ws) {
				if len(doms) == l.cap {
					truncated = true
					return false
				}
				doms = append(doms, t.LeafID(n, i))
			}
		}
		return true
	}
	if t.Len() > 0 {
		walk(t.Root(), false)
	}
	return doms, truncated
}

// dominateesOf probes the tree for the records z rho-dominates at the
// maintenance radius and calls visit for each. Subtrees whose worst score
// exceeds z's are pruned; subtrees plainly dominated by z skip the mindist
// test wholesale.
func (l *Live) dominateesOf(z int, p geom.Vector, visit func(y int, q geom.Vector)) {
	if l.tree.Len() == 0 {
		return
	}
	sz := p.Dot(l.w)
	t := l.tree
	var walk func(n rtree.NodeRef, allDom bool)
	walk = func(n rtree.NodeRef, allDom bool) {
		cnt := t.Count(n)
		if t.Level(n) > 0 {
			for i := 0; i < cnt; i++ {
				sub := allDom
				if !sub {
					if t.ChildLo(n, i).Dot(l.w) > sz {
						continue
					}
					sub = p.Dominates(t.ChildHi(n, i))
				}
				walk(t.Child(n, i), sub)
			}
			return
		}
		for i := 0; i < cnt; i++ {
			q := t.LeafPoint(n, i)
			sub := allDom
			if !sub {
				if q.Dot(l.w) > sz {
					continue
				}
				sub = p.Dominates(q)
			}
			if t.LeafID(n, i) == z {
				continue
			}
			if sub || p.Dominates(q) || RhoDominatesWS(l.w, p, q, l.rho, &l.ws) {
				visit(t.LeafID(n, i), q)
			}
		}
	}
	walk(t.Root(), false)
}

func containsID(s []int, id int) bool {
	for _, x := range s {
		if x == id {
			return true
		}
	}
	return false
}

func removeID(s *[]int, id int) {
	for i, x := range *s {
		if x == id {
			*s = append((*s)[:i], (*s)[i+1:]...)
			return
		}
	}
}
