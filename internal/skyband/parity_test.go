package skyband

import (
	"fmt"
	"math/rand"
	"testing"

	"ordu/internal/geom"
	"ordu/internal/rtree"
	"ordu/internal/rtree/legacy"
	"ordu/internal/xheap"
)

// oracleEntry mirrors scanEntry over the legacy pointer tree: same keys
// (score, coordinate-sum tie-break, push sequence), same heap implementation.
type oracleEntry struct {
	score float64
	sum   float64
	node  *legacy.Node
	id    int
	pt    geom.Vector
	seq   uint64
}

func (e oracleEntry) Less(o oracleEntry) bool {
	if e.score != o.score { //ordlint:allow floatcmp — tie-break on stored keys
		return e.score > o.score
	}
	if e.sum != o.sum { //ordlint:allow floatcmp — tie-break on stored keys
		return e.sum > o.sum
	}
	for j := range e.pt {
		if e.pt[j] != o.pt[j] { //ordlint:allow floatcmp — tie-break on stored keys
			return e.pt[j] > o.pt[j]
		}
	}
	if (e.node == nil) != (o.node == nil) {
		return o.node == nil
	}
	return e.id < o.id
}

// oracleScanner is the pre-flat-layout BBS kept as the ordering oracle
// (heaporder_test.go pattern): it must pop records in exactly the same
// order as Scanner over the structurally identical flat tree.
type oracleScanner struct {
	w   geom.Vector
	h   xheap.Heap[oracleEntry]
	seq uint64
}

func newOracleScanner(tree *legacy.Tree, w geom.Vector) *oracleScanner {
	s := &oracleScanner{w: w}
	if root := tree.Root(); root != nil {
		b, _ := tree.Bounds()
		s.push(oracleEntry{node: root, pt: b.TopCorner()})
	}
	return s
}

func (s *oracleScanner) push(e oracleEntry) {
	e.score = s.w.Dot(e.pt)
	e.sum = e.pt.Sum()
	e.seq = s.seq
	s.seq++
	s.h.Push(e)
}

func (s *oracleScanner) next(pruner Pruner) (int, geom.Vector, bool) {
	for s.h.Len() > 0 {
		e := s.h.Pop()
		if pruner != nil && pruner.Prune(e.pt) {
			continue
		}
		if e.node == nil {
			return e.id, e.pt, true
		}
		for _, ent := range e.node.Entries {
			if e.node.Level == 0 {
				s.push(oracleEntry{id: ent.ID, pt: geom.Vector(ent.Rect.Lo)})
			} else {
				s.push(oracleEntry{node: ent.Child, pt: ent.Rect.TopCorner()})
			}
		}
	}
	return 0, nil, false
}

// tiePoints draws quantized coordinates so that exact score and coordinate
// ties are frequent — the regime where pop order is most fragile.
func tiePoints(rng *rand.Rand, n, d, levels int) []geom.Vector {
	pts := make([]geom.Vector, n)
	for i := range pts {
		p := make(geom.Vector, d)
		for j := range p {
			p[j] = float64(rng.Intn(levels)) / float64(levels-1)
		}
		pts[i] = p
	}
	return pts
}

// TestScannerPopOrderMatchesLegacy drives the flat-tree Scanner and the
// legacy-tree oracle through full unpruned scans of identical datasets and
// requires the identical record emission sequence — ids, points and order.
func TestScannerPopOrderMatchesLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for _, cfg := range []struct{ n, d, levels int }{
		{300, 2, 8},
		{1200, 3, 6},
		{800, 4, 4},
		{2000, 5, 16},
	} {
		pts := tiePoints(rng, cfg.n, cfg.d, cfg.levels)
		ft := rtree.BulkLoad(pts)
		lt := legacy.BulkLoad(pts)
		w := make(geom.Vector, cfg.d)
		for i := range w {
			w[i] = rng.Float64() + 0.1
		}
		sc := NewScanner(ft, w)
		or := newOracleScanner(lt, w)
		for i := 0; ; i++ {
			id, p, ok := sc.Next(nil)
			oid, op, ook := or.next(nil)
			if ok != ook {
				t.Fatalf("n=%d d=%d pop %d: exhaustion mismatch flat=%v legacy=%v", cfg.n, cfg.d, i, ok, ook)
			}
			if !ok {
				break
			}
			if id != oid || !p.Equal(op) {
				t.Fatalf("n=%d d=%d pop %d: flat (%d,%v) vs legacy (%d,%v)", cfg.n, cfg.d, i, id, p, oid, op)
			}
		}
	}
}

// TestKSkybandParityVsLegacy runs the k-skyband with the same pruner type
// over both scanners and requires identical member sequences, k = 1..4.
func TestKSkybandParityVsLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	pts := tiePoints(rng, 1500, 3, 10)
	ft := rtree.BulkLoad(pts)
	lt := legacy.BulkLoad(pts)
	for k := 1; k <= 4; k++ {
		k := k
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			got := KSkyband(ft, k)
			w := make(geom.Vector, 3)
			for i := range w {
				w[i] = 1.0 / 3
			}
			or := newOracleScanner(lt, w)
			pr := NewSkybandPruner(k)
			var want []Member
			for {
				id, p, ok := or.next(pr)
				if !ok {
					break
				}
				pr.Add(p)
				want = append(want, Member{ID: id, Point: p})
			}
			if len(got) != len(want) {
				t.Fatalf("k=%d: %d members vs legacy %d", k, len(got), len(want))
			}
			for i := range got {
				if got[i].ID != want[i].ID || !got[i].Point.Equal(want[i].Point) {
					t.Fatalf("k=%d member %d: (%d,%v) vs legacy (%d,%v)",
						k, i, got[i].ID, got[i].Point, want[i].ID, want[i].Point)
				}
			}
		})
	}
}

// TestRhoSkybandParityVsLegacy repeats the parity check for the rho-skyband
// pruner, whose mindist calls make it the pruner ORD actually runs with.
func TestRhoSkybandParityVsLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	pts := tiePoints(rng, 900, 3, 12)
	ft := rtree.BulkLoad(pts)
	lt := legacy.BulkLoad(pts)
	w := geom.Vector{0.5, 0.3, 0.2}
	for _, rho := range []float64{0.05, 0.2} {
		got := RhoSkyband(ft, w, 3, rho)
		or := newOracleScanner(lt, w)
		pr := NewRhoPruner(w, 3)
		pr.Rho = rho
		var want []Member
		for {
			id, p, ok := or.next(pr)
			if !ok {
				break
			}
			pr.Add(p)
			want = append(want, Member{ID: id, Point: p})
		}
		if len(got) != len(want) {
			t.Fatalf("rho=%v: %d members vs legacy %d", rho, len(got), len(want))
		}
		for i := range got {
			if got[i].ID != want[i].ID {
				t.Fatalf("rho=%v member %d: id %d vs legacy %d", rho, i, got[i].ID, want[i].ID)
			}
		}
	}
}
