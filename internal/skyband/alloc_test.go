package skyband

import (
	"math"
	"testing"

	"ordu/internal/geom"
	"ordu/internal/raceflag"
)

// qpFallbackInput returns a (w, ri, rj) triple whose perpendicular foot
// lies outside the preference simplex, forcing MindistWS through the exact
// QP projection rather than the closed form: w sits in a corner and
// ri - rj = (0.5, -0.5, -0.1) pushes the foot's second coordinate negative.
func qpFallbackInput() (w, ri, rj geom.Vector) {
	w = geom.Vector{0.01, 0.01, 0.98}
	ri = geom.Vector{0.9, 0.1, 0.3}
	rj = geom.Vector{0.4, 0.6, 0.4}
	return
}

// TestMindistWSQPFallbackNoAllocs pins the workspace-reuse contract on the
// expensive path: a cold workspace allocates (proving the QP fallback is
// actually exercised by the input), a warmed one does not.
func TestMindistWSQPFallbackNoAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	w, ri, rj := qpFallbackInput()
	cold := testing.AllocsPerRun(1, func() {
		var ws Workspace
		MindistWS(w, ri, rj, &ws)
	})
	if cold == 0 {
		t.Fatal("input did not reach the QP fallback (cold call allocated nothing); the zero-alloc assertion below would be vacuous")
	}
	var ws Workspace
	d := MindistWS(w, ri, rj, &ws) // warm-up
	if math.IsInf(d, 1) || d <= 0 {
		t.Fatalf("unexpected mindist %v", d)
	}
	avg := testing.AllocsPerRun(100, func() {
		MindistWS(w, ri, rj, &ws)
	})
	if avg != 0 {
		t.Fatalf("warmed MindistWS allocates %.1f times per call, want 0", avg)
	}
}

// TestMindistWSFastPathNoAllocs covers the closed-form path, which must be
// allocation-free even on a cold workspace.
func TestMindistWSFastPathNoAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	w := geom.Vector{0.4, 0.3, 0.3}
	ri := geom.Vector{0.5, 0.5, 0.2}
	rj := geom.Vector{0.6, 0.4, 0.3}
	var ws Workspace
	avg := testing.AllocsPerRun(100, func() {
		MindistWS(w, ri, rj, &ws)
	})
	if avg != 0 {
		t.Fatalf("closed-form MindistWS allocates %.1f times per call, want 0", avg)
	}
}

// TestMindistWSMatchesMindist checks that the workspace form returns
// bit-identical results to the allocating form on both paths.
func TestMindistWSMatchesMindist(t *testing.T) {
	w, ri, rj := qpFallbackInput()
	var ws Workspace
	if got, want := MindistWS(w, ri, rj, &ws), Mindist(w, ri, rj); got != want { //ordlint:allow floatcmp — bit-identity assertion between two implementations
		t.Fatalf("QP path: MindistWS = %v, Mindist = %v", got, want)
	}
	w2 := geom.Vector{0.4, 0.3, 0.3}
	ri2 := geom.Vector{0.5, 0.5, 0.2}
	rj2 := geom.Vector{0.6, 0.4, 0.3}
	if got, want := MindistWS(w2, ri2, rj2, &ws), Mindist(w2, ri2, rj2); got != want { //ordlint:allow floatcmp — bit-identity assertion between two implementations
		t.Fatalf("fast path: MindistWS = %v, Mindist = %v", got, want)
	}
}
