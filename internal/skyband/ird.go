package skyband

import (
	"context"
	"fmt"
	"math"

	"ordu/internal/geom"
	"ordu/internal/rtree"
	"ordu/internal/xheap"
)

// IRD is the incremental rho-skyband module of Section 5.3.2. It serves
// "get next" calls, each returning the record that joins the rho-skyband at
// the immediately larger radius around the seed w, together with that
// radius (the record's inflection radius).
//
// Internally it drives the score-ordered BBS scanner to fetch k-skyband
// members progressively into set T, where their exact inflection radii are
// known on arrival (only higher-scoring records can rho-dominate them, and
// those are all fetched earlier). Records are released once their
// inflection radius is no larger than a lower bound rho_ on the inflection
// radius of anything not yet fetched. The bound is the minimum, over the
// BBS heap contents (set S), of each entry's inflection radius with respect
// to the fetched set T; since radii only grow as T grows, bounds computed
// against an older T remain valid, and the implementation refreshes only
// the entry that currently blocks the minimum (lazy revalidation).
type IRD struct {
	w  geom.Vector
	k  int
	sc *Scanner
	pr *SkybandPruner

	t       []Member                 // fetched k-skyband records, in decreasing score order
	tRadii  []float64                // inflection radius of each t entry
	pending xheap.Heap[pendItem]     // fetched but not yet released, keyed by inflection radius
	bounds  xheap.Heap[*boundEntry]
	live    map[uint64]*boundEntry

	// ws backs every mindist computation and the per-candidate mindist
	// buffer; IRD is single-goroutine, so owning one workspace is safe and
	// keeps the fetch loop allocation-free after warm-up.
	ws Workspace

	exhausted bool
}

// Released is one output of IRD: a record and the radius at which it joins
// the rho-skyband.
type Released struct {
	ID     int
	Point  geom.Vector
	Radius float64
}

type pendItem struct {
	rec Member
	rho float64
}

// Less orders the pending min-heap by inflection radius.
func (p pendItem) Less(o pendItem) bool { return p.rho < o.rho }

type boundEntry struct {
	seq      uint64
	pt       geom.Vector
	bound    float64
	tVersion int // size of T when bound was computed
	dead     bool
}

// Less orders the bound min-heap by the stored lower bound.
func (e *boundEntry) Less(o *boundEntry) bool { return e.bound < o.bound }

// NewIRD starts an incremental rho-skyband computation around w.
func NewIRD(tree *rtree.Tree, w geom.Vector, k int) *IRD {
	ird := &IRD{
		w:    w,
		k:    k,
		pr:   NewSkybandPruner(k),
		live: make(map[uint64]*boundEntry),
	}
	ird.sc = NewScanner(tree, w)
	ird.sc.onPush = func(e *scanEntry) {
		be := &boundEntry{seq: e.seq, pt: e.pt}
		ird.live[e.seq] = be
		ird.bounds.Push(be)
	}
	ird.sc.onPop = func(e *scanEntry) {
		if be, ok := ird.live[e.seq]; ok {
			be.dead = true
			delete(ird.live, e.seq)
		}
	}
	return ird
}

// inflectionOf computes the inflection radius of p against the current T.
func (ird *IRD) inflectionOf(p geom.Vector) float64 {
	if len(ird.t) < ird.k {
		return 0
	}
	mindists := ird.ws.mds[:0]
	for _, t := range ird.t {
		mindists = append(mindists, MindistWS(ird.w, p, t.Point, &ird.ws))
	}
	ird.ws.mds = mindists
	return InflectionRadiusInPlace(mindists, ird.k)
}

// boundAtLeast reports whether the inflection radius of p against the
// current T is at least x, with early exit once k covering intervals are
// found (each interval [0, mindist] with mindist >= x counts).
func (ird *IRD) boundAtLeast(p geom.Vector, x float64) bool {
	count := 0
	for _, t := range ird.t {
		if t.Point.Dominates(p) || MindistWS(ird.w, p, t.Point, &ird.ws) >= x {
			count++
			if count >= ird.k {
				return true
			}
		}
	}
	return false
}

// boundsClear reports whether every not-yet-fetched record provably has
// inflection radius at least x. Stored bounds are lower bounds computed
// against an older T (radii only grow as T grows), so entries are
// revalidated lazily: only while the minimum stored bound is below x, and
// each revalidation early-exits at x rather than computing the exact
// radius.
func (ird *IRD) boundsClear(x float64) bool {
	for ird.bounds.Len() > 0 {
		top := *ird.bounds.Peek()
		if top.dead {
			ird.bounds.Pop()
			continue
		}
		if top.bound >= x {
			return true // heap min >= x, so every entry is
		}
		if top.tVersion == len(ird.t) {
			return false // bound is current and below x
		}
		if !ird.boundAtLeast(top.pt, x) {
			// Genuinely below x at the current T; leave the stored (still
			// valid) bound in place — the next fetch changes T anyway.
			return false
		}
		top.bound = x // truthful lower bound, confirmed against current T
		top.tVersion = len(ird.t)
		ird.bounds.Fix(0)
	}
	return true // S is empty: nothing unfetched remains
}

// fetch advances the underlying k-skyband scan by one record. It returns
// false when the scan is exhausted.
func (ird *IRD) fetch() bool {
	id, p, ok := ird.sc.Next(ird.pr)
	if !ok {
		ird.exhausted = true
		return false
	}
	rho := ird.inflectionOf(p)
	ird.pr.Add(p)
	m := Member{ID: id, Point: p}
	ird.t = append(ird.t, m)
	ird.tRadii = append(ird.tRadii, rho)
	if !math.IsInf(rho, 1) {
		ird.pending.Push(pendItem{rec: m, rho: rho})
	}
	return true
}

// Next releases the rho-skyband member with the smallest remaining
// inflection radius. ok is false once the entire k-skyband is exhausted.
func (ird *IRD) Next() (Released, bool) {
	r, ok, _ := ird.NextCtx(context.Background()) //ordlint:allow senterr — context.Background never cancels, so the error is structurally nil
	return r, ok
}

// NextCtx is Next with cooperative cancellation. A single release can
// internally fetch thousands of k-skyband records (each an O(|T|)
// inflection computation), so the fetch loop itself polls ctx every few
// iterations and aborts with an error wrapping ctx.Err(). The returned
// record's Point aliases the dataset's storage (it is not a copy); it
// stays valid for the lifetime of the underlying tree and must be copied
// if retained beyond it.
func (ird *IRD) NextCtx(ctx context.Context) (Released, bool, error) {
	for i := 0; ; i++ {
		if i%64 == 0 {
			select {
			case <-ctx.Done():
				return Released{}, false, fmt.Errorf("skyband: retrieval cancelled: %w", ctx.Err())
			default:
			}
		}
		if ird.pending.Len() > 0 {
			if ird.exhausted || ird.boundsClear(ird.pending.Peek().rho) {
				it := ird.pending.Pop()
				return Released{ID: it.rec.ID, Point: it.rec.Point, Radius: it.rho}, true, nil
			}
		}
		if ird.exhausted {
			return Released{}, false, nil
		}
		ird.fetch()
	}
}

// FetchedCount returns how many k-skyband members IRD has fetched so far,
// a measure of the search effort (|T| in the paper's notation).
func (ird *IRD) FetchedCount() int { return len(ird.t) }
