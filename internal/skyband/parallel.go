// Parallel BBS frontier: the root's subtrees are partitioned across
// workers, each running a shard-local best-first scan over its own heap and
// workspace, and the per-shard record streams are merged back into the
// sequential scan's exact emission order.
//
// Correctness rests on three facts. First, scanEntry.Less is a strict total
// order on records under which a node sorts no later than anything in its
// subtree, so every shard emits its records in globally comparable order
// and a k-way merge by that order reconstructs the sequential sequence
// byte-for-byte. Second, the authoritative pruner runs only on the merge
// goroutine, in emission order — exactly the state the sequential scan
// would have tested each record against (every potential dominator of a
// record precedes it in the total order). Third, workers pre-prune against
// a published snapshot of the authoritative pruner's record prefix; both
// pruner families are monotone (records only accumulate, the radius is
// fixed), so anything a stale snapshot prunes the authoritative pruner
// would prune too — snapshot pruning discards work, never answers.
package skyband

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync/atomic"

	"ordu/internal/geom"
	"ordu/internal/rtree"
	"ordu/internal/xheap"
)

// pruneSnap is an immutable view of a skyband pruner's state: the records
// registered so far (a stable prefix — elements are never mutated after
// publication) plus the fixed parameters. With Rho = +Inf it is the plain
// k-dominance test of SkybandPruner; otherwise the rho-dominance test of
// RhoPruner at a fixed radius.
type pruneSnap struct {
	k    int
	recs []geom.Vector
	w    geom.Vector
	rho  float64
}

// prune reports whether p is (rho-)dominated by at least k snapshot
// records. The caller supplies the mindist workspace so concurrent readers
// of one snapshot never share QP scratch.
func (s *pruneSnap) prune(p geom.Vector, ws *Workspace) bool {
	count := 0
	for _, rec := range s.recs {
		if rec.Dominates(p) {
			count++
		} else if !math.IsInf(s.rho, 1) && MindistWS(s.w, p, rec, ws) >= s.rho {
			count++
		}
		if count >= s.k {
			return true
		}
	}
	return false
}

// shardScan is one worker's half-open scan over a subset of the root's
// subtrees. It owns its heap and mindist workspace outright (one shardScan
// per goroutine), reads the shared pruner snapshot, and streams surviving
// records to the merge goroutine in decreasing scanEntry order.
type shardScan struct {
	tree *rtree.Tree
	w    geom.Vector
	h    xheap.Heap[scanEntry]
	ws   Workspace // mindist scratch for snapshot rho-pruning; goroutine-local
	snap *atomic.Pointer[pruneSnap]
	out  chan scanEntry
	done chan struct{}
}

// run drains the shard heap, expanding nodes locally and forwarding
// records that survive the current snapshot. It exits when the heap is
// empty or the merge goroutine signals completion via done.
func (s *shardScan) run() {
	defer close(s.out)
	for i := 0; s.h.Len() > 0; i++ {
		if i%64 == 0 {
			select {
			case <-s.done:
				return
			default:
			}
		}
		e := s.h.Pop()
		if s.snap.Load().prune(e.pt, &s.ws) {
			continue
		}
		if e.node == rtree.NilNode {
			select {
			case s.out <- e: //ordlint:allow wsescape — scanEntry is sent by value, and its point aliases the immutable tree storage, not the heap's backing array
			case <-s.done:
				return
			}
			continue
		}
		t := s.tree
		cnt := t.Count(e.node)
		if t.Level(e.node) == 0 {
			for j := 0; j < cnt; j++ {
				p := t.LeafPoint(e.node, j)
				s.h.Push(scanEntry{score: s.w.Dot(p), sum: p.Sum(), node: rtree.NilNode, id: t.LeafID(e.node, j), pt: p})
			}
		} else {
			for j := 0; j < cnt; j++ {
				top := t.ChildHi(e.node, j)
				s.h.Push(scanEntry{score: s.w.Dot(top), sum: top.Sum(), node: t.Child(e.node, j), pt: top})
			}
		}
	}
}

// KSkybandParallel is KSkyband with the frontier sharded across workers
// (workers <= 0 selects GOMAXPROCS). The member sequence is byte-identical
// to KSkyband's.
func KSkybandParallel(tree *rtree.Tree, k, workers int) []Member {
	d := tree.Dim()
	w := make(geom.Vector, d)
	for i := range w {
		w[i] = 1 / float64(d)
	}
	out, _ := KSkybandParallelCtx(context.Background(), tree, w, k, workers) //ordlint:allow senterr — context.Background never cancels, so the error is structurally nil
	return out
}

// KSkybandParallelCtx is KSkybandForCtx with a sharded parallel frontier.
func KSkybandParallelCtx(ctx context.Context, tree *rtree.Tree, w geom.Vector, k, workers int) ([]Member, error) {
	return scanParallel(ctx, tree, w, k, math.Inf(1), workers)
}

// RhoSkybandParallel is RhoSkyband with the frontier sharded across
// workers (workers <= 0 selects GOMAXPROCS). The member sequence is
// byte-identical to RhoSkyband's.
func RhoSkybandParallel(tree *rtree.Tree, w geom.Vector, k int, rho float64, workers int) []Member {
	out, _ := RhoSkybandParallelCtx(context.Background(), tree, w, k, rho, workers) //ordlint:allow senterr — context.Background never cancels, so the error is structurally nil
	return out
}

// RhoSkybandParallelCtx is RhoSkybandCtx with a sharded parallel frontier.
func RhoSkybandParallelCtx(ctx context.Context, tree *rtree.Tree, w geom.Vector, k int, rho float64, workers int) ([]Member, error) {
	return scanParallel(ctx, tree, w, k, rho, workers)
}

// scanParallel is the shared driver: shard the root's children, run the
// shard scans concurrently, and k-way-merge their streams under the
// authoritative pruner. rho = +Inf selects plain k-dominance.
func scanParallel(ctx context.Context, tree *rtree.Tree, w geom.Vector, k int, rho float64, workers int) ([]Member, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	root := tree.Root()
	if workers == 1 || root == rtree.NilNode || tree.Level(root) == 0 {
		// Nothing to shard: a single worker, an empty tree, or a root leaf.
		if math.IsInf(rho, 1) {
			return KSkybandForCtx(ctx, tree, w, k)
		}
		return RhoSkybandCtx(ctx, tree, w, k, rho)
	}
	rootCnt := tree.Count(root)
	nshards := workers
	if rootCnt < nshards {
		nshards = rootCnt
	}
	var snap atomic.Pointer[pruneSnap]
	snap.Store(&pruneSnap{k: k, w: w, rho: rho})
	done := make(chan struct{})
	defer close(done)
	shards := make([]*shardScan, nshards)
	for i := range shards {
		shards[i] = &shardScan{tree: tree, w: w, snap: &snap, out: make(chan scanEntry, 64), done: done}
	}
	for j := 0; j < rootCnt; j++ {
		top := tree.ChildHi(root, j)
		sh := shards[j%nshards]
		sh.h.Push(scanEntry{score: w.Dot(top), sum: top.Sum(), node: tree.Child(root, j), pt: top})
	}
	for _, sh := range shards {
		go sh.run()
	}
	// K-way merge: repeatedly emit the earliest head in scanEntry order.
	// Each shard stream is itself ordered, so the merged sequence is the
	// sequential scan's emission order exactly.
	heads := make([]scanEntry, nshards)
	live := make([]bool, nshards)
	for i, sh := range shards {
		if e, ok := <-sh.out; ok {
			heads[i], live[i] = e, true
		}
	}
	auth := pruneSnap{k: k, w: w, rho: rho}
	var authWS Workspace
	var out []Member
	for i := 0; ; i++ {
		if i%64 == 0 {
			select {
			case <-ctx.Done():
				return nil, fmt.Errorf("skyband: retrieval cancelled: %w", ctx.Err())
			default:
			}
		}
		best := -1
		for s := range heads {
			if live[s] && (best < 0 || heads[s].Less(heads[best])) {
				best = s
			}
		}
		if best < 0 {
			return out, nil
		}
		e := heads[best]
		if next, ok := <-shards[best].out; ok {
			heads[best] = next
		} else {
			live[best] = false
		}
		if auth.prune(e.pt, &authWS) {
			continue
		}
		// The published copy shares auth.recs' backing array, but its slice
		// header pins the length at publication time: this append writes
		// only past that pinned prefix (or relocates into a fresh array),
		// so concurrent snapshot readers never observe the write.
		//ordlint:allow atomicpub — append-only past the published prefix; the snapshot's slice header freezes its visible length
		auth.recs = append(auth.recs, e.pt)
		out = append(out, Member{ID: e.id, Point: e.pt})
		if len(auth.recs)%32 == 0 {
			// Publish the grown record prefix for worker pre-pruning. The
			// published slice header pins the prefix length; later appends
			// only ever write past it, so readers race with nothing.
			published := auth
			snap.Store(&published)
		}
	}
}
