package skyband

import (
	"math"
	"math/rand"
	"testing"

	"ordu/internal/geom"
	"ordu/internal/qp"
)

// qpProject is the general-solver reference for projectTieSimplex: the exact
// problem MindistWS's fallback used before the specialized active set.
func qpProject(w, a geom.Vector) (float64, bool) {
	d := len(w)
	var ws qp.Workspace
	var pr qp.Problem
	pr.P = w
	pr.EqA = [][]float64{geom.SimplexOnes(d), a}
	pr.EqB = []float64{1, 0}
	pr.InA = geom.SimplexAxes(d)
	pr.InB = geom.SimplexZeros(d)
	_, dist, err := ws.Solve(&pr)
	return dist, err == nil
}

// TestProjectTieSimplexMatchesQP cross-validates the specialized projection
// against the general Goldfarb-Idnani solver on randomized instances across
// dimensions, including heavy-tie quantized coordinates.
func TestProjectTieSimplexMatchesQP(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	var ws Workspace
	for trial := 0; trial < 5000; trial++ {
		d := 2 + rng.Intn(6)
		w := make(geom.Vector, d)
		sum := 0.0
		for i := range w {
			w[i] = rng.Float64() + 1e-3
			sum += w[i]
		}
		for i := range w {
			w[i] /= sum
		}
		a := make(geom.Vector, d)
		pos, neg := false, false
		for i := range a {
			if trial%3 == 0 {
				a[i] = float64(rng.Intn(7)-3) / 4 // quantized: exact ties and zeros
			} else {
				a[i] = rng.NormFloat64()
			}
			pos = pos || a[i] > 0
			neg = neg || a[i] < 0
		}
		if !pos || !neg {
			continue // infeasible instances are screened out before projection
		}
		got, ok := projectTieSimplex(w, a, &ws)
		if !ok {
			continue // fallback path; correctness covered by the QP solver
		}
		want, wok := qpProject(w, a)
		if !wok {
			t.Fatalf("trial %d: QP infeasible on mixed-sign a=%v", trial, a)
		}
		if math.Abs(got-want) > 1e-8*(1+want) {
			t.Fatalf("trial %d: projectTieSimplex=%.12g qp=%.12g (w=%v a=%v)", trial, got, want, w, a)
		}
	}
}

// TestProjectTieSimplexNoFallback pins that the specialized projection
// actually handles the overwhelming share of feasible instances itself —
// the speedup depends on the general solver staying cold.
func TestProjectTieSimplexNoFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	var ws Workspace
	total, solved := 0, 0
	for trial := 0; trial < 3000; trial++ {
		d := 2 + rng.Intn(6)
		w := make(geom.Vector, d)
		for i := range w {
			w[i] = rng.Float64() + 1e-3
		}
		a := make(geom.Vector, d)
		pos, neg := false, false
		for i := range a {
			a[i] = rng.NormFloat64()
			pos = pos || a[i] > 0
			neg = neg || a[i] < 0
		}
		if !pos || !neg {
			continue
		}
		total++
		if _, ok := projectTieSimplex(w, a, &ws); ok {
			solved++
		}
	}
	if solved*100 < total*99 {
		t.Fatalf("active set solved %d/%d (<99%%)", solved, total)
	}
}
