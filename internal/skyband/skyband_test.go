package skyband

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"ordu/internal/geom"
	"ordu/internal/rtree"
)

func randPoints(rng *rand.Rand, n, d int) []geom.Vector {
	pts := make([]geom.Vector, n)
	for i := range pts {
		p := make(geom.Vector, d)
		for j := range p {
			p[j] = rng.Float64()
		}
		pts[i] = p
	}
	return pts
}

// bruteKSkyband is the O(n^2) reference.
func bruteKSkyband(pts []geom.Vector, k int) map[int]bool {
	out := map[int]bool{}
	for i, p := range pts {
		dom := 0
		for j, q := range pts {
			if i != j && q.Dominates(p) {
				dom++
			}
		}
		if dom < k {
			out[i] = true
		}
	}
	return out
}

// bruteRhoSkyband counts rho-dominators exhaustively.
func bruteRhoSkyband(w geom.Vector, pts []geom.Vector, k int, rho float64) map[int]bool {
	out := map[int]bool{}
	for i, p := range pts {
		dom := 0
		si := p.Dot(w)
		for j, q := range pts {
			if i == j {
				continue
			}
			if q.Dot(w) > si && Mindist(w, p, q) >= rho {
				dom++
			} else if q.Dot(w) == si && q.Dominates(p) {
				dom++
			}
		}
		if dom < k {
			out[i] = true
		}
	}
	return out
}

func idsOf(ms []Member) []int {
	ids := make([]int, len(ms))
	for i, m := range ms {
		ids[i] = m.ID
	}
	sort.Ints(ids)
	return ids
}

func sameSet(t *testing.T, got []int, want map[int]bool, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d records, want %d", label, len(got), len(want))
	}
	for _, id := range got {
		if !want[id] {
			t.Fatalf("%s: unexpected id %d", label, id)
		}
	}
}

func TestKSkybandMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, d := range []int{2, 3, 4} {
		for _, k := range []int{1, 3, 5} {
			pts := randPoints(rng, 300, d)
			tr := rtree.BulkLoad(pts)
			got := idsOf(KSkyband(tr, k))
			want := bruteKSkyband(pts, k)
			sameSet(t, got, want, "k-skyband")
		}
	}
}

func TestKSkybandScoreOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	pts := randPoints(rng, 500, 3)
	tr := rtree.BulkLoad(pts)
	w := geom.Vector{0.2, 0.5, 0.3}
	ms := KSkybandFor(tr, w, 4)
	for i := 1; i < len(ms); i++ {
		if ms[i].Point.Dot(w) > ms[i-1].Point.Dot(w)+1e-12 {
			t.Fatalf("emission not in decreasing score order at %d", i)
		}
	}
}

func TestMindistAgainstSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 200; iter++ {
		d := 2 + rng.Intn(4)
		w := geom.RandSimplex(rng, d)
		ri := geom.Vector(randPoints(rng, 1, d)[0])
		rj := geom.Vector(randPoints(rng, 1, d)[0])
		if rj.Dot(w) < ri.Dot(w) {
			ri, rj = rj, ri
		}
		md := Mindist(w, ri, rj)
		if math.IsInf(md, 1) {
			// rj must outscore ri for every sampled vector.
			for s := 0; s < 2000; s++ {
				v := geom.RandSimplex(rng, d)
				if ri.Dot(v) > rj.Dot(v)+1e-12 {
					t.Fatalf("iter %d: mindist=Inf but ri wins at %v", iter, v)
				}
			}
			continue
		}
		// Within radius md (minus slack), rj must outscore ri.
		for s := 0; s < 2000; s++ {
			v := geom.RandSimplex(rng, d)
			if v.Dist(w) < md-1e-9 && ri.Dot(v) > rj.Dot(v)+1e-12 {
				t.Fatalf("iter %d: ri outscores rj at dist %g < mindist %g",
					iter, v.Dist(w), md)
			}
		}
		// There must be a tie point at distance ~md: verify via dense
		// sampling that some vector close to distance md has a near-tie.
		// (Weaker check: mindist is not absurdly large.)
		if md > geom.MaxSimplexDist(w)+1e-9 {
			t.Fatalf("iter %d: mindist %g exceeds domain diameter", iter, md)
		}
	}
}

func TestMindistDominance(t *testing.T) {
	w := geom.Vector{0.5, 0.5}
	ri := geom.Vector{0.2, 0.3}
	rj := geom.Vector{0.4, 0.5}
	if !math.IsInf(Mindist(w, ri, rj), 1) {
		t.Error("dominating record must have infinite mindist")
	}
}

func TestMindistHandComputed(t *testing.T) {
	// d=2: records (1,0) and (0,1). Tie at v=(0.5,0.5).
	// From w=(0.7,0.3): ri=(0,1) scores 0.3, rj=(1,0) scores 0.7.
	w := geom.Vector{0.7, 0.3}
	ri := geom.Vector{0, 1}
	rj := geom.Vector{1, 0}
	want := w.Dist(geom.Vector{0.5, 0.5})
	if got := Mindist(w, ri, rj); math.Abs(got-want) > 1e-9 {
		t.Errorf("Mindist = %g, want %g", got, want)
	}
}

func TestInflectionRadius(t *testing.T) {
	inf := math.Inf(1)
	cases := []struct {
		mindists []float64
		k        int
		want     float64
	}{
		{[]float64{}, 1, 0},
		{[]float64{0.5}, 2, 0},
		{[]float64{0.5}, 1, 0.5},
		{[]float64{0.1, 0.3, 0.2}, 1, 0.3},
		{[]float64{0.1, 0.3, 0.2}, 2, 0.2},
		{[]float64{0.1, 0.3, 0.2}, 3, 0.1},
		{[]float64{inf, 0.4}, 1, inf},
		{[]float64{inf, 0.4}, 2, 0.4},
	}
	for _, c := range cases {
		if got := InflectionRadius(c.mindists, c.k); got != c.want {
			t.Errorf("InflectionRadius(%v, %d) = %g, want %g", c.mindists, c.k, got, c.want)
		}
	}
}

func TestRhoSkybandExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	pts := randPoints(rng, 400, 3)
	tr := rtree.BulkLoad(pts)
	w := geom.RandSimplex(rng, 3)
	k := 5

	// rho = 0 gives exactly the top-k.
	got := idsOf(RhoSkyband(tr, w, k, 0))
	scores := make([]float64, len(pts))
	for i, p := range pts {
		scores[i] = p.Dot(w)
	}
	order := make([]int, len(pts))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return scores[order[i]] > scores[order[j]] })
	want := map[int]bool{}
	for _, id := range order[:k] {
		want[id] = true
	}
	sameSet(t, got, want, "rho=0 skyband vs top-k")

	// rho = +Inf gives the whole k-skyband.
	got = idsOf(RhoSkyband(tr, w, k, math.Inf(1)))
	sameSet(t, got, bruteKSkyband(pts, k), "rho=Inf skyband vs k-skyband")
}

func TestRhoSkybandMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	for iter := 0; iter < 6; iter++ {
		d := 2 + iter%3
		pts := randPoints(rng, 150, d)
		tr := rtree.BulkLoad(pts)
		w := geom.RandSimplex(rng, d)
		k := 1 + iter%3
		rho := 0.05 + 0.1*rng.Float64()
		got := idsOf(RhoSkyband(tr, w, k, rho))
		want := bruteRhoSkyband(w, pts, k, rho)
		sameSet(t, got, want, "rho-skyband vs brute")
	}
}

func TestRhoSkybandMonotonicInRho(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	pts := randPoints(rng, 300, 3)
	tr := rtree.BulkLoad(pts)
	w := geom.RandSimplex(rng, 3)
	prev := map[int]bool{}
	first := true
	for _, rho := range []float64{0, 0.02, 0.05, 0.1, 0.2, 0.5, 1} {
		cur := map[int]bool{}
		for _, m := range RhoSkyband(tr, w, 3, rho) {
			cur[m.ID] = true
		}
		if !first {
			for id := range prev {
				if !cur[id] {
					t.Fatalf("rho-skyband not monotone: id %d lost at rho=%g", id, rho)
				}
			}
		}
		prev, first = cur, false
	}
}

func TestIRDOrderAndCompleteness(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	for iter := 0; iter < 4; iter++ {
		d := 2 + iter%3
		k := 1 + iter
		pts := randPoints(rng, 200, d)
		tr := rtree.BulkLoad(pts)
		w := geom.RandSimplex(rng, d)

		ird := NewIRD(tr, w, k)
		var rel []Released
		for {
			r, ok := ird.Next()
			if !ok {
				break
			}
			rel = append(rel, r)
		}
		// Released radii must be non-decreasing.
		for i := 1; i < len(rel); i++ {
			if rel[i].Radius < rel[i-1].Radius-1e-12 {
				t.Fatalf("IRD radii not sorted: %g before %g", rel[i-1].Radius, rel[i].Radius)
			}
		}
		// The released set must be exactly the k-skyband.
		want := bruteKSkyband(pts, k)
		ids := make([]int, len(rel))
		for i, r := range rel {
			ids[i] = r.ID
		}
		sort.Ints(ids)
		sameSet(t, ids, want, "IRD releases vs k-skyband")
		// Radii must match the brute-force inflection radii.
		for _, r := range rel {
			var mds []float64
			si := r.Point.Dot(w)
			for j, q := range pts {
				if j == r.ID {
					continue
				}
				if q.Dot(w) > si {
					mds = append(mds, Mindist(w, r.Point, q))
				}
			}
			want := InflectionRadius(mds, k)
			if math.Abs(want-r.Radius) > 1e-9 {
				t.Fatalf("IRD radius for id %d = %g, brute = %g", r.ID, r.Radius, want)
			}
		}
	}
}

func TestIRDPrefixProperty(t *testing.T) {
	// The first j releases must form the rho-skyband for the j-th radius.
	rng := rand.New(rand.NewSource(28))
	pts := randPoints(rng, 250, 3)
	tr := rtree.BulkLoad(pts)
	w := geom.RandSimplex(rng, 3)
	k := 3
	ird := NewIRD(tr, w, k)
	var rel []Released
	for i := 0; i < 30; i++ {
		r, ok := ird.Next()
		if !ok {
			break
		}
		rel = append(rel, r)
	}
	if len(rel) < 10 {
		t.Fatalf("too few releases: %d", len(rel))
	}
	j := 10
	// Membership starts strictly past the inflection radius (at the radius
	// itself the k-th dominating interval still covers it), so probe just
	// above the release radius.
	rho := rel[j-1].Radius*(1+1e-9) + 1e-12
	want := bruteRhoSkyband(w, pts, k, rho)
	// All releases with radius <= rho must be in want and vice versa.
	got := map[int]bool{}
	for _, r := range rel[:j] {
		got[r.ID] = true
	}
	// There may be ties at radius rho; allow got to be a subset of want
	// with |want| >= j, and require every got member in want.
	if len(want) < j {
		t.Fatalf("rho-skyband at release radius has %d < %d records", len(want), j)
	}
	for id := range got {
		if !want[id] {
			t.Fatalf("released id %d not in rho-skyband at its radius", id)
		}
	}
}

func TestScannerVisitsAllWithoutPruner(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	pts := randPoints(rng, 100, 2)
	tr := rtree.BulkLoad(pts)
	w := geom.Vector{0.6, 0.4}
	sc := NewScanner(tr, w)
	var prev float64 = math.Inf(1)
	count := 0
	for {
		_, p, ok := sc.Next(nil)
		if !ok {
			break
		}
		s := p.Dot(w)
		if s > prev+1e-12 {
			t.Fatal("scanner emitted out of score order")
		}
		prev = s
		count++
	}
	if count != len(pts) {
		t.Fatalf("scanner emitted %d of %d", count, len(pts))
	}
}

func TestRhoDominates(t *testing.T) {
	w := geom.Vector{0.5, 0.5}
	hi := geom.Vector{0.9, 0.8}
	lo := geom.Vector{0.1, 0.2}
	if !RhoDominates(w, hi, lo, 0.1) {
		t.Error("dominating record must rho-dominate at any radius")
	}
	if RhoDominates(w, lo, hi, 0.1) {
		t.Error("lower-scoring record cannot rho-dominate")
	}
	// Incomparable pair: (1,0) vs (0.4,0.55): scores 0.5 vs 0.475.
	a := geom.Vector{1, 0}
	b := geom.Vector{0.4, 0.55}
	md := Mindist(w, b, a)
	if !RhoDominates(w, a, b, md-1e-9) {
		t.Error("should dominate below mindist")
	}
	if RhoDominates(w, a, b, md+1e-6) {
		t.Error("should not dominate above mindist")
	}
}
