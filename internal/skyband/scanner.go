package skyband

import (
	"ordu/internal/geom"
	"ordu/internal/rtree"
	"ordu/internal/xheap"
)

// Pruner decides whether a candidate point (a record, or the top corner of
// an index node, which score-bounds its whole subtree) can be excluded from
// a progressive scan. BBS's correctness requires only that a pruned point
// could never belong to the result, given the records emitted so far.
type Pruner interface {
	Prune(p geom.Vector) bool
}

// scanEntry is one element of the branch-and-bound heap: an index node or a
// record, keyed by the (upper bound of) score for the scan's seed vector.
type scanEntry struct {
	score float64
	sum   float64 // coordinate sum; breaks score ties so that a dominating
	// record is always popped before the record it dominates
	node rtree.NodeRef // NilNode for records
	id   int
	pt   geom.Vector // record point, or node top corner
	seq  uint64
}

// Less orders the scan max-heap: higher score first, larger coordinate sum
// on ties (typed xheap element, no per-push boxing). The remaining keys —
// lexicographically larger point, then nodes before records, then smaller
// id — extend the comparison to a strict total order on records, so the
// emission sequence of a scan is a property of the dataset alone, not of
// heap internals. That is what lets the sharded parallel frontier
// (parallel.go) merge per-subtree streams back into the exact sequential
// order: a node always sorts no later than anything in its subtree (its
// top corner weakly dominates every descendant point), so each shard's
// record stream is already emitted in this total order.
func (e scanEntry) Less(o scanEntry) bool {
	if e.score != o.score { //ordlint:allow floatcmp — tie-break on stored keys
		return e.score > o.score
	}
	if e.sum != o.sum { //ordlint:allow floatcmp — tie-break on stored keys
		return e.sum > o.sum
	}
	for j := range e.pt {
		if e.pt[j] != o.pt[j] { //ordlint:allow floatcmp — tie-break on stored keys
			return e.pt[j] > o.pt[j]
		}
	}
	if (e.node == rtree.NilNode) != (o.node == rtree.NilNode) {
		// A node whose top corner coincides with a record's point must be
		// expanded first, so the record emission sequence never runs ahead
		// of an unexpanded subtree with an equal bound.
		return o.node == rtree.NilNode
	}
	return e.id < o.id
}

// Scanner is the paper's amended BBS (Sections 4.2, 5.3.2): it visits index
// nodes and records in decreasing (upper bound of) score for the seed w,
// using a max-heap, and emits the records that survive a caller-supplied
// pruner. The visiting order guarantees that no record emitted later can
// dominate (or rho-dominate, for any rho) one emitted earlier, which is the
// property BBS's correctness rests on.
type Scanner struct {
	tree    *rtree.Tree
	w       geom.Vector
	h       xheap.Heap[scanEntry]
	seq     uint64
	visited int // heap pops, for instrumentation

	// Observers, used by IRD to maintain lower-bound inflection radii for
	// the not-yet-considered part of the dataset (set S in the paper).
	onPush func(e *scanEntry)
	onPop  func(e *scanEntry)
}

// NewScanner starts a scan of tree in decreasing score order for w.
func NewScanner(tree *rtree.Tree, w geom.Vector) *Scanner {
	s := &Scanner{tree: tree, w: w}
	if root := tree.Root(); root != rtree.NilNode {
		b, _ := tree.Bounds()
		s.pushNode(root, b.TopCorner())
	}
	return s
}

func (s *Scanner) push(e scanEntry) {
	e.seq = s.seq
	s.seq++
	s.h.Push(e)
	if s.onPush != nil {
		s.onPush(&e)
	}
}

func (s *Scanner) pushNode(n rtree.NodeRef, top geom.Vector) {
	s.push(scanEntry{score: s.w.Dot(top), sum: top.Sum(), node: n, pt: top})
}

func (s *Scanner) pushRecord(id int, p geom.Vector) {
	s.push(scanEntry{score: s.w.Dot(p), sum: p.Sum(), node: rtree.NilNode, id: id, pt: p})
}

// Next returns the next surviving record in decreasing score order. The
// pruner may be nil, in which case every record is emitted (that is BBR's
// ranked retrieval). ok is false when the scan is exhausted. The returned
// point aliases the tree's storage (no copy is made); it stays valid for
// the lifetime of the tree and must be copied if retained beyond it.
func (s *Scanner) Next(pruner Pruner) (id int, p geom.Vector, ok bool) {
	for s.h.Len() > 0 {
		e := s.h.Pop()
		s.visited++
		if s.onPop != nil {
			s.onPop(&e)
		}
		if pruner != nil && pruner.Prune(e.pt) {
			continue
		}
		if e.node == rtree.NilNode {
			return e.id, e.pt, true
		}
		t := s.tree
		cnt := t.Count(e.node)
		if t.Level(e.node) == 0 {
			for i := 0; i < cnt; i++ {
				s.pushRecord(t.LeafID(e.node, i), t.LeafPoint(e.node, i))
			}
		} else {
			for i := 0; i < cnt; i++ {
				s.pushNode(t.Child(e.node, i), t.ChildHi(e.node, i))
			}
		}
	}
	return 0, nil, false
}

// Visited returns the number of heap pops performed, a proxy for I/O in
// the paper's disk-based analysis.
func (s *Scanner) Visited() int { return s.visited }

// Exhausted reports whether the scan has no remaining entries.
func (s *Scanner) Exhausted() bool { return s.h.Len() == 0 }
