package skyband

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"ordu/internal/geom"
	"ordu/internal/rtree"
)

func randSimplexSeed(rng *rand.Rand, d int) geom.Vector {
	w := make(geom.Vector, d)
	sum := 0.0
	for i := range w {
		w[i] = 0.05 + rng.Float64()
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// liveOracleBand computes the rho-skyband straight from the pairwise
// definition — the oracle the incremental paths must match exactly.
func liveOracleBand(tree *rtree.Tree, w geom.Vector, k int, rho float64) []Member {
	b, ok := tree.Bounds()
	if !ok {
		return nil
	}
	ids := tree.RangeQuery(b)
	sort.Ints(ids)
	var out []Member
	for _, y := range ids {
		py, _ := tree.Point(y)
		count := 0
		for _, x := range ids {
			if x == y {
				continue
			}
			px, _ := tree.Point(x)
			if RhoDominates(w, px, py, rho) {
				count++
				if count >= k {
					break
				}
			}
		}
		if count < k {
			out = append(out, Member{ID: y, Point: py})
		}
	}
	return out
}

func requireSameMembers(t *testing.T, tag string, got, want []Member) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d members, want %d\ngot  %v\nwant %v", tag, len(got), len(want), memberIDs(got), memberIDs(want))
	}
	for i := range got {
		if got[i].ID != want[i].ID || !got[i].Point.Equal(want[i].Point) {
			t.Fatalf("%s: member %d = {%d %v}, want {%d %v}", tag, i, got[i].ID, got[i].Point, want[i].ID, want[i].Point)
		}
	}
}

func memberIDs(ms []Member) []int {
	ids := make([]int, len(ms))
	for i, m := range ms {
		ids[i] = m.ID
	}
	return ids
}

func sortMembersByID(ms []Member) []Member {
	out := append([]Member(nil), ms...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// TestLiveMatchesRecomputeUnderMutation drives randomized interleaved
// insert/delete/update sequences and demands, after every batch, that the
// incrementally maintained band is identical — ids and coordinates — to
// (a) the pairwise-definition brute force, (b) a from-scratch rebuild, and
// (c) the scan-based RhoSkyband retrieval.
func TestLiveMatchesRecomputeUnderMutation(t *testing.T) {
	cases := []struct {
		d, k int
		rho  float64
	}{
		{2, 1, 0.05},
		{2, 3, 0.02},
		{3, 2, 0.03},
		{4, 3, 0.02},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("d%d_k%d", tc.d, tc.k), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(tc.d*100 + tc.k)))
			w := randSimplexSeed(rng, tc.d)
			tree := rtree.New(tc.d, rtree.WithFanout(8))
			var ids []int
			nextID := 0
			newPoint := func() geom.Vector {
				p := make(geom.Vector, tc.d)
				for j := range p {
					p[j] = rng.Float64()
				}
				return p
			}
			for i := 0; i < 80; i++ {
				if err := tree.Insert(nextID, newPoint()); err != nil {
					t.Fatal(err)
				}
				ids = append(ids, nextID)
				nextID++
			}
			l, err := NewLive(tree, w, tc.k, tc.rho)
			if err != nil {
				t.Fatal(err)
			}
			for batch := 0; batch < 20; batch++ {
				for op := 0; op < 6; op++ {
					switch r := rng.Intn(10); {
					case r < 4 || len(ids) < 10:
						if err := tree.Insert(nextID, newPoint()); err != nil {
							t.Fatal(err)
						}
						if err := l.OnInsert(nextID); err != nil {
							t.Fatal(err)
						}
						ids = append(ids, nextID)
						nextID++
					case r < 7:
						i := rng.Intn(len(ids))
						id := ids[i]
						if !tree.Delete(id) {
							t.Fatalf("tree.Delete(%d) missing", id)
						}
						if err := l.OnDelete(id); err != nil {
							t.Fatal(err)
						}
						ids[i] = ids[len(ids)-1]
						ids = ids[:len(ids)-1]
					default:
						id := ids[rng.Intn(len(ids))]
						if !tree.Delete(id) {
							t.Fatalf("tree.Delete(%d) missing", id)
						}
						if err := tree.Insert(id, newPoint()); err != nil {
							t.Fatal(err)
						}
						if err := l.OnUpdate(id); err != nil {
							t.Fatal(err)
						}
					}
				}
				got := l.Members()
				requireSameMembers(t, "brute force", got, liveOracleBand(tree, w, tc.k, tc.rho))
				fresh, err := NewLive(tree, w, tc.k, tc.rho)
				if err != nil {
					t.Fatal(err)
				}
				requireSameMembers(t, "from-scratch rebuild", got, fresh.Members())
				scan, err := RhoSkybandCtx(context.Background(), tree, w, tc.k, tc.rho)
				if err != nil {
					t.Fatal(err)
				}
				requireSameMembers(t, "scan retrieval", got, sortMembersByID(scan))
			}
			if l.Recounts() == 0 {
				t.Log("note: no truncated recounts exercised in this run")
			}
		})
	}
}

// TestLiveDeletePromotion deletes the dominators of a deeply dominated
// record one by one: the record must join the band exactly when its
// dominator count drops below k, and every intermediate state must match
// the brute-force oracle (this walks the tracked list through truncation,
// exact shrinking, and promotion).
func TestLiveDeletePromotion(t *testing.T) {
	const d, k = 2, 2
	rho := 0.02
	rng := rand.New(rand.NewSource(42))
	w := geom.Vector{0.5, 0.5}
	tree := rtree.New(d, rtree.WithFanout(8))
	// Victim near the origin, wholesale dominated by a cloud above it.
	victim := 0
	if err := tree.Insert(victim, geom.Vector{0.01, 0.02}); err != nil {
		t.Fatal(err)
	}
	nDoms := 40
	for i := 1; i <= nDoms; i++ {
		p := geom.Vector{0.2 + 0.7*rng.Float64(), 0.2 + 0.7*rng.Float64()}
		if err := tree.Insert(i, p); err != nil {
			t.Fatal(err)
		}
	}
	l, err := NewLive(tree, w, k, rho)
	if err != nil {
		t.Fatal(err)
	}
	if l.Contains(victim) {
		t.Fatal("victim in band despite 40 dominators")
	}
	for i := 1; i <= nDoms; i++ {
		if !tree.Delete(i) {
			t.Fatalf("tree.Delete(%d) missing", i)
		}
		if err := l.OnDelete(i); err != nil {
			t.Fatal(err)
		}
		requireSameMembers(t, fmt.Sprintf("after deleting %d", i), l.Members(), liveOracleBand(tree, w, k, rho))
	}
	if !l.Contains(victim) {
		t.Fatal("victim not in band after all dominators were deleted")
	}
	if l.Recounts() == 0 {
		t.Fatal("dominator drain never exercised a truncated recount")
	}
}

func TestLiveInsertDemotion(t *testing.T) {
	const d, k = 2, 1
	rho := 0.02
	w := geom.Vector{0.5, 0.5}
	tree := rtree.New(d)
	if err := tree.Insert(0, geom.Vector{0.4, 0.4}); err != nil {
		t.Fatal(err)
	}
	l, err := NewLive(tree, w, k, rho)
	if err != nil {
		t.Fatal(err)
	}
	if !l.Contains(0) {
		t.Fatal("singleton not in band")
	}
	// A plainly dominating insert must evict the incumbent immediately.
	if err := tree.Insert(1, geom.Vector{0.6, 0.6}); err != nil {
		t.Fatal(err)
	}
	if err := l.OnInsert(1); err != nil {
		t.Fatal(err)
	}
	if l.Contains(0) || !l.Contains(1) {
		t.Fatalf("band after dominating insert: 0 in %v, 1 in %v", l.Contains(0), l.Contains(1))
	}
}

func TestNewLiveRejectsBadParameters(t *testing.T) {
	tree := rtree.New(2)
	w := geom.Vector{0.5, 0.5}
	for _, tt := range []struct {
		name string
		f    func() (*Live, error)
	}{
		{"nil tree", func() (*Live, error) { return NewLive(nil, w, 1, 0.1) }},
		{"dim mismatch", func() (*Live, error) { return NewLive(tree, geom.Vector{1}, 1, 0.1) }},
		{"negative seed", func() (*Live, error) { return NewLive(tree, geom.Vector{-0.5, 1.5}, 1, 0.1) }},
		{"zero seed", func() (*Live, error) { return NewLive(tree, geom.Vector{0, 0}, 1, 0.1) }},
		{"k zero", func() (*Live, error) { return NewLive(tree, w, 0, 0.1) }},
		{"rho zero", func() (*Live, error) { return NewLive(tree, w, 1, 0) }},
		{"rho negative", func() (*Live, error) { return NewLive(tree, w, 1, -0.5) }},
		{"rho infinite", func() (*Live, error) { return NewLive(tree, w, 1, math.Inf(1)) }},
		{"rho nan", func() (*Live, error) { return NewLive(tree, w, 1, math.NaN()) }},
	} {
		if _, err := tt.f(); !errors.Is(err, ErrLiveParams) {
			t.Errorf("%s: error = %v, want ErrLiveParams", tt.name, err)
		}
	}
}

func TestLiveProtocolErrors(t *testing.T) {
	tree := rtree.New(2)
	if err := tree.Insert(0, geom.Vector{0.5, 0.5}); err != nil {
		t.Fatal(err)
	}
	l, err := NewLive(tree, geom.Vector{0.5, 0.5}, 1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.OnInsert(0); !errors.Is(err, ErrLiveState) {
		t.Errorf("OnInsert of tracked id: %v, want ErrLiveState", err)
	}
	if err := l.OnInsert(99); !errors.Is(err, ErrLiveState) {
		t.Errorf("OnInsert of id missing from tree: %v, want ErrLiveState", err)
	}
	if err := l.OnDelete(0); !errors.Is(err, ErrLiveState) {
		t.Errorf("OnDelete while still in tree: %v, want ErrLiveState", err)
	}
	if err := l.OnDelete(99); !errors.Is(err, ErrLiveState) {
		t.Errorf("OnDelete of untracked id: %v, want ErrLiveState", err)
	}
	if err := l.OnUpdate(99); !errors.Is(err, ErrLiveState) {
		t.Errorf("OnUpdate of untracked id: %v, want ErrLiveState", err)
	}
}
