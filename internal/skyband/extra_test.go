package skyband

import (
	"math"
	"math/rand"
	"testing"

	"ordu/internal/geom"
	"ordu/internal/rtree"
)

// TestIRDLargeK: k larger than the dataset means nothing is ever
// dominated; IRD must release everything at radius 0.
func TestIRDLargeK(t *testing.T) {
	rng := rand.New(rand.NewSource(141))
	pts := randPoints(rng, 30, 3)
	tr := rtree.BulkLoad(pts)
	w := geom.RandSimplex(rng, 3)
	ird := NewIRD(tr, w, 100)
	count := 0
	for {
		r, ok := ird.Next()
		if !ok {
			break
		}
		if r.Radius != 0 {
			t.Fatalf("record %d released at radius %g, want 0", r.ID, r.Radius)
		}
		count++
	}
	if count != len(pts) {
		t.Fatalf("released %d of %d", count, len(pts))
	}
}

// TestIRDEmptyTree: no releases, no hang.
func TestIRDEmptyTree(t *testing.T) {
	tr := rtree.New(2)
	ird := NewIRD(tr, geom.Vector{0.5, 0.5}, 1)
	if _, ok := ird.Next(); ok {
		t.Fatal("empty tree released a record")
	}
}

// TestIRDFetchedCount grows monotonically and bounds the release count.
func TestIRDFetchedCount(t *testing.T) {
	rng := rand.New(rand.NewSource(142))
	pts := randPoints(rng, 200, 3)
	tr := rtree.BulkLoad(pts)
	w := geom.RandSimplex(rng, 3)
	ird := NewIRD(tr, w, 2)
	released := 0
	prevFetched := 0
	for i := 0; i < 20; i++ {
		_, ok := ird.Next()
		if !ok {
			break
		}
		released++
		if ird.FetchedCount() < prevFetched {
			t.Fatal("FetchedCount decreased")
		}
		prevFetched = ird.FetchedCount()
	}
	if ird.FetchedCount() < released {
		t.Fatalf("fetched %d < released %d", ird.FetchedCount(), released)
	}
}

// TestMindistZeroRadiusSemantics: mindist is always >= 0 and a
// higher-scoring record always rho-dominates at radius 0.
func TestMindistZeroRadiusSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(143))
	for i := 0; i < 200; i++ {
		d := 2 + rng.Intn(5)
		w := geom.RandSimplex(rng, d)
		a, b := geom.Vector(randPoints(rng, 1, d)[0]), geom.Vector(randPoints(rng, 1, d)[0])
		if a.Dot(w) < b.Dot(w) {
			a, b = b, a
		}
		md := Mindist(w, b, a)
		if md < 0 {
			t.Fatalf("negative mindist %g", md)
		}
		if a.Dot(w) > b.Dot(w) && !RhoDominates(w, a, b, 0) {
			t.Fatal("higher scorer must dominate at radius 0")
		}
	}
}

// TestScannerObserverHooks: push/pop callbacks fire consistently (every
// pushed entry is eventually popped on a full scan).
func TestScannerObserverHooks(t *testing.T) {
	rng := rand.New(rand.NewSource(144))
	pts := randPoints(rng, 120, 2)
	tr := rtree.BulkLoad(pts)
	w := geom.Vector{0.5, 0.5}
	sc := NewScanner(tr, w)
	pushed, popped := 0, 0
	sc.onPush = func(e *scanEntry) { pushed++ }
	sc.onPop = func(e *scanEntry) { popped++ }
	for {
		if _, _, ok := sc.Next(nil); !ok {
			break
		}
	}
	// The root was pushed before hooks attached; allow off-by-one.
	if popped < pushed || popped > pushed+1 {
		t.Fatalf("pushed %d, popped %d", pushed, popped)
	}
	if sc.Visited() != popped {
		t.Fatalf("Visited %d != popped %d", sc.Visited(), popped)
	}
	if !sc.Exhausted() {
		t.Fatal("scanner not exhausted after full drain")
	}
}

// TestRhoPrunerTightening: shrinking Rho only ever prunes more.
func TestRhoPrunerTightening(t *testing.T) {
	rng := rand.New(rand.NewSource(145))
	d := 3
	w := geom.RandSimplex(rng, d)
	pr := NewRhoPruner(w, 2)
	recs := randPoints(rng, 40, d)
	// Register the higher-scoring half.
	for _, r := range recs[:20] {
		pr.Add(r)
	}
	probe := randPoints(rng, 60, d)
	prunedAt := func(rho float64) int {
		pr.Rho = rho
		count := 0
		for _, p := range probe {
			if p.Dot(w) < 0.3 && pr.Prune(p) { // only clearly-low scorers
				count++
			}
		}
		return count
	}
	loose := prunedAt(0.5)
	tight := prunedAt(0.1)
	if tight < loose {
		t.Fatalf("tighter radius pruned less: %d < %d", tight, loose)
	}
	if pr.Size() != 20 {
		t.Fatalf("Size = %d", pr.Size())
	}
}

// TestKSkybandNestedInK: the k-skyband grows with k.
func TestKSkybandNestedInK(t *testing.T) {
	rng := rand.New(rand.NewSource(146))
	pts := randPoints(rng, 400, 3)
	tr := rtree.BulkLoad(pts)
	prev := map[int]bool{}
	for _, k := range []int{1, 2, 4, 8} {
		cur := map[int]bool{}
		for _, m := range KSkyband(tr, k) {
			cur[m.ID] = true
		}
		for id := range prev {
			if !cur[id] {
				t.Fatalf("skyband not nested: id %d lost at k=%d", id, k)
			}
		}
		if len(cur) <= len(prev) && k > 1 {
			t.Fatalf("skyband did not grow at k=%d", k)
		}
		prev = cur
	}
}

// TestMindistSymmetryOfTie: if two records tie at w, the mindist from w to
// their tie hyperplane is 0 in both directions.
func TestMindistTieAtSeed(t *testing.T) {
	w := geom.Vector{0.5, 0.5}
	a := geom.Vector{0.8, 0.2}
	b := geom.Vector{0.2, 0.8} // same score at w
	if md := Mindist(w, a, b); math.Abs(md) > 1e-9 {
		t.Fatalf("tie mindist = %g", md)
	}
	if md := Mindist(w, b, a); math.Abs(md) > 1e-9 {
		t.Fatalf("tie mindist = %g", md)
	}
}
