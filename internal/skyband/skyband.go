package skyband

import (
	"context"
	"fmt"

	"ordu/internal/geom"
	"ordu/internal/rtree"
)

// Member is a record returned by a skyband computation.
type Member struct {
	ID    int
	Point geom.Vector
}

// KSkyband computes the k-skyband of the indexed dataset with the
// score-ordered BBS variant (visiting entries in decreasing score for a
// strictly positive reference vector, which preserves BBS's correctness
// invariant that no later record can dominate an earlier one). Members are
// returned in decreasing score order for the uniform vector.
func KSkyband(tree *rtree.Tree, k int) []Member {
	d := tree.Dim()
	w := make(geom.Vector, d)
	for i := range w {
		w[i] = 1 / float64(d)
	}
	return KSkybandFor(tree, w, k)
}

// KSkybandFor computes the k-skyband visiting entries in decreasing score
// for the given seed; the result set is independent of the seed, but the
// emission order follows it. The seed's zero components are handled by the
// scanner's coordinate-sum tie-break.
func KSkybandFor(tree *rtree.Tree, w geom.Vector, k int) []Member {
	out, _ := KSkybandForCtx(context.Background(), tree, w, k) //ordlint:allow senterr — context.Background never cancels, so the error is structurally nil
	return out
}

// KSkybandForCtx is KSkybandFor with cooperative cancellation: the retrieval
// polls ctx every few fetches and aborts with an error wrapping ctx.Err()
// once the context is done. A k-skyband scan visits the whole index in the
// worst case, so baselines driving it on behalf of a server request need the
// same deadline responsiveness as the rho-skyband retrieval.
func KSkybandForCtx(ctx context.Context, tree *rtree.Tree, w geom.Vector, k int) ([]Member, error) {
	sc := NewScanner(tree, w)
	pr := NewSkybandPruner(k)
	var out []Member
	for i := 0; ; i++ {
		if i%64 == 0 {
			select {
			case <-ctx.Done():
				return nil, fmt.Errorf("skyband: retrieval cancelled: %w", ctx.Err())
			default:
			}
		}
		id, p, ok := sc.Next(pr)
		if !ok {
			return out, nil
		}
		pr.Add(p)
		out = append(out, Member{ID: id, Point: p})
	}
}

// Skyline computes the traditional skyline (the 1-skyband).
func Skyline(tree *rtree.Tree) []Member {
	return KSkyband(tree, 1)
}

// RhoSkyband computes the rho-skyband for a fixed radius rho around w: the
// records rho-dominated by fewer than k others (Definition of Section 3).
// It is the building block the complete ORD algorithm improves upon, and
// the reference the tests validate ORD against.
func RhoSkyband(tree *rtree.Tree, w geom.Vector, k int, rho float64) []Member {
	out, _ := RhoSkybandCtx(context.Background(), tree, w, k, rho) //ordlint:allow senterr — context.Background never cancels, so the error is structurally nil
	return out
}

// RhoSkybandCtx is RhoSkyband with cooperative cancellation: the retrieval
// polls ctx every few fetches and aborts with an error wrapping ctx.Err()
// once the context is done. The rho-skyband can hold a large fraction of an
// anticorrelated dataset, making this the longest single phase of ORU — the
// polling keeps per-request deadlines responsive.
func RhoSkybandCtx(ctx context.Context, tree *rtree.Tree, w geom.Vector, k int, rho float64) ([]Member, error) {
	sc := NewScanner(tree, w)
	pr := NewRhoPruner(w, k)
	pr.Rho = rho
	var out []Member
	for i := 0; ; i++ {
		if i%64 == 0 {
			select {
			case <-ctx.Done():
				return nil, fmt.Errorf("skyband: retrieval cancelled: %w", ctx.Err())
			default:
			}
		}
		id, p, ok := sc.Next(pr)
		if !ok {
			return out, nil
		}
		pr.Add(p)
		out = append(out, Member{ID: id, Point: p})
	}
}
