package skyband

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"ordu/internal/geom"
	"ordu/internal/rtree"
)

// TestKSkybandParallelByteIdentical requires the sharded frontier to emit
// exactly the sequential member sequence — ids, points and order — on
// tie-heavy quantized datasets, across worker counts that exercise the
// round-robin sharding (fewer, equal, and more shards than root children).
func TestKSkybandParallelByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for _, cfg := range []struct{ n, d, levels, k int }{
		{400, 2, 8, 1},
		{1500, 3, 6, 2},
		{900, 4, 4, 3},
		{2500, 5, 16, 4},
	} {
		pts := tiePoints(rng, cfg.n, cfg.d, cfg.levels)
		tree := rtree.BulkLoad(pts)
		want := KSkyband(tree, cfg.k)
		for _, workers := range []int{2, 3, 7, 64} {
			got := KSkybandParallel(tree, cfg.k, workers)
			if len(got) != len(want) {
				t.Fatalf("n=%d d=%d k=%d workers=%d: %d members vs sequential %d",
					cfg.n, cfg.d, cfg.k, workers, len(got), len(want))
			}
			for i := range got {
				if got[i].ID != want[i].ID || !got[i].Point.Equal(want[i].Point) {
					t.Fatalf("n=%d d=%d k=%d workers=%d member %d: (%d,%v) vs sequential (%d,%v)",
						cfg.n, cfg.d, cfg.k, workers, i, got[i].ID, got[i].Point, want[i].ID, want[i].Point)
				}
			}
		}
	}
}

// TestRhoSkybandParallelByteIdentical repeats the byte-identity check for
// the rho-dominance pruner, whose QP mindist calls are what the per-worker
// workspaces exist for.
func TestRhoSkybandParallelByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	pts := tiePoints(rng, 1100, 3, 12)
	tree := rtree.BulkLoad(pts)
	w := geom.Vector{0.5, 0.3, 0.2}
	for _, rho := range []float64{0.05, 0.2} {
		rho := rho
		t.Run(fmt.Sprintf("rho=%v", rho), func(t *testing.T) {
			want := RhoSkyband(tree, w, 3, rho)
			for _, workers := range []int{2, 4} {
				got := RhoSkybandParallel(tree, w, 3, rho, workers)
				if len(got) != len(want) {
					t.Fatalf("workers=%d: %d members vs sequential %d", workers, len(got), len(want))
				}
				for i := range got {
					if got[i].ID != want[i].ID || !got[i].Point.Equal(want[i].Point) {
						t.Fatalf("workers=%d member %d: (%d,%v) vs sequential (%d,%v)",
							workers, i, got[i].ID, got[i].Point, want[i].ID, want[i].Point)
					}
				}
			}
		})
	}
}

// TestParallelSmallTreeFallback covers the degenerate shapes the sharding
// cannot split: empty tree, root leaf, and single worker.
func TestParallelSmallTreeFallback(t *testing.T) {
	if got := KSkybandParallel(rtree.BulkLoad(nil), 2, 4); len(got) != 0 {
		t.Fatalf("empty tree: %d members", len(got))
	}
	rng := rand.New(rand.NewSource(97))
	pts := tiePoints(rng, 9, 2, 8) // fits one leaf: root is level 0
	tree := rtree.BulkLoad(pts)
	want := KSkyband(tree, 2)
	for _, workers := range []int{1, 4} {
		got := KSkybandParallel(tree, 2, workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d members vs sequential %d", workers, len(got), len(want))
		}
		for i := range got {
			if got[i].ID != want[i].ID {
				t.Fatalf("workers=%d member %d: id %d vs %d", workers, i, got[i].ID, want[i].ID)
			}
		}
	}
}

// TestParallelCancelled verifies the merge goroutine honours context
// cancellation and that the worker teardown path (done channel) does not
// leak or deadlock.
func TestParallelCancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	pts := tiePoints(rng, 3000, 3, 32)
	tree := rtree.BulkLoad(pts)
	w := geom.Vector{0.4, 0.35, 0.25}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := KSkybandParallelCtx(ctx, tree, w, 2, 4); err == nil {
		t.Fatal("cancelled context: expected error")
	}
	if _, err := RhoSkybandParallelCtx(ctx, tree, w, 2, 0.1, 4); err == nil {
		t.Fatal("cancelled context: expected error")
	}
}
