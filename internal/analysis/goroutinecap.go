package analysis

import (
	"go/ast"
	"go/types"
)

// NewGoroutinecap builds the goroutinecap analyzer: inside the configured
// packages, a goroutine must not share a non-synchronized workspace,
// builder, or pooled node with other goroutines. Two patterns are flagged:
//
//   - a goroutine closure that captures a workspace/pooled variable (or
//     reaches one through a captured selector chain), and
//   - a go statement inside a loop whose call passes the same
//     workspace/pooled value on every iteration.
//
// The sanctioned idioms stay quiet: passing per-iteration values as
// arguments (go f(i, n) where n is the loop variable) and indexing into a
// per-worker slice (wss[i]) both carry an index or loop-local root.
func NewGoroutinecap(pkgs map[string]bool, pooled map[string]bool, wsPkg func(pkgPath string) bool) *Analyzer {
	a := &Analyzer{
		Name:  "goroutinecap",
		Doc:   "goroutines must not share non-synchronized workspaces, builders, or pooled nodes; use per-worker slots or per-iteration arguments",
		Layer: "cfg",
	}
	a.Run = func(pass *Pass) {
		if !pkgs[pass.PkgPath] {
			return
		}
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				checkGoroutines(pass, pooled, wsPkg, fn)
			}
		}
	}
	return a
}

// hazardType reports whether t (possibly behind a pointer) is a workspace
// or pooled type.
func hazardType(tr *originTracker, pooled map[string]bool, t types.Type) bool {
	if t == nil {
		return false
	}
	if tr.isWS(t) {
		return true
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return pooled[named.Obj().Pkg().Path()+"."+named.Obj().Name()]
}

// selectorRoot walks a pure selector chain to its base identifier. Chains
// that pass through an index, slice, call, or dereference of an index are
// treated as rootless (those are the per-worker-slot idioms).
func selectorRoot(e ast.Expr) *ast.Ident {
	for {
		e = ast.Unparen(e)
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func checkGoroutines(pass *Pass, pooled map[string]bool, wsPkg func(string) bool, fn *ast.FuncDecl) {
	tr := newOriginTracker(pass, pass.Facts, wsPkg, fn.Body)

	// loopOf maps each go statement to its innermost enclosing for/range
	// loop extent, if any.
	type extent struct{ pos, end int }
	var loops []extent
	var gos []struct {
		stmt *ast.GoStmt
		loop extent
	}
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch s := m.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				if m != n {
					loops = append(loops, extent{int(m.Pos()), int(m.End())})
					walk(m)
					loops = loops[:len(loops)-1]
					return false
				}
			case *ast.GoStmt:
				g := struct {
					stmt *ast.GoStmt
					loop extent
				}{stmt: s}
				if len(loops) > 0 {
					g.loop = loops[len(loops)-1]
				}
				gos = append(gos, g)
			}
			return true
		})
	}
	walk(fn.Body)

	for _, g := range gos {
		call := g.stmt.Call
		if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
			checkCapture(pass, tr, pooled, lit)
		}
		// Arguments (and a method receiver) are evaluated in the spawning
		// goroutine; inside a loop, a loop-invariant workspace argument is
		// the same object handed to every worker.
		if g.loop.pos == 0 {
			continue
		}
		args := call.Args
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			args = append([]ast.Expr{sel.X}, args...)
		}
		for _, arg := range args {
			if !hazardType(tr, pooled, tr.typeOf(arg)) {
				continue
			}
			root := selectorRoot(arg)
			if root == nil {
				continue // indexed per-worker slot
			}
			obj := tr.objOf(root)
			if obj == nil {
				continue
			}
			if int(obj.Pos()) >= g.loop.pos && int(obj.Pos()) < g.loop.end {
				continue // per-iteration value (loop variable or loop-local)
			}
			pass.Report(arg.Pos(),
				"go statement in a loop passes the same %s to every goroutine; give each worker its own (per-worker slice or per-iteration value)",
				types.TypeString(tr.typeOf(arg), nil))
		}
	}
}

// checkCapture flags workspace/pooled values reached from inside a
// goroutine closure through captured variables.
func checkCapture(pass *Pass, tr *originTracker, pooled map[string]bool, lit *ast.FuncLit) {
	captured := func(id *ast.Ident) bool {
		obj := tr.objOf(id)
		if obj == nil {
			return false
		}
		if _, isVar := obj.(*types.Var); !isVar {
			return false
		}
		return obj.Pos() < lit.Pos() || obj.Pos() >= lit.End()
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		switch e.(type) {
		case *ast.Ident, *ast.SelectorExpr:
		default:
			return true
		}
		if !hazardType(tr, pooled, tr.typeOf(e)) {
			return true
		}
		root := selectorRoot(e)
		if root == nil || !captured(root) {
			return true
		}
		if sel, ok := e.(*ast.SelectorExpr); ok {
			// A method value on a captured root is only hazardous if some
			// prefix is itself a workspace; the prefix walk below handles
			// that case when inspecting the prefix expression.
			if tr.pass.TypesInfo.Selections[sel] != nil && !hazardType(tr, pooled, tr.typeOf(sel.X)) {
				if _, isSig := tr.typeOf(e).Underlying().(*types.Signature); isSig {
					return true
				}
			}
		}
		pass.Report(e.Pos(),
			"goroutine closure captures %s (type %s), which is not goroutine-safe; pass it as a parameter or use a per-worker slot",
			exprString(e), types.TypeString(tr.typeOf(e), nil))
		return false
	})
}
