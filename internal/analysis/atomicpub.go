package analysis

import (
	"go/ast"
	"go/token"
	"go/types"

	"ordu/internal/analysis/cfg"
)

// NewAtomicpub turns the snapshot-publication pattern around
// atomic.Pointer/atomic.Value into a checked contract: a value published
// through Store is frozen. Concretely, per function:
//
//   - After p.Store(&x) (or p.Store(x)), any write through x on a CFG path
//     reachable from the store — including loop back-edges — mutates memory
//     a concurrent reader may already hold.
//   - If x was built as a copy of another local (x := src), writes through
//     src after the store are flagged too: the copy shares slice, map and
//     pointer fields with the published value. (The parallel pruner's
//     append-only contract suppresses this with a justified allow.)
//   - A value obtained from p.Load() is read-only: writes through a local
//     bound to a Load result are flagged wherever they occur.
//
// Arithmetic atomics (Int64 counters and friends) have no publication
// contract and are ignored; atomicmix already guards their mixed access.
func NewAtomicpub() *Analyzer {
	a := &Analyzer{
		Name:  "atomicpub",
		Doc:   "values published through atomic.Pointer/Value Store are frozen: no writes post-publish (incl. through copy sources), Load results are read-only",
		Layer: "concurrency",
	}
	a.Run = func(pass *Pass) {
		g, conc := pass.Facts.Graph, pass.Facts.Conc
		if g == nil || conc == nil {
			return
		}
		for _, n := range g.Nodes {
			if n.Pkg.Path != pass.PkgPath || n.Body() == nil {
				continue
			}
			checkAtomicPub(pass, n, conc[n])
		}
	}
	return a
}

// apWrite is one assignment/inc-dec through a chain in a function body.
type apWrite struct {
	root  types.Object
	chain bool // lhs is a selector/index/deref chain, not a bare ident
	// define marks a := binding of a bare ident: inside a loop it creates
	// a fresh heap object per iteration once the address escapes, so it
	// never mutates an already-published value.
	define bool
	pos    token.Pos
}

func collectWrites(info *types.Info, body *ast.BlockStmt) []apWrite {
	var out []apWrite
	inspectShallow(body, func(nd ast.Node) bool {
		record := func(lhs ast.Expr, define bool) {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name == "_" {
				return
			}
			if o := rootObj(info, lhs); o != nil {
				_, bare := ast.Unparen(lhs).(*ast.Ident)
				out = append(out, apWrite{root: o, chain: !bare, define: define && bare, pos: lhs.Pos()})
			}
		}
		switch x := nd.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				record(lhs, x.Tok == token.DEFINE)
			}
		case *ast.IncDecStmt:
			record(x.X, false)
		}
		return true
	})
	return out
}

func checkAtomicPub(pass *Pass, n *FuncNode, s *ConcSummary) {
	if s == nil {
		return
	}
	info := n.Pkg.Info
	body := n.Body()
	published := false
	for _, op := range s.Atomics {
		if op.Kind == AtomicStore && (op.Recv == "Pointer" || op.Recv == "Value") && op.Val != nil {
			published = true
		}
	}
	loaded := false
	for _, op := range s.Atomics {
		if op.Kind == AtomicLoad && (op.Recv == "Pointer" || op.Recv == "Value") {
			loaded = true
		}
	}
	if !published && !loaded {
		return
	}
	writes := collectWrites(info, body)

	if published {
		graph := cfg.New(body)
		locate := func(p token.Pos) (blk, idx int) {
			for _, b := range graph.Blocks {
				for i, nd := range b.Nodes {
					if p >= nd.Pos() && p < nd.End() {
						return b.Index, i
					}
				}
			}
			return -1, -1
		}
		for _, op := range s.Atomics {
			if op.Kind != AtomicStore || (op.Recv != "Pointer" && op.Recv != "Value") || op.Val == nil {
				continue
			}
			root := rootObj(info, op.Val)
			if root == nil || root.Parent() == nil || root.Parent() == n.Pkg.Types.Scope() {
				continue // only locally-built values have a visible freeze window
			}
			sources := copySources(info, body, root)
			storeBlk, storeIdx := locate(op.Pos)
			if storeBlk < 0 {
				continue
			}
			after := blocksAfter(graph, storeBlk)
			for _, w := range writes {
				wBlk, wIdx := locate(w.pos)
				if wBlk < 0 {
					continue
				}
				reachable := after[wBlk] ||
					(wBlk == storeBlk && wIdx > storeIdx) ||
					(wBlk == storeBlk && after[storeBlk]) // store block on a cycle
				if !reachable {
					continue
				}
				if w.root == root {
					if w.define {
						continue
					}
					pass.Report(w.pos, "%s was published through %s.Store and is written here on a following path; published snapshots must be frozen", root.Name(), op.Class)
				} else if sources[w.root] && w.chain {
					pass.Report(w.pos, "%s was copied into the snapshot published through %s.Store; this write can reach the snapshot via shared slice/map/pointer fields", w.root.Name(), op.Class)
				}
			}
		}
	}

	if loaded {
		// Locals bound to a Load result are read-only.
		loadLocals := map[types.Object]string{}
		inspectShallow(body, func(nd ast.Node) bool {
			as, ok := nd.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				return true
			}
			id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
			if !ok {
				return true
			}
			for _, op := range s.Atomics {
				if op.Kind == AtomicLoad && (op.Recv == "Pointer" || op.Recv == "Value") &&
					op.Pos >= as.Rhs[0].Pos() && op.Pos < as.Rhs[0].End() {
					if o := info.Defs[id]; o != nil {
						loadLocals[o] = op.Class
					} else if o := info.Uses[id]; o != nil {
						loadLocals[o] = op.Class
					}
				}
			}
			return true
		})
		for _, w := range writes {
			if class, ok := loadLocals[w.root]; ok && w.chain {
				pass.Report(w.pos, "%s holds a snapshot obtained from %s.Load and is mutated here; cross-goroutine readers must treat loaded values as read-only", w.root.Name(), class)
			}
		}
	}
}

// copySources finds the locals whose value was copied into root
// (root := src or root = src with a plain ident/selector source): writing
// them after publication can still reach the published value through
// shared reference fields.
func copySources(info *types.Info, body *ast.BlockStmt, root types.Object) map[types.Object]bool {
	out := map[types.Object]bool{}
	inspectShallow(body, func(nd ast.Node) bool {
		as, ok := nd.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			o := info.Defs[id]
			if o == nil {
				o = info.Uses[id]
			}
			if o != root {
				continue
			}
			switch src := ast.Unparen(as.Rhs[i]); src.(type) {
			case *ast.Ident, *ast.SelectorExpr:
				if so := rootObj(info, src); so != nil && so != root {
					out[so] = true
				}
			}
		}
		return true
	})
	return out
}

// blocksAfter returns the set of block indices reachable from start's
// successors (start itself is included only if it sits on a cycle).
func blocksAfter(g *cfg.Graph, start int) map[int]bool {
	out := map[int]bool{}
	var stack []int
	for _, s := range g.Blocks[start].Succs {
		stack = append(stack, s.Index)
	}
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if out[i] {
			continue
		}
		out[i] = true
		for _, s := range g.Blocks[i].Succs {
			stack = append(stack, s.Index)
		}
	}
	return out
}
