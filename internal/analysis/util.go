package analysis

import (
	"go/ast"
	"go/types"
)

// isFloat reports whether t is (or is a named type over) a floating-point
// scalar.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// containsFloat reports whether comparing two values of type t compares
// floating-point numbers: a float scalar, or a comparable composite (array,
// struct) with a float component. By-value composites cannot be recursive,
// so the walk terminates.
func containsFloat(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&types.IsFloat != 0
	case *types.Array:
		return containsFloat(u.Elem())
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsFloat(u.Field(i).Type()) {
				return true
			}
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// calleeObject resolves the function or method object a call invokes, or nil
// for calls through function-typed variables, conversions, and the like.
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			return sel.Obj()
		}
		return info.Uses[fun.Sel] // package-qualified call
	}
	return nil
}

// qualifiedName renders a function declaration as pkgpath.Func or
// pkgpath.Recv.Method, matching the keys of approved-function sets.
func qualifiedName(pkgPath string, decl *ast.FuncDecl) string {
	name := decl.Name.Name
	if decl.Recv != nil && len(decl.Recv.List) == 1 {
		t := decl.Recv.List[0].Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		if ix, ok := t.(*ast.IndexExpr); ok { // generic receiver
			t = ix.X
		}
		if id, ok := t.(*ast.Ident); ok {
			name = id.Name + "." + name
		}
	}
	return pkgPath + "." + name
}

// funcDecls visits every function declaration in the pass with its qualified
// name.
func funcDecls(pass *Pass, fn func(name string, decl *ast.FuncDecl)) {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if decl, ok := d.(*ast.FuncDecl); ok && decl.Body != nil {
				fn(qualifiedName(pass.PkgPath, decl), decl)
			}
		}
	}
}

// inspectShallow walks the subtree rooted at n, calling fn on every node but
// not descending into nested function literals: code inside a closure runs
// on its own schedule and must not satisfy (or trigger) per-loop checks.
func inspectShallow(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(node ast.Node) bool {
		if _, ok := node.(*ast.FuncLit); ok && node != n {
			return false
		}
		return fn(node)
	})
}
