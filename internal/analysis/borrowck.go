package analysis

import (
	"go/ast"
	"go/token"
	"go/types"

	"ordu/internal/analysis/cfg"
)

// NewBorrowck builds the borrowck analyzer. A borrow — a value aliasing
// lock-scoped packed storage, produced by an //ordlint:borrows function —
// is only valid inside the lock region that covers the producing call.
// borrowck flags every way a borrow can outlive that region:
//
//   - returned from a function that does not itself declare
//     //ordlint:borrows (the contract must propagate, not leak)
//   - stored to a package variable or through a receiver/parameter,
//     i.e. to memory that survives the call frame
//   - sent on a channel or handed to a spawned goroutine
//   - passed to a configured sink (the server's result cache)
//   - used after the region's mutex was released on every path
//
// Calls that leave the module launder taint deliberately: json.Marshal,
// Clone and friends produce owned bytes, which is exactly the deep copy
// the contract asks for. Owning constructors (fresh, Config.FreshFuncs)
// are exempt from the return and store rules: wiring borrows of an
// object's own storage into that object is ownership, not escape.
func NewBorrowck(sinks map[string]string, fresh map[string]bool) *Analyzer {
	a := &Analyzer{
		Name:  "borrowck",
		Doc:   "borrows of lock-scoped storage (//ordlint:borrows) must not outlive the lock region: no undeclared returns, outliving stores, channel sends, goroutine captures, sink calls, or uses after unlock",
		Layer: "interproc",
	}
	a.Run = func(pass *Pass) {
		g, facts := pass.Facts.Graph, pass.Facts.Borrows
		if g == nil || facts == nil {
			return
		}
		for _, n := range g.Nodes {
			// Declared functions only: the tracker and the walks below
			// cover nested literals inside each declaration.
			if n.Pkg.Path != pass.PkgPath || n.Decl == nil || n.Decl.Body == nil {
				continue
			}
			checkBorrowck(pass, n, g, facts, sinks, fresh[n.Name])
		}
	}
	return a
}

func checkBorrowck(pass *Pass, n *FuncNode, g *CallGraph, facts map[*FuncNode]*BorrowInfo, sinks map[string]string, isFresh bool) {
	tr := newBorrowTracker(n, g, facts)
	info := pass.TypesInfo
	bi := facts[n]
	name := shortName(n.Name)

	borrowed := func(e ast.Expr) bool {
		t := typeOf(info, e)
		return t != nil && pointerish(t) && tr.exprBits(e)&bitBorrow != 0
	}

	ast.Inspect(n.Decl.Body, func(nd ast.Node) bool {
		switch x := nd.(type) {
		case *ast.ReturnStmt:
			if bi.BorrowAnnotated || isFresh || tr.inLit(x) {
				return true
			}
			if len(x.Results) == 0 && n.Decl.Type.Results != nil {
				for _, field := range n.Decl.Type.Results.List {
					for _, resName := range field.Names {
						if o := info.Defs[resName]; o != nil && pointerish(o.Type()) && tr.bits[o]&bitBorrow != 0 {
							pass.Report(x.Pos(), "%s returns borrow %s of lock-scoped storage; copy it or declare the contract with //ordlint:borrows", name, resName.Name)
						}
					}
				}
				return true
			}
			for _, res := range x.Results {
				if borrowed(res) {
					pass.Report(res.Pos(), "%s returns a borrow of lock-scoped storage; copy it or declare the contract with //ordlint:borrows", name)
				}
			}
		case *ast.SendStmt:
			if borrowed(x.Value) {
				pass.Report(x.Value.Pos(), "borrow sent on a channel escapes its lock region; send a copy")
			}
		case *ast.GoStmt:
			checkGoBorrow(pass, tr, info, x)
		case *ast.AssignStmt:
			if !isFresh {
				checkBorrowStores(pass, tr, info, x, borrowed)
			}
		case *ast.CallExpr:
			if f, ok := calleeObject(info, x).(*types.Func); ok {
				if reason, isSink := sinks[funcQName(f)]; isSink {
					for _, arg := range x.Args {
						if borrowed(arg) {
							pass.Report(arg.Pos(), "borrow passed to %s, which retains its arguments (%s); deep-copy first", f.Name(), reason)
						}
					}
				}
			}
		}
		return true
	})
	checkBorrowStale(pass, tr, n)
}

// checkGoBorrow flags borrows crossing into a spawned goroutine, either as
// call arguments or captured by the goroutine's function literal.
func checkGoBorrow(pass *Pass, tr *borrowTracker, info *types.Info, g *ast.GoStmt) {
	for _, arg := range g.Call.Args {
		if t := typeOf(info, arg); t != nil && pointerish(t) && tr.exprBits(arg)&bitBorrow != 0 {
			pass.Report(arg.Pos(), "borrow passed to a goroutine outlives the lock region; copy it before spawning")
		}
	}
	lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok {
		return
	}
	reported := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(nd ast.Node) bool {
		id, ok := nd.(*ast.Ident)
		if !ok {
			return true
		}
		o := info.Uses[id]
		if o == nil || reported[o] || o.Pos() >= lit.Pos() {
			return true
		}
		if pointerish(o.Type()) && tr.bits[o]&bitBorrow != 0 {
			reported[o] = true
			pass.Report(id.Pos(), "goroutine captures borrow %s, which outlives the lock region; copy it before spawning", id.Name)
		}
		return true
	})
}

// checkBorrowStores flags assignments that move a borrow into memory
// outliving the current frame: package variables, or chains reaching
// through the receiver or a parameter. Stores into borrow memory itself
// stay inside the lock region and are fine.
func checkBorrowStores(pass *Pass, tr *borrowTracker, info *types.Info, s *ast.AssignStmt, borrowed func(ast.Expr) bool) {
	flag := func(l, r ast.Expr) {
		if !borrowed(r) {
			return
		}
		if what, bad := outlivingTarget(tr, info, l); bad {
			pass.Report(l.Pos(), "borrow stored to %s outlives the lock region; store a copy", what)
		}
	}
	if len(s.Lhs) == len(s.Rhs) {
		for i := range s.Lhs {
			flag(s.Lhs[i], s.Rhs[i])
		}
		return
	}
	if len(s.Rhs) == 1 {
		for _, l := range s.Lhs {
			flag(l, s.Rhs[0])
		}
	}
}

// outlivingTarget classifies a store target that survives the call frame.
func outlivingTarget(tr *borrowTracker, info *types.Info, l ast.Expr) (string, bool) {
	if id, ok := ast.Unparen(l).(*ast.Ident); ok {
		if v, ok := tr.objOf(id).(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return "package variable " + v.Name(), true
		}
		return "", false
	}
	root := rootObj(info, l)
	v, ok := root.(*types.Var)
	if !ok {
		return "", false
	}
	if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return "package variable " + v.Name(), true
	}
	if tr.bits[root]&^bitBorrow != 0 { // receiver- or parameter-reachable
		return "memory reachable from " + v.Name(), true
	}
	// Remaining tainted roots are local borrow aggregates; storing a borrow
	// next to another borrow stays inside the lock region (the escape, if
	// any, is reported where the aggregate itself escapes).
	return "", false
}

// checkBorrowStale reports borrows used after their lock region ended: a
// local defined while classes C were (may-)held, then used at a point
// where some class of C is held on no path. The may-held analysis is the
// lockhold fixed point; requiring the class to be absent from the may-set
// keeps branches honest (released on SOME path is not a finding).
func checkBorrowStale(pass *Pass, tr *borrowTracker, n *FuncNode) {
	info := pass.TypesInfo
	const (
		sAcquire = iota
		sRelease
		sDef
		sUse
	)
	type sev struct {
		kind  int
		class string
		obj   types.Object
		pos   token.Pos
	}
	graph := cfg.New(n.Decl.Body)
	events := make([][]sev, len(graph.Blocks))
	haveLocks := false
	for _, b := range graph.Blocks {
		for _, node := range b.Nodes {
			if _, isDefer := node.(*ast.DeferStmt); isDefer {
				// Deferred unlocks run at exit: the lock covers the rest of
				// the body, so they release nothing mid-function.
				continue
			}
			inspectShallow(node, func(m ast.Node) bool {
				switch x := m.(type) {
				case *ast.CallExpr:
					if method, class, ok := syncMutexCall(info, x); ok {
						kind := sAcquire
						if method == "Unlock" || method == "RUnlock" {
							kind = sRelease
						}
						haveLocks = true
						events[b.Index] = append(events[b.Index], sev{kind: kind, class: class, pos: x.Pos()})
					}
				case *ast.Ident:
					if o := info.Defs[x]; o != nil && pointerish(o.Type()) && tr.bits[o]&bitBorrow != 0 {
						events[b.Index] = append(events[b.Index], sev{kind: sDef, obj: o, pos: x.Pos()})
					} else if o := info.Uses[x]; o != nil && tr.bits[o]&bitBorrow != 0 {
						events[b.Index] = append(events[b.Index], sev{kind: sUse, obj: o, pos: x.Pos()})
					}
				}
				return true
			})
		}
	}
	if !haveLocks {
		return
	}

	// May-held fixed point (union meet), locks only.
	entry := make([]map[string]bool, len(graph.Blocks))
	for i := range entry {
		entry[i] = map[string]bool{}
	}
	for changed := true; changed; {
		changed = false
		for _, b := range graph.Blocks {
			held := map[string]bool{}
			for c := range entry[b.Index] {
				held[c] = true
			}
			for _, ev := range events[b.Index] {
				switch ev.kind {
				case sAcquire:
					held[ev.class] = true
				case sRelease:
					delete(held, ev.class)
				}
			}
			for _, succ := range b.Succs {
				for c := range held {
					if !entry[succ.Index][c] {
						entry[succ.Index][c] = true
						changed = true
					}
				}
			}
		}
	}

	// Replay in block order: record the held set at each borrow's first
	// definition, then flag uses where a defining class is gone.
	defHeld := map[types.Object]map[string]bool{}
	reported := map[types.Object]bool{}
	for _, b := range graph.Blocks {
		held := map[string]bool{}
		for c := range entry[b.Index] {
			held[c] = true
		}
		for _, ev := range events[b.Index] {
			switch ev.kind {
			case sAcquire:
				held[ev.class] = true
			case sRelease:
				delete(held, ev.class)
			case sDef:
				if _, seen := defHeld[ev.obj]; !seen && len(held) > 0 {
					snap := make(map[string]bool, len(held))
					for c := range held {
						snap[c] = true
					}
					defHeld[ev.obj] = snap
				}
			case sUse:
				if reported[ev.obj] {
					continue
				}
				for c := range defHeld[ev.obj] {
					if !held[c] {
						reported[ev.obj] = true
						pass.Report(ev.pos, "borrow %s is used after %s was released; copy it under the lock or move the use before the unlock", ev.obj.Name(), c)
						break
					}
				}
			}
		}
	}
}
