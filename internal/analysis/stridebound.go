package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NewStridebound builds the stridebound analyzer: every subscript into a
// capacity-strided window run (the children and rect arenas, addressed as
// id*stride + offset) must be provably inside its window. The analyzer
// decomposes the index into additive terms; each term must be a handle
// (the window base), a constant, a capacity-derived expression (dim,
// fanout, entCap, count-run reads, len results), or a variable under a
// dominating guard against such a bound (loop conditions, early-out
// if-return guards, range keys). Anything else is a finding unless the
// function documents its caller contract with //ordlint:bounded.
func NewStridebound(hc *HandleConfig) *Analyzer {
	a := &Analyzer{
		Name:  "stridebound",
		Doc:   "stride-window subscripts must be guarded against the owning capacity or annotated //ordlint:bounded",
		Layer: "handle",
	}
	a.Run = func(pass *Pass) {
		if hc == nil || !hc.Packages[pass.PkgPath] {
			return
		}
		g := pass.Facts.Graph
		for _, n := range g.Nodes {
			if n.Pkg.Path != pass.PkgPath || n.Body() == nil {
				continue
			}
			if hi := pass.Facts.Handles[n]; hi != nil && hi.Bounded {
				continue // the function's doc vouches for its windows
			}
			tr := newHandleTracker(n, g, pass.Facts.Handles, hc)
			tr.solve()
			tr.guardedWalk(func(nd ast.Node, gs *guardState) {
				switch x := nd.(type) {
				case *ast.IndexExpr:
					if spec := tr.runSpecOf(x.X); spec != nil && spec.Stride {
						checkStrideTerms(pass, tr, gs, x.X, x.Index)
					}
				case *ast.SliceExpr:
					if spec := tr.runSpecOf(x.X); spec != nil && spec.Stride {
						checkStrideTerms(pass, tr, gs, x.X, x.Low)
						checkStrideTerms(pass, tr, gs, x.X, x.High)
						checkStrideTerms(pass, tr, gs, x.X, x.Max)
					}
				}
			})
		}
	}
	return a
}

// strideTerms splits an index expression on top-level +/- into its terms.
func strideTerms(e ast.Expr, out []ast.Expr) []ast.Expr {
	if b, ok := ast.Unparen(e).(*ast.BinaryExpr); ok {
		switch b.Op {
		case token.ADD, token.SUB:
			return strideTerms(b.Y, strideTerms(b.X, out))
		}
	}
	return append(out, ast.Unparen(e))
}

// checkStrideTerms verifies every term of one window subscript.
func checkStrideTerms(pass *Pass, tr *handleTracker, gs *guardState, run, idx ast.Expr) {
	if idx == nil {
		return
	}
	for _, term := range strideTerms(idx, nil) {
		if tr.exprClass(term) != 0 {
			continue // the window base: a classed handle expression
		}
		if tr.capacityDerived(term, 0) {
			continue // constants, dim/fanout/entCap, count reads, len
		}
		if gs.Guarded(tr.info, term) {
			continue // dominated by an upper-bound guard
		}
		pass.Report(term.Pos(),
			"unguarded term %s in a stride-window subscript of %s — guard it against the owning count/capacity or annotate the function //ordlint:bounded",
			types.ExprString(term), types.ExprString(run))
	}
}
