package analysis

import (
	"errors"
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package as produced by the Loader: the parsed
// files, the type information, and enough identity (import path, directory)
// for analyzers to scope themselves.
type Package struct {
	// Path is the import path ("ordu/internal/geom"). For packages loaded
	// from a bare directory (test fixtures) it is the caller-chosen name.
	Path string
	// Fset is the loader's shared fileset, which resolves all positions in
	// Files.
	Fset *token.FileSet
	// Dir is the absolute directory the sources were read from.
	Dir string
	// Files are the parsed source files, with comments.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries the use/def/type maps for Files.
	Info *types.Info
	// InModule reports whether the package belongs to the module under
	// analysis (as opposed to a dependency pulled in for type information).
	InModule bool
	// TypeErrors collects type-checker complaints. A build that passes
	// `go build` produces none for module packages; anything here points at
	// a loader limitation and is surfaced by the driver.
	TypeErrors []error
}

// Loader loads and type-checks packages without the go toolchain: module
// packages are located under the module root by import-path suffix, and all
// other imports (the standard library, including its vendored dependencies)
// are resolved through go/build and type-checked from source. Packages are
// cached by directory, so the import graph is checked once.
type Loader struct {
	Fset *token.FileSet
	// ModulePath and ModuleDir anchor intra-module import resolution.
	ModulePath string
	ModuleDir  string

	ctxt build.Context
	pkgs map[string]*Package // keyed by absolute directory
}

// NewLoader returns a loader for the module rooted at dir, whose go.mod must
// declare the given module path. Cgo is disabled in the build context so the
// standard library type-checks from pure-Go sources.
func NewLoader(modulePath, dir string) *Loader {
	ctxt := build.Default
	ctxt.CgoEnabled = false
	abs, err := filepath.Abs(dir)
	if err != nil {
		abs = dir
	}
	return &Loader{
		Fset:       token.NewFileSet(),
		ModulePath: modulePath,
		ModuleDir:  abs,
		ctxt:       ctxt,
		pkgs:       make(map[string]*Package),
	}
}

// FindModule locates the enclosing module of dir by walking up to the first
// go.mod and returns its root directory and module path.
func FindModule(dir string) (root, modulePath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod found above %s", abs)
		}
		d = parent
	}
}

// LoadModule walks the module tree and loads every buildable package under
// it, skipping testdata, vendor, and hidden or underscore directories. The
// returned slice is sorted by import path.
func (l *Loader) LoadModule() ([]*Package, error) {
	var pkgs []*Package
	err := filepath.WalkDir(l.ModuleDir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModuleDir && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		pkg, err := l.loadDir(path, l.importPathFor(path))
		if err != nil {
			var noGo *build.NoGoError
			if errors.As(err, &noGo) {
				return nil // directory without buildable Go files
			}
			return fmt.Errorf("%s: %w", path, err)
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// LoadDir loads the single package in dir under the given import path. It is
// the entry point used for golden-file fixtures, which live outside the
// module's buildable tree.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return l.loadDir(abs, path)
}

// importPathFor maps a module-internal directory to its import path.
func (l *Loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.ModuleDir, dir)
	if err != nil || rel == "." {
		return l.ModulePath
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel)
}

// inProgress marks a directory whose load has started, to break cycles.
var inProgress = &Package{}

// loadDir parses and type-checks the package in dir, memoized.
func (l *Loader) loadDir(dir, path string) (*Package, error) {
	if pkg, ok := l.pkgs[dir]; ok {
		if pkg == inProgress {
			return nil, fmt.Errorf("analysis: import cycle through %s", path)
		}
		return pkg, nil
	}
	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	l.pkgs[dir] = inProgress
	files := make([]*ast.File, 0, len(bp.GoFiles))
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			delete(l.pkgs, dir)
			return nil, err
		}
		files = append(files, f)
	}
	pkg := &Package{
		Path:     path,
		Dir:      dir,
		Fset:     l.Fset,
		Files:    files,
		InModule: l.inModule(path) || strings.HasPrefix(dir, l.ModuleDir+string(filepath.Separator)),
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		},
	}
	conf := types.Config{
		Importer: &chainImporter{l: l},
		Sizes:    types.SizesFor("gc", l.ctxt.GOARCH),
		Error: func(err error) {
			pkg.TypeErrors = append(pkg.TypeErrors, err)
		},
	}
	// The checker reports every error through conf.Error and additionally
	// returns the first one; module packages surface them via TypeErrors.
	tpkg, _ := conf.Check(path, l.Fset, files, pkg.Info)
	pkg.Types = tpkg
	l.pkgs[dir] = pkg
	return pkg, nil
}

// inModule reports whether an import path belongs to the analyzed module.
func (l *Loader) inModule(path string) bool {
	return path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/")
}

// chainImporter resolves imports during type-checking: module paths map to
// directories under the module root; everything else goes through go/build,
// which finds GOROOT packages and their vendored dependencies. Implementing
// ImporterFrom lets go/types supply the importing directory, which go/build
// needs for vendor resolution.
type chainImporter struct {
	l *Loader
}

func (ci *chainImporter) Import(path string) (*types.Package, error) {
	return ci.ImportFrom(path, ci.l.ModuleDir, 0)
}

func (ci *chainImporter) ImportFrom(path, srcDir string, _ types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	l := ci.l
	var dir string
	if l.inModule(path) {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		dir = filepath.Join(l.ModuleDir, filepath.FromSlash(rel))
	} else {
		bp, err := l.ctxt.Import(path, srcDir, 0)
		if err != nil {
			return nil, err
		}
		dir = bp.Dir
	}
	pkg, err := l.loadDir(dir, path)
	if err != nil {
		return nil, err
	}
	if pkg.Types == nil {
		return nil, fmt.Errorf("analysis: no type information for %s", path)
	}
	return pkg.Types, nil
}
