package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestLoadDirNonexistent pins the loader's behavior on a directory that does
// not exist: the go/build probe's error must propagate, not be swallowed
// into an empty package.
func TestLoadDirNonexistent(t *testing.T) {
	root, modPath, err := FindModule(".")
	if err != nil {
		t.Fatalf("FindModule: %v", err)
	}
	l := NewLoader(modPath, root)
	_, err = l.LoadDir(filepath.Join("testdata", "src", "no-such-fixture"), "nope")
	if err == nil {
		t.Fatal("LoadDir on a nonexistent directory returned no error")
	}
	if !strings.Contains(err.Error(), "cannot find package") ||
		!strings.Contains(err.Error(), filepath.Join("testdata", "src", "no-such-fixture")) {
		t.Errorf("error %q should say 'cannot find package' and name the missing directory", err)
	}
}

// TestFindModuleFromSubdirectory pins that the go.mod walk works from deep
// inside the tree — the property `ordlint ./...` from a subdirectory relies
// on.
func TestFindModuleFromSubdirectory(t *testing.T) {
	rootHere, modHere, err := FindModule(".")
	if err != nil {
		t.Fatalf("FindModule(.): %v", err)
	}
	sub := filepath.Join("testdata", "src", "ctxpoll")
	rootSub, modSub, err := FindModule(sub)
	if err != nil {
		t.Fatalf("FindModule(%s): %v", sub, err)
	}
	if rootSub != rootHere || modSub != modHere {
		t.Errorf("FindModule from subdirectory = (%s, %s), want (%s, %s)",
			rootSub, modSub, rootHere, modHere)
	}
}

// TestFindModuleNoGoMod pins the exact failure message when no go.mod
// exists anywhere above the starting directory.
func TestFindModuleNoGoMod(t *testing.T) {
	dir := t.TempDir()
	_, _, err := FindModule(dir)
	if err == nil {
		t.Fatal("FindModule outside any module returned no error")
	}
	if !strings.Contains(err.Error(), "no go.mod found above") {
		t.Errorf("error %q should say 'no go.mod found above'", err)
	}
}

// TestLoadDirBuildTagExcluded pins that files fenced behind unsatisfied
// build constraints never reach the parser: the fixture's excluded.go
// references an undefined symbol and would fail the type check if loaded.
func TestLoadDirBuildTagExcluded(t *testing.T) {
	root, modPath, err := FindModule(".")
	if err != nil {
		t.Fatalf("FindModule: %v", err)
	}
	l := NewLoader(modPath, root)
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", "buildtag"), "buildtag")
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("unexpected type error (excluded file loaded?): %v", terr)
	}
	if len(pkg.Files) != 1 {
		t.Fatalf("loaded %d files, want 1 (excluded.go must be skipped)", len(pkg.Files))
	}
	name := filepath.Base(l.Fset.Position(pkg.Files[0].Pos()).Filename)
	if name != "buildtag.go" {
		t.Errorf("loaded file %s, want buildtag.go", name)
	}
	if pkg.Types == nil || pkg.Types.Scope().Lookup("Included") == nil {
		t.Error("package scope is missing Included")
	}
	if pkg.Types != nil && pkg.Types.Scope().Lookup("Excluded") != nil {
		t.Error("package scope contains Excluded from the tag-fenced file")
	}
}
