package analysis

import "strings"

// Config scopes the analyzers. The zero value disables every path-scoped
// check; DefaultConfig returns the configuration enforced on this module.
type Config struct {
	// FloatcmpApproved lists qualified function names
	// ("pkgpath.Recv.Method" or "pkgpath.Func") whose bodies may compare
	// floats exactly — the vetted epsilon/dominance primitives.
	FloatcmpApproved map[string]bool
	// CtxPollPackages are the package paths whose scan loops must poll a
	// context.
	CtxPollPackages map[string]bool
	// CtxPollScanCalls are the method names that advance a progressive scan.
	CtxPollScanCalls map[string]bool
	// SenterrCallee restricts senterr to calls into matching packages.
	SenterrCallee func(pkgPath string) bool
	// NopanicPackage selects the library packages where nopanic applies.
	NopanicPackage func(pkgPath string) bool
	// PrintguardPackage selects the library packages where printguard
	// applies.
	PrintguardPackage func(pkgPath string) bool
	// WorkspacePackage gates the workspace naming convention used by the
	// dataflow checks: types named Workspace/Builder/Searcher/Heap (or
	// suffixed …Workspace/…WS) declared in a matching package are treated
	// as single-owner reusable state. Types whose doc comment says
	// "not goroutine-safe" (and friends) are recognized regardless.
	WorkspacePackage func(pkgPath string) bool
	// GoroutineCapPackages are the packages whose goroutines goroutinecap
	// audits for shared workspaces and pooled nodes.
	GoroutineCapPackages map[string]bool
	// PooledTypes lists qualified type names ("pkgpath.Type") of pooled
	// objects (free-list nodes) goroutinecap treats like workspaces.
	PooledTypes map[string]bool
	// PoolPairs lists the Get/Put method pairs poolpair balances.
	PoolPairs []PoolPair
	// CtxFlowEntryPackages are the packages whose every function is a
	// ctxflow entry point (the query server's handlers).
	CtxFlowEntryPackages map[string]bool
	// CtxFlowEntryFuncs are additional qualified function names treated as
	// ctxflow entry points (the facade's Ctx methods).
	CtxFlowEntryFuncs map[string]bool
	// NoallocExternals are package paths deepnoalloc accepts as
	// allocation-free when a kernel's call chain leaves the module.
	NoallocExternals map[string]bool
	// NoallocAmortized are qualified function names deepnoalloc skips
	// entirely: documented one-time cache fills whose steady state the
	// dynamic allocation gates prove free.
	NoallocAmortized map[string]bool
	// LockHoldPackages are the packages lockhold audits for mutexes held
	// across blocking operations.
	LockHoldPackages map[string]bool
	// MapOrderPackages are the packages maporder audits for map-range
	// iteration feeding appended results.
	MapOrderPackages map[string]bool
	// BorrowSinks maps qualified function names to the reason borrowck
	// must keep borrows out of them: calls that retain their arguments
	// beyond the request (the server's result cache).
	BorrowSinks map[string]string
	// LockModePackages are the packages lockmode audits for RWMutex
	// read/write discipline over the guarded types.
	LockModePackages map[string]bool
	// GuardedTypes are qualified type names whose methods require the
	// per-dataset lock: writers the write lock, readers at least the read
	// lock.
	GuardedTypes map[string]bool
	// FreshFuncs are qualified constructor names whose results are still
	// unpublished: lockmode exempts calls on them until they escape
	// (passed as an argument, stored, or sent).
	FreshFuncs map[string]bool
	// LockModePure are qualified methods on guarded types that read only
	// construction-immutable state and may run without the lock.
	LockModePure map[string]bool
	// ConcPackages are the packages whose spawn edges the concurrency
	// layer (chanprotocol, wgbalance, sharedwrite) verifies. atomicpub
	// runs everywhere, like atomicmix.
	ConcPackages map[string]bool
	// HandlePackages are the packages whose bodies the handle layer
	// (handleprov, stridebound, genstale, narrowcast) audits.
	HandlePackages map[string]bool
	// HandleRuns are the flat runs ("pkgpath.Type.field" -> RunSpec): the
	// arena-backed slices and slot maps whose subscripts need provenance.
	HandleRuns map[string]RunSpec
	// HandleTypes are named integer types that carry a handle class
	// wherever they appear (rtree.NodeRef).
	HandleTypes map[string]HandleClass
	// HandleBoundFields are capacity fields and count runs accepted as
	// stride offsets and guard bounds ("pkgpath.Type.field").
	HandleBoundFields map[string]bool
	// HandleGenFields are generation-counter fields whose reads yield
	// HandleGen values ("pkgpath.Type.field").
	HandleGenFields map[string]bool
	// HandleOwners are flat-core structures whose //ordlint:writer methods
	// invalidate outstanding handles and views ("pkgpath.Type").
	HandleOwners map[string]bool
	// HandleStableViews are borrow-annotated functions whose views
	// survive mutations (the slot-stability contract); unlisted borrow
	// views are killed by genstale's invalidation points.
	HandleStableViews map[string]bool
}

// DefaultConfig is the configuration `cmd/ordlint` enforces on this module:
//
//   - floatcmp approves the exact-comparison primitives of internal/geom and
//     internal/linalg (Vector.Equal; the pivot-skip zero tests inside the
//     eliminators, which compare against values that are exactly zero by
//     construction);
//   - ctxpoll guards internal/core and internal/skyband, the packages that
//     host the potentially unbounded scan loops;
//   - senterr applies to calls into any module package that exports Err*
//     sentinels (the facade's ErrBadSeed/ErrBadParams contract and friends);
//   - nopanic/printguard cover every internal/* library package, leaving
//     cmd/ and examples/ free to print and exit;
//   - wsescape and noalloc recognize workspace types in every module
//     package (the naming convention plus "not goroutine-safe" doc
//     phrases), so escaping aliases and annotated kernels are checked
//     wherever they live;
//   - goroutinecap audits internal/core and internal/server — the only
//     packages that spawn goroutines — for workspaces or pooled nodes
//     (core.regionNode, hull.facet) shared across goroutines;
//   - poolpair balances the two free lists: the explorer's node pool
//     (exploreWS.node/recycle) and the hull builder's facet pool
//     (Builder.allocFacet/freeFacet);
//   - ctxflow treats every function of internal/server plus the facade's
//     ORDCtx/ORUCtx/ORUParallelCtx as entry points: whatever a request can
//     reach must stay cancellable;
//   - deepnoalloc accepts math, sort and sync/atomic as allocation-free
//     stdlib destinations and skips geom.simplexFor, the documented
//     per-dimension constant-cache fill;
//   - lockhold audits internal/server, the only package that holds locks
//     near I/O;
//   - maporder audits the packages that assemble ordered results from
//     map-keyed state: internal/core, internal/skyband, internal/server;
//   - borrowck runs everywhere (//ordlint:borrows annotations seed it) and
//     keeps borrows of packed point storage out of the server's result
//     cache, the one store that outlives requests;
//   - lockmode audits internal/server, where the per-dataset RWMutex
//     guards Dataset/Collection/Live calls; Dataset.Dim is pure
//     (construction-immutable) and the dataset constructors yield fresh
//     unpublished objects;
//   - atomicmix runs everywhere; the module's counters are typed atomics,
//     so the check guards against regressions to address-based mixing;
//   - the concurrency layer (chanprotocol, wgbalance, sharedwrite) covers
//     every package that spawns goroutines today — the parallel frontier
//     (skyband), the preprocessing explorer (core), the query server and
//     the live collection it guards, plus the load generator and daemon
//     commands; atomicpub, like atomicmix, runs everywhere because a
//     published snapshot is a module-wide contract;
//   - the handle layer (handleprov, stridebound, genstale, narrowcast)
//     covers the flat spatial core and every package that holds its
//     integer handles — rtree (and the legacy oracle), collection,
//     skyband, topk, the server (whose generation field is the configured
//     gen counter), and narrow (the guarded conversion gate). The runs,
//     capacity fields and stable views mirror the arena layout documented
//     in internal/rtree: node-indexed level/count/rseg arenas, the
//     stride-windowed ents/rects runs, slot-indexed chunk storage, and
//     the free lists as element providers.
func DefaultConfig(modulePath string) Config {
	internal := func(pkgPath string) bool {
		return strings.HasPrefix(pkgPath, modulePath+"/internal/")
	}
	rt := modulePath + "/internal/rtree"
	col := modulePath + "/internal/collection"
	return Config{
		FloatcmpApproved: map[string]bool{
			modulePath + "/internal/geom.Vector.Equal": true,
			modulePath + "/internal/linalg.Solve":      true,
			modulePath + "/internal/linalg.NullVector": true,
		},
		CtxPollPackages: map[string]bool{
			modulePath + "/internal/core":    true,
			modulePath + "/internal/skyband": true,
		},
		CtxPollScanCalls: map[string]bool{
			"Next":    true,
			"NextCtx": true,
			"fetch":   true,
		},
		SenterrCallee: func(pkgPath string) bool {
			return pkgPath == modulePath || strings.HasPrefix(pkgPath, modulePath+"/")
		},
		NopanicPackage:    internal,
		PrintguardPackage: internal,
		WorkspacePackage: func(pkgPath string) bool {
			return pkgPath == modulePath || strings.HasPrefix(pkgPath, modulePath+"/")
		},
		GoroutineCapPackages: map[string]bool{
			modulePath + "/internal/core":    true,
			modulePath + "/internal/server":  true,
			modulePath + "/internal/skyband": true,
		},
		PooledTypes: map[string]bool{
			modulePath + "/internal/core.regionNode": true,
			modulePath + "/internal/hull.facet":      true,
		},
		PoolPairs: []PoolPair{
			{Get: modulePath + "/internal/core.exploreWS.node", Put: modulePath + "/internal/core.exploreWS.recycle"},
			{Get: modulePath + "/internal/hull.Builder.allocFacet", Put: modulePath + "/internal/hull.Builder.freeFacet"},
		},
		CtxFlowEntryPackages: map[string]bool{
			modulePath + "/internal/server": true,
		},
		CtxFlowEntryFuncs: map[string]bool{
			modulePath + ".Dataset.ORDCtx":         true,
			modulePath + ".Dataset.ORUCtx":         true,
			modulePath + ".Dataset.ORUParallelCtx": true,
		},
		NoallocExternals: map[string]bool{
			"math":        true,
			"sort":        true,
			"sync/atomic": true,
		},
		NoallocAmortized: map[string]bool{
			modulePath + "/internal/geom.simplexFor": true,
		},
		LockHoldPackages: map[string]bool{
			modulePath + "/internal/server": true,
		},
		MapOrderPackages: map[string]bool{
			modulePath + "/internal/core":    true,
			modulePath + "/internal/skyband": true,
			modulePath + "/internal/server":  true,
		},
		BorrowSinks: map[string]string{
			modulePath + "/internal/server.lruCache.Put": "the result cache retains bodies across requests",
		},
		LockModePackages: map[string]bool{
			modulePath + "/internal/server": true,
		},
		GuardedTypes: map[string]bool{
			modulePath + ".Dataset":                        true,
			modulePath + "/internal/collection.Collection": true,
			modulePath + "/internal/skyband.Live":          true,
		},
		FreshFuncs: map[string]bool{
			modulePath + ".NewDataset":                     true,
			modulePath + "/internal/server.BuildDataset":   true,
			modulePath + "/internal/collection.New":        true,
			modulePath + "/internal/collection.FromPoints": true,
			modulePath + "/internal/skyband.NewLive":       true,
		},
		LockModePure: map[string]bool{
			modulePath + ".Dataset.Dim": true,
		},
		ConcPackages: map[string]bool{
			modulePath + "/internal/core":       true,
			modulePath + "/internal/skyband":    true,
			modulePath + "/internal/server":     true,
			modulePath + "/internal/collection": true,
			modulePath + "/cmd/ordload":         true,
			modulePath + "/cmd/ordud":           true,
		},
		HandlePackages: map[string]bool{
			modulePath + "/internal/rtree":        true,
			modulePath + "/internal/rtree/legacy": true,
			modulePath + "/internal/collection":   true,
			modulePath + "/internal/skyband":      true,
			modulePath + "/internal/topk":         true,
			modulePath + "/internal/server":       true,
			modulePath + "/internal/narrow":       true,
		},
		HandleRuns: map[string]RunSpec{
			rt + ".Tree.level":     {Index: HandleNode},
			rt + ".Tree.count":     {Index: HandleNode},
			rt + ".Tree.rseg":      {Index: HandleNode, Elem: HandleNode},
			rt + ".Tree.ents":      {Index: HandleNode, Elem: HandleNode | HandleSlot, Stride: true},
			rt + ".Tree.rects":     {Index: HandleNode, Stride: true},
			rt + ".Tree.chunks":    {Index: HandleSlot},
			rt + ".Tree.idAt":      {Index: HandleSlot},
			rt + ".Tree.slotOf":    {Elem: HandleSlot},
			rt + ".Tree.freeNodes": {Elem: HandleNode},
			rt + ".Tree.freeSegs":  {Elem: HandleNode},
			rt + ".Tree.freeSlots": {Elem: HandleSlot},
			col + ".Collection.chunks": {Index: HandleSlot},
			col + ".Collection.idAt":   {Index: HandleSlot},
			col + ".Collection.slotOf": {Elem: HandleSlot},
			col + ".Collection.free":   {Elem: HandleSlot},
		},
		HandleTypes: map[string]HandleClass{
			rt + ".NodeRef": HandleNode,
		},
		HandleBoundFields: map[string]bool{
			rt + ".Tree.dim":           true,
			rt + ".Tree.fanout":        true,
			rt + ".Tree.entCap":        true,
			rt + ".Tree.count":         true,
			col + ".Collection.dim":    true,
		},
		HandleGenFields: map[string]bool{
			modulePath + "/internal/server.namedDataset.gen": true,
		},
		HandleOwners: map[string]bool{
			modulePath + ".Dataset":      true,
			col + ".Collection":          true,
			modulePath + "/internal/skyband.Live": true,
			rt + ".Tree":                 true,
			rt + "/legacy.Tree":          true,
		},
		HandleStableViews: map[string]bool{
			// Slot-backed vectors: the chunk storage never reallocates, so
			// these views stay addressable across mutations (their
			// coordinates may change — they track the live record).
			rt + ".Tree.LeafPoint":    true,
			rt + ".Tree.Point":        true,
			rt + ".Tree.slotVec":      true,
			col + ".Collection.Get":   true,
			col + ".Collection.at":    true,
			// Stable by construction: the tree pointer itself, and the
			// Live's seed vector (fixed at construction).
			col + ".Collection.Tree":             true,
			modulePath + "/internal/skyband.Live.Seed": true,
		},
	}
}

// NewSuite assembles the full analyzer suite for a configuration.
func NewSuite(cfg Config) *Suite {
	nope := func(string) bool { return false }
	senterr, nopanic, printguard := cfg.SenterrCallee, cfg.NopanicPackage, cfg.PrintguardPackage
	if senterr == nil {
		senterr = nope
	}
	if nopanic == nil {
		nopanic = nope
	}
	if printguard == nil {
		printguard = nope
	}
	hc := NewHandleConfig(cfg)
	return &Suite{fresh: cfg.FreshFuncs, handle: hc, Analyzers: []*Analyzer{
		NewFloatcmp(cfg.FloatcmpApproved),
		NewCtxpoll(cfg.CtxPollPackages, cfg.CtxPollScanCalls),
		NewSenterr(senterr),
		NewNopanic(nopanic),
		NewPrintguard(printguard),
		NewWsescape(cfg.WorkspacePackage),
		NewGoroutinecap(cfg.GoroutineCapPackages, cfg.PooledTypes, cfg.WorkspacePackage),
		NewPoolpair(cfg.PoolPairs),
		NewNoalloc(cfg.WorkspacePackage),
		NewCtxflow(cfg.CtxFlowEntryPackages, cfg.CtxFlowEntryFuncs, cfg.CtxPollScanCalls),
		NewDeepnoalloc(cfg.NoallocExternals, cfg.NoallocAmortized),
		NewLockhold(cfg.LockHoldPackages),
		NewMaporder(cfg.MapOrderPackages),
		NewBorrowck(cfg.BorrowSinks, cfg.FreshFuncs),
		NewLockmode(cfg.LockModePackages, cfg.GuardedTypes, cfg.FreshFuncs, cfg.LockModePure),
		NewAtomicmix(),
		NewChanprotocol(cfg.ConcPackages),
		NewWgbalance(cfg.ConcPackages),
		NewAtomicpub(),
		NewSharedwrite(cfg.ConcPackages),
		NewHandleprov(hc),
		NewStridebound(hc),
		NewGenstale(hc),
		NewNarrowcast(hc),
	}}
}
