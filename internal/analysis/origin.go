package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Facts is the module-wide context computed once per Suite.Run before the
// analyzers see any package: which named types carry a reuse contract
// (workspaces, builders, pooled scratch) and which package paths were part
// of the analyzed set. Dataflow checks consult it through the Pass.
type Facts struct {
	// wsTypes holds qualified type names ("pkgpath.Type") whose doc
	// comments declare a reuse contract ("not goroutine-safe", "one per
	// worker"), independent of naming convention.
	wsTypes map[string]bool
	// loadedPkgs is the set of package paths in the analyzed package set;
	// the workspace naming convention only applies to types declared in
	// packages we can see (never to stdlib types like strings.Builder).
	loadedPkgs map[string]bool
	// Graph is the module-wide call graph and Summaries the per-function
	// summaries over it, the substrate of the interprocedural checks
	// (ctxflow, deepnoalloc, lockhold). Built once per Suite.Run.
	Graph     *CallGraph
	Summaries map[*FuncNode]*Summary
	// Borrows holds the borrow/writer facts of the lock-discipline checks
	// (borrowck, lockmode), computed over Graph after Summaries.
	Borrows map[*FuncNode]*BorrowInfo
	// Conc holds the per-function concurrency summaries (channel ops,
	// WaitGroup deltas, atomic publish/load sites) behind the concurrency
	// layer (chanprotocol, wgbalance, atomicpub, sharedwrite).
	Conc map[*FuncNode]*ConcSummary
	// Handles holds the arena-handle provenance summaries (return/param
	// classes, mutator and bounded facts) behind the handle layer
	// (handleprov, stridebound, genstale, narrowcast), computed over
	// Graph after Borrows.
	Handles map[*FuncNode]*HandleInfo
	// atomicVars maps every variable (field or package var) whose address
	// feeds a sync/atomic function anywhere in the module to the position
	// of one such use, rendered for diagnostics. atomicmix flags plain
	// accesses of these variables.
	atomicVars map[types.Object]string
}

// wsDocPhrases are the doc-comment fragments that mark a type as a
// single-owner reusable workspace regardless of its name.
var wsDocPhrases = []string{"not goroutine-safe", "one per worker", "per goroutine"}

// computeFacts scans every package's type declarations once.
func computeFacts(pkgs []*Package) *Facts {
	f := &Facts{
		wsTypes:    make(map[string]bool),
		loadedPkgs: make(map[string]bool),
		atomicVars: make(map[types.Object]string),
	}
	for _, pkg := range pkgs {
		f.loadedPkgs[pkg.Path] = true
		collectAtomicVars(pkg, f.atomicVars)
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					doc := ts.Doc
					if doc == nil {
						doc = gd.Doc
					}
					if doc == nil {
						continue
					}
					text := strings.ToLower(doc.Text())
					for _, phrase := range wsDocPhrases {
						if strings.Contains(text, phrase) {
							f.wsTypes[pkg.Path+"."+ts.Name.Name] = true
							break
						}
					}
				}
			}
		}
	}
	return f
}

// isWorkspaceName is the naming convention backstop for packages whose doc
// comments have not (yet) spelled the contract out.
func isWorkspaceName(name string) bool {
	switch name {
	case "Workspace", "Builder", "Searcher", "Heap":
		return true
	}
	return strings.HasSuffix(name, "Workspace") || strings.HasSuffix(name, "WS")
}

// pointerish reports whether a value of type t can alias heap memory: a
// pointer, slice, map, chan, func or interface, or a composite containing
// one. Escaping a non-pointerish value is always a copy and never a hazard.
func pointerish(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan,
		*types.Signature, *types.Interface:
		return true
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if pointerish(u.Field(i).Type()) {
				return true
			}
		}
	case *types.Array:
		return pointerish(u.Elem())
	case *types.TypeParam:
		return true // unknown instantiation: assume the worst
	}
	return false
}

// originTracker computes, for one function declaration, which local
// variables (and by extension which expressions) hold workspace-backed
// memory. It is a monotone may-analysis: once tainted, always tainted.
type originTracker struct {
	pass  *Pass
	facts *Facts
	// wsPkg gates the naming convention: isWorkspaceName only applies to
	// types declared in packages this predicate accepts.
	wsPkg func(string) bool
	body  *ast.BlockStmt
	// tainted locals hold memory backed by an outliving workspace.
	tainted map[types.Object]bool
	// wsAlias locals are pointers to an outliving workspace (pr := &ws.pr),
	// so chains rooted at them count as workspace-rooted.
	wsAlias map[types.Object]bool
}

func newOriginTracker(pass *Pass, facts *Facts, wsPkg func(string) bool, body *ast.BlockStmt) *originTracker {
	tr := &originTracker{
		pass:    pass,
		facts:   facts,
		wsPkg:   wsPkg,
		body:    body,
		tainted: make(map[types.Object]bool),
		wsAlias: make(map[types.Object]bool),
	}
	tr.solve()
	return tr
}

func (tr *originTracker) typeOf(e ast.Expr) types.Type {
	if tv, ok := tr.pass.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// isWS reports whether t (possibly behind a pointer) is a workspace type:
// doc-fact types always, conventionally named types when declared in a
// package the configuration claims.
func (tr *originTracker) isWS(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	qn := obj.Pkg().Path() + "." + obj.Name()
	if tr.facts != nil && tr.facts.wsTypes[qn] {
		return true
	}
	if !isWorkspaceName(obj.Name()) {
		return false
	}
	if tr.wsPkg != nil && tr.wsPkg(obj.Pkg().Path()) {
		return true
	}
	// Inside the analyzed set the convention always applies; outside it
	// (stdlib strings.Builder and friends) it never does.
	return tr.facts != nil && tr.facts.loadedPkgs[obj.Pkg().Path()] && tr.wsPkg == nil
}

func (tr *originTracker) objOf(id *ast.Ident) types.Object {
	info := tr.pass.TypesInfo
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// localTo reports whether obj is declared inside the tracked body (as
// opposed to a parameter, receiver, global, or outer-scope capture).
func (tr *originTracker) localTo(obj types.Object) bool {
	return tr.body != nil && obj.Pos() >= tr.body.Pos() && obj.Pos() < tr.body.End()
}

// outliving reports whether the variable outlives this call: parameters,
// receivers, globals and captures do; function-local workspace values do
// not (their memory dies with the frame) unless they alias an outliving
// workspace.
func (tr *originTracker) outliving(obj types.Object) bool {
	if _, ok := obj.(*types.Var); !ok {
		return false
	}
	if tr.wsAlias[obj] {
		return true
	}
	return !tr.localTo(obj)
}

// rootedWS reports whether e is a selector/index chain in which some prefix
// has a workspace type and whose base variable outlives the call — i.e. e
// denotes (part of) a live workspace rather than a fresh local one.
func (tr *originTracker) rootedWS(e ast.Expr) bool {
	hasWS := false
	for {
		e = ast.Unparen(e)
		if tr.isWS(tr.typeOf(e)) {
			hasWS = true
		}
		switch x := e.(type) {
		case *ast.Ident:
			if !hasWS {
				return false
			}
			obj := tr.objOf(x)
			return obj != nil && tr.outliving(obj)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return false
			}
			e = x.X
		default:
			return false
		}
	}
}

// taintedExpr reports whether evaluating e may yield memory backed by an
// outliving workspace. Callers gate on pointerish(type) — a tainted float
// is a copy, not an alias.
func (tr *originTracker) taintedExpr(e ast.Expr) bool {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.Ident:
		obj := tr.objOf(x)
		if obj != nil && tr.tainted[obj] {
			return true
		}
		return tr.rootedWS(e)
	case *ast.SelectorExpr:
		if tr.rootedWS(e) {
			return true
		}
		return tr.taintedExpr(x.X)
	case *ast.IndexExpr:
		// Reading an element only propagates when the element itself is a
		// slice view (rows of a workspace matrix); a pooled *node element
		// is a handoff, not an alias of the pool.
		if t := tr.typeOf(e); t != nil {
			if _, ok := t.Underlying().(*types.Slice); ok {
				return tr.taintedExpr(x.X)
			}
		}
		return false
	case *ast.SliceExpr:
		return tr.taintedExpr(x.X)
	case *ast.StarExpr:
		return tr.taintedExpr(x.X)
	case *ast.UnaryExpr:
		if x.Op != token.AND {
			return false
		}
		if ix, ok := ast.Unparen(x.X).(*ast.IndexExpr); ok {
			return tr.taintedExpr(ix.X) // &ws.buf[i] aliases the buffer
		}
		return tr.taintedExpr(x.X)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if tr.taintedExpr(el) {
				return true
			}
		}
		return false
	case *ast.TypeAssertExpr:
		return tr.taintedExpr(x.X)
	case *ast.CallExpr:
		return tr.taintedCall(x)
	}
	return false
}

// taintedCall applies the call rules: conversions propagate, append
// propagates from its destination (and from spread sources whose elements
// are slices — element copies of scalars are fresh), and a call on or with
// a live workspace is assumed to hand back workspace memory.
func (tr *originTracker) taintedCall(call *ast.CallExpr) bool {
	info := tr.pass.TypesInfo
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		// Conversion: shares backing for slice-to-slice conversions; a
		// string conversion copies (string is not pointerish, so callers
		// gate it out anyway).
		return len(call.Args) == 1 && tr.taintedExpr(call.Args[0])
	}
	if obj := calleeObject(info, call); obj != nil {
		if b, ok := obj.(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				if len(call.Args) > 0 && tr.taintedExpr(call.Args[0]) {
					return true
				}
				if call.Ellipsis.IsValid() && len(call.Args) == 2 && tr.taintedExpr(call.Args[1]) {
					// append(dst, src...) copies elements; only slice
					// elements still alias the source's backing arrays.
					if st, ok := tr.typeOf(call.Args[1]).Underlying().(*types.Slice); ok {
						if _, elemSlice := st.Elem().Underlying().(*types.Slice); elemSlice {
							return true
						}
					}
				}
				return false
			default:
				return false
			}
		}
	}
	// Method call on a live workspace: ws.matrix(...), ws.node().
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if tr.rootedWS(sel.X) || tr.taintedExpr(sel.X) {
			return true
		}
	}
	// Call handed a live workspace pointer or a tainted slice may return
	// memory carved out of it (MindistWS(w, p, r, ws); beatAll(ws.hs[:0])).
	for _, arg := range call.Args {
		if tr.rootedWS(arg) && tr.isWS(tr.typeOf(arg)) {
			return true
		}
		if tr.taintedExpr(arg) {
			if t := tr.typeOf(arg); t != nil {
				if _, ok := t.Underlying().(*types.Slice); ok {
					return true
				}
			}
		}
	}
	return false
}

// solve runs the assignment transfer to a fixed point (the lattice is two
// monotone bit-sets over locals, so a handful of passes always converges).
func (tr *originTracker) solve() {
	if tr.body == nil {
		return
	}
	for i := 0; i < 8; i++ {
		changed := false
		ast.Inspect(tr.body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				changed = tr.transferAssign(s.Lhs, s.Rhs) || changed
			case *ast.ValueSpec:
				if len(s.Values) > 0 {
					lhs := make([]ast.Expr, len(s.Names))
					for i, id := range s.Names {
						lhs[i] = id
					}
					changed = tr.transferAssign(lhs, s.Values) || changed
				}
			case *ast.RangeStmt:
				if s.Value != nil && tr.taintedExpr(s.X) {
					if id, ok := s.Value.(*ast.Ident); ok {
						if t := tr.typeOf(id); t != nil {
							if _, ok := t.Underlying().(*types.Slice); ok {
								changed = tr.mark(tr.tainted, id) || changed
							}
						}
					}
				}
			}
			return true
		})
		if !changed {
			return
		}
	}
}

func (tr *originTracker) mark(set map[types.Object]bool, id *ast.Ident) bool {
	obj := tr.objOf(id)
	if obj == nil || !tr.localTo(obj) || set[obj] {
		return false
	}
	set[obj] = true
	return true
}

func (tr *originTracker) transferAssign(lhs, rhs []ast.Expr) bool {
	changed := false
	assignOne := func(l, r ast.Expr) {
		id, ok := ast.Unparen(l).(*ast.Ident)
		if !ok {
			return
		}
		obj := tr.objOf(id)
		if obj == nil {
			return
		}
		t := obj.Type() // lhs idents of := are not in the Types map
		if tr.isWS(t) && tr.rootedWS(r) {
			changed = tr.mark(tr.wsAlias, id) || changed
		}
		if pointerish(t) && tr.taintedExpr(r) {
			changed = tr.mark(tr.tainted, id) || changed
		}
	}
	if len(lhs) == len(rhs) {
		for i := range lhs {
			assignOne(lhs[i], rhs[i])
		}
	} else if len(rhs) == 1 {
		if tr.taintedExpr(rhs[0]) {
			for _, l := range lhs {
				if id, ok := ast.Unparen(l).(*ast.Ident); ok {
					if obj := tr.objOf(id); obj != nil && pointerish(obj.Type()) {
						changed = tr.mark(tr.tainted, id) || changed
					}
				}
			}
		}
	}
	return changed
}
