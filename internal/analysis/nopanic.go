package analysis

import (
	"go/ast"
	"go/types"
)

// NewNopanic builds the nopanic analyzer: library packages (by default
// everything under internal/) must report failures as errors, not by tearing
// the process down — the query server runs these code paths on behalf of
// remote callers. Calls to panic, log.Fatal*, and os.Exit are flagged,
// except inside `func init()` bodies, where configuration validation at
// process start is legitimate. Precondition panics that encode documented
// API contracts (dimension mismatches and the like) are kept, but must carry
// an `//ordlint:allow nopanic — reason` annotation.
func NewNopanic(include func(pkgPath string) bool) *Analyzer {
	a := &Analyzer{
		Name:  "nopanic",
		Doc:   "flag panic/log.Fatal/os.Exit in library packages outside init-time validation",
		Layer: "syntactic",
	}
	fatal := map[string]map[string]bool{
		"os":  {"Exit": true},
		"log": {"Fatal": true, "Fatalf": true, "Fatalln": true, "Panic": true, "Panicf": true, "Panicln": true},
	}
	a.Run = func(pass *Pass) {
		if !include(pass.PkgPath) {
			return
		}
		funcDecls(pass, func(name string, decl *ast.FuncDecl) {
			if decl.Recv == nil && decl.Name.Name == "init" {
				return // init-time validation may abort the process
			}
			ast.Inspect(decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch fun := ast.Unparen(call.Fun).(type) {
				case *ast.Ident:
					if obj, ok := pass.TypesInfo.Uses[fun].(*types.Builtin); ok && obj.Name() == "panic" {
						pass.Report(call.Pos(), "panic in library package %s; return an error instead", pass.PkgPath)
					}
				case *ast.SelectorExpr:
					obj := pass.TypesInfo.Uses[fun.Sel]
					if obj == nil || obj.Pkg() == nil {
						return true
					}
					if names, ok := fatal[obj.Pkg().Path()]; ok && names[obj.Name()] {
						pass.Report(call.Pos(), "%s.%s in library package %s; return an error instead", obj.Pkg().Name(), obj.Name(), pass.PkgPath)
					}
				}
				return true
			})
		})
	}
	return a
}
