package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

// NewAtomicmix builds the atomicmix analyzer: a variable whose address
// feeds a sync/atomic function anywhere in the module must never be read
// or written plainly elsewhere — mixed access is a data race even when
// every *write* is atomic, because plain reads can tear or be reordered.
// The typed atomics (atomic.Uint64 and friends, which the module's
// metrics use) make mixing impossible by construction and are out of
// scope; this check guards the address-based escape hatch.
//
// The atomic-variable set is module-wide (collected in computeFacts), so
// an atomic increment in one package poisons plain access in every other.
func NewAtomicmix() *Analyzer {
	a := &Analyzer{
		Name:  "atomicmix",
		Doc:   "a variable accessed via sync/atomic anywhere must never be read or written plainly elsewhere",
		Layer: "interproc",
	}
	a.Run = func(pass *Pass) {
		vars := pass.Facts.atomicVars
		if len(vars) == 0 {
			return
		}
		info := pass.TypesInfo
		for _, file := range pass.Files {
			// Sanctioned spans: the extents of the atomic calls themselves,
			// where the &x operands of course mention the variable.
			var spans [][2]token.Pos
			ast.Inspect(file, func(nd ast.Node) bool {
				if call, ok := nd.(*ast.CallExpr); ok && atomicFuncCall(info, call) {
					spans = append(spans, [2]token.Pos{call.Pos(), call.End()})
				}
				return true
			})
			sanctioned := func(p token.Pos) bool {
				for _, s := range spans {
					if p >= s[0] && p < s[1] {
						return true
					}
				}
				return false
			}
			ast.Inspect(file, func(nd ast.Node) bool {
				id, ok := nd.(*ast.Ident)
				if !ok {
					return true
				}
				o := info.Uses[id]
				if o == nil {
					return true
				}
				if where, atomic := vars[o]; atomic && !sanctioned(id.Pos()) {
					pass.Report(id.Pos(), "%s is accessed atomically at %s but plainly here; mixed access races — use sync/atomic (or a typed atomic)", id.Name, where)
				}
				return true
			})
		}
	}
	return a
}

// collectAtomicVars records every variable whose address is passed to a
// function-style sync/atomic call in pkg, keyed by object with one
// representative atomic-use position for diagnostics. Typed atomics
// (methods on atomic.Uint64 etc.) have receivers and are excluded.
func collectAtomicVars(pkg *Package, out map[types.Object]string) {
	info := pkg.Info
	for _, file := range pkg.Files {
		ast.Inspect(file, func(nd ast.Node) bool {
			call, ok := nd.(*ast.CallExpr)
			if !ok || !atomicFuncCall(info, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				v := addressedVar(info, un.X)
				if v == nil {
					continue
				}
				if _, seen := out[v]; !seen {
					p := pkg.Fset.Position(un.Pos())
					out[v] = fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
				}
			}
			return true
		})
	}
}

// atomicFuncCall recognizes package-level sync/atomic calls
// (atomic.AddUint64, atomic.LoadInt64, ...).
func atomicFuncCall(info *types.Info, call *ast.CallExpr) bool {
	f, ok := calleeObject(info, call).(*types.Func)
	if !ok || f.Pkg() == nil || f.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// addressedVar resolves the variable (field or package/local var) behind
// an &x operand.
func addressedVar(info *types.Info, e ast.Expr) *types.Var {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		v, _ := info.Uses[x].(*types.Var)
		return v
	case *ast.SelectorExpr:
		if s, ok := info.Selections[x]; ok {
			v, _ := s.Obj().(*types.Var)
			return v
		}
		v, _ := info.Uses[x.Sel].(*types.Var)
		return v
	}
	return nil
}
