// Package analysis is a stdlib-only static-analysis driver for this module:
// it loads every package with go/parser + go/types (no x/tools dependency)
// and runs a suite of project-specific analyzers enforcing invariants the
// compiler cannot see — numeric-comparison discipline near region
// boundaries, the cooperative-cancellation contract of the scan loops,
// sentinel-error hygiene, and library-package output/termination rules.
//
// A finding can be suppressed with an escape comment on (or immediately
// above) the offending line:
//
//	//ordlint:allow <check>[,<check>] — <justification>
//
// The justification is free text; the em-dash (or "--") separator is
// conventional. Suppressions without a matching finding are harmless.
//
// Adding a new check is ~50 lines: implement
//
//	var mycheck = &Analyzer{Name: "mycheck", Doc: "...", Run: run}
//
// where run inspects pass.Files with pass.TypesInfo and calls pass.Report,
// add it to the suite in DefaultSuite (and cmd/ordlint's -checks help), and
// drop a fixture package with `// want "regexp"` expectations under
// testdata/src/mycheck for the golden self-test.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding of one analyzer.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Check, d.Message)
}

// Pass carries everything one analyzer needs to inspect one package.
type Pass struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	PkgPath   string

	// Facts carries module-wide context (workspace-contract types) computed
	// once per Suite.Run over the whole analyzed package set.
	Facts *Facts

	// Report records a finding at pos. Findings suppressed by an
	// //ordlint:allow comment are dropped by the suite after the run.
	Report func(pos token.Pos, format string, args ...interface{})
}

// Analyzer is one named check.
type Analyzer struct {
	Name string
	Doc  string
	// Layer places the check in the suite's architecture: "syntactic"
	// (single-file AST walks), "cfg" (intraprocedural dataflow),
	// "interproc" (call-graph + summaries) or "concurrency" (spawn-edge
	// protocols). cmd/ordlint -list prints it and the README table test
	// keeps the docs in sync with it.
	Layer string
	Run   func(*Pass)
}

// Suite is an ordered set of analyzers plus the shared configuration that
// scopes them to the right packages.
type Suite struct {
	Analyzers []*Analyzer

	// fresh are the owning-constructor names (Config.FreshFuncs): borrow
	// derivation stops at them, since the borrows they assemble alias
	// storage the returned object itself owns.
	fresh map[string]bool

	// handle scopes the handle layer's fact computation (nil-safe: an
	// empty config yields empty facts and silent handle checks).
	handle *HandleConfig
}

// Run applies every analyzer to every package and returns the surviving
// diagnostics sorted by position. Packages whose type check failed still run
// (the maps are best-effort populated), but their errors are reported as
// `typecheck` diagnostics so a loader gap cannot silently pass.
func (s *Suite) Run(pkgs []*Package) []Diagnostic {
	var diags []Diagnostic
	facts := computeFacts(pkgs)
	facts.Graph = BuildCallGraph(pkgs)
	facts.Summaries = ComputeSummaries(facts.Graph, pkgs)
	facts.Borrows = ComputeBorrowFacts(facts.Graph, s.fresh)
	facts.Conc = ComputeConcFacts(facts.Graph)
	hc := s.handle
	if hc == nil {
		hc = NewHandleConfig(Config{})
	}
	facts.Handles = ComputeHandleFacts(facts.Graph, facts.Borrows, hc)
	for _, pkg := range pkgs {
		allow := collectAllows(pkg)
		fset := pkg.Fset
		for _, err := range pkg.TypeErrors {
			diags = append(diags, Diagnostic{
				Pos:     positionOfErr(err),
				Check:   "typecheck",
				Message: err.Error(),
			})
		}
		for _, a := range s.Analyzers {
			a := a
			pass := &Pass{
				Fset:      fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				PkgPath:   pkg.Path,
				Facts:     facts,
			}
			pass.Report = func(pos token.Pos, format string, args ...interface{}) {
				p := fset.Position(pos)
				if allow.allows(p.Filename, p.Line, a.Name) {
					return
				}
				diags = append(diags, Diagnostic{
					Pos:     p,
					Check:   a.Name,
					Message: fmt.Sprintf(format, args...),
				})
			}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return diags
}

// positionOfErr extracts the position from a types.Error, if any.
func positionOfErr(err error) token.Position {
	if te, ok := err.(types.Error); ok {
		return te.Fset.Position(te.Pos)
	}
	return token.Position{}
}

// allowSet maps file -> line -> set of check names allowed there.
type allowSet map[string]map[int]map[string]bool

// allows reports whether check findings on (file, line) are suppressed: an
// //ordlint:allow comment covers its own line and the line below it, so it
// can trail the offending code or sit on its own line above it.
func (a allowSet) allows(file string, line int, check string) bool {
	lines, ok := a[file]
	if !ok {
		return false
	}
	for _, l := range [2]int{line, line - 1} {
		if cs, ok := lines[l]; ok && (cs[check] || cs["*"]) {
			return true
		}
	}
	return false
}

// collectAllows parses every //ordlint:allow comment in the package.
func collectAllows(pkg *Package) allowSet {
	set := make(allowSet)
	fset := pkg.Fset
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, "ordlint:allow")
				if !ok {
					continue
				}
				// Strip the justification after an em-dash or "--".
				for _, sep := range []string{"—", "--"} {
					if i := strings.Index(rest, sep); i >= 0 {
						rest = rest[:i]
					}
				}
				pos := fset.Position(c.Pos())
				lines := set[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					set[pos.Filename] = lines
				}
				checks := lines[pos.Line]
				if checks == nil {
					checks = make(map[string]bool)
					lines[pos.Line] = checks
				}
				for _, name := range strings.FieldsFunc(rest, func(r rune) bool {
					return r == ',' || r == ' ' || r == '\t'
				}) {
					checks[name] = true
				}
			}
		}
	}
	return set
}
