package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"ordu/internal/analysis/cfg"
)

// NewLockhold builds the lockhold analyzer: inside the scoped packages
// (the query server's dataset registry, cache and metrics), a mutex may
// not be held across an operation that can block — a channel op, a select
// without default, or a call whose interprocedural summary says it may
// block (network/file I/O, sync waits, sleeps). Holding a lock across
// such an operation turns one slow client into a server-wide stall; the
// registry's pattern is snapshot-under-lock, release, then do the slow
// work.
//
// The held-set analysis is a may-analysis over the function's CFG: Lock
// and RLock add the receiver chain's class ("s.mu"), Unlock and RUnlock
// remove it, block entries join by union, and a deferred Unlock does NOT
// remove (defers run at function exit — exactly the pattern where the lock
// IS held for the rest of the body). Re-acquiring a class already held is
// reported as a self-deadlock.
func NewLockhold(packages map[string]bool) *Analyzer {
	a := &Analyzer{
		Name:  "lockhold",
		Doc:   "a mutex may not be held across channel ops or calls that may block (per interprocedural summary)",
		Layer: "interproc",
	}
	a.Run = func(pass *Pass) {
		if !packages[pass.PkgPath] {
			return
		}
		g, sums := pass.Facts.Graph, pass.Facts.Summaries
		if g == nil || sums == nil {
			return
		}
		for _, n := range g.Nodes {
			if n.Pkg.Path != pass.PkgPath || n.Body() == nil {
				continue
			}
			checkLockhold(pass, n, sums)
		}
	}
	return a
}

// lockEvent is one ordered action inside a basic block.
type lockEvent struct {
	kind  int // evAcquire, evRelease, evBlock
	class string
	pos   token.Pos
	what  string
}

const (
	evAcquire = iota
	evRelease
	evBlock
)

func checkLockhold(pass *Pass, n *FuncNode, sums map[*FuncNode]*Summary) {
	graph := cfg.New(n.Body())
	events := make([][]lockEvent, len(graph.Blocks))
	for _, b := range graph.Blocks {
		for _, node := range b.Nodes {
			events[b.Index] = append(events[b.Index], eventsOf(pass, n, node, sums)...)
		}
	}

	// Fixed point over block-entry held sets (union meet).
	entry := make([]map[string]bool, len(graph.Blocks))
	for i := range entry {
		entry[i] = map[string]bool{}
	}
	apply := func(held map[string]bool, evs []lockEvent, report bool) map[string]bool {
		for _, ev := range evs {
			switch ev.kind {
			case evAcquire:
				if report && held[ev.class] {
					pass.Report(ev.pos, "%s is locked while already held on some path: self-deadlock", ev.class)
				}
				held[ev.class] = true
			case evRelease:
				delete(held, ev.class)
			case evBlock:
				if report && len(held) > 0 {
					pass.Report(ev.pos, "%s while holding %s; release the lock before the blocking operation (snapshot under lock, then work)",
						ev.what, heldList(held))
				}
			}
		}
		return held
	}
	copyOf := func(m map[string]bool) map[string]bool {
		out := make(map[string]bool, len(m))
		for k := range m {
			out[k] = true
		}
		return out
	}
	for changed := true; changed; {
		changed = false
		for _, b := range graph.Blocks {
			out := apply(copyOf(entry[b.Index]), events[b.Index], false)
			for _, succ := range b.Succs {
				for class := range out {
					if !entry[succ.Index][class] {
						entry[succ.Index][class] = true
						changed = true
					}
				}
			}
		}
	}
	// Reporting pass, once, with the converged entry states.
	for _, b := range graph.Blocks {
		apply(copyOf(entry[b.Index]), events[b.Index], true)
	}
}

func heldList(held map[string]bool) string {
	classes := make([]string, 0, len(held))
	for c := range held {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	return strings.Join(classes, ", ")
}

// eventsOf extracts the ordered lock/unlock/block events of one CFG node.
// Defer statements contribute nothing: deferred unlocks run at exit (so
// the lock stays held through the body — the point of the analysis), and
// deferred blocking work runs outside the critical section's useful span.
func eventsOf(pass *Pass, n *FuncNode, node ast.Node, sums map[*FuncNode]*Summary) []lockEvent {
	if _, ok := node.(*ast.DeferStmt); ok {
		return nil
	}
	info := pass.TypesInfo
	var evs []lockEvent
	// Module call edges by site, to consult callee summaries.
	edgeAt := make(map[token.Pos][]*CallEdge)
	for _, e := range n.Out {
		if e.Kind == EdgeCall || e.Kind == EdgeIface || e.Kind == EdgeDynamic {
			edgeAt[e.Pos] = append(edgeAt[e.Pos], e)
		}
	}
	inspectShallow(node, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.SendStmt:
			evs = append(evs, lockEvent{kind: evBlock, pos: x.Pos(), what: "channel send"})
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				evs = append(evs, lockEvent{kind: evBlock, pos: x.Pos(), what: "channel receive"})
			}
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				evs = append(evs, lockEvent{kind: evBlock, pos: x.Pos(), what: "select without default"})
			}
		case *ast.CallExpr:
			if f, class, ok := syncMutexCall(info, x); ok {
				switch f {
				case "Lock", "RLock":
					evs = append(evs, lockEvent{kind: evAcquire, class: class, pos: x.Pos()})
				case "Unlock", "RUnlock":
					evs = append(evs, lockEvent{kind: evRelease, class: class, pos: x.Pos()})
				}
				return true
			}
			// Other blocking stdlib calls.
			if f, ok := calleeObject(info, x).(*types.Func); ok && f.Pkg() != nil {
				if what := externBlocks(f.Pkg().Path(), f.Name()); what != "" {
					evs = append(evs, lockEvent{kind: evBlock, pos: x.Pos(), what: "call to " + what})
					return true
				}
			}
			// Module callees: trust the interprocedural summary.
			for _, e := range edgeAt[x.Pos()] {
				if s := sums[e.Callee]; s != nil && s.MayBlock {
					what := "call to " + shortName(e.Callee.Name)
					if s.BlockVia != "" {
						what += " (blocks via " + shortName(s.BlockVia) + ")"
					} else if len(s.BlockSites) > 0 {
						what += " (" + s.BlockSites[0].What + ")"
					}
					evs = append(evs, lockEvent{kind: evBlock, pos: x.Pos(), what: what})
					break
				}
			}
		}
		return true
	})
	return evs
}

// syncMutexCall recognizes sync.Mutex/RWMutex method calls (including
// promoted embeddings) and returns the method name and the receiver
// chain's lock class.
func syncMutexCall(info *types.Info, call *ast.CallExpr) (method, class string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	var f *types.Func
	if s, found := info.Selections[sel]; found {
		f, _ = s.Obj().(*types.Func)
	} else {
		f, _ = info.Uses[sel.Sel].(*types.Func)
	}
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != "sync" {
		return "", "", false
	}
	switch f.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return f.Name(), exprString(sel.X), true
	}
	return "", "", false
}
