package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// This file builds the module-wide call graph the interprocedural checks
// (ctxflow, deepnoalloc, lockhold) and the function summaries run on. The
// graph is a conservative over-approximation in the CHA (class hierarchy
// analysis) tradition, hand-rolled over go/types:
//
//   - every function declaration and function literal in a module package
//     is a node;
//   - static calls, go statements and defers produce edges of the matching
//     kind;
//   - interface calls (including calls through type-parameter constraints)
//     resolve to every module method with the same name and arity;
//   - calls through function values resolve to every address-taken module
//     function or literal with an identical signature, excluding literals
//     consumed directly by extern calls (sort comparators, registered
//     handlers), which module code can never call through a value;
//   - taking a function's value (method values, handler registration,
//     assigning a closure) produces a "ref" edge, so reachability can follow
//     callbacks without claiming the reference itself is a call.
//
// Calls that leave the module (stdlib, since the module has no other
// dependencies) are recorded per caller as ExternCalls and classified by
// the summary layer instead of growing the graph.

// EdgeKind classifies how a call edge transfers control.
type EdgeKind string

const (
	// EdgeCall is an ordinary statically-resolved call.
	EdgeCall EdgeKind = "call"
	// EdgeGo spawns the callee on a new goroutine.
	EdgeGo EdgeKind = "go"
	// EdgeDefer runs the callee at function exit.
	EdgeDefer EdgeKind = "defer"
	// EdgeIface is an interface (or type-parameter constraint) call,
	// resolved by name+arity to every module method that could satisfy it.
	EdgeIface EdgeKind = "iface"
	// EdgeDynamic is a call through a function value, resolved to every
	// address-taken function with a matching signature shape.
	EdgeDynamic EdgeKind = "dynamic"
	// EdgeRef records that the caller takes the callee's value without
	// calling it (method value, callback registration, closure creation).
	EdgeRef EdgeKind = "ref"
)

// FuncNode is one function in the call graph: a declaration or a literal.
type FuncNode struct {
	// Name qualifies the function like the approved-function sets do
	// ("pkg.Func", "pkg.Recv.Method"); literals append ".funcN" to their
	// enclosing function's name in source order.
	Name string
	Pkg  *Package
	// Exactly one of Decl/Lit is non-nil.
	Decl *ast.FuncDecl
	Lit  *ast.FuncLit
	// Sig is the function's signature (nil only if type-checking failed).
	Sig *types.Signature
	// Out and In are the call edges, in source order per caller.
	Out []*CallEdge
	In  []*CallEdge
	// Extern are calls that leave the analyzed package set.
	Extern []ExternCall
	// AddrTaken reports that the function's value escapes somewhere, making
	// it a candidate target for dynamic calls.
	AddrTaken bool
	// ExternConsumed marks a literal whose only occurrence hands it straight
	// to extern code — a direct argument to an extern call (a sort.Slice
	// comparator, a registered handler) or an assignment to an extern field
	// or variable (flag.FlagSet.Usage): the callback still runs — the ref
	// edge covers that — but no module-internal call through a function
	// value can obtain it, so it is excluded from dynamic resolution.
	ExternConsumed bool
}

// Body returns the function's body block.
func (n *FuncNode) Body() *ast.BlockStmt {
	if n.Decl != nil {
		return n.Decl.Body
	}
	return n.Lit.Body
}

// Pos returns the function's declaration position.
func (n *FuncNode) Pos() token.Pos {
	if n.Decl != nil {
		return n.Decl.Pos()
	}
	return n.Lit.Pos()
}

// CallEdge is one resolved call site.
type CallEdge struct {
	Caller *FuncNode
	Callee *FuncNode
	// Pos is the call site (or reference site) in the caller.
	Pos  token.Pos
	Kind EdgeKind
	// CtxArg reports that a context.Context value is passed at this site.
	CtxArg bool
}

// ExternCall is a call that leaves the module: stdlib functions and methods.
type ExternCall struct {
	// Pkg is the callee's package path ("sync", "net/http").
	Pkg string
	// Name is the function or method name ("Lock").
	Name string
	// Recv is the receiver's type string for methods, "" for functions.
	Recv string
	Pos  token.Pos
	Kind EdgeKind
	// CtxArg reports that a context.Context value is passed at this site.
	CtxArg bool
}

// CallGraph is the module-wide call graph.
type CallGraph struct {
	// Nodes lists every function in deterministic order: packages sorted by
	// path, declarations in file order, literals in source order within
	// their enclosing function.
	Nodes []*FuncNode

	byObj map[*types.Func]*FuncNode
	byLit map[*ast.FuncLit]*FuncNode
}

// NodeOf resolves a declared function object to its node, normalizing
// generic instantiations to their origin declaration.
func (g *CallGraph) NodeOf(f *types.Func) *FuncNode {
	if f == nil {
		return nil
	}
	return g.byObj[f.Origin()]
}

// LitNode resolves a function literal to its node.
func (g *CallGraph) LitNode(lit *ast.FuncLit) *FuncNode { return g.byLit[lit] }

// NumEdges counts the call edges (all kinds).
func (g *CallGraph) NumEdges() int {
	n := 0
	for _, node := range g.Nodes {
		n += len(node.Out)
	}
	return n
}

// ReachableFrom computes the functions reachable from the entry predicate
// over every edge kind (a referenced callback or spawned goroutine does
// run). The result maps each reachable node to the in-edge it was first
// discovered through (nil for entries), which renders call chains for
// diagnostics.
func (g *CallGraph) ReachableFrom(entry func(*FuncNode) bool) map[*FuncNode]*CallEdge {
	reach := make(map[*FuncNode]*CallEdge)
	var queue []*FuncNode
	for _, n := range g.Nodes {
		if entry(n) {
			reach[n] = nil
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.Out {
			if _, ok := reach[e.Callee]; !ok {
				reach[e.Callee] = e
				queue = append(queue, e.Callee)
			}
		}
	}
	return reach
}

// Chain renders the discovery path from an entry point to n as
// "entry → ... → n" using shortened names, given the predecessor map
// returned by ReachableFrom.
func Chain(reach map[*FuncNode]*CallEdge, n *FuncNode) string {
	var names []string
	for cur := n; ; {
		names = append(names, shortName(cur.Name))
		e := reach[cur]
		if e == nil {
			break
		}
		cur = e.Caller
	}
	// Reverse into entry-first order.
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	out := names[0]
	for _, s := range names[1:] {
		out += " → " + s
	}
	return out
}

// shortName trims the package path down to its last element:
// "ordu/internal/server.Server.handleQuery" → "server.Server.handleQuery".
func shortName(name string) string {
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '/' {
			return name[i+1:]
		}
	}
	return name
}

// pendingCall is an interface or dynamic call recorded during the AST walk
// and resolved once every node and address-taken mark exists.
type pendingCall struct {
	caller *FuncNode
	pos    token.Pos
	kind   EdgeKind
	ctxArg bool
	// iface is the interface method for EdgeIface resolution; nil marks a
	// dynamic call resolved by signature shape instead.
	iface *types.Func
	// sig is the called function type, for dynamic arity matching.
	sig *types.Signature
}

// graphBuilder accumulates the graph during the per-package walks.
type graphBuilder struct {
	g        *CallGraph
	pkg      *Package
	modPkgs  map[string]bool // package paths inside the module
	node     *FuncNode       // current enclosing function
	litSeq   *int            // literal counter of the enclosing declaration
	pending  *[]pendingCall
	callKind map[*ast.CallExpr]EdgeKind
	callPos  map[*ast.Ident]bool // identifiers in call position (not refs)
	called   map[*ast.FuncLit]bool
}

// BuildCallGraph constructs the call graph over the module packages of the
// analyzed set (dependency packages contribute type information only).
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{
		byObj: make(map[*types.Func]*FuncNode),
		byLit: make(map[*ast.FuncLit]*FuncNode),
	}
	// Pass 1: a node per function declaration.
	type declWork struct {
		pkg  *Package
		node *FuncNode
	}
	var work []declWork
	for _, pkg := range pkgs {
		if !pkg.InModule || pkg.Info == nil {
			continue
		}
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				decl, ok := d.(*ast.FuncDecl)
				if !ok || decl.Body == nil {
					continue
				}
				n := &FuncNode{
					Name: qualifiedName(pkg.Path, decl),
					Pkg:  pkg,
					Decl: decl,
				}
				if obj, ok := pkg.Info.Defs[decl.Name].(*types.Func); ok && obj != nil {
					n.Sig, _ = obj.Type().(*types.Signature)
					g.byObj[obj.Origin()] = n
				}
				g.Nodes = append(g.Nodes, n)
				work = append(work, declWork{pkg, n})
			}
		}
	}
	// Pass 2: walk bodies, creating literal nodes and static edges, and
	// queueing interface/dynamic calls.
	modPkgs := make(map[string]bool)
	for _, pkg := range pkgs {
		if pkg.InModule {
			modPkgs[pkg.Path] = true
		}
	}
	var pending []pendingCall
	for _, w := range work {
		seq := 0
		b := &graphBuilder{
			g:        g,
			pkg:      w.pkg,
			modPkgs:  modPkgs,
			node:     w.node,
			litSeq:   &seq,
			pending:  &pending,
			callKind: make(map[*ast.CallExpr]EdgeKind),
			callPos:  make(map[*ast.Ident]bool),
			called:   make(map[*ast.FuncLit]bool),
		}
		b.walk(w.node, w.node.Decl.Body)
	}
	// Pass 3: resolve interface and dynamic calls against the completed
	// node set.
	methodsByName := make(map[string][]*FuncNode)
	var dynPool []*FuncNode
	for _, n := range g.Nodes {
		if n.Decl != nil && n.Decl.Recv != nil {
			methodsByName[n.Decl.Name.Name] = append(methodsByName[n.Decl.Name.Name], n)
		}
		if (n.Lit != nil && !n.ExternConsumed) || n.AddrTaken {
			dynPool = append(dynPool, n)
		}
	}
	for _, p := range pending {
		if p.iface != nil {
			isig, _ := p.iface.Type().(*types.Signature)
			for _, m := range methodsByName[p.iface.Name()] {
				if sigShapeMatch(m.Sig, isig) {
					addEdge(p.caller, m, p.pos, EdgeIface, p.ctxArg)
				}
			}
			continue
		}
		for _, cand := range dynPool {
			if dynSigMatch(cand.Sig, p.sig) {
				addEdge(p.caller, cand, p.pos, EdgeDynamic, p.ctxArg)
			}
		}
	}
	return g
}

// sigShapeMatch reports whether two signatures agree in parameter and
// result count — the arity filter interface CHA uses (exact type identity
// would miss generic instantiations and embedded-interface promotion).
// Variadic signatures relax the parameter comparison.
func sigShapeMatch(a, b *types.Signature) bool {
	if a == nil || b == nil {
		return false
	}
	if a.Results().Len() != b.Results().Len() {
		return false
	}
	if a.Variadic() || b.Variadic() {
		return true
	}
	return a.Params().Len() == b.Params().Len()
}

// dynSigMatch matches a dynamic call against a candidate by exact
// parameter/result type identity (receivers excluded: a stored method
// value's receiver is already bound). Count-only matching would connect
// every func(T) U to every func(V) W and poison reachability across
// unrelated packages.
func dynSigMatch(cand, call *types.Signature) bool {
	if cand == nil || call == nil {
		return false
	}
	if cand.Params().Len() != call.Params().Len() ||
		cand.Results().Len() != call.Results().Len() ||
		cand.Variadic() != call.Variadic() {
		return false
	}
	for i := 0; i < cand.Params().Len(); i++ {
		if !types.Identical(cand.Params().At(i).Type(), call.Params().At(i).Type()) {
			return false
		}
	}
	for i := 0; i < cand.Results().Len(); i++ {
		if !types.Identical(cand.Results().At(i).Type(), call.Results().At(i).Type()) {
			return false
		}
	}
	return true
}

func addEdge(caller, callee *FuncNode, pos token.Pos, kind EdgeKind, ctxArg bool) {
	e := &CallEdge{Caller: caller, Callee: callee, Pos: pos, Kind: kind, CtxArg: ctxArg}
	caller.Out = append(caller.Out, e)
	callee.In = append(callee.In, e)
}

// walk traverses body with cur as the enclosing function, switching to a
// fresh node at each function literal.
func (b *graphBuilder) walk(cur *FuncNode, body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			b.callKind[x.Call] = EdgeGo
		case *ast.DeferStmt:
			b.callKind[x.Call] = EdgeDefer
		case *ast.CallExpr:
			b.handleCall(cur, x)
		case *ast.AssignStmt:
			// A literal assigned to an extern field or variable
			// (fs.Usage = func() {...}) leaves the module's reach.
			if len(x.Lhs) == len(x.Rhs) {
				for i, rhs := range x.Rhs {
					lit, ok := ast.Unparen(rhs).(*ast.FuncLit)
					if ok && b.assignTargetExtern(x.Lhs[i]) {
						b.litNodeOf(cur, lit).ExternConsumed = true
					}
				}
			}
		case *ast.FuncLit:
			ln := b.litNodeOf(cur, x)
			if !b.called[x] {
				addEdge(cur, ln, x.Pos(), EdgeRef, false)
			}
			b.walk(ln, x.Body)
			return false
		case *ast.Ident:
			b.maybeRef(cur, x)
		}
		return true
	})
}

// litNodeOf returns (creating if needed) the node of a function literal
// nested in parent.
func (b *graphBuilder) litNodeOf(parent *FuncNode, lit *ast.FuncLit) *FuncNode {
	if n, ok := b.g.byLit[lit]; ok {
		return n
	}
	*b.litSeq++
	n := &FuncNode{
		Name: fmt.Sprintf("%s.func%d", parent.Name, *b.litSeq),
		Pkg:  b.pkg,
		Lit:  lit,
	}
	if tv, ok := b.pkg.Info.Types[lit]; ok && tv.Type != nil {
		n.Sig, _ = tv.Type.(*types.Signature)
	}
	b.g.byLit[lit] = n
	b.g.Nodes = append(b.g.Nodes, n)
	return n
}

// handleCall records an edge, a pending resolution, or an extern call for
// one call expression.
func (b *graphBuilder) handleCall(cur *FuncNode, call *ast.CallExpr) {
	info := b.pkg.Info
	fun := ast.Unparen(call.Fun)
	// Mark identifiers in call position so maybeRef does not turn them into
	// address-taken references.
	switch f := fun.(type) {
	case *ast.Ident:
		b.callPos[f] = true
	case *ast.SelectorExpr:
		b.callPos[f.Sel] = true
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion, not a call
	}
	kind := b.callKind[call]
	if kind == "" {
		kind = EdgeCall
	}
	ctxArg := false
	for _, a := range call.Args {
		if tv, ok := info.Types[a]; ok && tv.Type != nil && isContextType(tv.Type) {
			ctxArg = true
			break
		}
	}
	if lit, ok := fun.(*ast.FuncLit); ok {
		ln := b.litNodeOf(cur, lit)
		b.called[lit] = true
		addEdge(cur, ln, call.Pos(), kind, ctxArg)
		return
	}
	switch o := calleeObject(info, call).(type) {
	case *types.Builtin:
		return
	case *types.Func:
		f := o.Origin()
		sig, _ := f.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
			// Interface or type-parameter constraint call: resolve by CHA
			// in pass 3. (A type parameter's underlying type is its
			// constraint interface, so IsInterface covers both.)
			*b.pending = append(*b.pending, pendingCall{
				caller: cur, pos: call.Pos(), kind: kind, ctxArg: ctxArg, iface: f,
			})
			return
		}
		if callee := b.g.byObj[f]; callee != nil {
			addEdge(cur, callee, call.Pos(), kind, ctxArg)
			return
		}
		recv := ""
		if sig != nil && sig.Recv() != nil {
			recv = types.TypeString(sig.Recv().Type(), func(p *types.Package) string { return "" })
		}
		pkgPath := ""
		if f.Pkg() != nil {
			pkgPath = f.Pkg().Path()
		}
		cur.Extern = append(cur.Extern, ExternCall{
			Pkg: pkgPath, Name: f.Name(), Recv: recv,
			Pos: call.Pos(), Kind: kind, CtxArg: ctxArg,
		})
		// Literal arguments of an extern call never flow back into the
		// module as callable values; keep them out of the dynamic pool.
		for _, a := range call.Args {
			if lit, ok := ast.Unparen(a).(*ast.FuncLit); ok {
				b.litNodeOf(cur, lit).ExternConsumed = true
			}
		}
		return
	default:
		// Call through a function value (variable, field, parameter,
		// result of another call): resolve by signature shape in pass 3.
		if tv, ok := info.Types[call.Fun]; ok && tv.Type != nil {
			if sig, ok := tv.Type.Underlying().(*types.Signature); ok {
				*b.pending = append(*b.pending, pendingCall{
					caller: cur, pos: call.Pos(), kind: kind, ctxArg: ctxArg, sig: sig,
				})
			}
		}
	}
}

// assignTargetExtern reports whether an assignment target is a field or
// variable owned by a package outside the module.
func (b *graphBuilder) assignTargetExtern(lhs ast.Expr) bool {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	var obj types.Object
	if s, found := b.pkg.Info.Selections[sel]; found {
		obj = s.Obj()
	} else {
		obj = b.pkg.Info.Uses[sel.Sel]
	}
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return !b.modPkgs[obj.Pkg().Path()]
}

// maybeRef records a "ref" edge when an identifier names a module function
// outside call position: the function's value escapes (method value,
// callback registration) and becomes a dynamic-call candidate.
func (b *graphBuilder) maybeRef(cur *FuncNode, id *ast.Ident) {
	if b.callPos[id] {
		return
	}
	f, ok := b.pkg.Info.Uses[id].(*types.Func)
	if !ok {
		return
	}
	if target := b.g.NodeOf(f); target != nil {
		target.AddrTaken = true
		addEdge(cur, target, id.Pos(), EdgeRef, false)
	}
}
