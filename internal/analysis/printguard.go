package analysis

import (
	"go/ast"
	"go/types"
)

// NewPrintguard builds the printguard analyzer: library packages (by default
// everything under internal/; cmd/ and examples/ are user-facing and exempt
// by path) must not write to standard output. Diagnostics belong in returned
// errors or in the server's metrics; fmt.Fprint* to a caller-supplied writer
// remains fine. Flagged: fmt.Print/Printf/Println and the built-in
// print/println.
func NewPrintguard(include func(pkgPath string) bool) *Analyzer {
	a := &Analyzer{
		Name:  "printguard",
		Doc:   "flag fmt.Print* and builtin print/println in library packages",
		Layer: "syntactic",
	}
	fmtFuncs := map[string]bool{"Print": true, "Printf": true, "Println": true}
	a.Run = func(pass *Pass) {
		if !include(pass.PkgPath) {
			return
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch fun := ast.Unparen(call.Fun).(type) {
				case *ast.Ident:
					if obj, ok := pass.TypesInfo.Uses[fun].(*types.Builtin); ok &&
						(obj.Name() == "print" || obj.Name() == "println") {
						pass.Report(call.Pos(), "builtin %s in library package %s; route diagnostics through errors or metrics", obj.Name(), pass.PkgPath)
					}
				case *ast.SelectorExpr:
					obj := pass.TypesInfo.Uses[fun.Sel]
					if obj == nil || obj.Pkg() == nil {
						return true
					}
					if obj.Pkg().Path() == "fmt" && fmtFuncs[obj.Name()] {
						pass.Report(call.Pos(), "fmt.%s writes to stdout from library package %s; route diagnostics through errors or metrics", obj.Name(), pass.PkgPath)
					}
				}
				return true
			})
		}
	}
	return a
}
