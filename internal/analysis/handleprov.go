package analysis

import (
	"go/ast"
	"go/types"
)

// NewHandleprov builds the handleprov analyzer: an index subscripting a
// flat run must derive from that structure's own handle APIs — returns of
// classed functions, induction over its runs, the len-of-arena allocation
// idiom, //ordlint:handle producers — never from plain arithmetic, and
// never from a different structure's handle space. A slot index into the
// node-id arenas (or vice versa) is the cross-structure mixing bug the
// type system cannot see once everything is an int.
func NewHandleprov(hc *HandleConfig) *Analyzer {
	a := &Analyzer{
		Name:  "handleprov",
		Doc:   "flat-run subscripts must carry the run's own handle class, not plain or foreign indices",
		Layer: "handle",
	}
	a.Run = func(pass *Pass) {
		if hc == nil || !hc.Packages[pass.PkgPath] {
			return
		}
		g := pass.Facts.Graph
		for _, n := range g.Nodes {
			if n.Pkg.Path != pass.PkgPath || n.Body() == nil {
				continue
			}
			tr := newHandleTracker(n, g, pass.Facts.Handles, hc)
			tr.solve()
			tr.ownInspect(func(nd ast.Node) bool {
				switch x := nd.(type) {
				case *ast.IndexExpr:
					if spec := tr.runSpecOf(x.X); spec != nil && spec.Index != 0 {
						checkRunIndex(pass, tr, x.X, x.Index, spec)
					}
				case *ast.SliceExpr:
					// Window bases must be classed; the extents beyond the
					// base are stride offsets (stridebound's concern).
					if spec := tr.runSpecOf(x.X); spec != nil && spec.Index != 0 {
						checkRunIndex(pass, tr, x.X, x.Low, spec)
					}
				}
				return true
			})
		}
	}
	return a
}

// checkRunIndex verifies one subscript (or slice bound) against the run's
// required index class.
func checkRunIndex(pass *Pass, tr *handleTracker, run, idx ast.Expr, spec *RunSpec) {
	if idx == nil {
		return // x[:n] windows start at the zero handle
	}
	c := tr.exprClass(idx)
	if c&spec.Index != 0 {
		return
	}
	runName := types.ExprString(run)
	if c == 0 {
		pass.Report(idx.Pos(),
			"%s is indexed by %s handles, but this index derives from plain arithmetic — derive it from the structure's own APIs (or annotate the producer //ordlint:handle %s)",
			runName, spec.Index, spec.Index)
		return
	}
	pass.Report(idx.Pos(),
		"%s is indexed by %s handles, but this index carries a %s handle — cross-structure handle mixing",
		runName, spec.Index, c)
}
