package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"ordu/internal/analysis/cfg"
)

// PoolPair names one Get/Put pair by qualified name
// ("pkgpath.Recv.Method"), e.g. the explorer node pool or the hull facet
// free list.
type PoolPair struct {
	Get string
	Put string
}

// NewPoolpair builds the poolpair analyzer: within one function, every
// value obtained from a configured pool Get must on every control-flow
// path either be handed back with the matching Put, or escape (returned,
// stored, passed on) to a new owner. Double-Puts and uses after a Put are
// flagged too. The analysis is a forward may-analysis over the cfg package
// graphs, so early returns, loops, and panics are all accounted for.
func NewPoolpair(pairs []PoolPair) *Analyzer {
	a := &Analyzer{
		Name:  "poolpair",
		Doc:   "every pool/free-list Get needs a Put on all paths; no double-Put; no use after Put",
		Layer: "cfg",
	}
	a.Run = func(pass *Pass) {
		if len(pairs) == 0 {
			return
		}
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				checkPoolPairs(pass, pairs, fn)
			}
		}
	}
	return a
}

// poolState is a may-set of lifecycle facts about one pooled variable.
type poolState uint8

const (
	mayLive poolState = 1 << iota // holds a pool object not yet put back
	mayDead                       // was put back
	mayEsc                        // handed off to a new owner
)

// poolEvent is one lifecycle-relevant occurrence of a tracked variable.
type poolEvent struct {
	pos  token.Pos
	kind int // evGen, evPut, evEsc, evUse
}

const (
	evGen = iota
	evPut
	evEsc
	evUse
)

func checkPoolPairs(pass *Pass, pairs []PoolPair, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	getNames := make(map[string]bool, len(pairs))
	putNames := make(map[string]bool, len(pairs))
	for _, p := range pairs {
		getNames[p.Get] = true
		putNames[p.Put] = true
	}
	callee := func(call *ast.CallExpr) string {
		obj := calleeObject(info, call)
		f, ok := obj.(*types.Func)
		if !ok {
			return ""
		}
		return qualifiedFuncName(f)
	}

	// Pass 1: find the tracked variables — simple locals assigned directly
	// from a Get call — and the position of their gen site.
	tracked := make(map[types.Object]token.Pos)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || !getNames[callee(call)] {
			return true
		}
		id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
		if !ok || id.Name == "_" {
			if !ok {
				pass.Report(as.Pos(), "pool Get result stored into a non-local; the Put obligation cannot be tracked — assign to a local first")
			} else {
				pass.Report(as.Pos(), "pool Get result discarded; the object leaks from the pool")
			}
			return true
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj != nil {
			tracked[obj] = call.Pos()
		}
		return true
	})
	// A bare `ws.node()` expression statement leaks immediately.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		if call, ok := ast.Unparen(es.X).(*ast.CallExpr); ok && getNames[callee(call)] {
			pass.Report(call.Pos(), "pool Get result discarded; the object leaks from the pool")
		}
		return true
	})
	if len(tracked) == 0 {
		return
	}

	g := cfg.New(fn.Body)
	for obj, genPos := range tracked {
		runPoolDataflow(pass, g, info, obj, genPos, callee, getNames, putNames)
	}
}

// eventsIn extracts the lifecycle events for obj from one CFG node, in
// source order.
func eventsIn(n ast.Node, info *types.Info, obj types.Object,
	callee func(*ast.CallExpr) string, getNames, putNames map[string]bool) []poolEvent {
	var evs []poolEvent
	isObj := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return false
		}
		o := info.Uses[id]
		if o == nil {
			o = info.Defs[id]
		}
		return o == obj
	}
	var visit func(n ast.Node, escCtx bool)
	visit = func(n ast.Node, escCtx bool) {
		switch x := n.(type) {
		case nil:
			return
		case *ast.RangeStmt:
			// The cfg range header carries the whole RangeStmt; its body
			// statements live in their own blocks, so only the ranged
			// expression belongs to the header.
			visit(x.X, false)
			return
		case *ast.FuncLit:
			// A closure mentioning the object captures it: escape.
			ast.Inspect(x.Body, func(m ast.Node) bool {
				if e, ok := m.(ast.Expr); ok && isObj(e) {
					evs = append(evs, poolEvent{m.Pos(), evEsc})
				}
				return true
			})
			return
		case *ast.AssignStmt:
			// RHS first (evaluation order), then the store targets.
			gen := len(x.Lhs) == 1 && len(x.Rhs) == 1 && isObj(x.Lhs[0])
			for _, r := range x.Rhs {
				if gen {
					if call, ok := ast.Unparen(r).(*ast.CallExpr); ok && getNames[callee(call)] {
						// x = pool.Get(): rebinding; RHS args first.
						for _, a := range call.Args {
							visit(a, true)
						}
						evs = append(evs, poolEvent{call.Pos(), evGen})
						continue
					}
				}
				// A bare rhs handing the object to a named location is an
				// escape (y := x; n.next = x; s[i] = x).
				if isObj(r) {
					evs = append(evs, poolEvent{r.Pos(), evEsc})
					continue
				}
				visit(r, false)
			}
			for _, l := range x.Lhs {
				if isObj(l) {
					continue // rebinding handled above; plain `x = nil` drops the ref
				}
				visit(l, false)
			}
			return
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				if isObj(r) {
					evs = append(evs, poolEvent{r.Pos(), evEsc})
				} else {
					visit(r, true)
				}
			}
			return
		case *ast.SendStmt:
			visit(x.Chan, false)
			if isObj(x.Value) {
				evs = append(evs, poolEvent{x.Value.Pos(), evEsc})
			} else {
				visit(x.Value, true)
			}
			return
		case *ast.CallExpr:
			name := callee(x)
			if putNames[name] {
				put := false
				for _, a := range x.Args {
					if isObj(a) {
						evs = append(evs, poolEvent{a.Pos(), evPut})
						put = true
					} else {
						visit(a, false)
					}
				}
				if put {
					visit(x.Fun, false)
					return
				}
			}
			visit(x.Fun, false)
			for _, a := range x.Args {
				if isObj(a) {
					// Handed to some other call: new owner.
					evs = append(evs, poolEvent{a.Pos(), evEsc})
				} else {
					visit(a, false)
				}
			}
			return
		case *ast.UnaryExpr:
			if x.Op == token.AND && isObj(x.X) {
				evs = append(evs, poolEvent{x.Pos(), evEsc})
				return
			}
		case *ast.SelectorExpr:
			// Reading (or writing) a field copies the field, not the
			// object: a use of the base, wherever it appears.
			visit(x.X, false)
			return
		case *ast.IndexExpr:
			visit(x.X, false)
			visit(x.Index, false)
			return
		case *ast.StarExpr:
			visit(x.X, false)
			return
		case *ast.CompositeLit:
			for _, el := range x.Elts {
				v := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if isObj(v) {
					evs = append(evs, poolEvent{v.Pos(), evEsc})
				} else {
					visit(v, false)
				}
			}
			return
		case ast.Expr:
			if isObj(x) {
				kind := evUse
				if escCtx {
					kind = evEsc
				}
				evs = append(evs, poolEvent{x.Pos(), kind})
				return
			}
		}
		// Generic descent for anything unhandled.
		var children []ast.Node
		ast.Inspect(n, func(m ast.Node) bool {
			if m == nil || m == n {
				return true
			}
			children = append(children, m)
			return false
		})
		for _, c := range children {
			visit(c, escCtx)
		}
	}
	visit(n, false)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].pos < evs[j].pos })
	return evs
}

func runPoolDataflow(pass *Pass, g *cfg.Graph, info *types.Info, obj types.Object,
	genPos token.Pos, callee func(*ast.CallExpr) string, getNames, putNames map[string]bool) {

	blockEvents := make([][]poolEvent, len(g.Blocks))
	for i, b := range g.Blocks {
		for _, n := range b.Nodes {
			blockEvents[i] = append(blockEvents[i], eventsIn(n, info, obj, callee, getNames, putNames)...)
		}
	}

	transfer := func(in poolState, evs []poolEvent, report func(pos token.Pos, kind int)) poolState {
		s := in
		for _, ev := range evs {
			switch ev.kind {
			case evGen:
				if s&mayLive != 0 && report != nil {
					report(ev.pos, evGen) // re-Get over a live object: previous one leaks
				}
				s = mayLive
			case evPut:
				if s&mayDead != 0 && report != nil {
					report(ev.pos, evPut)
				}
				s = (s &^ mayLive) | mayDead
			case evEsc:
				s = (s &^ mayLive) | mayEsc
			case evUse:
				if s&mayDead != 0 && s&mayEsc == 0 && report != nil {
					report(ev.pos, evUse)
				}
			}
		}
		return s
	}

	// Fixed point, then one reporting pass over the stable states.
	in := make([]poolState, len(g.Blocks))
	out := make([]poolState, len(g.Blocks))
	for changed := true; changed; {
		changed = false
		for i, b := range g.Blocks {
			var s poolState
			if b == g.Entry {
				s = 0
			}
			for _, p := range g.Blocks {
				for _, succ := range p.Succs {
					if succ == b {
						s |= out[p.Index]
					}
				}
			}
			in[i] = s
			ns := transfer(s, blockEvents[i], nil)
			if ns != out[i] {
				out[i] = ns
				changed = true
			}
		}
	}

	seen := map[token.Pos]bool{}
	for i, b := range g.Blocks {
		transfer(in[i], blockEvents[i], func(pos token.Pos, kind int) {
			if seen[pos] {
				return
			}
			seen[pos] = true
			switch kind {
			case evGen:
				pass.Report(pos, "pool Get overwrites %s while it may still hold a live pool object; Put it back first", obj.Name())
			case evPut:
				pass.Report(pos, "%s may already have been returned to the pool on this path (double Put)", obj.Name())
			case evUse:
				pass.Report(pos, "%s is used after being returned to the pool", obj.Name())
			}
		})
		_ = b
	}
	if in[g.Exit.Index]&mayLive != 0 {
		pass.Report(genPos, "pool Get of %s lacks a matching Put on some path to return; every path must Put or hand the object off", obj.Name())
	}
}

// qualifiedFuncName renders a *types.Func as pkgpath.Func or
// pkgpath.Recv.Method, matching PoolPair keys and FloatcmpApproved keys.
func qualifiedFuncName(f *types.Func) string {
	if f.Pkg() == nil {
		return f.Name()
	}
	sig, ok := f.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, okp := t.Underlying().(*types.Pointer); okp {
			t = p.Elem()
		}
		if named, okn := t.(*types.Named); okn {
			return f.Pkg().Path() + "." + named.Obj().Name() + "." + f.Name()
		}
	}
	return f.Pkg().Path() + "." + f.Name()
}
