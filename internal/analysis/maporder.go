package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// NewMaporder builds the maporder analyzer, guarding the determinism of
// ordered output (the paper's operators return rank-sensitive results, and
// the ORU parallel/sequential equivalence test depends on reproducible
// orderings): inside the scoped packages, appending to a slice while
// ranging over a map bakes Go's randomized iteration order into the
// result. The append is exempt when the destination slice is passed to a
// sort call after the range statement — the collect-then-sort idiom the
// module uses (`for id := range cand { ids = append(ids, id) }` followed
// by `sort.Ints(ids)`), which re-establishes a canonical order.
func NewMaporder(packages map[string]bool) *Analyzer {
	a := &Analyzer{
		Name:  "maporder",
		Doc:   "appends inside map-range iteration feed randomized order into results unless the destination is sorted afterwards",
		Layer: "interproc",
	}
	a.Run = func(pass *Pass) {
		if !packages[pass.PkgPath] {
			return
		}
		info := pass.TypesInfo
		for _, f := range pass.Files {
			for _, d := range f.Decls {
				fn, ok := d.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				checkMaporder(pass, info, fn.Body)
			}
		}
	}
	return a
}

func checkMaporder(pass *Pass, info *types.Info, body *ast.BlockStmt) {
	// Also check function literals: handlers collect results in closures.
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if t := typeOf(info, rng.X); t == nil || !isMapType(t) {
			return true
		}
		inspectShallow(rng.Body, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			b, ok := calleeObject(info, call).(*types.Builtin)
			if !ok || b.Name() != "append" || len(call.Args) == 0 {
				return true
			}
			dest := exprString(ast.Unparen(call.Args[0]))
			if dest == "" || sortedAfter(info, body, rng.End(), dest) {
				return true
			}
			pass.Report(call.Pos(), "append to %s inside map-range iteration bakes randomized order into the result; sort the keys first or sort %s after the loop",
				dest, dest)
			return true
		})
		return true
	})
}

func isMapType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// sortedAfter reports whether dest (matched by its rendered expression) is
// passed to a sort call after position `after` — the canonical re-ordering
// that neutralizes map iteration order. Recognized sorters: the sort
// package's Ints/Strings/Float64s/Slice/SliceStable/Sort/Stable and the
// slices package's Sort* functions, with dest as the first argument.
func sortedAfter(info *types.Info, body *ast.BlockStmt, after token.Pos, dest string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < after || len(call.Args) == 0 {
			return true
		}
		f, ok := calleeObject(info, call).(*types.Func)
		if !ok || f.Pkg() == nil {
			return true
		}
		sorter := false
		switch f.Pkg().Path() {
		case "sort":
			switch f.Name() {
			case "Ints", "Strings", "Float64s", "Slice", "SliceStable", "Sort", "Stable":
				sorter = true
			}
		case "slices":
			sorter = strings.HasPrefix(f.Name(), "Sort")
		}
		if sorter && exprString(ast.Unparen(call.Args[0])) == dest {
			found = true
		}
		return true
	})
	return found
}
