package analysis

import (
	"strings"
	"testing"
)

// TestCtxflowStrongerThanCtxpoll pins the headline property of the
// interprocedural layer: on the ctxflow fixture — whose config enables
// BOTH checks over the same package — ctxpoll reports nothing (every
// ctx-forwarding loop satisfies its callee-trusting rule), while ctxflow
// flags the scan loop whose forwarded context dies in a callee that never
// polls it.
func TestCtxflowStrongerThanCtxpoll(t *testing.T) {
	pkg := loadFixture(t, "ctxflow")
	diags := NewSuite(fixtureConfig("ctxflow")).Run([]*Package{pkg})
	var ctxflowScan bool
	for _, d := range diags {
		if d.Check == "ctxpoll" {
			t.Errorf("ctxpoll fired on the fixture ctxflow is meant to out-see: %s", d)
		}
		if d.Check == "ctxflow" && strings.Contains(d.Message, "advances a scan via s.Next") {
			ctxflowScan = true
		}
	}
	if !ctxflowScan {
		t.Errorf("ctxflow did not flag the scan loop that forwards ctx to a dead end; diags: %v", diags)
	}
}

// TestCallGraphEdges pins the structural facts the interprocedural checks
// depend on, using the ctxflow fixture's graph.
func TestCallGraphEdges(t *testing.T) {
	pkg := loadFixture(t, "ctxflow")
	g := BuildCallGraph([]*Package{pkg})

	node := func(name string) *FuncNode {
		t.Helper()
		for _, n := range g.Nodes {
			if n.Name == name {
				return n
			}
		}
		t.Fatalf("call graph has no node %q", name)
		return nil
	}

	// Direct call edge with no context argument.
	handler, spin := node("ctxflow.Handler"), node("ctxflow.spin")
	foundSpin := false
	for _, e := range handler.Out {
		if e.Callee == spin && e.Kind == EdgeCall {
			foundSpin = true
			if e.CtxArg {
				t.Error("Handler → spin edge should not carry a ctx argument")
			}
		}
	}
	if !foundSpin {
		t.Error("missing call edge ctxflow.Handler → ctxflow.spin")
	}

	// Context-forwarding edge.
	forwards, ignores := node("ctxflow.HandlerForwards"), node("ctxflow.ignores")
	foundCtx := false
	for _, e := range forwards.Out {
		if e.Callee == ignores && e.CtxArg {
			foundCtx = true
		}
	}
	if !foundCtx {
		t.Error("missing ctx-forwarding edge ctxflow.HandlerForwards → ctxflow.ignores")
	}

	// Reachability: entries reach their callees, but not the lonely func.
	reach := g.ReachableFrom(func(n *FuncNode) bool {
		return n.Name == "ctxflow.Handler"
	})
	if _, ok := reach[spin]; !ok {
		t.Error("spin should be reachable from Handler")
	}
	if _, ok := reach[node("ctxflow.lonely")]; ok {
		t.Error("lonely must not be reachable from Handler")
	}
	if got := Chain(reach, spin); got != "ctxflow.Handler → ctxflow.spin" {
		t.Errorf("Chain = %q, want %q", got, "ctxflow.Handler → ctxflow.spin")
	}
}

// TestSummaries pins the fixed-point summary facts on the ctxflow fixture:
// direct polling, transitive polling through a ctx-forwarding chain, and
// the absence of polling in the dead-end callee.
func TestSummaries(t *testing.T) {
	pkg := loadFixture(t, "ctxflow")
	g := BuildCallGraph([]*Package{pkg})
	sums := ComputeSummaries(g, []*Package{pkg})

	byName := make(map[string]*Summary)
	for n, s := range sums {
		byName[n.Name] = s
	}
	cases := []struct {
		name  string
		polls bool
	}{
		{"ctxflow.deeper", true},  // polls ctx.Err directly
		{"ctxflow.polls", true},   // transitively, via a ctx-forwarding call
		{"ctxflow.ignores", false}, // receives ctx but drops it
	}
	for _, c := range cases {
		s, ok := byName[c.name]
		if !ok {
			t.Errorf("no summary for %s", c.name)
			continue
		}
		if s.PollsCtx != c.polls {
			t.Errorf("%s: PollsCtx = %v, want %v", c.name, s.PollsCtx, c.polls)
		}
	}
}

// TestModuleGraphSweep builds the call graph and summaries over the whole
// module — every package, every file — and checks global invariants: the
// build must not panic, every function body must have a node, and the
// facade's context-taking entry points must summarize as polling (the
// property ctxflow's clean run on the module rests on).
func TestModuleGraphSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the full module plus its stdlib closure")
	}
	root, modPath, err := FindModule(".")
	if err != nil {
		t.Fatalf("FindModule: %v", err)
	}
	l := NewLoader(modPath, root)
	pkgs, err := l.LoadModule()
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	g := BuildCallGraph(pkgs)
	sums := ComputeSummaries(g, pkgs)

	if len(g.Nodes) < 100 {
		t.Fatalf("call graph has only %d nodes; the walk is missing the tree", len(g.Nodes))
	}
	if g.NumEdges() < len(g.Nodes) {
		t.Errorf("suspiciously sparse graph: %d edges for %d nodes", g.NumEdges(), len(g.Nodes))
	}
	for _, n := range g.Nodes {
		if sums[n] == nil {
			t.Fatalf("no summary computed for %s", n.Name)
		}
		if n.Body() == nil && len(n.Out) > 0 {
			t.Errorf("bodyless node %s has outgoing edges", n.Name)
		}
	}

	// The facade's Ctx methods must prove cancellability transitively.
	for _, entry := range []string{
		modPath + ".Dataset.ORDCtx",
		modPath + ".Dataset.ORUCtx",
	} {
		found := false
		for _, n := range g.Nodes {
			if n.Name == entry {
				found = true
				if !sums[n].PollsCtx {
					t.Errorf("%s does not summarize as polling its context", entry)
				}
			}
		}
		if !found {
			t.Errorf("call graph has no node for facade entry %s", entry)
		}
	}

	// Entry reachability covers a healthy slice of the module but not the
	// whole graph. The offline tools must stay outside the server's cone;
	// cmd/ordud is excepted — the daemon's handler closures are called back
	// by the server it wires up, so they legitimately sit inside it.
	cfg := DefaultConfig(modPath)
	reach := g.ReachableFrom(func(n *FuncNode) bool {
		return cfg.CtxFlowEntryPackages[n.Pkg.Path] || cfg.CtxFlowEntryFuncs[n.Name]
	})
	if len(reach) < 50 || len(reach) >= len(g.Nodes) {
		t.Errorf("entry reachability = %d of %d nodes; expected a proper non-trivial subset", len(reach), len(g.Nodes))
	}
	for n := range reach {
		for _, tool := range []string{"/cmd/ordlint", "/cmd/experiments", "/cmd/benchdiff"} {
			if strings.HasPrefix(n.Pkg.Path, modPath+tool) {
				t.Errorf("offline tool function %s is reachable from a server entry point", n.Name)
			}
		}
	}
}
