package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// NewSenterr builds the senterr analyzer. Packages that export sentinel
// error values (variables named Err* of type error, like the facade's
// ErrBadSeed/ErrBadParams) establish an error contract: callers dispatch on
// errors.Is, so silently discarding such a call's error result swallows
// invalid-input and cancellation signals. The analyzer flags any call to a
// function from such a package (restricted by include to the module's own
// packages) whose error result is dropped — used as a bare statement, passed
// to go/defer, or assigned to the blank identifier.
func NewSenterr(include func(pkgPath string) bool) *Analyzer {
	a := &Analyzer{
		Name:  "senterr",
		Doc:   "flag discarded error results from functions of sentinel-error packages",
		Layer: "syntactic",
	}
	sentinelPkg := make(map[*types.Package]bool)
	declares := func(pkg *types.Package) bool {
		if pkg == nil || !include(pkg.Path()) {
			return false
		}
		if v, ok := sentinelPkg[pkg]; ok {
			return v
		}
		found := false
		scope := pkg.Scope()
		for _, name := range scope.Names() {
			if !strings.HasPrefix(name, "Err") {
				continue
			}
			if v, ok := scope.Lookup(name).(*types.Var); ok && isErrorType(v.Type()) {
				found = true
				break
			}
		}
		sentinelPkg[pkg] = found
		return found
	}

	// errPositions returns the indices of error results of the call's
	// callee, when the callee belongs to a sentinel package.
	errPositions := func(pass *Pass, call *ast.CallExpr) (callee string, idx []int) {
		obj := calleeObject(pass.TypesInfo, call)
		if obj == nil || !declares(obj.Pkg()) {
			return "", nil
		}
		sig, ok := obj.Type().(*types.Signature)
		if !ok {
			return "", nil
		}
		res := sig.Results()
		for i := 0; i < res.Len(); i++ {
			if isErrorType(res.At(i).Type()) {
				idx = append(idx, i)
			}
		}
		return obj.Pkg().Name() + "." + obj.Name(), idx
	}

	a.Run = func(pass *Pass) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				var call *ast.CallExpr
				switch n := n.(type) {
				case *ast.ExprStmt:
					call, _ = n.X.(*ast.CallExpr)
				case *ast.GoStmt:
					call = n.Call
				case *ast.DeferStmt:
					call = n.Call
				case *ast.AssignStmt:
					if len(n.Rhs) != 1 {
						return true
					}
					c, ok := n.Rhs[0].(*ast.CallExpr)
					if !ok {
						return true
					}
					callee, idx := errPositions(pass, c)
					for _, i := range idx {
						if i < len(n.Lhs) {
							if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
								pass.Report(id.Pos(), "error result of %s assigned to _; its package defines sentinel errors callers must check", callee)
							}
						}
					}
					return true
				default:
					return true
				}
				if call == nil {
					return true
				}
				if callee, idx := errPositions(pass, call); len(idx) > 0 {
					pass.Report(call.Pos(), "error result of %s discarded; its package defines sentinel errors callers must check", callee)
				}
				return true
			})
		}
	}
	return a
}
