package analysis

import (
	"go/ast"
	"go/token"
	"go/types"

	"ordu/internal/analysis/cfg"
)

// NewSharedwrite is a lightweight static race check over literal spawn
// edges in the scoped packages: a variable captured by a spawned function
// literal and *written* on one side of the spawn while the other side
// accesses it needs a happens-before edge. The edges the check recognizes
// when scanning the spawner's post-spawn paths are the ones the rest of the
// suite verifies: a Wait on a WaitGroup class the goroutine Dones, and a
// receive/range on a channel class the goroutine sends or closes — beyond
// such a join point the spawner's accesses are ordered after the goroutine.
// Synchronization state itself (channels, sync.* and sync/atomic values) is
// exempt, as are per-slot writes (an index containing a goroutine-local
// variable, the workers-write-disjoint-slots idiom goroutinecap audits) and
// spawn pairs where both sides acquire a common mutex class.
//
// Goroutine-side accesses are the literal's direct captured uses (nested
// literals included); writes hidden behind method calls are the lock-mode
// checks' territory. Method-valued spawns (go sh.run()) are covered by the
// chanprotocol/wgbalance layer instead: their receiver is almost always a
// per-iteration shard whose fields are goroutine-private by construction.
func NewSharedwrite(packages map[string]bool) *Analyzer {
	a := &Analyzer{
		Name:  "sharedwrite",
		Doc:   "variables written on one side of a spawn edge and accessed on the other need a lock/channel/WaitGroup/atomic happens-before edge",
		Layer: "concurrency",
	}
	a.Run = func(pass *Pass) {
		if !packages[pass.PkgPath] {
			return
		}
		g, conc := pass.Facts.Graph, pass.Facts.Conc
		if g == nil || conc == nil {
			return
		}
		for _, n := range g.Nodes {
			if n.Pkg.Path != pass.PkgPath || n.Body() == nil {
				continue
			}
			for _, e := range Spawns(n) {
				if e.Callee.Lit != nil {
					checkSharedWrite(pass, n, e, conc)
				}
			}
		}
	}
	return a
}

// swAccess is one access to a captured variable: root object plus the
// field selector closest to the root ("" for bare or indexed access, which
// matches any field).
type swAccess struct {
	obj     types.Object
	field   string
	write   bool
	perSlot bool // indexed by a goroutine-local variable: disjoint slots
	pos     token.Pos
}

func (a swAccess) matches(b swAccess) bool {
	return a.obj == b.obj && (a.field == "" || b.field == "" || a.field == b.field)
}

func (a swAccess) name() string {
	if a.field != "" {
		return a.obj.Name() + "." + a.field
	}
	return a.obj.Name()
}

// isSyncObj exempts synchronization state: channels, sync.* and
// sync/atomic values (directly or behind a pointer).
func isSyncObj(o types.Object) bool {
	t := o.Type()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
		switch named.Obj().Pkg().Path() {
		case "sync", "sync/atomic", "context":
			return true
		}
	}
	return false
}

// firstField walks an lhs/operand chain to the root, returning the
// selector closest to the root and whether any index along the way uses a
// variable declared inside span (the per-slot idiom).
func firstField(info *types.Info, e ast.Expr, span [2]token.Pos) (field string, perSlot bool) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return field, perSlot
		case *ast.SelectorExpr:
			field = x.Sel.Name
			e = x.X
		case *ast.IndexExpr:
			field = ""
			ast.Inspect(x.Index, func(nd ast.Node) bool {
				if id, ok := nd.(*ast.Ident); ok {
					if o := info.Uses[id]; o != nil && o.Pos() >= span[0] && o.Pos() < span[1] {
						perSlot = true
					}
				}
				return true
			})
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return field, perSlot
			}
			e = x.X
		default:
			return field, perSlot
		}
	}
}

// collectAccessesIn gathers the captured-variable accesses of one AST
// fragment. outer decides whether an object counts as captured; span is
// the goroutine-local extent for the per-slot exemption (zero span when
// collecting on the spawner side). deep walks nested literals too (they
// run on the same goroutine as the enclosing literal).
func collectAccessesIn(info *types.Info, frag ast.Node, outer func(types.Object) bool, span [2]token.Pos, deep bool) []swAccess {
	var out []swAccess
	var lhsSpans [][2]token.Pos
	record := func(lhs ast.Expr) {
		lhsSpans = append(lhsSpans, [2]token.Pos{lhs.Pos(), lhs.End()})
		o := rootObj(info, lhs)
		if o == nil || !outer(o) || isSyncObj(o) {
			return
		}
		field, perSlot := firstField(info, lhs, span)
		out = append(out, swAccess{obj: o, field: field, write: true, perSlot: perSlot, pos: lhs.Pos()})
	}
	visit := func(nd ast.Node) bool {
		switch x := nd.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				record(lhs)
			}
		case *ast.IncDecStmt:
			record(x.X)
		case *ast.Ident:
			v, ok := info.Uses[x].(*types.Var)
			if !ok || v.IsField() || !outer(v) || isSyncObj(v) {
				return true
			}
			for _, sp := range lhsSpans {
				if x.Pos() >= sp[0] && x.Pos() < sp[1] {
					return true // already accounted as (part of) a write
				}
			}
			out = append(out, swAccess{obj: v, pos: x.Pos()})
		}
		return true
	}
	if deep {
		ast.Inspect(frag, visit)
	} else {
		inspectShallow(frag, visit)
	}
	return out
}

// lockClassesOf collects the mutex classes a node's call cone acquires.
func lockClassesOf(n *FuncNode) map[string]bool {
	out := map[string]bool{}
	for _, m := range reachableCalls(n) {
		body := m.Body()
		if body == nil || m.Pkg.Info == nil {
			continue
		}
		inspectShallow(body, func(nd ast.Node) bool {
			call, ok := nd.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, tn := range [2]string{"Mutex", "RWMutex"} {
				if name, recv, ok := syncMethodCall(m.Pkg.Info, call, "sync", tn); ok {
					if name == "Lock" || name == "RLock" {
						if c := chanClass(recv); c != "" {
							out[c] = true
						}
					}
				}
			}
			return true
		})
	}
	return out
}

func checkSharedWrite(pass *Pass, n *FuncNode, e *CallEdge, conc map[*FuncNode]*ConcSummary) {
	info := n.Pkg.Info
	lit := e.Callee.Lit
	litSpan := [2]token.Pos{lit.Pos(), lit.End()}
	outer := func(o types.Object) bool {
		return o.Pos() < litSpan[0] || o.Pos() >= litSpan[1]
	}

	// Common-mutex suppression: when both the goroutine and the spawner
	// acquire a shared lock class, the lockmode/lockhold layer owns the
	// discipline and this check stays quiet.
	gLocks := lockClassesOf(e.Callee)
	if len(gLocks) > 0 {
		for c := range lockClassesOf(n) {
			if gLocks[c] {
				return
			}
		}
	}

	gAcc := collectAccessesIn(info, lit.Body, outer, litSpan, true)

	// Join classes: beyond a Wait on a class the goroutine Dones, or a
	// recv/range on a class the goroutine sends or closes, the spawner is
	// ordered after the goroutine.
	gcone := ConcCone(e.Callee, conc)
	doneClasses, chanClasses := map[string]bool{}, map[string]bool{}
	for _, op := range gcone.WGs {
		if op.Kind == WGDone && op.Class != "" {
			doneClasses[op.Class] = true
		}
	}
	for _, op := range gcone.Chans {
		if (op.Kind == ChanSend || op.Kind == ChanClose) && op.Class != "" {
			chanClasses[op.Class] = true
		}
	}
	sAcc := spawnerAccessesAfter(info, n, e, doneClasses, chanClasses)

	reported := map[token.Pos]bool{}
	report := func(at swAccess, other swAccess, goroutineWrote bool) {
		if reported[at.pos] {
			return
		}
		reported[at.pos] = true
		spawnLine := pass.Fset.Position(e.Pos).Line
		if goroutineWrote {
			pass.Report(at.pos, "%s is written by the goroutine spawned at line %d and accessed here without a happens-before edge (lock, channel, WaitGroup, or atomic)", other.name(), spawnLine)
		} else {
			pass.Report(at.pos, "%s is accessed by the goroutine spawned at line %d and written here without a happens-before edge (lock, channel, WaitGroup, or atomic)", other.name(), spawnLine)
		}
	}
	for _, ga := range gAcc {
		if ga.perSlot {
			continue
		}
		for _, sa := range sAcc {
			if !ga.matches(sa) || (!ga.write && !sa.write) || sa.perSlot {
				continue
			}
			if ga.write {
				report(sa, ga, true)
			} else {
				report(sa, ga, false)
			}
		}
	}

	// Loop fan-out: a spawn inside a loop runs one goroutine per
	// iteration; a captured loop-invariant variable written by the literal
	// is written by all of them concurrently.
	loopSpan, inLoop := enclosingLoop(n.Body(), e.Pos)
	if inLoop {
		seen := map[string]bool{}
		for _, ga := range gAcc {
			if !ga.write || ga.perSlot || seen[ga.name()] {
				continue
			}
			if ga.obj.Pos() >= loopSpan[0] && ga.obj.Pos() < loopSpan[1] {
				continue // per-iteration variable: each goroutine gets its own
			}
			seen[ga.name()] = true
			pass.Report(e.Pos, "%s is written by every goroutine spawned in this loop; concurrent goroutines race on it", ga.name())
		}
	}
}

// enclosingLoop returns the span of the innermost for/range statement
// containing pos.
func enclosingLoop(body *ast.BlockStmt, pos token.Pos) ([2]token.Pos, bool) {
	var best [2]token.Pos
	found := false
	inspectShallow(body, func(nd ast.Node) bool {
		switch nd.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			if pos >= nd.Pos() && pos < nd.End() {
				if !found || nd.Pos() > best[0] {
					best = [2]token.Pos{nd.Pos(), nd.End()}
					found = true
				}
			}
		}
		return true
	})
	return best, found
}

// spawnerAccessesAfter walks the spawner's CFG from the spawn site and
// collects captured-variable accesses on every path until a join point
// (Wait on doneClasses, recv/range on chanClasses) orders the spawner
// after the goroutine.
func spawnerAccessesAfter(info *types.Info, n *FuncNode, e *CallEdge, doneClasses, chanClasses map[string]bool) []swAccess {
	graph := cfg.New(n.Body())
	spawnBlk, spawnIdx := -1, -1
	for _, b := range graph.Blocks {
		for i, nd := range b.Nodes {
			if g, ok := nd.(*ast.GoStmt); ok && e.Pos >= g.Pos() && e.Pos < g.End() {
				spawnBlk, spawnIdx = b.Index, i
			}
		}
	}
	if spawnBlk < 0 {
		return nil
	}
	anyone := func(types.Object) bool { return true }
	noSpan := [2]token.Pos{token.NoPos, token.NoPos}

	isBarrier := func(nd ast.Node) bool {
		barrier := false
		inspectShallow(nd, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.CallExpr:
				if name, recv, ok := syncMethodCall(info, x, "sync", "WaitGroup"); ok && name == "Wait" {
					if doneClasses[chanClass(recv)] {
						barrier = true
					}
				}
			case *ast.UnaryExpr:
				if x.Op == token.ARROW && chanClasses[chanClass(x.X)] {
					barrier = true
				}
			case *ast.RangeStmt:
				if chanClasses[chanClass(x.X)] {
					barrier = true
				}
			}
			return !barrier
		})
		return barrier
	}

	var out []swAccess
	nodeAccesses := func(nd ast.Node) {
		switch x := nd.(type) {
		case *ast.GoStmt, *ast.DeferStmt:
			// Another goroutine's work, or exit-time cleanup that in this
			// module runs after the joins; neither is a post-spawn access
			// on this path.
			return
		case *ast.RangeStmt:
			// The CFG stores the whole range statement in the loop head;
			// only the per-iteration key/value writes and the ranged
			// expression belong to the head. Body statements sit in their
			// own blocks.
			for _, kv := range []ast.Expr{x.Key, x.Value} {
				if kv == nil {
					continue
				}
				if o := rootObj(info, kv); o != nil && !isSyncObj(o) {
					field, _ := firstField(info, kv, noSpan)
					out = append(out, swAccess{obj: o, field: field, write: true, pos: kv.Pos()})
				}
			}
			out = append(out, collectAccessesIn(info, x.X, anyone, noSpan, false)...)
		default:
			out = append(out, collectAccessesIn(info, nd, anyone, noSpan, false)...)
		}
	}

	// Worklist from the spawn statement onward; the spawn block itself
	// re-enters from index 0 if it sits on a loop. A barrier stops the
	// current path without blocking sibling paths.
	visited := map[int]bool{}
	var stack []int
	b := graph.Blocks[spawnBlk]
	blocked := false
	for i := spawnIdx + 1; i < len(b.Nodes); i++ {
		if isBarrier(b.Nodes[i]) {
			blocked = true
			break
		}
		nodeAccesses(b.Nodes[i])
	}
	if !blocked {
		for _, s := range b.Succs {
			stack = append(stack, s.Index)
		}
	}
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if visited[blk] {
			continue
		}
		visited[blk] = true
		cur := graph.Blocks[blk]
		blocked = false
		for _, nd := range cur.Nodes {
			if isBarrier(nd) {
				blocked = true
				break
			}
			nodeAccesses(nd)
		}
		if blocked {
			continue
		}
		for _, s := range cur.Succs {
			stack = append(stack, s.Index)
		}
	}
	return out
}
