package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// handle.go computes the arena-handle provenance facts behind the handle
// layer (handleprov, stridebound, genstale, narrowcast). The flat spatial
// core addresses everything with integers — node ids into the level/count/
// children arenas, slot indices into the packed point chunks, generation
// counters guarding cached results — and Go's type system sees them all as
// interchangeable ints. This layer re-types them: every integer value is
// abstracted into a provenance class (node handle, slot handle, generation
// value, plain int) by tracking where it was born (returns of the flat
// core's own APIs, induction over its runs, the len-of-arena fresh-handle
// idiom, //ordlint:handle annotations) and how it flows through locals,
// params, struct fields and stride arithmetic. The facts are computed once
// per Suite.Run over the module call graph, like borrow.go's facts, via a
// monotone fixed point: classes only ever grow, so the iteration
// terminates.

// HandleClass is a bitmask of provenance classes an integer value may
// carry. The zero value means plain int: no provenance, no obligations.
type HandleClass uint8

const (
	// HandleNode marks tree-node ids: indices into the R-tree's node
	// arenas (level, count, rseg) and bases of its stride windows.
	HandleNode HandleClass = 1 << iota
	// HandleSlot marks packed point-slot indices: indices into the chunk
	// storage and the idAt arena of the tree and the collection.
	HandleSlot
	// HandleGen marks generation counter values: reads of a configured
	// generation field, compared (never subscripted) to detect staleness.
	HandleGen
)

// String renders the class set for diagnostics ("node", "node|slot", ...).
func (c HandleClass) String() string {
	if c == 0 {
		return "plain"
	}
	var parts []string
	if c&HandleNode != 0 {
		parts = append(parts, "node")
	}
	if c&HandleSlot != 0 {
		parts = append(parts, "slot")
	}
	if c&HandleGen != 0 {
		parts = append(parts, "gen")
	}
	return strings.Join(parts, "|")
}

// parseHandleClass resolves a class name from a //ordlint:handle directive.
func parseHandleClass(word string) (HandleClass, bool) {
	switch word {
	case "node":
		return HandleNode, true
	case "slot":
		return HandleSlot, true
	case "gen":
		return HandleGen, true
	}
	return 0, false
}

// RunSpec describes one flat run: an arena-backed slice (or slot map)
// field of a flat-core structure. Index is the class a subscript into the
// run must carry (zero: any index is fine, the run is only an element
// provider, like a free list). Elem is the class an element read from the
// run yields. Stride marks the capacity-strided window runs (children and
// rect arenas) whose subscripts stridebound audits term by term.
type RunSpec struct {
	Index  HandleClass
	Elem   HandleClass
	Stride bool
}

// HandleConfig scopes the handle layer. All maps are keyed with qualified
// names: packages by import path, fields by "pkgpath.Type.field", types by
// "pkgpath.Type", functions by "pkgpath.Func" / "pkgpath.Recv.Method".
type HandleConfig struct {
	// Packages whose function bodies the handle checks audit.
	Packages map[string]bool
	// Runs are the flat runs (see RunSpec).
	Runs map[string]RunSpec
	// Types are named integer types that ARE handles (rtree.NodeRef): any
	// expression of such a type carries the class.
	Types map[string]HandleClass
	// BoundFields are capacity fields (dim, fanout, entCap) and count
	// runs: expressions derived from them are accepted as stride-window
	// offsets and guard bounds.
	BoundFields map[string]bool
	// GenFields are generation-counter fields: plain reads and atomic
	// .Load() calls on them yield HandleGen values.
	GenFields map[string]bool
	// Owners are the flat-core structures whose //ordlint:writer methods
	// invalidate outstanding handles and views (genstale kill points).
	Owners map[string]bool
	// StableViews are borrow-annotated functions whose views survive
	// mutations of their structure (the slot-stability contract: the
	// chunk storage never reallocates, so slot-backed vectors stay
	// addressable). Borrow-annotated views NOT listed here are killed.
	StableViews map[string]bool
}

// NewHandleConfig picks the handle-layer scoping off the suite Config.
func NewHandleConfig(cfg Config) *HandleConfig {
	return &HandleConfig{
		Packages:    cfg.HandlePackages,
		Runs:        cfg.HandleRuns,
		Types:       cfg.HandleTypes,
		BoundFields: cfg.HandleBoundFields,
		GenFields:   cfg.HandleGenFields,
		Owners:      cfg.HandleOwners,
		StableViews: cfg.HandleStableViews,
	}
}

// HandleInfo is the per-function handle summary.
type HandleInfo struct {
	// Ret is the class of the function's first result (handles are
	// returned first by convention; later results are errors/flags).
	Ret HandleClass
	// RetAnnotated: the //ordlint:handle directive is present, i.e. the
	// returned handle is a documented contract rather than inferred.
	RetAnnotated bool
	// Params are the classes flowing into each parameter, unioned over
	// every call site in the module.
	Params []HandleClass
	// Mutates: calling this function invalidates outstanding handles and
	// unstable views of its receiver — //ordlint:mutates, or an
	// //ordlint:writer method of a configured owner structure.
	Mutates bool
	// MutatesAnnotated: the //ordlint:mutates directive itself is present.
	MutatesAnnotated bool
	// Bounded: //ordlint:bounded is present — the function's stride
	// subscripts and narrowing conversions are vouched for by a documented
	// caller contract or capacity invariant.
	Bounded bool
}

// handleDirectiveClass extracts the class of a //ordlint:handle directive.
func handleDirectiveClass(doc *ast.CommentGroup) (HandleClass, bool) {
	if doc == nil {
		return 0, false
	}
	for _, c := range doc.List {
		rest, ok := strings.CutPrefix(c.Text, "//ordlint:handle ")
		if !ok {
			continue
		}
		word := rest
		if i := strings.IndexAny(word, " \t"); i >= 0 {
			word = word[:i]
		}
		if cls, ok := parseHandleClass(word); ok {
			return cls, true
		}
	}
	return 0, false
}

// ownerTypeOf returns the qualified named type of a method's receiver
// ("pkgpath.Type"), or "" for functions and unresolvable receivers.
func ownerTypeOf(n *FuncNode) string {
	if n.Decl == nil || n.Decl.Recv == nil {
		return ""
	}
	obj := recvObject(n)
	if obj == nil {
		return ""
	}
	t := obj.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name()
}

// ComputeHandleFacts computes the handle summaries over the module call
// graph. borrows supplies the writer/borrow annotations (computed first in
// Suite.Run) that seed the Mutates facts and classify views for genstale.
func ComputeHandleFacts(g *CallGraph, borrows map[*FuncNode]*BorrowInfo, hc *HandleConfig) map[*FuncNode]*HandleInfo {
	facts := make(map[*FuncNode]*HandleInfo, len(g.Nodes))
	for _, n := range g.Nodes {
		hi := &HandleInfo{}
		if n.Sig != nil {
			hi.Params = make([]HandleClass, n.Sig.Params().Len())
		}
		if n.Decl != nil {
			if cls, ok := handleDirectiveClass(n.Decl.Doc); ok {
				hi.Ret, hi.RetAnnotated = cls, true
			}
			hi.Bounded = hasDirective(n.Decl.Doc, "bounded")
			hi.MutatesAnnotated = hasDirective(n.Decl.Doc, "mutates")
			hi.Mutates = hi.MutatesAnnotated
			if !hi.Mutates {
				if bi := borrows[n]; bi != nil && bi.WriterAnnotated && hc.Owners[ownerTypeOf(n)] {
					hi.Mutates = true
				}
			}
		}
		// Signature rule: a declared handle-typed result is a handle
		// regardless of annotation (rtree.NodeRef returns).
		if n.Sig != nil && n.Sig.Results().Len() > 0 {
			hi.Ret |= typeHandleClass(n.Sig.Results().At(0).Type(), hc)
		}
		facts[n] = hi
	}
	// Monotone fixed point: propagate classes through returns and call
	// arguments until nothing grows. Classes are 3-bit masks, so the
	// iteration is bounded by a few rounds.
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes {
			if n.Body() == nil {
				continue
			}
			tr := newHandleTracker(n, g, facts, hc)
			tr.solve()
			if ret := tr.returnClass(); facts[n].Ret|ret != facts[n].Ret {
				facts[n].Ret |= ret
				changed = true
			}
			if tr.mergeArgClasses() {
				changed = true
			}
		}
	}
	return facts
}

// typeHandleClass classifies a type: named integer types configured as
// handle types carry their class wherever they appear.
func typeHandleClass(t types.Type, hc *HandleConfig) HandleClass {
	if t == nil {
		return 0
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return 0
	}
	return hc.Types[named.Obj().Pkg().Path()+"."+named.Obj().Name()]
}

// handleTracker infers the provenance classes of a single function's
// locals, flow-insensitively (like borrowTracker): classes only grow, and
// a handful of rounds reaches the fixed point of any realistic body.
type handleTracker struct {
	n     *FuncNode
	g     *CallGraph
	facts map[*FuncNode]*HandleInfo
	hc    *HandleConfig
	info  *types.Info
	cls   map[types.Object]HandleClass

	// srcs collects the value sources of each local (1:1 assignments,
	// init specs, self-edges for ++/compound assigns), feeding the
	// capacity-derivation test of stridebound's guard machinery.
	srcs map[types.Object][]ast.Expr
	// capMemo memoizes capacityDerived per object: 0 unknown, 1 visiting
	// (cycle: not capacity), 2 yes, 3 no.
	capMemo map[types.Object]uint8
}

func newHandleTracker(n *FuncNode, g *CallGraph, facts map[*FuncNode]*HandleInfo, hc *HandleConfig) *handleTracker {
	tr := &handleTracker{
		n: n, g: g, facts: facts, hc: hc,
		info:    n.Pkg.Info,
		cls:     make(map[types.Object]HandleClass),
		srcs:    make(map[types.Object][]ast.Expr),
		capMemo: make(map[types.Object]uint8),
	}
	// Seed parameters from the classes observed at call sites module-wide.
	hi := facts[n]
	var params *types.Tuple
	if n.Sig != nil {
		params = n.Sig.Params()
	}
	if params != nil && n.Decl != nil && n.Decl.Type.Params != nil {
		i := 0
		for _, f := range n.Decl.Type.Params.List {
			for _, name := range f.Names {
				if i < len(hi.Params) && hi.Params[i] != 0 {
					if obj := tr.info.Defs[name]; obj != nil {
						tr.cls[obj] |= hi.Params[i]
					}
				}
				i++
			}
			if len(f.Names) == 0 {
				i++
			}
		}
	}
	tr.collectSources()
	return tr
}

// ownStmts visits the function's own statements, skipping nested function
// literals (they are separate graph nodes with their own trackers).
func (tr *handleTracker) ownInspect(fn func(ast.Node) bool) {
	body := tr.n.Body()
	if body == nil {
		return
	}
	ast.Inspect(body, func(nd ast.Node) bool {
		if _, ok := nd.(*ast.FuncLit); ok {
			return false
		}
		return fn(nd)
	})
}

// collectSources records every local's value sources for the capacity
// test. Self-referential updates (i++, i += k) record the variable itself
// as a source, which the cycle detection maps to "not capacity-derived".
func (tr *handleTracker) collectSources() {
	tr.ownInspect(func(nd ast.Node) bool {
		switch s := nd.(type) {
		case *ast.AssignStmt:
			if s.Tok == token.ASSIGN || s.Tok == token.DEFINE {
				if len(s.Lhs) == len(s.Rhs) {
					for i, lhs := range s.Lhs {
						if obj := lhsObject(tr.info, lhs); obj != nil {
							tr.srcs[obj] = append(tr.srcs[obj], s.Rhs[i])
						}
					}
				} else {
					// Tuple from a call: opaque to the capacity test.
					for _, lhs := range s.Lhs {
						if obj := lhsObject(tr.info, lhs); obj != nil {
							tr.srcs[obj] = append(tr.srcs[obj], s.Rhs[0])
						}
					}
				}
			} else {
				// Compound assignment: the variable derives from itself.
				for _, lhs := range s.Lhs {
					if obj := lhsObject(tr.info, lhs); obj != nil {
						tr.srcs[obj] = append(tr.srcs[obj], lhs)
					}
				}
			}
		case *ast.IncDecStmt:
			if obj := lhsObject(tr.info, s.X); obj != nil {
				tr.srcs[obj] = append(tr.srcs[obj], s.X)
			}
		case *ast.ValueSpec:
			for i, name := range s.Names {
				if obj := tr.info.Defs[name]; obj != nil && i < len(s.Values) {
					tr.srcs[obj] = append(tr.srcs[obj], s.Values[i])
				}
			}
		case *ast.RangeStmt:
			// Range keys/values are opaque sources (handled by the guard
			// machinery and the run element rules, not the capacity test).
			if obj := lhsObject(tr.info, s.Key); obj != nil {
				tr.srcs[obj] = append(tr.srcs[obj], s.Key)
			}
			if obj := lhsObject(tr.info, s.Value); obj != nil {
				tr.srcs[obj] = append(tr.srcs[obj], s.Value)
			}
		}
		return true
	})
}

// lhsObject resolves an assignment target identifier's object (nil for
// blank, selectors, subscripts).
func lhsObject(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// solve runs the local class propagation to its fixed point.
func (tr *handleTracker) solve() {
	for round := 0; round < 8; round++ {
		changed := false
		tr.ownInspect(func(nd ast.Node) bool {
			switch s := nd.(type) {
			case *ast.AssignStmt:
				if len(s.Lhs) == len(s.Rhs) {
					for i, lhs := range s.Lhs {
						changed = tr.merge(lhs, tr.exprClass(s.Rhs[i])) || changed
					}
				} else if len(s.Rhs) == 1 {
					// Tuple from a call: the handle is the first result.
					changed = tr.merge(s.Lhs[0], tr.exprClass(s.Rhs[0])) || changed
				}
			case *ast.ValueSpec:
				for i, name := range s.Names {
					if i < len(s.Values) {
						changed = tr.merge(name, tr.exprClass(s.Values[i])) || changed
					}
				}
			case *ast.RangeStmt:
				if spec := tr.runSpecOf(s.X); spec != nil {
					// Induction over a run: the key is a valid index into
					// it, the value is one of its elements.
					changed = tr.merge(s.Key, spec.Index) || changed
					changed = tr.merge(s.Value, spec.Elem) || changed
				}
			}
			return true
		})
		if !changed {
			return
		}
	}
}

// merge unions a class into an assignment target's object.
func (tr *handleTracker) merge(lhs ast.Expr, c HandleClass) bool {
	if c == 0 || lhs == nil {
		return false
	}
	obj := lhsObject(tr.info, lhs)
	if obj == nil {
		return false
	}
	if tr.cls[obj]|c == tr.cls[obj] {
		return false
	}
	tr.cls[obj] |= c
	return true
}

// runSpecOf resolves a flat-run selector expression (t.ents, c.idAt) to
// its RunSpec, or nil when the expression is not a configured run.
func (tr *handleTracker) runSpecOf(e ast.Expr) *RunSpec {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	key := tr.fieldKey(sel)
	if key == "" {
		return nil
	}
	if spec, ok := tr.hc.Runs[key]; ok {
		return &spec
	}
	return nil
}

// fieldKey renders a selector as "pkgpath.Type.field" ("" when the base is
// not a (pointer to a) named type).
func (tr *handleTracker) fieldKey(sel *ast.SelectorExpr) string {
	t := typeOf(tr.info, sel.X)
	if t == nil {
		return ""
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + sel.Sel.Name
}

// exprClass computes the provenance classes an expression may carry.
func (tr *handleTracker) exprClass(e ast.Expr) HandleClass {
	if e == nil {
		return 0
	}
	e = ast.Unparen(e)
	c := typeHandleClass(typeOf(tr.info, e), tr.hc)
	switch x := e.(type) {
	case *ast.Ident:
		if obj := lhsObject(tr.info, x); obj != nil {
			c |= tr.cls[obj]
		}
	case *ast.SelectorExpr:
		if key := tr.fieldKey(x); key != "" && tr.hc.GenFields[key] {
			c |= HandleGen
		}
	case *ast.IndexExpr:
		if spec := tr.runSpecOf(x.X); spec != nil {
			c |= spec.Elem
		}
	case *ast.BinaryExpr:
		switch x.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
			token.AND, token.OR, token.XOR, token.SHL, token.SHR, token.AND_NOT:
			c |= tr.exprClass(x.X) | tr.exprClass(x.Y)
		}
	case *ast.UnaryExpr:
		if x.Op == token.ADD || x.Op == token.SUB || x.Op == token.XOR {
			c |= tr.exprClass(x.X)
		}
	case *ast.CallExpr:
		c |= tr.callClass(x)
	}
	return c
}

// callClass classifies a call result: conversions pass the operand class
// through (and add the target type's own class), len() of a run yields the
// run's index class (the fresh-handle allocation idiom: slot = len(idAt)),
// atomic loads of a generation field yield gen, and module callees
// contribute their summarized return class.
func (tr *handleTracker) callClass(call *ast.CallExpr) HandleClass {
	// Conversion: T(x).
	if tv, ok := tr.info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return typeHandleClass(typeOf(tr.info, call), tr.hc) | tr.exprClass(call.Args[0])
	}
	// Builtin len/cap of a run.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && (id.Name == "len" || id.Name == "cap") && len(call.Args) == 1 {
		if spec := tr.runSpecOf(call.Args[0]); spec != nil {
			return spec.Index
		}
		return 0
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		// Atomic load of a generation field: nd.gen.Load().
		if sel.Sel.Name == "Load" {
			if inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
				if key := tr.fieldKey(inner); key != "" && tr.hc.GenFields[key] {
					return HandleGen
				}
			}
		}
	}
	// Module callee: use its summarized return class.
	if callee := tr.calleeNode(call); callee != nil {
		return tr.facts[callee].Ret
	}
	return 0
}

// calleeNode resolves a call to its module graph node (nil for extern,
// builtin and dynamic calls).
func (tr *handleTracker) calleeNode(call *ast.CallExpr) *FuncNode {
	obj := calleeObject(tr.info, call)
	f, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	return tr.g.NodeOf(f)
}

// returnClass unions the classes of the function's first return operand.
func (tr *handleTracker) returnClass() HandleClass {
	var c HandleClass
	tr.ownInspect(func(nd ast.Node) bool {
		if ret, ok := nd.(*ast.ReturnStmt); ok && len(ret.Results) > 0 {
			c |= tr.exprClass(ret.Results[0])
		}
		return true
	})
	return c
}

// mergeArgClasses pushes the classes of call arguments into the callees'
// parameter summaries, reporting whether anything grew.
func (tr *handleTracker) mergeArgClasses() bool {
	changed := false
	tr.ownInspect(func(nd ast.Node) bool {
		call, ok := nd.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := tr.calleeNode(call)
		if callee == nil {
			return true
		}
		hi := tr.facts[callee]
		for i, arg := range call.Args {
			if i >= len(hi.Params) {
				break // variadic tail: no summary slot
			}
			c := tr.exprClass(arg)
			if c != 0 && hi.Params[i]|c != hi.Params[i] {
				hi.Params[i] |= c
				changed = true
			}
		}
		return true
	})
	return changed
}

// --- capacity derivation (shared by stridebound and narrowcast guards) ---

// capacityDerived reports whether an expression is derived purely from
// constants and capacity sources: configured bound fields (dim, fanout,
// entCap), elements of configured count runs, and len/cap results. Such
// expressions are legitimate stride-window offsets and guard bounds.
func (tr *handleTracker) capacityDerived(e ast.Expr, depth int) bool {
	if depth > 8 || e == nil {
		return false
	}
	e = ast.Unparen(e)
	if tv, ok := tr.info.Types[e]; ok && tv.Value != nil {
		return true // constant
	}
	switch x := e.(type) {
	case *ast.SelectorExpr:
		if key := tr.fieldKey(x); key != "" && tr.hc.BoundFields[key] {
			return true
		}
		return false
	case *ast.IndexExpr:
		// An element of a count run: t.count[n].
		if sel, ok := ast.Unparen(x.X).(*ast.SelectorExpr); ok {
			if key := tr.fieldKey(sel); key != "" && tr.hc.BoundFields[key] {
				return true
			}
		}
		return false
	case *ast.CallExpr:
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && (id.Name == "len" || id.Name == "cap") {
			return true
		}
		// Conversions unwrap: int(t.count[n]).
		if tv, ok := tr.info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
			return tr.capacityDerived(x.Args[0], depth+1)
		}
		return false
	case *ast.BinaryExpr:
		switch x.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO, token.REM, token.SHL, token.SHR:
			return tr.capacityDerived(x.X, depth+1) && tr.capacityDerived(x.Y, depth+1)
		}
		return false
	case *ast.UnaryExpr:
		return tr.capacityDerived(x.X, depth+1)
	case *ast.Ident:
		obj := lhsObject(tr.info, x)
		if obj == nil {
			return false
		}
		return tr.identCapacity(obj, depth)
	}
	return false
}

// identCapacity reports whether every value source of a local is
// capacity-derived. Cycles (i++ self-edges) and source-less objects
// (parameters) are not capacity-derived.
func (tr *handleTracker) identCapacity(obj types.Object, depth int) bool {
	switch tr.capMemo[obj] {
	case 1:
		return false // visiting: self-referential update
	case 2:
		return true
	case 3:
		return false
	}
	srcs := tr.srcs[obj]
	if len(srcs) == 0 {
		tr.capMemo[obj] = 3
		return false
	}
	tr.capMemo[obj] = 1
	ok := true
	for _, s := range srcs {
		if id, isIdent := ast.Unparen(s).(*ast.Ident); isIdent && lhsObject(tr.info, id) == obj {
			ok = false // self-edge (++, +=, range var)
			break
		}
		if !tr.capacityDerived(s, depth+1) {
			ok = false
			break
		}
	}
	if ok {
		tr.capMemo[obj] = 2
	} else {
		tr.capMemo[obj] = 3
	}
	return ok
}

// --- guard tracking (shared by stridebound and narrowcast) ---

// guardState carries the objects and exact expressions currently known to
// be upper-bounded by a capacity-derived expression.
type guardState struct {
	objs  map[types.Object]bool
	exprs map[string]bool
}

func newGuardState() *guardState {
	return &guardState{objs: map[types.Object]bool{}, exprs: map[string]bool{}}
}

func (g *guardState) clone() *guardState {
	c := newGuardState()
	for o := range g.objs {
		c.objs[o] = true
	}
	for e := range g.exprs {
		c.exprs[e] = true
	}
	return c
}

// add records that e is guarded: by object when it is a plain identifier,
// by exact rendering otherwise (len(points), x.n, ...).
func (g *guardState) add(info *types.Info, e ast.Expr) {
	e = ast.Unparen(e)
	if obj := lhsObject(info, e); obj != nil {
		g.objs[obj] = true
		return
	}
	g.exprs[types.ExprString(e)] = true
}

// Guarded reports whether e is under an upper-bound guard.
func (g *guardState) Guarded(info *types.Info, e ast.Expr) bool {
	e = ast.Unparen(e)
	if obj := lhsObject(info, e); obj != nil && g.objs[obj] {
		return true
	}
	return g.exprs[types.ExprString(e)]
}

// guardedWalk walks the function body in execution order, maintaining the
// guard state, and calls visit for every expression node with the state in
// force at that point. Guards come from three shapes:
//
//	if i < cap { ... }        // positive guard inside the branch
//	for i := 0; i < cap; i++  // positive guard inside the body
//	if i >= cap { return }    // negative guard after a terminating branch
//
// where cap is capacity-derived. Assigning to a guarded variable drops its
// guard (the early-out shape re-establishes it on the next iteration).
func (tr *handleTracker) guardedWalk(visit func(n ast.Node, g *guardState)) {
	if body := tr.n.Body(); body != nil {
		tr.walkStmts(body.List, newGuardState(), visit)
	}
}

func (tr *handleTracker) walkStmts(stmts []ast.Stmt, g *guardState, visit func(ast.Node, *guardState)) {
	for _, s := range stmts {
		tr.walkStmt(s, g, visit)
	}
}

// visitExpr runs visit over an expression subtree (skipping nested
// function literals) with the current guard state.
func (tr *handleTracker) visitExpr(e ast.Expr, g *guardState, visit func(ast.Node, *guardState)) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(nd ast.Node) bool {
		if _, ok := nd.(*ast.FuncLit); ok {
			return false
		}
		if nd != nil {
			visit(nd, g)
		}
		return true
	})
}

// dropAssigned removes guards for variables the statement writes.
func (tr *handleTracker) dropAssigned(s ast.Stmt, g *guardState) {
	switch x := s.(type) {
	case *ast.AssignStmt:
		for _, lhs := range x.Lhs {
			if obj := lhsObject(tr.info, lhs); obj != nil {
				delete(g.objs, obj)
			}
		}
	case *ast.IncDecStmt:
		if obj := lhsObject(tr.info, x.X); obj != nil {
			delete(g.objs, obj)
		}
	}
}

// terminates reports whether a block always leaves the enclosing scope
// (return/panic at the end, or an unconditional branch statement).
func terminates(b *ast.BlockStmt) bool {
	if b == nil || len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// conjuncts splits a condition on &&; disjuncts splits on ||.
func conjuncts(e ast.Expr, out []ast.Expr) []ast.Expr {
	if b, ok := ast.Unparen(e).(*ast.BinaryExpr); ok && b.Op == token.LAND {
		return conjuncts(b.Y, conjuncts(b.X, out))
	}
	return append(out, ast.Unparen(e))
}

func disjuncts(e ast.Expr, out []ast.Expr) []ast.Expr {
	if b, ok := ast.Unparen(e).(*ast.BinaryExpr); ok && b.Op == token.LOR {
		return disjuncts(b.Y, disjuncts(b.X, out))
	}
	return append(out, ast.Unparen(e))
}

// addPositiveGuards records the guards a condition establishes where it
// holds: every && conjunct of shape x < cap, x <= cap, cap > x, cap >= x.
func (tr *handleTracker) addPositiveGuards(cond ast.Expr, g *guardState) {
	if cond == nil {
		return
	}
	for _, c := range conjuncts(cond, nil) {
		b, ok := c.(*ast.BinaryExpr)
		if !ok {
			continue
		}
		switch b.Op {
		case token.LSS, token.LEQ: // x < cap
			if tr.capacityDerived(b.Y, 0) {
				g.add(tr.info, b.X)
			}
		case token.GTR, token.GEQ: // cap > x
			if tr.capacityDerived(b.X, 0) {
				g.add(tr.info, b.Y)
			}
		}
	}
}

// addNegationGuards records the guards that hold where a condition is
// false: every || disjunct of shape x > cap, x >= cap, cap < x, cap <= x
// bounds x on the fall-through path of a terminating branch.
func (tr *handleTracker) addNegationGuards(cond ast.Expr, g *guardState) {
	if cond == nil {
		return
	}
	for _, c := range disjuncts(cond, nil) {
		b, ok := c.(*ast.BinaryExpr)
		if !ok {
			continue
		}
		switch b.Op {
		case token.GTR, token.GEQ: // !(x > cap) => x <= cap
			if tr.capacityDerived(b.Y, 0) {
				g.add(tr.info, b.X)
			}
		case token.LSS, token.LEQ: // !(cap < x) => x <= cap
			if tr.capacityDerived(b.X, 0) {
				g.add(tr.info, b.Y)
			}
		}
	}
}

func (tr *handleTracker) walkStmt(s ast.Stmt, g *guardState, visit func(ast.Node, *guardState)) {
	switch x := s.(type) {
	case *ast.BlockStmt:
		tr.walkStmts(x.List, g.clone(), visit)
	case *ast.IfStmt:
		if x.Init != nil {
			tr.walkStmt(x.Init, g, visit)
		}
		tr.visitExpr(x.Cond, g, visit)
		thenG := g.clone()
		tr.addPositiveGuards(x.Cond, thenG)
		tr.walkStmts(x.Body.List, thenG, visit)
		if x.Else != nil {
			elseG := g.clone()
			tr.addNegationGuards(x.Cond, elseG)
			tr.walkStmt(x.Else, elseG, visit)
		}
		if terminates(x.Body) {
			// if i >= cap { return }: the fall-through is bounded.
			tr.addNegationGuards(x.Cond, g)
		}
	case *ast.ForStmt:
		if x.Init != nil {
			tr.walkStmt(x.Init, g, visit)
		}
		tr.visitExpr(x.Cond, g, visit)
		bodyG := g.clone()
		tr.addPositiveGuards(x.Cond, bodyG)
		tr.walkStmts(x.Body.List, bodyG, visit)
		if x.Post != nil {
			tr.walkStmt(x.Post, bodyG, visit)
		}
	case *ast.RangeStmt:
		tr.visitExpr(x.X, g, visit)
		bodyG := g.clone()
		if x.Key != nil {
			bodyG.add(tr.info, x.Key)
		}
		if x.Value != nil {
			bodyG.add(tr.info, x.Value)
		}
		tr.walkStmts(x.Body.List, bodyG, visit)
	case *ast.SwitchStmt:
		if x.Init != nil {
			tr.walkStmt(x.Init, g, visit)
		}
		tr.visitExpr(x.Tag, g, visit)
		for _, cc := range x.Body.List {
			if c, ok := cc.(*ast.CaseClause); ok {
				caseG := g.clone()
				for _, e := range c.List {
					tr.visitExpr(e, caseG, visit)
				}
				tr.walkStmts(c.Body, caseG, visit)
			}
		}
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			tr.walkStmt(x.Init, g, visit)
		}
		tr.walkStmt(x.Assign, g, visit)
		for _, cc := range x.Body.List {
			if c, ok := cc.(*ast.CaseClause); ok {
				tr.walkStmts(c.Body, g.clone(), visit)
			}
		}
	case *ast.SelectStmt:
		for _, cc := range x.Body.List {
			if c, ok := cc.(*ast.CommClause); ok {
				commG := g.clone()
				if c.Comm != nil {
					tr.walkStmt(c.Comm, commG, visit)
				}
				tr.walkStmts(c.Body, commG, visit)
			}
		}
	case *ast.LabeledStmt:
		tr.walkStmt(x.Stmt, g, visit)
	case *ast.AssignStmt:
		for _, e := range x.Rhs {
			tr.visitExpr(e, g, visit)
		}
		for _, e := range x.Lhs {
			tr.visitExpr(e, g, visit)
		}
		tr.dropAssigned(x, g)
	case *ast.IncDecStmt:
		tr.visitExpr(x.X, g, visit)
		tr.dropAssigned(x, g)
	case *ast.ExprStmt:
		tr.visitExpr(x.X, g, visit)
	case *ast.ReturnStmt:
		for _, e := range x.Results {
			tr.visitExpr(e, g, visit)
		}
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						tr.visitExpr(v, g, visit)
					}
				}
			}
		}
	case *ast.DeferStmt:
		tr.visitExpr(x.Call, g, visit)
	case *ast.GoStmt:
		tr.visitExpr(x.Call, g, visit)
	case *ast.SendStmt:
		tr.visitExpr(x.Chan, g, visit)
		tr.visitExpr(x.Value, g, visit)
	}
}
