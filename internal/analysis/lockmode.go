package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"ordu/internal/analysis/cfg"
)

// NewLockmode builds the lockmode analyzer: inside the scoped packages
// (the serving layer), method calls on guarded types must hold the
// guarding RWMutex in the right mode. Writers — //ordlint:writer methods
// and everything the field-write derivation classifies as mutating — need
// the write lock on every path; readers need at least the read lock. Two
// RWMutex misuse patterns are flagged on any mutex, guarded or not:
// upgrading RLock to Lock on the same class (self-deadlock) and
// mode-mismatched unlock pairings (Lock…RUnlock, RLock…Unlock).
//
// The dataflow keeps four held-sets per CFG point — may/must × read/write
// (may joins by union, must by intersection) — plus a must-set of *fresh*
// objects: results of the configured constructors, exempt from lock
// requirements until they escape through a call argument, composite
// literal, store, or channel send. Lock classes match receivers by root
// identifier: holding "nd.mu" covers calls on "nd.ds". Methods in
// LockModePure (reads of construction-immutable state) are exempt.
func NewLockmode(packages, guarded, fresh, pure map[string]bool) *Analyzer {
	a := &Analyzer{
		Name:  "lockmode",
		Doc:   "RWMutex mode discipline: writers on guarded types need the write lock, readers the read lock; no RLock→Lock upgrades or mode-mismatched unlocks",
		Layer: "interproc",
	}
	a.Run = func(pass *Pass) {
		if !packages[pass.PkgPath] {
			return
		}
		g, sums, borrows := pass.Facts.Graph, pass.Facts.Summaries, pass.Facts.Borrows
		if g == nil || sums == nil || borrows == nil {
			return
		}
		for _, n := range g.Nodes {
			if n.Pkg.Path != pass.PkgPath || n.Decl == nil || n.Decl.Body == nil {
				continue
			}
			checkLockmode(pass, n, g, sums, borrows, guarded, fresh, pure)
		}
	}
	return a
}

// Event kinds of the lockmode dataflow, in block order.
const (
	lmMutex   = iota // direct sync.(RW)Mutex call
	lmSummary        // module callee with net lock ops in its summary
	lmGuard          // method call on a guarded type
	lmGen            // fresh-constructor result bound to a local
	lmKill           // fresh local escapes
)

type lmEvent struct {
	kind   int
	method string    // lmMutex: Lock/RLock/Unlock/RUnlock
	class  string    // lmMutex: lock class ("nd.mu")
	callee *FuncNode // lmSummary, lmGuard
	base   string    // lmGuard: receiver root identifier ("nd")
	root   types.Object
	objs   []types.Object // lmGen: bound locals
	pos    token.Pos
}

// lmState is the dataflow value: may/must held classes per mode, plus the
// must-fresh object set.
type lmState struct {
	mayR, mayW, mustR, mustW map[string]bool
	fresh                    map[types.Object]bool
}

func newLmState() *lmState {
	return &lmState{
		mayR: map[string]bool{}, mayW: map[string]bool{},
		mustR: map[string]bool{}, mustW: map[string]bool{},
		fresh: map[types.Object]bool{},
	}
}

func (s *lmState) clone() *lmState {
	out := newLmState()
	for c := range s.mayR {
		out.mayR[c] = true
	}
	for c := range s.mayW {
		out.mayW[c] = true
	}
	for c := range s.mustR {
		out.mustR[c] = true
	}
	for c := range s.mustW {
		out.mustW[c] = true
	}
	for o := range s.fresh {
		out.fresh[o] = true
	}
	return out
}

// meetInto joins s into dst: union for the may-sets, intersection for the
// must- and fresh-sets. Reports whether dst changed.
func (dst *lmState) meetInto(s *lmState) bool {
	changed := false
	union := func(d, src map[string]bool) {
		for c := range src {
			if !d[c] {
				d[c] = true
				changed = true
			}
		}
	}
	union(dst.mayR, s.mayR)
	union(dst.mayW, s.mayW)
	intersect := func(d, src map[string]bool) {
		for c := range d {
			if !src[c] {
				delete(d, c)
				changed = true
			}
		}
	}
	intersect(dst.mustR, s.mustR)
	intersect(dst.mustW, s.mustW)
	for o := range dst.fresh {
		if !s.fresh[o] {
			delete(dst.fresh, o)
			changed = true
		}
	}
	return changed
}

// baseHeld reports whether any held class is rooted at base ("nd" covers
// "nd.mu" and plain "mu" covers nothing else).
func baseHeld(set map[string]bool, base string) bool {
	for c := range set {
		if c == base || strings.HasPrefix(c, base+".") {
			return true
		}
	}
	return false
}

func checkLockmode(pass *Pass, n *FuncNode, g *CallGraph, sums map[*FuncNode]*Summary, borrows map[*FuncNode]*BorrowInfo, guarded, fresh, pure map[string]bool) {
	info := pass.TypesInfo
	// Methods on a guarded type calling sibling methods through their own
	// receiver are internal delegation: the lock obligation lives with the
	// method's callers, and the writer classification already propagates.
	var recv types.Object
	if n.Decl.Recv != nil {
		if r := recvObject(n); r != nil && guarded[namedQName(r.Type())] {
			recv = r
		}
	}
	graph := cfg.New(n.Decl.Body)
	events := make([][]lmEvent, len(graph.Blocks))
	for _, b := range graph.Blocks {
		for _, node := range b.Nodes {
			events[b.Index] = append(events[b.Index], lmEventsOf(info, g, node, guarded, fresh, pure)...)
		}
	}

	apply := func(st *lmState, evs []lmEvent, report bool) {
		for _, ev := range evs {
			switch ev.kind {
			case lmMutex:
				applyMutex(pass, st, ev, report)
			case lmSummary:
				applySummary(st, sums[ev.callee])
			case lmGuard:
				if report && (recv == nil || ev.root != recv) {
					checkGuardedCall(pass, st, ev, borrows)
				}
			case lmGen:
				for _, o := range ev.objs {
					st.fresh[o] = true
				}
			case lmKill:
				delete(st.fresh, ev.root)
			}
		}
	}

	entry := make([]*lmState, len(graph.Blocks))
	seen := make([]bool, len(graph.Blocks))
	entry[graph.Entry.Index] = newLmState()
	seen[graph.Entry.Index] = true
	for changed := true; changed; {
		changed = false
		for _, b := range graph.Blocks {
			if !seen[b.Index] {
				continue
			}
			out := entry[b.Index].clone()
			apply(out, events[b.Index], false)
			for _, succ := range b.Succs {
				if !seen[succ.Index] {
					entry[succ.Index] = out.clone()
					seen[succ.Index] = true
					changed = true
				} else if entry[succ.Index].meetInto(out) {
					changed = true
				}
			}
		}
	}
	for _, b := range graph.Blocks {
		if !seen[b.Index] {
			continue // unreachable
		}
		apply(entry[b.Index].clone(), events[b.Index], true)
	}
}

// applyMutex transitions the held sets for a direct mutex call, reporting
// upgrades and mode-mismatched unlocks when asked to.
func applyMutex(pass *Pass, st *lmState, ev lmEvent, report bool) {
	c := ev.class
	switch ev.method {
	case "Lock":
		if report && st.mayR[c] && !st.mayW[c] {
			pass.Report(ev.pos, "Lock on %s while the read lock may be held: RLock→Lock upgrades self-deadlock; release the read lock first", c)
		}
		st.mayW[c], st.mustW[c] = true, true
	case "RLock":
		st.mayR[c], st.mustR[c] = true, true
	case "Unlock":
		if report && st.mayR[c] && !st.mayW[c] {
			pass.Report(ev.pos, "Unlock on %s pairs with RLock on some path; use RUnlock", c)
		}
		delete(st.mayW, c)
		delete(st.mustW, c)
		delete(st.mayR, c)
		delete(st.mustR, c)
	case "RUnlock":
		if report && st.mayW[c] && !st.mayR[c] {
			pass.Report(ev.pos, "RUnlock on %s pairs with Lock on some path; use Unlock", c)
		}
		delete(st.mayR, c)
		delete(st.mustR, c)
	}
}

// applySummary folds a module callee's net lock effect into the state:
// classes it acquires without releasing become held (in the callee's mode),
// classes it releases without acquiring are dropped. Neutral pairs — the
// registry's dataset() doing RLock+RUnlock — cancel out.
func applySummary(st *lmState, s *Summary) {
	if s == nil {
		return
	}
	releases := map[LockOp]bool{}
	for _, op := range s.Releases {
		releases[op] = true
	}
	acquires := map[LockOp]bool{}
	for _, op := range s.Acquires {
		acquires[op] = true
		if releases[op] {
			continue // neutral pair
		}
		if op.W {
			st.mayW[op.Class], st.mustW[op.Class] = true, true
		} else {
			st.mayR[op.Class], st.mustR[op.Class] = true, true
		}
	}
	for _, op := range s.Releases {
		if acquires[op] {
			continue
		}
		if op.W {
			delete(st.mayW, op.Class)
			delete(st.mustW, op.Class)
		} else {
			delete(st.mayR, op.Class)
			delete(st.mustR, op.Class)
		}
	}
}

// checkGuardedCall verifies the lock mode at a call on a guarded receiver.
func checkGuardedCall(pass *Pass, st *lmState, ev lmEvent, borrows map[*FuncNode]*BorrowInfo) {
	if ev.root != nil && st.fresh[ev.root] {
		return // unpublished object: no lock needed yet
	}
	bi := borrows[ev.callee]
	name := shortName(ev.callee.Name)
	writer := bi != nil && bi.Writer
	if writer {
		if baseHeld(st.mustW, ev.base) {
			return
		}
		if baseHeld(st.mayR, ev.base) && !baseHeld(st.mayW, ev.base) {
			pass.Report(ev.pos, "writer %s called on %s under the read lock; mutations need the write lock", name, ev.base)
			return
		}
		pass.Report(ev.pos, "writer %s called on %s without the write lock held on every path", name, ev.base)
		return
	}
	if baseHeld(st.mustR, ev.base) || baseHeld(st.mustW, ev.base) {
		return
	}
	pass.Report(ev.pos, "reader %s called on %s without the dataset lock; acquire at least the read lock", name, ev.base)
}

// lmEventsOf extracts the ordered lockmode events of one CFG node. Defer
// statements contribute nothing (deferred unlocks run at exit).
func lmEventsOf(info *types.Info, g *CallGraph, node ast.Node, guarded, fresh, pure map[string]bool) []lmEvent {
	if _, ok := node.(*ast.DeferStmt); ok {
		return nil
	}
	var evs []lmEvent
	inspectShallow(node, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.AssignStmt:
			if objs := freshTargets(info, x, fresh, guarded); len(objs) > 0 {
				evs = append(evs, lmEvent{kind: lmGen, objs: objs, pos: x.Pos()})
			}
		case *ast.CompositeLit:
			for _, el := range x.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					el = kv.Value
				}
				if o := identObj(info, el); o != nil {
					evs = append(evs, lmEvent{kind: lmKill, root: o, pos: el.Pos()})
				}
			}
		case *ast.SendStmt:
			if o := identObj(info, x.Value); o != nil {
				evs = append(evs, lmEvent{kind: lmKill, root: o, pos: x.Pos()})
			}
		case *ast.CallExpr:
			if method, class, ok := syncMutexCall(info, x); ok {
				evs = append(evs, lmEvent{kind: lmMutex, method: method, class: class, pos: x.Pos()})
				return true
			}
			f, ok := calleeObject(info, x).(*types.Func)
			if !ok {
				// Unknown callee: any fresh argument may escape.
				for _, arg := range x.Args {
					if o := identObj(info, arg); o != nil {
						evs = append(evs, lmEvent{kind: lmKill, root: o, pos: arg.Pos()})
					}
				}
				return true
			}
			callee := g.NodeOf(f)
			if callee != nil {
				evs = append(evs, lmEvent{kind: lmSummary, callee: callee, pos: x.Pos()})
				if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
					if qt := guardedRecvType(info, sel.X); guarded[qt] && !pure[funcQName(f)] {
						ev := lmEvent{kind: lmGuard, callee: callee, base: rootName(sel.X), pos: x.Pos()}
						ev.root = rootObj(info, sel.X)
						evs = append(evs, ev)
					}
				}
			}
			// Passing a fresh object as an argument publishes it (the
			// registry's AddDataset); receiver position does not.
			for _, arg := range x.Args {
				if o := identObj(info, arg); o != nil {
					evs = append(evs, lmEvent{kind: lmKill, root: o, pos: arg.Pos()})
				}
			}
		}
		return true
	})
	return evs
}

// freshTargets returns the locals bound to a fresh-constructor result (or
// to an address-of composite literal of a guarded type) in s.
func freshTargets(info *types.Info, s *ast.AssignStmt, fresh, guarded map[string]bool) []types.Object {
	isFresh := func(r ast.Expr) bool {
		switch x := ast.Unparen(r).(type) {
		case *ast.CallExpr:
			f, ok := calleeObject(info, x).(*types.Func)
			return ok && fresh[funcQName(f)]
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return false
			}
			return guarded[guardedRecvType(info, x.X)]
		case *ast.CompositeLit:
			return guarded[guardedRecvType(info, x)]
		}
		return false
	}
	var objs []types.Object
	bind := func(l ast.Expr) {
		if id, ok := ast.Unparen(l).(*ast.Ident); ok {
			if o := info.Defs[id]; o != nil {
				objs = append(objs, o)
			} else if o := info.Uses[id]; o != nil {
				objs = append(objs, o)
			}
		}
	}
	if len(s.Lhs) == len(s.Rhs) {
		for i := range s.Lhs {
			if isFresh(s.Rhs[i]) {
				bind(s.Lhs[i])
			}
		}
		return objs
	}
	if len(s.Rhs) == 1 && isFresh(s.Rhs[0]) {
		for _, l := range s.Lhs {
			bind(l)
		}
	}
	return objs
}

// guardedRecvType renders the deref'd static type of e as "pkgpath.Type"
// (empty for non-named types).
func guardedRecvType(info *types.Info, e ast.Expr) string {
	return namedQName(typeOf(info, e))
}

// namedQName renders a (possibly pointer-to-)named type as "pkgpath.Type".
func namedQName(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name()
}

// rootName is the base identifier of a receiver chain ("nd" for nd.ds).
func rootName(e ast.Expr) string {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x.Name
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.CallExpr:
			return ""
		default:
			return ""
		}
	}
}

// identObj resolves a plain identifier argument (nil otherwise).
func identObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	return info.Uses[id]
}
