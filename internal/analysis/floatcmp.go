package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NewFloatcmp builds the floatcmp analyzer: it flags `==`/`!=` and `switch`
// dispatch on floating-point values, which silently misbehave near the
// region boundaries the ORD/ORU geometry lives on. Exact comparison is legal
// only inside the approved epsilon/dominance helpers (qualified names like
// "ordu/internal/geom.Vector.Equal") or under an
// `//ordlint:allow floatcmp — reason` escape comment, e.g. for comparing a
// value against a stored copy of itself (tie-breaking on previously computed
// keys).
func NewFloatcmp(approved map[string]bool) *Analyzer {
	a := &Analyzer{
		Name:  "floatcmp",
		Doc:   "flag ==, != and switch on floating-point expressions outside approved epsilon helpers",
		Layer: "syntactic",
	}
	a.Run = func(pass *Pass) {
		check := func(owner string, root ast.Node) {
			if approved[owner] {
				return
			}
			ast.Inspect(root, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.BinaryExpr:
					if n.Op != token.EQL && n.Op != token.NEQ {
						return true
					}
					if t := operandType(pass.TypesInfo, n.X, n.Y); t != nil {
						kind := "floating-point"
						if !isFloat(t) {
							kind = "float-containing " + t.String()
						}
						pass.Report(n.OpPos, "%s %s comparison on %s values; use an epsilon helper from internal/geom or internal/linalg", n.Op, kind, t)
					}
				case *ast.SwitchStmt:
					if n.Tag == nil {
						return true
					}
					if tv, ok := pass.TypesInfo.Types[n.Tag]; ok && tv.Type != nil && containsFloat(tv.Type) {
						pass.Report(n.Switch, "switch on floating-point value of type %s; float case dispatch is an exact comparison in disguise", tv.Type)
					}
				}
				return true
			})
		}
		funcDecls(pass, func(name string, decl *ast.FuncDecl) {
			check(name, decl.Body)
		})
		// Package-level initializers are still library code: check them under
		// the package's own name (never approved).
		for _, f := range pass.Files {
			for _, d := range f.Decls {
				if gd, ok := d.(*ast.GenDecl); ok && gd.Tok == token.VAR {
					check(pass.PkgPath, gd)
				}
			}
		}
	}
	return a
}

// operandType returns the comparison's float-bearing operand type, or nil
// when the comparison involves no floating-point component. Untyped constant
// operands take the type of the other side, so `x == 0` on a float x is
// still caught.
func operandType(info *types.Info, x, y ast.Expr) types.Type {
	for _, e := range [2]ast.Expr{x, y} {
		tv, ok := info.Types[e]
		if !ok || tv.Type == nil {
			continue
		}
		if containsFloat(tv.Type) {
			return tv.Type
		}
	}
	return nil
}
