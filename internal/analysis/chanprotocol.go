package analysis

import (
	"go/ast"
	"go/token"
	"go/types"

	"ordu/internal/analysis/cfg"
)

// NewChanprotocol verifies the channel protocols of the scoped packages'
// spawn edges: every channel operation a spawned goroutine performs must
// have a reachable counterpart on the spawner's side (or in a sibling
// goroutine) or a select escape the spawner can trigger — otherwise the
// goroutine blocks forever and leaks. A range over a channel demands a
// reachable close, the only thing that terminates it. Within each function
// a may-closed CFG dataflow flags double-close and send-on-possibly-closed.
//
// Channels are matched by class (terminal field/variable name, see
// concurrency.go); operations whose operand chain bottoms out in a call
// ("<-ctx.Done()") have class "" and are exempt.
func NewChanprotocol(packages map[string]bool) *Analyzer {
	a := &Analyzer{
		Name:  "chanprotocol",
		Doc:   "spawned goroutines' channel sends/receives need a reachable counterpart or select escape; ranges need a reachable close; no double-close or send-on-closed paths",
		Layer: "concurrency",
	}
	a.Run = func(pass *Pass) {
		if !packages[pass.PkgPath] {
			return
		}
		g, conc := pass.Facts.Graph, pass.Facts.Conc
		if g == nil || conc == nil {
			return
		}
		for _, n := range g.Nodes {
			if n.Pkg.Path != pass.PkgPath || n.Body() == nil {
				continue
			}
			checkClosePaths(pass, n)
			for _, e := range Spawns(n) {
				checkSpawnProtocol(pass, e, conc)
			}
		}
	}
	return a
}

// chanKey identifies one channel within a function: the root object when
// the chain resolves, plus the class name to separate fields of one root.
type chanKey struct {
	root  types.Object
	class string
}

// checkClosePaths runs the may-closed dataflow of one function body:
// a close makes the channel may-closed on every path out of it; a second
// close or a send on a may-closed channel is a runtime panic on that path.
// Deferred closes run at function exit and are checked separately (two
// deferred closes of one channel, or a deferred close over an inline one,
// still double-close).
func checkClosePaths(pass *Pass, n *FuncNode) {
	s := pass.Facts.Conc[n]
	if s == nil {
		return
	}
	// Deferred close bookkeeping first: it needs no flow analysis.
	deferredClose := map[chanKey]token.Pos{}
	inlineClose := map[chanKey]bool{}
	for _, op := range s.Chans {
		if op.Kind != ChanClose || op.Class == "" {
			continue
		}
		k := chanKey{op.Root, op.Class}
		if op.Deferred {
			if _, dup := deferredClose[k]; dup {
				pass.Report(op.Pos, "channel %q is closed by two deferred calls; the second close panics at function exit", op.Class)
				continue
			}
			deferredClose[k] = op.Pos
		} else {
			inlineClose[k] = true
		}
	}
	for k := range inlineClose {
		if pos, ok := deferredClose[k]; ok {
			pass.Report(pos, "channel %q has both an inline and a deferred close; the deferred close double-closes at function exit", k.class)
		}
	}

	info := n.Pkg.Info
	graph := cfg.New(n.Body())
	// events per block: inline close and send ops in execution order.
	type cpEvent struct {
		close bool
		key   chanKey
		pos   token.Pos
	}
	events := make([][]cpEvent, len(graph.Blocks))
	for _, b := range graph.Blocks {
		for _, nd := range b.Nodes {
			inspectShallow(nd, func(x ast.Node) bool {
				switch x := x.(type) {
				case *ast.DeferStmt, *ast.GoStmt:
					// Deferred ops run at exit; go-statement ops run on the
					// spawned goroutine's schedule, not on this path.
					_ = x
					return false
				case *ast.SendStmt:
					if c := chanClass(x.Chan); c != "" {
						events[b.Index] = append(events[b.Index], cpEvent{
							key: chanKey{rootObj(info, x.Chan), c}, pos: x.Pos(),
						})
					}
				case *ast.CallExpr:
					if bi, ok := calleeObject(info, x).(*types.Builtin); ok && bi.Name() == "close" && len(x.Args) == 1 {
						if c := chanClass(x.Args[0]); c != "" {
							events[b.Index] = append(events[b.Index], cpEvent{
								close: true,
								key:   chanKey{rootObj(info, x.Args[0]), c}, pos: x.Pos(),
							})
						}
					}
				}
				return true
			})
		}
	}
	// Forward may-analysis to fixed point: in[b] = union of out[preds].
	out := make([]map[chanKey]bool, len(graph.Blocks))
	in := make([]map[chanKey]bool, len(graph.Blocks))
	for i := range out {
		out[i] = map[chanKey]bool{}
		in[i] = map[chanKey]bool{}
	}
	changed := true
	for changed {
		changed = false
		for _, b := range graph.Blocks {
			cur := in[b.Index]
			next := make(map[chanKey]bool, len(cur))
			for k := range cur {
				next[k] = true
			}
			for _, ev := range events[b.Index] {
				if ev.close {
					next[ev.key] = true
				}
			}
			for k := range next {
				if !out[b.Index][k] {
					out[b.Index][k] = true
					changed = true
				}
			}
			for _, succ := range b.Succs {
				for k := range out[b.Index] {
					if !in[succ.Index][k] {
						in[succ.Index][k] = true
						changed = true
					}
				}
			}
		}
	}
	// Report pass: replay each block's events over its stable in-state.
	for _, b := range graph.Blocks {
		state := make(map[chanKey]bool, len(in[b.Index]))
		for k := range in[b.Index] {
			state[k] = true
		}
		for _, ev := range events[b.Index] {
			if ev.close {
				if state[ev.key] {
					pass.Report(ev.pos, "channel %q may already be closed on a path reaching this close; double close panics", ev.key.class)
				}
				state[ev.key] = true
			} else if state[ev.key] {
				pass.Report(ev.pos, "send on channel %q which may be closed on a path reaching this send; send on closed channel panics", ev.key.class)
			}
		}
	}
}

// checkSpawnProtocol matches the channel operations of one spawned
// goroutine's call cone against the counterpart operations available in the
// spawner's cone and in sibling goroutines spawned from it.
func checkSpawnProtocol(pass *Pass, e *CallEdge, conc map[*FuncNode]*ConcSummary) {
	gcone := ConcCone(e.Callee, conc)
	// Counterparts: the spawner's own cone plus every *other* goroutine it
	// (or its callees) spawn — a pipeline's downstream drain counts.
	counter := ConcCone(e.Caller, conc)
	seen := map[*FuncNode]bool{e.Callee: true}
	for _, m := range reachableCalls(e.Caller) {
		for _, se := range Spawns(m) {
			if se.Callee != e.Callee && !seen[se.Callee] {
				seen[se.Callee] = true
				sib := ConcCone(se.Callee, conc)
				counter.Chans = append(counter.Chans, sib.Chans...)
			}
		}
	}
	has := func(class string, kinds ...ChanOpKind) bool {
		for _, op := range counter.Chans {
			if op.Class != class {
				continue
			}
			for _, k := range kinds {
				if op.Kind == k {
					return true
				}
			}
		}
		return false
	}
	escapeOK := func(op ChanOp) bool {
		if op.NonBlocking {
			return true
		}
		for _, esc := range op.Escapes {
			if has(esc, ChanClose, ChanSend) {
				return true
			}
		}
		return false
	}
	for _, op := range gcone.Chans {
		if op.Class == "" {
			continue
		}
		switch op.Kind {
		case ChanSend:
			if !has(op.Class, ChanRecv, ChanRange) && !escapeOK(op) {
				pass.Report(e.Pos, "goroutine %s sends on %q but the spawner side never receives and the send has no select escape; the goroutine can block forever", e.Callee.Name, op.Class)
			}
		case ChanRecv:
			if !has(op.Class, ChanSend, ChanClose) && !escapeOK(op) {
				pass.Report(e.Pos, "goroutine %s receives on %q but the spawner side never sends or closes it; the goroutine can block forever", e.Callee.Name, op.Class)
			}
		case ChanRange:
			if !has(op.Class, ChanClose) {
				pass.Report(e.Pos, "goroutine %s ranges over %q but the spawner side never closes it; the range never terminates", e.Callee.Name, op.Class)
			}
		}
	}
}

// reachableCalls returns n plus every node reachable from it through
// direct call and defer edges — the activation's own call cone. Interface
// and dynamic edges are deliberately excluded: CHA resolves them to every
// compatible address-taken function, far too coarse for protocol matching.
func reachableCalls(n *FuncNode) []*FuncNode {
	seen := map[*FuncNode]bool{n: true}
	out := []*FuncNode{n}
	for i := 0; i < len(out); i++ {
		for _, e := range out[i].Out {
			if (e.Kind == EdgeCall || e.Kind == EdgeDefer) && !seen[e.Callee] {
				seen[e.Callee] = true
				out = append(out, e.Callee)
			}
		}
	}
	return out
}
