package analysis

import (
	"go/token"
)

// NewDeepnoalloc builds the deepnoalloc analyzer, which makes the
// //ordlint:noalloc contract transitive: an annotated kernel may not *call*
// its way to an allocation. The intraprocedural noalloc check polices the
// kernel's own body; deepnoalloc walks the call graph from each kernel and
// flags
//
//   - module callees whose summary records direct allocation sites, and
//   - calls that leave the module into a package not on the allocation-free
//     allowlist (math, sort, ...),
//
// reporting at the kernel's own call site with the full chain, so the
// contract (and any //ordlint:allow escape) lives next to the annotation.
//
// Exemptions mirror the intraprocedural check: call sites inside a cap/len
// growth guard are the sanctioned warm-up path at every hop, and functions
// named in amortized are skipped entirely — they are documented one-time
// cache fills (geom's per-dimension simplex constants) whose steady state
// the dynamic AllocsPerRun gates prove allocation-free.
func NewDeepnoalloc(externAllowed, amortized map[string]bool) *Analyzer {
	a := &Analyzer{
		Name:  "deepnoalloc",
		Doc:   "//ordlint:noalloc kernels must not reach an allocating callee through any call chain",
		Layer: "interproc",
	}
	a.Run = func(pass *Pass) {
		g, sums := pass.Facts.Graph, pass.Facts.Summaries
		if g == nil || sums == nil {
			return
		}
		guards := make(map[*FuncNode][][2]token.Pos)
		guardsOf := func(n *FuncNode) [][2]token.Pos {
			if sp, ok := guards[n]; ok {
				return sp
			}
			sp := guardSpansIn(n.Body())
			guards[n] = sp
			return sp
		}
		for _, n := range g.Nodes {
			if n.Pkg.Path != pass.PkgPath || n.Decl == nil || !hasNoallocDirective(n.Decl) {
				continue
			}
			checkDeepnoalloc(pass, n, sums, guardsOf, externAllowed, amortized)
		}
	}
	return a
}

// checkDeepnoalloc BFS-walks the call graph from the kernel root. Every
// finding is reported at the root's own (unguarded) call site that starts
// the offending chain.
func checkDeepnoalloc(pass *Pass, root *FuncNode, sums map[*FuncNode]*Summary,
	guardsOf func(*FuncNode) [][2]token.Pos, externAllowed, amortized map[string]bool) {

	guarded := func(n *FuncNode, pos token.Pos) bool {
		for _, sp := range guardsOf(n) {
			if pos >= sp[0] && pos < sp[1] {
				return true
			}
		}
		return false
	}

	type step struct {
		node  *FuncNode
		chain string // rendered root → ... → node
		// rootPos is the call site inside the kernel that started this
		// chain — where the finding (and any allow comment) belongs.
		rootPos token.Pos
	}
	rootName := shortName(root.Name)
	visited := map[*FuncNode]bool{root: true}
	var queue []step

	expand := func(s step) {
		n := s.node
		for _, e := range n.Out {
			if e.Kind == EdgeRef || guarded(n, e.Pos) {
				continue
			}
			c := e.Callee
			if visited[c] || amortized[c.Name] {
				continue
			}
			visited[c] = true
			rootPos := s.rootPos
			if n == root {
				rootPos = e.Pos
			}
			queue = append(queue, step{node: c, chain: s.chain + " → " + shortName(c.Name), rootPos: rootPos})
		}
		for _, ec := range n.Extern {
			if ec.Kind == EdgeRef || guarded(n, ec.Pos) || externAllowed[ec.Pkg] {
				continue
			}
			rootPos := s.rootPos
			if n == root {
				rootPos = ec.Pos
			}
			pass.Report(rootPos, "noalloc function %s: call chain %s leaves the module into %s.%s, which is not on the allocation-free allowlist",
				rootName, s.chain, ec.Pkg, ec.Name)
		}
	}

	// The root's own direct sites and extern calls are the intraprocedural
	// noalloc check's job; start from its outgoing module edges only.
	for _, e := range root.Out {
		if e.Kind == EdgeRef || guarded(root, e.Pos) {
			continue
		}
		c := e.Callee
		if visited[c] || amortized[c.Name] {
			continue
		}
		visited[c] = true
		queue = append(queue, step{node: c, chain: rootName + " → " + shortName(c.Name), rootPos: e.Pos})
	}

	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		if sum := sums[s.node]; sum != nil && len(sum.AllocSites) > 0 {
			site := sum.AllocSites[0]
			p := pass.Fset.Position(site.Pos)
			pass.Report(s.rootPos, "noalloc function %s: call chain %s reaches an allocation (%s at %s:%d)",
				rootName, s.chain, site.What, shortPath(p.Filename), p.Line)
			// Do not expand past a reported callee: one finding per chain
			// is actionable; deeper allocations fall out once it is fixed.
			continue
		}
		expand(s)
	}
}

// shortPath trims a path to its last two elements for compact diagnostics.
func shortPath(path string) string {
	slashes := 0
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' || path[i] == '\\' {
			slashes++
			if slashes == 2 {
				return path[i+1:]
			}
		}
	}
	return path
}
