package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
)

// wsEscapeDocRE recognizes an aliasing contract in a doc comment: any
// function that intentionally returns workspace-backed memory must say so
// ("aliases the workspace", "valid until the next call", "scratch",
// "reused", "owned by", "from the free list", "must be copied", ...).
var wsEscapeDocRE = regexp.MustCompile(`(?i)alias|until|scratch|reus|shar|own|pool|free.list|cop(y|ie)|retain|borrow`)

// NewWsescape builds the wsescape analyzer: workspace-backed slices and
// pointers must not leave the activation that borrowed them — not returned
// without a documented aliasing contract, not stored into an object that
// outlives the call, and never sent on a channel. wsPkg gates the
// workspace naming convention (types named Workspace/Builder/…); doc-fact
// types ("not goroutine-safe") are always recognized.
func NewWsescape(wsPkg func(pkgPath string) bool) *Analyzer {
	a := &Analyzer{
		Name:  "wsescape",
		Doc:   "workspace-backed memory must not escape: no undocumented returns, no stores into outliving objects, no channel sends",
		Layer: "cfg",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				checkWsescape(pass, wsPkg, fn)
			}
		}
	}
	return a
}

func checkWsescape(pass *Pass, wsPkg func(string) bool, fn *ast.FuncDecl) {
	tr := newOriginTracker(pass, pass.Facts, wsPkg, fn.Body)
	docOK := fn.Doc != nil && wsEscapeDocRE.MatchString(fn.Doc.Text())

	// Function literals return to their own caller, not ours; remember
	// their extents so top-level returns can be told apart.
	var lits []*ast.FuncLit
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			lits = append(lits, lit)
		}
		return true
	})
	inLit := func(n ast.Node) bool {
		for _, lit := range lits {
			if n.Pos() >= lit.Body.Pos() && n.Pos() < lit.Body.End() {
				return true
			}
		}
		return false
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ReturnStmt:
			if inLit(s) {
				return true
			}
			for _, res := range s.Results {
				t := tr.typeOf(res)
				if t == nil || !pointerish(t) {
					continue
				}
				if tr.taintedExpr(res) && !docOK {
					pass.Report(res.Pos(),
						"%s returns workspace-backed memory but its doc comment states no aliasing contract (say what the result aliases and how long it stays valid)",
						fn.Name.Name)
				}
			}
		case *ast.SendStmt:
			if t := tr.typeOf(s.Value); t != nil && pointerish(t) && tr.taintedExpr(s.Value) {
				pass.Report(s.Value.Pos(),
					"workspace-backed memory sent on a channel escapes its owning goroutine")
			}
		case *ast.AssignStmt:
			checkWsStores(pass, tr, s)
		}
		return true
	})
}

// checkWsStores flags assignments that smuggle workspace-backed memory into
// an object that outlives the call: a field of a parameter, receiver, or
// global that is not itself part of a workspace. Stores into locals (we
// keep tracking them) and back into workspaces (the reuse idiom) are fine.
func checkWsStores(pass *Pass, tr *originTracker, s *ast.AssignStmt) {
	if len(s.Lhs) != len(s.Rhs) {
		return
	}
	for i, l := range s.Lhs {
		r := s.Rhs[i]
		t := tr.typeOf(r)
		if t == nil || !pointerish(t) || !tr.taintedExpr(r) {
			continue
		}
		if target, outlives := storeTarget(tr, l); outlives {
			pass.Report(l.Pos(),
				"stores workspace-backed memory into %s, which outlives the call; copy the data or route it through the workspace", target)
		}
	}
}

// storeTarget classifies the lhs of an assignment. It returns outlives=true
// when the written location belongs to a non-workspace object that survives
// the call (parameter/receiver/global memory), which makes a workspace
// aliasing store a hazard.
func storeTarget(tr *originTracker, l ast.Expr) (name string, outlives bool) {
	e := ast.Unparen(l)
	// Plain `x = ...` rebinding of a local (or a parameter copy) is
	// tracking, not escaping — but writing a package-level variable
	// publishes the memory.
	if id, ok := e.(*ast.Ident); ok {
		obj := tr.objOf(id)
		if v, isVar := obj.(*types.Var); isVar && v.Parent() == tr.pass.Pkg.Scope() {
			return id.Name, true
		}
		return "", false
	}
	hasWS := false
	for {
		e = ast.Unparen(e)
		if tr.isWS(tr.typeOf(e)) {
			hasWS = true
		}
		switch x := e.(type) {
		case *ast.Ident:
			if hasWS {
				return "", false // ws.buf = ... is the reuse idiom
			}
			obj := tr.objOf(x)
			if obj == nil {
				return "", false
			}
			if tr.tainted[obj] || tr.wsAlias[obj] {
				return "", false // the target is itself workspace memory
			}
			if tr.localTo(obj) {
				return "", false
			}
			return x.Name, true
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return "", false
		}
	}
}
