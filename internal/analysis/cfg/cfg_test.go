package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// build parses a function body and returns its graph.
func build(t *testing.T, body string) *Graph {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "f.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fn := f.Decls[0].(*ast.FuncDecl)
	return New(fn.Body)
}

// succKinds returns the successor kinds of the first block with the given
// kind.
func succKinds(t *testing.T, g *Graph, kind string) []string {
	t.Helper()
	bs := g.BlocksOf(kind)
	if len(bs) == 0 {
		t.Fatalf("no block of kind %q in\n%s", kind, g)
	}
	var out []string
	for _, s := range bs[0].Succs {
		out = append(out, s.Kind)
	}
	return out
}

func hasKind(kinds []string, k string) bool {
	for _, x := range kinds {
		if x == k {
			return true
		}
	}
	return false
}

// reaches reports whether to is reachable from from.
func reaches(from, to *Block) bool {
	seen := map[*Block]bool{}
	var walk func(b *Block) bool
	walk = func(b *Block) bool {
		if b == to {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.Succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	return walk(from)
}

func TestIfElse(t *testing.T) {
	g := build(t, `
		x := 1
		if x > 0 {
			x = 2
		} else {
			x = 3
		}
		_ = x
	`)
	ks := succKinds(t, g, "entry")
	if !hasKind(ks, "if.then") || !hasKind(ks, "if.else") {
		t.Fatalf("entry succs = %v, want then+else branches\n%s", ks, g)
	}
	for _, k := range []string{"if.then", "if.else"} {
		if !hasKind(succKinds(t, g, k), "if.join") {
			t.Errorf("%s does not rejoin\n%s", k, g)
		}
	}
	if !reaches(g.Entry, g.Exit) {
		t.Errorf("exit unreachable:\n%s", g)
	}
}

func TestIfWithoutElse(t *testing.T) {
	g := build(t, `
		x := 1
		if x > 0 {
			x = 2
		}
		_ = x
	`)
	ks := succKinds(t, g, "entry")
	if !hasKind(ks, "if.then") || !hasKind(ks, "if.join") {
		t.Fatalf("entry succs = %v, want then + fallthrough join edge\n%s", ks, g)
	}
}

func TestForLoop(t *testing.T) {
	g := build(t, `
		s := 0
		for i := 0; i < 10; i++ {
			s += i
		}
		_ = s
	`)
	head := succKinds(t, g, "for.head")
	if !hasKind(head, "for.body") || !hasKind(head, "for.done") {
		t.Fatalf("for.head succs = %v, want body+done\n%s", head, g)
	}
	if !hasKind(succKinds(t, g, "for.body"), "for.post") {
		t.Errorf("for.body does not reach post\n%s", g)
	}
	if !hasKind(succKinds(t, g, "for.post"), "for.head") {
		t.Errorf("for.post does not loop back to head\n%s", g)
	}
}

func TestInfiniteForWithBreak(t *testing.T) {
	g := build(t, `
		for {
			break
		}
	`)
	head := g.BlocksOf("for.head")[0]
	if hasKind(succKinds(t, g, "for.head"), "for.done") {
		t.Errorf("condition-free for must not edge head->done\n%s", g)
	}
	done := g.BlocksOf("for.done")[0]
	if !reaches(head, done) {
		t.Errorf("break does not reach for.done\n%s", g)
	}
	if !reaches(g.Entry, g.Exit) {
		t.Errorf("exit unreachable despite break:\n%s", g)
	}
}

func TestRange(t *testing.T) {
	g := build(t, `
		s := []int{1, 2}
		n := 0
		for _, v := range s {
			n += v
		}
		_ = n
	`)
	head := succKinds(t, g, "range.head")
	if !hasKind(head, "range.body") || !hasKind(head, "range.done") {
		t.Fatalf("range.head succs = %v, want body+done\n%s", head, g)
	}
	if !hasKind(succKinds(t, g, "range.body"), "range.head") {
		t.Errorf("range.body does not loop back\n%s", g)
	}
	// The RangeStmt itself must sit in the header so per-iteration
	// key/value assignment is visible to dataflow.
	var found bool
	for _, n := range g.BlocksOf("range.head")[0].Nodes {
		if _, ok := n.(*ast.RangeStmt); ok {
			found = true
		}
	}
	if !found {
		t.Errorf("range.head does not carry the RangeStmt\n%s", g)
	}
}

func TestSwitchFallthroughAndDefault(t *testing.T) {
	g := build(t, `
		x := 1
		switch x {
		case 1:
			x = 10
			fallthrough
		case 2:
			x = 20
		default:
			x = 30
		}
		_ = x
	`)
	cases := g.BlocksOf("switch.case")
	if len(cases) != 2 {
		t.Fatalf("want 2 case blocks, got %d\n%s", len(cases), g)
	}
	// fallthrough: case 1 edges into case 2.
	var c1toc2 bool
	for _, s := range cases[0].Succs {
		if s == cases[1] {
			c1toc2 = true
		}
	}
	if !c1toc2 {
		t.Errorf("fallthrough edge missing\n%s", g)
	}
	if len(g.BlocksOf("switch.default")) != 1 {
		t.Errorf("default block missing\n%s", g)
	}
	// With a default clause the header must not edge straight to join.
	entrySuccs := g.Entry.Succs
	for _, s := range entrySuccs {
		if s.Kind == "switch.join" {
			t.Errorf("header bypasses exhaustive switch\n%s", g)
		}
	}
}

func TestSwitchNoDefault(t *testing.T) {
	g := build(t, `
		x := 1
		switch x {
		case 1:
			x = 10
		}
		_ = x
	`)
	var headToJoin bool
	for _, s := range g.Entry.Succs {
		if s.Kind == "switch.join" {
			headToJoin = true
		}
	}
	if !headToJoin {
		t.Errorf("non-exhaustive switch must edge header->join\n%s", g)
	}
}

func TestSelect(t *testing.T) {
	g := build(t, `
		ch := make(chan int)
		select {
		case v := <-ch:
			_ = v
		default:
		}
	`)
	comms := g.BlocksOf("select.comm")
	if len(comms) != 2 {
		t.Fatalf("want 2 comm blocks, got %d\n%s", len(comms), g)
	}
	for _, c := range comms {
		if !hasKind([]string{c.Succs[0].Kind}, "select.join") {
			t.Errorf("comm block does not join\n%s", g)
		}
	}
}

func TestLabeledBreak(t *testing.T) {
	g := build(t, `
	outer:
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				if i+j > 2 {
					break outer
				}
				continue outer
			}
		}
	`)
	if len(g.BlocksOf("label.outer")) != 1 {
		t.Fatalf("label block missing\n%s", g)
	}
	// break outer: the inner if.then must reach the OUTER for.done
	// without passing through the inner loop's back edge.
	dones := g.BlocksOf("for.done")
	if len(dones) != 2 {
		t.Fatalf("want 2 for.done blocks, got %d\n%s", len(dones), g)
	}
	then := g.BlocksOf("if.then")[0]
	outerDone := dones[len(dones)-1] // outer loop's done is created... verify by reachability instead
	_ = outerDone
	reachedDones := 0
	for _, d := range dones {
		if len(then.Succs) == 1 && then.Succs[0] == d {
			reachedDones++
		}
	}
	if reachedDones != 1 {
		t.Errorf("break outer must edge to exactly one for.done, got %d\n%s", reachedDones, g)
	}
	// continue outer: some block edges back to the outer for.post.
	posts := g.BlocksOf("for.post")
	var continueEdge bool
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			br, ok := n.(*ast.BranchStmt)
			if ok && br.Tok.String() == "continue" {
				for _, s := range b.Succs {
					for _, p := range posts {
						if s == p {
							continueEdge = true
						}
					}
				}
			}
		}
	}
	if !continueEdge {
		t.Errorf("continue outer does not edge to a for.post\n%s", g)
	}
}

func TestGoto(t *testing.T) {
	g := build(t, `
		i := 0
	loop:
		i++
		if i < 3 {
			goto loop
		}
	`)
	label := g.BlocksOf("label.loop")[0]
	var gotoEdge bool
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if br, ok := n.(*ast.BranchStmt); ok && br.Tok.String() == "goto" {
				for _, s := range b.Succs {
					if s == label {
						gotoEdge = true
					}
				}
			}
		}
	}
	if !gotoEdge {
		t.Errorf("goto does not edge to its label\n%s", g)
	}
}

func TestReturnAndPanicTerminate(t *testing.T) {
	g := build(t, `
		x := 1
		if x > 0 {
			return
		}
		panic("no")
	`)
	// Every return/panic block must edge to exit, and the statements after
	// them must land in unreachable blocks (no predecessors needed).
	var toExit int
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if s == g.Exit {
				toExit++
			}
		}
	}
	if toExit < 2 {
		t.Errorf("want >=2 edges to exit (return + panic), got %d\n%s", toExit, g)
	}
}

func TestNilBody(t *testing.T) {
	g := New(nil)
	if g.Entry == nil || g.Exit == nil {
		t.Fatal("nil body must still produce entry/exit")
	}
	if !reaches(g.Entry, g.Exit) {
		t.Error("empty graph: exit unreachable")
	}
}

// TestGraphInvariants checks structural sanity on a mixed-construct body.
func TestGraphInvariants(t *testing.T) {
	g := build(t, `
		m := map[int]int{}
		for k, v := range m {
			switch {
			case v > 0:
				delete(m, k)
			default:
				continue
			}
		}
	`)
	checkInvariants(t, "mixed", g)
}

func checkInvariants(t *testing.T, name string, g *Graph) {
	t.Helper()
	if g.Entry == nil || g.Exit == nil {
		t.Fatalf("%s: missing entry/exit", name)
	}
	if len(g.Exit.Succs) != 0 {
		t.Errorf("%s: exit block has successors", name)
	}
	for i, b := range g.Blocks {
		if b.Index != i {
			t.Errorf("%s: block %d has Index %d", name, i, b.Index)
		}
		for _, s := range b.Succs {
			if s == nil {
				t.Errorf("%s: block %d has nil successor", name, i)
			}
		}
	}
}

// TestModuleFilesNeverPanic is the fuzz-style corpus test: build a CFG for
// every function body (including function literals) in every .go file of
// the module and assert construction never panics and always satisfies the
// basic graph invariants.
func TestModuleFilesNeverPanic(t *testing.T) {
	root := moduleRoot(t)
	fset := token.NewFileSet()
	files := 0
	funcs := 0
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			return nil // non-package files (if any) are not cfg's problem
		}
		files++
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			funcs++
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Errorf("cfg.New panicked on %s: %v", fset.Position(n.Pos()), r)
					}
				}()
				g := New(body)
				checkInvariants(t, fset.Position(n.Pos()).String(), g)
			}()
			return true
		})
		return nil
	})
	if err != nil {
		t.Fatalf("walk: %v", err)
	}
	if files < 20 || funcs < 100 {
		t.Fatalf("corpus too small: %d files, %d funcs — walk is missing the tree", files, funcs)
	}
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}
