// Package cfg builds intraprocedural control-flow graphs from go/ast
// function bodies, using nothing outside the standard library. It is the
// dataflow substrate of the ordlint v2 checks (poolpair and friends): a
// Graph exposes basic blocks of statements in execution order with the
// successor edges induced by if/for/range/switch/select, labeled
// break/continue, goto, return and panic.
//
// The graph is deliberately lightweight: expressions are not decomposed
// (short-circuit && / || does not split blocks), function literals are
// opaque (their bodies belong to a different activation and are not
// traversed), and defers are recorded as ordinary nodes. This matches what
// flow-sensitive lint checks need — the statement-level happens-before
// order within one function activation — without the cost or complexity of
// an SSA form.
//
// Every graph has a single synthetic Entry and a single synthetic Exit
// block. Terminating statements (return, panic, calls marked as
// non-returning by the caller) edge to Exit. Statements following a
// terminator land in a fresh unreachable block, so dead code still parses
// into the graph but has no predecessors.
package cfg

import (
	"fmt"
	"go/ast"
	"strings"
)

// Block is one basic block: a maximal sequence of nodes that execute in
// order, followed by a branch described by Succs.
type Block struct {
	// Index is the block's position in Graph.Blocks (stable identifier).
	Index int
	// Kind describes why the block exists ("entry", "exit", "if.then",
	// "for.body", "range.loop", "switch.case", "select.comm", "label.x",
	// "join", "unreachable", ...), for diagnostics and tests.
	Kind string
	// Nodes are the AST nodes of the block in execution order. For loop
	// headers the range/cond expression appears here, so per-iteration
	// assignments (range key/value) are visible to dataflow.
	Nodes []ast.Node
	// Succs are the possible successor blocks.
	Succs []*Block
}

// Graph is the control-flow graph of one function body.
type Graph struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
}

// String renders the graph compactly for tests and debugging:
// one line per block, "i:kind -> succ,succ".
func (g *Graph) String() string {
	var sb strings.Builder
	for _, b := range g.Blocks {
		fmt.Fprintf(&sb, "%d:%s ->", b.Index, b.Kind)
		for _, s := range b.Succs {
			fmt.Fprintf(&sb, " %d", s.Index)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// BlocksOf returns the blocks whose Kind equals kind, in index order.
func (g *Graph) BlocksOf(kind string) []*Block {
	var out []*Block
	for _, b := range g.Blocks {
		if b.Kind == kind {
			out = append(out, b)
		}
	}
	return out
}

// builder carries the construction state.
type builder struct {
	g   *Graph
	cur *Block
	// loops is the stack of enclosing breakable/continuable constructs.
	loops []loopCtx
	// labels maps label names to their targets for goto and labeled
	// break/continue. Forward gotos patch in later.
	labels map[string]*labelInfo
}

type loopCtx struct {
	label     string // enclosing label, "" if none
	breakTo   *Block
	contTo    *Block // nil for switch/select (continue passes through)
}

type labelInfo struct {
	// target is the block a goto to this label jumps to.
	target *Block
	// pendingGoto lists blocks whose goto awaits the label definition.
	pendingGoto []*Block
}

// New builds the graph of a function body. body may be nil (declarations
// without bodies yield an empty entry->exit graph).
func New(body *ast.BlockStmt) *Graph {
	b := &builder{
		g:      &Graph{},
		labels: make(map[string]*labelInfo),
	}
	entry := b.newBlock("entry")
	b.g.Entry = entry
	exit := b.newBlock("exit")
	b.g.Exit = exit
	b.cur = entry
	if body != nil {
		b.stmtList(body.List)
	}
	b.edge(b.cur, exit)
	return b.g
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// startBlock finishes cur with an edge to next and makes next current.
func (b *builder) startBlock(next *Block) {
	b.edge(b.cur, next)
	b.cur = next
}

// terminate ends the current block without a fallthrough successor: the
// next statement (if any) begins an unreachable block.
func (b *builder) terminate() {
	b.cur = b.newBlock("unreachable")
}

func (b *builder) add(n ast.Node) {
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// label resolves the info record for a label name.
func (b *builder) label(name string) *labelInfo {
	li := b.labels[name]
	if li == nil {
		li = &labelInfo{}
		b.labels[name] = li
	}
	return li
}

// findLoop returns the innermost loop context matching label ("" matches
// any) that satisfies wantCont (continue needs a loop, break takes
// anything).
func (b *builder) findLoop(label string, wantCont bool) *loopCtx {
	for i := len(b.loops) - 1; i >= 0; i-- {
		lc := &b.loops[i]
		if wantCont && lc.contTo == nil {
			continue
		}
		if label == "" || lc.label == label {
			return lc
		}
	}
	return nil
}

// stmt lowers one statement. enclosingLabel is the label attached directly
// to this statement (so labeled loops register break/continue targets).
func (b *builder) stmt(s ast.Stmt, enclosingLabel string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		// A label is a join point: gotos jump to the labeled statement.
		target := b.newBlock("label." + s.Label.Name)
		b.startBlock(target)
		li := b.label(s.Label.Name)
		li.target = target
		for _, p := range li.pendingGoto {
			b.edge(p, target)
		}
		li.pendingGoto = nil
		b.stmt(s.Stmt, s.Label.Name)

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.g.Exit)
		b.terminate()

	case *ast.BranchStmt:
		b.add(s)
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok.String() {
		case "break":
			if lc := b.findLoop(label, false); lc != nil {
				b.edge(b.cur, lc.breakTo)
			}
		case "continue":
			if lc := b.findLoop(label, true); lc != nil {
				b.edge(b.cur, lc.contTo)
			}
		case "goto":
			li := b.label(label)
			if li.target != nil {
				b.edge(b.cur, li.target)
			} else {
				li.pendingGoto = append(li.pendingGoto, b.cur)
			}
		case "fallthrough":
			// Handled structurally by switch lowering (the edge to the
			// next case body is added there); nothing to do here.
			return
		}
		b.terminate()

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		condBlk := b.cur
		join := b.newBlock("if.join")
		then := b.newBlock("if.then")
		b.edge(condBlk, then)
		b.cur = then
		b.stmtList(s.Body.List)
		b.edge(b.cur, join)
		if s.Else != nil {
			els := b.newBlock("if.else")
			b.edge(condBlk, els)
			b.cur = els
			b.stmt(s.Else, "")
			b.edge(b.cur, join)
		} else {
			b.edge(condBlk, join)
		}
		b.cur = join

	case *ast.ForStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock("for.head")
		b.startBlock(head)
		if s.Cond != nil {
			b.add(s.Cond)
		}
		done := b.newBlock("for.done")
		body := b.newBlock("for.body")
		b.edge(head, body)
		if s.Cond != nil {
			b.edge(head, done)
		}
		var post *Block
		contTo := head
		if s.Post != nil {
			post = b.newBlock("for.post")
			post.Nodes = append(post.Nodes, s.Post)
			b.edge(post, head)
			contTo = post
		}
		b.loops = append(b.loops, loopCtx{label: enclosingLabel, breakTo: done, contTo: contTo})
		b.cur = body
		b.stmtList(s.Body.List)
		b.edge(b.cur, contTo)
		b.loops = b.loops[:len(b.loops)-1]
		b.cur = done

	case *ast.RangeStmt:
		head := b.newBlock("range.head")
		b.startBlock(head)
		// The range statement itself sits in the header: key/value are
		// (re)assigned once per iteration, which kill-style dataflow
		// (poolpair) relies on.
		b.add(s)
		done := b.newBlock("range.done")
		body := b.newBlock("range.body")
		b.edge(head, body)
		b.edge(head, done)
		b.loops = append(b.loops, loopCtx{label: enclosingLabel, breakTo: done, contTo: head})
		b.cur = body
		b.stmtList(s.Body.List)
		b.edge(b.cur, head)
		b.loops = b.loops[:len(b.loops)-1]
		b.cur = done

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchBody(s.Body, enclosingLabel, func(cc *ast.CaseClause) {
			for _, e := range cc.List {
				b.add(e)
			}
		})

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.switchBody(s.Body, enclosingLabel, func(cc *ast.CaseClause) {})

	case *ast.SelectStmt:
		head := b.cur
		join := b.newBlock("select.join")
		b.loops = append(b.loops, loopCtx{label: enclosingLabel, breakTo: join})
		hasDefault := false
		for _, c := range s.Body.List {
			comm := c.(*ast.CommClause)
			blk := b.newBlock("select.comm")
			b.edge(head, blk)
			b.cur = blk
			if comm.Comm != nil {
				b.stmt(comm.Comm, "")
			} else {
				hasDefault = true
			}
			b.stmtList(comm.Body)
			b.edge(b.cur, join)
		}
		_ = hasDefault // a select with no default may block, but always exits to join when it proceeds
		b.loops = b.loops[:len(b.loops)-1]
		b.cur = join

	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s.X) {
			b.edge(b.cur, b.g.Exit)
			b.terminate()
		}

	case *ast.DeclStmt, *ast.AssignStmt, *ast.IncDecStmt, *ast.SendStmt,
		*ast.GoStmt, *ast.DeferStmt, *ast.EmptyStmt:
		b.add(s)

	default:
		if s != nil {
			b.add(s)
		}
	}
}

// switchBody lowers the case clauses of an (expr or type) switch. addExprs
// records the case expressions into the case block (guards are evaluated
// when the case is tried).
func (b *builder) switchBody(body *ast.BlockStmt, label string, addExprs func(*ast.CaseClause)) {
	head := b.cur
	join := b.newBlock("switch.join")
	b.loops = append(b.loops, loopCtx{label: label, breakTo: join})
	var caseBlocks []*Block
	var clauses []*ast.CaseClause
	hasDefault := false
	for _, c := range body.List {
		cc := c.(*ast.CaseClause)
		kind := "switch.case"
		if cc.List == nil {
			kind = "switch.default"
			hasDefault = true
		}
		blk := b.newBlock(kind)
		b.edge(head, blk)
		caseBlocks = append(caseBlocks, blk)
		clauses = append(clauses, cc)
	}
	if !hasDefault {
		b.edge(head, join)
	}
	for i, cc := range clauses {
		b.cur = caseBlocks[i]
		addExprs(cc)
		fallsThrough := false
		for _, st := range cc.Body {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok.String() == "fallthrough" {
				fallsThrough = true
			}
			b.stmt(st, "")
		}
		if fallsThrough && i+1 < len(caseBlocks) {
			b.edge(b.cur, caseBlocks[i+1])
			b.cur = b.newBlock("unreachable")
		}
		b.edge(b.cur, join)
	}
	b.loops = b.loops[:len(b.loops)-1]
	b.cur = join
}

// isPanicCall reports whether e is a direct call of the builtin panic.
func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}
