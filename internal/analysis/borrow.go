package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file computes the borrow and writer facts behind ordlint's
// lock-discipline checks (borrowck, lockmode). A *borrow* is a value that
// aliases packed point storage guarded by a dataset lock — vectors from
// Collection.Get/Scan/at, the spatial index from Tree(), result records
// built from Live — and is only valid while that lock is held. A *writer*
// is a method that mutates receiver-reachable state and therefore needs
// the write side of the guarding RWMutex.
//
// Two directive comments seed the interprocedural fixed point:
//
//	//ordlint:borrows — <contract>
//	    the function returns (or hands to its callbacks) memory aliasing
//	    lock-scoped storage; callers inherit the lifetime obligation
//	//ordlint:writer — <contract>
//	    the method mutates receiver state and requires the write lock
//
// Like all Go directives (no space after //), they are excluded from
// rendered documentation, so collection reads the raw comment list rather
// than CommentGroup.Text.

// BorrowInfo summarizes one module function for borrowck and lockmode.
type BorrowInfo struct {
	// ReturnsBorrow: calling this function yields borrows — either
	// annotated with //ordlint:borrows or derived because a pointerish
	// return value carries a borrow obtained from an annotated callee.
	ReturnsBorrow bool
	// BorrowAnnotated: the //ordlint:borrows directive is present, i.e.
	// the borrow return is a documented contract rather than a leak.
	BorrowAnnotated bool
	// PassThrough: a return value may alias the receiver or a pointerish
	// parameter, so borrow taint flows through calls to this function
	// (wire.NewORDResponse wrapping result records, for example).
	PassThrough bool
	// PassMask records which sources pass through, in the callee's own
	// frame bits (bitRecv and paramBit(i)). Callers propagate taint only
	// from the matching argument expressions — handing a context to a
	// query kernel must not make its result alias the context.
	PassMask uint64
	// Writer: the method mutates receiver-reachable state — annotated
	// with //ordlint:writer, derived from direct field writes, or derived
	// transitively from calling a writer on a receiver-rooted chain.
	Writer bool
	// WriterAnnotated: the //ordlint:writer directive is present.
	WriterAnnotated bool
	// WriterVia names the callee that made this a derived writer
	// (empty when annotated or mutating directly).
	WriterVia string
}

// hasDirective reports whether doc carries the raw //ordlint:<name>
// directive, optionally followed by a justification.
func hasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text, ok := strings.CutPrefix(c.Text, "//ordlint:"+name)
		if !ok {
			continue
		}
		if text == "" || text[0] == ' ' || text[0] == '\t' {
			return true
		}
	}
	return false
}

// ComputeBorrowFacts runs the module-wide borrow/writer fixed point over
// the call graph. Annotations seed the lattice; derivation only flips
// facts false→true, so iteration is monotone and terminates.
//
// fresh names the owning constructors (Config.FreshFuncs): functions that
// assemble a new object around borrows of its own storage. Borrow facts do
// not derive out of them — FromPoints wiring its chunks into its own tree
// hands the caller an owner, not a borrow.
func ComputeBorrowFacts(g *CallGraph, fresh map[string]bool) map[*FuncNode]*BorrowInfo {
	facts := make(map[*FuncNode]*BorrowInfo, len(g.Nodes))
	for _, n := range g.Nodes {
		bi := &BorrowInfo{}
		if n.Decl != nil {
			bi.BorrowAnnotated = hasDirective(n.Decl.Doc, "borrows")
			bi.WriterAnnotated = hasDirective(n.Decl.Doc, "writer")
			bi.ReturnsBorrow = bi.BorrowAnnotated
			bi.Writer = bi.WriterAnnotated
		}
		facts[n] = bi
	}
	// Direct receiver mutation is a per-body property; compute it once.
	for _, n := range g.Nodes {
		if n.Decl == nil || n.Decl.Body == nil || n.Decl.Recv == nil {
			continue
		}
		if recv := recvObject(n); recv != nil && mutatesReceiver(n.Pkg.Info, n.Decl.Body, recv) {
			facts[n].Writer = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes {
			if n.Decl == nil || n.Decl.Body == nil {
				continue
			}
			bi := facts[n]
			if !fresh[n.Name] {
				tr := newBorrowTracker(n, g, facts)
				rb, mask := tr.returnFacts()
				if rb && !bi.ReturnsBorrow {
					bi.ReturnsBorrow = true
					changed = true
				}
				if mask&^bi.PassMask != 0 {
					bi.PassMask |= mask
					bi.PassThrough = true
					changed = true
				}
			}
			if !bi.Writer && n.Decl.Recv != nil {
				if via := callsWriterOnReceiver(n, g, facts); via != "" {
					bi.Writer, bi.WriterVia = true, via
					changed = true
				}
			}
		}
	}
	return facts
}

// recvObject resolves the receiver identifier of a method declaration.
func recvObject(n *FuncNode) types.Object {
	recv := n.Decl.Recv
	if recv == nil || len(recv.List) != 1 || len(recv.List[0].Names) != 1 {
		return nil
	}
	return n.Pkg.Info.Defs[recv.List[0].Names[0]]
}

// rootObj unwraps selector/index/slice/deref/address chains to the base
// identifier and resolves its object (nil when the chain is not rooted at
// a plain identifier).
func rootObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if o := info.Uses[x]; o != nil {
				return o
			}
			return info.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		case *ast.CallExpr:
			return nil
		default:
			return nil
		}
	}
}

// mutatesReceiver reports whether body writes through the receiver object:
// assignments or inc/dec through a receiver-rooted chain (plain rebinding
// of the receiver variable itself does not count), and the mutating
// builtins delete/copy on receiver-rooted arguments. Function literals are
// included — a closure writing a captured receiver field still mutates.
func mutatesReceiver(info *types.Info, body *ast.BlockStmt, recv types.Object) bool {
	found := false
	ast.Inspect(body, func(nd ast.Node) bool {
		if found {
			return false
		}
		switch s := nd.(type) {
		case *ast.AssignStmt:
			for _, l := range s.Lhs {
				if writesThrough(info, l, recv) {
					found = true
				}
			}
		case *ast.IncDecStmt:
			if writesThrough(info, s.X, recv) {
				found = true
			}
		case *ast.CallExpr:
			if b, ok := calleeObject(info, s).(*types.Builtin); ok && len(s.Args) > 0 {
				switch b.Name() {
				case "delete", "copy":
					if rootObj(info, s.Args[0]) == recv {
						found = true
					}
				}
			}
		}
		return true
	})
	return found
}

// writesThrough reports whether l is a store target reaching through recv:
// a selector/index/deref chain rooted at the receiver identifier. A bare
// identifier never qualifies (that rebinds the local, not the object).
func writesThrough(info *types.Info, l ast.Expr, recv types.Object) bool {
	if _, bare := ast.Unparen(l).(*ast.Ident); bare {
		return false
	}
	return rootObj(info, l) == recv
}

// callsWriterOnReceiver reports (by callee name) whether the method body
// calls a writer method on a receiver-rooted chain — c.tree.Insert(...)
// inside a Collection method, l.OnInsert(...) inside Live.OnUpdate. Writer
// status deliberately does not propagate through plain argument passing:
// handing the receiver's tree to a query kernel must not make the query a
// writer.
func callsWriterOnReceiver(n *FuncNode, g *CallGraph, facts map[*FuncNode]*BorrowInfo) string {
	recv := recvObject(n)
	if recv == nil {
		return ""
	}
	info := n.Pkg.Info
	via := ""
	ast.Inspect(n.Decl.Body, func(nd ast.Node) bool {
		if via != "" {
			return false
		}
		call, ok := nd.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		f, ok := calleeObject(info, call).(*types.Func)
		if !ok {
			return true
		}
		callee := g.NodeOf(f)
		if callee == nil {
			return true
		}
		if bi := facts[callee]; bi != nil && bi.Writer && rootObj(info, sel.X) == recv {
			via = callee.Name
		}
		return true
	})
	return via
}

// Taint bits of the borrow tracker. Bit 0 marks the receiver, bit 1 marks
// borrowed (lock-scoped) storage, bits 2.. mark the flat parameter list;
// parameters past 61 share the last bit.
const (
	bitRecv   uint64 = 1 << 0
	bitBorrow uint64 = 1 << 1
	bitParam0 uint64 = 1 << 2

	maxParamBit = 61
)

func paramBit(i int) uint64 {
	if i > maxParamBit {
		i = maxParamBit
	}
	return bitParam0 << i
}

// borrowTracker is a flow-insensitive may-alias analysis over one function
// body (nested function literals included): each object accumulates the
// taint bits of everything assigned to it, and calls propagate bits
// through the module's ReturnsBorrow/PassThrough summaries. Calls that
// leave the module return no bits — json.Marshal and friends produce
// owned data, which is exactly the "deep copy" borrowck looks for.
type borrowTracker struct {
	n     *FuncNode
	info  *types.Info
	g     *CallGraph
	facts map[*FuncNode]*BorrowInfo
	bits  map[types.Object]uint64
	lits  []*ast.FuncLit
}

func newBorrowTracker(n *FuncNode, g *CallGraph, facts map[*FuncNode]*BorrowInfo) *borrowTracker {
	tr := &borrowTracker{n: n, info: n.Pkg.Info, g: g, facts: facts, bits: map[types.Object]uint64{}}
	body := n.Body()
	if decl := n.Decl; decl != nil {
		if recv := recvObject(n); recv != nil {
			tr.bits[recv] = bitRecv
		}
		i := 0
		if decl.Type.Params != nil {
			for _, field := range decl.Type.Params.List {
				if len(field.Names) == 0 {
					i++ // unnamed parameter still occupies an index
					continue
				}
				for _, name := range field.Names {
					if o := tr.info.Defs[name]; o != nil {
						tr.bits[o] |= paramBit(i)
					}
					i++
				}
			}
		}
	}
	ast.Inspect(body, func(nd ast.Node) bool {
		switch x := nd.(type) {
		case *ast.FuncLit:
			tr.lits = append(tr.lits, x)
		case *ast.CallExpr:
			tr.seedCallbackParams(x)
		}
		return true
	})
	tr.solve(body)
	return tr
}

// seedCallbackParams handles the Scan pattern: a function literal passed
// to a borrow-returning callee receives borrows through its pointerish
// parameters, so those parameters start borrow-tainted.
func (tr *borrowTracker) seedCallbackParams(call *ast.CallExpr) {
	f, ok := calleeObject(tr.info, call).(*types.Func)
	if !ok {
		return
	}
	callee := tr.g.NodeOf(f)
	if callee == nil {
		return
	}
	if bi := tr.facts[callee]; bi == nil || !bi.BorrowAnnotated {
		return
	}
	for _, arg := range call.Args {
		lit, ok := ast.Unparen(arg).(*ast.FuncLit)
		if !ok || lit.Type.Params == nil {
			continue
		}
		for _, field := range lit.Type.Params.List {
			for _, name := range field.Names {
				if o := tr.info.Defs[name]; o != nil && pointerish(o.Type()) {
					tr.bits[o] |= bitBorrow
				}
			}
		}
	}
}

// solve iterates assignment transfer to a fixed point. Eight rounds bound
// chains through locals; real bodies converge in two or three.
func (tr *borrowTracker) solve(body *ast.BlockStmt) {
	for range 8 {
		changed := false
		ast.Inspect(body, func(nd ast.Node) bool {
			switch s := nd.(type) {
			case *ast.AssignStmt:
				if tr.transfer(s.Lhs, s.Rhs) {
					changed = true
				}
			case *ast.ValueSpec:
				if len(s.Values) > 0 {
					lhs := make([]ast.Expr, len(s.Names))
					for i, id := range s.Names {
						lhs[i] = id
					}
					if tr.transfer(lhs, s.Values) {
						changed = true
					}
				}
			case *ast.RangeStmt:
				if s.Value != nil {
					if b := tr.exprBits(s.X); b != 0 {
						if id, ok := s.Value.(*ast.Ident); ok && tr.merge(tr.objOf(id), b) {
							changed = true
						}
					}
				}
			}
			return true
		})
		if !changed {
			return
		}
	}
}

func (tr *borrowTracker) transfer(lhs, rhs []ast.Expr) bool {
	changed := false
	assign := func(l ast.Expr, b uint64) {
		if b == 0 {
			return
		}
		// A store through a chain (res.rows = p) taints the chain's root:
		// the root now reaches the tainted memory.
		if obj := tr.targetObj(l); obj != nil && tr.merge(obj, b) {
			changed = true
		}
	}
	if len(lhs) == len(rhs) {
		for i := range lhs {
			assign(lhs[i], tr.exprBits(rhs[i]))
		}
		return changed
	}
	if len(rhs) == 1 {
		// Multi-value form: p, ok := c.Get(id). All pointerish targets
		// inherit the call's bits.
		b := tr.exprBits(rhs[0])
		for _, l := range lhs {
			assign(l, b)
		}
	}
	return changed
}

func (tr *borrowTracker) targetObj(l ast.Expr) types.Object {
	if id, ok := ast.Unparen(l).(*ast.Ident); ok {
		return tr.objOf(id)
	}
	return rootObj(tr.info, l)
}

func (tr *borrowTracker) merge(obj types.Object, b uint64) bool {
	if obj == nil || obj.Type() == nil || !pointerish(obj.Type()) {
		return false
	}
	if old := tr.bits[obj]; old|b != old {
		tr.bits[obj] = old | b
		return true
	}
	return false
}

func (tr *borrowTracker) objOf(id *ast.Ident) types.Object {
	if o := tr.info.Uses[id]; o != nil {
		return o
	}
	return tr.info.Defs[id]
}

// exprBits evaluates the taint bits an expression may carry.
func (tr *borrowTracker) exprBits(e ast.Expr) uint64 {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if o := tr.objOf(x); o != nil {
			return tr.bits[o]
		}
	case *ast.SelectorExpr:
		if id, ok := x.X.(*ast.Ident); ok {
			if _, isPkg := tr.objOf(id).(*types.PkgName); isPkg {
				return 0
			}
		}
		return tr.exprBits(x.X)
	case *ast.IndexExpr:
		return tr.exprBits(x.X)
	case *ast.SliceExpr:
		return tr.exprBits(x.X)
	case *ast.StarExpr:
		return tr.exprBits(x.X)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return tr.exprBits(x.X)
		}
	case *ast.TypeAssertExpr:
		return tr.exprBits(x.X)
	case *ast.CompositeLit:
		var b uint64
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			b |= tr.exprBits(el)
		}
		return b
	case *ast.CallExpr:
		return tr.callBits(x)
	}
	return 0
}

func (tr *borrowTracker) callBits(call *ast.CallExpr) uint64 {
	if tv, ok := tr.info.Types[call.Fun]; ok && tv.IsType() {
		// Conversion: geom.Vector(row) aliases its operand.
		if len(call.Args) == 1 {
			return tr.exprBits(call.Args[0])
		}
		return 0
	}
	switch o := calleeObject(tr.info, call).(type) {
	case *types.Builtin:
		if o.Name() != "append" || len(call.Args) == 0 {
			return 0
		}
		b := tr.exprBits(call.Args[0])
		for _, arg := range call.Args[1:] {
			t := typeOf(tr.info, arg)
			if t == nil {
				continue
			}
			if call.Ellipsis.IsValid() {
				// append(dst, src...) copies elements; aliasing survives
				// only when the elements themselves are pointerish.
				if st, ok := t.Underlying().(*types.Slice); ok && pointerish(st.Elem()) {
					b |= tr.exprBits(arg)
				}
				continue
			}
			// A pointerish element keeps aliasing its source inside dst;
			// value elements (float64 coordinates) are copied.
			if pointerish(t) {
				b |= tr.exprBits(arg)
			}
		}
		return b
	case *types.Func:
		callee := tr.g.NodeOf(o)
		if callee == nil {
			return 0 // extern call: result is owned, taint dies here
		}
		bi := tr.facts[callee]
		if bi == nil {
			return 0
		}
		if bi.ReturnsBorrow {
			// The result is a borrow: the lifetime obligation subsumes
			// provenance, so receiver/parameter bits do not tag along —
			// otherwise every local aggregate of query results would look
			// receiver-reachable and the local-aggregate store exemption
			// could never apply.
			return bitBorrow
		}
		var b uint64
		if bi.PassMask&bitRecv != 0 {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				b |= tr.exprBits(sel.X)
			}
		}
		if bi.PassMask&^(bitRecv|bitBorrow) != 0 {
			// Callee parameter indices line up with argument positions;
			// variadic surplus arguments share the last (clamped) bit.
			for i, a := range call.Args {
				if bi.PassMask&paramBit(i) == 0 {
					continue
				}
				if t := typeOf(tr.info, a); t != nil && pointerish(t) {
					b |= tr.exprBits(a)
				}
			}
		}
		return b
	}
	return 0
}

// inLit reports whether the node lies inside a nested function literal.
func (tr *borrowTracker) inLit(nd ast.Node) bool {
	for _, lit := range tr.lits {
		if lit.Body != nil && nd.Pos() >= lit.Body.Pos() && nd.End() <= lit.Body.End() {
			return true
		}
	}
	return false
}

// returnFacts inspects the top-level returns (literals excluded): does
// any pointerish result carry borrow taint, and which receiver/parameter
// bits reach a result (the pass-through mask)?
func (tr *borrowTracker) returnFacts() (returnsBorrow bool, passMask uint64) {
	decl := tr.n.Decl
	if decl == nil || decl.Body == nil {
		return false, 0
	}
	check := func(t types.Type, b uint64) {
		if t == nil || !pointerish(t) {
			return
		}
		if b&bitBorrow != 0 {
			returnsBorrow = true
		}
		passMask |= b &^ bitBorrow
	}
	ast.Inspect(decl.Body, func(nd ast.Node) bool {
		ret, ok := nd.(*ast.ReturnStmt)
		if !ok || tr.inLit(ret) {
			return true
		}
		if len(ret.Results) == 0 && decl.Type.Results != nil {
			// Naked return: the named result variables are the values.
			for _, field := range decl.Type.Results.List {
				for _, name := range field.Names {
					if o := tr.info.Defs[name]; o != nil {
						check(o.Type(), tr.bits[o])
					}
				}
			}
			return true
		}
		for _, res := range ret.Results {
			check(typeOf(tr.info, res), tr.exprBits(res))
		}
		return true
	})
	return returnsBorrow, passMask
}

// funcQName renders a resolved function object the way qualifiedName
// renders declarations: pkgpath.Func, or pkgpath.Recv.Method for methods.
func funcQName(f *types.Func) string {
	if f.Pkg() == nil {
		return f.Name()
	}
	name := f.Name()
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	return f.Pkg().Path() + "." + name
}
