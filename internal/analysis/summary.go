package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file computes per-function summaries over the call graph to a fixed
// point: does a function (possibly transitively) allocate, poll a context,
// block, or panic without recovering, and which mutexes does it lock
// directly. The interprocedural checks consume the bits; cmd/ordlint -stats
// dumps the totals.
//
// Propagation rules, per edge kind:
//
//   - call/defer/iface/dynamic edges propagate MayBlock, MayPanic (unless
//     the caller recovers) and Allocates;
//   - PollsCtx propagates only through edges that actually pass a
//     context.Context argument — polling a context the caller never handed
//     over cancels nothing;
//   - go edges propagate Allocates only: the spawned goroutine blocks,
//     polls and panics on its own schedule;
//   - ref edges propagate nothing (taking a value runs no code).

// SummarySite is one position that justifies a summary bit.
type SummarySite struct {
	Pos  token.Pos
	What string
}

// LockOp is one mode-tagged mutex operation: the receiver chain's lock
// class plus whether it is the write side (Lock/Unlock) or the shared read
// side (RLock/RUnlock). lockmode consumes the distinction; lockhold only
// cares that something is held.
type LockOp struct {
	Class string
	W     bool
}

// String renders the op for diagnostics ("nd.mu[R]", "s.mu[W]").
func (op LockOp) String() string {
	if op.W {
		return op.Class + "[W]"
	}
	return op.Class + "[R]"
}

// Summary captures what one function does, directly and transitively.
type Summary struct {
	// Direct facts, from a shallow walk of the function's own body
	// (nested literals are separate nodes).
	AllocSites []SummarySite // allocations outside growth guards and noalloc allows
	BlockSites []SummarySite // channel ops, selects without default, blocking stdlib calls
	PollSites  []SummarySite // ctx.Err()/ctx.Done() uses, ctx-forwarding stdlib calls
	PanicSites []SummarySite // panic() calls
	Recovers   bool          // a defer in this function recovers
	Acquires   []LockOp      // mutex ops locked directly, mode-tagged
	Releases   []LockOp      // mutex ops unlocked directly, mode-tagged

	// Transitive closure bits.
	Allocates bool
	MayBlock  bool
	PollsCtx  bool
	MayPanic  bool

	// via records the callee that first set each transitive bit beyond the
	// direct sites, for diagnostics ("" when direct).
	AllocVia string
	BlockVia string
}

// ComputeSummaries runs the direct extraction over every graph node and
// iterates the propagation rules to a fixed point.
func ComputeSummaries(g *CallGraph, pkgs []*Package) map[*FuncNode]*Summary {
	allows := make(map[*Package]allowSet)
	for _, pkg := range pkgs {
		allows[pkg] = collectAllows(pkg)
	}
	sums := make(map[*FuncNode]*Summary, len(g.Nodes))
	for _, n := range g.Nodes {
		sums[n] = directSummary(n, allows[n.Pkg])
	}
	// Fixed point: the bits only ever flip false→true, so iteration
	// terminates in at most O(nodes) rounds.
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes {
			s := sums[n]
			for _, e := range n.Out {
				c := sums[e.Callee]
				switch e.Kind {
				case EdgeRef:
					continue
				case EdgeGo:
					if c.Allocates && !s.Allocates {
						s.Allocates, s.AllocVia, changed = true, e.Callee.Name, true
					}
					continue
				}
				if c.Allocates && !s.Allocates {
					s.Allocates, s.AllocVia, changed = true, e.Callee.Name, true
				}
				if c.MayBlock && !s.MayBlock {
					s.MayBlock, s.BlockVia, changed = true, e.Callee.Name, true
				}
				if c.MayPanic && !s.Recovers && !s.MayPanic {
					s.MayPanic, changed = true, true
				}
				if c.PollsCtx && e.CtxArg && !s.PollsCtx {
					s.PollsCtx, changed = true, true
				}
			}
		}
	}
	return sums
}

// directSummary extracts the facts visible in n's own body.
func directSummary(n *FuncNode, allow allowSet) *Summary {
	s := &Summary{}
	body := n.Body()
	if body == nil || n.Pkg.Info == nil {
		return s
	}
	info := n.Pkg.Info
	fset := n.Pkg.Fset
	spans := guardSpansIn(body)
	guarded := func(pos token.Pos) bool {
		for _, sp := range spans {
			if pos >= sp[0] && pos < sp[1] {
				return true
			}
		}
		return false
	}
	// A site suppressed for noalloc (or deepnoalloc) carries a documented
	// contract; summaries treat it as non-allocating so the exemption
	// propagates to callers.
	allowed := func(pos token.Pos) bool {
		p := fset.Position(pos)
		return allow.allows(p.Filename, p.Line, "noalloc") ||
			allow.allows(p.Filename, p.Line, "deepnoalloc")
	}
	alloc := func(pos token.Pos, what string) {
		if !guarded(pos) && !allowed(pos) {
			s.AllocSites = append(s.AllocSites, SummarySite{pos, what})
		}
	}
	block := func(pos token.Pos, what string) {
		s.BlockSites = append(s.BlockSites, SummarySite{pos, what})
	}

	inspectShallow(body, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.FuncLit:
			// inspectShallow keeps us out of the literal's body, but the
			// closure's creation allocates here.
			alloc(x.Pos(), "closure literal")
		case *ast.CompositeLit:
			if t := typeOf(info, x); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice:
					alloc(x.Pos(), "slice literal")
				case *types.Map:
					alloc(x.Pos(), "map literal")
				}
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					alloc(x.Pos(), "&composite literal")
				}
			}
			if x.Op == token.ARROW {
				block(x.Pos(), "channel receive")
			}
		case *ast.SendStmt:
			block(x.Pos(), "channel send")
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				block(x.Pos(), "select without default")
			}
		case *ast.RangeStmt:
			if t := typeOf(info, x.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					block(x.Pos(), "range over channel")
				}
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isStringType(info, x) {
				alloc(x.Pos(), "string concatenation")
			}
		case *ast.GoStmt:
			alloc(x.Pos(), "go statement")
		case *ast.AssignStmt:
			if x.Tok == token.ADD_ASSIGN && len(x.Lhs) == 1 && isStringType(info, x.Lhs[0]) {
				alloc(x.Pos(), "string concatenation")
			}
			for _, l := range x.Lhs {
				if ix, ok := ast.Unparen(l).(*ast.IndexExpr); ok {
					if t := typeOf(info, ix.X); t != nil {
						if _, ok := t.Underlying().(*types.Map); ok {
							alloc(l.Pos(), "map write")
						}
					}
				}
			}
		case *ast.DeferStmt:
			if deferRecovers(info, x) {
				s.Recovers = true
			}
		case *ast.SelectorExpr:
			if x.Sel.Name == "Err" || x.Sel.Name == "Done" {
				if t := typeOf(info, x.X); t != nil && isContextType(t) {
					s.PollSites = append(s.PollSites, SummarySite{x.Pos(), "ctx." + x.Sel.Name})
				}
			}
		case *ast.CallExpr:
			summarizeCall(info, x, s, alloc)
		}
		return true
	})

	// Classify the extern calls the graph builder recorded.
	for _, ec := range n.Extern {
		if ec.Kind == EdgeRef || ec.Kind == EdgeGo {
			continue
		}
		if what := externBlocks(ec.Pkg, ec.Name); what != "" {
			block(ec.Pos, what)
		}
		if ec.CtxArg && ec.Pkg != "context" {
			// Handing ctx to the stdlib (http.NewRequestWithContext,
			// sql.QueryContext, ...) delegates cancellation. The context
			// package itself is excluded: WithTimeout/WithCancel derive
			// contexts without polling the parent.
			s.PollSites = append(s.PollSites, SummarySite{ec.Pos, ec.Pkg + "." + ec.Name})
		}
	}
	s.Acquires, s.Releases = lockClassesIn(info, body)
	s.Allocates = len(s.AllocSites) > 0
	s.MayBlock = len(s.BlockSites) > 0
	s.PollsCtx = len(s.PollSites) > 0
	s.MayPanic = len(s.PanicSites) > 0 && !s.Recovers
	return s
}

// summarizeCall handles allocation-relevant direct calls: make/new, panic,
// and string<->bytes conversions.
func summarizeCall(info *types.Info, call *ast.CallExpr, s *Summary, alloc func(token.Pos, string)) {
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type
		if src := typeOf(info, call.Args[0]); src != nil && stringBytesConv(dst, src) {
			alloc(call.Pos(), "string<->bytes conversion")
		}
		return
	}
	if b, ok := calleeObject(info, call).(*types.Builtin); ok {
		switch b.Name() {
		case "make", "new":
			alloc(call.Pos(), b.Name())
		case "panic":
			s.PanicSites = append(s.PanicSites, SummarySite{call.Pos(), "panic"})
		}
	}
	// Appends are deliberately not summary allocation sites: appending into
	// a caller-provided or workspace buffer is the library's designed
	// pattern, and the intraprocedural noalloc check already polices fresh
	// appends inside annotated kernels themselves.
}

// deferRecovers reports whether a defer statement (directly or through a
// deferred closure) calls recover.
func deferRecovers(info *types.Info, d *ast.DeferStmt) bool {
	found := false
	ast.Inspect(d, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if b, ok := calleeObject(info, call).(*types.Builtin); ok && b.Name() == "recover" {
				found = true
			}
		}
		return !found
	})
	return found
}

// lockClassesIn collects the mutex ops locked and unlocked in body, with the
// class rendered as a receiver chain ("s.mu", "c.mu") and the mode taken
// from the method name: Lock/Unlock are the write side, RLock/RUnlock the
// read side.
func lockClassesIn(info *types.Info, body ast.Node) (acquires, releases []LockOp) {
	seenA, seenR := map[LockOp]bool{}, map[LockOp]bool{}
	inspectShallow(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		f, ok := info.Uses[sel.Sel].(*types.Func)
		if !ok {
			if s, ok := info.Selections[sel]; ok {
				f, _ = s.Obj().(*types.Func)
			}
		}
		if f == nil || f.Pkg() == nil || f.Pkg().Path() != "sync" {
			return true
		}
		op := LockOp{Class: exprString(sel.X), W: f.Name() == "Lock" || f.Name() == "Unlock"}
		switch f.Name() {
		case "Lock", "RLock":
			if !seenA[op] {
				seenA[op] = true
				acquires = append(acquires, op)
			}
		case "Unlock", "RUnlock":
			if !seenR[op] {
				seenR[op] = true
				releases = append(releases, op)
			}
		}
		return true
	})
	sortLockOps(acquires)
	sortLockOps(releases)
	return acquires, releases
}

func sortLockOps(ops []LockOp) {
	sort.Slice(ops, func(i, j int) bool {
		if ops[i].Class != ops[j].Class {
			return ops[i].Class < ops[j].Class
		}
		return !ops[i].W && ops[j].W
	})
}

// externBlocks classifies stdlib calls that can block the calling
// goroutine: sync waits, sleeps, and network/file I/O. It returns a short
// description, or "" for non-blocking calls.
func externBlocks(pkg, name string) string {
	switch pkg {
	case "sync":
		// Lock/RLock are deliberately not classified: an internal mutex's
		// critical sections are bounded-short in this module (lockhold
		// enforces exactly that), so treating every locking helper as
		// may-block would flag all nested-mutex use — lock-ordering
		// analysis, which this is not. Waits are unbounded and count.
		switch name {
		case "Wait", "Do":
			return "sync." + name
		}
	case "time":
		if name == "Sleep" {
			return "time.Sleep"
		}
	case "os":
		switch name {
		case "Open", "OpenFile", "Create", "ReadFile", "WriteFile",
			"ReadDir", "Remove", "RemoveAll", "Rename", "Stat", "Pipe":
			return "os." + name
		}
	case "io":
		switch name {
		case "Copy", "CopyN", "ReadAll", "ReadFull", "WriteString", "Pipe":
			return "io." + name
		}
	case "os/exec":
		return "os/exec." + name
	}
	// Anything in net or net/* (net/http, net/rpc, ...) does network I/O.
	if pkg == "net" || strings.HasPrefix(pkg, "net/") {
		return pkg + "." + name
	}
	// Reader/Writer-backed packages: their methods drive an underlying
	// reader that may be a file or socket.
	switch pkg {
	case "bufio", "encoding/csv", "encoding/json":
		switch name {
		case "Read", "ReadString", "ReadBytes", "ReadLine", "ReadRune",
			"Scan", "ReadAll", "Decode", "Flush", "Write", "WriteString", "Encode":
			return pkg + "." + name
		}
	}
	return ""
}

// typeOf is a nil-tolerant info.Types lookup.
func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// guardSpansIn collects the extents of if-statements whose condition
// consults cap or len — the growth-guard idiom shared by noalloc and the
// summary layer. Any allocation inside one is the cold warm-up path.
func guardSpansIn(body ast.Node) [][2]token.Pos {
	var spans [][2]token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || ifs.Cond == nil {
			return true
		}
		guarded := false
		ast.Inspect(ifs.Cond, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && (id.Name == "cap" || id.Name == "len") {
					guarded = true
				}
			}
			return true
		})
		if guarded {
			spans = append(spans, [2]token.Pos{ifs.Body.Pos(), ifs.Body.End()})
		}
		return true
	})
	return spans
}
