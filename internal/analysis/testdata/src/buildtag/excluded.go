//go:build ordlint_never_enabled

package buildtag

func Excluded() { undefinedSymbol() }
