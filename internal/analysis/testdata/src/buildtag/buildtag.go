// Package buildtag is a loader fixture: its sibling file excluded.go is
// fenced behind a never-enabled build tag and references an undefined
// symbol, so it must not reach the parser or the type checker.
package buildtag

func Included() int { return 1 }
