// Package narrowcast exercises the narrowing-conversion analysis: every
// int->int32/uint32 conversion must be dominated by a range guard
// against a capacity-derived bound (constants, configured capacity
// fields, len results) or covered by a documented capacity sentinel
// (//ordlint:bounded). Unguarded narrowing silently wraps once the arena
// crosses 2^31 records.
package narrowcast

// ref is a 32-bit handle type; conversions into it narrow like int32.
type ref int32

// maxIndex is the arena capacity every producer guards against.
const maxIndex = 1<<31 - 1

// packer packs records into 32-bit-addressed arenas.
type packer struct {
	cap int
	ids []int32
}

// raw narrows without any dominating guard.
func raw(x int) int32 {
	return int32(x) // want "unguarded narrowing conversion int32 of x"
}

// rawRef narrows into the named handle type: same width, same bug.
func rawRef(x int) ref {
	return ref(x) // want "unguarded narrowing conversion ref of x"
}

// checked guards with an early-out against the capacity constant. Quiet.
func checked(x int) (int32, bool) {
	if x > maxIndex {
		return 0, false
	}
	return int32(x), true
}

// fill converts the induction variable under its len bound. Quiet.
func (p *packer) fill(ids []int) {
	for i := 0; i < len(ids); i++ {
		p.ids = append(p.ids, int32(i))
	}
}

// fromField guards against a configured capacity field. Quiet.
func (p *packer) fromField(x int) int32 {
	if x >= p.cap {
		return -1
	}
	return int32(x)
}

// widen goes the other way: 32-bit sources never narrow. Quiet.
func widen(r ref) int {
	return int(r)
}

// fixed converts a compile-time constant the compiler range-checks. Quiet.
func fixed() int32 {
	return int32(maxIndex / 2)
}

// vouched documents the capacity invariant on the function instead.
//
//ordlint:bounded — one id per record: the caller gates the record count at 2^31
func vouched(x int) int32 {
	return int32(x)
}

// drifted reassigns after the guard: the conversion is unguarded again.
func drifted(x int) int32 {
	if x > maxIndex {
		return 0
	}
	x = x + x
	return int32(x) // want "unguarded narrowing conversion int32 of x"
}

// legacy keeps a known-wrapping hash conversion under an allow.
func legacy(x int) uint32 {
	return uint32(x) //ordlint:allow narrowcast — the hash mixes the wrapped bits deliberately
}
