// Package floatcmp is a golden-file fixture for the floatcmp analyzer. The
// test configures approxEq as an approved epsilon helper.
package floatcmp

type celsius float64

type reading struct {
	val float64
	n   int
}

// approxEq stands in for the vetted comparison primitives of
// internal/geom — the test marks it approved, so its body is exempt.
func approxEq(a, b float64) bool {
	return a == b
}

var threshold = 1.5
var atBoundary = threshold == 1.5 // want "== floating-point comparison"

func bad(a, b float64, r1, r2 reading, c celsius) bool {
	if a == b { // want "== floating-point comparison"
		return true
	}
	if c != 0 { // want "!= floating-point comparison"
		return false
	}
	switch a { // want "switch on floating-point value"
	case 1:
		return true
	}
	return r1 == r2 // want "float-containing"
}

func allowedCopy(a float64) bool {
	b := a
	return a == b //ordlint:allow floatcmp — comparing a stored copy of the same value
}

func ints(a, b int) bool { return a == b }

func viaHelper(a, b float64) bool { return approxEq(a, b) }

func ordered(a, b float64) bool { return a < b }
