// Package lockmode exercises the RWMutex mode discipline over guarded
// types: writers (//ordlint:writer plus the field-write derivation) need
// the write lock on every path, readers at least the read lock, fresh
// unpublished objects are exempt until they escape, RLock→Lock upgrades
// self-deadlock, and unlock modes must pair with their acquisition.
package lockmode

import "sync"

type dataset struct {
	n     int
	dim   int
	items map[int]int
}

func newDataset(dim int) *dataset {
	return &dataset{dim: dim, items: map[int]int{}}
}

// Insert is hand-annotated as a writer.
//
//ordlint:writer — mutates the item table
func (d *dataset) Insert(id int) { d.items[id] = id }

// Update is a derived writer: it writes receiver fields directly.
func (d *dataset) Update(id int) {
	d.items[id] = id
	d.n++
}

// Remove is a derived transitive writer: it delegates to Update.
func (d *dataset) Remove(id int) { d.Update(-id) }

// Len is a reader.
func (d *dataset) Len() int { return len(d.items) }

// Dim reads construction-immutable state; configured pure.
func (d *dataset) Dim() int { return d.dim }

type server struct {
	mu sync.RWMutex
	ds *dataset
}

// install publishes a dataset; its lock summary is a neutral
// acquire+release pair, so callers' held sets pass through unchanged.
func (s *server) install(d *dataset) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ds = d
}

// goodWrite mutates under the write lock. Quiet.
func (s *server) goodWrite(id int) {
	s.mu.Lock()
	s.ds.Insert(id)
	s.mu.Unlock()
}

// badWriteUnderRead mutates under the read lock.
func (s *server) badWriteUnderRead(id int) {
	s.mu.RLock()
	s.ds.Insert(id) // want "writer lockmode.dataset.Insert called on s under the read lock"
	s.mu.RUnlock()
}

// badWriteUnlocked mutates with no lock at all.
func (s *server) badWriteUnlocked(id int) {
	s.ds.Update(id) // want "writer lockmode.dataset.Update called on s without the write lock"
}

// badRemove pins that the transitive-writer derivation reaches Remove.
func (s *server) badRemove(id int) {
	s.mu.RLock()
	s.ds.Remove(id) // want "writer lockmode.dataset.Remove called on s under the read lock"
	s.mu.RUnlock()
}

// goodRead reads under the deferred read lock. Quiet.
func (s *server) goodRead() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ds.Len()
}

// badReadUnlocked reads without any lock.
func (s *server) badReadUnlocked() int {
	return s.ds.Len() // want "reader lockmode.dataset.Len called on s without the dataset lock"
}

// pureUnlocked: Dim is configured pure, no lock needed. Quiet.
func (s *server) pureUnlocked() int { return s.ds.Dim() }

// freshOK mutates an unpublished dataset before installing it. Quiet.
func (s *server) freshOK() {
	d := newDataset(2)
	d.Insert(1)
	s.install(d)
}

// publishThenWrite mutates after publication: freshness is gone.
func (s *server) publishThenWrite() {
	d := newDataset(2)
	s.install(d)
	d.Insert(1) // want "writer lockmode.dataset.Insert called on d without the write lock"
}

// upgrade acquires the write lock while the read lock is held.
func (s *server) upgrade() {
	s.mu.RLock()
	s.mu.Lock() // want "RLock→Lock upgrades self-deadlock"
	s.mu.Unlock()
	s.mu.RUnlock()
}

// mismatch releases a read lock with the write-side Unlock.
func (s *server) mismatch() int {
	s.mu.RLock()
	n := s.ds.Len()
	s.mu.Unlock() // want "Unlock on s.mu pairs with RLock on some path; use RUnlock"
	return n
}

// mismatchR releases the write lock with RUnlock.
func (s *server) mismatchR(id int) {
	s.mu.Lock()
	s.ds.Insert(id)
	s.mu.RUnlock() // want "RUnlock on s.mu pairs with Lock on some path; use Unlock"
}

// allowed documents a deliberate exception in place.
func (s *server) allowed(id int) {
	s.ds.Insert(id) //ordlint:allow lockmode — construction-only path before the server serves requests
}
