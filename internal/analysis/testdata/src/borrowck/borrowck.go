// Package borrowck exercises the borrow-lifetime analysis: values from
// //ordlint:borrows functions alias lock-scoped storage and must not be
// returned undeclared, stored to outliving memory, sent on channels,
// captured by goroutines, handed to retaining sinks, or used after the
// region's mutex is released.
package borrowck

import "sync"

type store struct {
	mu   sync.RWMutex
	data [][]float64
	keep []float64
}

// get returns the row under the caller's lock.
//
//ordlint:borrows — rows alias the store's backing arrays
func (s *store) get(i int) []float64 { return s.data[i] }

// scan hands each row to fn.
//
//ordlint:borrows — rows passed to fn alias the backing arrays
func (s *store) scan(fn func(row []float64) bool) {
	for _, r := range s.data {
		if !fn(r) {
			return
		}
	}
}

// cache retains whatever it is handed; configured as a borrow sink.
type cache struct {
	rows map[int][]float64
}

func (c *cache) Put(k int, row []float64) { c.rows[k] = row }

// leakReturn returns a borrow without declaring the contract.
func leakReturn(s *store) []float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.get(0) // want "leakReturn returns a borrow of lock-scoped storage"
}

// okReturn declares the contract, so returning the borrow is fine. Quiet.
//
//ordlint:borrows — propagates store.get's row to the caller
func okReturn(s *store) []float64 {
	return s.get(1)
}

// copyOut deep-copies under the lock; the borrow dies at the append. Quiet.
func copyOut(s *store) []float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := append([]float64(nil), s.get(0)...)
	return out
}

var global [][]float64

// leakStore parks a borrow in a package variable.
func leakStore(s *store) {
	s.mu.RLock()
	global = append(global, s.get(0)) // want "borrow stored to package variable global"
	s.mu.RUnlock()
}

// keepRow stashes a borrow in a field that outlives the region.
func (s *store) keepRow() {
	s.mu.Lock()
	s.keep = s.get(0) // want "borrow stored to memory reachable from s"
	s.mu.Unlock()
}

// leakChan sends a borrow across a channel.
func leakChan(s *store, ch chan []float64) {
	s.mu.RLock()
	ch <- s.get(0) // want "borrow sent on a channel escapes its lock region"
	s.mu.RUnlock()
}

// leakGo lets a goroutine capture a borrow that outlives the region.
func leakGo(s *store, sink func([]float64)) {
	s.mu.RLock()
	p := s.get(0)
	go func() {
		sink(p) // want "goroutine captures borrow p"
	}()
	s.mu.RUnlock()
}

// leakSink hands a borrow to the retaining cache.
func leakSink(s *store, c *cache) {
	s.mu.RLock()
	c.Put(1, s.get(0)) // want "borrow passed to Put, which retains its arguments"
	s.mu.RUnlock()
}

// stale uses a borrow after the read lock is gone.
func stale(s *store) float64 {
	s.mu.RLock()
	p := s.get(0)
	s.mu.RUnlock()
	return p[0] // want "borrow p is used after s.mu was released"
}

// staleAllowed documents a deliberate exception in place.
func staleAllowed(s *store) float64 {
	s.mu.RLock()
	p := s.get(0)
	s.mu.RUnlock()
	return p[0] //ordlint:allow borrowck — single-writer startup phase, no concurrent mutators
}

// scanLeak collects the callback's borrowed rows and returns them
// undeclared: the callback-parameter seeding must catch this.
func scanLeak(s *store) [][]float64 {
	var rows [][]float64
	s.mu.RLock()
	s.scan(func(row []float64) bool {
		rows = append(rows, row)
		return true
	})
	s.mu.RUnlock()
	return rows // want "scanLeak returns a borrow of lock-scoped storage"
}

// scanCopy copies each row inside the callback. Quiet.
func scanCopy(s *store) [][]float64 {
	var rows [][]float64
	s.mu.RLock()
	s.scan(func(row []float64) bool {
		rows = append(rows, append([]float64(nil), row...))
		return true
	})
	s.mu.RUnlock()
	return rows
}
