// Package sharedwrite exercises the spawn-edge race check: a captured
// variable written on one side of a go statement and accessed on the other
// needs a happens-before edge (lock, channel, WaitGroup, or atomic) between
// the two sides.
package sharedwrite

import "sync"

// leakyCounter reads total while the goroutine is still adding to it; the
// read races and usually observes zero.
func leakyCounter(xs []int) int {
	total := 0
	go func() {
		for _, x := range xs {
			total += x
		}
	}()
	return total // want "total is written by the goroutine spawned at line \d+ and accessed here"
}

// writeAfterSpawn writes n while the goroutine reads it: both orders are
// observable.
func writeAfterSpawn() int {
	n := 1
	go func() {
		_ = n
	}()
	n = 2 // want "n is accessed by the goroutine spawned at line \d+ and written here"
	return n
}

// wgJoined is the blessed shape: Wait orders the spawner's read after the
// goroutine's writes.
func wgJoined(xs []int) int {
	total := 0
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, x := range xs {
			total += x
		}
	}()
	wg.Wait()
	return total
}

// chanJoined orders through a channel: the receive happens after the close,
// which happens after the write to res.
func chanJoined() int {
	res := 0
	done := make(chan struct{})
	go func() {
		res = 1
		close(done)
	}()
	<-done
	return res
}

// loopRace spawns one goroutine per iteration, all incrementing the same
// loop-invariant counter concurrently.
func loopRace(n int) int {
	hits := 0
	for i := 0; i < n; i++ {
		go func() { // want "hits is written by every goroutine spawned in this loop"
			hits++
		}()
	}
	return hits // want "hits is written by the goroutine spawned at line \d+ and accessed here"
}

// perSlot is the workers-write-disjoint-slots idiom: each goroutine owns
// out[i] for its own i, and Wait joins before the slice is read.
func perSlot(xs []int) []int {
	out := make([]int, len(xs))
	var wg sync.WaitGroup
	for i := range xs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = xs[i] * 2
		}(i)
	}
	wg.Wait()
	return out
}

// allowedPeek documents a deliberate racy read: the value is advisory.
func allowedPeek(job func() int) int {
	best := 0
	go func() {
		best = job()
	}()
	//ordlint:allow sharedwrite — racy progress peek; the value is advisory and a stale read is acceptable
	return best
}
