// Package ctxflow exercises the interprocedural cancellability check. The
// fixture config names every Handler* function as an entry point; loops in
// functions those entries reach must be cancellable through the actual call
// chain. ctxpoll is enabled alongside (scoped to this package) to pin the
// difference: forwarding ctx to a callee that ignores it satisfies ctxpoll
// but not ctxflow.
package ctxflow

import "context"

type scanner struct{ i int }

func (s *scanner) Next() bool { s.i++; return s.i < 1000 }

var work int

// Handler reaches spin, whose loop cannot be cancelled: no context is
// threaded down the chain at all.
func Handler(ctx context.Context) {
	spin()
}

func spin() {
	for { // want "cannot be cancelled: no context reaches the loop"
		work++
	}
}

// HandlerForwards hands ctx to a callee inside the loop, but the callee
// never polls it — the blind spot of the intraprocedural check.
func HandlerForwards(ctx context.Context) {
	for { // want "ctx is forwarded only to ctxflow.ignores, which never polls it"
		ignores(ctx)
	}
}

func ignores(ctx context.Context) { work++ }

// HandlerPolls polls the context directly: quiet.
func HandlerPolls(ctx context.Context) {
	for {
		if ctx.Err() != nil {
			return
		}
		work++
	}
}

// HandlerDelegates forwards ctx to a callee whose summary proves it polls
// transitively (polls -> deeper -> ctx.Err): quiet.
func HandlerDelegates(ctx context.Context) {
	for {
		if polls(ctx) {
			return
		}
	}
}

func polls(ctx context.Context) bool { return deeper(ctx) }

func deeper(ctx context.Context) bool { return ctx.Err() != nil }

// HandlerScanForwards advances a scan and forwards ctx to a dead end.
// ctxpoll stays quiet here (it trusts any ctx-receiving callee); only the
// interprocedural check sees that the chain drops the context.
func HandlerScanForwards(ctx context.Context, s *scanner) {
	for { // want "advances a scan via s.Next"
		if !s.Next() {
			return
		}
		ignores(ctx)
	}
}

// lonely is not reachable from any entry point; its loop is out of scope.
func lonely() {
	for {
		work++
	}
}

// HandlerAllowed reaches a loop whose finding is suppressed in place.
func HandlerAllowed(ctx context.Context) {
	spinAllowed()
}

func spinAllowed() {
	for { //ordlint:allow ctxflow — fixture escape-hatch case
		work++
	}
}
