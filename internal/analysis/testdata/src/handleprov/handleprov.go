// Package handleprov exercises the handle-provenance analysis: a
// subscript into a flat run must derive from the structure's own handle
// APIs — returns of classed functions, induction over its runs, the
// len-of-arena allocation idiom, //ordlint:handle producers — never from
// plain arithmetic, and never from a different structure's handle space.
package handleprov

// ref is the tree's node-handle type (configured as a node handle).
type ref int32

// tree is a miniature flat spatial core: node arenas indexed by node
// handles, slot arenas indexed by slot handles, a slot free list.
type tree struct {
	level []int8
	count []int16
	idAt  []int
	free  []int
}

// coll owns a separate slot space from the tree's.
type coll struct {
	idAt []int
}

// root returns the root handle; the declared ref result classes it.
func (t *tree) root() ref { return 0 }

// alloc returns a fresh slot via the len-of-arena idiom: len of a
// configured run carries the run's index class.
func (t *tree) alloc(id int) int {
	s := len(t.idAt)
	t.idAt = append(t.idAt, id)
	return s
}

// alloc mirrors the tree's slot allocation for the collection.
func (c *coll) alloc(id int) int {
	s := len(c.idAt)
	c.idAt = append(c.idAt, id)
	return s
}

// child computes a child id with plain arithmetic the inference cannot
// see through; the //ordlint:handle directive documents the contract.
//
//ordlint:handle node — the computed child id addresses the node arenas
func (t *tree) child(n ref, i int) int { return int(n)*4 + i + 1 }

// levelOf reads the node arena under its own handle class. Quiet.
func (t *tree) levelOf(n ref) int8 { return t.level[n] }

// walk inducts over a run: range keys are valid handles into it. Quiet.
func (t *tree) walk() int {
	sum := 0
	for n := range t.level {
		sum += int(t.count[n])
	}
	return sum
}

// viaChild subscripts with the annotated producer's handle. Quiet.
func (t *tree) viaChild(n ref, i int) int8 {
	c := t.child(n, i)
	return t.level[c]
}

// countOf reads through a parameter; the classes observed at its call
// sites (the range key in total) flow into the summary. Quiet.
func (t *tree) countOf(n int) int16 { return t.count[n] }

// total drives countOf with run-induction handles.
func (t *tree) total() int {
	sum := 0
	for n := range t.count {
		sum += int(t.countOf(n))
	}
	return sum
}

// reuse pops the free list: its elements carry the slot class, and the
// free list itself is index-free (any subscript is fine). Quiet.
func (t *tree) reuse() int {
	if len(t.free) > 0 {
		s := t.free[len(t.free)-1]
		t.free = t.free[:len(t.free)-1]
		return t.idAt[s]
	}
	return -1
}

// tail slices a run from a slot handle; nil low bounds are the zero
// handle. Quiet.
func (t *tree) tail(id int) []int {
	s := t.alloc(id)
	_ = t.idAt[:s]
	return t.idAt[s:]
}

// plainIndex derives a node-arena index by plain arithmetic.
func (t *tree) plainIndex(i, j int) int8 {
	return t.level[i*4+j] // want "derives from plain arithmetic"
}

// mixSlotNode indexes the node arena with a slot handle.
func (t *tree) mixSlotNode(id int) int8 {
	s := t.alloc(id)
	return t.level[s] // want "carries a slot handle — cross-structure handle mixing"
}

// mixColl feeds the collection's slot into the collection's own arena
// (quiet) and would be a finding against the tree's node arena — the
// deliberate exception below documents a legacy compatibility read.
func mixColl(t *tree, c *coll) int {
	s := c.alloc(7)
	sum := c.idAt[s]
	sum += int(t.level[s]) //ordlint:allow handleprov — the legacy mirror keeps slot i at node i by construction
	return sum
}
