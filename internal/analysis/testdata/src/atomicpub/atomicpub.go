// Package atomicpub exercises the publication-freeze check: a value
// published through atomic.Pointer/Value Store must not be written
// afterwards (directly or through the local it was copied from), and a
// value obtained from Load is read-only.
package atomicpub

import "sync/atomic"

type snap struct {
	k    int
	recs []int
}

// publishThenMutate writes a field of the published value: a concurrent
// reader holding the pointer observes the mutation mid-read.
func publishThenMutate(ptr *atomic.Pointer[snap]) {
	s := snap{k: 1}
	ptr.Store(&s)
	s.k = 2 // want "s was published through ptr.Store and is written here on a following path"
}

// publishCopy publishes a copy of auth inside the loop and keeps appending
// to auth: the copy shares recs' backing array, so the append can land in
// memory a reader of the published snapshot is scanning.
func publishCopy(ptr *atomic.Pointer[snap], n int) {
	var auth snap
	for i := 0; i < n; i++ {
		auth.recs = append(auth.recs, i) // want "auth was copied into the snapshot published through ptr.Store"
		if i%2 == 0 {
			published := auth
			ptr.Store(&published)
		}
	}
}

// publishFrozen is the contract observed: build fully, publish, stop.
func publishFrozen(ptr *atomic.Pointer[snap]) {
	s := snap{k: 1, recs: []int{1, 2}}
	ptr.Store(&s)
}

// loadMutate writes through a Load result; the snapshot is shared with
// every other reader and with the publisher.
func loadMutate(ptr *atomic.Pointer[snap]) int {
	s := ptr.Load()
	s.k = 3 // want "s holds a snapshot obtained from ptr.Load and is mutated here"
	return s.k
}

// readSnap treats the loaded snapshot as read-only: the blessed shape.
func readSnap(ptr *atomic.Pointer[snap]) int {
	s := ptr.Load()
	return s.k
}

// publishAppend mirrors the parallel pruner's contract: the published slice
// header pins its visible length, so appending past that prefix never
// mutates what a snapshot reader can see.
func publishAppend(ptr *atomic.Pointer[snap], xs []int) {
	var auth snap
	for _, x := range xs {
		//ordlint:allow atomicpub — append-only past the published prefix; the snapshot's slice header freezes its visible length
		auth.recs = append(auth.recs, x)
		published := auth
		ptr.Store(&published)
	}
}
