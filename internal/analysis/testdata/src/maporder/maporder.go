// Package maporder exercises the map-iteration-order determinism check:
// appending to a slice while ranging over a map bakes Go's randomized
// iteration order into the result unless the destination is sorted after
// the loop (the module's collect-then-sort idiom).
package maporder

import "sort"

// BadCollect bakes map order into ids.
func BadCollect(m map[int]bool) []int {
	var ids []int
	for id := range m {
		ids = append(ids, id) // want "append to ids inside map-range iteration"
	}
	return ids
}

// GoodCollectSort is the sanctioned collect-then-sort idiom: quiet.
func GoodCollectSort(m map[int]bool) []int {
	var ids []int
	for id := range m {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// GoodSliceSort re-orders through sort.Slice: quiet.
func GoodSliceSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// GoodRangeSlice ranges over a slice, not a map: quiet.
func GoodRangeSlice(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// BadClosure: collection loops inside function literals are checked too.
func BadClosure(m map[string]int) []string {
	collect := func() []string {
		var keys []string
		for k := range m {
			keys = append(keys, k) // want "append to keys inside map-range iteration"
		}
		return keys
	}
	return collect()
}

// Allowed feeds an order-insensitive reduction; documented in place.
func Allowed(m map[int]bool) int {
	var ids []int
	for id := range m {
		ids = append(ids, id) //ordlint:allow maporder — order-insensitive sum below
	}
	n := 0
	for _, id := range ids {
		n += id
	}
	return n
}
