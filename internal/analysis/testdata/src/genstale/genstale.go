// Package genstale exercises the structural-staleness analysis: node
// handles, unstable borrowed views and generation values must not flow
// across a mutates-structure call on their root — //ordlint:mutates
// functions, or //ordlint:writer methods of configured owner structures
// — without being re-derived. Slot-backed views configured as stable
// survive (the slot-stability contract).
package genstale

import "sync/atomic"

// ref is the node-handle type (configured as a node handle).
type ref int32

// table is a miniature mutable flat structure: a node arena, row
// storage, and a generation counter bumped by every mutation.
type table struct {
	gen  atomic.Uint64
	data []float64
	rows [][]float64
}

// root returns the current root handle.
func (t *table) root() ref { return 0 }

// row returns a view aliasing the table's backing storage; it is NOT in
// the stable-view set, so mutations invalidate it.
//
//ordlint:borrows — the row aliases the packed backing storage
func (t *table) row(i int) []float64 { return t.rows[i] }

// Stable returns a view the slot-stability contract keeps addressable
// across mutations (configured in StableViews).
//
//ordlint:borrows — the vector aliases chunk storage that never reallocates
func (t *table) Stable(i int) []float64 { return t.rows[i] }

// insert grows the table: splits reassign node ids, so outstanding
// handles and unstable views dangle.
//
//ordlint:mutates — rebalancing reassigns node ids and reallocates rows
func (t *table) insert(x float64) {
	t.data = append(t.data, x)
	t.gen.Add(1)
}

// compact is an //ordlint:writer method of a configured owner type: the
// writer annotation plus the owner config derives the mutates fact.
//
//ordlint:writer — compaction rewrites the arenas in place
func (t *table) compact() {
	t.gen.Add(1)
}

// staleHandle keeps a node id across the mutation.
func staleHandle(t *table) float64 {
	n := t.root()
	t.insert(1)
	return t.data[n] // want "stale node handle: n crosses"
}

// refetch re-derives the handle after the mutation. Quiet.
func refetch(t *table) float64 {
	n := t.root()
	t.insert(2)
	n = t.root()
	return t.data[n]
}

// staleView uses an unstable borrowed row across the mutation.
func staleView(t *table) float64 {
	v := t.row(0)
	t.insert(3)
	return v[0] // want "stale view: v crosses"
}

// stableView survives the mutation: the slot-stability contract. Quiet.
func stableView(t *table) float64 {
	s := t.Stable(0)
	t.insert(4)
	return s[0]
}

// staleGen compares a generation read across the writer-derived mutator
// instead of re-reading it.
func staleGen(t *table) bool {
	g := t.gen.Load()
	t.compact()
	return g == t.gen.Load() // want "stale generation value: g crosses"
}

// branchKill mutates on one path only: may-stale semantics still flag
// the use, because the mutation does happen on that path.
func branchKill(t *table, grow bool) float64 {
	n := t.root()
	if grow {
		t.insert(5)
	}
	return t.data[n] // want "stale node handle: n crosses"
}

// freshUse stays on the pre-mutation side of the call. Quiet.
func freshUse(t *table) float64 {
	n := t.root()
	x := t.data[n]
	t.insert(6)
	return x
}

// twoTables: mutating one table leaves the other's handles valid. Quiet.
func twoTables(a, b *table) float64 {
	n := a.root()
	b.insert(7)
	return a.data[n]
}

// pinned documents a deliberate cross-mutation read under an allow.
func pinned(t *table) float64 {
	n := t.root()
	t.insert(8)
	return t.data[n] //ordlint:allow genstale — the benchmark reads the pre-split arena deliberately
}
