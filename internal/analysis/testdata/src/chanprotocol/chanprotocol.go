// Package chanprotocol exercises the spawn-edge channel protocol check:
// goroutine sends/receives need a reachable counterpart or select escape,
// ranges need a reachable close, and no path may double-close or send on a
// possibly-closed channel.
package chanprotocol

func work(int) {}

// sendNoReceiver leaks: nothing ever drains ch, so the goroutine blocks on
// the send forever.
func sendNoReceiver() {
	ch := make(chan int)
	go func() { // want "sends on \"ch\" but the spawner side never receives"
		ch <- 1
	}()
}

// sendDrained is the fixed shape: the spawner receives the result.
func sendDrained() int {
	ch := make(chan int)
	go func() {
		ch <- 1
	}()
	return <-ch
}

// sendWithEscape parks the result send in a select whose other arm the
// spawner can always unblock by closing done.
func sendWithEscape() {
	out := make(chan int)
	done := make(chan struct{})
	go func() {
		select {
		case out <- 1:
		case <-done:
			return
		}
	}()
	close(done)
}

// sendNonBlocking drops the value when nobody listens; a select with
// default never parks the goroutine.
func sendNonBlocking() {
	out := make(chan int, 1)
	go func() {
		select {
		case out <- 1:
		default:
		}
	}()
}

// recvForever blocks on a channel nothing ever feeds.
func recvForever() {
	ready := make(chan struct{})
	go func() { // want "receives on \"ready\" but the spawner side never sends or closes"
		<-ready
		work(0)
	}()
}

// recvSignalled is the fixed shape: the spawner closes the gate.
func recvSignalled() {
	ready := make(chan struct{})
	go func() {
		<-ready
		work(0)
	}()
	close(ready)
}

// rangeNoClose never terminates: the range drains jobs and then parks
// forever because no close ends the stream.
func rangeNoClose() {
	jobs := make(chan int, 4)
	go func() { // want "ranges over \"jobs\" but the spawner side never closes"
		for j := range jobs {
			work(j)
		}
	}()
	jobs <- 1
}

// rangeClosed is the fixed worker shape: feed, then close to end the range.
func rangeClosed() {
	jobs := make(chan int, 4)
	go func() {
		for j := range jobs {
			work(j)
		}
	}()
	jobs <- 1
	close(jobs)
}

// fireAndForget documents an intentionally unmatched send: telemetry that
// may outlive its consumer.
func fireAndForget(events chan int) {
	//ordlint:allow chanprotocol — best-effort telemetry; the consumer may already be gone and the event is droppable
	go func() {
		events <- 1
	}()
}

// doubleClose panics at the second close.
func doubleClose(c chan int) {
	close(c)
	close(c) // want "may already be closed on a path reaching this close"
}

// closeOncePerPath is fine: the closes sit on exclusive branches.
func closeOncePerPath(c chan int, early bool) {
	if early {
		close(c)
		return
	}
	close(c)
}

// sendAfterClose panics whenever flush is taken before the send.
func sendAfterClose(c chan int, flush bool) {
	if flush {
		close(c)
	}
	c <- 1 // want "may be closed on a path reaching this send"
}

// deferredDouble closes inline and then again at exit.
func deferredDouble(c chan int) {
	defer close(c) // want "inline and a deferred close"
	c <- 1
	close(c)
}

// deferredClose is the producer idiom the parallel frontier uses: sends,
// then a deferred close at exit.
func deferredClose(c chan int) {
	defer close(c)
	c <- 1
}
