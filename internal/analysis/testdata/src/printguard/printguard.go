// Package printguard is a golden-file fixture for the printguard analyzer.
// The test scopes the analyzer to this package.
package printguard

import (
	"fmt"
	"io"
)

func bad(x int) {
	fmt.Println("value", x)     // want "fmt.Println writes to stdout"
	fmt.Printf("value %d\n", x) // want "fmt.Printf writes to stdout"
	println("debug", x)         // want "builtin println"
}

func goodWriter(w io.Writer, x int) error {
	if _, err := fmt.Fprintf(w, "value %d\n", x); err != nil {
		return err
	}
	return nil
}

func goodError(x int) error { return fmt.Errorf("bad value %d", x) }

func allowedBanner() {
	fmt.Println("startup banner") //ordlint:allow printguard — fixture-sanctioned banner
}
