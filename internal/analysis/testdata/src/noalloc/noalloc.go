// Package noalloc exercises the annotated zero-allocation analyzer: a
// function marked //ordlint:noalloc must contain no allocation sites
// outside cap/len growth guards.
package noalloc

// Workspace is per-worker scratch; the zero value is ready.
type Workspace struct {
	buf []int
	m   map[int]int
}

type item struct {
	vals []int
}

type pair struct{ a, b int }

// Unannotated may allocate freely; the check never looks at it.
func Unannotated(n int) []int {
	out := make([]int, n)
	return out
}

// Hot is a warmed kernel: fresh allocations are findings, workspace reuse
// is not.
//
//ordlint:noalloc
func Hot(ws *Workspace, n int) int {
	fresh := make([]int, n) // want "make allocates"
	var local []int
	local = append(local, n)   // want "function-local slice"
	ws.buf = append(ws.buf, n) // workspace-rooted: allowed
	total := len(fresh) + len(local)
	for _, v := range ws.buf {
		total += v
	}
	return total
}

// Grow is the sanctioned warm-up shape: allocation behind a cap guard.
//
//ordlint:noalloc
func Grow(ws *Workspace, n int) {
	if cap(ws.buf) < n {
		ws.buf = make([]int, 0, n)
	}
	ws.buf = ws.buf[:0]
}

// AppendParam appends into a caller-owned buffer whose capacity the caller
// manages.
//
//ordlint:noalloc
func AppendParam(dst []int, v int) []int {
	return append(dst, v)
}

// ValueStruct keeps a composite as a stack value: no allocation.
//
//ordlint:noalloc
func ValueStruct(n int) int {
	p := pair{a: n, b: n}
	return p.a + p.b
}

// Boxes demonstrates the closure and interface-conversion findings.
//
//ordlint:noalloc
func Boxes(v int) any {
	f := func() int { return v } // want "closure"
	_ = f
	return v // want "boxes"
}

// FreshComposites demonstrates heap composite findings.
//
//ordlint:noalloc
func FreshComposites(n int) int {
	it := &item{}      // want "composite literal"
	m := map[int]int{} // want "map literal"
	return n + len(it.vals) + len(m)
}

// MapsAndStrings demonstrates map-write and string findings.
//
//ordlint:noalloc
func MapsAndStrings(ws *Workspace, k int, s string) string {
	ws.m[k] = k    // want "map write"
	b := []byte(s) // want "allocates a copy"
	_ = b
	return s + "!" // want "concatenation"
}

// Key interns a lookup key; the copy is fundamental to the operation and
// justified in place.
//
//ordlint:noalloc
func Key(b []byte) string {
	return string(b) //ordlint:allow noalloc — map keys must be immutable strings; the copy is the point
}
