// Package goroutinecap exercises the goroutine-capture analyzer: spawned
// goroutines must not share non-synchronized workspaces or pooled nodes.
package goroutinecap

import "sync"

// Workspace is per-worker scratch; the zero value is ready.
type Workspace struct {
	buf []int
}

type node struct {
	val int
}

type engine struct {
	ws Workspace
}

func use(*Workspace) {}
func useNode(*node)  {}

// BadCapture shares one workspace between the caller and the goroutine.
func BadCapture(ws *Workspace) {
	go func() {
		use(ws) // want "captures"
	}()
}

// BadSelector reaches a workspace through a captured struct.
func BadSelector(e *engine) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		e.ws.buf = nil // want "captures"
	}()
	wg.Wait()
}

// BadLoopShare hands the same workspace to every worker it spawns.
func BadLoopShare(ws *Workspace, jobs []int) {
	for range jobs {
		go use(ws) // want "every goroutine"
	}
}

// BadLoopNode does the same with a pooled node.
func BadLoopNode(n *node, jobs []int) {
	for range jobs {
		go useNode(n) // want "every goroutine"
	}
}

// GoodPerIteration gives each worker its own per-iteration value.
func GoodPerIteration(nodes []*node) {
	for _, n := range nodes {
		go func(n *node) {
			useNode(n)
		}(n)
	}
}

// GoodPerWorkerSlot indexes into a per-worker slice, the exploreParallel
// idiom.
func GoodPerWorkerSlot(wss []*Workspace, jobs []int) {
	for i := range jobs {
		i := i
		go func() {
			use(wss[i])
		}()
	}
}

// AllowedShare is deliberate: the workers only read the warmed buffers.
func AllowedShare(ws *Workspace, jobs []int) {
	for range jobs {
		go use(ws) //ordlint:allow goroutinecap — workers only read ws; no writes until Wait returns
	}
}
