// Package wgbalance exercises the WaitGroup arithmetic check: Add/Done/Wait
// must balance across a function's call cone and its spawn sites, Add must
// precede the go statement it counts, and an inline Done must cover every
// goroutine path.
package wgbalance

import "sync"

func work() {}

// addInsideGoroutine races: the spawner can reach Wait before the goroutine
// has run its Add, observing the counter at zero.
func addInsideGoroutine() {
	var wg sync.WaitGroup
	go func() { // want "calls Add on \"wg\" which the spawner Waits on"
		wg.Add(1)
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// skipsDone leaks a count: the early-return path never reaches Done, so
// Wait blocks forever when fail is set.
func skipsDone(fail bool) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want "skips wg.Done on some path"
		if fail {
			return
		}
		work()
		wg.Done()
	}()
	wg.Wait()
}

// overcounted Adds two but only one goroutine ever Dones: Wait deadlocks.
func overcounted() {
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait() // want "net \+1 across this function's call cone; Wait deadlocks"
}

// undercounted Adds one but two goroutines Done: the counter goes negative.
func undercounted() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	go func() {
		defer wg.Done()
	}()
	wg.Wait() // want "net -1 across this function's call cone; the counter goes negative and panics"
}

// addOutsideLoop counts one goroutine while the loop spawns n of them:
// every iteration past the first is uncounted.
func addOutsideLoop(n int) {
	var wg sync.WaitGroup
	wg.Add(1) // want "sits outside the loop that spawns one counted goroutine per iteration"
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

// balancedLoop is the fixed shape: Add rides next to its go statement.
func balancedLoop(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

// prep registers one unit on behalf of its caller.
func prep(wg *sync.WaitGroup) {
	wg.Add(1)
}

// addsViaHelper balances interprocedurally: the Add lives in prep's body
// but still counts toward this function's cone.
func addsViaHelper() {
	var wg sync.WaitGroup
	prep(&wg)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}

// allowedImbalance documents a count settled outside the analyzable cone.
func allowedImbalance() {
	var wg sync.WaitGroup
	wg.Add(1)
	//ordlint:allow wgbalance — the matching Done is registered by a shutdown hook outside this call cone
	wg.Wait()
}
