// Package atomicmix exercises the mixed-access check: a variable whose
// address feeds a sync/atomic function anywhere in the module must never
// be read or written plainly elsewhere — plain reads beside atomic writes
// still race. Typed atomics are immune by construction and out of scope.
package atomicmix

import "sync/atomic"

type counters struct {
	hits  uint64
	reads uint64
	plain uint64
}

func (c *counters) hit() { atomic.AddUint64(&c.hits, 1) }

func (c *counters) load() uint64 { return atomic.LoadUint64(&c.reads) }

// race mixes plain and atomic access to the same fields.
func (c *counters) race() uint64 {
	c.hits++       // want "hits is accessed atomically at .* but plainly here"
	return c.reads // want "reads is accessed atomically at .* but plainly here"
}

// bump touches a never-atomic field: plain access is fine. Quiet.
func (c *counters) bump() uint64 {
	c.plain++
	return c.plain
}

var total uint64

func addTotal(n uint64) { atomic.AddUint64(&total, n) }

// report documents a deliberate exception in place.
func report() uint64 {
	return total //ordlint:allow atomicmix — shutdown-only read after every writer has exited
}
