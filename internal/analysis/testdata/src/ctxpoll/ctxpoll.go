// Package ctxpoll is a golden-file fixture for the ctxpoll analyzer. The
// test scopes the analyzer to this package with the default scan-call names.
package ctxpoll

import "context"

type scanner struct{ n int }

// Next mimics a progressive scan step (the name is what the analyzer keys
// on).
func (s *scanner) Next() (int, bool) {
	s.n++
	return s.n, s.n < 100
}

func helper(ctx context.Context) error { return ctx.Err() }

func bad(s *scanner) int {
	sum := 0
	for { // want "advances a scan via s.Next but never polls"
		v, ok := s.Next()
		if !ok {
			return sum
		}
		sum += v
	}
}

func badRange(s *scanner, xs []int) int {
	sum := 0
	for range xs { // want "never polls"
		v, _ := s.Next()
		sum += v
	}
	return sum
}

func badClosurePoll(ctx context.Context, s *scanner) {
	for { // want "never polls"
		if _, ok := s.Next(); !ok {
			break
		}
		// A poll inside a nested closure runs on the closure's schedule and
		// must not satisfy the loop's obligation.
		_ = func() error { return ctx.Err() }
	}
}

func goodDirect(ctx context.Context, s *scanner) (int, error) {
	sum := 0
	for i := 0; ; i++ {
		if i%64 == 0 {
			select {
			case <-ctx.Done():
				return 0, ctx.Err()
			default:
			}
		}
		v, ok := s.Next()
		if !ok {
			return sum, nil
		}
		sum += v
	}
}

func goodDelegated(ctx context.Context, s *scanner) (int, error) {
	sum := 0
	for {
		if err := helper(ctx); err != nil {
			return 0, err
		}
		v, ok := s.Next()
		if !ok {
			return sum, nil
		}
		sum += v
	}
}

func allowedBounded(s *scanner) int {
	for { //ordlint:allow ctxpoll — warm-up loop, bounded at 100 steps by construction
		if _, ok := s.Next(); !ok {
			return s.n
		}
	}
}

func noScan(xs []float64) float64 {
	t := 0.0
	for _, x := range xs {
		t += x
	}
	return t
}
