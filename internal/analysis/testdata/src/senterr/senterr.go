// Package senterr is a golden-file fixture for the senterr analyzer: it
// exports a sentinel error, which puts every error-returning function of the
// package under the must-check contract.
package senterr

import "errors"

// ErrBad is the sentinel establishing the contract.
var ErrBad = errors.New("senterr: bad input")

func compute(x int) (int, error) {
	if x < 0 {
		return 0, ErrBad
	}
	return 2 * x, nil
}

func fire() error { return nil }

func bad() int {
	compute(1)         // want "error result of senterr.compute discarded"
	go compute(2)      // want "discarded"
	defer fire()       // want "discarded"
	v, _ := compute(3) // want "assigned to _"
	return v
}

func good() (int, error) {
	v, err := compute(4)
	if err != nil {
		return 0, err
	}
	return v, nil
}

func allowedDiscard() {
	v, _ := compute(5) //ordlint:allow senterr — constant input; validation cannot fail
	_ = v
}
