// Package deepnoalloc exercises the transitive //ordlint:noalloc contract:
// an annotated kernel may not call its way to an allocation, whether the
// allocation is a module callee's make or an escape into a stdlib package
// off the allocation-free allowlist. The fixture config allowlists math and
// marks cacheFill as an amortized one-time fill.
package deepnoalloc

import (
	"fmt"
	"math"
)

var (
	sink  []int
	cache []float64
)

func helperAllocs() {
	sink = make([]int, 8)
}

func helperFmt() string {
	return fmt.Sprintf("%d", len(sink))
}

func clean(x float64) float64 { return math.Sqrt(x) + 1 }

func cacheFill() {
	if cache == nil {
		cache = make([]float64, 64)
	}
}

func helperAllowed() {
	sink = make([]int, 1) //ordlint:allow deepnoalloc — documented free-list miss; growth is amortized
}

// Kernel reaches a module callee that allocates.
//
//ordlint:noalloc
func Kernel(x float64) float64 {
	helperAllocs() // want "call chain deepnoalloc.Kernel → deepnoalloc.helperAllocs reaches an allocation"
	return x
}

// KernelExtern leaves the module into fmt, which is not allowlisted.
//
//ordlint:noalloc
func KernelExtern() int {
	s := helperFmt() // want "call chain deepnoalloc.KernelExtern → deepnoalloc.helperFmt leaves the module into fmt.Sprintf"
	return len(s)
}

// KernelMath only reaches math, which the config allowlists: quiet.
//
//ordlint:noalloc
func KernelMath(x float64) float64 {
	return clean(x)
}

// KernelCached calls the documented amortized cache fill: quiet.
//
//ordlint:noalloc
func KernelCached() float64 {
	cacheFill()
	return cache[0]
}

// KernelAllowed reaches an allocation that carries an in-place allow
// comment — the contract escape propagates through the summary.
//
//ordlint:noalloc
func KernelAllowed() {
	helperAllowed()
}
