// Package lockhold exercises the held-across-blocking-operation analysis:
// a mutex class acquired on some path may not be held at a channel op, a
// select without default, or a call that may block per the interprocedural
// summary. Deferred unlocks do not release (they run at exit), and
// re-acquiring a held class is a self-deadlock.
package lockhold

import (
	"sync"
	"time"
)

type registry struct {
	mu    sync.Mutex
	items map[string]int
	ch    chan int
}

// BadSleep holds mu across a sleep.
func (r *registry) BadSleep() {
	r.mu.Lock()
	time.Sleep(time.Millisecond) // want "call to time.Sleep while holding r.mu"
	r.mu.Unlock()
}

// BadDeferred: the deferred unlock keeps mu held through the body, so the
// receive below happens under the lock.
func (r *registry) BadDeferred() {
	r.mu.Lock()
	defer r.mu.Unlock()
	<-r.ch // want "channel receive while holding r.mu"
}

// BadSend holds mu across a channel send.
func (r *registry) BadSend(v int) {
	r.mu.Lock()
	r.ch <- v // want "channel send while holding r.mu"
	r.mu.Unlock()
}

// BadTransitive: slow does not block syntactically here — its summary does.
func (r *registry) BadTransitive() {
	r.mu.Lock()
	r.slow() // want "call to lockhold.registry.slow .+ while holding r.mu"
	r.mu.Unlock()
}

func (r *registry) slow() { time.Sleep(time.Millisecond) }

// SelfDeadlock re-acquires a class already held.
func (r *registry) SelfDeadlock() {
	r.mu.Lock()
	r.mu.Lock() // want "r.mu is locked while already held on some path: self-deadlock"
	r.mu.Unlock()
}

// GoodSnapshot is the sanctioned pattern: snapshot under lock, release,
// then do the slow work. Quiet.
func (r *registry) GoodSnapshot() int {
	r.mu.Lock()
	v := r.items["k"]
	r.mu.Unlock()
	time.Sleep(time.Millisecond)
	return v
}

// GoodNonBlocking holds mu across pure computation only. Quiet.
func (r *registry) GoodNonBlocking() int {
	r.mu.Lock()
	n := len(r.items)
	r.mu.Unlock()
	return n
}

// Allowed documents a deliberate exception in place.
func (r *registry) Allowed() {
	r.mu.Lock()
	time.Sleep(time.Millisecond) //ordlint:allow lockhold — startup-only path with no concurrent callers
	r.mu.Unlock()
}
