// Package wsescape exercises the workspace-escape analyzer: memory carved
// out of a reusable Workspace must not outlive the call that borrowed it.
package wsescape

// Workspace is per-worker scratch; the zero value is ready.
type Workspace struct {
	buf []float64
	ids []int
}

type sink struct {
	data []float64
}

var global []float64

// BadReturn leaks an internal buffer without telling the caller.
func BadReturn(ws *Workspace) []float64 {
	return ws.buf // want "aliasing contract"
}

// GoodReturn returns a view that aliases the workspace buffer; it is valid
// until the next call on the same Workspace.
func GoodReturn(ws *Workspace) []float64 {
	return ws.buf
}

// CopyReturn builds an independent result the caller may keep forever.
func CopyReturn(ws *Workspace) []float64 {
	out := make([]float64, len(ws.buf))
	copy(out, ws.buf)
	return out
}

// BadStore parks workspace memory in an object that outlives the call.
func BadStore(ws *Workspace, s *sink) {
	s.data = ws.buf[:2] // want "outlives"
}

// BadGlobal publishes workspace memory at package level.
func BadGlobal(ws *Workspace) {
	global = ws.buf // want "outlives"
}

// BadSend hands workspace memory to whoever is on the other end.
func BadSend(ws *Workspace, ch chan []float64) {
	ch <- ws.buf // want "channel"
}

// BadDerived shows taint flowing through locals and reslices.
func BadDerived(ws *Workspace, s *sink) {
	view := ws.buf[1:]
	tail := view[:1]
	s.data = tail // want "outlives"
}

// GoodWriteBack stores into the workspace itself: that is the whole point.
func GoodWriteBack(ws *Workspace) {
	ws.buf = append(ws.buf[:0], 1, 2)
	ws.ids = ws.ids[:0]
}

// GoodLocal uses a function-local workspace whose memory dies with the
// frame, so handing it out is an ordinary move.
func GoodLocal() []float64 {
	var ws Workspace
	ws.buf = append(ws.buf, 1)
	return ws.buf
}

// AllowedStore is deliberate and justified in place.
func AllowedStore(ws *Workspace, s *sink) {
	s.data = ws.buf //ordlint:allow wsescape — snapshot is consumed before the next call on ws
}
