// Package stridebound exercises the stride-window subscript analysis:
// every index into a capacity-strided run (entry and rect arenas
// addressed as id*stride + offset) decomposes into additive terms, and
// each term must be a classed handle (the window base), a constant, a
// capacity-derived expression (dim, fanout, count reads, len results) or
// a variable under a dominating guard against such a bound — unless the
// function documents its caller contract with //ordlint:bounded.
package stridebound

// ref is the node-handle type (configured as a node handle).
type ref int32

// tree packs each node's entries and rectangles into strided windows of
// the flat arenas: fanout entries per node, 2*dim coordinates per rect.
type tree struct {
	dim    int
	fanout int
	count  []int16
	ents   []int32
	rects  []float64
}

// eb returns a node's entry-window base; the handle arithmetic keeps the
// node class on the result.
func (t *tree) eb(n ref) int { return int(n) * t.fanout }

// rb returns the rect-window base of one entry.
func (t *tree) rb(n ref, i int) int { return (t.eb(n) + i) * 2 * t.dim }

// scan iterates a node's entries under the count bound. Quiet: the loop
// condition guards the induction variable with a count-derived cap.
func (t *tree) scan(n ref) int32 {
	var last int32
	cnt := int(t.count[n])
	for i := 0; i < cnt; i++ {
		last = t.ents[t.eb(n)+i]
	}
	return last
}

// pickChecked establishes the bound with an early-out. Quiet: the
// fall-through of the terminating branch is guarded.
func (t *tree) pickChecked(n ref, j int) int32 {
	if j >= int(t.count[n]) {
		return -1
	}
	return t.ents[t.eb(n)+j]
}

// rect slices one entry's rectangle window. Quiet: the base is classed
// and the extent is dimension-derived.
func (t *tree) rect(n ref, i int) []float64 {
	if i >= int(t.count[n]) {
		return nil
	}
	rb := t.rb(n, i)
	return t.rects[rb : rb+2*t.dim]
}

// spill reads the overflow entry: capacity arithmetic is a valid
// offset. Quiet.
func (t *tree) spill(n ref) int32 {
	return t.ents[t.eb(n)+t.fanout-1]
}

// entryAt documents its caller contract instead of guarding.
//
//ordlint:bounded — caller contract: i < count[n], upheld by every traversal loop
func (t *tree) entryAt(n ref, i int) int32 {
	return t.ents[t.eb(n)+i]
}

// pick reads one entry without any dominating bound.
func (t *tree) pick(n ref, j int) int32 {
	return t.ents[t.eb(n)+j] // want "unguarded term j in a stride-window subscript"
}

// rawWindow slices with an unguarded extent.
func (t *tree) rawWindow(n ref, w int) []float64 {
	rb := t.rb(n, 0)
	return t.rects[rb : rb+w] // want "unguarded term w in a stride-window subscript"
}

// drift reassigns the guarded index: the guard does not survive the
// write.
func (t *tree) drift(n ref, j int) int32 {
	if j >= int(t.count[n]) {
		return -1
	}
	j = j * 2
	return t.ents[t.eb(n)+j] // want "unguarded term j in a stride-window subscript"
}

// probe keeps a caller-validated offset under an allow.
func (t *tree) probe(n ref, off int) int32 {
	return t.ents[t.eb(n)+off] //ordlint:allow stridebound — the probe offset is validated by the caller's binary search
}
