// Package poolpair exercises the pool Get/Put balance analyzer: every
// object taken from a free list must be put back or handed off on every
// control-flow path.
package poolpair

type node struct {
	id   int
	next *node
}

type pool struct {
	free []*node
}

func (p *pool) get() *node {
	if n := len(p.free); n > 0 {
		nd := p.free[n-1]
		p.free = p.free[:n-1]
		return nd
	}
	return &node{}
}

func (p *pool) put(n *node) {
	p.free = append(p.free, n)
}

// Leak forgets the node on the early-return path.
func Leak(p *pool, cond bool) int {
	n := p.get() // want "lacks a matching Put"
	if cond {
		return 0
	}
	p.put(n)
	return 1
}

// Balanced puts the node back on every path.
func Balanced(p *pool, cond bool) int {
	n := p.get()
	if cond {
		n.id = 1
		p.put(n)
		return 0
	}
	p.put(n)
	return 1
}

// LoopBalanced recycles once per iteration.
func LoopBalanced(p *pool, k int) {
	for i := 0; i < k; i++ {
		n := p.get()
		n.id = i
		p.put(n)
	}
}

// DoublePut hands the same node back twice on one path.
func DoublePut(p *pool, cond bool) {
	n := p.get()
	p.put(n)
	if cond {
		p.put(n) // want "double Put"
	}
}

// UseAfterPut touches a node that is already back in the pool.
func UseAfterPut(p *pool) int {
	n := p.get()
	p.put(n)
	return n.id // want "used after"
}

// HandOff transfers ownership into a longer-lived structure; the new owner
// carries the Put obligation.
func HandOff(p *pool, head *node) {
	n := p.get()
	head.next = n
}

// Returned moves ownership to the caller.
func Returned(p *pool) *node {
	n := p.get()
	n.id = 7
	return n
}

// Discard drops the object on the floor.
func Discard(p *pool) {
	p.get() // want "discarded"
}

// AllowedLeak is deliberate: the caller recycles through another route.
func AllowedLeak(p *pool, cond bool) {
	n := p.get() //ordlint:allow poolpair — node parked in the pool's side table; recycled by Close
	if cond {
		return
	}
	p.put(n)
}
