// Package nopanic is a golden-file fixture for the nopanic analyzer. The
// test scopes the analyzer to this package.
package nopanic

import (
	"errors"
	"log"
	"os"
)

// init-time validation may abort the process: exempt by rule.
func init() {
	if os.Getenv("NOPANIC_FIXTURE") == "corrupt" {
		panic("bad configuration")
	}
}

func bad(x int) int {
	if x < 0 {
		panic("negative") // want "panic in library package"
	}
	if x == 0 {
		log.Fatal("zero") // want "log.Fatal in library package"
	}
	if x == 1 {
		os.Exit(2) // want "os.Exit in library package"
	}
	return x
}

func good(x int) (int, error) {
	if x < 0 {
		return 0, errors.New("negative")
	}
	return x, nil
}

func allowedPrecondition(xs []int, i int) int {
	if i >= len(xs) {
		panic("index beyond documented range") //ordlint:allow nopanic — documented precondition
	}
	return xs[i]
}
