package analysis

import (
	"sort"
	"strings"
	"testing"
)

// TestModuleConcSweep pins the concurrency shape of the real module: the
// exact set of spawn sites, and the channel/WaitGroup/atomic protocol facts
// of each one. The spawn map is exhaustive by construction — a new go
// statement anywhere in the module fails the test until its protocol is
// classified here — making this the machine-checked version of the
// parallel-core concurrency contracts (shard streams close-on-exit, merge
// drains, snapshots publish through atomic.Pointer).
func TestModuleConcSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the full module plus its stdlib closure")
	}
	root, modPath, err := FindModule(".")
	if err != nil {
		t.Fatalf("FindModule: %v", err)
	}
	l := NewLoader(modPath, root)
	pkgs, err := l.LoadModule()
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	g := BuildCallGraph(pkgs)
	facts := ComputeConcFacts(g)

	// Exhaustive spawn map: caller -> spawned callees, in edge order.
	spawnMap := map[string][]string{}
	nodeByName := map[string]*FuncNode{}
	for _, n := range g.Nodes {
		nodeByName[n.Name] = n
		for _, e := range Spawns(n) {
			spawnMap[n.Name] = append(spawnMap[n.Name], e.Callee.Name)
		}
	}
	wantSpawns := map[string][]string{
		modPath + "/internal/core.explorer.exploreParallel": {
			modPath + "/internal/core.explorer.exploreParallel.func1",
		},
		modPath + "/internal/skyband.scanParallel": {
			modPath + "/internal/skyband.shardScan.run",
		},
		modPath + "/cmd/ordload.loadgen.run": {
			modPath + "/cmd/ordload.loadgen.run.func1",
		},
		modPath + "/cmd/ordud.main": {
			modPath + "/cmd/ordud.main.func1",
			modPath + "/cmd/ordud.main.func2",
			modPath + "/cmd/ordud.main.func3",
		},
	}
	for caller, want := range wantSpawns {
		got := spawnMap[caller]
		if strings.Join(got, " ") != strings.Join(want, " ") {
			t.Errorf("%s spawns %v, want %v", caller, got, want)
		}
	}
	var extra []string
	for caller := range spawnMap {
		if _, ok := wantSpawns[caller]; !ok {
			extra = append(extra, caller)
		}
	}
	sort.Strings(extra)
	for _, caller := range extra {
		t.Errorf("unclassified spawn site: %s spawns %v; add its protocol to the sweep table", caller, spawnMap[caller])
	}

	cone := func(name string) *ConcSummary {
		t.Helper()
		n := nodeByName[name]
		if n == nil {
			t.Fatalf("module has no function %s", name)
		}
		return ConcCone(n, facts)
	}
	hasChan := func(s *ConcSummary, kind ChanOpKind, class string, deferred bool) bool {
		for _, op := range s.Chans {
			if op.Kind == kind && op.Class == class && op.Deferred == deferred {
				return true
			}
		}
		return false
	}
	hasWG := func(s *ConcSummary, kind WGOpKind, class string) bool {
		for _, op := range s.WGs {
			if op.Kind == kind && op.Class == class {
				return true
			}
		}
		return false
	}
	hasAtomic := func(s *ConcSummary, kind AtomicOpKind, class, recv string) bool {
		for _, op := range s.Atomics {
			if op.Kind == kind && op.Class == class && op.Recv == recv {
				return true
			}
		}
		return false
	}

	// Parallel frontier (internal/skyband): each shard worker streams
	// surviving entries on its out channel, closes it at exit, polls done as
	// its cancellation escape, and pre-prunes against the atomically
	// published snapshot. The merge side drains out, closes done at exit,
	// and publishes grown snapshots through the same atomic.Pointer.
	run := cone(modPath + "/internal/skyband.shardScan.run")
	if !hasChan(run, ChanClose, "out", true) {
		t.Errorf("shardScan.run lost its deferred close of out; the merge's drain would block forever")
	}
	if !hasChan(run, ChanSend, "out", false) {
		t.Errorf("shardScan.run no longer sends on out")
	}
	sendEscapesDone := false
	for _, op := range run.Chans {
		if op.Kind == ChanSend && op.Class == "out" {
			for _, esc := range op.Escapes {
				if esc == "done" {
					sendEscapesDone = true
				}
			}
		}
	}
	if !sendEscapesDone {
		t.Errorf("shardScan.run's send on out lost its done select escape; early merge exit would strand the worker")
	}
	if !hasAtomic(run, AtomicLoad, "snap", "Pointer") {
		t.Errorf("shardScan.run no longer pre-prunes against the published snapshot (atomic Load of snap)")
	}

	merge := cone(modPath + "/internal/skyband.scanParallel")
	if !hasChan(merge, ChanClose, "done", true) {
		t.Errorf("scanParallel lost its deferred close of done; workers would outlive the merge")
	}
	if !hasChan(merge, ChanRecv, "out", false) {
		t.Errorf("scanParallel no longer drains the shard out streams")
	}
	if !hasAtomic(merge, AtomicStore, "snap", "Pointer") {
		t.Errorf("scanParallel no longer publishes pruner snapshots (atomic Store of snap)")
	}
	bufferedOut := false
	for _, op := range merge.Chans {
		if op.Kind == ChanMake && op.Class == "out" && op.Buffered {
			bufferedOut = true
		}
	}
	if !bufferedOut {
		t.Errorf("scanParallel's out channels are no longer buffered; workers would rendezvous with the merge on every record")
	}

	// Region partitioner (internal/core): the per-batch workers are counted
	// by a WaitGroup the spawner Waits on, Done deferred.
	part := cone(modPath + "/internal/core.explorer.exploreParallel.func1")
	if !hasWG(part, WGDone, "wg") {
		t.Errorf("exploreParallel's partition worker no longer Dones wg")
	}
	if !hasWG(cone(modPath+"/internal/core.explorer.exploreParallel"), WGWait, "wg") {
		t.Errorf("exploreParallel no longer Waits on its partition workers")
	}

	// Load generator (cmd/ordload): workers range over the jobs stream and
	// Done a WaitGroup; the feeder closes jobs and Waits.
	worker := cone(modPath + "/cmd/ordload.loadgen.run.func1")
	if !hasChan(worker, ChanRange, "jobs", false) || !hasWG(worker, WGDone, "wg") {
		t.Errorf("ordload worker protocol changed: want range over jobs + wg.Done")
	}
	feeder := cone(modPath + "/cmd/ordload.loadgen.run")
	if !hasChan(feeder, ChanClose, "jobs", false) || !hasWG(feeder, WGWait, "wg") {
		t.Errorf("ordload feeder protocol changed: want close(jobs) + wg.Wait")
	}

	// Daemon (cmd/ordud): the shutdown goroutines are purely context-driven —
	// every channel operation in their cones bottoms out in a call chain
	// (<-ctx.Done()), class "", so they hold no named-channel protocol at all.
	for _, fn := range []string{"main.func1", "main.func2", "main.func3"} {
		s := cone(modPath + "/cmd/ordud." + fn)
		for _, op := range s.Chans {
			if op.Class != "" {
				t.Errorf("ordud %s gained a named-channel op (%s on %q); the daemon's goroutines are context-driven only", fn, op.Kind, op.Class)
			}
		}
	}
}
