package analysis

import (
	"go/ast"
	"go/types"
)

// NewNarrowcast builds the narrowcast analyzer: every int→int32/uint32
// conversion in the flat-core packages must be dominated by an explicit
// range guard against a capacity bound, or covered by a documented
// capacity sentinel (//ordlint:bounded on the function, or routing the
// value through narrow.Index32, whose own guard this analyzer verifies).
// An unguarded narrowing silently wraps once the arena crosses 2^31
// records — the class of bug the ErrTooLarge sentinel exists to surface.
func NewNarrowcast(hc *HandleConfig) *Analyzer {
	a := &Analyzer{
		Name:  "narrowcast",
		Doc:   "int->int32/uint32 conversions feeding the flat core need a dominating range guard or //ordlint:bounded",
		Layer: "handle",
	}
	a.Run = func(pass *Pass) {
		if hc == nil || !hc.Packages[pass.PkgPath] {
			return
		}
		g := pass.Facts.Graph
		for _, n := range g.Nodes {
			if n.Pkg.Path != pass.PkgPath || n.Body() == nil {
				continue
			}
			if hi := pass.Facts.Handles[n]; hi != nil && hi.Bounded {
				continue // documented capacity invariant
			}
			tr := newHandleTracker(n, g, pass.Facts.Handles, hc)
			tr.solve()
			tr.guardedWalk(func(nd ast.Node, gs *guardState) {
				call, ok := nd.(*ast.CallExpr)
				if !ok {
					return
				}
				checkNarrowConv(pass, tr, gs, call)
			})
		}
	}
	return a
}

// checkNarrowConv flags one unguarded narrowing conversion.
func checkNarrowConv(pass *Pass, tr *handleTracker, gs *guardState, call *ast.CallExpr) {
	tv, ok := tr.info.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return
	}
	if !narrow32Target(tv.Type) {
		return
	}
	arg := ast.Unparen(call.Args[0])
	if !wideIntSource(typeOf(tr.info, arg)) {
		return // already 32-bit or narrower (NodeRef→int32 round trips)
	}
	if tvArg, ok := tr.info.Types[arg]; ok && tvArg.Value != nil {
		return // constant, checked by the compiler
	}
	if gs.Guarded(tr.info, arg) {
		return // dominated by an upper-bound guard
	}
	pass.Report(call.Pos(),
		"unguarded narrowing conversion %s of %s feeding the flat core — guard the range, route it through narrow.Index32, or annotate the function //ordlint:bounded",
		types.ExprString(call.Fun), types.ExprString(arg))
}

// narrow32Target reports whether a conversion target is (a named type
// over) int32 or uint32 — the flat core's handle widths.
func narrow32Target(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Kind() == types.Int32 || b.Kind() == types.Uint32
}

// wideIntSource reports whether the operand type can exceed 32 bits:
// int/uint (64-bit on every platform this module targets), int64/uint64,
// uintptr.
func wideIntSource(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Int, types.Uint, types.Int64, types.Uint64, types.Uintptr:
		return true
	}
	return false
}
