package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// NewNoalloc builds the noalloc analyzer: a function whose doc comment
// carries the //ordlint:noalloc directive must contain no allocation
// sites. Flagged sites: make/new, slice and map composite literals,
// address-of composite literals, append into a function-local (fresh)
// slice, closures, map writes, string concatenation and string<->byte
// conversions, and implicit interface conversions. Sites under a
// cap/len growth guard (`if cap(s) < n { s = make(...) }`) are the
// sanctioned warm-up path and stay quiet — they are exactly what the
// dynamic testing.AllocsPerRun gates measure as zero after warm-up.
func NewNoalloc(wsPkg func(pkgPath string) bool) *Analyzer {
	a := &Analyzer{
		Name:  "noalloc",
		Doc:   "functions annotated //ordlint:noalloc must be free of allocation sites (growth-guarded warm-up is exempt)",
		Layer: "cfg",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil || !hasNoallocDirective(fn) {
					continue
				}
				checkNoalloc(pass, wsPkg, fn)
			}
		}
	}
	return a
}

// hasNoallocDirective reports whether the function's doc comment group
// contains an //ordlint:noalloc directive line. (CommentGroup.Text strips
// directives, so scan the raw list.)
func hasNoallocDirective(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == "ordlint:noalloc" || strings.HasPrefix(text, "ordlint:noalloc ") {
			return true
		}
	}
	return false
}

// guardSpans collects the growth-guard extents of a function declaration;
// see guardSpansIn, which the summary layer shares.
func guardSpans(fn *ast.FuncDecl) [][2]token.Pos {
	return guardSpansIn(fn.Body)
}

func checkNoalloc(pass *Pass, wsPkg func(string) bool, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	tr := newOriginTracker(pass, pass.Facts, wsPkg, fn.Body)
	spans := guardSpans(fn)
	guarded := func(pos token.Pos) bool {
		for _, s := range spans {
			if pos >= s[0] && pos < s[1] {
				return true
			}
		}
		return false
	}
	report := func(pos token.Pos, format string, args ...interface{}) {
		pass.Report(pos, "noalloc function %s: "+format, append([]interface{}{fn.Name.Name}, args...)...)
	}

	// results of the enclosing function, for return-site interface
	// conversions.
	var results []types.Type
	if sig, ok := info.Defs[fn.Name].Type().(*types.Signature); ok {
		for i := 0; i < sig.Results().Len(); i++ {
			results = append(results, sig.Results().At(i).Type())
		}
	}

	ifaceConv := func(target types.Type, e ast.Expr) bool {
		if target == nil {
			return false
		}
		if _, ok := target.Underlying().(*types.Interface); !ok {
			return false
		}
		tv, ok := info.Types[e]
		if !ok || tv.Type == nil {
			return false
		}
		if tv.IsNil() {
			return false
		}
		if _, ok := tv.Type.Underlying().(*types.Interface); ok {
			return false // interface to interface: no box
		}
		if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			return false
		}
		return true
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			report(x.Pos(), "closure literal allocates")
			return false
		case *ast.CompositeLit:
			t := info.Types[x].Type
			if t != nil {
				switch t.Underlying().(type) {
				case *types.Slice:
					if !guarded(x.Pos()) {
						report(x.Pos(), "slice literal allocates its backing array")
					}
				case *types.Map:
					if !guarded(x.Pos()) {
						report(x.Pos(), "map literal allocates")
					}
				}
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok && !guarded(x.Pos()) {
					report(x.Pos(), "&composite literal allocates on the heap")
				}
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isStringType(info, x) {
				report(x.Pos(), "string concatenation allocates")
			}
		case *ast.AssignStmt:
			if x.Tok == token.ADD_ASSIGN && len(x.Lhs) == 1 && isStringType(info, x.Lhs[0]) {
				report(x.Pos(), "string concatenation allocates")
			}
			for _, l := range x.Lhs {
				if ix, ok := ast.Unparen(l).(*ast.IndexExpr); ok {
					if t := info.Types[ix.X].Type; t != nil {
						if _, ok := t.Underlying().(*types.Map); ok {
							report(l.Pos(), "map write may allocate")
						}
					}
				}
			}
			// Interface conversions on assignment.
			if len(x.Lhs) == len(x.Rhs) {
				for i := range x.Lhs {
					if lt := info.Types[x.Lhs[i]].Type; ifaceConv(lt, x.Rhs[i]) {
						report(x.Rhs[i].Pos(), "assignment boxes %s into an interface", types.TypeString(info.Types[x.Rhs[i]].Type, nil))
					}
				}
			}
		case *ast.ReturnStmt:
			if len(x.Results) == len(results) {
				for i, r := range x.Results {
					if ifaceConv(results[i], r) {
						report(r.Pos(), "return boxes %s into an interface", types.TypeString(info.Types[r].Type, nil))
					}
				}
			}
		case *ast.CallExpr:
			checkNoallocCall(pass, info, tr, x, guarded, ifaceConv, report)
		}
		return true
	})
}

func isStringType(info *types.Info, e ast.Expr) bool {
	t := info.Types[e].Type
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func checkNoallocCall(pass *Pass, info *types.Info, tr *originTracker, call *ast.CallExpr,
	guarded func(token.Pos) bool, ifaceConv func(types.Type, ast.Expr) bool,
	report func(token.Pos, string, ...interface{})) {

	// Conversions: string <-> []byte/[]rune copy their payload.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst, src := tv.Type, info.Types[call.Args[0]].Type
		if src != nil && stringBytesConv(dst, src) && !guarded(call.Pos()) {
			report(call.Pos(), "conversion %s allocates a copy", types.TypeString(dst, nil))
		}
		return
	}

	obj := calleeObject(info, call)
	if b, ok := obj.(*types.Builtin); ok {
		switch b.Name() {
		case "make", "new":
			if !guarded(call.Pos()) {
				report(call.Pos(), "%s allocates; hoist it behind a cap/len growth guard or into the workspace", b.Name())
			}
		case "append":
			if len(call.Args) == 0 || guarded(call.Pos()) {
				return
			}
			if freshSliceRoot(tr, call.Args[0]) {
				report(call.Pos(), "append grows a function-local slice with unknown capacity; route it through a workspace buffer")
			}
		}
		return
	}

	// Interface conversions at call boundaries (fmt.Errorf-style boxing).
	sig, _ := info.Types[call.Fun].Type.(*types.Signature)
	if sig == nil || call.Ellipsis.IsValid() {
		return
	}
	for i, a := range call.Args {
		var pt types.Type
		if sig.Variadic() && i >= sig.Params().Len()-1 {
			if st, ok := sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice); ok {
				pt = st.Elem()
			}
		} else if i < sig.Params().Len() {
			pt = sig.Params().At(i).Type()
		}
		if ifaceConv(pt, a) {
			report(a.Pos(), "argument boxes %s into an interface parameter", types.TypeString(info.Types[a].Type, nil))
		}
	}
}

// stringBytesConv reports whether the conversion dst(src) copies bytes:
// string <-> []byte / []rune in either direction.
func stringBytesConv(dst, src types.Type) bool {
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isBytes := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isStr(dst) && isBytes(src)) || (isBytes(dst) && isStr(src))
}

// freshSliceRoot reports whether the append destination is rooted in a
// function-local slice of unknown capacity — as opposed to a workspace
// field, receiver/parameter buffer, or global, whose capacity is managed
// by the warm-up contract.
func freshSliceRoot(tr *originTracker, e ast.Expr) bool {
	for {
		e = ast.Unparen(e)
		switch x := e.(type) {
		case *ast.Ident:
			obj := tr.objOf(x)
			if obj == nil {
				return false
			}
			if !tr.localTo(obj) {
				return false // parameter, receiver, global
			}
			// Local: fresh unless it demonstrably views workspace- or
			// caller-owned memory.
			if tr.tainted[obj] || tr.wsAlias[obj] {
				return false
			}
			return !stableLocal(tr, obj)
		case *ast.SelectorExpr, *ast.IndexExpr:
			return false // field/element of something: capacity is owned elsewhere
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return false
		}
	}
}

// stableLocal reports whether the local slice variable was (on any
// assignment) derived from non-fresh memory: a reslice of a parameter,
// receiver field, global, or a call result. Only demonstrably fresh
// slices (make, literals, nil declarations, self-appends) count as fresh.
func stableLocal(tr *originTracker, obj types.Object) bool {
	stable := false
	ast.Inspect(tr.body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		if len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, l := range as.Lhs {
			id, ok := ast.Unparen(l).(*ast.Ident)
			if !ok || tr.objOf(id) != obj {
				continue
			}
			if !freshValue(tr, as.Rhs[i], obj) {
				stable = true
			}
		}
		return true
	})
	return stable
}

// freshValue classifies an rhs relative to self (the variable being
// classified): make/new/composite/nil and self-appends are fresh; reslices
// and selector chains rooted outside the frame, other variables, and call
// results are not (their capacity is managed elsewhere).
func freshValue(tr *originTracker, e ast.Expr, self types.Object) bool {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.Ident:
		// x = append(x, ...): the self-reference keeps the fresh verdict.
		return x.Name == "nil" || tr.objOf(x) == self
	case *ast.CallExpr:
		if b, ok := calleeObject(tr.pass.TypesInfo, x).(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new":
				return true
			case "append":
				if len(x.Args) > 0 {
					return freshValue(tr, x.Args[0], self)
				}
			}
		}
		return false // unknown call results manage their own capacity
	case *ast.SliceExpr:
		return freshValue(tr, x.X, self)
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return false
	}
	return false
}
