package analysis

import (
	"go/ast"
	"go/token"
	"go/types"

	"ordu/internal/analysis/cfg"
)

// NewGenstale builds the genstale analyzer: handles, unstable borrowed
// views and generation values must not flow across an invalidation point —
// a call whose summary carries the mutates-structure fact (//ordlint:
// writer methods of configured owners, //ordlint:mutates functions) on the
// same root — without re-derivation. This extends borrowck's lock-release
// staleness to structural staleness: a node id may dangle after a Delete
// rebalances the arena, a ChildLo window after an Insert splits the node,
// a generation read after a mutation bumps the counter. Slot-class values
// and configured stable views survive (the slot-stability contract).
func NewGenstale(hc *HandleConfig) *Analyzer {
	a := &Analyzer{
		Name:  "genstale",
		Doc:   "handles, unstable views and generation values must be re-derived after a mutates-structure call on their root",
		Layer: "handle",
	}
	a.Run = func(pass *Pass) {
		if hc == nil || !hc.Packages[pass.PkgPath] {
			return
		}
		g := pass.Facts.Graph
		for _, n := range g.Nodes {
			if n.Pkg.Path != pass.PkgPath || n.Decl == nil || n.Decl.Body == nil {
				continue
			}
			tr := newHandleTracker(n, g, pass.Facts.Handles, hc)
			tr.solve()
			checkGenStale(pass, tr, n)
		}
	}
	return a
}

// genValue describes one tracked local: what kind of invalidatable value
// it holds and which structure roots it was derived from.
type genValue struct {
	kinds string // rendered for diagnostics ("node handle", "view", ...)
	roots map[types.Object]bool
}

// genstaleCtx carries the per-function state of one genstale run.
type genstaleCtx struct {
	tr      *handleTracker
	info    *types.Info
	facts   map[*FuncNode]*HandleInfo
	borrows map[*FuncNode]*BorrowInfo
	hc      *HandleConfig
	tracked map[types.Object]*genValue
}

const (
	gKill = iota
	gDef
	gUse
)

type gev struct {
	kind int
	obj  types.Object
	root types.Object
	name string // killing callee, for diagnostics
	pos  token.Pos
}

func checkGenStale(pass *Pass, tr *handleTracker, n *FuncNode) {
	ck := &genstaleCtx{
		tr:      tr,
		info:    pass.TypesInfo,
		facts:   pass.Facts.Handles,
		borrows: pass.Facts.Borrows,
		hc:      tr.hc,
		tracked: map[types.Object]*genValue{},
	}
	// Prepass: find the locals holding invalidatable values and their
	// roots. Assignment chains (n2 := n) inherit roots, so iterate to a
	// fixed point (root sets only grow).
	for changed := true; changed; {
		changed = false
		tr.ownInspect(func(nd ast.Node) bool {
			switch s := nd.(type) {
			case *ast.AssignStmt:
				if len(s.Lhs) == len(s.Rhs) {
					for i, lhs := range s.Lhs {
						changed = ck.trackDef(lhs, s.Rhs[i]) || changed
					}
				} else if len(s.Rhs) == 1 {
					// Tuple from a call: the tracked value is the first
					// result by the handle-first convention.
					changed = ck.trackDef(s.Lhs[0], s.Rhs[0]) || changed
				}
			case *ast.ValueSpec:
				for i, name := range s.Names {
					if i < len(s.Values) {
						changed = ck.trackDef(name, s.Values[i]) || changed
					}
				}
			}
			return true
		})
	}
	if len(ck.tracked) == 0 {
		return
	}

	// Event lists per CFG block, borrowck-style. Deferred calls run at
	// exit and are excluded: a deferred cleanup mutation cannot stale a
	// use that textually follows it.
	graph := cfg.New(n.Decl.Body)
	events := make([][]gev, len(graph.Blocks))
	haveKills := false
	for _, b := range graph.Blocks {
		for _, node := range b.Nodes {
			if _, isDefer := node.(*ast.DeferStmt); isDefer {
				continue
			}
			ck.emit(node, &events[b.Index])
		}
	}
	for _, evs := range events {
		for _, ev := range evs {
			if ev.kind == gKill {
				haveKills = true
			}
		}
	}
	if !haveKills {
		return
	}

	// May-stale fixed point (union meet): a kill on some path to a use is
	// a finding — the mutation does happen on that path.
	entry := make([]map[types.Object]bool, len(graph.Blocks))
	for i := range entry {
		entry[i] = map[types.Object]bool{}
	}
	apply := func(stale map[types.Object]bool, ev gev) {
		switch ev.kind {
		case gKill:
			for obj, gv := range ck.tracked {
				if gv.roots[ev.root] {
					stale[obj] = true
				}
			}
		case gDef:
			delete(stale, ev.obj)
		}
	}
	for changed := true; changed; {
		changed = false
		for _, b := range graph.Blocks {
			stale := map[types.Object]bool{}
			for o := range entry[b.Index] {
				stale[o] = true
			}
			for _, ev := range events[b.Index] {
				apply(stale, ev)
			}
			for _, succ := range b.Succs {
				for o := range stale {
					if !entry[succ.Index][o] {
						entry[succ.Index][o] = true
						changed = true
					}
				}
			}
		}
	}

	// Replay in block order, reporting the first stale use per object.
	reported := map[types.Object]bool{}
	killer := map[types.Object]string{}
	for _, b := range graph.Blocks {
		stale := map[types.Object]bool{}
		for o := range entry[b.Index] {
			stale[o] = true
		}
		for _, ev := range events[b.Index] {
			switch ev.kind {
			case gKill:
				for obj, gv := range ck.tracked {
					if gv.roots[ev.root] {
						stale[obj] = true
						killer[obj] = ev.name
					}
				}
			case gDef:
				delete(stale, ev.obj)
			case gUse:
				if stale[ev.obj] && !reported[ev.obj] {
					reported[ev.obj] = true
					via := killer[ev.obj]
					if via == "" {
						via = "a mutates-structure call"
					}
					pass.Report(ev.pos,
						"stale %s: %s crosses %s without re-derivation — the mutation may have invalidated it",
						ck.tracked[ev.obj].kinds, ev.obj.Name(), via)
				}
			}
		}
	}
}

// trackDef classifies one assignment's value; tracked objects accumulate
// kinds and roots. Returns whether anything grew.
func (ck *genstaleCtx) trackDef(lhs ast.Expr, rhs ast.Expr) bool {
	obj := lhsObject(ck.info, lhs)
	if obj == nil {
		return false
	}
	kind, root := ck.valueKind(rhs)
	if kind == "" || root == nil {
		return false
	}
	gv := ck.tracked[obj]
	if gv == nil {
		gv = &genValue{kinds: kind, roots: map[types.Object]bool{}}
		ck.tracked[obj] = gv
	}
	if gv.roots[root] {
		return false
	}
	gv.roots[root] = true
	return true
}

// valueKind classifies an expression: an unstable borrowed view, a node
// handle, or a generation value — each with the structure root it derives
// from. Slot-class values are deliberately untracked (slot stability).
func (ck *genstaleCtx) valueKind(e ast.Expr) (string, types.Object) {
	e = ast.Unparen(e)
	if call, ok := e.(*ast.CallExpr); ok {
		if callee := ck.tr.calleeNode(call); callee != nil {
			recv := callRecvRoot(ck.info, call)
			if bi := ck.borrows[callee]; bi != nil && bi.BorrowAnnotated && !ck.hc.StableViews[callee.Name] {
				return "view", recv
			}
			if hi := ck.facts[callee]; hi != nil && hi.Ret&HandleNode != 0 {
				return "node handle", recv
			}
		}
	}
	c := ck.tr.exprClass(e)
	if c&HandleGen != 0 {
		return "generation value", ck.genRoot(e)
	}
	if c&HandleNode != 0 {
		return "node handle", ck.rootOf(e)
	}
	return "", nil
}

// genRoot resolves the structure owning a generation read: the base of
// the gen field selector (nd for nd.gen and nd.gen.Load()).
func (ck *genstaleCtx) genRoot(e ast.Expr) types.Object {
	e = ast.Unparen(e)
	if call, ok := e.(*ast.CallExpr); ok {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			return rootObj(ck.info, sel.X)
		}
		return nil
	}
	if sel, ok := e.(*ast.SelectorExpr); ok {
		return rootObj(ck.info, sel.X)
	}
	return ck.rootOf(e)
}

// rootOf resolves the structure root a handle expression derives from:
// the receiver of a producing call, the base of a field/run read, or the
// already-tracked roots of a copied local.
func (ck *genstaleCtx) rootOf(e ast.Expr) types.Object {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.CallExpr:
		return callRecvRoot(ck.info, x)
	case *ast.Ident:
		// Copies inherit via trackDef's fixed point; here just resolve
		// a direct alias to its (single) existing root.
		if o := lhsObject(ck.info, x); o != nil {
			if gv := ck.tracked[o]; gv != nil {
				for r := range gv.roots {
					return r
				}
			}
		}
		return nil
	case *ast.SelectorExpr, *ast.IndexExpr:
		return rootObj(ck.info, e)
	case *ast.BinaryExpr:
		if r := ck.rootOf(x.X); r != nil {
			return r
		}
		return ck.rootOf(x.Y)
	}
	return nil
}

// callRecvRoot resolves the root object of a method call's receiver.
func callRecvRoot(info *types.Info, call *ast.CallExpr) types.Object {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	return rootObj(info, sel.X)
}

// emit appends the node's events in execution order: uses and kills inside
// the right-hand sides first, then definitions. Compound statements never
// reach here — cfg blocks carry leaf statements and branch conditions.
func (ck *genstaleCtx) emit(n ast.Node, out *[]gev) {
	if n == nil {
		return
	}
	switch x := n.(type) {
	case *ast.FuncLit, *ast.DeferStmt:
		return
	case *ast.AssignStmt:
		for _, r := range x.Rhs {
			ck.emit(r, out)
		}
		for i, l := range x.Lhs {
			if obj := lhsObject(ck.info, l); obj != nil {
				// A re-definition only refreshes the object when the new
				// value is itself derived fresh (tracked def) or plain;
				// either way the old value is gone.
				if ck.tracked[obj] != nil && (len(x.Lhs) == len(x.Rhs) || i == 0) {
					*out = append(*out, gev{kind: gDef, obj: obj, pos: l.Pos()})
				}
				continue
			}
			ck.emit(l, out) // t.ents[n] = v: the subscript uses n
		}
		return
	case *ast.ValueSpec:
		for _, v := range x.Values {
			ck.emit(v, out)
		}
		for _, name := range x.Names {
			if obj := ck.info.Defs[name]; obj != nil && ck.tracked[obj] != nil {
				*out = append(*out, gev{kind: gDef, obj: obj, pos: name.Pos()})
			}
		}
		return
	case *ast.CallExpr:
		ck.emit(x.Fun, out)
		for _, a := range x.Args {
			ck.emit(a, out)
		}
		if callee := ck.tr.calleeNode(x); callee != nil {
			if hi := ck.facts[callee]; hi != nil && hi.Mutates {
				if root := callRecvRoot(ck.info, x); root != nil {
					*out = append(*out, gev{kind: gKill, root: root, name: callee.Name, pos: x.Pos()})
				}
			}
		}
		return
	case *ast.SelectorExpr:
		ck.emit(x.X, out) // the selected field is not a local use
		return
	case *ast.Ident:
		if o := ck.info.Uses[x]; o != nil && ck.tracked[o] != nil {
			*out = append(*out, gev{kind: gUse, obj: o, pos: x.Pos()})
		}
		return
	}
	// Generic: recurse one level into the node's children.
	ast.Inspect(n, func(m ast.Node) bool {
		if m == n {
			return true
		}
		if m != nil {
			ck.emit(m, out)
		}
		return false
	})
}
