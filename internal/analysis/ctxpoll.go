package analysis

import (
	"go/ast"
	"strings"
)

// NewCtxpoll builds the ctxpoll analyzer, machine-checking the cooperative
// cancellation contract introduced with the query server: inside the scoped
// packages, any loop that advances a progressive scan (calls one of the
// scan-advancing methods — Scanner.Next, IRD.Next/NextCtx, the internal
// fetch helpers) can run for a long time and must poll its context somewhere
// in the loop body. A poll is either a direct `ctx.Err()`/`ctx.Done()` call
// or a call that forwards a context.Context argument (delegating the polling
// to a Ctx-aware callee). Code inside nested function literals neither
// triggers nor satisfies the requirement: a closure runs on its own
// schedule.
func NewCtxpoll(packages, scanCalls map[string]bool) *Analyzer {
	a := &Analyzer{
		Name:  "ctxpoll",
		Doc:   "flag scan-advancing loops in the scoped packages that never poll their context",
		Layer: "syntactic",
	}
	a.Run = func(pass *Pass) {
		if !packages[pass.PkgPath] {
			return
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				var body *ast.BlockStmt
				var pos = n
				switch loop := n.(type) {
				case *ast.ForStmt:
					body = loop.Body
				case *ast.RangeStmt:
					body = loop.Body
				default:
					return true
				}
				scan := ""
				polled := false
				inspectShallow(body, func(m ast.Node) bool {
					call, ok := m.(*ast.CallExpr)
					if !ok {
						return true
					}
					if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
						name := sel.Sel.Name
						if scanCalls[name] && scan == "" {
							scan = exprString(sel)
						}
						if name == "Err" || name == "Done" {
							if tv, ok := pass.TypesInfo.Types[sel.X]; ok && tv.Type != nil && isContextType(tv.Type) {
								polled = true
							}
						}
					}
					for _, arg := range call.Args {
						if tv, ok := pass.TypesInfo.Types[arg]; ok && tv.Type != nil && isContextType(tv.Type) {
							polled = true
						}
					}
					return true
				})
				if scan != "" && !polled {
					pass.Report(pos.Pos(), "loop advances a scan via %s but never polls a context; add a ctx.Err()/ctx.Done() check or forward ctx to a Ctx-aware callee", scan)
				}
				return true
			})
		}
	}
	return a
}

// exprString renders a selector chain like "sc.Next" for diagnostics.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		if base := exprString(e.X); base != "" {
			return base + "." + e.Sel.Name
		}
		return e.Sel.Name
	case *ast.CallExpr:
		return exprString(e.Fun) + "()"
	}
	return strings.TrimSpace("…")
}
