package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// This file computes the per-function concurrency facts behind ordlint's
// happens-before checks (chanprotocol, wgbalance, atomicpub, sharedwrite):
// channel operations (make/send/recv/close/range, with their select-arm
// escapes), sync.WaitGroup Add/Done/Wait deltas, and sync/atomic
// publish/consume sites. Combined with the call graph's go-edges they
// describe the module's concurrency protocols — which goroutine closes
// which channel, which Wait joins which Done, which snapshot is published
// through which atomic.Pointer — precisely enough for the checks to verify
// counterpart reachability and publication freezing statically.
//
// Channel, WaitGroup and atomic operands are abstracted to a *class*: the
// terminal field or variable name of the operand chain ("out" for s.out,
// shards[i].out and sh.out alike; "done" for a local done channel). The
// abstraction is deliberately name-based — the protocols this module (and
// the planned shard fan-out) use wire one producer struct field to one
// consumer variable, so the terminal name is exactly the protocol label.
// Operands whose chain bottoms out in a call ("<-ctx.Done()") get class ""
// and are exempt from counterpart matching.

// ChanOpKind classifies one channel operation.
type ChanOpKind int

const (
	ChanMake ChanOpKind = iota
	ChanSend
	ChanRecv
	ChanClose
	ChanRange
)

func (k ChanOpKind) String() string {
	switch k {
	case ChanMake:
		return "make"
	case ChanSend:
		return "send"
	case ChanRecv:
		return "recv"
	case ChanClose:
		return "close"
	case ChanRange:
		return "range"
	}
	return "?"
}

// ChanOp is one channel operation in a function body (nested function
// literals are separate graph nodes and carry their own ops).
type ChanOp struct {
	Kind ChanOpKind
	// Class is the terminal name of the channel chain ("" when the chain
	// bottoms out in a call or other unresolvable expression).
	Class string
	// Root is the base object of the operand chain, when resolvable.
	Root types.Object
	// Buffered marks a make with a non-zero capacity argument.
	Buffered bool
	// Deferred marks an operation inside a defer statement: it runs at
	// function exit, not at its syntactic position.
	Deferred bool
	// Escapes lists, for a send/recv that is a select arm, the classes of
	// the *other* receive arms of the same select — the channels whose
	// close or send can unblock this operation.
	Escapes []string
	// NonBlocking marks a select arm whose select has a default clause.
	NonBlocking bool
	Pos         token.Pos
}

// WGOpKind classifies one sync.WaitGroup operation.
type WGOpKind int

const (
	WGAdd WGOpKind = iota
	WGDone
	WGWait
)

// WGOp is one WaitGroup operation.
type WGOp struct {
	Kind  WGOpKind
	Class string
	Root  types.Object
	// Delta is the Add argument when it is an integer constant;
	// DeltaKnown is false otherwise (Done is a known delta of -1).
	Delta      int
	DeltaKnown bool
	Deferred   bool
	Pos        token.Pos
}

// AtomicOpKind classifies one sync/atomic typed-value operation.
type AtomicOpKind int

const (
	AtomicStore AtomicOpKind = iota
	AtomicLoad
	AtomicSwap
	AtomicCAS
	AtomicOther // Add, And, Or, ... — arithmetic, not publication
)

// AtomicOp is one operation on a sync/atomic typed value
// (atomic.Pointer[T], atomic.Value, atomic.Int64, ...).
type AtomicOp struct {
	Kind  AtomicOpKind
	Class string
	Root  types.Object
	// Recv is the atomic type's name ("Pointer", "Value", "Int64").
	Recv string
	// Val is the published value expression (Store/Swap: first argument,
	// CompareAndSwap: the new value); nil for loads.
	Val      ast.Expr
	Deferred bool
	Pos      token.Pos
}

// ConcSummary gathers the direct concurrency facts of one function body.
type ConcSummary struct {
	Chans   []ChanOp
	WGs     []WGOp
	Atomics []AtomicOp
}

// Spawns returns n's go-edges: the goroutines this function starts.
func Spawns(n *FuncNode) []*CallEdge {
	var out []*CallEdge
	for _, e := range n.Out {
		if e.Kind == EdgeGo {
			out = append(out, e)
		}
	}
	return out
}

// ComputeConcFacts extracts the direct concurrency summary of every graph
// node. Transitive protocol facts (which channels a goroutine's whole call
// cone touches) are assembled on demand by the checks via ConcCone.
func ComputeConcFacts(g *CallGraph) map[*FuncNode]*ConcSummary {
	facts := make(map[*FuncNode]*ConcSummary, len(g.Nodes))
	for _, n := range g.Nodes {
		facts[n] = concSummaryOf(n)
	}
	return facts
}

// ConcCone collects the channel and WaitGroup operations performed by n and
// everything reachable from it through call and defer edges — the operations
// the activation itself executes. go-edges are excluded (a spawned
// goroutine's operations happen on its own schedule), and so are ref-edges
// and the dynamic/interface approximations: CHA's dynamic edges link every
// compatible address-taken function, which would smear unrelated channel
// protocols into one cone (a deferred cancel() would "reach" every func()
// worker in the module).
func ConcCone(n *FuncNode, facts map[*FuncNode]*ConcSummary) *ConcSummary {
	out := &ConcSummary{}
	for _, m := range reachableCalls(n) {
		if s := facts[m]; s != nil {
			out.Chans = append(out.Chans, s.Chans...)
			out.WGs = append(out.WGs, s.WGs...)
			out.Atomics = append(out.Atomics, s.Atomics...)
		}
	}
	return out
}

// chanClass abstracts a channel/WaitGroup/atomic operand chain to its
// terminal field or variable name: s.out → "out", shards[i].out → "out",
// done → "done". Chains bottoming out in a call yield "".
func chanClass(e ast.Expr) string {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x.Name
		case *ast.SelectorExpr:
			return x.Sel.Name
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return ""
			}
			e = x.X
		default:
			return ""
		}
	}
}

// selectArm describes one send/recv comm clause for escape wiring.
type selectArm struct {
	send bool
	chE  ast.Expr
	span [2]token.Pos // extent of the comm statement
}

// concSummaryOf walks one function body shallowly (nested literals are
// their own nodes) and records every channel, WaitGroup and atomic op with
// its defer/select context.
func concSummaryOf(n *FuncNode) *ConcSummary {
	s := &ConcSummary{}
	body := n.Body()
	if body == nil || n.Pkg.Info == nil {
		return s
	}
	info := n.Pkg.Info

	// Context pre-pass: defer extents, select arms, and range statements.
	var deferSpans [][2]token.Pos
	type selectInfo struct {
		arms       []selectArm
		hasDefault bool
	}
	var selects []selectInfo
	inspectShallow(body, func(nd ast.Node) bool {
		switch x := nd.(type) {
		case *ast.DeferStmt:
			deferSpans = append(deferSpans, [2]token.Pos{x.Pos(), x.End()})
		case *ast.SelectStmt:
			si := selectInfo{}
			for _, c := range x.Body.List {
				cc, ok := c.(*ast.CommClause)
				if !ok {
					continue
				}
				if cc.Comm == nil {
					si.hasDefault = true
					continue
				}
				span := [2]token.Pos{cc.Comm.Pos(), cc.Comm.End()}
				switch comm := cc.Comm.(type) {
				case *ast.SendStmt:
					si.arms = append(si.arms, selectArm{send: true, chE: comm.Chan, span: span})
				case *ast.ExprStmt:
					if u, ok := ast.Unparen(comm.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
						si.arms = append(si.arms, selectArm{chE: u.X, span: span})
					}
				case *ast.AssignStmt:
					if len(comm.Rhs) == 1 {
						if u, ok := ast.Unparen(comm.Rhs[0]).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
							si.arms = append(si.arms, selectArm{chE: u.X, span: span})
						}
					}
				}
			}
			selects = append(selects, si)
		}
		return true
	})
	deferred := func(pos token.Pos) bool {
		for _, sp := range deferSpans {
			if pos >= sp[0] && pos < sp[1] {
				return true
			}
		}
		return false
	}
	// armCtx resolves the select context of an op position: the escape
	// classes (other recv arms) and whether the select has a default.
	armCtx := func(pos token.Pos) (escapes []string, nonBlocking, inSelect bool) {
		for _, si := range selects {
			for i, arm := range si.arms {
				if pos >= arm.span[0] && pos < arm.span[1] {
					for j, other := range si.arms {
						if j != i && !other.send {
							if c := chanClass(other.chE); c != "" {
								escapes = append(escapes, c)
							}
						}
					}
					return escapes, si.hasDefault, true
				}
			}
		}
		return nil, false, false
	}

	chanOp := func(kind ChanOpKind, chE ast.Expr, pos token.Pos, buffered bool) {
		op := ChanOp{
			Kind:     kind,
			Class:    chanClass(chE),
			Root:     rootObj(info, chE),
			Buffered: buffered,
			Deferred: deferred(pos),
			Pos:      pos,
		}
		op.Escapes, op.NonBlocking, _ = armCtx(pos)
		s.Chans = append(s.Chans, op)
	}

	inspectShallow(body, func(nd ast.Node) bool {
		switch x := nd.(type) {
		case *ast.SendStmt:
			chanOp(ChanSend, x.Chan, x.Pos(), false)
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				chanOp(ChanRecv, x.X, x.Pos(), false)
			}
		case *ast.RangeStmt:
			if t := typeOf(info, x.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					chanOp(ChanRange, x.X, x.Pos(), false)
				}
			}
		case *ast.AssignStmt:
			// make(chan T, n) bound to a name: record the target's class.
			if len(x.Lhs) == len(x.Rhs) {
				for i, rhs := range x.Rhs {
					if buffered, ok := makeChan(info, rhs); ok {
						chanOp(ChanMake, x.Lhs[i], rhs.Pos(), buffered)
					}
				}
			}
		case *ast.KeyValueExpr:
			// Composite-literal field wiring: out: make(chan T, 64).
			if buffered, ok := makeChan(info, x.Value); ok {
				chanOp(ChanMake, x.Key, x.Value.Pos(), buffered)
			}
		case *ast.CallExpr:
			if b, ok := calleeObject(info, x).(*types.Builtin); ok {
				if b.Name() == "close" && len(x.Args) == 1 {
					chanOp(ChanClose, x.Args[0], x.Pos(), false)
				}
				return true
			}
			if name, recv, ok := syncMethodCall(info, x, "sync", "WaitGroup"); ok {
				op := WGOp{
					Class:    chanClass(recv),
					Root:     rootObj(info, recv),
					Deferred: deferred(x.Pos()),
					Pos:      x.Pos(),
				}
				switch name {
				case "Add":
					op.Kind = WGAdd
					if len(x.Args) == 1 {
						if tv, ok := info.Types[x.Args[0]]; ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
							if v, exact := constant.Int64Val(tv.Value); exact {
								op.Delta, op.DeltaKnown = int(v), true
							}
						}
					}
				case "Done":
					op.Kind, op.Delta, op.DeltaKnown = WGDone, -1, true
				case "Wait":
					op.Kind = WGWait
				default:
					return true
				}
				s.WGs = append(s.WGs, op)
				return true
			}
			if name, recvType, recv, ok := atomicMethodCall(info, x); ok {
				op := AtomicOp{
					Class:    chanClass(recv),
					Root:     rootObj(info, recv),
					Recv:     recvType,
					Deferred: deferred(x.Pos()),
					Pos:      x.Pos(),
				}
				switch name {
				case "Store":
					op.Kind = AtomicStore
					if len(x.Args) == 1 {
						op.Val = x.Args[0]
					}
				case "Load":
					op.Kind = AtomicLoad
				case "Swap":
					op.Kind = AtomicSwap
					if len(x.Args) == 1 {
						op.Val = x.Args[0]
					}
				case "CompareAndSwap":
					op.Kind = AtomicCAS
					if len(x.Args) == 2 {
						op.Val = x.Args[1]
					}
				default:
					op.Kind = AtomicOther
				}
				s.Atomics = append(s.Atomics, op)
			}
		}
		return true
	})
	return s
}

// makeChan reports whether e is a make of a channel type and whether the
// capacity argument is present and non-zero.
func makeChan(info *types.Info, e ast.Expr) (buffered, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return false, false
	}
	b, isBuiltin := calleeObject(info, call).(*types.Builtin)
	if !isBuiltin || b.Name() != "make" || len(call.Args) == 0 {
		return false, false
	}
	t := typeOf(info, call)
	if t == nil {
		return false, false
	}
	if _, isChan := t.Underlying().(*types.Chan); !isChan {
		return false, false
	}
	if len(call.Args) >= 2 {
		if tv, found := info.Types[call.Args[1]]; found && tv.Value != nil {
			if v, exact := constant.Int64Val(tv.Value); exact && v == 0 {
				return false, true
			}
		}
		return true, true
	}
	return false, true
}

// syncMethodCall matches a method call on pkgPath.typeName receivers and
// returns the method name and the receiver expression.
func syncMethodCall(info *types.Info, call *ast.CallExpr, pkgPath, typeName string) (name string, recv ast.Expr, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", nil, false
	}
	f, isFunc := calleeObject(info, call).(*types.Func)
	if !isFunc || f.Pkg() == nil || f.Pkg().Path() != pkgPath {
		return "", nil, false
	}
	sig, _ := f.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return "", nil, false
	}
	t := sig.Recv().Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed || named.Obj().Name() != typeName {
		return "", nil, false
	}
	return f.Name(), sel.X, true
}

// atomicMethodCall matches a method call on any sync/atomic typed value and
// returns the method name, the receiver type's name and the receiver
// expression.
func atomicMethodCall(info *types.Info, call *ast.CallExpr) (name, recvType string, recv ast.Expr, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", nil, false
	}
	f, isFunc := calleeObject(info, call).(*types.Func)
	if !isFunc || f.Pkg() == nil || f.Pkg().Path() != "sync/atomic" {
		return "", "", nil, false
	}
	sig, _ := f.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return "", "", nil, false
	}
	t := sig.Recv().Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return "", "", nil, false
	}
	return f.Name(), named.Obj().Name(), sel.X, true
}

// atomicPointerElem returns the qualified element type name of an
// atomic.Pointer[T] receiver type ("" for non-generic atomics).
func atomicPointerElem(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Pointer" {
		return ""
	}
	args := named.TypeArgs()
	if args == nil || args.Len() != 1 {
		return ""
	}
	return namedQName(args.At(0))
}
