package analysis

import (
	"go/types"
	"strings"
	"testing"
)

// TestModuleHandleSweep pins the handle classification of the flat spatial
// core's exported API over the real module: the provenance class of each
// method's first result and whether calling it invalidates outstanding
// handles and views (the mutates fact genstale kills on). The tables are
// exhaustive by construction: every exported method of the listed types
// must have a row, so adding an API without classifying its handles fails
// the test. This is the machine-checked version of the arena-handle
// contracts the //ordlint:handle, //ordlint:writer and //ordlint:mutates
// directives document in place.
func TestModuleHandleSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the full module plus its stdlib closure")
	}
	root, modPath, err := FindModule(".")
	if err != nil {
		t.Fatalf("FindModule: %v", err)
	}
	l := NewLoader(modPath, root)
	pkgs, err := l.LoadModule()
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	g := BuildCallGraph(pkgs)
	cfg := DefaultConfig(modPath)
	borrows := ComputeBorrowFacts(g, cfg.FreshFuncs)
	facts := ComputeHandleFacts(g, borrows, NewHandleConfig(cfg))
	factByName := make(map[string]*HandleInfo, len(facts))
	for n, hi := range facts {
		factByName[n.Name] = hi
	}

	type fact struct {
		ret     HandleClass
		mutates bool
	}
	expect := map[string]map[string]fact{
		// The flat tree: node handles out of Root/Child, mutators kill.
		// Child's class carries the slot bit too: the ents arena stores
		// child refs and point slots in one int32 run, so an element read
		// is classed with both until the level check disambiguates.
		modPath + "/internal/rtree.Tree": {
			"Dim":              {},
			"Len":              {},
			"Height":           {},
			"Root":             {ret: HandleNode},
			"Level":            {},
			"Count":            {},
			"Child":            {ret: HandleNode | HandleSlot},
			"ChildLo":          {},
			"ChildHi":          {},
			"LeafID":           {},
			"LeafPoint":        {},
			"Point":            {},
			"Bounds":           {},
			"Insert":           {mutates: true},
			"Delete":           {mutates: true},
			"RangeQuery":       {},
			"RangeQueryAppend": {},
			"CountDominated":   {},
			"CountDominators":  {},
		},
		// The pointer-based oracle: no integer handles, but its writers
		// still invalidate node pointers and iterators.
		modPath + "/internal/rtree/legacy.Tree": {
			"Root":             {},
			"Dim":              {},
			"Len":              {},
			"Height":           {},
			"Point":            {},
			"Bounds":           {},
			"Insert":           {mutates: true},
			"Delete":           {mutates: true},
			"RangeQuery":       {},
			"RangeQueryAppend": {},
			"CountDominated":   {},
			"CountDominators":  {},
		},
		// The collection: ids are public currency (plain), slots stay
		// internal; only the annotated writers kill. IDs/Scan are derived
		// writers (lazy cache rebuild) — deliberately NOT mutates: they
		// never move slots or reassign node ids.
		modPath + "/internal/collection.Collection": {
			"Len":    {},
			"Dim":    {},
			"Tree":   {},
			"Get":    {},
			"NewID":  {},
			"Bounds": {},
			"Stats":  {},
			"IDs":    {},
			"Scan":   {},
			"Insert": {mutates: true},
			"Update": {mutates: true},
			"Upsert": {mutates: true},
			"Delete": {mutates: true},
		},
		// The live skyband: Seed stays valid across mutations (stable
		// view), but the incremental writers and Rebuild kill Members.
		modPath + "/internal/skyband.Live": {
			"K":        {},
			"Rho":      {},
			"Recounts": {},
			"Contains": {},
			"Seed":     {},
			"Members":  {},
			"OnInsert": {mutates: true},
			"OnDelete": {mutates: true},
			"OnUpdate": {mutates: true},
			"Rebuild":  {mutates: true},
		},
	}

	pkgByPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		pkgByPath[p.Path] = p
	}
	for qtype, methods := range expect {
		dot := strings.LastIndex(qtype, ".")
		pkgPath, typeName := qtype[:dot], qtype[dot+1:]
		p := pkgByPath[pkgPath]
		if p == nil {
			t.Fatalf("module has no package %s", pkgPath)
		}
		obj := p.Types.Scope().Lookup(typeName)
		if obj == nil {
			t.Fatalf("package %s has no type %s", pkgPath, typeName)
		}
		named, ok := obj.Type().(*types.Named)
		if !ok {
			t.Fatalf("%s is not a named type", qtype)
		}
		ms := types.NewMethodSet(types.NewPointer(named))
		seen := make(map[string]bool, ms.Len())
		for i := 0; i < ms.Len(); i++ {
			m := ms.At(i).Obj().(*types.Func)
			if !m.Exported() {
				continue
			}
			seen[m.Name()] = true
			want, ok := methods[m.Name()]
			if !ok {
				t.Errorf("%s.%s has no row in the handle sweep table; classify the new method", qtype, m.Name())
				continue
			}
			nodeName := pkgPath + "." + typeName + "." + m.Name()
			hi := factByName[nodeName]
			if hi == nil {
				t.Errorf("no handle summary computed for %s", nodeName)
				continue
			}
			if hi.Ret != want.ret || hi.Mutates != want.mutates {
				t.Errorf("%s: (ret, mutates) = (%s, %v), want (%s, %v)",
					nodeName, hi.Ret, hi.Mutates, want.ret, want.mutates)
			}
		}
		for name := range methods {
			if !seen[name] {
				t.Errorf("sweep table lists %s.%s but no such exported method exists", qtype, name)
			}
		}
	}

	// The dataset facade republishes the collection's mutators under the
	// paper-facing API; every one must carry the mutates contract so the
	// serving layer's generation bump (checked by genstale) stays honest.
	dsPrefix := modPath + ".Dataset."
	dsMutators := map[string]bool{
		"Insert": true, "InsertID": true, "Update": true, "Upsert": true, "Delete": true,
	}
	for m, want := range dsMutators {
		hi := factByName[dsPrefix+m]
		if hi == nil {
			t.Errorf("no handle summary computed for %s", dsPrefix+m)
			continue
		}
		if hi.MutatesAnnotated != want {
			t.Errorf("%s: MutatesAnnotated = %v, want %v", dsPrefix+m, hi.MutatesAnnotated, want)
		}
	}
}
