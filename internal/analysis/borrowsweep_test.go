package analysis

import (
	"go/types"
	"strings"
	"testing"
)

// TestModuleBorrowSweep pins the borrow/writer classification of the
// live-dataset layer and the lock-mode classification of the server's
// handlers over the real module. The tables below are exhaustive by
// construction: every exported method of Collection and Live must have an
// entry (adding a method without classifying it fails the test), and every
// handle* method of Server must have a lock-mode row. This is the
// machine-checked version of the package concurrency contracts.
func TestModuleBorrowSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the full module plus its stdlib closure")
	}
	root, modPath, err := FindModule(".")
	if err != nil {
		t.Fatalf("FindModule: %v", err)
	}
	l := NewLoader(modPath, root)
	pkgs, err := l.LoadModule()
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	g := BuildCallGraph(pkgs)
	facts := ComputeBorrowFacts(g, DefaultConfig(modPath).FreshFuncs)
	factByName := make(map[string]*BorrowInfo, len(facts))
	for n, bi := range facts {
		factByName[n.Name] = bi
	}

	type fact struct{ borrows, writer bool }
	expect := map[string]map[string]fact{
		modPath + "/internal/collection.Collection": {
			"Len":    {},
			"Dim":    {},
			"NewID":  {},
			"Bounds": {},
			"Stats":  {},
			"Tree":   {borrows: true},
			"Get":    {borrows: true},
			// IDs and Scan return/emit borrows AND are writers: both may
			// rebuild the lazy sorted-id cache, so even these "read" paths
			// need the write side of the serving layer's lock.
			"IDs":    {borrows: true, writer: true},
			"Scan":   {borrows: true, writer: true},
			"Insert": {writer: true},
			"Update": {writer: true},
			"Upsert": {writer: true},
			"Delete": {writer: true},
		},
		modPath + "/internal/skyband.Live": {
			"K":        {},
			"Rho":      {},
			"Recounts": {},
			"Contains": {},
			"Seed":     {borrows: true},
			"Members":  {borrows: true},
			"OnInsert": {writer: true},
			"OnDelete": {writer: true},
			"OnUpdate": {writer: true},
			"Rebuild":  {writer: true},
		},
	}

	pkgByPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		pkgByPath[p.Path] = p
	}
	for qtype, methods := range expect {
		dot := strings.LastIndex(qtype, ".")
		pkgPath, typeName := qtype[:dot], qtype[dot+1:]
		p := pkgByPath[pkgPath]
		if p == nil {
			t.Fatalf("module has no package %s", pkgPath)
		}
		obj := p.Types.Scope().Lookup(typeName)
		if obj == nil {
			t.Fatalf("package %s has no type %s", pkgPath, typeName)
		}
		named, ok := obj.Type().(*types.Named)
		if !ok {
			t.Fatalf("%s is not a named type", qtype)
		}
		ms := types.NewMethodSet(types.NewPointer(named))
		seen := make(map[string]bool, ms.Len())
		for i := 0; i < ms.Len(); i++ {
			m := ms.At(i).Obj().(*types.Func)
			if !m.Exported() {
				continue
			}
			seen[m.Name()] = true
			want, ok := methods[m.Name()]
			if !ok {
				t.Errorf("%s.%s has no row in the borrow sweep table; classify the new method", qtype, m.Name())
				continue
			}
			nodeName := pkgPath + "." + typeName + "." + m.Name()
			bi := factByName[nodeName]
			if bi == nil {
				t.Errorf("no borrow summary computed for %s", nodeName)
				continue
			}
			if bi.ReturnsBorrow != want.borrows || bi.Writer != want.writer {
				t.Errorf("%s: (borrows, writer) = (%v, %v), want (%v, %v)",
					nodeName, bi.ReturnsBorrow, bi.Writer, want.borrows, want.writer)
			}
		}
		for name := range methods {
			if !seen[name] {
				t.Errorf("sweep table lists %s.%s but no such exported method exists", qtype, name)
			}
		}
	}

	// Every server handler's lock mode, from the mode-tagged lock summaries.
	// Acquires and releases must agree — a handler returning with a lock
	// held (or releasing in the wrong mode) changes these strings.
	sums := ComputeSummaries(g, pkgs)
	sumByName := make(map[string]*Summary, len(sums))
	for n, s := range sums {
		sumByName[n.Name] = s
	}
	render := func(ops []LockOp) string {
		parts := make([]string, len(ops))
		for i, op := range ops {
			parts[i] = op.String()
		}
		return strings.Join(parts, " ")
	}
	handlers := map[string]string{
		"handleQuery":        "nd.mu[R]",
		"handleAddDataset":   "",
		"handleListDatasets": "nd.mu[R] s.mu[R]",
		"handleWritePoint":   "nd.mu[W]",
		"handleDeletePoint":  "nd.mu[W]",
		"handleHealthz":      "s.mu[R]",
		"handleMetrics":      "",
	}
	serverPrefix := modPath + "/internal/server.Server."
	for h, want := range handlers {
		s := sumByName[serverPrefix+h]
		if s == nil {
			t.Errorf("no summary computed for handler %s", h)
			continue
		}
		if got := render(s.Acquires); got != want {
			t.Errorf("%s acquires %q, want %q", h, got, want)
		}
		if got := render(s.Releases); got != want {
			t.Errorf("%s releases %q, want %q", h, got, want)
		}
	}
	for name := range sumByName {
		if !strings.HasPrefix(name, serverPrefix+"handle") {
			continue
		}
		h := strings.TrimPrefix(name, serverPrefix)
		if strings.Contains(h, ".") {
			continue // nested function literal, covered by its handler
		}
		if _, ok := handlers[h]; !ok {
			t.Errorf("handler %s has no lock-mode row in the sweep table; classify it", name)
		}
	}
}
