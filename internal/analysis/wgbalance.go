package analysis

import (
	"go/ast"
	"go/token"

	"ordu/internal/analysis/cfg"
)

// NewWgbalance verifies sync.WaitGroup arithmetic around the scoped
// packages' spawn edges:
//
//   - Add inside the counted goroutine: a goroutine whose call cone calls
//     Add on a class the spawner side Waits on races with that Wait (the
//     counter can be observed at zero before the goroutine runs).
//   - Done on every path: a spawned goroutine that calls Done inline (not
//     deferred) must reach a Done on every CFG path to exit; a skipped
//     Done deadlocks Wait forever.
//   - Site balance: for a function that Waits on a class, the known
//     per-site deltas across its call cone — constant Adds, direct Dones,
//     and one guaranteed Done per spawned goroutine that Dones the class —
//     must net to zero. Non-constant Adds or goroutine-side Adds make the
//     class unknown and exempt.
//   - Loop pairing: a single Add(1) outside a loop that spawns one counted
//     goroutine per iteration undercounts every iteration but the first.
//
// Classes are terminal names (concurrency.go), so `wg`, `l.wg` and a
// `*sync.WaitGroup` parameter named wg all match.
func NewWgbalance(packages map[string]bool) *Analyzer {
	a := &Analyzer{
		Name:  "wgbalance",
		Doc:   "WaitGroup Add/Done/Wait arithmetic must balance across spawn sites; no Add inside the counted goroutine; Done on every goroutine path",
		Layer: "concurrency",
	}
	a.Run = func(pass *Pass) {
		if !packages[pass.PkgPath] {
			return
		}
		g, conc := pass.Facts.Graph, pass.Facts.Conc
		if g == nil || conc == nil {
			return
		}
		for _, n := range g.Nodes {
			if n.Pkg.Path != pass.PkgPath || n.Body() == nil {
				continue
			}
			checkWgFunction(pass, n, conc)
		}
	}
	return a
}

// wgClassOps filters a summary's WaitGroup ops by kind.
func wgHas(s *ConcSummary, kind WGOpKind, class string) bool {
	for _, op := range s.WGs {
		if op.Kind == kind && op.Class == class {
			return true
		}
	}
	return false
}

func checkWgFunction(pass *Pass, n *FuncNode, conc map[*FuncNode]*ConcSummary) {
	cone := reachableCalls(n)

	// Per-class site deltas over the cone: value is the net delta, with a
	// presence-in-map-but-unknown state for poisoned classes.
	delta := map[string]int{}
	unknown := map[string]bool{}
	waits := []WGOp{}
	spawnDones := map[string]int{} // goroutines guaranteeing one Done per site

	for _, m := range cone {
		s := conc[m]
		if s == nil {
			continue
		}
		for _, op := range s.WGs {
			if op.Class == "" {
				unknown[op.Class] = true
				continue
			}
			switch op.Kind {
			case WGAdd:
				if op.DeltaKnown {
					delta[op.Class] += op.Delta
				} else {
					unknown[op.Class] = true
				}
			case WGDone:
				delta[op.Class]--
			case WGWait:
				if m == n { // only this function's own Wait anchors the balance
					waits = append(waits, op)
				}
			}
		}
		for _, e := range Spawns(m) {
			gcone := ConcCone(e.Callee, conc)
			seen := map[string]bool{}
			for _, op := range gcone.WGs {
				if op.Class == "" || seen[op.Class] {
					continue
				}
				seen[op.Class] = true
				switch op.Kind {
				case WGAdd:
					// Anti-pattern, reported below; balance is unknowable.
					unknown[op.Class] = true
				case WGDone:
					delta[op.Class]--
					spawnDones[op.Class]++
				}
			}
		}
	}

	// Add inside the counted goroutine + Done-on-every-path, per spawn.
	for _, e := range Spawns(n) {
		gcone := ConcCone(e.Callee, conc)
		flagged := map[string]bool{}
		for _, op := range gcone.WGs {
			if op.Kind != WGAdd || op.Class == "" || flagged[op.Class] {
				continue
			}
			if coneWaits(n, op.Class, conc) {
				flagged[op.Class] = true
				pass.Report(e.Pos, "goroutine %s calls Add on %q which the spawner Waits on; Add inside the counted goroutine races with Wait — Add before the go statement", e.Callee.Name, op.Class)
			}
		}
		checkDoneAllPaths(pass, e, conc)
	}

	// Site balance, anchored at this function's own Waits.
	for _, w := range waits {
		if unknown[w.Class] {
			continue
		}
		if d, ok := delta[w.Class]; ok && d != 0 {
			what := "Wait deadlocks"
			if d < 0 {
				what = "the counter goes negative and panics"
			}
			pass.Report(w.Pos, "WaitGroup %q Add/Done sites net %+d across this function's call cone; %s", w.Class, d, what)
		}
		checkLoopPairing(pass, n, w.Class, conc)
	}
}

// coneWaits reports whether n's call cone Waits on class.
func coneWaits(n *FuncNode, class string, conc map[*FuncNode]*ConcSummary) bool {
	for _, m := range reachableCalls(n) {
		if s := conc[m]; s != nil && wgHas(s, WGWait, class) {
			return true
		}
	}
	return false
}

// checkDoneAllPaths verifies that a spawned goroutine with an inline (not
// deferred) Done reaches a Done on every CFG path to exit.
func checkDoneAllPaths(pass *Pass, e *CallEdge, conc map[*FuncNode]*ConcSummary) {
	s := conc[e.Callee]
	if s == nil || e.Callee.Body() == nil {
		return
	}
	byClass := map[string][]WGOp{}
	for _, op := range s.WGs {
		if op.Kind == WGDone && op.Class != "" {
			byClass[op.Class] = append(byClass[op.Class], op)
		}
	}
	for class, ops := range byClass {
		deferred := false
		for _, op := range ops {
			if op.Deferred {
				deferred = true
			}
		}
		if deferred {
			continue // a deferred Done covers every path
		}
		graph := cfg.New(e.Callee.Body())
		covered := map[int]bool{}
		for _, b := range graph.Blocks {
			for _, nd := range b.Nodes {
				for _, op := range ops {
					if op.Pos >= nd.Pos() && op.Pos < nd.End() {
						covered[b.Index] = true
					}
				}
			}
		}
		// A path from entry to exit avoiding every Done block is a leak.
		seen := map[int]bool{}
		stack := []*cfg.Block{graph.Entry}
		leak := false
		for len(stack) > 0 && !leak {
			b := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[b.Index] || covered[b.Index] {
				continue
			}
			seen[b.Index] = true
			if b == graph.Exit {
				leak = true
			}
			stack = append(stack, b.Succs...)
		}
		if leak {
			pass.Report(e.Pos, "goroutine %s skips %s.Done on some path; a missed Done deadlocks Wait — use defer %s.Done()", e.Callee.Name, class, class)
		}
	}
}

// checkLoopPairing flags the Add(1)-outside-the-loop pattern: exactly one
// constant Add of 1 at loop depth 0 while every counted goroutine is
// spawned inside a loop.
func checkLoopPairing(pass *Pass, n *FuncNode, class string, conc map[*FuncNode]*ConcSummary) {
	s := conc[n]
	if s == nil {
		return
	}
	depthOf := loopDepths(n.Body())
	var adds []WGOp
	for _, op := range s.WGs {
		if op.Kind == WGAdd && op.Class == class {
			adds = append(adds, op)
		}
	}
	if len(adds) != 1 || !adds[0].DeltaKnown || adds[0].Delta != 1 || depthOf(adds[0].Pos) != 0 {
		return
	}
	spawns, inLoop := 0, 0
	for _, e := range Spawns(n) {
		gcone := ConcCone(e.Callee, conc)
		if !wgHas(gcone, WGDone, class) {
			continue
		}
		spawns++
		if depthOf(e.Pos) > 0 {
			inLoop++
		}
	}
	if spawns > 0 && spawns == inLoop {
		pass.Report(adds[0].Pos, "Add(1) on %q sits outside the loop that spawns one counted goroutine per iteration; move the Add next to the go statement", class)
	}
}

// loopDepths returns a classifier for positions in body: the number of
// enclosing for/range statements.
func loopDepths(body *ast.BlockStmt) func(token.Pos) int {
	var spans [][2]token.Pos
	inspectShallow(body, func(nd ast.Node) bool {
		switch nd.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			spans = append(spans, [2]token.Pos{nd.Pos(), nd.End()})
		}
		return true
	})
	return func(p token.Pos) int {
		d := 0
		for _, sp := range spans {
			if p >= sp[0] && p < sp[1] {
				d++
			}
		}
		return d
	}
}
