package analysis

import (
	"go/ast"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// fixtureNames lists the golden fixture packages under testdata/src. Each
// exercises one analyzer with at least one positive, one negative, and one
// allow-comment case.
var fixtureNames = []string{
	"floatcmp", "ctxpoll", "senterr", "nopanic", "printguard",
	"wsescape", "goroutinecap", "poolpair", "noalloc",
	"ctxflow", "deepnoalloc", "lockhold", "maporder",
	"borrowck", "lockmode", "atomicmix",
	"chanprotocol", "wgbalance", "atomicpub", "sharedwrite",
	"handleprov", "stridebound", "genstale", "narrowcast",
}

// fixtureConfig scopes the suite to the fixture package so path-based checks
// fire there instead of on module paths.
func fixtureConfig(name string) Config {
	only := func(p string) bool { return p == name }
	switch name {
	case "floatcmp":
		return Config{FloatcmpApproved: map[string]bool{"floatcmp.approxEq": true}}
	case "ctxpoll":
		return Config{
			CtxPollPackages:  map[string]bool{"ctxpoll": true},
			CtxPollScanCalls: map[string]bool{"Next": true, "NextCtx": true, "fetch": true},
		}
	case "senterr":
		return Config{SenterrCallee: only}
	case "nopanic":
		return Config{NopanicPackage: only}
	case "printguard":
		return Config{PrintguardPackage: only}
	case "wsescape":
		return Config{WorkspacePackage: only}
	case "goroutinecap":
		return Config{
			WorkspacePackage:     only,
			GoroutineCapPackages: map[string]bool{"goroutinecap": true},
			PooledTypes:          map[string]bool{"goroutinecap.node": true},
		}
	case "poolpair":
		return Config{PoolPairs: []PoolPair{{Get: "poolpair.pool.get", Put: "poolpair.pool.put"}}}
	case "noalloc":
		return Config{} // annotation-driven; the convention fallback covers the fixture's Workspace
	case "ctxflow":
		// ctxpoll is deliberately enabled alongside: the fixture pins that
		// the scan-forwarding loop satisfies ctxpoll yet fails ctxflow.
		return Config{
			CtxPollPackages:  map[string]bool{"ctxflow": true},
			CtxPollScanCalls: map[string]bool{"Next": true},
			CtxFlowEntryFuncs: map[string]bool{
				"ctxflow.Handler":             true,
				"ctxflow.HandlerForwards":     true,
				"ctxflow.HandlerPolls":        true,
				"ctxflow.HandlerDelegates":    true,
				"ctxflow.HandlerScanForwards": true,
				"ctxflow.HandlerAllowed":      true,
			},
		}
	case "deepnoalloc":
		return Config{
			NoallocExternals: map[string]bool{"math": true},
			NoallocAmortized: map[string]bool{"deepnoalloc.cacheFill": true},
		}
	case "lockhold":
		return Config{LockHoldPackages: map[string]bool{"lockhold": true}}
	case "maporder":
		return Config{MapOrderPackages: map[string]bool{"maporder": true}}
	case "borrowck":
		return Config{BorrowSinks: map[string]string{
			"borrowck.cache.Put": "the cache retains rows across calls",
		}}
	case "lockmode":
		return Config{
			LockModePackages: map[string]bool{"lockmode": true},
			GuardedTypes:     map[string]bool{"lockmode.dataset": true},
			FreshFuncs:       map[string]bool{"lockmode.newDataset": true},
			LockModePure:     map[string]bool{"lockmode.dataset.Dim": true},
		}
	case "atomicmix":
		return Config{} // module-wide fact collection; no scoping needed
	case "chanprotocol", "wgbalance", "sharedwrite":
		return Config{ConcPackages: map[string]bool{name: true}}
	case "atomicpub":
		return Config{} // unscoped: the publication contract holds everywhere
	case "handleprov":
		return Config{
			HandlePackages: map[string]bool{"handleprov": true},
			HandleRuns: map[string]RunSpec{
				"handleprov.tree.level": {Index: HandleNode},
				"handleprov.tree.count": {Index: HandleNode},
				"handleprov.tree.idAt":  {Index: HandleSlot},
				"handleprov.tree.free":  {Elem: HandleSlot},
				"handleprov.coll.idAt":  {Index: HandleSlot},
			},
			HandleTypes: map[string]HandleClass{"handleprov.ref": HandleNode},
		}
	case "stridebound":
		return Config{
			HandlePackages: map[string]bool{"stridebound": true},
			HandleRuns: map[string]RunSpec{
				"stridebound.tree.ents":  {Index: HandleNode, Elem: HandleNode, Stride: true},
				"stridebound.tree.rects": {Index: HandleNode, Stride: true},
				"stridebound.tree.count": {Index: HandleNode},
			},
			HandleTypes: map[string]HandleClass{"stridebound.ref": HandleNode},
			HandleBoundFields: map[string]bool{
				"stridebound.tree.dim":    true,
				"stridebound.tree.fanout": true,
				"stridebound.tree.count":  true,
			},
		}
	case "genstale":
		return Config{
			HandlePackages: map[string]bool{"genstale": true},
			HandleRuns: map[string]RunSpec{
				"genstale.table.data": {Index: HandleNode},
			},
			HandleTypes:       map[string]HandleClass{"genstale.ref": HandleNode},
			HandleGenFields:   map[string]bool{"genstale.table.gen": true},
			HandleOwners:      map[string]bool{"genstale.table": true},
			HandleStableViews: map[string]bool{"genstale.table.Stable": true},
		}
	case "narrowcast":
		return Config{
			HandlePackages:    map[string]bool{"narrowcast": true},
			HandleBoundFields: map[string]bool{"narrowcast.packer.cap": true},
		}
	}
	return Config{}
}

// want is one expectation parsed from a `// want "regexp" ...` comment.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// parseWants extracts every want expectation from the fixture's comments.
func parseWants(t *testing.T, pkg *Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				ms := wantRE.FindAllStringSubmatch(rest, -1)
				if len(ms) == 0 {
					t.Fatalf("%s: malformed want comment %q", pos, c.Text)
				}
				for _, m := range ms {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, m[1], err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// loadFixture type-checks testdata/src/<name> under the import path <name>.
func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	root, modPath, err := FindModule(".")
	if err != nil {
		t.Fatalf("FindModule: %v", err)
	}
	l := NewLoader(modPath, root)
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", name), name)
	if err != nil {
		t.Fatalf("load fixture %s: %v", name, err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("fixture %s does not type-check: %v", name, terr)
	}
	if t.Failed() {
		t.FailNow()
	}
	return pkg
}

// TestGolden runs each analyzer over its fixture and matches the diagnostics
// against the `// want` expectations, both ways: every expectation must be
// fulfilled by a diagnostic on its line, and every diagnostic must be
// expected.
func TestGolden(t *testing.T) {
	for _, name := range fixtureNames {
		t.Run(name, func(t *testing.T) {
			pkg := loadFixture(t, name)
			wants := parseWants(t, pkg)
			if len(wants) == 0 {
				t.Fatalf("fixture %s has no want expectations", name)
			}
			diags := NewSuite(fixtureConfig(name)).Run([]*Package{pkg})
			for _, d := range diags {
				matched := false
				for _, w := range wants {
					if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
						w.hit = true
						matched = true
						break
					}
				}
				if !matched {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for _, w := range wants {
				if !w.hit {
					t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
				}
			}
		})
	}
}

// TestGoldenAllowStripped re-runs each fixture with its //ordlint:allow
// comments neutralized and checks that extra findings appear: the allow
// machinery must be the only thing keeping those lines quiet.
func TestGoldenAllowStripped(t *testing.T) {
	for _, name := range fixtureNames {
		t.Run(name, func(t *testing.T) {
			pkg := loadFixture(t, name)
			base := len(NewSuite(fixtureConfig(name)).Run([]*Package{pkg}))
			stripped := 0
			for _, f := range pkg.Files {
				for _, cg := range f.Comments {
					for _, c := range cg.List {
						if strings.Contains(c.Text, "ordlint:allow") {
							c.Text = "// neutralized"
							stripped++
						}
					}
				}
			}
			if stripped == 0 {
				t.Fatalf("fixture %s has no allow comments; each fixture must cover the escape hatch", name)
			}
			got := len(NewSuite(fixtureConfig(name)).Run([]*Package{pkg}))
			if got <= base {
				t.Errorf("neutralizing %d allow comment(s) did not add findings: %d -> %d", stripped, base, got)
			}
		})
	}
}

// TestSuiteNames pins the analyzer names the allow comments and cmd/ordlint
// -checks flag refer to.
func TestSuiteNames(t *testing.T) {
	s := NewSuite(Config{})
	var names []string
	for _, a := range s.Analyzers {
		if a.Doc == "" {
			t.Errorf("analyzer %s has no doc string", a.Name)
		}
		names = append(names, a.Name)
	}
	got := strings.Join(names, " ")
	wantNames := strings.Join(fixtureNames, " ")
	if got != wantNames {
		t.Errorf("suite analyzers = %q, want %q", got, wantNames)
	}
}

// TestModuleClean loads the whole module and asserts the default
// configuration reports nothing — the tree must stay lint-clean, with
// deliberate exceptions annotated in place.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the full module plus its stdlib closure")
	}
	root, modPath, err := FindModule(".")
	if err != nil {
		t.Fatalf("FindModule: %v", err)
	}
	l := NewLoader(modPath, root)
	pkgs, err := l.LoadModule()
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("LoadModule found only %d packages; the walk is missing the tree", len(pkgs))
	}
	for _, d := range NewSuite(DefaultConfig(modPath)).Run(pkgs) {
		t.Errorf("module not lint-clean: %s", d)
	}
}

// TestAllowSet exercises the suppression matcher directly: same line,
// line above, wildcard, wrong check.
func TestAllowSet(t *testing.T) {
	set := allowSet{
		"f.go": {
			10: {"floatcmp": true},
			20: {"*": true},
		},
	}
	cases := []struct {
		file  string
		line  int
		check string
		want  bool
	}{
		{"f.go", 10, "floatcmp", true},
		{"f.go", 11, "floatcmp", true}, // comment above the finding
		{"f.go", 12, "floatcmp", false},
		{"f.go", 10, "nopanic", false},
		{"f.go", 20, "anything", true}, // wildcard
		{"g.go", 10, "floatcmp", false},
	}
	for _, c := range cases {
		if got := set.allows(c.file, c.line, c.check); got != c.want {
			t.Errorf("allows(%s, %d, %s) = %v, want %v", c.file, c.line, c.check, got, c.want)
		}
	}
}

// TestQualifiedName pins the owner-naming scheme FloatcmpApproved keys use.
func TestQualifiedName(t *testing.T) {
	pkg := loadFixture(t, "ctxpoll")
	var got []string
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok {
				got = append(got, qualifiedName(pkg.Path, fn))
			}
		}
	}
	joined := " " + strings.Join(got, " ") + " "
	for _, w := range []string{" ctxpoll.scanner.Next ", " ctxpoll.helper "} {
		if !strings.Contains(joined, w) {
			t.Errorf("qualified names %v missing %q", got, strings.TrimSpace(w))
		}
	}
}
