package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
)

// NewCtxflow builds the ctxflow analyzer: the interprocedural upgrade of
// ctxpoll. ctxpoll trusts any callee that receives a ctx argument to poll
// it; ctxflow follows the actual call chain. A loop is checked when it is
// *potentially unbounded* — it advances a progressive scan (one of the
// configured scan calls) or it is an unconditioned `for`/`for i := 0; ; i++`
// — AND its enclosing function is reachable from an entry point (the query
// server's handlers, or the facade's Ctx methods). Such a loop must be
// cancellable: poll ctx.Err()/ctx.Done() directly, or forward a context to
// a callee whose summary proves it polls (transitively). Forwarding ctx to
// a callee that drops it on the floor — the case ctxpoll cannot see — is a
// finding.
//
// Reachability follows every edge kind (a handler's closure or a spawned
// goroutine still runs on behalf of a request); the discovery chain is
// printed so the report explains *why* the loop is entry-reachable.
func NewCtxflow(entryPackages, entryFuncs, scanCalls map[string]bool) *Analyzer {
	a := &Analyzer{
		Name:  "ctxflow",
		Doc:   "potentially-unbounded loops reachable from server handlers or facade entry points must be cancellable through the actual call chain",
		Layer: "interproc",
	}
	// The reachability front is a property of the whole analyzed set;
	// cache it per Facts (Suite.Run is sequential over packages).
	var cachedFacts *Facts
	var reach map[*FuncNode]*CallEdge
	a.Run = func(pass *Pass) {
		if len(entryPackages) == 0 && len(entryFuncs) == 0 {
			return
		}
		g, sums := pass.Facts.Graph, pass.Facts.Summaries
		if g == nil || sums == nil {
			return
		}
		if pass.Facts != cachedFacts {
			cachedFacts = pass.Facts
			reach = g.ReachableFrom(func(n *FuncNode) bool {
				return entryPackages[n.Pkg.Path] || entryFuncs[n.Name]
			})
		}
		for _, n := range g.Nodes {
			if n.Pkg.Path != pass.PkgPath {
				continue
			}
			if _, ok := reach[n]; !ok {
				continue
			}
			checkCtxflowFunc(pass, n, reach, sums, scanCalls)
		}
	}
	return a
}

// checkCtxflowFunc inspects every loop in one reachable function.
func checkCtxflowFunc(pass *Pass, n *FuncNode, reach map[*FuncNode]*CallEdge,
	sums map[*FuncNode]*Summary, scanCalls map[string]bool) {

	info := pass.TypesInfo
	// Call edges by site position, to resolve whether a ctx-forwarding call
	// in the loop body lands on a transitively-polling callee.
	edgeAt := make(map[token.Pos][]*CallEdge)
	for _, e := range n.Out {
		if e.Kind != EdgeRef {
			edgeAt[e.Pos] = append(edgeAt[e.Pos], e)
		}
	}

	inspectShallow(n.Body(), func(m ast.Node) bool {
		var body *ast.BlockStmt
		unconditioned := false
		switch loop := m.(type) {
		case *ast.ForStmt:
			body = loop.Body
			unconditioned = loop.Cond == nil
		default:
			return true
		}
		scan := ""
		polled := false
		forwarded := false
		deadEnds := ""
		inspectShallow(body, func(b ast.Node) bool {
			call, ok := b.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				name := sel.Sel.Name
				if scanCalls[name] && scan == "" {
					scan = exprString(sel)
				}
				if name == "Err" || name == "Done" {
					if t := typeOf(info, sel.X); t != nil && isContextType(t) {
						polled = true
					}
				}
			}
			hasCtx := false
			for _, arg := range call.Args {
				if t := typeOf(info, arg); t != nil && isContextType(t) {
					hasCtx = true
				}
			}
			if !hasCtx || polled {
				return true
			}
			forwarded = true
			// Where does the forwarded ctx go? Module callees must prove
			// (via their summary) that the context is eventually polled;
			// stdlib and unresolved callees get the benefit of the doubt,
			// like ctxpoll gave every callee.
			if edges, ok := edgeAt[call.Pos()]; ok {
				for _, e := range edges {
					if sums[e.Callee].PollsCtx {
						polled = true
					} else if deadEnds == "" {
						deadEnds = shortName(e.Callee.Name)
					}
				}
			} else {
				polled = true
			}
			return true
		})
		if polled || (scan == "" && !unconditioned) {
			return true
		}
		what := "runs without a bound (unconditioned for-loop)"
		if scan != "" {
			what = fmt.Sprintf("advances a scan via %s", scan)
		}
		why := "no context reaches the loop; thread ctx through this chain and poll it"
		if forwarded && deadEnds != "" {
			why = fmt.Sprintf("ctx is forwarded only to %s, which never polls it on any path", deadEnds)
		} else if hasCtxParam(n) {
			why = "ctx is in scope but the loop never polls it"
		}
		pass.Report(m.Pos(), "loop %s and is reachable from an entry point (%s) but cannot be cancelled: %s",
			what, Chain(reach, n), why)
		return true
	})
}

// hasCtxParam reports whether the function takes a context.Context.
func hasCtxParam(n *FuncNode) bool {
	if n.Sig == nil {
		return false
	}
	for i := 0; i < n.Sig.Params().Len(); i++ {
		if isContextType(n.Sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}
