package topk

import (
	"math/rand"
	"testing"

	"ordu/internal/geom"
	"ordu/internal/raceflag"
	"ordu/internal/rtree"
)

// TestSearcherTopKNoAllocs pins the searcher-reuse contract: once a
// Searcher has served a query, further TopK calls perform zero heap
// allocations (the heap, result buffer, and root-corner scratch are all
// warm).
func TestSearcherTopKNoAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	rng := rand.New(rand.NewSource(7))
	pts := make([]geom.Vector, 400)
	for i := range pts {
		p := make(geom.Vector, 4)
		for j := range p {
			p[j] = rng.Float64()
		}
		pts[i] = p
	}
	tr := rtree.BulkLoad(pts)
	w := geom.RandSimplex(rng, 4)
	var s Searcher
	if got := s.TopK(tr, w, 10); len(got) != 10 { // warm-up
		t.Fatalf("warm-up TopK returned %d results", len(got))
	}
	avg := testing.AllocsPerRun(100, func() {
		if got := s.TopK(tr, w, 10); len(got) != 10 {
			t.Fatalf("TopK returned %d results", len(got))
		}
	})
	if avg != 0 {
		t.Fatalf("warmed Searcher.TopK allocates %.1f times per call, want 0", avg)
	}
}
