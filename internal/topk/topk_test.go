package topk

import (
	"math/rand"
	"testing"

	"ordu/internal/geom"
	"ordu/internal/rtree"
)

func TestTopKMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, d := range []int{2, 4, 6} {
		pts := make([]geom.Vector, 500)
		for i := range pts {
			p := make(geom.Vector, d)
			for j := range p {
				p[j] = rng.Float64()
			}
			pts[i] = p
		}
		tr := rtree.BulkLoad(pts)
		for _, k := range []int{1, 5, 20} {
			w := geom.RandSimplex(rng, d)
			got := TopK(tr, w, k)
			want := BruteTopK(pts, w, k)
			if len(got) != len(want) {
				t.Fatalf("d=%d k=%d: got %d results", d, k, len(got))
			}
			for i := range got {
				// Scores must match rank-for-rank (ids may differ on exact
				// ties, which do not occur with random float data).
				if got[i].ID != want[i].ID {
					t.Fatalf("d=%d k=%d rank %d: got id %d, want %d",
						d, k, i, got[i].ID, want[i].ID)
				}
			}
		}
	}
}

func TestTopKEdgeCases(t *testing.T) {
	pts := []geom.Vector{{0.5, 0.5}, {0.9, 0.1}}
	tr := rtree.BulkLoad(pts)
	w := geom.Vector{0.5, 0.5}
	if got := TopK(tr, w, 0); got != nil {
		t.Error("k=0 should return nil")
	}
	if got := TopK(tr, w, 10); len(got) != 2 {
		t.Errorf("k beyond dataset size returned %d", len(got))
	}
	empty := rtree.New(2)
	if got := TopK(empty, w, 3); got != nil {
		t.Error("empty tree should return nil")
	}
}

func TestTopKOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	pts := make([]geom.Vector, 200)
	for i := range pts {
		pts[i] = geom.Vector{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	tr := rtree.BulkLoad(pts)
	w := geom.Vector{0.3, 0.3, 0.4}
	res := TopK(tr, w, 50)
	for i := 1; i < len(res); i++ {
		if res[i].Score > res[i-1].Score {
			t.Fatal("results not in decreasing score order")
		}
	}
}
