package topk

import (
	"math/rand"
	"testing"

	"ordu/internal/geom"
	"ordu/internal/rtree"
	"ordu/internal/rtree/legacy"
	"ordu/internal/xheap"
)

// oracleEntry mirrors entry over the legacy pointer tree with the same
// score key and the same heap implementation, so the pre-flat-layout BBR
// serves as the ordering oracle for Searcher.TopK.
type oracleEntry struct {
	score float64
	node  *legacy.Node
	id    int
	pt    geom.Vector
}

func (e oracleEntry) Less(o oracleEntry) bool { return e.score > o.score }

func oracleTopK(tree *legacy.Tree, w geom.Vector, k int) []Result {
	root := tree.Root()
	if root == nil || k <= 0 {
		return nil
	}
	var h xheap.Heap[oracleEntry]
	d := len(root.Entries[0].Rect.Hi)
	top := make(geom.Vector, d)
	copy(top, root.Entries[0].Rect.Hi)
	for _, e := range root.Entries[1:] {
		for j, v := range e.Rect.Hi {
			if v > top[j] {
				top[j] = v
			}
		}
	}
	h.Push(oracleEntry{score: w.Dot(top), node: root, pt: top})
	var out []Result
	for h.Len() > 0 && len(out) < k {
		e := h.Pop()
		if e.node == nil {
			out = append(out, Result{ID: e.id, Point: e.pt, Score: e.score})
			continue
		}
		for _, ent := range e.node.Entries {
			if e.node.Level == 0 {
				p := geom.Vector(ent.Rect.Lo)
				h.Push(oracleEntry{score: w.Dot(p), id: ent.ID, pt: p})
			} else {
				t := ent.Rect.TopCorner()
				h.Push(oracleEntry{score: w.Dot(t), node: ent.Child, pt: t})
			}
		}
	}
	return out
}

// TestTopKParityVsLegacy compares flat-tree TopK against the legacy-tree
// oracle on randomized datasets with quantized coordinates (frequent exact
// score ties): identical ids, points and scores, in identical order.
func TestTopKParityVsLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for _, cfg := range []struct{ n, d int }{{500, 2}, {2000, 3}, {1200, 4}} {
		pts := make([]geom.Vector, cfg.n)
		for i := range pts {
			p := make(geom.Vector, cfg.d)
			for j := range p {
				p[j] = float64(rng.Intn(12)) / 11
			}
			pts[i] = p
		}
		ft := rtree.BulkLoad(pts)
		lt := legacy.BulkLoad(pts)
		w := make(geom.Vector, cfg.d)
		for i := range w {
			w[i] = rng.Float64() + 0.05
		}
		for _, k := range []int{1, 10, 100, cfg.n + 5} {
			got := TopK(ft, w, k)
			want := oracleTopK(lt, w, k)
			if len(got) != len(want) {
				t.Fatalf("n=%d d=%d k=%d: %d results vs legacy %d", cfg.n, cfg.d, k, len(got), len(want))
			}
			for i := range got {
				if got[i].ID != want[i].ID || got[i].Score != want[i].Score || !got[i].Point.Equal(want[i].Point) { //ordlint:allow floatcmp — parity demands identical floats
					t.Fatalf("n=%d d=%d k=%d result %d: (%d,%v) vs legacy (%d,%v)",
						cfg.n, cfg.d, k, i, got[i].ID, got[i].Score, want[i].ID, want[i].Score)
				}
			}
		}
	}
}
