// Package topk implements BBR [66]: branch-and-bound ranked retrieval of
// the k records with the highest linear utility score over an R-tree. The
// first k records popped from a max-heap ordered by score upper bound are
// exactly the top-k.
package topk

import (
	"container/heap"
	"sort"

	"ordu/internal/geom"
	"ordu/internal/rtree"
)

// Result is one ranked record.
type Result struct {
	ID    int
	Point geom.Vector
	Score float64
}

type entry struct {
	score float64
	node  *rtree.Node
	id    int
	pt    geom.Vector
}

type maxHeap []entry

func (h maxHeap) Len() int            { return len(h) }
func (h maxHeap) Less(i, j int) bool  { return h[i].score > h[j].score }
func (h maxHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *maxHeap) Push(x interface{}) { *h = append(*h, x.(entry)) }
func (h *maxHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// TopK returns the k records with the highest score for w, in decreasing
// score order. Fewer records are returned when the dataset is smaller
// than k.
func TopK(tree *rtree.Tree, w geom.Vector, k int) []Result {
	root := tree.Root()
	if root == nil || k <= 0 {
		return nil
	}
	var h maxHeap
	pushNode := func(n *rtree.Node, top geom.Vector) {
		heap.Push(&h, entry{score: w.Dot(top), node: n, pt: top})
	}
	r := root.Entries[0].Rect.Clone()
	for _, e := range root.Entries[1:] {
		r.Extend(e.Rect)
	}
	pushNode(root, r.TopCorner())
	out := make([]Result, 0, k)
	for len(h) > 0 && len(out) < k {
		e := heap.Pop(&h).(entry)
		if e.node == nil {
			out = append(out, Result{ID: e.id, Point: e.pt, Score: e.score})
			continue
		}
		for _, ent := range e.node.Entries {
			if e.node.Level == 0 {
				p := geom.Vector(ent.Rect.Lo)
				heap.Push(&h, entry{score: w.Dot(p), id: ent.ID, pt: p})
			} else {
				pushNode(ent.Child, ent.Rect.TopCorner())
			}
		}
	}
	return out
}

// BruteTopK is the linear-scan reference used in tests and small examples.
func BruteTopK(points []geom.Vector, w geom.Vector, k int) []Result {
	res := make([]Result, 0, len(points))
	for i, p := range points {
		res = append(res, Result{ID: i, Point: p, Score: w.Dot(p)})
	}
	sort.Slice(res, func(i, j int) bool { return res[i].Score > res[j].Score })
	if len(res) > k {
		res = res[:k]
	}
	return res
}
