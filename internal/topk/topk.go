// Package topk implements BBR [66]: branch-and-bound ranked retrieval of
// the k records with the highest linear utility score over an R-tree. The
// first k records popped from a max-heap ordered by score upper bound are
// exactly the top-k.
package topk

import (
	"sort"

	"ordu/internal/geom"
	"ordu/internal/rtree"
	"ordu/internal/xheap"
)

// Result is one ranked record.
type Result struct {
	ID    int
	Point geom.Vector
	Score float64
}

type entry struct {
	score float64
	node  rtree.NodeRef // NilNode for records
	id    int
	pt    geom.Vector
}

// Less orders the branch-and-bound max-heap by score upper bound.
func (e entry) Less(o entry) bool { return e.score > o.score }

// Searcher carries the branch-and-bound heap and result buffer across TopK
// calls, so repeated queries (the server's steady state) reuse their
// traversal state instead of reallocating it. The zero value is ready for
// use. Not goroutine-safe: one Searcher per worker.
type Searcher struct {
	h      xheap.Heap[entry]
	out    []Result
	rootHi geom.Vector // scratch for the root's upper corner
}

// TopK returns the k records with the highest score for w, in decreasing
// score order. Fewer records are returned when the dataset is smaller than
// k. The returned slice aliases the searcher's buffer: it is valid until
// the next TopK call and must be copied if retained.
//
//ordlint:noalloc
func (s *Searcher) TopK(tree *rtree.Tree, w geom.Vector, k int) []Result {
	root := tree.Root()
	if root == rtree.NilNode || k <= 0 {
		return nil
	}
	s.h.Reset()
	// Upper corner of the root region, built in the searcher's scratch
	// (tree.Bounds here would put two slices on the heap per query).
	d := tree.Dim()
	if cap(s.rootHi) < d {
		s.rootHi = make(geom.Vector, d)
	}
	top := s.rootHi[:d]
	rootLeaf := tree.Level(root) == 0
	for i, cnt := 0, tree.Count(root); i < cnt; i++ {
		hi := tree.LeafPoint(root, i)
		if !rootLeaf {
			hi = tree.ChildHi(root, i)
		}
		if i == 0 {
			copy(top, hi)
			continue
		}
		for j, v := range hi {
			if v > top[j] {
				top[j] = v
			}
		}
	}
	s.h.Push(entry{score: w.Dot(top), node: root, pt: top})
	out := s.out[:0]
	for s.h.Len() > 0 && len(out) < k {
		e := s.h.Pop()
		if e.node == rtree.NilNode {
			out = append(out, Result{ID: e.id, Point: e.pt, Score: e.score})
			continue
		}
		cnt := tree.Count(e.node)
		if tree.Level(e.node) == 0 {
			for i := 0; i < cnt; i++ {
				p := tree.LeafPoint(e.node, i)
				s.h.Push(entry{score: w.Dot(p), node: rtree.NilNode, id: tree.LeafID(e.node, i), pt: p})
			}
		} else {
			for i := 0; i < cnt; i++ {
				t := tree.ChildHi(e.node, i)
				s.h.Push(entry{score: w.Dot(t), node: tree.Child(e.node, i), pt: t})
			}
		}
	}
	s.out = out
	return out
}

// TopK is the one-shot form of Searcher.TopK; the returned slice is freshly
// allocated and the caller may retain it.
func TopK(tree *rtree.Tree, w geom.Vector, k int) []Result {
	var s Searcher
	res := s.TopK(tree, w, k)
	if res == nil {
		return nil
	}
	return append([]Result(nil), res...)
}

// BruteTopK is the linear-scan reference used in tests and small examples.
func BruteTopK(points []geom.Vector, w geom.Vector, k int) []Result {
	res := make([]Result, 0, len(points))
	for i, p := range points {
		res = append(res, Result{ID: i, Point: p, Score: w.Dot(p)})
	}
	sort.Slice(res, func(i, j int) bool { return res[i].Score > res[j].Score })
	if len(res) > k {
		res = res[:k]
	}
	return res
}
