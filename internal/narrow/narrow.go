// Package narrow provides guarded integer narrowing for the flat spatial
// core. The R-tree arenas and the collection's packed chunk storage index
// records with int32 slot handles (half the footprint of int on 64-bit,
// and the unit the SIMD-friendly kernels sweep), so every boundary where a
// platform int enters that storage must prove it fits. Conversions through
// this package are the documented capacity sentinel the ordlint narrowcast
// check accepts; a bare int32(x) on such a path is a finding.
package narrow

import (
	"errors"
	"fmt"
	"math"
)

// ErrTooLarge reports a dataset or index that exceeds the flat core's
// int32 handle capacity. The server maps it to HTTP 400: the request is
// well-formed but asks for more records than the storage can address.
var ErrTooLarge = errors.New("exceeds int32 index capacity")

// MaxIndex is the largest value representable as an int32 slot or node
// handle. The flat core refuses to grow past it rather than silently
// wrapping.
const MaxIndex = math.MaxInt32

// Index32 converts a non-negative int to an int32 handle, failing with
// ErrTooLarge when the value cannot be represented. This is the single
// guarded gate between platform-int sizes (len results, record counts)
// and the flat core's int32 runs.
func Index32(x int) (int32, error) {
	if x < 0 || x > MaxIndex {
		return 0, fmt.Errorf("index %d: %w", x, ErrTooLarge)
	}
	return int32(x), nil
}
