package narrow

import (
	"errors"
	"math"
	"testing"
)

func TestIndex32(t *testing.T) {
	cases := []struct {
		in   int
		want int32
		err  bool
	}{
		{0, 0, false},
		{1, 1, false},
		{math.MaxInt32, math.MaxInt32, false},
		{math.MaxInt32 + 1, 0, true},
		{math.MaxInt64, 0, true},
		{-1, 0, true},
	}
	for _, c := range cases {
		got, err := Index32(c.in)
		if c.err {
			if err == nil {
				t.Errorf("Index32(%d): want error, got %d", c.in, got)
			} else if !errors.Is(err, ErrTooLarge) {
				t.Errorf("Index32(%d): error %v is not ErrTooLarge", c.in, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("Index32(%d): unexpected error %v", c.in, err)
		}
		if got != c.want {
			t.Errorf("Index32(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestErrTooLargeMessage(t *testing.T) {
	_, err := Index32(-5)
	if err == nil || err.Error() != "index -5: exceeds int32 index capacity" {
		t.Errorf("Index32(-5) error = %v, want the formatted sentinel", err)
	}
}
