package expr

import (
	"math"
	"strings"
	"testing"
	"time"

	"ordu/internal/data"
	"ordu/internal/geom"
)

func TestScalesSane(t *testing.T) {
	for _, s := range []Scale{PaperScale(), ReducedScale(), QuickScale()} {
		if s.DefaultK < 1 || s.DefaultM < s.DefaultK || s.Seeds < 1 {
			t.Fatalf("degenerate scale %+v", s)
		}
		if len(s.Cardinalities) == 0 || len(s.Dims) == 0 || len(s.Ks) == 0 || len(s.Ms) == 0 {
			t.Fatalf("empty sweep in %+v", s)
		}
	}
	if PaperScale().DefaultN != 400_000 || PaperScale().Seeds != 50 {
		t.Error("paper scale defaults drifted from Table 2")
	}
}

func TestCacheMemoises(t *testing.T) {
	c := NewCache()
	a := c.Synthetic(data.IND, 500, 3)
	b := c.Synthetic(data.IND, 500, 3)
	if a != b {
		t.Error("cache returned distinct trees for the same key")
	}
	if c.Synthetic(data.COR, 500, 3) == a {
		t.Error("cache conflated distributions")
	}
	if c.Named("NBA", 100).Dim() != data.NBAD {
		t.Error("named dataset wrong dimensionality")
	}
}

func TestCacheUnknownNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCache().Named("BOGUS", 10)
}

func TestSeedsDeterministicOnSimplex(t *testing.T) {
	a := Seeds(4, 5)
	b := Seeds(4, 5)
	for i := range a {
		if !geom.OnSimplex(a[i]) {
			t.Fatalf("seed %d off simplex", i)
		}
		if !a[i].Equal(b[i]) {
			t.Fatal("seeds not deterministic")
		}
	}
}

func TestMeasureAvg(t *testing.T) {
	seeds := Seeds(2, 3)
	calls := 0
	avg := MeasureAvg(seeds, func(w geom.Vector) { calls++ })
	if calls != 3 {
		t.Fatalf("fn called %d times", calls)
	}
	if avg < 0 {
		t.Fatal("negative duration")
	}
}

func TestBoxStats(t *testing.T) {
	b := Box([]float64{5, 1, 3, 2, 4})
	if b.Min != 1 || b.Max != 5 || b.Median != 3 || b.N != 5 {
		t.Fatalf("box = %+v", b)
	}
	if b.Q1 != 2 || b.Q3 != 4 {
		t.Fatalf("quartiles = %+v", b)
	}
	if Box(nil).N != 0 {
		t.Fatal("empty box not zero")
	}
	if !strings.Contains(b.String(), "med=3") {
		t.Fatalf("String() = %q", b.String())
	}
}

func TestJaccard(t *testing.T) {
	cases := []struct {
		a, b []int
		want float64
	}{
		{[]int{1, 2, 3}, []int{1, 2, 3}, 1},
		{[]int{1, 2}, []int{3, 4}, 0},
		{[]int{1, 2, 3}, []int{2, 3, 4}, 0.5},
		{nil, nil, 1},
		{[]int{1, 1, 2}, []int{1, 2}, 1}, // duplicates collapse
	}
	for _, c := range cases {
		if got := Jaccard(c.a, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Jaccard(%v,%v) = %g, want %g", c.a, c.b, got, c.want)
		}
	}
}

func TestTableRendering(t *testing.T) {
	var sb strings.Builder
	Table(&sb, "T", "x", []string{"a", "b"}, []Row{{Label: "m1", Cells: []string{"1", "2"}}})
	out := sb.String()
	for _, want := range []string{"== T ==", "m1", "a", "b", "2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestDurFormats(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{1500 * time.Millisecond, "1.5s"},
		{25 * time.Millisecond, "25ms"},
		{1500 * time.Microsecond, "1.50ms"},
	}
	for _, c := range cases {
		if got := Dur(c.d); got != c.want {
			t.Errorf("Dur(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}
