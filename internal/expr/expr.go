// Package expr is the shared experiment harness behind cmd/experiments and
// the root-level benchmarks: parameter grids (the paper's Table 2 and a
// laptop-scale reduction), dataset/index caching, timing, and the tabular
// and box-plot output formats the paper's figures reduce to.
package expr

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"time"

	"ordu/internal/data"
	"ordu/internal/geom"
	"ordu/internal/rtree"
)

// Scale is one experiment parameter grid (Table 2 of the paper).
type Scale struct {
	Cardinalities []int
	Dims          []int
	Ks            []int
	Ms            []int
	DefaultN      int
	DefaultD      int
	DefaultK      int
	DefaultM      int
	Seeds         int // preference vectors averaged per measurement
}

// PaperScale returns the paper's Table 2 grid (50 seeds per measurement).
// Running it end-to-end takes machine-hours; see ReducedScale.
func PaperScale() Scale {
	return Scale{
		Cardinalities: []int{100_000, 400_000, 1_600_000, 6_400_000, 25_600_000},
		Dims:          []int{2, 3, 4, 5, 6, 7},
		Ks:            []int{1, 5, 10, 15, 20},
		Ms:            []int{10, 30, 50, 70, 90},
		DefaultN:      400_000,
		DefaultD:      4,
		DefaultK:      5,
		DefaultM:      50,
		Seeds:         50,
	}
}

// ReducedScale returns the default laptop-scale grid: the same defaults as
// the paper (400K, d=4, k=5, m=50) with shorter sweep tails and fewer
// seeds, tuned so the full suite finishes in minutes. EXPERIMENTS.md
// documents the reduction.
func ReducedScale() Scale {
	return Scale{
		Cardinalities: []int{25_000, 100_000, 400_000, 1_600_000},
		Dims:          []int{2, 3, 4, 5},
		Ks:            []int{1, 5, 10, 15},
		Ms:            []int{10, 30, 50, 70, 90},
		DefaultN:      400_000,
		DefaultD:      4,
		DefaultK:      5,
		DefaultM:      50,
		Seeds:         3,
	}
}

// QuickScale is a minimal smoke-test grid for CI-style runs.
func QuickScale() Scale {
	return Scale{
		Cardinalities: []int{10_000, 50_000},
		Dims:          []int{2, 3, 4},
		Ks:            []int{1, 5},
		Ms:            []int{10, 30, 50},
		DefaultN:      50_000,
		DefaultD:      4,
		DefaultK:      5,
		DefaultM:      30,
		Seeds:         2,
	}
}

// Cache builds and memoises indexes per (distribution, n, d).
type Cache struct {
	trees map[string]*rtree.Tree
}

// NewCache returns an empty index cache.
func NewCache() *Cache {
	return &Cache{trees: make(map[string]*rtree.Tree)}
}

// Synthetic returns a cached R-tree over a synthetic dataset.
func (c *Cache) Synthetic(dist data.Distribution, n, d int) *rtree.Tree {
	key := fmt.Sprintf("%s/%d/%d", dist, n, d)
	if t, ok := c.trees[key]; ok {
		return t
	}
	t := rtree.BulkLoad(data.Synthetic(dist, n, d, 7_2021))
	c.trees[key] = t
	return t
}

// Named returns a cached R-tree over one of the simulated real datasets
// ("HOTEL", "HOUSE", "NBA", "TA").
func (c *Cache) Named(name string, n int) *rtree.Tree {
	key := fmt.Sprintf("%s/%d", name, n)
	if t, ok := c.trees[key]; ok {
		return t
	}
	var pts []geom.Vector
	switch name {
	case "HOTEL":
		pts = data.Hotel(n, 7_2021)
	case "HOUSE":
		pts = data.House(n, 7_2021)
	case "NBA":
		pts = data.NBA(n, 7_2021)
	case "TA":
		pts = data.TripAdvisor(n, 7_2021)
	default:
		panic("expr: unknown dataset " + name) //ordlint:allow nopanic — harness-internal dataset table; unknown name is a harness bug
	}
	t := rtree.BulkLoad(pts)
	c.trees[key] = t
	return t
}

// Seeds draws `count` random preference vectors for dimension d,
// deterministically per (d, count).
func Seeds(d, count int) []geom.Vector {
	rng := rand.New(rand.NewSource(int64(1000*d + count)))
	out := make([]geom.Vector, count)
	for i := range out {
		out[i] = geom.RandSimplex(rng, d)
	}
	return out
}

// MeasureAvg runs fn once per seed vector and returns the mean wall-clock
// duration.
func MeasureAvg(seeds []geom.Vector, fn func(w geom.Vector)) time.Duration {
	var total time.Duration
	for _, w := range seeds {
		t0 := time.Now()
		fn(w)
		total += time.Since(t0)
	}
	return total / time.Duration(len(seeds))
}

// Row is one line of a figure table: a label and one value per x position.
type Row struct {
	Label string
	Cells []string
}

// Table renders a paper-style figure as text: the x-axis values as columns
// and one row per method/series.
func Table(w io.Writer, title, xname string, xs []string, rows []Row) {
	fmt.Fprintf(w, "\n== %s ==\n", title)
	width := 14
	fmt.Fprintf(w, "%-16s", xname)
	for _, x := range xs {
		fmt.Fprintf(w, "%*s", width, x)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%s\n", strings.Repeat("-", 16+width*len(xs)))
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s", r.Label)
		for _, c := range r.Cells {
			fmt.Fprintf(w, "%*s", width, c)
		}
		fmt.Fprintln(w)
	}
}

// Dur formats a duration as milliseconds with sensible precision.
func Dur(d time.Duration) string {
	ms := float64(d.Microseconds()) / 1000
	switch {
	case ms >= 1000:
		return fmt.Sprintf("%.1fs", ms/1000)
	case ms >= 10:
		return fmt.Sprintf("%.0fms", ms)
	default:
		return fmt.Sprintf("%.2fms", ms)
	}
}

// BoxStats are five-number summaries, the paper's box plots in text form.
type BoxStats struct {
	Min, Q1, Median, Q3, Max float64
	N                        int
}

// Box computes the five-number summary of values.
func Box(values []float64) BoxStats {
	if len(values) == 0 {
		return BoxStats{}
	}
	vs := append([]float64(nil), values...)
	sort.Float64s(vs)
	q := func(p float64) float64 {
		idx := p * float64(len(vs)-1)
		lo := int(idx)
		if lo >= len(vs)-1 {
			return vs[len(vs)-1]
		}
		frac := idx - float64(lo)
		return vs[lo]*(1-frac) + vs[lo+1]*frac
	}
	return BoxStats{
		Min: vs[0], Q1: q(0.25), Median: q(0.5), Q3: q(0.75), Max: vs[len(vs)-1],
		N: len(vs),
	}
}

func (b BoxStats) String() string {
	return fmt.Sprintf("min=%.0f q1=%.0f med=%.0f q3=%.0f max=%.0f (n=%d)",
		b.Min, b.Q1, b.Median, b.Q3, b.Max, b.N)
}

// Jaccard returns the Jaccard similarity of two id sets.
func Jaccard(a, b []int) float64 {
	as := map[int]bool{}
	for _, x := range a {
		as[x] = true
	}
	inter := 0
	bs := map[int]bool{}
	for _, x := range b {
		if bs[x] {
			continue
		}
		bs[x] = true
		if as[x] {
			inter++
		}
	}
	union := len(as) + len(bs) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}
