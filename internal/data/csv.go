package data

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// LoadCSV reads a records file: one record per line, numeric columns only,
// no header. Values are returned raw — callers decide whether to min-max
// normalise (both cmd/ordu and the serving layer do, so larger-is-better
// semantics hold regardless of the source scale).
func LoadCSV(path string) ([][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, err := ParseCSV(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return recs, nil
}

// ParseCSV parses CSV records from r (see LoadCSV).
func ParseCSV(r io.Reader) ([][]float64, error) {
	rows, err := csv.NewReader(r).ReadAll()
	if err != nil {
		return nil, err
	}
	out := make([][]float64, 0, len(rows))
	for i, row := range rows {
		rec := make([]float64, len(row))
		for j, cell := range row {
			v, err := strconv.ParseFloat(strings.TrimSpace(cell), 64)
			if err != nil {
				return nil, fmt.Errorf("row %d col %d: %v", i+1, j+1, err)
			}
			rec[j] = v
		}
		out = append(out, rec)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no records")
	}
	return out, nil
}
