package data

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// Sentinel errors of the CSV loaders. Callers feeding live datasets match
// these with errors.Is to turn a bad upload into a 4xx instead of a 500.
var (
	// ErrNonFinite reports a NaN or +/-Inf cell. strconv.ParseFloat accepts
	// the spellings "NaN" and "Inf", but no dominance or mindist kernel is
	// defined over non-finite coordinates, so the loaders reject them at
	// the boundary.
	ErrNonFinite = errors.New("data: non-finite value")
	// ErrDuplicateID reports a repeated id in a keyed CSV.
	ErrDuplicateID = errors.New("data: duplicate id")
	// ErrNoRecords reports an empty input.
	ErrNoRecords = errors.New("data: no records")
)

// LoadCSV reads a records file: one record per line, numeric columns only,
// no header. Values are returned raw — callers decide whether to min-max
// normalise (both cmd/ordu and the serving layer do, so larger-is-better
// semantics hold regardless of the source scale). Non-finite cells fail
// with ErrNonFinite.
func LoadCSV(path string) ([][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, err := ParseCSV(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return recs, nil
}

// ParseCSV parses CSV records from r (see LoadCSV).
func ParseCSV(r io.Reader) ([][]float64, error) {
	rows, err := csv.NewReader(r).ReadAll()
	if err != nil {
		return nil, err
	}
	out := make([][]float64, 0, len(rows))
	for i, row := range rows {
		rec := make([]float64, len(row))
		for j, cell := range row {
			v, err := parseCell(cell, i, j)
			if err != nil {
				return nil, err
			}
			rec[j] = v
		}
		out = append(out, rec)
	}
	if len(out) == 0 {
		return nil, ErrNoRecords
	}
	return out, nil
}

// LoadKeyedCSV reads an id-keyed records file: the first column is an
// integer record id, the remaining columns are the numeric attributes.
// Duplicate ids fail with ErrDuplicateID and non-finite attributes with
// ErrNonFinite — the contract live-dataset ingestion relies on, since a
// mutable collection addresses records by id.
func LoadKeyedCSV(path string) ([]int, [][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	ids, recs, err := ParseKeyedCSV(f)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	return ids, recs, nil
}

// ParseKeyedCSV parses id-keyed CSV records from r (see LoadKeyedCSV).
func ParseKeyedCSV(r io.Reader) ([]int, [][]float64, error) {
	rows, err := csv.NewReader(r).ReadAll()
	if err != nil {
		return nil, nil, err
	}
	ids := make([]int, 0, len(rows))
	recs := make([][]float64, 0, len(rows))
	seen := make(map[int]struct{}, len(rows))
	for i, row := range rows {
		if len(row) < 2 {
			return nil, nil, fmt.Errorf("row %d: want an id column and at least one attribute, got %d columns", i+1, len(row))
		}
		id, err := strconv.Atoi(strings.TrimSpace(row[0]))
		if err != nil {
			return nil, nil, fmt.Errorf("row %d: bad id %q: %v", i+1, row[0], err)
		}
		if _, dup := seen[id]; dup {
			return nil, nil, fmt.Errorf("row %d: %w: %d", i+1, ErrDuplicateID, id)
		}
		seen[id] = struct{}{}
		rec := make([]float64, len(row)-1)
		for j, cell := range row[1:] {
			v, err := parseCell(cell, i, j+1)
			if err != nil {
				return nil, nil, err
			}
			rec[j] = v
		}
		ids = append(ids, id)
		recs = append(recs, rec)
	}
	if len(recs) == 0 {
		return nil, nil, ErrNoRecords
	}
	return ids, recs, nil
}

// parseCell parses one CSV cell into a finite float64. i and j are
// zero-based row and column indices, reported one-based.
func parseCell(cell string, i, j int) (float64, error) {
	v, err := strconv.ParseFloat(strings.TrimSpace(cell), 64)
	if err != nil {
		return 0, fmt.Errorf("row %d col %d: %v", i+1, j+1, err)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("row %d col %d: %w: %q", i+1, j+1, ErrNonFinite, strings.TrimSpace(cell))
	}
	return v, nil
}
