package data

import (
	"errors"
	"strings"
	"testing"
)

func TestParseCSV(t *testing.T) {
	cases := []struct {
		name    string
		in      string
		want    [][]float64
		wantErr error // nil means success; non-nil matched with errors.Is
	}{
		{
			name: "plain records",
			in:   "1,2,3\n4.5,5.5,6.5\n",
			want: [][]float64{{1, 2, 3}, {4.5, 5.5, 6.5}},
		},
		{
			name: "whitespace trimmed",
			in:   " 1 , 2 \n 3 , 4 \n",
			want: [][]float64{{1, 2}, {3, 4}},
		},
		{
			name:    "empty input",
			in:      "",
			wantErr: ErrNoRecords,
		},
		{
			name:    "NaN cell",
			in:      "1,2\nNaN,4\n",
			wantErr: ErrNonFinite,
		},
		{
			name:    "positive infinity",
			in:      "1,Inf\n",
			wantErr: ErrNonFinite,
		},
		{
			name:    "negative infinity",
			in:      "-Inf,2\n",
			wantErr: ErrNonFinite,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := ParseCSV(strings.NewReader(tc.in))
			if tc.wantErr != nil {
				if !errors.Is(err, tc.wantErr) {
					t.Fatalf("ParseCSV error = %v, want %v", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("ParseCSV: %v", err)
			}
			if len(got) != len(tc.want) {
				t.Fatalf("got %d records, want %d", len(got), len(tc.want))
			}
			for i := range got {
				if len(got[i]) != len(tc.want[i]) {
					t.Fatalf("record %d: got %d cols, want %d", i, len(got[i]), len(tc.want[i]))
				}
				for j := range got[i] {
					if got[i][j] != tc.want[i][j] {
						t.Fatalf("record %d col %d: got %v, want %v", i, j, got[i][j], tc.want[i][j])
					}
				}
			}
		})
	}

	t.Run("non-numeric cell", func(t *testing.T) {
		if _, err := ParseCSV(strings.NewReader("1,x\n")); err == nil {
			t.Fatal("ParseCSV accepted a non-numeric cell")
		}
	})
}

func TestParseKeyedCSV(t *testing.T) {
	cases := []struct {
		name     string
		in       string
		wantIDs  []int
		wantRecs [][]float64
		wantErr  error
	}{
		{
			name:     "keyed records",
			in:       "7,0.1,0.2\n3,0.3,0.4\n",
			wantIDs:  []int{7, 3},
			wantRecs: [][]float64{{0.1, 0.2}, {0.3, 0.4}},
		},
		{
			name:    "duplicate id",
			in:      "1,0.1\n2,0.2\n1,0.3\n",
			wantErr: ErrDuplicateID,
		},
		{
			name:    "non-finite attribute",
			in:      "1,0.1\n2,Inf\n",
			wantErr: ErrNonFinite,
		},
		{
			name:    "empty input",
			in:      "",
			wantErr: ErrNoRecords,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ids, recs, err := ParseKeyedCSV(strings.NewReader(tc.in))
			if tc.wantErr != nil {
				if !errors.Is(err, tc.wantErr) {
					t.Fatalf("ParseKeyedCSV error = %v, want %v", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("ParseKeyedCSV: %v", err)
			}
			if len(ids) != len(tc.wantIDs) {
				t.Fatalf("got %d ids, want %d", len(ids), len(tc.wantIDs))
			}
			for i := range ids {
				if ids[i] != tc.wantIDs[i] {
					t.Fatalf("id %d: got %d, want %d", i, ids[i], tc.wantIDs[i])
				}
			}
			for i := range recs {
				for j := range recs[i] {
					if recs[i][j] != tc.wantRecs[i][j] {
						t.Fatalf("record %d col %d: got %v, want %v", i, j, recs[i][j], tc.wantRecs[i][j])
					}
				}
			}
		})
	}

	t.Run("bad id", func(t *testing.T) {
		if _, _, err := ParseKeyedCSV(strings.NewReader("x,0.1\n")); err == nil {
			t.Fatal("ParseKeyedCSV accepted a non-integer id")
		}
	})
	t.Run("missing attribute columns", func(t *testing.T) {
		if _, _, err := ParseKeyedCSV(strings.NewReader("1\n")); err == nil {
			t.Fatal("ParseKeyedCSV accepted a row with only an id")
		}
	})
}
