package data

import (
	"math"
	"testing"

	"ordu/internal/geom"
	"ordu/internal/rtree"
	"ordu/internal/skyband"
)

func inUnitCube(t *testing.T, pts []geom.Vector, label string) {
	t.Helper()
	for i, p := range pts {
		for j, x := range p {
			if x < 0 || x > 1 {
				t.Fatalf("%s: point %d coord %d = %g out of [0,1]", label, i, j, x)
			}
		}
	}
}

func corrCoef(pts []geom.Vector, a, b int) float64 {
	n := float64(len(pts))
	var sa, sb, saa, sbb, sab float64
	for _, p := range pts {
		sa += p[a]
		sb += p[b]
		saa += p[a] * p[a]
		sbb += p[b] * p[b]
		sab += p[a] * p[b]
	}
	cov := sab/n - sa/n*sb/n
	va := saa/n - sa/n*sa/n
	vb := sbb/n - sb/n*sb/n
	return cov / math.Sqrt(va*vb)
}

func TestSyntheticShapes(t *testing.T) {
	for _, dist := range []Distribution{IND, COR, ANTI} {
		pts := Synthetic(dist, 3000, 4, 1)
		if len(pts) != 3000 || len(pts[0]) != 4 {
			t.Fatalf("%s: wrong shape", dist)
		}
		inUnitCube(t, pts, string(dist))
	}
}

func TestSyntheticCorrelationStructure(t *testing.T) {
	ind := Synthetic(IND, 5000, 3, 2)
	cor := Synthetic(COR, 5000, 3, 2)
	anti := Synthetic(ANTI, 5000, 3, 2)
	ci := corrCoef(ind, 0, 1)
	cc := corrCoef(cor, 0, 1)
	ca := corrCoef(anti, 0, 1)
	if math.Abs(ci) > 0.1 {
		t.Errorf("IND correlation = %g, want ~0", ci)
	}
	if cc < 0.5 {
		t.Errorf("COR correlation = %g, want strongly positive", cc)
	}
	if ca > -0.2 {
		t.Errorf("ANTI correlation = %g, want negative", ca)
	}
}

// TestSkylineSizeOrdering: the defining property of the three
// distributions — skyline sizes order ANTI > IND > COR.
func TestSkylineSizeOrdering(t *testing.T) {
	n := 4000
	sizes := map[Distribution]int{}
	for _, dist := range []Distribution{IND, COR, ANTI} {
		pts := Synthetic(dist, n, 3, 3)
		tr := rtree.BulkLoad(pts)
		sizes[dist] = len(skyband.Skyline(tr))
	}
	if !(sizes[ANTI] > sizes[IND] && sizes[IND] > sizes[COR]) {
		t.Errorf("skyline sizes ANTI=%d IND=%d COR=%d violate ANTI>IND>COR",
			sizes[ANTI], sizes[IND], sizes[COR])
	}
}

func TestSyntheticDeterminism(t *testing.T) {
	a := Synthetic(IND, 100, 3, 42)
	b := Synthetic(IND, 100, 3, 42)
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatal("same seed produced different data")
		}
	}
	c := Synthetic(IND, 100, 3, 43)
	if a[0].Equal(c[0]) && a[1].Equal(c[1]) && a[2].Equal(c[2]) {
		t.Fatal("different seeds produced identical data")
	}
}

func TestSyntheticUnknownDistributionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Synthetic("BOGUS", 10, 2, 1)
}

func TestRealDatasetStandins(t *testing.T) {
	hotel := Hotel(2000, 1)
	if len(hotel[0]) != HotelD {
		t.Fatal("hotel dimensionality")
	}
	inUnitCube(t, hotel, "hotel")

	house := House(2000, 1)
	if len(house[0]) != HouseD {
		t.Fatal("house dimensionality")
	}
	inUnitCube(t, house, "house")
	if c := corrCoef(house, 0, 3); c < 0.15 {
		t.Errorf("house expense correlation = %g, want positive", c)
	}

	nba := NBA(2000, 1)
	if len(nba[0]) != NBAD {
		t.Fatal("nba dimensionality")
	}
	inUnitCube(t, nba, "nba")
}

func TestTripAdvisorSkybandIsSmall(t *testing.T) {
	// The paper reports a 5-skyband of 61 hotels on the real TA data; the
	// stand-in must be in that regime (strongly correlated, small skyband).
	pts := TripAdvisor(0, 7)
	if len(pts) != TAN || len(pts[0]) != TAD {
		t.Fatal("TA shape wrong")
	}
	tr := rtree.BulkLoad(pts)
	sb := skyband.KSkyband(tr, 5)
	if len(sb) < 20 || len(sb) > 300 {
		t.Errorf("TA 5-skyband = %d records, want the paper's order of magnitude (~61)", len(sb))
	}
}

func TestTAUserVectors(t *testing.T) {
	vs := TAUserVectors(500, 9)
	for i, v := range vs {
		if !geom.OnSimplex(v) {
			t.Fatalf("user vector %d off simplex: %v", i, v)
		}
	}
}

func TestNBA2019CaseStudyShape(t *testing.T) {
	players := NBA2019(1)
	if len(players) != 708 {
		t.Fatalf("got %d players", len(players))
	}
	names := map[string]geom.Vector{}
	for _, p := range players {
		names[p.Name] = p.Stats
	}
	// The planted leaders must actually lead their categories.
	for i, leader := range []string{"ScoringLeader", "ReboundLeader", "RisingPlaymaker"} {
		stats, ok := names[leader]
		if !ok {
			t.Fatalf("missing %s", leader)
		}
		for _, p := range players {
			if p.Name != leader && p.Stats[i] > stats[i] {
				t.Errorf("%s outdone in attribute %d by %s", leader, i, p.Name)
			}
		}
	}
}

func TestProject(t *testing.T) {
	pts := []geom.Vector{{1, 2, 3}, {4, 5, 6}}
	got := Project(pts, 2, 0)
	if !got[0].Equal(geom.Vector{3, 1}) || !got[1].Equal(geom.Vector{6, 4}) {
		t.Fatalf("Project = %v", got)
	}
}

func TestDefaultCardinalities(t *testing.T) {
	if n := len(TripAdvisor(0, 1)); n != TAN {
		t.Errorf("TA default n = %d", n)
	}
	// Hotel/House/NBA defaults are large; spot-check via small n.
	if n := len(Hotel(10, 1)); n != 10 {
		t.Errorf("Hotel(10) = %d", n)
	}
}
