// Package data generates the paper's workloads. The synthetic
// distributions (IND, COR, ANTI) follow the classic skyline benchmark
// generators of Börzsönyi et al. [14]. The real datasets (HOTEL, HOUSE,
// NBA, TripAdvisor) are not redistributable, so this package synthesises
// stand-ins that match their cardinality, dimensionality and correlation
// structure — the only properties the paper's experiments depend on (see
// DESIGN.md, "Substitutions"). All attributes are normalised to [0, 1]
// with larger-is-better semantics.
package data

import (
	"fmt"
	"math"
	"math/rand"

	"ordu/internal/geom"
)

// Distribution names a synthetic data distribution.
type Distribution string

// The three synthetic distributions of the paper's evaluation.
const (
	IND  Distribution = "IND"  // independent uniform attributes
	COR  Distribution = "COR"  // correlated (clustered along the diagonal)
	ANTI Distribution = "ANTI" // anticorrelated (clustered around a hyperplane)
)

// Canonical cardinalities and dimensionalities of the paper's datasets.
const (
	HotelN = 418843
	HotelD = 4
	HouseN = 315265
	HouseD = 6
	NBAN   = 21960
	NBAD   = 8
	TAN    = 1850
	TAD    = 7
)

func clip01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// Synthetic generates n d-dimensional records from the given distribution.
func Synthetic(dist Distribution, n, d int, seed int64) []geom.Vector {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Vector, n)
	for i := range pts {
		p := make(geom.Vector, d)
		switch dist {
		case IND:
			for j := range p {
				p[j] = rng.Float64()
			}
		case COR:
			// A diagonal position with symmetric per-axis spread. The
			// spread is large enough that the top-k union over the whole
			// preference domain comfortably exceeds the paper's m range
			// (the real Börzsönyi generator has comparable looseness),
			// while the attributes remain strongly positively correlated.
			b := 0.5 + 0.2*rng.NormFloat64()
			if b < 0.13 {
				b = 0.13
			} else if b > 0.87 {
				b = 0.87
			}
			for j := range p {
				// The clamp above keeps every coordinate inside (0,1): a
				// clipped pile-up at the unit corner would otherwise create
				// a single record that tops the entire preference domain.
				p[j] = b + 0.24*(rng.Float64()-0.5)
			}
		case ANTI:
			// Uniform direction rescaled so the coordinate sum clusters
			// tightly around d/2: records trade off against each other.
			s := 0.0
			for j := range p {
				p[j] = rng.Float64()
				s += p[j]
			}
			target := float64(d)/2 + 0.25*rng.NormFloat64()
			f := target / s
			for j := range p {
				p[j] = clip01(p[j] * f)
			}
		default:
			panic(fmt.Sprintf("data: unknown distribution %q", dist)) //ordlint:allow nopanic — exhaustive switch over the package-defined enum
		}
		pts[i] = p
	}
	return pts
}

// Hotel synthesises a HOTEL-like dataset (4 attributes: think location,
// price-value, rating, stars): a mild quality factor correlates the
// attributes, with substantial independent variation. n <= 0 uses the
// paper's cardinality.
func Hotel(n int, seed int64) []geom.Vector {
	if n <= 0 {
		n = HotelN
	}
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Vector, n)
	for i := range pts {
		q := rng.Float64() // latent quality
		p := make(geom.Vector, HotelD)
		for j := range p {
			p[j] = clip01(0.35*q + 0.65*rng.Float64())
		}
		pts[i] = p
	}
	return pts
}

// House synthesises a HOUSE-like dataset (6 household expense types):
// expenses correlate positively through household income.
func House(n int, seed int64) []geom.Vector {
	if n <= 0 {
		n = HouseN
	}
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Vector, n)
	for i := range pts {
		income := math.Pow(rng.Float64(), 1.5) // right-skewed
		p := make(geom.Vector, HouseD)
		for j := range p {
			p[j] = clip01(0.5*income + 0.5*rng.Float64())
		}
		pts[i] = p
	}
	return pts
}

// NBA synthesises an NBA-like dataset (8 per-season statistics): a
// heavy-tailed overall-ability factor plus role archetypes that trade
// playmaking off against rebounding, producing both stars that lead single
// categories and broad mid-tier parity.
func NBA(n int, seed int64) []geom.Vector {
	if n <= 0 {
		n = NBAN
	}
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Vector, n)
	for i := range pts {
		pts[i] = nbaStatLine(rng, NBAD)
	}
	return pts
}

// nbaStatLine draws one player's normalised stat line. The mixture of a
// heavy-tailed overall ability, role trade-offs, and strong per-stat
// multiplicative noise matches the shape of real per-season statistics:
// broad mid-tier parity, role specialists, and single-category leaders
// whose other stats are middling — so low-dimensional projections have
// skybands of a realistic size.
func nbaStatLine(rng *rand.Rand, d int) geom.Vector {
	// Heavy-tailed ability: most players are role players, a few are stars.
	ability := 0.15 + 0.85*math.Pow(rng.Float64(), 2.2)
	// Role in [0,1]: 0 = pure playmaker, 1 = pure big man.
	role := rng.Float64()
	p := make(geom.Vector, d)
	for j := range p {
		var roleAffinity float64
		switch j % 4 {
		case 0: // scoring-like: mildly guard/wing-favoured, so the scoring
			// and rebounding frontiers trade off as in real rosters
			roleAffinity = 1.25 - 0.55*role
		case 1: // rebounding-like: favours bigs; the square root makes the
			// playmaking/rebounding trade-off concave (a circular arc), as
			// in real rosters where two-way bigs exist — and hence a
			// vertex-rich upper hull
			roleAffinity = 0.25 + 1.35*math.Sqrt(role)
		case 2: // assist-like: favours playmakers
			roleAffinity = 0.25 + 1.35*math.Sqrt(1-role)
		case 3: // defence-like: mildly big-favoured
			roleAffinity = 0.6 + 0.8*role
		}
		// Per-stat multiplicative spread decorrelates the top end; the 0.6
		// rescale keeps the product below the clipping boundary so no
		// artificial pile-up of category co-leaders forms at 1.0.
		skill := 0.35 + 0.65*rng.Float64()
		p[j] = clip01(0.6*ability*roleAffinity*skill + 0.06*rng.Float64())
	}
	return p
}

// Player is one record of the Figure-6 case-study dataset.
type Player struct {
	Name  string
	Stats geom.Vector // [points, rebounds, assists]
}

// NBA2019 synthesises the 708-player 2018-19 season slice used in the
// paper's case study (Figure 6), with three normalised attributes
// (points, rebounds, assists). The generator plants category leaders that
// play the roles of the season's scoring leader (cf. James Harden), rebound
// leader (cf. Andre Drummond) and a high-assist rising star (cf. Trae
// Young): records that are extreme in one attribute yet only middling in
// the seed direction, exactly the shape the case study turns on.
func NBA2019(seed int64) []Player {
	rng := rand.New(rand.NewSource(seed))
	const n = 708
	players := make([]Player, 0, n)
	for i := 0; i < n-3; i++ {
		line := nbaStatLine(rng, 3)
		players = append(players, Player{
			Name:  fmt.Sprintf("Player-%03d", i),
			Stats: line,
		})
	}
	// Planted leaders: top in one category, clearly weaker in the others.
	players = append(players,
		Player{Name: "ScoringLeader", Stats: geom.Vector{1.00, 0.42, 0.50}},
		Player{Name: "ReboundLeader", Stats: geom.Vector{0.55, 1.00, 0.12}},
		Player{Name: "RisingPlaymaker", Stats: geom.Vector{0.62, 0.25, 1.00}},
	)
	return players
}

// Project returns the points restricted to the given attribute indices.
func Project(pts []geom.Vector, dims ...int) []geom.Vector {
	out := make([]geom.Vector, len(pts))
	for i, p := range pts {
		q := make(geom.Vector, len(dims))
		for j, dj := range dims {
			q[j] = p[dj]
		}
		out[i] = q
	}
	return out
}

// TripAdvisor synthesises the TA dataset: 1,850 hotels rated on 7 aspects
// with strong positive correlation (the paper notes its 5-skyband holds
// only 61 hotels). n <= 0 uses the canonical cardinality.
func TripAdvisor(n int, seed int64) []geom.Vector {
	if n <= 0 {
		n = TAN
	}
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Vector, n)
	for i := range pts {
		q := clip01(0.55 + 0.2*rng.NormFloat64()) // overall hotel quality
		p := make(geom.Vector, TAD)
		for j := range p {
			p[j] = clip01(q + 0.055*rng.NormFloat64())
		}
		pts[i] = p
	}
	return pts
}

// TAUserVectors simulates the 137,563 review-mined preference vectors of
// [70]: each user has a latent preference drawn from a mildly concentrated
// Dirichlet (users care about everything, with individual emphasis), as
// produced by rating-regression mining on review text.
func TAUserVectors(count int, seed int64) []geom.Vector {
	rng := rand.New(rand.NewSource(seed))
	base := make(geom.Vector, TAD)
	for i := range base {
		base[i] = 1 / float64(TAD)
	}
	out := make([]geom.Vector, count)
	for i := range out {
		out[i] = geom.RandDirichlet(rng, base, 12)
	}
	return out
}
