package qp

import (
	"math"
	"math/rand"
	"testing"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestUnconstrained(t *testing.T) {
	x, dist, err := Solve(&Problem{P: []float64{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 1, 1e-12) || !almostEq(x[1], 2, 1e-12) || dist != 0 {
		t.Errorf("x=%v dist=%g", x, dist)
	}
}

func TestProjectOntoLine(t *testing.T) {
	// Project (1,1) onto x+y=1: expect (0.5,0.5), dist sqrt(2)/2.
	pr := &Problem{
		P:   []float64{1, 1},
		EqA: [][]float64{{1, 1}},
		EqB: []float64{1},
	}
	x, dist, err := Solve(pr)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 0.5, 1e-9) || !almostEq(x[1], 0.5, 1e-9) {
		t.Errorf("x = %v", x)
	}
	if !almostEq(dist, math.Sqrt2/2, 1e-9) {
		t.Errorf("dist = %g", dist)
	}
}

func TestProjectOntoSimplex(t *testing.T) {
	// Project (2,-1) onto the 1-simplex: expect vertex (1,0).
	pr := &Problem{
		P:   []float64{2, -1},
		EqA: [][]float64{{1, 1}},
		EqB: []float64{1},
		InA: [][]float64{{1, 0}, {0, 1}},
		InB: []float64{0, 0},
	}
	x, _, err := Solve(pr)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 1, 1e-9) || !almostEq(x[1], 0, 1e-9) {
		t.Errorf("x = %v, want (1,0)", x)
	}
}

func TestInfeasible(t *testing.T) {
	// x >= 1 and x <= 0 simultaneously.
	pr := &Problem{
		P:   []float64{0.5},
		InA: [][]float64{{1}, {-1}},
		InB: []float64{1, 0},
	}
	if _, _, err := Solve(pr); err != ErrInfeasible {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestInfeasibleEqualities(t *testing.T) {
	// x+y=1 and x+y=2.
	pr := &Problem{
		P:   []float64{0, 0},
		EqA: [][]float64{{1, 1}, {1, 1}},
		EqB: []float64{1, 2},
	}
	if _, _, err := Solve(pr); err == nil {
		t.Error("expected infeasibility for contradictory equalities")
	}
}

func TestRedundantEqualities(t *testing.T) {
	// Duplicate consistent equalities must not break the solver.
	pr := &Problem{
		P:   []float64{3, 3},
		EqA: [][]float64{{1, 1}, {2, 2}},
		EqB: []float64{1, 2},
	}
	x, _, err := Solve(pr)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0]+x[1], 1, 1e-9) {
		t.Errorf("x = %v violates x+y=1", x)
	}
}

func TestMindistToHyperplaneCapMatchesHandComputation(t *testing.T) {
	// In d=2 on the simplex: hyperplane (r_i - r_j).v = 0 with
	// r_i - r_j = (1,-1) crosses the simplex at (0.5, 0.5).
	// From w=(0.8,0.2) the mindist is |(0.8,0.2)-(0.5,0.5)| = 0.3*sqrt(2).
	pr := &Problem{
		P:   []float64{0.8, 0.2},
		EqA: [][]float64{{1, 1}, {1, -1}},
		EqB: []float64{1, 0},
		InA: [][]float64{{1, 0}, {0, 1}},
		InB: []float64{0, 0},
	}
	x, dist, err := Solve(pr)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 0.5, 1e-9) || !almostEq(x[1], 0.5, 1e-9) {
		t.Errorf("x = %v", x)
	}
	if !almostEq(dist, 0.3*math.Sqrt2, 1e-9) {
		t.Errorf("dist = %g, want %g", dist, 0.3*math.Sqrt2)
	}
}

// TestAgainstProjectedGradient cross-checks the active-set solver against a
// slow projected-gradient reference on random simplex-restricted problems.
func TestAgainstSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 300; iter++ {
		d := 2 + rng.Intn(5)
		p := make([]float64, d)
		for i := range p {
			p[i] = rng.Float64()
		}
		// Random halfspace a.v >= b through the simplex interior.
		a := make([]float64, d)
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		pr := &Problem{
			P:   p,
			EqA: [][]float64{ones(d)},
			EqB: []float64{1},
			InA: [][]float64{a},
			InB: []float64{0},
		}
		for i := 0; i < d; i++ {
			e := make([]float64, d)
			e[i] = 1
			pr.InA = append(pr.InA, e)
			pr.InB = append(pr.InB, 0)
		}
		x, dist, err := Solve(pr)
		if err == ErrInfeasible {
			// Verify by sampling that the region really looks empty.
			if v := bestSample(rng, d, a, p, 20000); v >= 0 {
				t.Fatalf("iter %d: solver infeasible but sample found dist %g", iter, v)
			}
			continue
		}
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		// Feasibility of the reported point.
		sum, dot := 0.0, 0.0
		for i := range x {
			if x[i] < -1e-8 {
				t.Fatalf("iter %d: negative coordinate %g", iter, x[i])
			}
			sum += x[i]
			dot += a[i] * x[i]
		}
		if !almostEq(sum, 1, 1e-8) || dot < -1e-8 {
			t.Fatalf("iter %d: infeasible answer sum=%g dot=%g", iter, sum, dot)
		}
		// No sampled feasible point may be meaningfully closer.
		if v := bestSample(rng, d, a, p, 5000); v >= 0 && v < dist-1e-6 {
			t.Fatalf("iter %d: sample dist %g < solver dist %g", iter, v, dist)
		}
	}
}

func ones(d int) []float64 {
	o := make([]float64, d)
	for i := range o {
		o[i] = 1
	}
	return o
}

// bestSample returns the smallest distance from p to a sampled feasible
// point of {v on simplex: a.v >= 0}, or -1 if no sample is feasible.
func bestSample(rng *rand.Rand, d int, a, p []float64, n int) float64 {
	best := -1.0
	for s := 0; s < n; s++ {
		v := make([]float64, d)
		sum := 0.0
		for i := range v {
			v[i] = rng.ExpFloat64()
			sum += v[i]
		}
		dot := 0.0
		for i := range v {
			v[i] /= sum
			dot += a[i] * v[i]
		}
		if dot < 0 {
			continue
		}
		dist := 0.0
		for i := range v {
			dd := v[i] - p[i]
			dist += dd * dd
		}
		dist = math.Sqrt(dist)
		if best < 0 || dist < best {
			best = dist
		}
	}
	return best
}

func TestFeasible(t *testing.T) {
	pr := &Problem{
		P:   []float64{0, 0},
		InA: [][]float64{{1, 0}},
		InB: []float64{-1},
	}
	if !Feasible(pr) {
		t.Error("trivially feasible system reported infeasible")
	}
}
