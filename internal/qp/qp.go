// Package qp solves the convex quadratic programs that arise throughout the
// paper's geometry: minimise the squared Euclidean distance from a target
// point p to a polyhedron given by linear equalities and inequalities.
//
//	min  1/2 ||x - p||^2
//	s.t. EqA[i] . x  = EqB[i]   for all equality rows
//	     InA[j] . x >= InB[j]   for all inequality rows
//
// This is exactly the problem class the paper delegates to QuadProg++ [26]
// (Goldfarb-Idnani [31]): the mindist from the seed vector w to the
// intersection of a score-tie hyperplane with the preference simplex
// (Section 4.1), and the mindist from w to a top-region polytope
// (Section 5.3.1). The solver below is the Goldfarb-Idnani dual active-set
// method specialised to an identity Hessian, which makes every step a plain
// projection computable with a small Gram-matrix solve.
//
// Because the dual method starts from the unconstrained optimum and adds
// violated constraints one at a time, it needs no feasible starting point
// and detects infeasibility as a by-product; region-emptiness tests across
// the library rely on that.
//
// The solver state (solution vector, active set, Gram scratch) lives in a
// Workspace so that the QP-heavy callers — region mindists, hull membership
// tests, rho-dominance — can run millions of solves without heap traffic: a
// warmed-up Workspace.Solve performs zero allocations. A Workspace is NOT
// goroutine-safe; give each worker its own.
package qp

import (
	"errors"
	"math"

	"ordu/internal/linalg"
)

// ErrInfeasible is returned when the constraint set is empty.
var ErrInfeasible = errors.New("qp: infeasible constraint system")

// ErrNumeric is returned when the active-set iteration fails to converge,
// which indicates a degenerate or ill-scaled input.
var ErrNumeric = errors.New("qp: failed to converge")

// Problem describes one projection QP. Rows of EqA/InA must all have the
// same dimension as P. The solver only reads the rows, so callers may share
// row slices across problems (and across goroutines).
type Problem struct {
	P   []float64   // target point to project
	EqA [][]float64 // equality constraint normals
	EqB []float64   // equality right-hand sides
	InA [][]float64 // inequality constraint normals (InA[j].x >= InB[j])
	InB []float64   // inequality right-hand sides
}

const (
	tol     = 1e-10
	maxIter = 10000
)

// activeEntry is one working constraint of the active set.
type activeEntry struct {
	idx int
	sgn float64
	u   float64 // dual variable (kept >= 0 for inequalities)
}

// Workspace holds every buffer of one Goldfarb-Idnani solve — solution
// vector, active set, Gram-matrix scratch and the linear-algebra workspace —
// so repeated solves allocate nothing once the buffers have grown to the
// problem size. The zero value is ready for use.
//
// Not goroutine-safe: one Workspace per worker. The solution slice returned
// by Solve aliases the workspace and is valid only until its next Solve;
// callers that retain it must copy.
type Workspace struct {
	lin      linalg.Workspace
	x        []float64
	nq       []float64
	z        []float64
	r        []float64
	gb       []float64
	active   []activeEntry
	cols     []float64   // flat k x d active-column buffer
	gramFlat []float64   // flat k x k Gram matrix
	gramRows [][]float64 // row headers into gramFlat
	actFlag  []bool      // per-constraint active marks for the violation scan

	// Current problem, valid during one Solve call.
	pr     *Problem
	d      int
	ne, ni int
}

// Solve returns the feasible point x closest to pr.P and its distance from
// pr.P. It returns ErrInfeasible when the constraints admit no solution.
// The returned x is freshly allocated; use Workspace.Solve on the hot path.
func Solve(pr *Problem) (x []float64, dist float64, err error) {
	var ws Workspace
	return ws.Solve(pr)
}

// Feasible reports whether the constraint system of pr admits any solution,
// ignoring the objective.
func Feasible(pr *Problem) bool {
	_, _, err := Solve(pr)
	return err == nil
}

// Solve is the workspace form of the package-level Solve. The returned x
// aliases the workspace's solution buffer: it is valid until the next Solve
// on the same workspace and must be copied if retained.
//
//ordlint:noalloc
func (ws *Workspace) Solve(pr *Problem) (x []float64, dist float64, err error) {
	d := len(pr.P)
	ws.pr, ws.d, ws.ne, ws.ni = pr, d, len(pr.EqA), len(pr.InA)
	ws.x = grow(ws.x, d)
	copy(ws.x, pr.P)
	ws.active = ws.active[:0]

	// Install equalities first.
	for i := 0; i < ws.ne; i++ {
		sgn := 1.0
		if ws.slack(i, 1) > tol {
			sgn = -1
		}
		if err := ws.addConstraint(i, sgn); err != nil {
			ws.pr = nil
			return nil, 0, err
		}
	}
	// Then repeatedly add the most violated inequality. The scan marks the
	// active set once per pass (instead of probing it per constraint) and
	// evaluates slacks directly against InA/InB, keeping the dot product in
	// a tight inlinable loop.
	if cap(ws.actFlag) < ws.ne+ws.ni {
		ws.actFlag = make([]bool, ws.ne+ws.ni)
	}
	for iter := 0; iter < maxIter; iter++ {
		flag := ws.actFlag[:ws.ne+ws.ni]
		for i := range flag {
			flag[i] = false
		}
		for _, a := range ws.active {
			flag[a.idx] = true
		}
		worst, q := -tol, -1
		xv := ws.x
		for ii := 0; ii < ws.ni; ii++ {
			if flag[ws.ne+ii] {
				continue
			}
			n := pr.InA[ii]
			s := -pr.InB[ii]
			for j := 0; j < d; j++ {
				s += n[j] * xv[j]
			}
			if s < worst {
				worst, q = s, ws.ne+ii
			}
		}
		if q < 0 {
			dist = 0.0
			for j := 0; j < d; j++ {
				dd := ws.x[j] - pr.P[j]
				dist += dd * dd
			}
			ws.pr = nil
			return ws.x, math.Sqrt(dist), nil
		}
		if err := ws.addConstraint(q, 1); err != nil {
			ws.pr = nil
			return nil, 0, err
		}
	}
	ws.pr = nil
	return nil, 0, ErrNumeric
}

// Feasible is the workspace form of the package-level Feasible.
//
//ordlint:noalloc
func (ws *Workspace) Feasible(pr *Problem) bool {
	_, _, err := ws.Solve(pr)
	return err == nil
}

// grow returns a slice of length n reusing s's storage when possible.
//
//ordlint:noalloc
func grow(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// normal returns the normal vector of constraint i; constraints are
// indexed equalities first, then inequalities. The returned slice aliases
// the Problem matrices installed by Solve: it is read-only and valid until
// the next Solve call on the same Workspace.
//
//ordlint:noalloc
func (ws *Workspace) normal(i int) []float64 {
	if i < ws.ne {
		return ws.pr.EqA[i]
	}
	return ws.pr.InA[i-ws.ne]
}

//
//ordlint:noalloc
func (ws *Workspace) rhs(i int) float64 {
	if i < ws.ne {
		return ws.pr.EqB[i]
	}
	return ws.pr.InB[i-ws.ne]
}

// slack evaluates the working constraint sign*n.x >= sign*b at the current
// x. sign is -1 when an equality is being approached from above (n.x > b),
// so that the working constraint is violated in the standard direction.
//
//ordlint:noalloc
func (ws *Workspace) slack(i int, sgn float64) float64 {
	n := ws.normal(i)
	s := -ws.rhs(i) * sgn
	for j := 0; j < ws.d; j++ {
		s += sgn * n[j] * ws.x[j]
	}
	return s
}

// solveGram computes r = (N^T N)^{-1} N^T nq and z = nq - N r for the
// current active normals N (columns sgn*normal). r is nil when the active
// set is empty; both returned slices alias workspace buffers.
//
//ordlint:noalloc
func (ws *Workspace) solveGram(nq []float64) (r []float64, z []float64, ok bool) {
	d, k := ws.d, len(ws.active)
	ws.z = grow(ws.z, d)
	z = ws.z
	copy(z, nq)
	if k == 0 {
		return nil, z, true
	}
	ws.cols = grow(ws.cols, k*d)
	for a := 0; a < k; a++ {
		na := ws.normal(ws.active[a].idx)
		sgn := ws.active[a].sgn
		col := ws.cols[a*d : (a+1)*d]
		for j := 0; j < d; j++ {
			col[j] = sgn * na[j]
		}
	}
	ws.gramFlat = grow(ws.gramFlat, k*k)
	if cap(ws.gramRows) < k {
		ws.gramRows = make([][]float64, k)
	}
	G := ws.gramRows[:k]
	ws.gb = grow(ws.gb, k)
	for a := 0; a < k; a++ {
		G[a] = ws.gramFlat[a*k : (a+1)*k]
		ca := ws.cols[a*d : (a+1)*d]
		for bI := 0; bI < k; bI++ {
			cb := ws.cols[bI*d : (bI+1)*d]
			s := 0.0
			for j := 0; j < d; j++ {
				s += ca[j] * cb[j]
			}
			G[a][bI] = s
		}
		s := 0.0
		for j := 0; j < d; j++ {
			s += ca[j] * nq[j]
		}
		ws.gb[a] = s
	}
	ws.r = grow(ws.r, k)
	if err := ws.lin.Solve(G, ws.gb, ws.r); err != nil {
		return nil, nil, false
	}
	r = ws.r
	for a := 0; a < k; a++ {
		ca := ws.cols[a*d : (a+1)*d]
		for j := 0; j < d; j++ {
			z[j] -= r[a] * ca[j]
		}
	}
	return r, z, true
}

// addConstraint runs the GI inner loop until constraint q (with working
// sign sgn) is satisfied or infeasibility is proven.
//
//ordlint:noalloc
func (ws *Workspace) addConstraint(q int, sgn float64) error {
	d := ws.d
	ws.nq = grow(ws.nq, d)
	nq := ws.nq
	n := ws.normal(q)
	for j := 0; j < d; j++ {
		nq[j] = sgn * n[j]
	}
	uq := 0.0 // dual variable of q, accumulated across partial steps
	for iter := 0; iter < maxIter; iter++ {
		s := ws.slack(q, sgn)
		if s >= -tol {
			if q < ws.ne {
				// Equalities stay active so later steps preserve them,
				// unless they are linearly dependent on the current
				// active set (then they are already implied).
				_, z, ok := ws.solveGram(nq)
				if !ok {
					return ErrNumeric
				}
				zz := 0.0
				for j := 0; j < d; j++ {
					zz += z[j] * z[j]
				}
				if zz > tol {
					ws.active = append(ws.active, activeEntry{idx: q, sgn: sgn, u: uq})
				}
			}
			return nil
		}
		r, z, ok := ws.solveGram(nq)
		if !ok {
			return ErrNumeric
		}
		zz := 0.0
		for j := 0; j < d; j++ {
			zz += z[j] * z[j]
		}
		t2 := math.Inf(1)
		if zz > tol {
			t2 = -s / zz
		}
		// Partial step bound from active inequality duals.
		t1 := math.Inf(1)
		drop := -1
		for a := range ws.active {
			if ws.active[a].idx < ws.ne {
				continue // equalities are never dropped
			}
			if r != nil && r[a] > tol {
				if lim := ws.active[a].u / r[a]; lim < t1 {
					t1, drop = lim, a
				}
			}
		}
		t := math.Min(t1, t2)
		if math.IsInf(t, 1) {
			return ErrInfeasible
		}
		// Dual update (and primal when a step direction exists).
		for a := range ws.active {
			if r != nil {
				ws.active[a].u -= t * r[a]
			}
		}
		uq += t
		if zz > tol {
			for j := 0; j < d; j++ {
				ws.x[j] += t * z[j]
			}
		}
		// t is math.Min(t1, t2): comparing against the stored copy asks
		// which branch produced it, not whether two computed quantities
		// coincide numerically.
		if t == t2 && !math.IsInf(t2, 1) { //ordlint:allow floatcmp — branch discrimination on a stored copy
			ws.active = append(ws.active, activeEntry{idx: q, sgn: sgn, u: uq})
			return nil
		}
		// Partial step: drop the blocking constraint and retry q with
		// the accumulated dual uq, exactly as in Goldfarb-Idnani.
		ws.active = append(ws.active[:drop], ws.active[drop+1:]...)
	}
	return ErrNumeric
}
