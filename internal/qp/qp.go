// Package qp solves the convex quadratic programs that arise throughout the
// paper's geometry: minimise the squared Euclidean distance from a target
// point p to a polyhedron given by linear equalities and inequalities.
//
//	min  1/2 ||x - p||^2
//	s.t. EqA[i] . x  = EqB[i]   for all equality rows
//	     InA[j] . x >= InB[j]   for all inequality rows
//
// This is exactly the problem class the paper delegates to QuadProg++ [26]
// (Goldfarb-Idnani [31]): the mindist from the seed vector w to the
// intersection of a score-tie hyperplane with the preference simplex
// (Section 4.1), and the mindist from w to a top-region polytope
// (Section 5.3.1). The solver below is the Goldfarb-Idnani dual active-set
// method specialised to an identity Hessian, which makes every step a plain
// projection computable with a small Gram-matrix solve.
//
// Because the dual method starts from the unconstrained optimum and adds
// violated constraints one at a time, it needs no feasible starting point
// and detects infeasibility as a by-product; region-emptiness tests across
// the library rely on that.
package qp

import (
	"errors"
	"math"

	"ordu/internal/linalg"
)

// ErrInfeasible is returned when the constraint set is empty.
var ErrInfeasible = errors.New("qp: infeasible constraint system")

// ErrNumeric is returned when the active-set iteration fails to converge,
// which indicates a degenerate or ill-scaled input.
var ErrNumeric = errors.New("qp: failed to converge")

// Problem describes one projection QP. Rows of EqA/InA must all have the
// same dimension as P.
type Problem struct {
	P   []float64   // target point to project
	EqA [][]float64 // equality constraint normals
	EqB []float64   // equality right-hand sides
	InA [][]float64 // inequality constraint normals (InA[j].x >= InB[j])
	InB []float64   // inequality right-hand sides
}

const (
	tol     = 1e-10
	maxIter = 10000
)

// Solve returns the feasible point x closest to pr.P and its distance from
// pr.P. It returns ErrInfeasible when the constraints admit no solution.
func Solve(pr *Problem) (x []float64, dist float64, err error) {
	d := len(pr.P)
	x = append([]float64(nil), pr.P...)

	// Constraints are indexed equalities first, then inequalities.
	ne, ni := len(pr.EqA), len(pr.InA)
	normal := func(i int) []float64 {
		if i < ne {
			return pr.EqA[i]
		}
		return pr.InA[i-ne]
	}
	rhs := func(i int) float64 {
		if i < ne {
			return pr.EqB[i]
		}
		return pr.InB[i-ne]
	}
	// sign[i] is -1 when an equality is being approached from above
	// (n.x > b), so that the working constraint sign[i]*n.x >= sign[i]*b is
	// violated in the standard direction.
	slack := func(i int, sgn float64) float64 {
		n := normal(i)
		s := -rhs(i) * sgn
		for j := 0; j < d; j++ {
			s += sgn * n[j] * x[j]
		}
		return s
	}

	type activeEntry struct {
		idx int
		sgn float64
		u   float64 // dual variable (kept >= 0 for inequalities)
	}
	var active []activeEntry

	// solveGram computes r = (N^T N)^{-1} N^T nq and z = nq - N r for the
	// current active normals N (columns sgn*normal).
	solveGram := func(nq []float64) (r []float64, z []float64, ok bool) {
		k := len(active)
		z = append([]float64(nil), nq...)
		if k == 0 {
			return nil, z, true
		}
		G := make([][]float64, k)
		b := make([]float64, k)
		cols := make([][]float64, k)
		for a := 0; a < k; a++ {
			na := normal(active[a].idx)
			col := make([]float64, d)
			for j := 0; j < d; j++ {
				col[j] = active[a].sgn * na[j]
			}
			cols[a] = col
		}
		for a := 0; a < k; a++ {
			G[a] = make([]float64, k)
			for bI := 0; bI < k; bI++ {
				s := 0.0
				for j := 0; j < d; j++ {
					s += cols[a][j] * cols[bI][j]
				}
				G[a][bI] = s
			}
			s := 0.0
			for j := 0; j < d; j++ {
				s += cols[a][j] * nq[j]
			}
			b[a] = s
		}
		r, errS := linalg.Solve(G, b)
		if errS != nil {
			return nil, nil, false
		}
		for a := 0; a < k; a++ {
			for j := 0; j < d; j++ {
				z[j] -= r[a] * cols[a][j]
			}
		}
		return r, z, true
	}

	// addConstraint runs the GI inner loop until constraint q (with working
	// sign sgn) is satisfied or infeasibility is proven.
	addConstraint := func(q int, sgn float64) error {
		nq := make([]float64, d)
		n := normal(q)
		for j := 0; j < d; j++ {
			nq[j] = sgn * n[j]
		}
		uq := 0.0 // dual variable of q, accumulated across partial steps
		for iter := 0; iter < maxIter; iter++ {
			s := slack(q, sgn)
			if s >= -tol {
				if q < ne {
					// Equalities stay active so later steps preserve them,
					// unless they are linearly dependent on the current
					// active set (then they are already implied).
					_, z, ok := solveGram(nq)
					if !ok {
						return ErrNumeric
					}
					zz := 0.0
					for j := 0; j < d; j++ {
						zz += z[j] * z[j]
					}
					if zz > tol {
						active = append(active, activeEntry{idx: q, sgn: sgn, u: uq})
					}
				}
				return nil
			}
			r, z, ok := solveGram(nq)
			if !ok {
				return ErrNumeric
			}
			zz := 0.0
			for j := 0; j < d; j++ {
				zz += z[j] * z[j]
			}
			t2 := math.Inf(1)
			if zz > tol {
				t2 = -s / zz
			}
			// Partial step bound from active inequality duals.
			t1 := math.Inf(1)
			drop := -1
			for a := range active {
				if active[a].idx < ne {
					continue // equalities are never dropped
				}
				if r != nil && r[a] > tol {
					if lim := active[a].u / r[a]; lim < t1 {
						t1, drop = lim, a
					}
				}
			}
			t := math.Min(t1, t2)
			if math.IsInf(t, 1) {
				return ErrInfeasible
			}
			// Dual update (and primal when a step direction exists).
			for a := range active {
				if r != nil {
					active[a].u -= t * r[a]
				}
			}
			uq += t
			if zz > tol {
				for j := 0; j < d; j++ {
					x[j] += t * z[j]
				}
			}
			// t is math.Min(t1, t2): comparing against the stored copy asks
			// which branch produced it, not whether two computed quantities
			// coincide numerically.
			if t == t2 && !math.IsInf(t2, 1) { //ordlint:allow floatcmp — branch discrimination on a stored copy
				active = append(active, activeEntry{idx: q, sgn: sgn, u: uq})
				return nil
			}
			// Partial step: drop the blocking constraint and retry q with
			// the accumulated dual uq, exactly as in Goldfarb-Idnani.
			active = append(active[:drop], active[drop+1:]...)
		}
		return ErrNumeric
	}

	// Install equalities first.
	for i := 0; i < ne; i++ {
		sgn := 1.0
		if slack(i, 1) > tol {
			sgn = -1
		}
		if err := addConstraint(i, sgn); err != nil {
			return nil, 0, err
		}
	}
	// Then repeatedly add the most violated inequality.
	for iter := 0; iter < maxIter; iter++ {
		worst, q := -tol, -1
		for i := ne; i < ne+ni; i++ {
			inActive := false
			for _, a := range active {
				if a.idx == i {
					inActive = true
					break
				}
			}
			if inActive {
				continue
			}
			if s := slack(i, 1); s < worst {
				worst, q = s, i
			}
		}
		if q < 0 {
			dist = 0.0
			for j := 0; j < d; j++ {
				dd := x[j] - pr.P[j]
				dist += dd * dd
			}
			return x, math.Sqrt(dist), nil
		}
		if err := addConstraint(q, 1); err != nil {
			return nil, 0, err
		}
	}
	return nil, 0, ErrNumeric
}

// Feasible reports whether the constraint system of pr admits any solution,
// ignoring the objective.
func Feasible(pr *Problem) bool {
	_, _, err := Solve(pr)
	return err == nil
}
