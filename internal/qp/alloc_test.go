package qp

import (
	"testing"

	"ordu/internal/raceflag"
)

// allocProblem returns a small projection QP with active inequality
// constraints (the target sits outside the feasible region).
func allocProblem() *Problem {
	return &Problem{
		P:   []float64{1.2, -0.3, 0.1},
		EqA: [][]float64{{1, 1, 1}},
		EqB: []float64{1},
		InA: [][]float64{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}},
		InB: []float64{0, 0, 0},
	}
}

// TestSolveWSNoAllocs pins the workspace-reuse contract: once a Workspace
// has solved a problem shape, further Solve calls perform zero heap
// allocations.
func TestSolveWSNoAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	pr := allocProblem()
	var ws Workspace
	if _, _, err := ws.Solve(pr); err != nil { // warm-up
		t.Fatalf("warm-up Solve: %v", err)
	}
	avg := testing.AllocsPerRun(100, func() {
		if _, _, err := ws.Solve(pr); err != nil {
			t.Fatalf("Solve: %v", err)
		}
	})
	if avg != 0 {
		t.Fatalf("warmed Workspace.Solve allocates %.1f times per call, want 0", avg)
	}
}

// TestFeasibleWSNoAllocs is the same contract for the feasibility probe.
func TestFeasibleWSNoAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	pr := allocProblem()
	var ws Workspace
	ws.Feasible(pr) // warm-up
	avg := testing.AllocsPerRun(100, func() {
		if !ws.Feasible(pr) {
			t.Fatal("problem unexpectedly infeasible")
		}
	})
	if avg != 0 {
		t.Fatalf("warmed Workspace.Feasible allocates %.1f times per call, want 0", avg)
	}
}
