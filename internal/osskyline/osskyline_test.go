package osskyline

import (
	"math/rand"
	"testing"

	"ordu/internal/geom"
	"ordu/internal/rtree"
)

func TestTopMMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for _, d := range []int{2, 3, 4} {
		pts := make([]geom.Vector, 300)
		for i := range pts {
			p := make(geom.Vector, d)
			for j := range p {
				p[j] = rng.Float64()
			}
			pts[i] = p
		}
		tr := rtree.BulkLoad(pts)
		got := TopM(tr, 10)

		// Brute force: skyline members with dominance counts.
		type sc struct{ id, count int }
		var brute []sc
		for i, p := range pts {
			dominated := false
			count := 0
			for j, q := range pts {
				if i == j {
					continue
				}
				if q.Dominates(p) {
					dominated = true
					break
				}
			}
			if dominated {
				continue
			}
			for j, q := range pts {
				if i != j && p.Dominates(q) {
					count++
				}
			}
			brute = append(brute, sc{i, count})
		}
		// Validate every returned record: on skyline, correct count.
		bruteMap := map[int]int{}
		for _, b := range brute {
			bruteMap[b.id] = b.count
		}
		for _, g := range got {
			want, onSky := bruteMap[g.ID]
			if !onSky {
				t.Fatalf("d=%d: id %d not on skyline", d, g.ID)
			}
			if g.Count != want {
				t.Fatalf("d=%d: id %d count %d, want %d", d, g.ID, g.Count, want)
			}
		}
		// Counts must be the m largest.
		if len(got) > 0 && len(brute) > len(got) {
			min := got[len(got)-1].Count
			better := 0
			for _, b := range brute {
				if b.count > min {
					better++
				}
			}
			if better > len(got) {
				t.Fatalf("d=%d: %d skyline records dominate more than the selected minimum", d, better)
			}
		}
	}
}

func TestTopMSmallerSkyline(t *testing.T) {
	// Strongly correlated data: tiny skyline; TopM(m) returns all of it.
	pts := []geom.Vector{
		{0.9, 0.9}, {0.5, 0.5}, {0.4, 0.6}, {0.2, 0.2},
	}
	tr := rtree.BulkLoad(pts)
	got := TopM(tr, 10)
	if len(got) != 1 || got[0].ID != 0 {
		t.Fatalf("got %v", got)
	}
	if got[0].Count != 3 {
		t.Fatalf("count = %d, want 3", got[0].Count)
	}
}
