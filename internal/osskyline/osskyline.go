// Package osskyline implements the output-size-specified skyline baseline
// used in the paper's qualitative study (Section 6.1): the m skyline
// records that dominate the most non-skyline records, following Lin et
// al.'s "k most representative skyline" definition [49] — the most cited
// full-dimensionality OSS-skyline formulation. Dominance counts are
// computed with R-tree subtree aggregation rather than a linear scan.
package osskyline

import (
	"sort"

	"ordu/internal/geom"
	"ordu/internal/rtree"
	"ordu/internal/skyband"
)

// Result is one selected representative with its dominance count.
type Result struct {
	ID    int
	Point geom.Vector
	Count int // number of records it dominates
}

// TopM returns the m skyline records with the highest dominance counts.
// Fewer are returned when the skyline itself is smaller than m. Ties in
// dominance count break towards the smaller id, keeping results
// deterministic.
func TopM(tree *rtree.Tree, m int) []Result {
	sky := skyband.Skyline(tree)
	res := make([]Result, 0, len(sky))
	for _, s := range sky {
		res = append(res, Result{
			ID:    s.ID,
			Point: s.Point,
			Count: tree.CountDominated(s.Point),
		})
	}
	sort.Slice(res, func(i, j int) bool {
		if res[i].Count != res[j].Count {
			return res[i].Count > res[j].Count
		}
		return res[i].ID < res[j].ID
	})
	if len(res) > m {
		res = res[:m]
	}
	return res
}
