// Package linalg provides the small dense linear-algebra kernels needed by
// the geometric substrates: LU solves with partial pivoting, hyperplane
// fitting (null-space of a (d-1) x d system), and Gram-matrix assembly.
// All systems in this library are tiny (dimension at most ~10), so the
// implementations favour clarity and numerical robustness over blocking.
package linalg

import (
	"errors"
	"math"
)

// ErrSingular is returned when a linear system has no unique solution at the
// working precision.
var ErrSingular = errors.New("linalg: singular matrix")

// Solve solves the n x n system A x = b using Gaussian elimination with
// partial pivoting. A and b are not modified.
func Solve(A [][]float64, b []float64) ([]float64, error) {
	n := len(A)
	// Work on copies.
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n+1)
		copy(m[i], A[i])
		m[i][n] = b[i]
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		piv, best := col, math.Abs(m[col][col])
		for r := col + 1; r < n; r++ {
			if a := math.Abs(m[r][col]); a > best {
				piv, best = r, a
			}
		}
		if best < 1e-13 {
			return nil, ErrSingular
		}
		m[col], m[piv] = m[piv], m[col]
		inv := 1 / m[col][col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := m[i][n]
		for j := i + 1; j < n; j++ {
			s -= m[i][j] * x[j]
		}
		x[i] = s / m[i][i]
	}
	return x, nil
}

// HyperplaneThrough fits a hyperplane passing through the d points pts (each
// of dimension d). It returns a normal vector n and offset c such that
// n . x = c for every input point. The normal is not normalised and its
// orientation is arbitrary. Returns ErrSingular if the points are affinely
// dependent.
func HyperplaneThrough(pts [][]float64) (normal []float64, offset float64, err error) {
	d := len(pts[0])
	if len(pts) != d {
		return nil, 0, errors.New("linalg: hyperplane needs exactly d points")
	}
	// Rows: pts[i] - pts[0] for i = 1..d-1; find null vector via elimination
	// of the (d-1) x d system M n = 0.
	rows := make([][]float64, d-1)
	for i := 1; i < d; i++ {
		r := make([]float64, d)
		for j := 0; j < d; j++ {
			r[j] = pts[i][j] - pts[0][j]
		}
		rows[i-1] = r
	}
	normal, err = NullVector(rows, d)
	if err != nil {
		return nil, 0, err
	}
	for j := 0; j < d; j++ {
		offset += normal[j] * pts[0][j]
	}
	return normal, offset, nil
}

// NullVector returns a non-zero vector in the null space of the given
// (len(rows)) x d matrix, assuming the rows are linearly independent and
// len(rows) == d-1 (a one-dimensional null space). Returns ErrSingular when
// the rows are dependent.
func NullVector(rows [][]float64, d int) ([]float64, error) {
	k := len(rows)
	if k != d-1 {
		return nil, errors.New("linalg: null vector requires d-1 rows")
	}
	// Row-reduce a copy, tracking pivot columns.
	m := make([][]float64, k)
	for i := range m {
		m[i] = append([]float64(nil), rows[i]...)
	}
	pivCols := make([]int, 0, k)
	row := 0
	for col := 0; col < d && row < k; col++ {
		piv, best := -1, 1e-12
		for r := row; r < k; r++ {
			if a := math.Abs(m[r][col]); a > best {
				piv, best = r, a
			}
		}
		if piv < 0 {
			continue
		}
		m[row], m[piv] = m[piv], m[row]
		inv := 1 / m[row][col]
		for c := col; c < d; c++ {
			m[row][c] *= inv
		}
		for r := 0; r < k; r++ {
			if r == row {
				continue
			}
			f := m[r][col]
			if f == 0 {
				continue
			}
			for c := col; c < d; c++ {
				m[r][c] -= f * m[row][c]
			}
		}
		pivCols = append(pivCols, col)
		row++
	}
	if row < k {
		return nil, ErrSingular
	}
	// The single free column yields the null vector.
	isPiv := make([]bool, d)
	for _, c := range pivCols {
		isPiv[c] = true
	}
	free := -1
	for c := 0; c < d; c++ {
		if !isPiv[c] {
			free = c
			break
		}
	}
	if free < 0 {
		return nil, ErrSingular
	}
	n := make([]float64, d)
	n[free] = 1
	for i, c := range pivCols {
		n[c] = -m[i][free]
	}
	return n, nil
}
