// Package linalg provides the small dense linear-algebra kernels needed by
// the geometric substrates: LU solves with partial pivoting, hyperplane
// fitting (null-space of a (d-1) x d system), and Gram-matrix assembly.
// All systems in this library are tiny (dimension at most ~10), so the
// implementations favour clarity and numerical robustness over blocking.
package linalg

import (
	"errors"
	"math"
)

// ErrSingular is returned when a linear system has no unique solution at the
// working precision.
var ErrSingular = errors.New("linalg: singular matrix")

// Shape errors are package-level sentinels rather than per-call errors.New:
// the fitting kernels run on the allocation-free hot path, and constructing
// a fresh error on every malformed input would allocate inside them.
var (
	errHyperplanePoints = errors.New("linalg: hyperplane needs exactly d points")
	errNullVectorRows   = errors.New("linalg: null vector requires d-1 rows")
)

// Workspace holds the elimination scratch of the solvers so that repeated
// solves of similarly sized systems perform no heap allocations after
// warm-up. The zero value is ready for use. A Workspace is not
// goroutine-safe; use one per worker.
type Workspace struct {
	flat    []float64   // backing storage for the augmented matrix
	rows    [][]float64 // row headers into flat
	pivCols []int
	isPiv   []bool
	x       []float64
}

// matrix returns an r x c scratch matrix backed by the workspace.
//
//ordlint:noalloc
func (ws *Workspace) matrix(r, c int) [][]float64 {
	ws.flat = growFloats(ws.flat, r*c)
	if cap(ws.rows) < r {
		ws.rows = make([][]float64, r)
	}
	ws.rows = ws.rows[:r]
	for i := 0; i < r; i++ {
		ws.rows[i] = ws.flat[i*c : (i+1)*c]
	}
	return ws.rows
}

// growFloats returns a slice of length n reusing s's storage when possible.
//
//ordlint:noalloc
func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// Solve solves the n x n system A x = b using Gaussian elimination with
// partial pivoting. A and b are not modified.
func Solve(A [][]float64, b []float64) ([]float64, error) {
	var ws Workspace
	x := make([]float64, len(A))
	if err := ws.Solve(A, b, x); err != nil {
		return nil, err
	}
	return x, nil
}

// Solve is the workspace form of the package-level Solve: it writes the
// solution into x (which must have length n) and reuses the receiver's
// scratch, performing no allocations once the workspace is warm.
//
//ordlint:noalloc
func (ws *Workspace) Solve(A [][]float64, b []float64, x []float64) error {
	n := len(A)
	// Work on copies in the workspace's augmented-matrix scratch.
	m := ws.matrix(n, n+1)
	for i := range m {
		copy(m[i], A[i])
		m[i][n] = b[i]
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		piv, best := col, math.Abs(m[col][col])
		for r := col + 1; r < n; r++ {
			if a := math.Abs(m[r][col]); a > best {
				piv, best = r, a
			}
		}
		if best < 1e-13 {
			return ErrSingular
		}
		m[col], m[piv] = m[piv], m[col]
		inv := 1 / m[col][col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] * inv
			if f == 0 { //ordlint:allow floatcmp — exact zero needs no elimination; any nonzero must be eliminated
				continue
			}
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	for i := n - 1; i >= 0; i-- {
		s := m[i][n]
		for j := i + 1; j < n; j++ {
			s -= m[i][j] * x[j]
		}
		x[i] = s / m[i][i]
	}
	return nil
}

// HyperplaneThrough fits a hyperplane passing through the d points pts (each
// of dimension d). It returns a normal vector n and offset c such that
// n . x = c for every input point. The normal is not normalised and its
// orientation is arbitrary. Returns ErrSingular if the points are affinely
// dependent.
func HyperplaneThrough(pts [][]float64) (normal []float64, offset float64, err error) {
	var ws Workspace
	normal = make([]float64, len(pts[0]))
	offset, err = ws.HyperplaneThrough(pts, normal)
	if err != nil {
		return nil, 0, err
	}
	return normal, offset, nil
}

// HyperplaneThrough is the workspace form of the package-level
// HyperplaneThrough: it writes the (unnormalised) normal into normal, which
// must have length d, and reuses the receiver's scratch.
//
//ordlint:noalloc
func (ws *Workspace) HyperplaneThrough(pts [][]float64, normal []float64) (offset float64, err error) {
	d := len(pts[0])
	if len(pts) != d {
		return 0, errHyperplanePoints
	}
	// Rows: pts[i] - pts[0] for i = 1..d-1; find null vector via elimination
	// of the (d-1) x d system M n = 0. The matrix scratch doubles as the
	// difference rows (NullVectorInto row-reduces them in place).
	rows := ws.matrix(d-1, d)
	for i := 1; i < d; i++ {
		for j := 0; j < d; j++ {
			rows[i-1][j] = pts[i][j] - pts[0][j]
		}
	}
	if err := ws.nullVectorDestructive(rows, d, normal); err != nil {
		return 0, err
	}
	for j := 0; j < d; j++ {
		offset += normal[j] * pts[0][j]
	}
	return offset, nil
}

// NullVector returns a non-zero vector in the null space of the given
// (len(rows)) x d matrix, assuming the rows are linearly independent and
// len(rows) == d-1 (a one-dimensional null space). Returns ErrSingular when
// the rows are dependent.
func NullVector(rows [][]float64, d int) ([]float64, error) {
	var ws Workspace
	// Row-reduce a copy.
	m := ws.matrix(len(rows), d)
	for i := range m {
		copy(m[i], rows[i])
	}
	n := make([]float64, d)
	if err := ws.nullVectorDestructive(m, d, n); err != nil {
		return nil, err
	}
	return n, nil
}

// nullVectorDestructive computes a null vector of the (d-1) x d matrix m,
// writing it into out (length d). m is destroyed. The pivot bookkeeping
// lives in the workspace so warmed-up calls allocate nothing.
//
//ordlint:noalloc
func (ws *Workspace) nullVectorDestructive(m [][]float64, d int, out []float64) error {
	k := len(m)
	if k != d-1 {
		return errNullVectorRows
	}
	if cap(ws.pivCols) < k {
		ws.pivCols = make([]int, 0, k)
	}
	pivCols := ws.pivCols[:0]
	row := 0
	for col := 0; col < d && row < k; col++ {
		piv, best := -1, 1e-12
		for r := row; r < k; r++ {
			if a := math.Abs(m[r][col]); a > best {
				piv, best = r, a
			}
		}
		if piv < 0 {
			continue
		}
		m[row], m[piv] = m[piv], m[row]
		inv := 1 / m[row][col]
		for c := col; c < d; c++ {
			m[row][c] *= inv
		}
		for r := 0; r < k; r++ {
			if r == row {
				continue
			}
			f := m[r][col]
			if f == 0 { //ordlint:allow floatcmp — exact zero needs no elimination; any nonzero must be eliminated
				continue
			}
			for c := col; c < d; c++ {
				m[r][c] -= f * m[row][c]
			}
		}
		pivCols = append(pivCols, col)
		row++
	}
	if row < k {
		return ErrSingular
	}
	// The single free column yields the null vector.
	if cap(ws.isPiv) < d {
		ws.isPiv = make([]bool, d)
	}
	isPiv := ws.isPiv[:d]
	for c := range isPiv {
		isPiv[c] = false
	}
	for _, c := range pivCols {
		isPiv[c] = true
	}
	free := -1
	for c := 0; c < d; c++ {
		if !isPiv[c] {
			free = c
			break
		}
	}
	if free < 0 {
		return ErrSingular
	}
	for j := range out {
		out[j] = 0
	}
	out[free] = 1
	for i, c := range pivCols {
		out[c] = -m[i][free]
	}
	return nil
}
