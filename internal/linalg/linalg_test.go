package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func TestSolveSimple(t *testing.T) {
	A := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	x, err := Solve(A, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Errorf("x = %v, want [1 3]", x)
	}
}

func TestSolveSingular(t *testing.T) {
	A := [][]float64{{1, 2}, {2, 4}}
	if _, err := Solve(A, []float64{1, 2}); err != ErrSingular {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

func TestSolveRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 200; iter++ {
		n := 1 + rng.Intn(7)
		A := make([][]float64, n)
		xTrue := make([]float64, n)
		for i := range A {
			A[i] = make([]float64, n)
			for j := range A[i] {
				A[i][j] = rng.NormFloat64()
			}
			xTrue[i] = rng.NormFloat64()
		}
		b := make([]float64, n)
		for i := range b {
			for j := range xTrue {
				b[i] += A[i][j] * xTrue[j]
			}
		}
		x, err := Solve(A, b)
		if err != nil {
			continue // singular random draw; acceptable
		}
		for i := range x {
			if math.Abs(x[i]-xTrue[i]) > 1e-7 {
				t.Fatalf("iter %d: x[%d] = %g, want %g", iter, i, x[i], xTrue[i])
			}
		}
	}
}

func TestSolveDoesNotClobberInput(t *testing.T) {
	A := [][]float64{{3, 1}, {1, 2}}
	b := []float64{4, 3}
	if _, err := Solve(A, b); err != nil {
		t.Fatal(err)
	}
	if A[0][0] != 3 || A[1][1] != 2 || b[0] != 4 {
		t.Error("Solve modified its inputs")
	}
}

func TestHyperplaneThrough2D(t *testing.T) {
	pts := [][]float64{{0, 1}, {1, 0}}
	n, c, err := HyperplaneThrough(pts)
	if err != nil {
		t.Fatal(err)
	}
	// Plane x+y=1 up to scale: n[0] == n[1], c == n[0].
	if math.Abs(n[0]-n[1]) > 1e-12*math.Abs(n[0]) || math.Abs(c-n[0]) > 1e-12 {
		t.Errorf("normal %v offset %g does not describe x+y=1", n, c)
	}
}

func TestHyperplaneThroughRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 100; iter++ {
		d := 2 + rng.Intn(5)
		pts := make([][]float64, d)
		for i := range pts {
			pts[i] = make([]float64, d)
			for j := range pts[i] {
				pts[i][j] = rng.Float64()
			}
		}
		n, c, err := HyperplaneThrough(pts)
		if err != nil {
			continue // degenerate draw
		}
		norm := 0.0
		for _, v := range n {
			norm += v * v
		}
		if norm < 1e-18 {
			t.Fatal("zero normal returned")
		}
		for _, p := range pts {
			s := -c
			for j := range p {
				s += n[j] * p[j]
			}
			if math.Abs(s) > 1e-6*math.Sqrt(norm) {
				t.Fatalf("point %v off plane by %g", p, s)
			}
		}
	}
}

func TestHyperplaneWrongCount(t *testing.T) {
	if _, _, err := HyperplaneThrough([][]float64{{1, 2}}); err == nil {
		t.Error("expected error for wrong point count")
	}
}

func TestNullVectorDependentRows(t *testing.T) {
	rows := [][]float64{{1, 2, 3}, {2, 4, 6}}
	if _, err := NullVector(rows, 3); err == nil {
		t.Error("expected ErrSingular for dependent rows")
	}
}

func TestNullVector(t *testing.T) {
	rows := [][]float64{{1, 0, 0}, {0, 1, 0}}
	n, err := NullVector(rows, 3)
	if err != nil {
		t.Fatal(err)
	}
	if n[0] != 0 || n[1] != 0 || n[2] == 0 {
		t.Errorf("null vector = %v, want along e3", n)
	}
}
