package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"ordu"
	"ordu/internal/data"
)

// testServer builds a server over one ANTI dataset named "main".
func testServer(t *testing.T, cfg Config, n int) *Server {
	t.Helper()
	s := New(cfg)
	s.AddDataset("main", testDataset(t, n))
	return s
}

func testDataset(t *testing.T, n int) *ordu.Dataset {
	t.Helper()
	pts := data.Synthetic(data.ANTI, n, 3, 42)
	recs := make([][]float64, len(pts))
	for i, p := range pts {
		recs[i] = p
	}
	ds, err := ordu.NewDataset(recs)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func do(t *testing.T, h http.Handler, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func decode[T any](t *testing.T, rec *httptest.ResponseRecorder) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		t.Fatalf("bad JSON body %q: %v", rec.Body.String(), err)
	}
	return v
}

func TestQueryORDHappyPath(t *testing.T) {
	s := testServer(t, Config{}, 400)
	rec := do(t, s.Handler(), "POST", "/query/ord",
		`{"dataset":"main","w":[0.4,0.3,0.3],"k":3,"m":15}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	resp := decode[QueryResponse](t, rec)
	if resp.Op != "ord" || len(resp.Records) != 15 {
		t.Fatalf("op=%q records=%d", resp.Op, len(resp.Records))
	}
	if resp.Rho <= 0 {
		t.Fatalf("rho = %g", resp.Rho)
	}
	for i, r := range resp.Records {
		if r.Radius == nil {
			t.Fatalf("record %d missing inflection radius", i)
		}
		if i > 0 && *r.Radius < *resp.Records[i-1].Radius {
			t.Fatal("radii not sorted")
		}
	}
	if *resp.Records[14].Radius != resp.Rho {
		t.Fatal("rho != largest inflection radius")
	}
}

func TestQueryORUHappyPath(t *testing.T) {
	s := testServer(t, Config{}, 400)
	rec := do(t, s.Handler(), "POST", "/query/oru",
		`{"dataset":"main","w":[0.3,0.3,0.4],"k":2,"m":10}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	resp := decode[QueryResponse](t, rec)
	if resp.Op != "oru" || len(resp.Records) != 10 {
		t.Fatalf("op=%q records=%d", resp.Op, len(resp.Records))
	}
	if len(resp.Regions) == 0 {
		t.Fatal("no regions")
	}
	for i, reg := range resp.Regions {
		if len(reg.TopK) != 2 {
			t.Fatalf("region %d has top-%d", i, len(reg.TopK))
		}
		if len(reg.Witness) != 3 {
			t.Fatalf("region %d witness %v", i, reg.Witness)
		}
	}
	// Parallel partitioning returns the identical result.
	par := do(t, s.Handler(), "POST", "/query/oru",
		`{"dataset":"main","w":[0.3,0.3,0.4],"k":2,"m":10,"workers":4}`)
	if par.Code != http.StatusOK {
		t.Fatalf("parallel status %d", par.Code)
	}
	if par.Header().Get("X-Cache") != "HIT" {
		// workers is excluded from the cache key on purpose.
		t.Fatal("parallel run with same (w,k,m) should hit the cache")
	}
}

func TestQueryBadRequests(t *testing.T) {
	s := testServer(t, Config{}, 100)
	cases := []struct {
		name string
		path string
		body string
		want int
	}{
		{"malformed JSON", "/query/ord", `{"dataset":`, 400},
		{"missing dataset", "/query/ord", `{"w":[0.5,0.5],"k":1,"m":2}`, 400},
		{"missing w", "/query/ord", `{"dataset":"main","k":1,"m":2}`, 400},
		{"unknown dataset", "/query/ord", `{"dataset":"nope","w":[0.4,0.3,0.3],"k":1,"m":2}`, 404},
		{"wrong dimension", "/query/ord", `{"dataset":"main","w":[0.5,0.5],"k":1,"m":2}`, 400},
		{"off simplex", "/query/ord", `{"dataset":"main","w":[0.9,0.9,0.9],"k":1,"m":2}`, 400},
		{"negative component", "/query/oru", `{"dataset":"main","w":[-0.2,0.6,0.6],"k":1,"m":2}`, 400},
		{"k zero", "/query/oru", `{"dataset":"main","w":[0.4,0.3,0.3],"k":0,"m":2}`, 400},
		{"m below k", "/query/ord", `{"dataset":"main","w":[0.4,0.3,0.3],"k":5,"m":2}`, 400},
		{"m beyond dataset", "/query/ord", `{"dataset":"main","w":[0.4,0.3,0.3],"k":1,"m":500}`, 422},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := do(t, s.Handler(), "POST", tc.path, tc.body)
			if rec.Code != tc.want {
				t.Fatalf("status %d, want %d: %s", rec.Code, tc.want, rec.Body.String())
			}
			if e := decode[ErrorResponse](t, rec); e.Error == "" {
				t.Fatal("empty error message")
			}
		})
	}
	// Wrong method on a query route.
	if rec := do(t, s.Handler(), "GET", "/query/ord", ""); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /query/ord = %d, want 405", rec.Code)
	}
}

func TestOverloadReturns429(t *testing.T) {
	s := testServer(t, Config{Workers: 1, QueueDepth: -1}, 100)
	// Occupy the only worker slot; the queue has zero depth, so the next
	// request must be shed immediately.
	release, err := s.pool.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rec := do(t, s.Handler(), "POST", "/query/ord",
		`{"dataset":"main","w":[0.4,0.3,0.3],"k":2,"m":5}`)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	release()
	rec = do(t, s.Handler(), "POST", "/query/ord",
		`{"dataset":"main","w":[0.4,0.3,0.3],"k":2,"m":5}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status after release %d: %s", rec.Code, rec.Body.String())
	}
	snap := s.Snapshot()
	if snap.Responses["429"] != 1 {
		t.Fatalf("429 counter = %d", snap.Responses["429"])
	}
}

func TestDeadlineWhileQueuedReturns504(t *testing.T) {
	s := testServer(t, Config{Workers: 1, QueueDepth: 1}, 100)
	release, err := s.pool.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	// Admitted into the queue, but the worker never frees up within the
	// 1ms deadline.
	rec := do(t, s.Handler(), "POST", "/query/ord",
		`{"dataset":"main","w":[0.4,0.3,0.3],"k":2,"m":5,"timeout_ms":1}`)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", rec.Code, rec.Body.String())
	}
}

func TestDeadlineCancelsInFlightQuery(t *testing.T) {
	// A big anticorrelated ORU query takes far longer than 1ms; the
	// cooperative checks inside internal/core must abort it.
	s := testServer(t, Config{}, 20000)
	rec := do(t, s.Handler(), "POST", "/query/oru",
		`{"dataset":"main","w":[0.4,0.3,0.3],"k":5,"m":60,"timeout_ms":1}`)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", rec.Code, rec.Body.String())
	}
	if e := decode[ErrorResponse](t, rec); !strings.Contains(e.Error, "deadline") {
		t.Fatalf("error %q does not mention the deadline", e.Error)
	}
}

func TestCacheHitReturnsIdenticalBody(t *testing.T) {
	s := testServer(t, Config{}, 300)
	body := `{"dataset":"main","w":[0.5,0.3,0.2],"k":3,"m":12}`
	first := do(t, s.Handler(), "POST", "/query/ord", body)
	if first.Code != 200 || first.Header().Get("X-Cache") != "MISS" {
		t.Fatalf("first: code %d cache %q", first.Code, first.Header().Get("X-Cache"))
	}
	second := do(t, s.Handler(), "POST", "/query/ord", body)
	if second.Code != 200 || second.Header().Get("X-Cache") != "HIT" {
		t.Fatalf("second: code %d cache %q", second.Code, second.Header().Get("X-Cache"))
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Fatal("cache hit body differs from original")
	}
	// A seed inside the same quantisation cell shares the entry.
	near := do(t, s.Handler(), "POST", "/query/ord",
		`{"dataset":"main","w":[0.500000001,0.299999999,0.2],"k":3,"m":12}`)
	if near.Header().Get("X-Cache") != "HIT" {
		t.Fatal("quantised seed missed the cache")
	}
	// A different m is a different entry.
	other := do(t, s.Handler(), "POST", "/query/ord",
		`{"dataset":"main","w":[0.5,0.3,0.2],"k":3,"m":13}`)
	if other.Header().Get("X-Cache") != "MISS" {
		t.Fatal("different m hit the cache")
	}
	hits, misses := s.cache.Stats()
	if hits != 2 || misses != 2 {
		t.Fatalf("hits=%d misses=%d, want 2/2", hits, misses)
	}
}

func TestCacheInvalidatedByDatasetReplacement(t *testing.T) {
	s := testServer(t, Config{}, 200)
	body := `{"dataset":"main","w":[0.4,0.3,0.3],"k":2,"m":8}`
	do(t, s.Handler(), "POST", "/query/ord", body)
	s.AddDataset("main", testDataset(t, 250)) // replace: new generation
	rec := do(t, s.Handler(), "POST", "/query/ord", body)
	if rec.Header().Get("X-Cache") != "MISS" {
		t.Fatal("stale cache entry served after dataset replacement")
	}
}

func TestLRUCacheEviction(t *testing.T) {
	c := newLRUCache(2)
	c.Put("a", []byte("A"), "ds", 1)
	c.Put("b", []byte("B"), "ds", 1)
	c.Get("a")                       // refresh a
	c.Put("c", []byte("C"), "ds", 1) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction")
	}
	if v, ok := c.Get("a"); !ok || string(v) != "A" {
		t.Fatal("a evicted despite refresh")
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
	// Disabled cache never stores.
	d := newLRUCache(0)
	d.Put("x", []byte("X"), "ds", 1)
	if _, ok := d.Get("x"); ok {
		t.Fatal("disabled cache stored an entry")
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	s := testServer(t, Config{Workers: 3}, 200)
	rec := do(t, s.Handler(), "GET", "/healthz", "")
	if rec.Code != 200 {
		t.Fatalf("healthz %d", rec.Code)
	}
	h := decode[Health](t, rec)
	if h.Status != "ok" || h.Datasets != 1 {
		t.Fatalf("health %+v", h)
	}

	do(t, s.Handler(), "POST", "/query/ord", `{"dataset":"main","w":[0.4,0.3,0.3],"k":2,"m":6}`)
	do(t, s.Handler(), "POST", "/query/ord", `{"dataset":"main","w":[0.4,0.3,0.3],"k":2,"m":6}`)
	do(t, s.Handler(), "POST", "/query/oru", `{"dataset":"main","w":[0.4,0.3,0.3],"k":0,"m":6}`)

	rec = do(t, s.Handler(), "GET", "/metrics", "")
	if rec.Code != 200 {
		t.Fatalf("metrics %d", rec.Code)
	}
	m := decode[Metrics](t, rec)
	if m.Requests["ord"] != 2 || m.Requests["oru"] != 1 {
		t.Fatalf("requests %v", m.Requests)
	}
	if m.Responses["200"] != 3 || m.Responses["400"] != 1 { // healthz counted too
		t.Fatalf("responses %v", m.Responses)
	}
	if m.Queue.Workers != 3 || m.Queue.Capacity != 9 {
		t.Fatalf("queue %+v", m.Queue)
	}
	if m.Cache.Hits != 1 || m.Cache.Misses != 1 || m.Cache.HitRate != 0.5 {
		t.Fatalf("cache %+v", m.Cache)
	}
	last := m.LatencyMS[len(m.LatencyMS)-1]
	if last.LEMilliseconds != "+Inf" || last.Count < 3 {
		t.Fatalf("latency tail %+v", last)
	}
	for i := 1; i < len(m.LatencyMS); i++ {
		if m.LatencyMS[i].Count < m.LatencyMS[i-1].Count {
			t.Fatal("latency buckets not cumulative")
		}
	}
}

func TestDatasetEndpoints(t *testing.T) {
	s := New(Config{})
	// Generator-backed registration.
	rec := do(t, s.Handler(), "POST", "/datasets",
		`{"name":"synth","generator":{"dist":"COR","n":120,"d":3,"seed":7}}`)
	if rec.Code != http.StatusCreated {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	info := decode[DatasetInfo](t, rec)
	if info.Records != 120 || info.Dims != 3 {
		t.Fatalf("info %+v", info)
	}
	// CSV-backed registration.
	path := filepath.Join(t.TempDir(), "recs.csv")
	var sb strings.Builder
	for i := 0; i < 40; i++ {
		fmt.Fprintf(&sb, "%d,%d\n", i%7, (i*3)%11)
	}
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	rec = do(t, s.Handler(), "POST", "/datasets",
		fmt.Sprintf(`{"name":"csv","csv_path":%q}`, path))
	if rec.Code != http.StatusCreated {
		t.Fatalf("csv status %d: %s", rec.Code, rec.Body.String())
	}
	// Both are listed and queryable.
	list := decode[[]DatasetInfo](t, do(t, s.Handler(), "GET", "/datasets", ""))
	if len(list) != 2 || list[0].Name != "csv" || list[1].Name != "synth" {
		t.Fatalf("list %+v", list)
	}
	q := do(t, s.Handler(), "POST", "/query/ord", `{"dataset":"synth","w":[0.4,0.3,0.3],"k":2,"m":5}`)
	if q.Code != 200 {
		t.Fatalf("query on synth: %d %s", q.Code, q.Body.String())
	}
	// Bad registrations.
	for _, body := range []string{
		`{"csv_path":"x.csv"}`, // no name
		`{"name":"x"}`,         // no source
		`{"name":"x","generator":{"dist":"WAT","n":10,"d":2}}`,
		`{"name":"x","csv_path":"/definitely/missing.csv"}`,
		fmt.Sprintf(`{"name":"x","csv_path":%q,"generator":{"dist":"IND","n":10,"d":2}}`, path),
	} {
		if rec := do(t, s.Handler(), "POST", "/datasets", body); rec.Code != 400 {
			t.Fatalf("body %s: status %d, want 400", body, rec.Code)
		}
	}
}

// TestConcurrentQueries drives >= 8 concurrent queries through one dataset;
// run under -race (make test does) it checks the whole serving surface for
// data races.
func TestConcurrentQueries(t *testing.T) {
	s := testServer(t, Config{Workers: 4, QueueDepth: 64}, 600)
	seeds := [][3]float64{
		{0.4, 0.3, 0.3}, {0.2, 0.5, 0.3}, {0.6, 0.2, 0.2}, {0.33, 0.33, 0.34},
	}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			w := seeds[g%len(seeds)]
			op := "ord"
			if g%2 == 1 {
				op = "oru"
			}
			body := fmt.Sprintf(`{"dataset":"main","w":[%g,%g,%g],"k":2,"m":8,"workers":2}`,
				w[0], w[1], w[2])
			for i := 0; i < 3; i++ {
				rec := do(t, s.Handler(), "POST", "/query/"+op, body)
				if rec.Code != 200 {
					errs <- fmt.Sprintf("goroutine %d: status %d: %s", g, rec.Code, rec.Body.String())
					return
				}
			}
			do(t, s.Handler(), "GET", "/metrics", "")
			do(t, s.Handler(), "GET", "/healthz", "")
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	snap := s.Snapshot()
	if snap.Responses["200"] == 0 || snap.Cache.Hits == 0 {
		t.Fatalf("suspicious snapshot: %+v", snap.Responses)
	}
}

// diagDataset builds a dataset whose records sit on the main diagonal
// (c_i = (0.9 - 0.02 i) * ones), so plain dominance is a total order and
// dominator counts are exactly predictable.
func diagDataset(t *testing.T, n int) *ordu.Dataset {
	t.Helper()
	recs := make([][]float64, n)
	for i := range recs {
		v := 0.9 - 0.02*float64(i)
		recs[i] = []float64{v, v, v}
	}
	ds, err := ordu.NewDataset(recs)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestPointWriteAndDelete(t *testing.T) {
	s := testServer(t, Config{}, 200)

	// Auto-id insert.
	rec := do(t, s.Handler(), "POST", "/datasets/main/points", `{"point":[0.5,0.5,0.5]}`)
	if rec.Code != http.StatusCreated {
		t.Fatalf("insert status %d: %s", rec.Code, rec.Body.String())
	}
	ins := decode[PointWriteResponse](t, rec)
	if ins.Updated || ins.Records != 201 {
		t.Fatalf("insert response %+v", ins)
	}

	// Explicit-id upsert: first write inserts, second updates in place.
	rec = do(t, s.Handler(), "POST", "/datasets/main/points",
		fmt.Sprintf(`{"id":%d,"point":[0.4,0.4,0.4]}`, 5000))
	if rec.Code != http.StatusCreated || decode[PointWriteResponse](t, rec).Updated {
		t.Fatalf("upsert-insert: %d %s", rec.Code, rec.Body.String())
	}
	rec = do(t, s.Handler(), "POST", "/datasets/main/points",
		fmt.Sprintf(`{"id":%d,"point":[0.6,0.6,0.6]}`, 5000))
	if rec.Code != http.StatusOK {
		t.Fatalf("upsert-update status %d: %s", rec.Code, rec.Body.String())
	}
	upd := decode[PointWriteResponse](t, rec)
	if !upd.Updated || upd.Records != 202 {
		t.Fatalf("update response %+v", upd)
	}

	// Delete it again.
	rec = do(t, s.Handler(), "DELETE", "/datasets/main/points/5000", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("delete status %d: %s", rec.Code, rec.Body.String())
	}
	del := decode[PointDeleteResponse](t, rec)
	if del.ID != 5000 || del.Records != 201 {
		t.Fatalf("delete response %+v", del)
	}

	// The write counters show up in /datasets and /metrics.
	list := decode[[]DatasetInfo](t, do(t, s.Handler(), "GET", "/datasets", ""))
	if len(list) != 1 || list[0].Inserts != 2 || list[0].Updates != 1 || list[0].Deletes != 1 {
		t.Fatalf("dataset stats %+v", list)
	}
	if len(list[0].Min) != 3 || len(list[0].Max) != 3 {
		t.Fatalf("dataset bounds missing: %+v", list[0])
	}
	m := decode[Metrics](t, do(t, s.Handler(), "GET", "/metrics", ""))
	if m.Mutations.Inserts != 2 || m.Mutations.Updates != 1 || m.Mutations.Deletes != 1 {
		t.Fatalf("mutation metrics %+v", m.Mutations)
	}
	if m.Requests["points"] != 4 {
		t.Fatalf("points request counter = %d", m.Requests["points"])
	}

	// Error paths.
	for _, tc := range []struct {
		method, path, body string
		want               int
	}{
		{"POST", "/datasets/nope/points", `{"point":[0.5,0.5,0.5]}`, 404},
		{"POST", "/datasets/main/points", `{"point":[0.5,0.5]}`, 400},
		{"POST", "/datasets/main/points", `{"point":`, 400},
		{"DELETE", "/datasets/nope/points/1", "", 404},
		{"DELETE", "/datasets/main/points/999999", "", 404},
		{"DELETE", "/datasets/main/points/abc", "", 400},
	} {
		rec := do(t, s.Handler(), tc.method, tc.path, tc.body)
		if rec.Code != tc.want {
			t.Fatalf("%s %s: status %d, want %d: %s", tc.method, tc.path, rec.Code, tc.want, rec.Body.String())
		}
	}
}

func TestMutationVisibleToQueries(t *testing.T) {
	s := New(Config{})
	s.AddDataset("diag", diagDataset(t, 20))
	// A new point dominating the whole chain must lead the next ORD answer.
	rec := do(t, s.Handler(), "POST", "/datasets/diag/points", `{"point":[0.95,0.95,0.95]}`)
	if rec.Code != http.StatusCreated {
		t.Fatalf("insert: %d %s", rec.Code, rec.Body.String())
	}
	id := decode[PointWriteResponse](t, rec).ID
	q := do(t, s.Handler(), "POST", "/query/ord", `{"dataset":"diag","w":[0.4,0.3,0.3],"k":1,"m":1}`)
	if q.Code != 200 {
		t.Fatalf("query: %d %s", q.Code, q.Body.String())
	}
	resp := decode[QueryResponse](t, q)
	if len(resp.Records) != 1 || resp.Records[0].ID != id {
		t.Fatalf("ORD top record %+v, want id %d", resp.Records, id)
	}
	// Deleting it restores the old leader.
	do(t, s.Handler(), "DELETE", fmt.Sprintf("/datasets/diag/points/%d", id), "")
	q = do(t, s.Handler(), "POST", "/query/ord", `{"dataset":"diag","w":[0.4,0.3,0.3],"k":1,"m":1}`)
	resp = decode[QueryResponse](t, q)
	if len(resp.Records) != 1 || resp.Records[0].ID != 0 {
		t.Fatalf("ORD top record after delete %+v, want id 0", resp.Records)
	}
}

// TestFineGrainedCacheInvalidation pins the dominance keep-test: a write
// with at least k plain dominators must leave k-entries cached, while a
// write above the skyline drops them.
func TestFineGrainedCacheInvalidation(t *testing.T) {
	s := New(Config{})
	s.AddDataset("diag", diagDataset(t, 30))
	h := s.Handler()
	q2 := `{"dataset":"diag","w":[0.4,0.3,0.3],"k":2,"m":2}`
	q3 := `{"dataset":"diag","w":[0.4,0.3,0.3],"k":3,"m":3}`
	cacheState := func(body string) string {
		rec := do(t, h, "POST", "/query/ord", body)
		if rec.Code != 200 {
			t.Fatalf("query: %d %s", rec.Code, rec.Body.String())
		}
		return rec.Header().Get("X-Cache")
	}

	if cacheState(q2) != "MISS" || cacheState(q3) != "MISS" {
		t.Fatal("warm-up queries unexpectedly hit")
	}

	// A deep insert (dominated by the entire chain) invalidates nothing.
	rec := do(t, h, "POST", "/datasets/diag/points", `{"point":[0.01,0.01,0.01]}`)
	deep := decode[PointWriteResponse](t, rec)
	if deep.CacheDropped != 0 {
		t.Fatalf("deep insert dropped %d entries", deep.CacheDropped)
	}
	if cacheState(q2) != "HIT" || cacheState(q3) != "HIT" {
		t.Fatal("deep insert evicted provably-valid entries")
	}

	// A point with exactly 2 dominators (between c1=0.88 and c2=0.86)
	// keeps k=2 and drops k=3.
	rec = do(t, h, "POST", "/datasets/diag/points", `{"point":[0.87,0.87,0.87]}`)
	mid := decode[PointWriteResponse](t, rec)
	if mid.CacheDropped != 1 {
		t.Fatalf("mid insert dropped %d entries, want 1", mid.CacheDropped)
	}
	if cacheState(q2) != "HIT" {
		t.Fatal("k=2 entry dropped despite 2 dominators")
	}
	if cacheState(q3) != "MISS" {
		t.Fatal("k=3 entry survived a 2-dominator insert")
	}

	// Deleting the deep point again invalidates nothing.
	rec = do(t, h, "DELETE", fmt.Sprintf("/datasets/diag/points/%d", deep.ID), "")
	if d := decode[PointDeleteResponse](t, rec); d.CacheDropped != 0 {
		t.Fatalf("deep delete dropped %d entries", d.CacheDropped)
	}
	if cacheState(q2) != "HIT" || cacheState(q3) != "HIT" {
		t.Fatal("deep delete evicted provably-valid entries")
	}

	// An insert above the skyline (0 dominators) drops every entry.
	rec = do(t, h, "POST", "/datasets/diag/points", `{"point":[0.99,0.99,0.99]}`)
	top := decode[PointWriteResponse](t, rec)
	if top.CacheDropped != 2 {
		t.Fatalf("skyline insert dropped %d entries, want 2", top.CacheDropped)
	}
	if cacheState(q2) != "MISS" || cacheState(q3) != "MISS" {
		t.Fatal("stale entries served after a skyline-level insert")
	}
}

// TestConcurrentMutationsAndQueries interleaves writers and readers on one
// dataset; run under -race (make test does) it checks the per-dataset lock
// discipline end to end.
func TestConcurrentMutationsAndQueries(t *testing.T) {
	s := testServer(t, Config{Workers: 4, QueueDepth: 64}, 400)
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				switch g % 3 {
				case 0: // reader
					rec := do(t, s.Handler(), "POST", "/query/ord",
						`{"dataset":"main","w":[0.4,0.3,0.3],"k":2,"m":8}`)
					if rec.Code != 200 {
						errs <- fmt.Sprintf("reader %d: %d %s", g, rec.Code, rec.Body.String())
						return
					}
				case 1: // inserter
					rec := do(t, s.Handler(), "POST", "/datasets/main/points",
						fmt.Sprintf(`{"point":[%g,0.5,0.5]}`, 0.1+0.01*float64(g*4+i)))
					if rec.Code != http.StatusCreated {
						errs <- fmt.Sprintf("inserter %d: %d %s", g, rec.Code, rec.Body.String())
						return
					}
				default: // upserter on a private id
					rec := do(t, s.Handler(), "POST", "/datasets/main/points",
						fmt.Sprintf(`{"id":%d,"point":[0.5,%g,0.5]}`, 10000+g, 0.1+0.02*float64(i)))
					if rec.Code != http.StatusCreated && rec.Code != http.StatusOK {
						errs <- fmt.Sprintf("upserter %d: %d %s", g, rec.Code, rec.Body.String())
						return
					}
				}
			}
			do(t, s.Handler(), "GET", "/datasets", "")
			do(t, s.Handler(), "GET", "/metrics", "")
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	snap := s.Snapshot()
	if snap.Mutations.Inserts == 0 {
		t.Fatalf("no inserts recorded: %+v", snap.Mutations)
	}
}
