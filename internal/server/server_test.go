package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"ordu"
	"ordu/internal/data"
)

// testServer builds a server over one ANTI dataset named "main".
func testServer(t *testing.T, cfg Config, n int) *Server {
	t.Helper()
	s := New(cfg)
	s.AddDataset("main", testDataset(t, n))
	return s
}

func testDataset(t *testing.T, n int) *ordu.Dataset {
	t.Helper()
	pts := data.Synthetic(data.ANTI, n, 3, 42)
	recs := make([][]float64, len(pts))
	for i, p := range pts {
		recs[i] = p
	}
	ds, err := ordu.NewDataset(recs)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func do(t *testing.T, h http.Handler, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func decode[T any](t *testing.T, rec *httptest.ResponseRecorder) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		t.Fatalf("bad JSON body %q: %v", rec.Body.String(), err)
	}
	return v
}

func TestQueryORDHappyPath(t *testing.T) {
	s := testServer(t, Config{}, 400)
	rec := do(t, s.Handler(), "POST", "/query/ord",
		`{"dataset":"main","w":[0.4,0.3,0.3],"k":3,"m":15}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	resp := decode[QueryResponse](t, rec)
	if resp.Op != "ord" || len(resp.Records) != 15 {
		t.Fatalf("op=%q records=%d", resp.Op, len(resp.Records))
	}
	if resp.Rho <= 0 {
		t.Fatalf("rho = %g", resp.Rho)
	}
	for i, r := range resp.Records {
		if r.Radius == nil {
			t.Fatalf("record %d missing inflection radius", i)
		}
		if i > 0 && *r.Radius < *resp.Records[i-1].Radius {
			t.Fatal("radii not sorted")
		}
	}
	if *resp.Records[14].Radius != resp.Rho {
		t.Fatal("rho != largest inflection radius")
	}
}

func TestQueryORUHappyPath(t *testing.T) {
	s := testServer(t, Config{}, 400)
	rec := do(t, s.Handler(), "POST", "/query/oru",
		`{"dataset":"main","w":[0.3,0.3,0.4],"k":2,"m":10}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	resp := decode[QueryResponse](t, rec)
	if resp.Op != "oru" || len(resp.Records) != 10 {
		t.Fatalf("op=%q records=%d", resp.Op, len(resp.Records))
	}
	if len(resp.Regions) == 0 {
		t.Fatal("no regions")
	}
	for i, reg := range resp.Regions {
		if len(reg.TopK) != 2 {
			t.Fatalf("region %d has top-%d", i, len(reg.TopK))
		}
		if len(reg.Witness) != 3 {
			t.Fatalf("region %d witness %v", i, reg.Witness)
		}
	}
	// Parallel partitioning returns the identical result.
	par := do(t, s.Handler(), "POST", "/query/oru",
		`{"dataset":"main","w":[0.3,0.3,0.4],"k":2,"m":10,"workers":4}`)
	if par.Code != http.StatusOK {
		t.Fatalf("parallel status %d", par.Code)
	}
	if par.Header().Get("X-Cache") != "HIT" {
		// workers is excluded from the cache key on purpose.
		t.Fatal("parallel run with same (w,k,m) should hit the cache")
	}
}

func TestQueryBadRequests(t *testing.T) {
	s := testServer(t, Config{}, 100)
	cases := []struct {
		name string
		path string
		body string
		want int
	}{
		{"malformed JSON", "/query/ord", `{"dataset":`, 400},
		{"missing dataset", "/query/ord", `{"w":[0.5,0.5],"k":1,"m":2}`, 400},
		{"missing w", "/query/ord", `{"dataset":"main","k":1,"m":2}`, 400},
		{"unknown dataset", "/query/ord", `{"dataset":"nope","w":[0.4,0.3,0.3],"k":1,"m":2}`, 404},
		{"wrong dimension", "/query/ord", `{"dataset":"main","w":[0.5,0.5],"k":1,"m":2}`, 400},
		{"off simplex", "/query/ord", `{"dataset":"main","w":[0.9,0.9,0.9],"k":1,"m":2}`, 400},
		{"negative component", "/query/oru", `{"dataset":"main","w":[-0.2,0.6,0.6],"k":1,"m":2}`, 400},
		{"k zero", "/query/oru", `{"dataset":"main","w":[0.4,0.3,0.3],"k":0,"m":2}`, 400},
		{"m below k", "/query/ord", `{"dataset":"main","w":[0.4,0.3,0.3],"k":5,"m":2}`, 400},
		{"m beyond dataset", "/query/ord", `{"dataset":"main","w":[0.4,0.3,0.3],"k":1,"m":500}`, 422},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := do(t, s.Handler(), "POST", tc.path, tc.body)
			if rec.Code != tc.want {
				t.Fatalf("status %d, want %d: %s", rec.Code, tc.want, rec.Body.String())
			}
			if e := decode[ErrorResponse](t, rec); e.Error == "" {
				t.Fatal("empty error message")
			}
		})
	}
	// Wrong method on a query route.
	if rec := do(t, s.Handler(), "GET", "/query/ord", ""); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /query/ord = %d, want 405", rec.Code)
	}
}

func TestOverloadReturns429(t *testing.T) {
	s := testServer(t, Config{Workers: 1, QueueDepth: -1}, 100)
	// Occupy the only worker slot; the queue has zero depth, so the next
	// request must be shed immediately.
	release, err := s.pool.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rec := do(t, s.Handler(), "POST", "/query/ord",
		`{"dataset":"main","w":[0.4,0.3,0.3],"k":2,"m":5}`)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	release()
	rec = do(t, s.Handler(), "POST", "/query/ord",
		`{"dataset":"main","w":[0.4,0.3,0.3],"k":2,"m":5}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status after release %d: %s", rec.Code, rec.Body.String())
	}
	snap := s.Snapshot()
	if snap.Responses["429"] != 1 {
		t.Fatalf("429 counter = %d", snap.Responses["429"])
	}
}

func TestDeadlineWhileQueuedReturns504(t *testing.T) {
	s := testServer(t, Config{Workers: 1, QueueDepth: 1}, 100)
	release, err := s.pool.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	// Admitted into the queue, but the worker never frees up within the
	// 1ms deadline.
	rec := do(t, s.Handler(), "POST", "/query/ord",
		`{"dataset":"main","w":[0.4,0.3,0.3],"k":2,"m":5,"timeout_ms":1}`)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", rec.Code, rec.Body.String())
	}
}

func TestDeadlineCancelsInFlightQuery(t *testing.T) {
	// A big anticorrelated ORU query takes far longer than 1ms; the
	// cooperative checks inside internal/core must abort it.
	s := testServer(t, Config{}, 20000)
	rec := do(t, s.Handler(), "POST", "/query/oru",
		`{"dataset":"main","w":[0.4,0.3,0.3],"k":5,"m":60,"timeout_ms":1}`)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", rec.Code, rec.Body.String())
	}
	if e := decode[ErrorResponse](t, rec); !strings.Contains(e.Error, "deadline") {
		t.Fatalf("error %q does not mention the deadline", e.Error)
	}
}

func TestCacheHitReturnsIdenticalBody(t *testing.T) {
	s := testServer(t, Config{}, 300)
	body := `{"dataset":"main","w":[0.5,0.3,0.2],"k":3,"m":12}`
	first := do(t, s.Handler(), "POST", "/query/ord", body)
	if first.Code != 200 || first.Header().Get("X-Cache") != "MISS" {
		t.Fatalf("first: code %d cache %q", first.Code, first.Header().Get("X-Cache"))
	}
	second := do(t, s.Handler(), "POST", "/query/ord", body)
	if second.Code != 200 || second.Header().Get("X-Cache") != "HIT" {
		t.Fatalf("second: code %d cache %q", second.Code, second.Header().Get("X-Cache"))
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Fatal("cache hit body differs from original")
	}
	// A seed inside the same quantisation cell shares the entry.
	near := do(t, s.Handler(), "POST", "/query/ord",
		`{"dataset":"main","w":[0.500000001,0.299999999,0.2],"k":3,"m":12}`)
	if near.Header().Get("X-Cache") != "HIT" {
		t.Fatal("quantised seed missed the cache")
	}
	// A different m is a different entry.
	other := do(t, s.Handler(), "POST", "/query/ord",
		`{"dataset":"main","w":[0.5,0.3,0.2],"k":3,"m":13}`)
	if other.Header().Get("X-Cache") != "MISS" {
		t.Fatal("different m hit the cache")
	}
	hits, misses := s.cache.Stats()
	if hits != 2 || misses != 2 {
		t.Fatalf("hits=%d misses=%d, want 2/2", hits, misses)
	}
}

func TestCacheInvalidatedByDatasetReplacement(t *testing.T) {
	s := testServer(t, Config{}, 200)
	body := `{"dataset":"main","w":[0.4,0.3,0.3],"k":2,"m":8}`
	do(t, s.Handler(), "POST", "/query/ord", body)
	s.AddDataset("main", testDataset(t, 250)) // replace: new generation
	rec := do(t, s.Handler(), "POST", "/query/ord", body)
	if rec.Header().Get("X-Cache") != "MISS" {
		t.Fatal("stale cache entry served after dataset replacement")
	}
}

func TestLRUCacheEviction(t *testing.T) {
	c := newLRUCache(2)
	c.Put("a", []byte("A"))
	c.Put("b", []byte("B"))
	c.Get("a")              // refresh a
	c.Put("c", []byte("C")) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction")
	}
	if v, ok := c.Get("a"); !ok || string(v) != "A" {
		t.Fatal("a evicted despite refresh")
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
	// Disabled cache never stores.
	d := newLRUCache(0)
	d.Put("x", []byte("X"))
	if _, ok := d.Get("x"); ok {
		t.Fatal("disabled cache stored an entry")
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	s := testServer(t, Config{Workers: 3}, 200)
	rec := do(t, s.Handler(), "GET", "/healthz", "")
	if rec.Code != 200 {
		t.Fatalf("healthz %d", rec.Code)
	}
	h := decode[Health](t, rec)
	if h.Status != "ok" || h.Datasets != 1 {
		t.Fatalf("health %+v", h)
	}

	do(t, s.Handler(), "POST", "/query/ord", `{"dataset":"main","w":[0.4,0.3,0.3],"k":2,"m":6}`)
	do(t, s.Handler(), "POST", "/query/ord", `{"dataset":"main","w":[0.4,0.3,0.3],"k":2,"m":6}`)
	do(t, s.Handler(), "POST", "/query/oru", `{"dataset":"main","w":[0.4,0.3,0.3],"k":0,"m":6}`)

	rec = do(t, s.Handler(), "GET", "/metrics", "")
	if rec.Code != 200 {
		t.Fatalf("metrics %d", rec.Code)
	}
	m := decode[Metrics](t, rec)
	if m.Requests["ord"] != 2 || m.Requests["oru"] != 1 {
		t.Fatalf("requests %v", m.Requests)
	}
	if m.Responses["200"] != 3 || m.Responses["400"] != 1 { // healthz counted too
		t.Fatalf("responses %v", m.Responses)
	}
	if m.Queue.Workers != 3 || m.Queue.Capacity != 9 {
		t.Fatalf("queue %+v", m.Queue)
	}
	if m.Cache.Hits != 1 || m.Cache.Misses != 1 || m.Cache.HitRate != 0.5 {
		t.Fatalf("cache %+v", m.Cache)
	}
	last := m.LatencyMS[len(m.LatencyMS)-1]
	if last.LEMilliseconds != "+Inf" || last.Count < 3 {
		t.Fatalf("latency tail %+v", last)
	}
	for i := 1; i < len(m.LatencyMS); i++ {
		if m.LatencyMS[i].Count < m.LatencyMS[i-1].Count {
			t.Fatal("latency buckets not cumulative")
		}
	}
}

func TestDatasetEndpoints(t *testing.T) {
	s := New(Config{})
	// Generator-backed registration.
	rec := do(t, s.Handler(), "POST", "/datasets",
		`{"name":"synth","generator":{"dist":"COR","n":120,"d":3,"seed":7}}`)
	if rec.Code != http.StatusCreated {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	info := decode[DatasetInfo](t, rec)
	if info.Records != 120 || info.Dims != 3 {
		t.Fatalf("info %+v", info)
	}
	// CSV-backed registration.
	path := filepath.Join(t.TempDir(), "recs.csv")
	var sb strings.Builder
	for i := 0; i < 40; i++ {
		fmt.Fprintf(&sb, "%d,%d\n", i%7, (i*3)%11)
	}
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	rec = do(t, s.Handler(), "POST", "/datasets",
		fmt.Sprintf(`{"name":"csv","csv_path":%q}`, path))
	if rec.Code != http.StatusCreated {
		t.Fatalf("csv status %d: %s", rec.Code, rec.Body.String())
	}
	// Both are listed and queryable.
	list := decode[[]DatasetInfo](t, do(t, s.Handler(), "GET", "/datasets", ""))
	if len(list) != 2 || list[0].Name != "csv" || list[1].Name != "synth" {
		t.Fatalf("list %+v", list)
	}
	q := do(t, s.Handler(), "POST", "/query/ord", `{"dataset":"synth","w":[0.4,0.3,0.3],"k":2,"m":5}`)
	if q.Code != 200 {
		t.Fatalf("query on synth: %d %s", q.Code, q.Body.String())
	}
	// Bad registrations.
	for _, body := range []string{
		`{"csv_path":"x.csv"}`, // no name
		`{"name":"x"}`,         // no source
		`{"name":"x","generator":{"dist":"WAT","n":10,"d":2}}`,
		`{"name":"x","csv_path":"/definitely/missing.csv"}`,
		fmt.Sprintf(`{"name":"x","csv_path":%q,"generator":{"dist":"IND","n":10,"d":2}}`, path),
	} {
		if rec := do(t, s.Handler(), "POST", "/datasets", body); rec.Code != 400 {
			t.Fatalf("body %s: status %d, want 400", body, rec.Code)
		}
	}
}

// TestConcurrentQueries drives >= 8 concurrent queries through one dataset;
// run under -race (make test does) it checks the whole serving surface for
// data races.
func TestConcurrentQueries(t *testing.T) {
	s := testServer(t, Config{Workers: 4, QueueDepth: 64}, 600)
	seeds := [][3]float64{
		{0.4, 0.3, 0.3}, {0.2, 0.5, 0.3}, {0.6, 0.2, 0.2}, {0.33, 0.33, 0.34},
	}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			w := seeds[g%len(seeds)]
			op := "ord"
			if g%2 == 1 {
				op = "oru"
			}
			body := fmt.Sprintf(`{"dataset":"main","w":[%g,%g,%g],"k":2,"m":8,"workers":2}`,
				w[0], w[1], w[2])
			for i := 0; i < 3; i++ {
				rec := do(t, s.Handler(), "POST", "/query/"+op, body)
				if rec.Code != 200 {
					errs <- fmt.Sprintf("goroutine %d: status %d: %s", g, rec.Code, rec.Body.String())
					return
				}
			}
			do(t, s.Handler(), "GET", "/metrics", "")
			do(t, s.Handler(), "GET", "/healthz", "")
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	snap := s.Snapshot()
	if snap.Responses["200"] == 0 || snap.Cache.Hits == 0 {
		t.Fatalf("suspicious snapshot: %+v", snap.Responses)
	}
}
