package server

import (
	"errors"
	"fmt"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"

	"ordu/internal/collection"
	"ordu/internal/narrow"
)

// capacityErr produces a real narrow.ErrTooLarge the way the flat core
// does: by asking the guarded gate for an unrepresentable index.
func capacityErr() error {
	_, err := narrow.Index32(math.MaxInt32 + 1)
	return fmt.Errorf("rtree: slot arena: %w", err)
}

// TestMutationErrorMessages pins the status code AND the body message of
// every mutation error path: clients key retry logic off the codes and
// operators grep logs for the messages, so both are wire contract.
func TestMutationErrorMessages(t *testing.T) {
	s := testServer(t, Config{}, 50)
	for _, tc := range []struct {
		name, method, path, body string
		want                     int
		msg                      string
	}{
		{"write to missing dataset", "POST", "/datasets/nope/points",
			`{"point":[0.5,0.5,0.5]}`, 404, `unknown dataset "nope"`},
		{"delete from missing dataset", "DELETE", "/datasets/nope/points/1",
			"", 404, `unknown dataset "nope"`},
		{"point too short", "POST", "/datasets/main/points",
			`{"point":[0.5,0.5]}`, 400, "point has 2 attributes, want 3"},
		{"point too long", "POST", "/datasets/main/points",
			`{"point":[0.1,0.2,0.3,0.4]}`, 400, "point has 4 attributes, want 3"},
		// JSON cannot spell NaN/Inf and the decoder rejects overflowing
		// literals, so a non-finite coordinate dies in Decode — before the
		// handler's own finiteness guard (kept as defense in depth for
		// future non-JSON ingest paths).
		{"overflowing coordinate", "POST", "/datasets/main/points",
			`{"point":[0.5,1e999,0.5]}`, 400, "bad request body"},
		{"truncated body", "POST", "/datasets/main/points",
			`{"point":`, 400, "bad request body"},
		{"non-numeric id segment", "DELETE", "/datasets/main/points/abc",
			"", 400, `bad point id "abc"`},
		{"delete of unknown id", "DELETE", "/datasets/main/points/999999",
			"", 404, `dataset "main" has no point 999999`},
	} {
		rec := do(t, s.Handler(), tc.method, tc.path, tc.body)
		if rec.Code != tc.want {
			t.Errorf("%s: status %d, want %d: %s", tc.name, rec.Code, tc.want, rec.Body.String())
			continue
		}
		if got := decode[ErrorResponse](t, rec).Error; !strings.Contains(got, tc.msg) {
			t.Errorf("%s: error %q does not contain %q", tc.name, got, tc.msg)
		}
	}
	// None of the failures may have touched the dataset.
	list := decode[[]DatasetInfo](t, do(t, s.Handler(), "GET", "/datasets", ""))
	if len(list) != 1 || list[0].Records != 50 || list[0].Inserts != 0 || list[0].Deletes != 0 {
		t.Fatalf("failed mutations changed the dataset: %+v", list)
	}
}

// TestStatusForMutationError pins the sentinel-to-status mapping with errors
// produced by the real collection layer, not hand-built ones — if the
// collection changes how it wraps its sentinels, this breaks here and not
// in production. ErrDuplicateID is unreachable through the HTTP handlers
// (they upsert), so InsertID is the only producer; it still needs a row
// because statusForMutationError is also the contract for future handlers.
func TestStatusForMutationError(t *testing.T) {
	ds := testDataset(t, 10)
	update := func(id int, p []float64) error { return ds.Update(id, p) }

	for _, tc := range []struct {
		name string
		err  error
		want int
	}{
		{"unknown id", update(999999, []float64{0.5, 0.5, 0.5}), http.StatusNotFound},
		{"duplicate id", ds.InsertID(0, []float64{0.5, 0.5, 0.5}), http.StatusConflict},
		{"wrong dimension", ds.InsertID(5000, []float64{0.5, 0.5}), http.StatusBadRequest},
		{"NaN coordinate", update(0, []float64{math.NaN(), 0.5, 0.5}), http.StatusBadRequest},
		{"infinite coordinate", update(0, []float64{0.5, math.Inf(1), 0.5}), http.StatusBadRequest},
		{"wrapped sentinel", fmt.Errorf("applying op: %w", collection.ErrBadPoint), http.StatusBadRequest},
		{"capacity exceeded", capacityErr(), http.StatusBadRequest},
		{"unrecognized error", errors.New("disk on fire"), http.StatusInternalServerError},
	} {
		if tc.err == nil {
			t.Errorf("%s: the collection accepted the bad mutation", tc.name)
			continue
		}
		if got := statusForMutationError(tc.err); got != tc.want {
			t.Errorf("%s: statusForMutationError(%v) = %d, want %d", tc.name, tc.err, got, tc.want)
		}
	}
}

// TestListDatasetsStatsWriteRace hammers GET /datasets — whose handler
// snapshots the dataset map under s.mu and then takes each dataset's nd.mu
// read lock for Stats() — while writers mutate the same datasets through
// the point endpoints. Run under -race (make test does) it proves the
// snapshot-then-relock pattern in handleListDatasets never reads a
// collection concurrently with a write.
func TestListDatasetsStatsWriteRace(t *testing.T) {
	s := New(Config{})
	s.AddDataset("a", testDataset(t, 60))
	s.AddDataset("b", testDataset(t, 60))
	h := s.Handler()

	var wg sync.WaitGroup
	errs := make(chan string, 32)
	const iters = 25
	for g := 0; g < 4; g++ { // listers: per-dataset Stats under read locks
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				rec := do(t, h, "GET", "/datasets", "")
				if rec.Code != 200 {
					errs <- fmt.Sprintf("list: %d %s", rec.Code, rec.Body.String())
					return
				}
				for _, info := range decode[[]DatasetInfo](t, rec) {
					if info.Dims != 3 || info.Records < 1 {
						errs <- fmt.Sprintf("list: torn stats %+v", info)
						return
					}
				}
			}
		}()
	}
	for g := 0; g < 4; g++ { // writers: insert, upsert and delete points
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := "a"
			if g%2 == 1 {
				name = "b"
			}
			id := 20000 + g
			for i := 0; i < iters; i++ {
				body := fmt.Sprintf(`{"id":%d,"point":[0.5,%g,0.5]}`, id, 0.1+0.01*float64(i))
				rec := do(t, h, "POST", "/datasets/"+name+"/points", body)
				if rec.Code != http.StatusCreated && rec.Code != http.StatusOK {
					errs <- fmt.Sprintf("writer %d: %d %s", g, rec.Code, rec.Body.String())
					return
				}
				if i%5 == 4 { // periodically delete and re-insert the id
					rec = do(t, h, "DELETE", fmt.Sprintf("/datasets/%s/points/%d", name, id), "")
					if rec.Code != 200 {
						errs <- fmt.Sprintf("writer %d delete: %d %s", g, rec.Code, rec.Body.String())
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	list := decode[[]DatasetInfo](t, do(t, h, "GET", "/datasets", ""))
	if len(list) != 2 {
		t.Fatalf("want 2 datasets, got %+v", list)
	}
	for _, info := range list {
		if info.Inserts == 0 || info.Updates == 0 || info.Deletes == 0 {
			t.Errorf("dataset %s missed mutations: %+v", info.Name, info)
		}
	}
}
