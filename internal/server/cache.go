package server

import (
	"container/list"
	"math"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// wQuantum is the cache-key grid for seed vectors: each component is
// rounded to the nearest multiple before keying, so seeds differing by
// floating-point noise (clients re-normalising the same weights) share a
// cache line. 1e-4 is far below any rho resolution the operators report,
// and two seeds within the same grid cell are within ~1e-4*sqrt(d) of each
// other — visually identical preferences.
const wQuantum = 1e-4

// cacheKey identifies a query result: operator, dataset generation,
// quantized seed, k and m. Workers is deliberately excluded — parallel and
// sequential ORU return identical results.
func cacheKey(op, dataset string, gen uint64, w []float64, k, m int) string {
	var b strings.Builder
	b.WriteString(op)
	b.WriteByte('|')
	b.WriteString(dataset)
	b.WriteByte('#')
	b.WriteString(strconv.FormatUint(gen, 10))
	b.WriteString("|k=")
	b.WriteString(strconv.Itoa(k))
	b.WriteString("|m=")
	b.WriteString(strconv.Itoa(m))
	b.WriteString("|w=")
	for i, x := range w {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatFloat(math.Round(x/wQuantum)*wQuantum, 'g', -1, 64))
	}
	return b.String()
}

// lruCache is a thread-safe LRU of marshaled response bodies. Bodies are
// cached verbatim, so a hit returns a byte-identical response.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List
	items map[string]*list.Element

	hits   atomic.Int64
	misses atomic.Int64
}

type cacheEntry struct {
	key  string
	body []byte
	// Invalidation metadata: the dataset the result was computed over and
	// the query's k. A point mutation with at least k plain dominators
	// cannot change any rho-skyband (or top-k region) with parameter k —
	// each dominator inherits every rho-dominance relation the mutated
	// point participates in — so entries with k <= that dominator count
	// survive the mutation verbatim.
	dataset string
	k       int
}

// newLRUCache returns a cache holding up to capacity entries; capacity <= 0
// disables caching (every lookup misses, Put is a no-op).
func newLRUCache(capacity int) *lruCache {
	return &lruCache{cap: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

func (c *lruCache) Get(key string) ([]byte, bool) {
	if c.cap <= 0 {
		c.misses.Add(1)
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits.Add(1)
	return el.Value.(*cacheEntry).body, true
}

func (c *lruCache) Put(key string, body []byte, dataset string, k int) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).body = body
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, body: body, dataset: dataset, k: k})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// DropAbove removes every entry computed over the named dataset whose k
// exceeds keepK, returning how many were dropped. It implements fine-grained
// mutation invalidation: keepK is the mutated point's plain-dominator count
// (the minimum over the old and new incarnation for an update), and entries
// with k <= keepK are provably unaffected. keepK < 0 drops the dataset's
// entries wholesale.
func (c *lruCache) DropAbove(dataset string, keepK int) int {
	if c.cap <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	dropped := 0
	for el := c.ll.Front(); el != nil; { //ordlint:allow ctxflow — bounded by the cache capacity (hundreds of entries), never long enough to need cancellation
		next := el.Next()
		e := el.Value.(*cacheEntry)
		if e.dataset == dataset && e.k > keepK {
			c.ll.Remove(el)
			delete(c.items, e.key)
			dropped++
		}
		el = next
	}
	return dropped
}

func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns cumulative hit/miss counts.
func (c *lruCache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}
