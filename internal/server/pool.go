package server

import (
	"context"
	"errors"
	"sync/atomic"
)

// errOverloaded is returned by pool.acquire when the queue is full; the
// handler maps it to HTTP 429.
var errOverloaded = errors.New("server: overloaded, try again later")

// pool bounds query concurrency: at most `workers` queries execute at
// once, at most `queueDepth` more wait for a worker, and anything beyond
// is rejected immediately so overload sheds load instead of piling up
// goroutines.
type pool struct {
	sem      chan struct{}
	inflight atomic.Int64
	workers  int
	capacity int64 // workers + queueDepth
}

func newPool(workers, queueDepth int) *pool {
	return &pool{
		sem:      make(chan struct{}, workers),
		workers:  workers,
		capacity: int64(workers + queueDepth),
	}
}

// acquire reserves an execution slot, waiting in the queue while all
// workers are busy. It fails fast with errOverloaded when the queue is
// full, and with ctx.Err() if the request deadline expires while queued.
// On success the caller must invoke release exactly once.
func (p *pool) acquire(ctx context.Context) (release func(), err error) {
	if p.inflight.Add(1) > p.capacity {
		p.inflight.Add(-1)
		return nil, errOverloaded
	}
	select {
	case p.sem <- struct{}{}:
		return func() {
			<-p.sem
			p.inflight.Add(-1)
		}, nil
	case <-ctx.Done():
		p.inflight.Add(-1)
		return nil, ctx.Err()
	}
}

// running reports how many queries are executing right now.
func (p *pool) running() int { return len(p.sem) }

// queued reports how many admitted requests are waiting for a worker.
func (p *pool) queued() int64 {
	q := p.inflight.Load() - int64(p.running())
	if q < 0 {
		q = 0
	}
	return q
}
