// Package server implements the ordud serving subsystem: a long-lived HTTP
// JSON API over named in-memory datasets, answering ORD/ORU queries with
// production machinery around the operators — a bounded worker pool with
// admission control, per-request deadlines that cooperatively cancel
// in-flight core work, an LRU result cache with observable hit rate, and
// health/metrics endpoints.
package server

import (
	"fmt"
	"math"

	"ordu"
)

// QueryRequest is the body of POST /query/ord and POST /query/oru.
type QueryRequest struct {
	// Dataset names the target dataset.
	Dataset string `json:"dataset"`
	// W is the seed preference vector (normalised onto the unit simplex by
	// the caller; see ordu.Preference).
	W []float64 `json:"w"`
	// K is the rank / skyband parameter.
	K int `json:"k"`
	// M is the required output size.
	M int `json:"m"`
	// Workers > 1 enables parallel region partitioning (ORU only; the
	// result is identical to the sequential run).
	Workers int `json:"workers,omitempty"`
	// TimeoutMS overrides the server's default per-request deadline,
	// capped at the server's maximum.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// Record is one output record on the wire.
type Record struct {
	ID    int       `json:"id"`
	Attrs []float64 `json:"attrs"`
	// Score is the utility for the seed vector, when one was involved.
	Score float64 `json:"score,omitempty"`
	// Radius is the ORD inflection radius (present for ORD responses only).
	Radius *float64 `json:"radius,omitempty"`
}

// Region is one finalized top-k preference region (ORU responses only).
type Region struct {
	TopK    []Record  `json:"topk"`
	MinDist float64   `json:"min_dist"`
	Witness []float64 `json:"witness,omitempty"`
}

// QueryResponse is the body of a successful query, shared by both
// operators and by cmd/ordu's -json output, so shell pipelines and network
// clients consume one wire format.
type QueryResponse struct {
	// Op echoes the operator: "ord", "oru", "topk", "skyline", "skyband"
	// or "osskyline" (the latter four appear only in CLI output).
	Op string `json:"op"`
	// Rho is the stopping radius (ORD/ORU only).
	Rho float64 `json:"rho,omitempty"`
	// Records are the output records.
	Records []Record `json:"records"`
	// Regions are the finalized top-k regions (ORU only).
	Regions []Region `json:"regions,omitempty"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// NewORDResponse converts an ORD result to the wire format.
func NewORDResponse(res *ordu.ORDResult) *QueryResponse {
	out := &QueryResponse{Op: "ord", Rho: res.Rho, Records: make([]Record, len(res.Records))}
	for i, r := range res.Records {
		radius := res.Radii[i]
		out.Records[i] = Record{ID: r.ID, Attrs: r.Record, Score: r.Score, Radius: &radius}
	}
	return out
}

// NewORUResponse converts an ORU result to the wire format.
func NewORUResponse(res *ordu.ORUResult) *QueryResponse {
	out := &QueryResponse{Op: "oru", Rho: res.Rho, Records: newRecords(res.Records)}
	for _, reg := range res.Regions {
		out.Regions = append(out.Regions, Region{
			TopK:    newRecords(reg.TopK),
			MinDist: reg.MinDist,
			Witness: reg.Witness,
		})
	}
	return out
}

// NewRecordsResponse wraps a plain record list (CLI top-k/skyline output).
func NewRecordsResponse(op string, rs []ordu.Result) *QueryResponse {
	return &QueryResponse{Op: op, Records: newRecords(rs)}
}

func newRecords(rs []ordu.Result) []Record {
	out := make([]Record, len(rs))
	for i, r := range rs {
		out[i] = Record{ID: r.ID, Attrs: r.Record, Score: r.Score}
	}
	return out
}

// validateWire rejects request fields JSON decoding cannot: non-finite
// seed components arrive only via strings, but a defensive check keeps the
// invariant local.
func validateWire(req *QueryRequest) error {
	if req.Dataset == "" {
		return fmt.Errorf("missing dataset")
	}
	if len(req.W) == 0 {
		return fmt.Errorf("missing seed vector w")
	}
	for j, x := range req.W {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Errorf("w[%d] is not finite", j)
		}
	}
	// Basic parameter sanity lives here, before the cache lookup, so
	// garbage requests neither consult nor pollute the cache; the facade
	// re-validates as defense in depth.
	if req.K < 1 {
		return fmt.Errorf("k = %d, want k >= 1", req.K)
	}
	if req.M < req.K {
		return fmt.Errorf("m = %d < k = %d; the smallest output is the top-k itself", req.M, req.K)
	}
	return nil
}
