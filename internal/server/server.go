package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ordu"
	"ordu/internal/collection"
	"ordu/internal/data"
	"ordu/internal/geom"
	"ordu/internal/narrow"
)

// Config tunes a Server; zero fields take the documented defaults.
type Config struct {
	// Workers caps concurrently executing queries (default 4).
	Workers int
	// QueueDepth caps admitted-but-waiting requests beyond Workers
	// (default 2*Workers). A full queue answers 429 immediately.
	QueueDepth int
	// CacheSize is the LRU result-cache capacity in entries (default 256;
	// negative disables caching).
	CacheSize int
	// DefaultTimeout is the per-request deadline when the request does not
	// name one (default 10s).
	DefaultTimeout time.Duration
	// MaxTimeout caps request-supplied deadlines (default 60s).
	MaxTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 2 * c.Workers
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = 0
	}
	if c.CacheSize == 0 {
		c.CacheSize = 256
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 10 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 60 * time.Second
	}
	return c
}

// namedDataset pairs a dataset with its registration generation and the
// reader/writer lock serialising point mutations against queries. The
// generation participates in cache keys, so replacing a dataset under the
// same name (or bumping the generation as the invalidation fallback)
// implicitly invalidates its cached results.
type namedDataset struct {
	ds *ordu.Dataset
	// mu serialises point mutations (write-locked) against queries and
	// stat reads (read-locked). Queries hold the read lock across the core
	// computation and the cache fill, so a later mutation's invalidation
	// scan always observes the filled entry.
	mu  sync.RWMutex
	gen atomic.Uint64
}

// Server answers ORD/ORU queries over named in-memory datasets. Datasets
// are mutable: point writes take the dataset's writer lock, queries share
// its reader lock, and the result cache is invalidated per-entry with a
// dominance keep-test (wholesale replacement falls back to a generation
// bump).
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	pool  *pool
	cache *lruCache
	met   *metrics

	mu       sync.RWMutex
	datasets map[string]*namedDataset
	nextGen  uint64
}

// New builds a Server with the given configuration.
func New(cfg Config) *Server {
	s := &Server{
		cfg:      cfg.withDefaults(),
		datasets: make(map[string]*namedDataset),
	}
	s.pool = newPool(s.cfg.Workers, s.cfg.QueueDepth)
	s.cache = newLRUCache(s.cfg.CacheSize)
	s.met = newMetrics()
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /datasets", s.handleListDatasets)
	s.mux.HandleFunc("POST /datasets", s.handleAddDataset)
	s.mux.HandleFunc("POST /datasets/{name}/points", s.handleWritePoint)
	s.mux.HandleFunc("DELETE /datasets/{name}/points/{id}", s.handleDeletePoint)
	s.mux.HandleFunc("POST /query/ord", func(w http.ResponseWriter, r *http.Request) { s.handleQuery(w, r, "ord") })
	s.mux.HandleFunc("POST /query/oru", func(w http.ResponseWriter, r *http.Request) { s.handleQuery(w, r, "oru") })
	return s
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Config returns the effective configuration, with defaults applied.
func (s *Server) Config() Config { return s.cfg }

// AddDataset registers (or replaces) a dataset under the given name.
// Replacement bumps the name's generation — the gen-bump fallback that
// invalidates every cached result wholesale, where per-point mutations
// instead run the fine-grained dominance keep-test.
func (s *Server) AddDataset(name string, ds *ordu.Dataset) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextGen++
	nd := &namedDataset{ds: ds}
	nd.gen.Store(s.nextGen)
	s.datasets[name] = nd
}

// dataset returns a registered dataset.
func (s *Server) dataset(name string) (*namedDataset, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	nd, ok := s.datasets[name]
	return nd, ok
}

// --- query handling ---

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request, op string) {
	start := time.Now()
	var req QueryRequest
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(&req); err != nil {
		s.fail(w, op, start, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	if err := validateWire(&req); err != nil {
		s.fail(w, op, start, http.StatusBadRequest, err.Error())
		return
	}
	nd, ok := s.dataset(req.Dataset)
	if !ok {
		s.fail(w, op, start, http.StatusNotFound, fmt.Sprintf("unknown dataset %q", req.Dataset))
		return
	}

	key := cacheKey(op, req.Dataset, nd.gen.Load(), req.W, req.K, req.M)
	if body, ok := s.cache.Get(key); ok {
		w.Header().Set("X-Cache", "HIT")
		s.reply(w, op, start, http.StatusOK, body)
		return
	}

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	release, err := s.pool.acquire(ctx)
	if err != nil {
		if errors.Is(err, errOverloaded) {
			w.Header().Set("Retry-After", "1")
			s.fail(w, op, start, http.StatusTooManyRequests, "server overloaded: worker pool and queue are full")
			return
		}
		// Deadline expired (or client left) while queued.
		s.fail(w, op, start, statusForCtx(err), fmt.Sprintf("request expired while queued: %v", err))
		return
	}
	defer release()

	// The read lock covers the core computation, the marshal (output
	// records alias the dataset's packed storage) and the cache fill, so a
	// concurrent mutation either happens-before this query or runs its
	// invalidation scan after the entry exists.
	nd.mu.RLock()
	var resp *QueryResponse
	switch op {
	case "ord":
		res, qerr := nd.ds.ORDCtx(ctx, req.W, req.K, req.M) //ordlint:allow lockhold — reader lock by design: ORDCtx returns borrows (//ordlint:borrows) that borrowck keeps inside this region, so the lock must span query, marshal and cache fill; ctx bounds the hold time
		if qerr != nil {
			err = qerr
		} else {
			resp = NewORDResponse(res)
		}
	case "oru":
		res, qerr := nd.ds.ORUParallelCtx(ctx, req.W, req.K, req.M, req.Workers) //ordlint:allow lockhold — reader lock by design: ORUParallelCtx returns borrows the lock must cover; see the ORD arm above
		if qerr != nil {
			err = qerr
		} else {
			resp = NewORUResponse(res)
		}
	}
	if err != nil {
		nd.mu.RUnlock()
		s.fail(w, op, start, statusForQueryError(err), err.Error())
		return
	}
	body, err := json.Marshal(resp)
	if err != nil {
		nd.mu.RUnlock()
		s.fail(w, op, start, http.StatusInternalServerError, err.Error())
		return
	}
	s.cache.Put(key, body, req.Dataset, req.K)
	nd.mu.RUnlock()
	w.Header().Set("X-Cache", "MISS")
	s.reply(w, op, start, http.StatusOK, body)
}

// statusForQueryError maps a facade/core error to an HTTP status.
func statusForQueryError(err error) int {
	switch {
	case errors.Is(err, ordu.ErrBadSeed), errors.Is(err, ordu.ErrBadParams):
		return http.StatusBadRequest
	case errors.Is(err, ordu.ErrInsufficientData):
		return http.StatusUnprocessableEntity
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return statusForCtx(err)
	default:
		return http.StatusInternalServerError
	}
}

// statusForCtx maps a context cancellation cause: deadline -> 504, client
// disconnect -> 500 (the client never sees it; the counter does).
func statusForCtx(err error) int {
	if errors.Is(err, context.DeadlineExceeded) {
		return http.StatusGatewayTimeout
	}
	return http.StatusInternalServerError
}

// --- datasets ---

// DatasetRequest is the body of POST /datasets: either a server-local CSV
// path or a generator spec.
type DatasetRequest struct {
	Name      string         `json:"name"`
	CSVPath   string         `json:"csv_path,omitempty"`
	Generator *GeneratorSpec `json:"generator,omitempty"`
}

// GeneratorSpec names one of the internal/data generators.
type GeneratorSpec struct {
	// Dist is IND, COR, ANTI, HOTEL, HOUSE, NBA or TA (case-insensitive).
	Dist string `json:"dist"`
	// N is the cardinality (<= 0 uses the canonical size for the real-like
	// generators; required for IND/COR/ANTI).
	N int `json:"n,omitempty"`
	// D is the dimensionality (IND/COR/ANTI only).
	D int `json:"d,omitempty"`
	// Seed drives the generator.
	Seed int64 `json:"seed,omitempty"`
}

// DatasetInfo describes one registered dataset: identity, shape, exact
// bounds, and the cumulative write counters of its live-mutation history
// (bulk registration does not count as writes).
type DatasetInfo struct {
	Name    string    `json:"name"`
	Records int       `json:"records"`
	Dims    int       `json:"dims"`
	Inserts uint64    `json:"inserts"`
	Updates uint64    `json:"updates"`
	Deletes uint64    `json:"deletes"`
	Min     []float64 `json:"min,omitempty"`
	Max     []float64 `json:"max,omitempty"`
}

func infoFromStats(name string, st collection.Stats) DatasetInfo {
	return DatasetInfo{
		Name:    name,
		Records: st.Count,
		Dims:    st.Dims,
		Inserts: st.Inserts,
		Updates: st.Updates,
		Deletes: st.Deletes,
		Min:     st.Min,
		Max:     st.Max,
	}
}

// BuildDataset materialises a dataset from a CSV path or generator spec.
// CSV columns are min-max normalised into [0,1], matching cmd/ordu.
func BuildDataset(csvPath string, gen *GeneratorSpec) (*ordu.Dataset, error) {
	switch {
	case csvPath != "" && gen != nil:
		return nil, fmt.Errorf("give either csv_path or generator, not both")
	case csvPath != "":
		recs, err := data.LoadCSV(csvPath)
		if err != nil {
			return nil, err
		}
		return ordu.NewDataset(ordu.Normalize(recs))
	case gen != nil:
		recs, err := generate(gen)
		if err != nil {
			return nil, err
		}
		return ordu.NewDataset(recs)
	default:
		return nil, fmt.Errorf("give csv_path or generator")
	}
}

func generate(g *GeneratorSpec) ([][]float64, error) {
	var pts []geom.Vector
	switch strings.ToUpper(g.Dist) {
	case "IND", "COR", "ANTI":
		if g.N <= 0 || g.D < 2 {
			return nil, fmt.Errorf("generator %s needs n >= 1 and d >= 2", g.Dist)
		}
		pts = data.Synthetic(data.Distribution(strings.ToUpper(g.Dist)), g.N, g.D, g.Seed)
	case "HOTEL":
		pts = data.Hotel(g.N, g.Seed)
	case "HOUSE":
		pts = data.House(g.N, g.Seed)
	case "NBA":
		pts = data.NBA(g.N, g.Seed)
	case "TA":
		pts = data.TripAdvisor(g.N, g.Seed)
	default:
		return nil, fmt.Errorf("unknown generator %q (want IND, COR, ANTI, HOTEL, HOUSE, NBA or TA)", g.Dist)
	}
	out := make([][]float64, len(pts))
	for i, p := range pts {
		out[i] = p
	}
	return out, nil
}

func (s *Server) handleAddDataset(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req DatasetRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.fail(w, "datasets", start, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	if req.Name == "" {
		s.fail(w, "datasets", start, http.StatusBadRequest, "missing dataset name")
		return
	}
	ds, err := BuildDataset(req.CSVPath, req.Generator)
	if err != nil {
		s.fail(w, "datasets", start, http.StatusBadRequest, err.Error())
		return
	}
	// Snapshot the stats before publishing: once AddDataset registers ds,
	// other requests can reach it and reads need its lock.
	st := ds.Stats()
	s.AddDataset(req.Name, ds)
	s.writeJSON(w, "datasets", start, http.StatusCreated, infoFromStats(req.Name, st))
}

func (s *Server) handleListDatasets(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.mu.RLock()
	named := make(map[string]*namedDataset, len(s.datasets))
	for name, nd := range s.datasets {
		named[name] = nd
	}
	s.mu.RUnlock()
	infos := make([]DatasetInfo, 0, len(named))
	for name, nd := range named {
		nd.mu.RLock()
		st := nd.ds.Stats()
		nd.mu.RUnlock()
		infos = append(infos, infoFromStats(name, st))
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	s.writeJSON(w, "datasets", start, http.StatusOK, infos)
}

// --- point mutations ---

// PointWriteRequest is the body of POST /datasets/{name}/points. With id
// omitted the server assigns a fresh id and inserts; with id given the
// write is an upsert (insert when free, in-place update when live).
type PointWriteRequest struct {
	ID    *int      `json:"id,omitempty"`
	Point []float64 `json:"point"`
}

// PointWriteResponse reports an applied point write.
type PointWriteResponse struct {
	ID      int  `json:"id"`
	Updated bool `json:"updated"`
	Records int  `json:"records"`
	// CacheDropped counts result-cache entries this write invalidated;
	// entries whose k the mutated point's plain-dominator count covers
	// survive untouched.
	CacheDropped int `json:"cache_dropped"`
}

// PointDeleteResponse reports an applied point deletion.
type PointDeleteResponse struct {
	ID           int `json:"id"`
	Records      int `json:"records"`
	CacheDropped int `json:"cache_dropped"`
}

// statusForMutationError maps collection sentinel errors to HTTP statuses.
func statusForMutationError(err error) int {
	switch {
	case errors.Is(err, collection.ErrUnknownID):
		return http.StatusNotFound
	case errors.Is(err, collection.ErrDuplicateID):
		return http.StatusConflict
	case errors.Is(err, collection.ErrBadPoint):
		return http.StatusBadRequest
	case errors.Is(err, narrow.ErrTooLarge):
		// Well-formed request, but the flat core's int32 slot arena
		// cannot address another record: a client-capacity error, not a
		// server fault.
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) handleWritePoint(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	name := r.PathValue("name")
	nd, ok := s.dataset(name)
	if !ok {
		s.fail(w, "points", start, http.StatusNotFound, fmt.Sprintf("unknown dataset %q", name))
		return
	}
	var req PointWriteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.fail(w, "points", start, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	if len(req.Point) != nd.ds.Dim() {
		s.fail(w, "points", start, http.StatusBadRequest,
			fmt.Sprintf("point has %d attributes, want %d", len(req.Point), nd.ds.Dim()))
		return
	}
	for j, x := range req.Point {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			s.fail(w, "points", start, http.StatusBadRequest, fmt.Sprintf("point[%d] is not finite", j))
			return
		}
	}

	nd.mu.Lock()
	var (
		id      int
		updated bool
		err     error
		hasOld  bool
		nOld    int
	)
	if req.ID == nil {
		id, err = nd.ds.Insert(req.Point)
	} else {
		id = *req.ID
		// Count the outgoing incarnation's dominators before the write
		// rearranges the storage: the keep-test must cover both states.
		if old, live := nd.ds.Record(id); live {
			hasOld = true
			nOld = nd.ds.CountDominators(old)
		}
		updated, err = nd.ds.Upsert(id, req.Point)
	}
	if err != nil {
		nd.mu.Unlock()
		s.fail(w, "points", start, statusForMutationError(err), err.Error())
		return
	}
	keepK := nd.ds.CountDominators(req.Point)
	if hasOld && nOld < keepK {
		keepK = nOld
	}
	dropped := s.cache.DropAbove(name, keepK)
	records := nd.ds.Len()
	nd.mu.Unlock()

	if updated {
		s.met.updates.Add(1)
	} else {
		s.met.inserts.Add(1)
	}
	s.met.cacheDropped.Add(int64(dropped))
	code := http.StatusCreated
	if updated {
		code = http.StatusOK
	}
	s.writeJSON(w, "points", start, code,
		PointWriteResponse{ID: id, Updated: updated, Records: records, CacheDropped: dropped})
}

func (s *Server) handleDeletePoint(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	name := r.PathValue("name")
	nd, ok := s.dataset(name)
	if !ok {
		s.fail(w, "points", start, http.StatusNotFound, fmt.Sprintf("unknown dataset %q", name))
		return
	}
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		s.fail(w, "points", start, http.StatusBadRequest, fmt.Sprintf("bad point id %q", r.PathValue("id")))
		return
	}

	nd.mu.Lock()
	old, live := nd.ds.Record(id)
	if !live {
		nd.mu.Unlock()
		s.fail(w, "points", start, http.StatusNotFound, fmt.Sprintf("dataset %q has no point %d", name, id))
		return
	}
	keepK := nd.ds.CountDominators(old)
	nd.ds.Delete(id)
	dropped := s.cache.DropAbove(name, keepK)
	records := nd.ds.Len()
	nd.mu.Unlock()

	s.met.deletes.Add(1)
	s.met.cacheDropped.Add(int64(dropped))
	s.writeJSON(w, "points", start, http.StatusOK,
		PointDeleteResponse{ID: id, Records: records, CacheDropped: dropped})
}

// --- health & metrics ---

// Health is the GET /healthz response schema.
type Health struct {
	Status        string  `json:"status"`
	Datasets      int     `json:"datasets"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.mu.RLock()
	n := len(s.datasets)
	s.mu.RUnlock()
	s.writeJSON(w, "other", start, http.StatusOK, Health{
		Status:        "ok",
		Datasets:      n,
		UptimeSeconds: time.Since(s.met.start).Seconds(),
	})
}

// Snapshot assembles the current metrics.
func (s *Server) Snapshot() Metrics {
	hits, misses := s.cache.Stats()
	hitRate := 0.0
	if hits+misses > 0 {
		hitRate = float64(hits) / float64(hits+misses)
	}
	m := Metrics{
		UptimeSeconds: time.Since(s.met.start).Seconds(),
		Requests:      make(map[string]int64),
		Responses:     make(map[string]int64),
		Queue: QueueMetrics{
			Workers:  s.cfg.Workers,
			Running:  s.pool.running(),
			Depth:    s.pool.queued(),
			Capacity: s.pool.capacity,
		},
		Cache: CacheMetrics{
			Hits:     hits,
			Misses:   misses,
			HitRate:  hitRate,
			Entries:  s.cache.Len(),
			Capacity: s.cfg.CacheSize,
		},
		Mutations: MutationMetrics{
			Inserts:      s.met.inserts.Load(),
			Updates:      s.met.updates.Load(),
			Deletes:      s.met.deletes.Load(),
			CacheDropped: s.met.cacheDropped.Load(),
		},
		Runtime: readRuntimeMetrics(),
	}
	for op, c := range s.met.requests {
		m.Requests[op] = c.Load()
	}
	total := int64(0)
	for code, c := range s.met.status {
		m.Responses[strconv.Itoa(code)] = c.Load()
		total += c.Load()
	}
	m.Responses["total"] = total
	for i, le := range latencyBucketsMS {
		m.LatencyMS = append(m.LatencyMS, LatencyBucket{
			LEMilliseconds: strconv.FormatFloat(le, 'g', -1, 64),
			Count:          s.met.latency[i].Load(),
		})
	}
	m.LatencyMS = append(m.LatencyMS, LatencyBucket{
		LEMilliseconds: "+Inf",
		Count:          s.met.latency[len(latencyBucketsMS)].Load(),
	})
	return m
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, "other", time.Now(), http.StatusOK, s.Snapshot())
}

// --- response plumbing ---

// reply writes a pre-marshaled JSON body and records metrics.
func (s *Server) reply(w http.ResponseWriter, op string, start time.Time, code int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(body)
	s.met.observe(op, code, time.Since(start))
}

// writeJSON marshals v and replies.
func (s *Server) writeJSON(w http.ResponseWriter, op string, start time.Time, code int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		s.fail(w, op, start, http.StatusInternalServerError, err.Error())
		return
	}
	s.reply(w, op, start, code, body)
}

// fail replies with an ErrorResponse.
func (s *Server) fail(w http.ResponseWriter, op string, start time.Time, code int, msg string) {
	s.writeJSON(w, op, start, code, ErrorResponse{Error: msg})
}
