package server

import (
	"runtime"
	"sync/atomic"
	"time"
)

// latencyBucketsMS are the upper bounds (milliseconds, cumulative
// prometheus-style `le` semantics) of the request latency histogram; an
// implicit +Inf bucket counts everything.
var latencyBucketsMS = []float64{1, 5, 25, 100, 500, 2500}

// metrics holds the server's cumulative counters. All fields are updated
// with atomics; reading produces a consistent-enough snapshot for
// monitoring.
type metrics struct {
	start time.Time

	requests map[string]*atomic.Int64 // per operator
	status   map[int]*atomic.Int64    // per mapped status class / code
	latency  []atomic.Int64           // one per bucket + +Inf

	// Write-path counters: applied point mutations across all datasets and
	// the result-cache entries their fine-grained invalidation dropped.
	inserts      atomic.Int64
	updates      atomic.Int64
	deletes      atomic.Int64
	cacheDropped atomic.Int64
}

// statusKeys are the response-code counters the server distinguishes:
// overload (429) and query deadline (504) get their own counters since
// they are the two signals admission tuning cares about.
var statusKeys = []int{200, 400, 404, 422, 429, 500, 504}

func newMetrics() *metrics {
	m := &metrics{
		start:    time.Now(),
		requests: make(map[string]*atomic.Int64),
		status:   make(map[int]*atomic.Int64),
		latency:  make([]atomic.Int64, len(latencyBucketsMS)+1),
	}
	for _, op := range []string{"ord", "oru", "datasets", "points", "other"} {
		m.requests[op] = new(atomic.Int64)
	}
	for _, code := range statusKeys {
		m.status[code] = new(atomic.Int64)
	}
	return m
}

// observe records one finished request.
func (m *metrics) observe(op string, code int, dur time.Duration) {
	c, ok := m.requests[op]
	if !ok {
		c = m.requests["other"]
	}
	c.Add(1)
	sc, ok := m.status[code]
	if !ok {
		// Codes without their own counter (e.g. 201) fold into their
		// class representative so a created dataset never reads as a 500.
		if sc, ok = m.status[code/100*100]; !ok {
			sc = m.status[500]
		}
	}
	sc.Add(1)
	ms := float64(dur) / float64(time.Millisecond)
	for i, le := range latencyBucketsMS {
		if ms <= le {
			m.latency[i].Add(1)
		}
	}
	m.latency[len(latencyBucketsMS)].Add(1)
}

// LatencyBucket is one cumulative histogram bucket on the wire.
type LatencyBucket struct {
	// LEMilliseconds is the bucket's inclusive upper bound ("+Inf" last).
	LEMilliseconds string `json:"le_ms"`
	Count          int64  `json:"count"`
}

// Metrics is the GET /metrics response schema (expvar-style JSON).
type Metrics struct {
	UptimeSeconds float64          `json:"uptime_seconds"`
	Requests      map[string]int64 `json:"requests"`
	Responses     map[string]int64 `json:"responses"`
	LatencyMS     []LatencyBucket  `json:"latency_ms"`
	Queue         QueueMetrics     `json:"queue"`
	Cache         CacheMetrics     `json:"cache"`
	Mutations     MutationMetrics  `json:"mutations"`
	Runtime       RuntimeMetrics   `json:"runtime"`
}

// MutationMetrics counts applied point writes across all datasets and the
// fine-grained cache invalidation they caused. CacheDropped staying low
// while writes flow is the observable signature of the dominance keep-test
// working (most writes land deep in the dominated interior and invalidate
// nothing).
type MutationMetrics struct {
	Inserts      int64 `json:"inserts"`
	Updates      int64 `json:"updates"`
	Deletes      int64 `json:"deletes"`
	CacheDropped int64 `json:"cache_dropped"`
}

// RuntimeMetrics exposes the Go runtime's allocation and GC counters, the
// observable side of the workspace-reuse work: steady-state query load
// should barely move Mallocs and NumGC between scrapes.
type RuntimeMetrics struct {
	HeapAllocBytes  uint64  `json:"heap_alloc_bytes"`  // live heap
	TotalAllocBytes uint64  `json:"total_alloc_bytes"` // cumulative
	Mallocs         uint64  `json:"mallocs"`           // cumulative heap objects
	Frees           uint64  `json:"frees"`
	NumGC           uint32  `json:"num_gc"`
	GCCPUFraction   float64 `json:"gc_cpu_fraction"`
	Goroutines      int     `json:"goroutines"`
}

// readRuntimeMetrics snapshots runtime.MemStats. ReadMemStats stops the
// world briefly, which is fine at /metrics scrape frequency.
func readRuntimeMetrics() RuntimeMetrics {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return RuntimeMetrics{
		HeapAllocBytes:  ms.HeapAlloc,
		TotalAllocBytes: ms.TotalAlloc,
		Mallocs:         ms.Mallocs,
		Frees:           ms.Frees,
		NumGC:           ms.NumGC,
		GCCPUFraction:   ms.GCCPUFraction,
		Goroutines:      runtime.NumGoroutine(),
	}
}

// QueueMetrics describes the worker pool's instantaneous state.
type QueueMetrics struct {
	Workers  int   `json:"workers"`
	Running  int   `json:"running"`
	Depth    int64 `json:"depth"`    // requests waiting for a worker
	Capacity int64 `json:"capacity"` // workers + queue slots
}

// CacheMetrics describes the result cache.
type CacheMetrics struct {
	Hits     int64   `json:"hits"`
	Misses   int64   `json:"misses"`
	HitRate  float64 `json:"hit_rate"`
	Entries  int     `json:"entries"`
	Capacity int     `json:"capacity"`
}
