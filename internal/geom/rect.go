package geom

import "fmt"

// Rect is an axis-aligned rectangle (minimum bounding rectangle) in data
// space, described by its low and high corners.
type Rect struct {
	Lo, Hi Vector
}

// NewRect returns a rectangle spanning the given corners. It panics if the
// corners disagree in dimension or ordering; MBRs are internal structures,
// so malformed input is a programming error.
func NewRect(lo, hi Vector) Rect {
	if len(lo) != len(hi) {
		panic(fmt.Sprintf("geom: rect corners of dims %d and %d", len(lo), len(hi))) //ordlint:allow nopanic — documented precondition; caller bug, not data-dependent
	}
	for i := range lo {
		if lo[i] > hi[i] {
			panic(fmt.Sprintf("geom: rect lo[%d]=%g > hi[%d]=%g", i, lo[i], i, hi[i])) //ordlint:allow nopanic — documented precondition; caller bug, not data-dependent
		}
	}
	return Rect{Lo: lo, Hi: hi}
}

// PointRect returns the degenerate rectangle covering exactly p.
func PointRect(p Vector) Rect {
	return Rect{Lo: p, Hi: p}
}

// Dim returns the dimensionality of the rectangle.
func (r Rect) Dim() int { return len(r.Lo) }

// Clone returns a deep copy of r.
func (r Rect) Clone() Rect {
	return Rect{Lo: r.Lo.Clone(), Hi: r.Hi.Clone()}
}

// TopCorner returns the corner with the maximum value in every dimension.
// BBS represents index entries by this corner: it upper-bounds the score of
// every record in the subtree for any non-negative preference vector.
func (r Rect) TopCorner() Vector { return r.Hi }

// Contains reports whether p lies inside r (boundaries included).
func (r Rect) Contains(p Vector) bool {
	for i := range p {
		if p[i] < r.Lo[i] || p[i] > r.Hi[i] {
			return false
		}
	}
	return true
}

// ContainsRect reports whether s lies entirely inside r.
func (r Rect) ContainsRect(s Rect) bool {
	for i := range r.Lo {
		if s.Lo[i] < r.Lo[i] || s.Hi[i] > r.Hi[i] {
			return false
		}
	}
	return true
}

// Intersects reports whether r and s overlap (boundaries included).
func (r Rect) Intersects(s Rect) bool {
	for i := range r.Lo {
		if r.Hi[i] < s.Lo[i] || s.Hi[i] < r.Lo[i] {
			return false
		}
	}
	return true
}

// Union returns the smallest rectangle covering both r and s.
func (r Rect) Union(s Rect) Rect {
	lo := make(Vector, len(r.Lo))
	hi := make(Vector, len(r.Hi))
	for i := range lo {
		lo[i] = min(r.Lo[i], s.Lo[i])
		hi[i] = max(r.Hi[i], s.Hi[i])
	}
	return Rect{Lo: lo, Hi: hi}
}

// Extend grows r in place to cover s.
func (r *Rect) Extend(s Rect) {
	for i := range r.Lo {
		r.Lo[i] = min(r.Lo[i], s.Lo[i])
		r.Hi[i] = max(r.Hi[i], s.Hi[i])
	}
}

// Area returns the d-dimensional volume of r.
func (r Rect) Area() float64 {
	a := 1.0
	for i := range r.Lo {
		a *= r.Hi[i] - r.Lo[i]
	}
	return a
}

// Margin returns the sum of edge lengths of r.
func (r Rect) Margin() float64 {
	m := 0.0
	for i := range r.Lo {
		m += r.Hi[i] - r.Lo[i]
	}
	return m
}

// Enlargement returns the increase in area of r needed to include s.
func (r Rect) Enlargement(s Rect) float64 {
	return r.Union(s).Area() - r.Area()
}

// Center returns the centre point of r.
func (r Rect) Center() Vector {
	c := make(Vector, len(r.Lo))
	for i := range c {
		c[i] = (r.Lo[i] + r.Hi[i]) / 2
	}
	return c
}
