package geom

import (
	"math"
	"testing"
)

// FuzzDominates checks the order-theoretic laws the ORD/ORU pruning logic
// relies on: Dominates is a strict partial order (irreflexive, antisymmetric,
// transitive), WeakDominates is its reflexive closure, and the two agree
// through Equal. Non-finite coordinates are skipped — NaN genuinely breaks
// transitivity (a=(0,5) ⊁ b=(NaN,4) ⊁ c=(1,3) yet a ⊁ c fails), which is why
// the data loaders reject it before points reach the index.
func FuzzDominates(f *testing.F) {
	f.Add(1.0, 2.0, 3.0, 1.0, 2.0, 3.0, 0.0, 0.0, 0.0)
	f.Add(5.0, 1.0, 0.5, 4.0, 1.0, 0.5, 3.0, 0.9, 0.4)
	f.Add(0.0, 5.0, 0.0, 0.0, 4.0, 0.0, 1.0, 3.0, 0.0)
	f.Add(-1.0, -2.0, -3.0, -4.0, -5.0, -6.0, -7.0, -8.0, -9.0)
	f.Add(0.0, 0.0, 0.0, math.Copysign(0, -1), 0.0, 0.0, 0.0, 0.0, 0.0)
	f.Fuzz(func(t *testing.T, a0, a1, a2, b0, b1, b2, c0, c1, c2 float64) {
		vecs := [3]Vector{{a0, a1, a2}, {b0, b1, b2}, {c0, c1, c2}}
		for _, v := range vecs {
			for _, x := range v {
				if math.IsNaN(x) || math.IsInf(x, 0) {
					t.Skip("dominance laws are stated for finite coordinates")
				}
			}
		}
		a, b, c := vecs[0], vecs[1], vecs[2]
		for _, v := range vecs {
			if v.Dominates(v) {
				t.Fatalf("Dominates not irreflexive: %v", v)
			}
			if !v.WeakDominates(v) {
				t.Fatalf("WeakDominates not reflexive: %v", v)
			}
		}
		for _, pair := range [...][2]Vector{{a, b}, {b, c}, {a, c}} {
			u, v := pair[0], pair[1]
			ud := u.Dominates(v)
			if ud && v.Dominates(u) {
				t.Fatalf("Dominates not antisymmetric: %v vs %v", u, v)
			}
			if want := u.WeakDominates(v) && !u.Equal(v); ud != want {
				t.Fatalf("Dominates(%v, %v) = %v, want (WeakDominates && !Equal) = %v", u, v, ud, want)
			}
			if u.WeakDominates(v) && v.WeakDominates(u) && !u.Equal(v) {
				t.Fatalf("mutual weak dominance without equality: %v vs %v", u, v)
			}
		}
		if a.Dominates(b) && b.Dominates(c) && !a.Dominates(c) {
			t.Fatalf("Dominates not transitive: %v > %v > %v", a, b, c)
		}
		if a.WeakDominates(b) && b.WeakDominates(c) && !a.WeakDominates(c) {
			t.Fatalf("WeakDominates not transitive: %v >= %v >= %v", a, b, c)
		}
	})
}
