package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDot(t *testing.T) {
	v := Vector{1, 2, 3}
	u := Vector{4, 5, 6}
	if got := v.Dot(u); got != 32 {
		t.Fatalf("Dot = %g, want 32", got)
	}
}

func TestDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched dims")
		}
	}()
	Vector{1}.Dot(Vector{1, 2})
}

func TestSubAddScale(t *testing.T) {
	v := Vector{3, 4}
	u := Vector{1, 1}
	if got := v.Sub(u); !got.Equal(Vector{2, 3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Add(u); !got.Equal(Vector{4, 5}) {
		t.Errorf("Add = %v", got)
	}
	if got := v.Scale(2); !got.Equal(Vector{6, 8}) {
		t.Errorf("Scale = %v", got)
	}
}

func TestNormDist(t *testing.T) {
	v := Vector{3, 4}
	if got := v.Norm(); got != 5 {
		t.Errorf("Norm = %g, want 5", got)
	}
	if got := v.Dist(Vector{0, 0}); got != 5 {
		t.Errorf("Dist = %g, want 5", got)
	}
}

func TestDominates(t *testing.T) {
	cases := []struct {
		a, b Vector
		want bool
	}{
		{Vector{2, 2}, Vector{1, 1}, true},
		{Vector{2, 1}, Vector{1, 1}, true},
		{Vector{1, 1}, Vector{1, 1}, false}, // no self-domination
		{Vector{2, 0}, Vector{1, 1}, false},
		{Vector{1, 2}, Vector{2, 1}, false},
	}
	for _, c := range cases {
		if got := c.a.Dominates(c.b); got != c.want {
			t.Errorf("%v dominates %v = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestDominatesAntisymmetric(t *testing.T) {
	f := func(a, b [3]float64) bool {
		v, u := Vector(a[:]), Vector(b[:])
		return !(v.Dominates(u) && u.Dominates(v))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRandSimplex(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		v := RandSimplex(rng, 5)
		if !OnSimplex(v) {
			t.Fatalf("RandSimplex produced off-simplex vector %v", v)
		}
	}
}

func TestRandDirichletConcentrates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := Vector{0.25, 0.25, 0.25, 0.25}
	sumDist := 0.0
	const n = 200
	for i := 0; i < n; i++ {
		v := RandDirichlet(rng, c, 400)
		if !OnSimplex(v) {
			t.Fatalf("off-simplex Dirichlet draw %v", v)
		}
		sumDist += v.Dist(c)
	}
	if avg := sumDist / n; avg > 0.1 {
		t.Errorf("high-concentration Dirichlet too spread: avg dist %g", avg)
	}
}

func TestNormalizeToSimplex(t *testing.T) {
	v, err := NormalizeToSimplex(Vector{2, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Equal(Vector{0.25, 0.25, 0.5}) {
		t.Errorf("got %v", v)
	}
	if _, err := NormalizeToSimplex(Vector{0, 0}); err == nil {
		t.Error("expected error for zero vector")
	}
	if _, err := NormalizeToSimplex(Vector{-1, 2}); err == nil {
		t.Error("expected error for negative weight")
	}
}

func TestValidatePreference(t *testing.T) {
	if err := ValidatePreference(Vector{0.5, 0.5}, 2); err != nil {
		t.Errorf("valid vector rejected: %v", err)
	}
	if err := ValidatePreference(Vector{0.5, 0.5}, 3); err == nil {
		t.Error("wrong dimension accepted")
	}
	if err := ValidatePreference(Vector{0.9, 0.9}, 2); err == nil {
		t.Error("off-simplex vector accepted")
	}
}

func TestMaxSimplexDist(t *testing.T) {
	// From the barycentre of the 1-simplex, both vertices are at distance
	// sqrt(0.5^2+0.5^2).
	w := Vector{0.5, 0.5}
	want := math.Sqrt(0.5)
	if got := MaxSimplexDist(w); math.Abs(got-want) > 1e-12 {
		t.Errorf("MaxSimplexDist = %g, want %g", got, want)
	}
	// From a vertex, the farthest point is another vertex at distance sqrt(2).
	w = Vector{1, 0, 0}
	if got := MaxSimplexDist(w); math.Abs(got-math.Sqrt2) > 1e-12 {
		t.Errorf("MaxSimplexDist = %g, want sqrt(2)", got)
	}
}

func TestRectBasics(t *testing.T) {
	r := NewRect(Vector{0, 0}, Vector{2, 3})
	if r.Area() != 6 {
		t.Errorf("Area = %g", r.Area())
	}
	if r.Margin() != 5 {
		t.Errorf("Margin = %g", r.Margin())
	}
	if !r.Contains(Vector{1, 1}) || r.Contains(Vector{3, 1}) {
		t.Error("Contains misbehaves")
	}
	s := NewRect(Vector{1, 1}, Vector{4, 2})
	if !r.Intersects(s) {
		t.Error("rectangles should intersect")
	}
	u := r.Union(s)
	if !u.Lo.Equal(Vector{0, 0}) || !u.Hi.Equal(Vector{4, 3}) {
		t.Errorf("Union = %v", u)
	}
	if got := r.Enlargement(s); math.Abs(got-6) > 1e-12 {
		t.Errorf("Enlargement = %g, want 6", got)
	}
	if !u.ContainsRect(r) || !u.ContainsRect(s) {
		t.Error("union must contain operands")
	}
	if !r.TopCorner().Equal(Vector{2, 3}) {
		t.Error("TopCorner wrong")
	}
	if !r.Center().Equal(Vector{1, 1.5}) {
		t.Error("Center wrong")
	}
}

func TestRectExtend(t *testing.T) {
	r := NewRect(Vector{0, 0}, Vector{1, 1})
	r2 := r.Clone()
	r2.Extend(NewRect(Vector{-1, 0.5}, Vector{0.5, 2}))
	if !r2.Lo.Equal(Vector{-1, 0}) || !r2.Hi.Equal(Vector{1, 2}) {
		t.Errorf("Extend = %v", r2)
	}
	// Clone isolation: extending the clone must not touch the original.
	if !r.Lo.Equal(Vector{0, 0}) || !r.Hi.Equal(Vector{1, 1}) {
		t.Error("Extend through clone mutated original")
	}
}

func TestNewRectPanicsOnBadCorners(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRect(Vector{1, 0}, Vector{0, 1})
}

func TestPointRect(t *testing.T) {
	p := Vector{0.3, 0.7}
	r := PointRect(p)
	if r.Area() != 0 || !r.Contains(p) {
		t.Error("PointRect misbehaves")
	}
}
