package geom

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
)

// SimplexTol is the tolerance used when validating that a vector lies on the
// unit simplex.
const SimplexTol = 1e-9

// OnSimplex reports whether v is a valid preference vector: non-negative
// components that sum to one (within SimplexTol).
func OnSimplex(v Vector) bool {
	if len(v) == 0 {
		return false
	}
	s := 0.0
	for _, x := range v {
		if x < -SimplexTol {
			return false
		}
		s += x
	}
	return math.Abs(s-1) <= 1e-6
}

// ValidatePreference returns a descriptive error if w is not a valid
// preference vector of dimension d.
func ValidatePreference(w Vector, d int) error {
	if len(w) != d {
		return fmt.Errorf("geom: preference vector has dimension %d, want %d", len(w), d)
	}
	if !OnSimplex(w) {
		return fmt.Errorf("geom: preference vector %v is not on the unit simplex", w)
	}
	return nil
}

// NormalizeToSimplex rescales a non-negative vector so its components sum to
// one. It returns an error for zero or negative input.
func NormalizeToSimplex(v Vector) (Vector, error) {
	s := 0.0
	for _, x := range v {
		if x < 0 {
			return nil, fmt.Errorf("geom: negative weight %g", x)
		}
		s += x
	}
	if s <= 0 {
		return nil, fmt.Errorf("geom: cannot normalize zero preference vector")
	}
	return v.Scale(1 / s), nil
}

// RandSimplex draws a uniformly distributed point on the (d-1)-simplex using
// the standard exponential-spacings construction.
func RandSimplex(rng *rand.Rand, d int) Vector {
	v := make(Vector, d)
	s := 0.0
	for i := range v {
		v[i] = rng.ExpFloat64()
		s += v[i]
	}
	for i := range v {
		v[i] /= s
	}
	return v
}

// RandDirichlet draws a point on the simplex from a symmetric Dirichlet
// distribution centred at c with concentration alpha (larger alpha means the
// draws cluster more tightly around c). It is used to simulate
// review-mined preference vectors, which are noisy estimates around a
// user's latent preference.
func RandDirichlet(rng *rand.Rand, c Vector, alpha float64) Vector {
	v := make(Vector, len(c))
	s := 0.0
	for i := range v {
		// Gamma(alpha*c_i) via Marsaglia-Tsang; shape may be < 1.
		v[i] = gammaSample(rng, math.Max(alpha*c[i], 1e-3))
		s += v[i]
	}
	if s <= 0 {
		return c.Clone()
	}
	for i := range v {
		v[i] /= s
	}
	return v
}

// gammaSample draws from Gamma(shape, 1) using Marsaglia-Tsang, with the
// usual boost for shape < 1.
func gammaSample(rng *rand.Rand, shape float64) float64 {
	if shape < 1 {
		u := rng.Float64()
		return gammaSample(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// simplexConsts caches, per dimension, the constant constraint rows that
// every simplex-restricted QP in the library shares: the all-ones equality
// row (sum v = 1), the d axis rows e_i (v_i >= 0), and the barycentre.
// The cached slices are shared and MUST be treated as read-only; qp.Solve
// only reads constraint rows, so sharing them across goroutines is safe.
type simplexConsts struct {
	ones       []float64
	axes       [][]float64
	axesZeros  []float64 // d zeros: the right-hand sides of the axis rows
	barycentre Vector
}

var simplexCache sync.Map // dim -> *simplexConsts

func simplexFor(d int) *simplexConsts {
	if c, ok := simplexCache.Load(d); ok {
		return c.(*simplexConsts)
	}
	c := &simplexConsts{
		ones:       make([]float64, d),
		axes:       make([][]float64, d),
		axesZeros:  make([]float64, d),
		barycentre: make(Vector, d),
	}
	for i := 0; i < d; i++ {
		c.ones[i] = 1
		e := make([]float64, d)
		e[i] = 1
		c.axes[i] = e
		c.barycentre[i] = 1 / float64(d)
	}
	actual, _ := simplexCache.LoadOrStore(d, c)
	return actual.(*simplexConsts)
}

// SimplexOnes returns the cached all-ones row of dimension d (the normal of
// the constraint sum v = 1). Shared storage: read-only.
func SimplexOnes(d int) []float64 { return simplexFor(d).ones }

// SimplexAxes returns the cached axis rows e_0..e_{d-1} (the normals of the
// non-negativity constraints v_i >= 0). Shared storage: read-only.
func SimplexAxes(d int) [][]float64 { return simplexFor(d).axes }

// SimplexZeros returns a cached slice of d zeros (the right-hand sides of
// the non-negativity constraints). Shared storage: read-only.
func SimplexZeros(d int) []float64 { return simplexFor(d).axesZeros }

// SimplexBarycentre returns the cached barycentre (1/d, ..., 1/d). Shared
// storage: read-only.
func SimplexBarycentre(d int) Vector { return simplexFor(d).barycentre }

// MaxSimplexDist returns the distance from w to the farthest point of the
// simplex, i.e. the largest meaningful expansion radius: past it, the
// rho-ball covers the entire preference domain (footnote 2 of the paper).
// The farthest point of a simplex from any interior point is one of its
// vertices e_i.
func MaxSimplexDist(w Vector) float64 {
	best := 0.0
	for i := range w {
		// distance to vertex e_i
		s := 0.0
		for j := range w {
			x := w[j]
			if j == i {
				x -= 1
			}
			s += x * x
		}
		if s > best {
			best = s
		}
	}
	return math.Sqrt(best)
}
