// Package geom provides the low-level geometric primitives shared by every
// subsystem of the library: vectors in data space, preference vectors on the
// unit simplex, axis-aligned rectangles (MBRs), and dominance tests.
//
// Conventions follow the paper: larger attribute values are preferable, and
// preference vectors are non-negative with components summing to one, i.e.
// points on the (d-1)-simplex.
package geom

import (
	"fmt"
	"math"
)

// Vector is a point in d-dimensional space. It is used both for data records
// (attribute vectors) and for preference vectors on the simplex.
type Vector []float64

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	c := make(Vector, len(v))
	copy(c, v)
	return c
}

// Dot returns the inner product of v and u. It panics if dimensions differ.
func (v Vector) Dot(u Vector) float64 {
	if len(v) != len(u) {
		panic(fmt.Sprintf("geom: dot of mismatched dims %d and %d", len(v), len(u))) //ordlint:allow nopanic — documented precondition; caller bug, not data-dependent
	}
	s := 0.0
	for i := range v {
		s += v[i] * u[i]
	}
	return s
}

// Sub returns v - u as a new vector.
func (v Vector) Sub(u Vector) Vector {
	r := make(Vector, len(v))
	for i := range v {
		r[i] = v[i] - u[i]
	}
	return r
}

// Add returns v + u as a new vector.
func (v Vector) Add(u Vector) Vector {
	r := make(Vector, len(v))
	for i := range v {
		r[i] = v[i] + u[i]
	}
	return r
}

// Scale returns s*v as a new vector.
func (v Vector) Scale(s float64) Vector {
	r := make(Vector, len(v))
	for i := range v {
		r[i] = s * v[i]
	}
	return r
}

// Norm returns the Euclidean norm of v.
func (v Vector) Norm() float64 {
	return math.Sqrt(v.Dot(v))
}

// Dist returns the Euclidean distance between v and u.
func (v Vector) Dist(u Vector) float64 {
	s := 0.0
	for i := range v {
		d := v[i] - u[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Sum returns the sum of the components of v.
func (v Vector) Sum() float64 {
	s := 0.0
	for i := range v {
		s += v[i]
	}
	return s
}

// Equal reports whether v and u are identical component-wise.
func (v Vector) Equal(u Vector) bool {
	if len(v) != len(u) {
		return false
	}
	for i := range v {
		if v[i] != u[i] {
			return false
		}
	}
	return true
}

// b2i converts a comparison outcome to an integer flag; the compiler
// lowers it to a SETcc, keeping the dominance sweeps branch-free.
func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Dominates reports whether v dominates u under the maximisation convention:
// v is at least as large in every dimension and strictly larger in at least
// one. A vector does not dominate itself. The sweep is branch-free
// (arithmetic flag accumulation, mirroring the rtree kernels): dominance
// outcomes on skyband workloads are close to random, so an early-exit loop
// would mispredict on most calls while d flag updates are pipelined.
//
//ordlint:noalloc
func (v Vector) Dominates(u Vector) bool {
	ge, gt := 1, 0
	u = u[:len(v)]
	for i, x := range v {
		ge &= b2i(x >= u[i])
		gt |= b2i(x > u[i])
	}
	return ge&gt == 1
}

// WeakDominates reports whether v is at least as large as u in every
// dimension (ties allowed everywhere). Branch-free like Dominates.
//
//ordlint:noalloc
func (v Vector) WeakDominates(u Vector) bool {
	ge := 1
	u = u[:len(v)]
	for i, x := range v {
		ge &= b2i(x >= u[i])
	}
	return ge == 1
}
