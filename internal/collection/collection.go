// Package collection implements the live-dataset substrate: an id-keyed
// mutable point collection pairing an ordered id index with the spatial
// index (internal/rtree, mutated in place through its Insert/Delete) and
// compact packed point storage, so record coordinates stay contiguous for
// the dominance kernels even as the collection churns. It supports point
// Insert, Update, Delete and snapshot iteration, and tracks per-write
// statistics (count, bounds, dims, write counters) for the serving layer's
// metrics.
//
// Storage layout: coordinates live in fixed-size arena chunks of
// chunkSlots points each. A record's slot never moves and a chunk is never
// reallocated, so the vectors handed out to readers (Get/Scan and the
// dominance kernels) stay valid for the record's lifetime; freed slots are
// recycled through a free list. The flat R-tree keeps its own packed copy
// of each inserted point in its leaf slots (its cache-conscious layout
// wants tree-local contiguity), so the tree does not alias this arena —
// the collection's copy is the one its borrow contracts cover.
//
// Concurrency contract: a Collection is single-writer. Concurrent readers
// (queries over Tree(), Get, Scan) are safe only while no mutation is in
// flight; the serving layer enforces this with a per-dataset RWMutex.
// Vectors returned by Get/Scan alias the packed storage, and vectors
// emitted by index scans alias the tree's own packed slots: either way
// they stay valid only until the record is deleted (and its slot possibly
// recycled), so callers retaining them across mutations must copy.
package collection

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"ordu/internal/geom"
	"ordu/internal/narrow"
	"ordu/internal/rtree"
)

// chunkSlots is the number of points per storage chunk. 1024 slots keeps
// chunks around 32 KiB at d=4 — large enough for contiguous kernel sweeps,
// small enough that a near-empty collection stays cheap.
const chunkSlots = 1024

// Sentinel errors of the mutation API.
var (
	// ErrDuplicateID reports an Insert under an id that is already present.
	ErrDuplicateID = errors.New("collection: duplicate id")
	// ErrUnknownID reports an Update of an id that is not present.
	ErrUnknownID = errors.New("collection: unknown id")
	// ErrBadPoint reports a point with the wrong dimensionality or
	// non-finite coordinates.
	ErrBadPoint = errors.New("collection: bad point")
)

// Stats is a read-only snapshot of the collection's bookkeeping. Count,
// Dims and the bounds describe the current contents; the write counters are
// cumulative over the collection's lifetime and feed /metrics.
type Stats struct {
	Count   int
	Dims    int
	Inserts uint64
	Updates uint64
	Deletes uint64
	// Min and Max are the exact per-dimension bounds of the current
	// contents (nil when the collection is empty).
	Min, Max []float64
}

// Collection is an id-keyed mutable point collection.
type Collection struct {
	dim  int
	tree *rtree.Tree

	// Packed point storage: slot s lives in chunk s/chunkSlots at offset
	// (s%chunkSlots)*dim. Chunks are allocated once and never reallocated.
	chunks [][]float64
	idAt   []int // slot -> id, -1 for free slots
	slotOf map[int]int
	free   []int

	// sorted is the ordered id index, rebuilt lazily: mutations invalidate
	// it and the next Scan/IDs call re-sorts once. This keeps writes
	// O(log n) (tree insert) instead of O(n) (sorted-slice insertion) while
	// scans stay deterministic.
	sorted      []int
	sortedValid bool

	nextID                    int
	inserts, updates, deletes uint64
}

// New returns an empty collection for points of the given dimensionality.
func New(dim int, opts ...rtree.Option) *Collection {
	return &Collection{
		dim:    dim,
		tree:   rtree.New(dim, opts...),
		slotOf: make(map[int]int),
	}
}

// FromPoints bulk-builds a collection over the given points using the
// R-tree's STR packing; point i receives id i. The points are copied into
// the packed storage.
func FromPoints(points []geom.Vector, opts ...rtree.Option) (*Collection, error) {
	if len(points) == 0 {
		return nil, errors.New("collection: no points")
	}
	// The packed chunk storage indexes records with int32 slot handles;
	// refuse datasets the flat core cannot address instead of letting the
	// bulk load trip its capacity panic.
	if _, err := narrow.Index32(len(points)); err != nil {
		return nil, fmt.Errorf("collection: %d points: %w", len(points), err)
	}
	dim := len(points[0])
	c := &Collection{
		dim:    dim,
		idAt:   make([]int, 0, len(points)),
		slotOf: make(map[int]int, len(points)),
	}
	packed := make([]geom.Vector, len(points))
	for id, p := range points {
		if err := c.checkPoint(p); err != nil {
			return nil, fmt.Errorf("point %d: %w", id, err)
		}
		packed[id] = c.at(c.allocSlot(id, p))
	}
	c.tree = rtree.BulkLoad(packed, opts...)
	return c, nil
}

func (c *Collection) checkPoint(p geom.Vector) error {
	if len(p) != c.dim {
		return fmt.Errorf("%w: dim %d, want %d", ErrBadPoint, len(p), c.dim)
	}
	for j, x := range p {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Errorf("%w: coordinate %d is not finite", ErrBadPoint, j)
		}
	}
	return nil
}

// at returns the packed vector of a slot, capacity-capped so appends by a
// caller can never clobber the neighbouring slot.
//
//ordlint:borrows — the vector aliases the packed chunk storage
func (c *Collection) at(slot int) geom.Vector {
	lo := (slot % chunkSlots) * c.dim
	hi := lo + c.dim
	return geom.Vector(c.chunks[slot/chunkSlots][lo:hi:hi])
}

// allocSlot copies p into a free (or fresh) slot and indexes it under id.
func (c *Collection) allocSlot(id int, p geom.Vector) int {
	var slot int
	if n := len(c.free); n > 0 {
		slot = c.free[n-1]
		c.free = c.free[:n-1]
		c.idAt[slot] = id
	} else {
		slot = len(c.idAt)
		if slot/chunkSlots == len(c.chunks) {
			c.chunks = append(c.chunks, make([]float64, chunkSlots*c.dim))
		}
		c.idAt = append(c.idAt, id)
	}
	copy(c.at(slot), p)
	c.slotOf[id] = slot
	if id >= c.nextID {
		c.nextID = id + 1
	}
	c.sortedValid = false
	return slot
}

// Len returns the number of live records.
func (c *Collection) Len() int { return len(c.slotOf) }

// Dim returns the dimensionality of the collection's points.
func (c *Collection) Dim() int { return c.dim }

// Tree exposes the spatial index for the query layers. The tree is mutated
// in place by Insert/Update/Delete, so traversals must not run concurrently
// with mutations (see the package concurrency contract).
//
//ordlint:borrows — leaf rectangles alias the packed chunk storage
func (c *Collection) Tree() *rtree.Tree { return c.tree }

// Get returns the point stored under id; the vector aliases the packed
// storage (copy it to retain across mutations).
//
//ordlint:borrows — the vector aliases the packed chunk storage
func (c *Collection) Get(id int) (geom.Vector, bool) {
	slot, ok := c.slotOf[id]
	if !ok {
		return nil, false
	}
	return c.at(slot), true
}

// NewID returns an id that is not in use and never was: one past the
// highest id ever inserted.
func (c *Collection) NewID() int { return c.nextID }

// Insert adds a point under the given id. It fails with ErrDuplicateID when
// the id is live and with ErrBadPoint on dimension/finiteness violations.
// The point is copied; the caller keeps ownership of p.
//
//ordlint:writer — allocates a slot and mutates the spatial index
func (c *Collection) Insert(id int, p geom.Vector) error {
	if err := c.checkPoint(p); err != nil {
		return err
	}
	if _, dup := c.slotOf[id]; dup {
		return fmt.Errorf("%w: %d", ErrDuplicateID, id)
	}
	slot := c.allocSlot(id, p)
	if err := c.tree.Insert(id, c.at(slot)); err != nil {
		c.dropSlot(id, slot)
		return err
	}
	c.inserts++
	return nil
}

// Update replaces the point stored under a live id. It fails with
// ErrUnknownID when the id is not present. The spatial index entry is
// deleted and re-inserted; the packed slot is reused in place.
//
//ordlint:writer — overwrites packed coordinates and reindexes
func (c *Collection) Update(id int, p geom.Vector) error {
	if err := c.checkPoint(p); err != nil {
		return err
	}
	slot, ok := c.slotOf[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownID, id)
	}
	// Remove the index entry before overwriting the slot: the tree's leaf
	// rectangles alias the packed coordinates, so the old geometry must
	// leave the index while it is still intact.
	if !c.tree.Delete(id) {
		panic(fmt.Sprintf("collection: id %d in slot index but not in tree", id)) //ordlint:allow nopanic — internal invariant violation, not data-dependent
	}
	copy(c.at(slot), p)
	if err := c.tree.Insert(id, c.at(slot)); err != nil {
		c.dropSlot(id, slot)
		return err
	}
	c.updates++
	return nil
}

// Upsert inserts the point when id is free and updates it when live,
// reporting which happened.
//
//ordlint:writer — delegates to Insert/Update
func (c *Collection) Upsert(id int, p geom.Vector) (updated bool, err error) {
	if _, live := c.slotOf[id]; live {
		return true, c.Update(id, p)
	}
	return false, c.Insert(id, p)
}

// Delete removes the record stored under id, reporting whether it existed.
//
//ordlint:writer — unindexes the record and recycles its slot
func (c *Collection) Delete(id int) bool {
	slot, ok := c.slotOf[id]
	if !ok {
		return false
	}
	if !c.tree.Delete(id) {
		panic(fmt.Sprintf("collection: id %d in slot index but not in tree", id)) //ordlint:allow nopanic — internal invariant violation, not data-dependent
	}
	c.dropSlot(id, slot)
	c.deletes++
	return true
}

// dropSlot unindexes id and returns its slot to the free list.
func (c *Collection) dropSlot(id, slot int) {
	delete(c.slotOf, id)
	c.idAt[slot] = -1
	c.free = append(c.free, slot)
	c.sortedValid = false
}

// IDs returns the live ids in ascending order. The returned slice is the
// collection's cached index: treat it as read-only and do not retain it
// across mutations. Note IDs may rebuild that cache, so even this read
// path needs the writer side of the serving layer's lock.
//
//ordlint:borrows — returns the collection's cached index slice
func (c *Collection) IDs() []int {
	if !c.sortedValid {
		c.sorted = c.sorted[:0]
		for _, id := range c.idAt {
			if id >= 0 {
				c.sorted = append(c.sorted, id)
			}
		}
		sort.Ints(c.sorted)
		c.sortedValid = true
	}
	return c.sorted
}

// Scan iterates the collection in ascending id order, stopping early when
// fn returns false. The vectors passed to fn alias the packed storage; fn
// must not mutate the collection.
//
//ordlint:borrows — vectors handed to fn alias the packed chunk storage
func (c *Collection) Scan(fn func(id int, p geom.Vector) bool) {
	for _, id := range c.IDs() {
		if !fn(id, c.at(c.slotOf[id])) {
			return
		}
	}
}

// Bounds returns the exact per-dimension bounds of the current contents,
// or ok=false when the collection is empty.
func (c *Collection) Bounds() (geom.Rect, bool) { return c.tree.Bounds() }

// Stats snapshots the collection's bookkeeping.
func (c *Collection) Stats() Stats {
	s := Stats{
		Count:   c.Len(),
		Dims:    c.dim,
		Inserts: c.inserts,
		Updates: c.updates,
		Deletes: c.deletes,
	}
	if b, ok := c.Bounds(); ok {
		s.Min, s.Max = b.Lo, b.Hi
	}
	return s
}
