package collection

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"

	"ordu/internal/geom"
	"ordu/internal/rtree"
)

func mustInsert(t *testing.T, c *Collection, id int, p geom.Vector) {
	t.Helper()
	if err := c.Insert(id, p); err != nil {
		t.Fatalf("Insert(%d): %v", id, err)
	}
}

func TestInsertUpdateDeleteLifecycle(t *testing.T) {
	c := New(2)
	mustInsert(t, c, 7, geom.Vector{0.1, 0.2})
	mustInsert(t, c, 3, geom.Vector{0.3, 0.4})
	if c.Len() != 2 || c.Dim() != 2 {
		t.Fatalf("Len/Dim = %d/%d, want 2/2", c.Len(), c.Dim())
	}
	if got := c.NewID(); got != 8 {
		t.Fatalf("NewID = %d, want 8", got)
	}
	if err := c.Insert(7, geom.Vector{0.5, 0.5}); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("duplicate Insert error = %v, want ErrDuplicateID", err)
	}
	if err := c.Update(9, geom.Vector{0.5, 0.5}); !errors.Is(err, ErrUnknownID) {
		t.Fatalf("Update of unknown id error = %v, want ErrUnknownID", err)
	}
	if err := c.Update(7, geom.Vector{0.9, 0.8}); err != nil {
		t.Fatalf("Update(7): %v", err)
	}
	p, ok := c.Get(7)
	if !ok || !p.Equal(geom.Vector{0.9, 0.8}) {
		t.Fatalf("Get(7) = %v, %v after update", p, ok)
	}
	// The spatial index must have followed the move.
	ids := c.Tree().RangeQuery(geom.NewRect(geom.Vector{0.8, 0.7}, geom.Vector{1, 1}))
	if len(ids) != 1 || ids[0] != 7 {
		t.Fatalf("post-update range query = %v, want [7]", ids)
	}
	if !c.Delete(3) {
		t.Fatal("Delete(3) reported missing")
	}
	if c.Delete(3) {
		t.Fatal("double Delete(3) succeeded")
	}
	if _, ok := c.Get(3); ok {
		t.Fatal("Get(3) after delete reported present")
	}
	st := c.Stats()
	if st.Count != 1 || st.Inserts != 2 || st.Updates != 1 || st.Deletes != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRejectsBadPoints(t *testing.T) {
	c := New(2)
	for _, p := range []geom.Vector{
		{0.1},
		{0.1, 0.2, 0.3},
		{math.NaN(), 0.2},
		{0.1, math.Inf(1)},
		{math.Inf(-1), 0.2},
	} {
		if err := c.Insert(1, p); !errors.Is(err, ErrBadPoint) {
			t.Fatalf("Insert(%v) error = %v, want ErrBadPoint", p, err)
		}
	}
	if c.Len() != 0 {
		t.Fatalf("rejected inserts changed Len to %d", c.Len())
	}
	mustInsert(t, c, 1, geom.Vector{0.1, 0.2})
	if err := c.Update(1, geom.Vector{math.NaN(), 0}); !errors.Is(err, ErrBadPoint) {
		t.Fatalf("Update with NaN error = %v, want ErrBadPoint", err)
	}
	if p, _ := c.Get(1); !p.Equal(geom.Vector{0.1, 0.2}) {
		t.Fatalf("rejected Update mutated the record: %v", p)
	}
}

func TestUpsert(t *testing.T) {
	c := New(2)
	updated, err := c.Upsert(4, geom.Vector{0.1, 0.1})
	if err != nil || updated {
		t.Fatalf("first Upsert = %v, %v; want insert", updated, err)
	}
	updated, err = c.Upsert(4, geom.Vector{0.2, 0.2})
	if err != nil || !updated {
		t.Fatalf("second Upsert = %v, %v; want update", updated, err)
	}
	st := c.Stats()
	if st.Inserts != 1 || st.Updates != 1 {
		t.Fatalf("stats after upserts = %+v", st)
	}
}

func TestScanOrderAndSnapshot(t *testing.T) {
	c := New(2)
	for _, id := range []int{5, 1, 9, 3} {
		mustInsert(t, c, id, geom.Vector{float64(id) / 10, 0.5})
	}
	c.Delete(9)
	var got []int
	c.Scan(func(id int, p geom.Vector) bool {
		if p[0] != float64(id)/10 {
			t.Fatalf("Scan delivered wrong point for id %d: %v", id, p)
		}
		got = append(got, id)
		return true
	})
	want := []int{1, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("Scan ids = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Scan ids = %v, want %v", got, want)
		}
	}
	// Early stop.
	n := 0
	c.Scan(func(int, geom.Vector) bool { n++; return n < 2 })
	if n != 2 {
		t.Fatalf("early-stopped Scan visited %d ids, want 2", n)
	}
}

func TestBoundsTrackMutations(t *testing.T) {
	c := New(2)
	if _, ok := c.Bounds(); ok {
		t.Fatal("empty collection reported bounds")
	}
	mustInsert(t, c, 0, geom.Vector{0.2, 0.8})
	mustInsert(t, c, 1, geom.Vector{0.9, 0.1})
	b, ok := c.Bounds()
	if !ok || !geom.Vector(b.Lo).Equal(geom.Vector{0.2, 0.1}) || !geom.Vector(b.Hi).Equal(geom.Vector{0.9, 0.8}) {
		t.Fatalf("bounds = %v, %v", b, ok)
	}
	// Deleting the extreme point must tighten the bounds exactly.
	c.Delete(1)
	b, ok = c.Bounds()
	if !ok || !geom.Vector(b.Lo).Equal(geom.Vector{0.2, 0.8}) || !geom.Vector(b.Hi).Equal(geom.Vector{0.2, 0.8}) {
		t.Fatalf("bounds after delete = %v, %v", b, ok)
	}
}

func TestFromPointsMatchesIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := make([]geom.Vector, 500)
	for i := range pts {
		pts[i] = geom.Vector{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	bulk, err := FromPoints(pts)
	if err != nil {
		t.Fatalf("FromPoints: %v", err)
	}
	inc := New(3)
	for i, p := range pts {
		mustInsert(t, inc, i, p)
	}
	if bulk.Len() != inc.Len() {
		t.Fatalf("bulk Len %d != incremental Len %d", bulk.Len(), inc.Len())
	}
	rect := geom.NewRect(geom.Vector{0.2, 0.2, 0.2}, geom.Vector{0.7, 0.7, 0.7})
	a := append([]int(nil), bulk.Tree().RangeQuery(rect)...)
	b := append([]int(nil), inc.Tree().RangeQuery(rect)...)
	sort.Ints(a)
	sort.Ints(b)
	if len(a) != len(b) {
		t.Fatalf("range parity: bulk %d ids, incremental %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("range parity broken: %v vs %v", a, b)
		}
	}
}

// TestChurnAcrossChunks drives enough inserts and deletes to span multiple
// storage chunks and recycle slots, checking that packed vectors, the tree
// and the id index never diverge.
func TestChurnAcrossChunks(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	c := New(2, rtree.WithFanout(8))
	ref := map[int]geom.Vector{}
	nextID := 0
	for op := 0; op < 4*chunkSlots; op++ {
		if rng.Intn(4) == 0 && len(ref) > 0 {
			var victim int
			for id := range ref {
				victim = id
				break
			}
			if !c.Delete(victim) {
				t.Fatalf("op %d: Delete(%d) missing", op, victim)
			}
			delete(ref, victim)
		} else {
			p := geom.Vector{rng.Float64(), rng.Float64()}
			mustInsert(t, c, nextID, p)
			ref[nextID] = p.Clone()
			nextID++
		}
	}
	if c.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", c.Len(), len(ref))
	}
	if c.Tree().Len() != len(ref) {
		t.Fatalf("tree Len = %d, want %d", c.Tree().Len(), len(ref))
	}
	for id, want := range ref {
		got, ok := c.Get(id)
		if !ok || !got.Equal(want) {
			t.Fatalf("Get(%d) = %v, %v; want %v", id, got, ok, want)
		}
		tp, ok := c.Tree().Point(id)
		if !ok || !tp.Equal(want) {
			t.Fatalf("tree Point(%d) = %v, %v; want %v", id, tp, ok, want)
		}
	}
	st := c.Stats()
	if st.Count != len(ref) || int(st.Inserts)-int(st.Deletes) != len(ref) {
		t.Fatalf("stats inconsistent: %+v vs %d live", st, len(ref))
	}
}
