// Package leakcheck asserts that a function leaves no goroutines behind.
// The parallel frontier's teardown contract (workers exit on the done
// channel, the merge drains every out stream) is pinned statically by
// ordlint's concurrency checks; this is the dynamic half, catching leaks
// those approximations cannot see.
package leakcheck

import (
	"runtime"
	"testing"
	"time"
)

// settle polls runtime.NumGoroutine until it returns to at most base or the
// deadline passes, giving exiting goroutines time to be reaped. It returns
// the last observed count.
func settle(base int, deadline time.Duration) int {
	var n int
	for start := time.Now(); ; {
		n = runtime.NumGoroutine()
		if n <= base || time.Since(start) > deadline {
			return n
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
}

// Check runs fn and fails the test if the goroutine count has not settled
// back to its starting value within two seconds. The count is a global, so
// tests using Check must not run in parallel with tests that start
// background goroutines of their own.
func Check(t testing.TB, fn func()) {
	t.Helper()
	base := runtime.NumGoroutine()
	fn()
	if n := settle(base, 2*time.Second); n > base {
		t.Errorf("goroutine leak: %d before, %d after (waited 2s)", base, n)
	}
}
