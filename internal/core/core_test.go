package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"ordu/internal/geom"
	"ordu/internal/rtree"
	"ordu/internal/skyband"
)

func randPoints(rng *rand.Rand, n, d int) []geom.Vector {
	pts := make([]geom.Vector, n)
	for i := range pts {
		p := make(geom.Vector, d)
		for j := range p {
			p[j] = rng.Float64()
		}
		pts[i] = p
	}
	return pts
}

// antiPoints generates anticorrelated data (records clustered around the
// hyperplane sum(x) = d/2), which yields large skylines/skybands and hence
// room for larger m in the tests.
func antiPoints(rng *rand.Rand, n, d int) []geom.Vector {
	pts := make([]geom.Vector, n)
	for i := range pts {
		p := make(geom.Vector, d)
		s := 0.0
		for j := range p {
			p[j] = rng.Float64()
			s += p[j]
		}
		target := float64(d)/2 + (rng.Float64()-0.5)*0.2
		f := target / s
		for j := range p {
			p[j] = math.Min(1, math.Max(0, p[j]*f))
		}
		pts[i] = p
	}
	return pts
}

// maxM returns the k-skyband size, the ceiling for ORD's output size.
func maxM(tr *rtree.Tree, k int) int {
	return len(skyband.KSkyband(tr, k))
}

func idSet(recs []Record) map[int]bool {
	s := make(map[int]bool, len(recs))
	for _, r := range recs {
		s[r.ID] = true
	}
	return s
}

func TestORDValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := randPoints(rng, 50, 3)
	tr := rtree.BulkLoad(pts)
	w := geom.Vector{0.3, 0.3, 0.4}
	if _, err := ORD(tr, w, 5, 3); err == nil {
		t.Error("m < k accepted")
	}
	if _, err := ORD(tr, geom.Vector{0.5, 0.5}, 1, 5); err == nil {
		t.Error("wrong-dimension seed accepted")
	}
	if _, err := ORD(tr, w, 0, 5); err == nil {
		t.Error("k = 0 accepted")
	}
	if _, err := ORD(rtree.New(3), w, 1, 5); err == nil {
		t.Error("empty dataset accepted")
	}
	if _, err := ORD(tr, w, 1, 10000); err != ErrInsufficientData {
		t.Errorf("oversized m: err = %v", err)
	}
}

func TestORDOutputSizeAndRadii(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, d := range []int{2, 3, 4} {
		for _, k := range []int{1, 3} {
			pts := randPoints(rng, 400, d)
			tr := rtree.BulkLoad(pts)
			w := geom.RandSimplex(rng, d)
			sb := maxM(tr, k)
			for _, m := range []int{k, (k + sb) / 2, sb} {
				res, err := ORD(tr, w, k, m)
				if err != nil {
					t.Fatalf("d=%d k=%d m=%d: %v", d, k, m, err)
				}
				if len(res.Records) != m {
					t.Fatalf("d=%d k=%d m=%d: got %d records (OSS violated)",
						d, k, m, len(res.Records))
				}
				for i := 1; i < m; i++ {
					if res.Radii[i] < res.Radii[i-1] {
						t.Fatal("radii not sorted")
					}
				}
				if res.Rho != res.Radii[m-1] {
					t.Fatal("Rho != max radius")
				}
			}
		}
	}
}

func TestORDMatchesBSL(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 8; trial++ {
		d := 2 + trial%3
		k := 1 + trial%3
		pts := randPoints(rng, 300, d)
		tr := rtree.BulkLoad(pts)
		w := geom.RandSimplex(rng, d)
		m := k + 5 + trial*2
		if sb := maxM(tr, k); m > sb {
			m = sb
		}
		fast, err := ORD(tr, w, k, m)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := ORDBSL(tr, w, k, m)
		if err != nil {
			t.Fatal(err)
		}
		fs, ss := idSet(fast.Records), idSet(slow.Records)
		for id := range fs {
			if !ss[id] {
				t.Fatalf("trial %d: ORD id %d missing from BSL (rho %g vs %g)",
					trial, id, fast.Rho, slow.Rho)
			}
		}
		if math.Abs(fast.Rho-slow.Rho) > 1e-9 {
			t.Fatalf("trial %d: rho %g vs %g", trial, fast.Rho, slow.Rho)
		}
	}
}

// TestORDIsRhoSkyband: the ORD output must be exactly the rho-skyband just
// past the stopping radius.
func TestORDIsRhoSkyband(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 5; trial++ {
		d := 2 + trial%3
		k := 1 + trial%2
		pts := antiPoints(rng, 250, d)
		tr := rtree.BulkLoad(pts)
		w := geom.RandSimplex(rng, d)
		m := 15
		if sb := maxM(tr, k); m > sb {
			m = sb
		}
		res, err := ORD(tr, w, k, m)
		if err != nil {
			t.Fatal(err)
		}
		rho := res.Rho*(1+1e-9) + 1e-12
		want := map[int]bool{}
		for i, p := range pts {
			dom := 0
			si := p.Dot(w)
			for j, q := range pts {
				if i == j {
					continue
				}
				if q.Dot(w) > si && skyband.Mindist(w, p, q) >= rho {
					dom++
				}
			}
			if dom < k {
				want[i] = true
			}
		}
		got := idSet(res.Records)
		if len(got) != len(want) {
			t.Fatalf("trial %d: ORD %d records, brute rho-skyband %d",
				trial, len(got), len(want))
		}
		for id := range got {
			if !want[id] {
				t.Fatalf("trial %d: id %d not in brute rho-skyband", trial, id)
			}
		}
	}
}

// TestORDMinimality: rho is the minimum radius producing m records — just
// below it, the rho-skyband must be smaller than m.
func TestORDMinimality(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := randPoints(rng, 300, 3)
	tr := rtree.BulkLoad(pts)
	w := geom.RandSimplex(rng, 3)
	k, m := 2, 20
	res, err := ORD(tr, w, k, m)
	if err != nil {
		t.Fatal(err)
	}
	below := skyband.RhoSkyband(tr, w, k, res.Rho*(1-1e-9))
	// At radius just below (and at) rho, the record with inflection radius
	// rho is not yet a member.
	if len(below) >= m {
		t.Fatalf("rho not minimal: %d records at rho-eps", len(below))
	}
}

func TestORDTopKAlwaysIncluded(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pts := randPoints(rng, 300, 4)
	tr := rtree.BulkLoad(pts)
	w := geom.RandSimplex(rng, 4)
	k, m := 5, 30
	res, err := ORD(tr, w, k, m)
	if err != nil {
		t.Fatal(err)
	}
	got := idSet(res.Records)
	// The top-k of w belong to every rho-skyband (Section 4.1 corollary).
	type sc struct {
		id int
		s  float64
	}
	all := make([]sc, len(pts))
	for i, p := range pts {
		all[i] = sc{i, p.Dot(w)}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].s > all[j].s })
	for r := 0; r < k; r++ {
		if !got[all[r].id] {
			t.Fatalf("top-%d record %d missing from ORD output", r+1, all[r].id)
		}
	}
}

func TestORDNestedInM(t *testing.T) {
	// Larger m extends the output without removing records.
	rng := rand.New(rand.NewSource(7))
	pts := randPoints(rng, 300, 3)
	tr := rtree.BulkLoad(pts)
	w := geom.RandSimplex(rng, 3)
	k := 3
	prev := map[int]bool{}
	for _, m := range []int{3, 10, 20, 35} {
		res, err := ORD(tr, w, k, m)
		if err != nil {
			t.Fatal(err)
		}
		cur := idSet(res.Records)
		for id := range prev {
			if !cur[id] {
				t.Fatalf("ORD not nested: id %d lost at m=%d", id, m)
			}
		}
		prev = cur
	}
}

// --- ORU ---

func TestORUValidationAndSize(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pts := antiPoints(rng, 300, 3)
	tr := rtree.BulkLoad(pts)
	w := geom.RandSimplex(rng, 3)
	if _, err := ORU(tr, w, 5, 3); err == nil {
		t.Error("m < k accepted")
	}
	for _, k := range []int{1, 2, 4} {
		for _, m := range []int{k, k + 5, 20} {
			res, err := ORU(tr, w, k, m)
			if err != nil {
				t.Fatalf("k=%d m=%d: %v", k, m, err)
			}
			if len(res.Records) != m {
				t.Fatalf("k=%d m=%d: got %d records (OSS violated)", k, m, len(res.Records))
			}
			if res.Rho < 0 {
				t.Fatal("negative stopping radius")
			}
		}
	}
}

func TestORUContainsTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := antiPoints(rng, 250, 3)
	tr := rtree.BulkLoad(pts)
	w := geom.RandSimplex(rng, 3)
	k, m := 3, 12
	res, err := ORU(tr, w, k, m)
	if err != nil {
		t.Fatal(err)
	}
	got := idSet(res.Records)
	type sc struct {
		id int
		s  float64
	}
	all := make([]sc, len(pts))
	for i, p := range pts {
		all[i] = sc{i, p.Dot(w)}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].s > all[j].s })
	for r := 0; r < k; r++ {
		if !got[all[r].id] {
			t.Fatalf("top-%d record %d for the seed missing from ORU output", r+1, all[r].id)
		}
	}
}

// TestORURegionsAreCorrect: every finalized region's top-k must equal the
// exact (order-sensitive) global top-k at the region's feasible point.
func TestORURegionsAreCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 4; trial++ {
		d := 2 + trial%3
		k := 1 + trial%3
		pts := antiPoints(rng, 200, d)
		tr := rtree.BulkLoad(pts)
		w := geom.RandSimplex(rng, d)
		// ORU's achievable output is bounded by the number of records in
		// any top-k (e.g. |L1| for k=1); back off m until feasible.
		var res *ORUResult
		var err error
		for m := k + 8; m >= k; m-- {
			res, err = ORU(tr, w, k, m)
			if err == nil {
				break
			}
			if err != ErrInsufficientData {
				t.Fatal(err)
			}
		}
		if err != nil {
			t.Fatalf("trial %d: no feasible m at all", trial)
		}
		for ri, reg := range res.Regions {
			v, ok := reg.Region.FeasiblePoint()
			if !ok {
				t.Fatalf("trial %d: finalized region %d empty", trial, ri)
			}
			type sc struct {
				id int
				s  float64
			}
			all := make([]sc, len(pts))
			for i, p := range pts {
				all[i] = sc{i, p.Dot(v)}
			}
			sort.Slice(all, func(i, j int) bool { return all[i].s > all[j].s })
			for r := 0; r < len(reg.TopK) && r < k; r++ {
				if all[r].id != reg.TopK[r].ID {
					// The feasible point may sit on a region boundary where
					// two records tie; tolerate only exact score ties.
					if math.Abs(all[r].s-pts[reg.TopK[r].ID].Dot(v)) > 1e-9 {
						t.Fatalf("trial %d region %d rank %d: claimed %d, true %d (scores %g vs %g)",
							trial, ri, r, reg.TopK[r].ID, all[r].id,
							pts[reg.TopK[r].ID].Dot(v), all[r].s)
					}
				}
			}
		}
	}
}

// TestORUMatchesSampledReference: compare the ORU output with a dense
// sampling reference: records in a top-k within the reported rho must all
// be reported (sampling strictly inside), and reported records must be in
// some top-k within rho (checked via their witness regions above).
func TestORUMatchesSampledReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	d := 3
	pts := antiPoints(rng, 150, d)
	tr := rtree.BulkLoad(pts)
	w := geom.RandSimplex(rng, d)
	k, m := 2, 10
	res, err := ORU(tr, w, k, m)
	if err != nil {
		t.Fatal(err)
	}
	got := idSet(res.Records)
	for s := 0; s < 5000; s++ {
		// Sample v within the reported radius (with margin for ties).
		v := geom.RandDirichlet(rng, w, 60)
		if v.Dist(w) > res.Rho*(1-1e-6) {
			continue
		}
		type sc struct {
			id int
			s  float64
		}
		all := make([]sc, len(pts))
		for i, p := range pts {
			all[i] = sc{i, p.Dot(v)}
		}
		sort.Slice(all, func(i, j int) bool { return all[i].s > all[j].s })
		for r := 0; r < k; r++ {
			if !got[all[r].id] {
				t.Fatalf("record %d is top-%d at dist %g < rho %g but unreported",
					all[r].id, r+1, v.Dist(w), res.Rho)
			}
		}
	}
}

func TestORUMatchesBSLOnSmallInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 3; trial++ {
		d := 2 + trial
		pts := antiPoints(rng, 120, d)
		tr := rtree.BulkLoad(pts)
		w := geom.RandSimplex(rng, d)
		k, m := 2, 10
		fast, err := ORU(tr, w, k, m)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := ORUBSL(tr, w, k, m, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(slow.Records) != m {
			t.Fatalf("BSL returned %d records", len(slow.Records))
		}
		fs, ss := idSet(fast.Records), idSet(slow.Records)
		for id := range fs {
			if !ss[id] {
				t.Fatalf("trial %d: ORU id %d missing from BSL; rho %g vs %g",
					trial, id, fast.Rho, slow.Rho)
			}
		}
		if math.Abs(fast.Rho-slow.Rho) > 1e-7 {
			t.Fatalf("trial %d: rho mismatch %g vs %g", trial, fast.Rho, slow.Rho)
		}
	}
}

func TestORUExtremeK1M1(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	pts := randPoints(rng, 200, 3)
	tr := rtree.BulkLoad(pts)
	w := geom.RandSimplex(rng, 3)
	res, err := ORU(tr, w, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 1 {
		t.Fatalf("got %d records", len(res.Records))
	}
	// Must be the global top-1 and rho must be 0.
	best, bestScore := -1, math.Inf(-1)
	for i, p := range pts {
		if s := p.Dot(w); s > bestScore {
			best, bestScore = i, s
		}
	}
	if res.Records[0].ID != best {
		t.Fatalf("top-1 = %d, want %d", res.Records[0].ID, best)
	}
	if res.Rho > 1e-9 {
		t.Fatalf("rho = %g, want 0", res.Rho)
	}
}

func TestORUDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	pts := randPoints(rng, 150, 3)
	tr := rtree.BulkLoad(pts)
	w := geom.RandSimplex(rng, 3)
	a, err := ORU(tr, w, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ORU(tr, w, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Records) != len(b.Records) || a.Rho != b.Rho {
		t.Fatal("ORU not deterministic")
	}
	for i := range a.Records {
		if a.Records[i].ID != b.Records[i].ID {
			t.Fatal("ORU record order not deterministic")
		}
	}
}
