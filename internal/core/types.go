// Package core implements the paper's two operators: ORD (Section 4) and
// ORU (Section 5), together with the baseline variants used in the paper's
// evaluation (ORD-BSL, ORU-BSL). Both operators take a dataset indexed by
// an R-tree, a seed preference vector w, the skyband/top-k parameter k, and
// the required output size m, and report exactly m records for the minimum
// expansion radius rho around w.
package core

import (
	"errors"
	"fmt"

	"ordu/internal/geom"
	"ordu/internal/region"
	"ordu/internal/rtree"
)

// Record is one output record.
type Record struct {
	ID    int
	Point geom.Vector
}

// Stats captures the search effort of a query, the library's proxy for the
// paper's I/O and CPU measurements.
type Stats struct {
	// Fetched counts records fetched from the index (candidates examined).
	Fetched int
	// HeapPops counts branch-and-bound heap pops (node accesses).
	HeapPops int
	// RegionsPartitioned counts Theorem-1 partitionings (ORU only).
	RegionsPartitioned int
	// RegionsFinalized counts finalized top-k regions (ORU only).
	RegionsFinalized int
	// LayersComputed counts upper-hull layers materialised (ORU only).
	LayersComputed int
}

// ORDResult is the output of an ORD query.
type ORDResult struct {
	// Records are the m output records ordered by inflection radius: the
	// prefix of length j is the rho-skyband just past Records[j-1].Radius.
	Records []Record
	// Radii holds the inflection radius of each record, parallel to
	// Records.
	Radii []float64
	// Rho is the stopping radius: the smallest expansion for which the
	// rho-skyband holds exactly m records (the largest inflection radius in
	// the output).
	Rho float64
	// Stats reports search effort.
	Stats Stats
}

// TopKRegion is one finalized preference region with its order-sensitive
// top-k result — the by-product output of ORU (Section 5.3.1, Case 2).
type TopKRegion struct {
	Region  region.Region
	TopK    []Record
	MinDist float64
}

// ORUResult is the output of an ORU query.
type ORUResult struct {
	// Records are the m distinct output records in confirmation order.
	Records []Record
	// Rho is the stopping radius: the mindist of the last finalized region.
	Rho float64
	// Regions lists every finalized region with its top-k result, in
	// increasing mindist from the seed.
	Regions []TopKRegion
	// Stats reports search effort.
	Stats Stats
}

// ErrInsufficientData is returned when the dataset cannot produce m
// distinct records (e.g. m exceeds the k-skyband size for ORD, or the
// number of records appearing in any top-k result for ORU).
var ErrInsufficientData = errors.New("core: dataset cannot produce m records")

// validate checks the common query arguments.
func validate(tree *rtree.Tree, w geom.Vector, k, m int) error {
	if tree == nil || tree.Len() == 0 {
		return errors.New("core: empty dataset")
	}
	if err := geom.ValidatePreference(w, tree.Dim()); err != nil {
		return err
	}
	if k < 1 {
		return fmt.Errorf("core: k = %d, want k >= 1", k)
	}
	if m < k {
		return fmt.Errorf("core: m = %d < k = %d; the smallest ORD/ORU output is the top-k itself", m, k)
	}
	return nil
}
