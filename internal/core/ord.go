package core

import (
	"context"
	"math"
	"sort"

	"ordu/internal/geom"
	"ordu/internal/rtree"
	"ordu/internal/skyband"
	"ordu/internal/xheap"
)

// cand is a candidate record with its inflection radius.
type cand struct {
	rec   Record
	rho   float64
	score float64
}

// Less orders the candidate max-heap by inflection radius: the root is the
// eviction victim. Ties break towards evicting the lower-scoring record,
// then the larger id, keeping ORD and ORD-BSL deterministic and mutually
// consistent. Exact comparisons of stored sort keys: both sides are
// previously computed values, so bitwise (in)equality is the deterministic
// tie-break, not a numeric boundary test.
func (c cand) Less(o cand) bool {
	if c.rho != o.rho { //ordlint:allow floatcmp — tie-break on stored keys
		return c.rho > o.rho
	}
	if c.score != o.score { //ordlint:allow floatcmp — tie-break on stored keys
		return c.score < o.score
	}
	return c.rec.ID > o.rec.ID
}

// ORD computes the paper's first operator (Definition 1): the records
// rho-dominated by fewer than k others for the minimum radius rho around w
// that yields exactly m records.
//
// This is the fully-enhanced algorithm of Section 4.2: a progressive
// k-skyband retrieval in decreasing score order for w, whose dominance test
// switches to adaptive rho-bar-dominance once m+1 candidates have been
// fetched; rho-bar (the largest inflection radius among the best m
// candidates) shrinks as better candidates arrive, making the retrieval
// increasingly selective until the heap dries up.
func ORD(tree *rtree.Tree, w geom.Vector, k, m int) (*ORDResult, error) {
	return ORDCtx(context.Background(), tree, w, k, m)
}

// ORDCtx is ORD with cooperative cancellation: the progressive retrieval
// polls ctx every few fetches and aborts with an error wrapping ctx.Err()
// once the context is done.
func ORDCtx(ctx context.Context, tree *rtree.Tree, w geom.Vector, k, m int) (*ORDResult, error) {
	if err := validate(tree, w, k, m); err != nil {
		return nil, err
	}
	sc := skyband.NewScanner(tree, w)
	pruner := skyband.NewRhoPruner(w, k)
	var cands xheap.Heap[cand]
	// Single-goroutine scratch: one mindist workspace and one reusable
	// per-candidate mindist buffer for the whole retrieval.
	var ws skyband.Workspace
	var mds []float64

	for i := 0; ; i++ {
		if i%cancelEvery == 0 {
			if err := ctxErr(ctx); err != nil {
				return nil, err
			}
		}
		id, p, ok := sc.Next(pruner)
		if !ok {
			break
		}
		// Exact inflection radius: all already-fetched records (and only
		// they) score at least as high as p.
		var rho float64
		rho, mds = inflectionAgainst(w, p, pruner, k, &ws, mds)
		pruner.Add(p)
		if math.IsInf(rho, 1) || rho >= pruner.Rho {
			// Cannot enter the current rho-bar-skyband (possible on the
			// exact boundary); it still remains a registered dominator.
			continue
		}
		cands.Push(cand{rec: Record{ID: id, Point: p}, rho: rho, score: p.Dot(w)})
		if cands.Len() > m {
			cands.Pop() // evict the largest inflection radius
			pruner.Rho = cands.Peek().rho
		}
	}
	if cands.Len() < m {
		return nil, ErrInsufficientData
	}
	res := &ORDResult{Stats: Stats{HeapPops: sc.Visited(), Fetched: pruner.Size()}}
	out := make([]cand, cands.Len())
	copy(out, cands.Items())
	sort.Slice(out, func(i, j int) bool {
		if out[i].rho != out[j].rho { //ordlint:allow floatcmp — tie-break on stored keys
			return out[i].rho < out[j].rho
		}
		if out[i].score != out[j].score { //ordlint:allow floatcmp — tie-break on stored keys
			return out[i].score > out[j].score
		}
		return out[i].rec.ID < out[j].rec.ID
	})
	for _, c := range out {
		res.Records = append(res.Records, c.rec)
		res.Radii = append(res.Radii, c.rho)
	}
	res.Rho = res.Radii[len(res.Radii)-1]
	return res, nil
}

// inflectionAgainst computes the inflection radius of p against the records
// registered in the pruner (exactly the higher-scoring fetched records). It
// reuses the caller's mindist buffer (returned grown) and workspace, so the
// per-record cost is allocation-free after warm-up.
func inflectionAgainst(w geom.Vector, p geom.Vector, pruner *skyband.RhoPruner, k int, ws *skyband.Workspace, mds []float64) (float64, []float64) {
	recs := pruner.Records()
	if len(recs) < k {
		return 0, mds
	}
	mds = mds[:0]
	for _, r := range recs {
		mds = append(mds, skyband.MindistWS(w, p, r, ws))
	}
	return skyband.InflectionRadiusInPlace(mds, k), mds
}

// ORDBSL is the preliminary approach of Section 4.1: compute the entire
// k-skyband, derive every member's inflection radius, and keep the m
// smallest. It serves as the paper's ORD-BSL baseline and as a reference
// implementation for testing the enhanced algorithm.
func ORDBSL(tree *rtree.Tree, w geom.Vector, k, m int) (*ORDResult, error) {
	if err := validate(tree, w, k, m); err != nil {
		return nil, err
	}
	members := skyband.KSkybandFor(tree, w, k)
	if len(members) < m {
		return nil, ErrInsufficientData
	}
	out := make([]cand, 0, len(members))
	var ws skyband.Workspace
	var mds []float64
	for i, mem := range members {
		// Members arrive in decreasing score order: competitors are the
		// earlier ones.
		mds = mds[:0]
		for j := 0; j < i; j++ {
			mds = append(mds, skyband.MindistWS(w, mem.Point, members[j].Point, &ws))
		}
		rho := skyband.InflectionRadiusInPlace(mds, k)
		if math.IsInf(rho, 1) {
			continue
		}
		out = append(out, cand{
			rec:   Record{ID: mem.ID, Point: mem.Point},
			rho:   rho,
			score: mem.Point.Dot(w),
		})
	}
	if len(out) < m {
		return nil, ErrInsufficientData
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].rho != out[j].rho { //ordlint:allow floatcmp — tie-break on stored keys
			return out[i].rho < out[j].rho
		}
		if out[i].score != out[j].score { //ordlint:allow floatcmp — tie-break on stored keys
			return out[i].score > out[j].score
		}
		return out[i].rec.ID < out[j].rec.ID
	})
	out = out[:m]
	res := &ORDResult{Stats: Stats{Fetched: len(members)}}
	for _, c := range out {
		res.Records = append(res.Records, c.rec)
		res.Radii = append(res.Radii, c.rho)
	}
	res.Rho = res.Radii[len(res.Radii)-1]
	return res, nil
}
