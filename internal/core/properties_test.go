package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ordu/internal/geom"
	"ordu/internal/region"
	"ordu/internal/rtree"
	"ordu/internal/skyband"
)

// TestORUPartitionBypassEquivalence: the small-union shortcut in Theorem-1
// partitioning must not change the answer — only the work done.
func TestORUPartitionBypassEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 5; trial++ {
		d := 2 + trial%3
		pts := antiPoints(rng, 200, d)
		tr := rtree.BulkLoad(pts)
		w := geom.RandSimplex(rng, d)
		k, m := 1+trial%3, 8+trial
		a, errA := ORUWith(tr, w, k, m, ORUOptions{})
		b, errB := ORUWith(tr, w, k, m, ORUOptions{NoPartitionBypass: true})
		if (errA == nil) != (errB == nil) {
			t.Fatalf("trial %d: error mismatch %v vs %v", trial, errA, errB)
		}
		if errA != nil {
			continue
		}
		if math.Abs(a.Rho-b.Rho) > 1e-9 {
			t.Fatalf("trial %d: rho %g vs %g", trial, a.Rho, b.Rho)
		}
		as, bs := idSet(a.Records), idSet(b.Records)
		if len(as) != len(bs) {
			t.Fatalf("trial %d: sizes differ", trial)
		}
		for id := range as {
			if !bs[id] {
				t.Fatalf("trial %d: id %d only in bypass variant", trial, id)
			}
		}
	}
}

// TestEnumerateWithinWholeDomainMatchesKSkybandTops: with the whole simplex
// as the clip, the fixed-region enumeration must report every record that
// is in some top-k anywhere — in particular it must contain ORU's output
// for any m.
func TestEnumerateWithinWholeDomain(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	d := 3
	pts := antiPoints(rng, 120, d)
	tr := rtree.BulkLoad(pts)
	w := geom.RandSimplex(rng, d)
	k := 2
	cands := skyband.KSkybandFor(tr, w, k)
	members := make([]skyband.Member, len(cands))
	copy(members, cands)
	recs, regions, err := EnumerateWithin(members, w, k, region.Full(d))
	if err != nil {
		t.Fatal(err)
	}
	if len(regions) == 0 {
		t.Fatal("no regions enumerated")
	}
	all := idSetRecords(recs)
	// ORU output for any feasible m is a subset.
	m := len(all)
	if m > 20 {
		m = 20
	}
	res, err := ORU(tr, w, k, m)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Records {
		if !all[r.ID] {
			t.Fatalf("ORU record %d missing from whole-domain enumeration", r.ID)
		}
	}
	// Sampled global top-k members must all be enumerated.
	for s := 0; s < 2000; s++ {
		v := geom.RandSimplex(rng, d)
		best1, best2 := -1, -1
		s1, s2 := math.Inf(-1), math.Inf(-1)
		for i, p := range pts {
			sc := p.Dot(v)
			if sc > s1 {
				best2, s2 = best1, s1
				best1, s1 = i, sc
			} else if sc > s2 {
				best2, s2 = i, sc
			}
		}
		if !all[best1] || !all[best2] {
			t.Fatalf("top-2 at %v not fully enumerated", v)
		}
	}
}

func idSetRecords(rs []Record) map[int]bool {
	out := map[int]bool{}
	for _, r := range rs {
		out[r.ID] = true
	}
	return out
}

// TestORDQuickProperties uses testing/quick to fuzz dataset/seed
// combinations: the output always has exactly m records, radii are sorted,
// the top-k at w is always included, and the output is a subset of the
// k-skyband.
func TestORDQuickProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	prop := func(seed int64, kRaw, dRaw uint8) bool {
		d := 2 + int(dRaw)%3
		k := 1 + int(kRaw)%4
		local := rand.New(rand.NewSource(seed))
		pts := antiPoints(local, 120, d)
		tr := rtree.BulkLoad(pts)
		w := geom.RandSimplex(local, d)
		sky := skyband.KSkyband(tr, k)
		m := k + 4
		if m > len(sky) {
			m = len(sky)
		}
		if m < k {
			return true
		}
		res, err := ORD(tr, w, k, m)
		if err != nil {
			return false
		}
		if len(res.Records) != m {
			return false
		}
		inSky := map[int]bool{}
		for _, s := range sky {
			inSky[s.ID] = true
		}
		for i, r := range res.Records {
			if !inSky[r.ID] {
				return false
			}
			if i > 0 && res.Radii[i] < res.Radii[i-1] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rng}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestORURhoMonotoneInM: a larger m never needs a smaller radius.
func TestORURhoMonotoneInM(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	pts := antiPoints(rng, 250, 3)
	tr := rtree.BulkLoad(pts)
	w := geom.RandSimplex(rng, 3)
	k := 2
	prev := -1.0
	for _, m := range []int{2, 5, 8, 12, 16} {
		res, err := ORU(tr, w, k, m)
		if err != nil {
			t.Fatal(err)
		}
		if res.Rho < prev-1e-12 {
			t.Fatalf("rho decreased from %g to %g at m=%d", prev, res.Rho, m)
		}
		prev = res.Rho
	}
}

// TestORDRhoMonotoneInM mirrors the above for ORD.
func TestORDRhoMonotoneInM(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	pts := antiPoints(rng, 250, 3)
	tr := rtree.BulkLoad(pts)
	w := geom.RandSimplex(rng, 3)
	k := 2
	prev := -1.0
	for _, m := range []int{2, 5, 10, 20, 30} {
		res, err := ORD(tr, w, k, m)
		if err != nil {
			t.Fatal(err)
		}
		if res.Rho < prev-1e-12 {
			t.Fatalf("rho decreased from %g to %g at m=%d", prev, res.Rho, m)
		}
		prev = res.Rho
	}
}

// TestORDStatsPopulated sanity-checks the instrumentation used by the
// benchmarks.
func TestORDStatsPopulated(t *testing.T) {
	rng := rand.New(rand.NewSource(106))
	pts := antiPoints(rng, 300, 3)
	tr := rtree.BulkLoad(pts)
	w := geom.RandSimplex(rng, 3)
	res, err := ORD(tr, w, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Fetched == 0 || res.Stats.HeapPops == 0 {
		t.Fatalf("stats empty: %+v", res.Stats)
	}
	oru, err := ORU(tr, w, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if oru.Stats.RegionsFinalized == 0 || oru.Stats.LayersComputed == 0 {
		t.Fatalf("ORU stats empty: %+v", oru.Stats)
	}
}
