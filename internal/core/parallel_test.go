package core

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"ordu/internal/geom"
	"ordu/internal/rtree"
)

// TestParallelORUMatchesSequential: the Section 6.4 parallelisation must be
// a pure wall-clock optimisation — identical records, radius, and region
// count, across dimensions and k values.
func TestParallelORUMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	for trial := 0; trial < 6; trial++ {
		d := 2 + trial%3
		k := 1 + trial%3
		m := k + 6 + trial
		pts := antiPoints(rng, 250, d)
		tr := rtree.BulkLoad(pts)
		w := geom.RandSimplex(rng, d)
		seqRes, errA := ORUWith(tr, w, k, m, ORUOptions{})
		parRes, errB := ORUWith(tr, w, k, m, ORUOptions{Workers: 4})
		if (errA == nil) != (errB == nil) {
			t.Fatalf("trial %d: error mismatch %v vs %v", trial, errA, errB)
		}
		if errA != nil {
			continue
		}
		if math.Abs(seqRes.Rho-parRes.Rho) > 1e-9 {
			t.Fatalf("trial %d: rho %g vs %g", trial, seqRes.Rho, parRes.Rho)
		}
		if len(seqRes.Records) != len(parRes.Records) {
			t.Fatalf("trial %d: %d vs %d records", trial, len(seqRes.Records), len(parRes.Records))
		}
		ss, ps := idSet(seqRes.Records), idSet(parRes.Records)
		for id := range ss {
			if !ps[id] {
				t.Fatalf("trial %d: id %d missing from parallel output", trial, id)
			}
		}
		if len(seqRes.Regions) != len(parRes.Regions) {
			t.Fatalf("trial %d: region counts %d vs %d", trial,
				len(seqRes.Regions), len(parRes.Regions))
		}
		// Region finalization order must agree too.
		for i := range seqRes.Regions {
			if math.Abs(seqRes.Regions[i].MinDist-parRes.Regions[i].MinDist) > 1e-9 {
				t.Fatalf("trial %d: region %d mindist %g vs %g", trial, i,
					seqRes.Regions[i].MinDist, parRes.Regions[i].MinDist)
			}
		}
	}
}

// TestParallelORUWorkerCounts exercises various worker counts including
// more workers than cores.
func TestParallelORUWorkerCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(112))
	pts := antiPoints(rng, 300, 3)
	tr := rtree.BulkLoad(pts)
	w := geom.RandSimplex(rng, 3)
	base, err := ORU(tr, w, 3, 15)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, runtime.NumCPU() + 2} {
		res, err := ORUWith(tr, w, 3, 15, ORUOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if math.Abs(res.Rho-base.Rho) > 1e-9 || len(res.Records) != len(base.Records) {
			t.Fatalf("workers=%d diverged", workers)
		}
	}
}
